// Package rundown is a Go reproduction of W. H. Jones, "Increasing
// Processor Utilization During Parallel Computation Rundown" (NASA
// TM-87349, ICPP 1986).
//
// The paper observes that phase-structured parallel programs waste
// processors while a phase drains (computational rundown), and that in
// most practical cases portions of the *next* phase become correctly
// computable before the current phase finishes. It taxonomizes the
// enablement mappings between phases (universal, identity, null, forward
// indirect, reverse indirect), reports their frequency in a real parallel
// Navier-Stokes code (PAX/CASPER), proposes language constructs, and
// sketches executive control strategies.
//
// This package is the public facade over the reproduction:
//
//   - Phase/Program describe phase-structured computations with declared
//     enablement mappings (Universal, Identity, Null, Forward, Reverse,
//     Seam);
//   - Simulate runs a program on a deterministic discrete-event model of a
//     P-processor machine with a serial executive, reporting utilization,
//     makespan and the computation-to-management ratio;
//   - Execute runs a program on real goroutine workers under a pluggable
//     manager — the paper-faithful SerialManager (one global executive
//     lock), the ShardedManager (per-worker task deques, batched
//     completion submission, work stealing), or the AsyncManager (all
//     management on one dedicated background goroutine, the paper's
//     separate executive processor) — executing the phases' Work
//     functions;
//   - ParsePax/InterpretPax accept the paper's PAX-style control language
//     (DEFINE PHASE / DISPATCH / ENABLE, branch lookahead, interlock
//     verification);
//   - Verify checks a declared mapping against granule access footprints
//     using the paper's PARALLEL(x, y) condition, and Infer classifies a
//     phase pair's mapping from footprints alone;
//   - Census and CasperProgram expose the paper's 22-phase PAX/CASPER
//     profile for experiments.
//
// The experiment harness reproducing every quantitative claim of the paper
// lives in cmd/experiments; see DESIGN.md and EXPERIMENTS.md.
package rundown
