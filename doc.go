// Package rundown is a Go reproduction of W. H. Jones, "Increasing
// Processor Utilization During Parallel Computation Rundown" (NASA
// TM-87349, ICPP 1986).
//
// The paper observes that phase-structured parallel programs waste
// processors while a phase drains (computational rundown), and that in
// most practical cases portions of the *next* phase become correctly
// computable before the current phase finishes. It taxonomizes the
// enablement mappings between phases (universal, identity, null, forward
// indirect, reverse indirect), reports their frequency in a real parallel
// Navier-Stokes code (PAX/CASPER), proposes language constructs, and
// sketches executive control strategies.
//
// # The Runner front door
//
// The package is used through one configured entry point. New builds a
// Runner from functional options; Run and RunAll execute the same
// backend-agnostic Job spec on whichever machine the options select:
//
//	r, _ := rundown.New(rundown.WithWorkers(8), rundown.WithManager(rundown.AsyncManager))
//	rep, err := r.Run(ctx, rundown.Job{Prog: prog, Opt: opt})
//
// Three backends stand behind the same two methods:
//
//   - the goroutine executive (default): real workers run the phases'
//     Work functions under a pluggable manager — the paper-faithful
//     SerialManager (one global executive lock), the ShardedManager
//     (per-worker task deques, batched completion submission, work
//     stealing, optional adaptive batching), or the AsyncManager (all
//     management on one dedicated background goroutine, the paper's
//     separate executive processor);
//   - the multi-tenant pool (WithPool, and RunAll on any real Runner):
//     several jobs share one worker set under overlap-first dispatch, so
//     one job's rundown is filled by another job's work;
//   - the virtual machine (WithVirtualTime): a deterministic
//     discrete-event simulation of a P-processor machine that prices
//     every management operation, with a resource model per manager
//     (StealsWorker, Dedicated, ShardedMgmt, AdaptiveMgmt, AsyncMgmt).
//
// Run and RunAll honor context cancellation end to end: cancelling ctx
// aborts the run at the next dispatch boundary, releases parked workers,
// joins every internal goroutine, and returns an error wrapping
// ctx.Err(). WithObserver streams live utilization/overhead Snapshots
// from all backends — wall-clock sampled on hardware, emitted at
// deterministic virtual-time marks in simulation. Capabilities reports
// statically what a manager/model pairing supports (multi-program
// pricing, pool dispatch, adaptive batching), so ErrUnsupportedMgmt is
// checkable before anything runs. Note Caps.AdaptiveInPool is false for
// every pairing: real pool-backed runs ignore adaptive batching by
// design (pool-level parking absorbs the controller's shrink signal);
// only the virtual multi-program machine prices the controller
// pool-wide.
//
// # Flight recorder
//
// WithTrace turns on the flight recorder: every scheduling decision —
// dispatch, completion, steal, backfill, park/unpark, batch retune,
// abort — is captured as a compact binary record in per-worker rings and
// merged into Report.Trace (and written to the given io.Writer, if any,
// in a versioned checksummed format readable with ReadTraceFile). On
// top of the trace: ReplayTrace re-executes a recorded schedule
// deterministically in the virtual machine with conservation checks,
// DiffTraces aligns two traces and reports the first divergence plus
// per-phase utilization deltas, and Trace.Timeline/Gantt/WriteJSON
// export the timeline. Virtual-backend traces are bit-deterministic;
// real-backend traces carry wall-clock timestamps and compare
// structurally.
//
// # Legacy entry points
//
// Simulate, SimulateMulti, Execute and NewPool predate the Runner and
// are kept as thin wrappers over it — same semantics, no context, no
// unified Report. New code should use a Runner.
//
// # Describing computations
//
//   - Phase/Program describe phase-structured computations with declared
//     enablement mappings (Universal, Identity, Null, Forward, Reverse,
//     Seam);
//   - ParsePax/InterpretPax accept the paper's PAX-style control language
//     (DEFINE PHASE / DISPATCH / ENABLE, branch lookahead, interlock
//     verification);
//   - Verify checks a declared mapping against granule access footprints
//     using the paper's PARALLEL(x, y) condition, and Infer classifies a
//     phase pair's mapping from footprints alone;
//   - Census and CasperProgram expose the paper's 22-phase PAX/CASPER
//     profile for experiments.
//
// The experiment harness reproducing every quantitative claim of the paper
// lives in cmd/experiments; see DESIGN.md and EXPERIMENTS.md.
package rundown
