package executive

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// async is the dedicated-management-processor Manager: the paper's "some
// real parallel machines may provide separate processors for the
// executive" (the sim's Dedicated model) realized on hardware. One
// background management goroutine owns the state machine exclusively;
// workers never touch the state-machine lock on any steady-state path.
//
//   - Ready-buffer: workers pull tasks from a bounded buffered channel
//     (Config.ReadyCap) the management goroutine keeps topped up via
//     NextTasks. A channel receive is the whole per-task dispatch cost on
//     the worker side, and each send wakes at most one parked receiver —
//     the targeted wakeup, with the runtime doing the targeting.
//   - Completions: workers push into a lock-free MPSC queue (mpsc.go) and
//     ring the management doorbell; the management goroutine drains the
//     queue in batches of Config.Batch via CompleteBatch.
//   - Deferred management: the management goroutine runs DeferredMgmt
//     whenever the ready-buffer is above Config.LowWater — the paper's
//     "overlap deferred management with computation", here genuinely
//     concurrent on a separate thread — and also when a refill comes up
//     empty, because deferred work may be the only source of new releases.
//   - Fallback: when GOMAXPROCS leaves the management goroutine no spare
//     core it can sit descheduled while workers starve on an empty buffer.
//     Workers detect that through the drain-latency watermark (no
//     management cycle finished within asyncDrainStale while work is
//     queued) and run a management cycle inline under smMu — degrading
//     the async manager into a coarse-grained locked manager instead of
//     spinning. The same path absorbs a full completion queue.
//
// Measurement: Mgmt() is the state-machine time of management cycles
// (wherever they ran); Idle() is worker time blocked on an empty ready
// buffer. The management goroutine itself is not a worker: like the sim's
// Dedicated model, its processor is not in the utilization denominator —
// that is exactly the resource trade the paper's comparison prices.
//
// Invariants the stall detectors rely on: every task popped from the
// state machine is immediately in the ready channel, held by a worker, or
// queued/applied as a completion, so the state machine's InFlight count
// covers everything outside it. The management goroutine parks on the
// doorbell only when InFlight > 0 (completions are coming and will ring)
// or after finishing; workers ring the doorbell whenever they push a
// completion or find the buffer empty, so the cycle after the last
// completion always observes the final state.
type async struct {
	sm      StateMachine
	workers int
	rec     *trace.Recorder // flight recorder (nil = tracing off)
	met     *telemetry.Set  // ready-buffer occupancy gauge (nil = metrics off)

	readyCap int
	lowWater int
	batch    int // completion drain chunk per CompleteBatch call

	ready chan core.Task // bounded ready-buffer; closed when the run is over
	comp  *mpsc          // completion queue, workers -> management goroutine
	wake  chan struct{}  // management doorbell, capacity 1

	// smMu serializes state-machine access between the management
	// goroutine and inline-fallback cycles run on worker goroutines. The
	// ready channel is sent to only under smMu (after a finished check),
	// so a send can never race the close.
	smMu sync.Mutex

	failed    atomic.Bool // Abort/stall/panic happened; mirrors err != nil
	finished  atomic.Bool // set under smMu exactly once when the run is over
	closeOnce sync.Once
	loopDone  chan struct{} // closed when the management goroutine exits

	errMu sync.Mutex
	err   error

	notify func() // pool progress callback; nil outside a pool

	mgmtNS       atomic.Int64 // state-machine time of management cycles
	idleNS       atomic.Int64 // worker time blocked on the empty ready buffer
	lastDrain    atomic.Int64 // UnixNano of the last finished management cycle
	inlineCycles atomic.Int64 // fallback cycles run on worker goroutines

	// Management-side scratch, guarded by smMu: the refill buffer handed
	// to NextTasks and the drain buffer handed to CompleteBatch, so
	// steady-state cycles allocate nothing.
	refillBuf []core.Task
	drainBuf  []core.Task
}

// asyncDrainStale is the drain-latency watermark: with work queued for
// the management goroutine and no cycle finished for this long, workers
// assume it is descheduled and drain inline.
const asyncDrainStale = 200 * time.Microsecond

func newAsync(sm StateMachine, cfg Config) *async {
	readyCap := cfg.ReadyCap
	if readyCap <= 0 {
		// The paper's outset condition, applied to the buffer: about two
		// buffered tasks per processor keeps everyone fed across a refill.
		readyCap = 2 * cfg.Workers
		if readyCap < 8 {
			readyCap = 8
		}
	}
	low := cfg.LowWater
	if low <= 0 {
		low = readyCap / 4
		if low < 1 {
			low = 1
		}
	}
	if low >= readyCap {
		low = readyCap - 1
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 8
	}
	return &async{
		sm:       sm,
		workers:  cfg.Workers,
		rec:      cfg.Trace,
		met:      cfg.Metrics,
		readyCap: readyCap,
		lowWater: low,
		batch:    batch,
		ready:    make(chan core.Task, readyCap),
		// Between two drains at most ReadyCap buffered + Workers executing
		// tasks can complete; the extra Workers is racing margin. Overflow
		// is not lost either way: a full push falls back to inline drain.
		comp:     newMPSC(readyCap + 2*cfg.Workers),
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
	}
}

// SetNotify registers the pool progress callback (Notifier). Call before
// Start.
func (m *async) SetNotify(fn func()) { m.notify = fn }

// Join blocks until the management goroutine has exited. Call only after
// the run is over (workers exited or Abort called); it is the point after
// which the state machine is quiescent and its statistics safe to read.
func (m *async) Join() { <-m.loopDone }

// Start activates the program, performs the first refill synchronously so
// workers find work immediately, and spawns the management goroutine.
func (m *async) Start() {
	m.smMu.Lock()
	m0 := time.Now()
	m.sm.Start()
	m.refillLocked()
	m.mgmtNS.Add(int64(time.Since(m0)))
	m.lastDrain.Store(time.Now().UnixNano())
	m.smMu.Unlock()
	go m.loop()
}

// loop is the management goroutine: run cycles until the program is done,
// aborted, or stalled; park on the doorbell in between.
func (m *async) loop() {
	defer close(m.loopDone)
	for {
		if !m.cycle() {
			return
		}
		<-m.wake
	}
}

// cycle runs one management pass and reports whether the loop should
// continue. The pool progress callback fires outside smMu (the pool takes
// its own lock inside it, and holds that lock while probing this manager).
func (m *async) cycle() bool {
	m.smMu.Lock()
	alive, progressed := m.cycleLocked()
	m.smMu.Unlock()
	if progressed && m.notify != nil {
		m.notify()
	}
	return alive
}

// cycleLocked is the management pass: drain completions, top up the ready
// buffer, overlap deferred management, detect completion and stalls.
// Caller holds smMu. It returns alive=false when the run is over and
// progressed=true when completions were applied, tasks were buffered, or
// the run finished — the events a pool parked elsewhere must hear about.
func (m *async) cycleLocked() (alive, progressed bool) {
	if m.finished.Load() {
		return false, false
	}
	for {
		// The failure check precedes the drain: once the run has failed
		// (abort, cancellation, panic) queued completions are dropped,
		// never applied — the same nothing-mutates-the-state-machine-
		// after-the-failure-point invariant the serial and sharded
		// managers enforce on their submission paths.
		if m.failed.Load() {
			m.finishLocked()
			return false, true
		}
		m0 := time.Now()
		drained := m.drainLocked()
		if drained {
			progressed = true
		}
		if m.failed.Load() {
			// A recovered completion-processing panic may have left the
			// state machine inconsistent; do not touch it again.
			m.mgmtNS.Add(int64(time.Since(m0)))
			m.finishLocked()
			return false, true
		}
		refilled := m.refillLocked()
		if refilled {
			progressed = true
		}
		done := m.sm.Done()
		m.mgmtNS.Add(int64(time.Since(m0)))
		if done {
			m.finishLocked()
			return false, true
		}

		// Deferred management: overlap it with computation while the
		// ready buffer is healthy, and absorb it whenever a refill came
		// up empty — it may be the only source of new releases. One unit
		// per iteration keeps the loop responsive to arriving completions.
		if m.sm.HasDeferred() && (len(m.ready) > m.lowWater || !refilled) {
			m1 := time.Now()
			_, _ = m.sm.DeferredMgmt()
			m.mgmtNS.Add(int64(time.Since(m1)))
			continue
		}

		if !drained && !refilled {
			// Nothing to apply, nothing to hand out, no deferred work. If
			// nothing is in flight either, no future completion can ring
			// the doorbell: the scheduler has stalled — a bug its liveness
			// guarantees should prevent; fail loudly instead of parking
			// forever.
			if m.sm.InFlight() == 0 {
				m.fail(fmt.Errorf("executive: stalled at phase %d: ready-buffer empty, nothing in flight",
					m.sm.CurrentPhase()))
				m.finishLocked()
				return false, true
			}
			m.lastDrain.Store(time.Now().UnixNano())
			return true, progressed
		}

		// Progress was made; go around again — more completions may have
		// landed while we refilled.
		m.lastDrain.Store(time.Now().UnixNano())
	}
}

// drainLocked applies queued completions in batches of m.batch. Caller
// holds smMu. Panics in completion processing fail the run, as in the
// other managers.
func (m *async) drainLocked() bool {
	any := false
	for {
		buf := m.drainBuf[:0]
		for len(buf) < m.batch {
			t, ok := m.comp.pop()
			if !ok {
				break
			}
			buf = append(buf, t)
		}
		m.drainBuf = buf[:0]
		if len(buf) == 0 {
			return any
		}
		any = true
		func() {
			defer func() {
				if r := recover(); r != nil {
					m.fail(fmt.Errorf("executive: completion processing panicked: %v", r))
				}
			}()
			m.sm.CompleteBatch(buf)
		}()
		if m.failed.Load() {
			return any
		}
	}
}

// refillLocked tops the ready buffer up from the state machine. Caller
// holds smMu; sends cannot block because only the smMu holder sends and
// the free-slot count is computed first, and cannot hit a closed channel
// because finishLocked runs under the same mutex.
func (m *async) refillLocked() bool {
	free := m.readyCap - len(m.ready)
	if free <= 0 {
		return false
	}
	ts, _ := m.sm.NextTasks(m.refillBuf[:0], free)
	m.refillBuf = ts[:0]
	for _, t := range ts {
		m.ready <- t
	}
	if m.met != nil && len(ts) > 0 {
		// Occupancy right after the top-up; workers pop concurrently, so
		// the gauge is a sample, not an invariant.
		m.met.ReadyOccupancy.Set(int64(len(m.ready)))
	}
	return len(ts) > 0
}

// finishLocked marks the run over and closes the ready buffer, releasing
// every worker parked in a receive. Caller holds smMu. The doorbell ring
// covers the case where an inline-fallback cycle finished the run while
// the management goroutine was parked.
func (m *async) finishLocked() {
	m.finished.Store(true)
	m.closeOnce.Do(func() { close(m.ready) })
	m.ring()
}

// fail records err (first wins) and raises the fast-path abort flag.
func (m *async) fail(err error) {
	m.errMu.Lock()
	first := m.err == nil
	if first {
		m.err = err
	}
	m.errMu.Unlock()
	if first {
		recordAbort(m.rec)
	}
	m.failed.Store(true)
}

// ring rings the management doorbell (level-triggered: extra rings while
// one is pending are dropped, and every cycle re-reads all state).
func (m *async) ring() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// tryInlineCycle runs one management cycle on the calling worker
// goroutine if the state machine is free — the shared body of every
// worker-side fallback. It never blocks behind a live management
// goroutine, and fires the pool notify outside the lock exactly as the
// management goroutine's own cycle does.
func (m *async) tryInlineCycle() {
	if !m.smMu.TryLock() {
		return
	}
	m.inlineCycles.Add(1)
	_, progressed := m.cycleLocked()
	m.smMu.Unlock()
	if progressed && m.notify != nil {
		m.notify()
	}
}

// helpIfStale runs a management cycle on this worker goroutine when the
// management goroutine appears descheduled: no cycle has finished within
// the drain-latency watermark. This is the no-spare-core degradation
// path — with GOMAXPROCS too small for a dedicated management thread the
// async manager behaves like a coarse-grained locked manager instead of
// letting workers spin behind a starved thread.
func (m *async) helpIfStale() {
	if time.Now().UnixNano()-m.lastDrain.Load() < int64(asyncDrainStale) {
		return
	}
	m.tryInlineCycle()
}

// vet filters a ready-channel receive: a closed channel or a raised abort
// flag ends the worker's run (a task received after Abort is dropped — the
// run's results are void).
func (m *async) vet(t core.Task, ok bool) (core.Task, bool) {
	if !ok || m.failed.Load() {
		return core.Task{}, false
	}
	return t, true
}

// Next blocks until a task is available: fast path one channel receive,
// slow path ring the doorbell (so the management goroutine re-evaluates
// after the last completion), help inline past the watermark, then park
// in the receive — the next refill's send is the targeted wakeup.
func (m *async) Next(w int) (core.Task, bool) {
	select {
	case t, ok := <-m.ready:
		return m.vet(t, ok)
	default:
	}
	if m.failed.Load() {
		return core.Task{}, false
	}
	m.ring()
	m.helpIfStale()
	select {
	case t, ok := <-m.ready:
		return m.vet(t, ok)
	default:
	}
	i0 := time.Now()
	if m.rec != nil {
		m.rec.Ring(w).Record(trace.KPark, m.rec.Now(), int32(w), 0, -1, 0, 0, 0)
	}
	t, ok := <-m.ready
	d := time.Since(i0)
	m.idleNS.Add(int64(d))
	if m.rec != nil {
		m.rec.Ring(w).Record(trace.KUnpark, m.rec.Now(), int32(w), 0, -1, 0, 0, int64(d))
	}
	return m.vet(t, ok)
}

// TryNext is the non-blocking Next the multi-tenant pool drives. Unlike
// the inline managers it cannot absorb management on the calling worker
// in the common case — management belongs to the background goroutine —
// so ok=false means "nothing buffered right now": the doorbell has been
// rung, and the pool's progress callback (Notifier) fires when the
// management goroutine produces work, waking pool-parked workers.
func (m *async) TryNext(w int) (core.Task, bool) {
	if m.failed.Load() {
		return core.Task{}, false
	}
	select {
	case t, ok := <-m.ready:
		return m.vet(t, ok)
	default:
	}
	m.ring()
	m.helpIfStale()
	select {
	case t, ok := <-m.ready:
		return m.vet(t, ok)
	default:
		return core.Task{}, false
	}
}

// Complete pushes the completion into the MPSC queue and rings the
// management doorbell. It reports false: the completion has only been
// handed to the management goroutine, so no successor work can have been
// released by this call — the pool learns about releases through the
// Notifier callback instead. A completion arriving after the run failed
// is dropped, matching the other managers' post-failure contract.
func (m *async) Complete(w int, t core.Task) bool {
	if m.failed.Load() || m.finished.Load() {
		return false
	}
	for !m.comp.push(t) {
		// Queue full: the management goroutine is far behind. Help drain
		// inline, or yield to whoever currently owns the state machine.
		if m.failed.Load() || m.finished.Load() {
			return false
		}
		m.tryInlineCycle()
		runtime.Gosched()
	}
	m.ring()
	if m.comp.size() >= int64(m.batch) {
		m.helpIfStale()
	}
	return false
}

// Flush has nothing to flush — completions are already queued to the
// management goroutine; it just rings the doorbell so they are applied
// promptly once the worker moves to another job.
func (m *async) Flush(w int) bool {
	m.ring()
	return false
}

// Done reports whether the state machine has completed every phase.
func (m *async) Done() bool {
	m.smMu.Lock()
	defer m.smMu.Unlock()
	return m.sm.Done()
}

// InFlight reports dispatched-but-incomplete tasks. Tasks in the ready
// buffer, held by workers, and completions queued but not yet applied are
// all still in flight from the state machine's point of view, so the
// pool's all-parked stall probe cannot mistake a busy async manager for a
// stalled one.
func (m *async) InFlight() int {
	m.smMu.Lock()
	defer m.smMu.Unlock()
	return m.sm.InFlight()
}

// Abort terminates the run with err — unless the state machine has
// already completed (checked under smMu, the lock that serialized the
// finishing cycle, so there is no window): a late cancellation must not
// poison a fully-executed run's results. Callers observe the refusal
// through Err() == nil.
func (m *async) Abort(err error) {
	m.smMu.Lock()
	if !m.failed.Load() && m.sm.Done() {
		m.smMu.Unlock()
		return
	}
	// fail() under smMu: releasing the lock between the Done check and
	// the error store would let a final management cycle complete the
	// run in the gap and still get poisoned. smMu -> errMu is the
	// established order (management cycles call fail under smMu).
	m.fail(err)
	m.smMu.Unlock()
	m.ring()
}

func (m *async) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

func (m *async) Mgmt() time.Duration { return time.Duration(m.mgmtNS.Load()) }
func (m *async) Idle() time.Duration { return time.Duration(m.idleNS.Load()) }

// InlineCycles reports how many management cycles ran on worker
// goroutines through the no-spare-core fallback (diagnostics).
func (m *async) InlineCycles() int64 { return m.inlineCycles.Load() }
