// Package executive runs a core.Scheduler on real goroutines: a pool of
// worker goroutines executes granule work functions while a mutex-guarded
// scheduler plays the role of the serial PAX executive. Every scheduler
// interaction happens under the manager lock, exactly serializing
// management the way the single UNIVAC executive did; the time spent inside
// the lock is measured as management time, so the paper's computation-to-
// management ratio can be observed on real hardware.
package executive

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/granule"
)

// Config parameterizes an executive run.
type Config struct {
	// Workers is the number of worker goroutines (>=1). Unlike the
	// simulator, the executive has no separate management processor: the
	// manager runs inline on whichever worker needs it, under the lock.
	Workers int
}

// Report aggregates a run's measurements.
type Report struct {
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration
	// Compute is the summed time workers spent executing granule work.
	Compute time.Duration
	// Mgmt is the summed time spent inside scheduler calls (dispatch,
	// completion processing, deferred management) under the manager lock.
	Mgmt time.Duration
	// Idle is the summed time workers spent parked waiting for work.
	Idle time.Duration
	// Tasks is the number of tasks executed.
	Tasks int64
	// MgmtRatio is Compute/Mgmt — the paper's computation-to-management
	// ratio (0 when Mgmt is 0).
	MgmtRatio float64
	// Utilization is Compute / (Workers * Wall).
	Utilization float64
	// Sched holds the scheduler's operation counts.
	Sched core.Stats
}

func (r *Report) String() string {
	return fmt.Sprintf("wall=%v compute=%v mgmt=%v idle=%v tasks=%d ratio=%.1f util=%.3f",
		r.Wall, r.Compute, r.Mgmt, r.Idle, r.Tasks, r.MgmtRatio, r.Utilization)
}

// Run executes prog on cfg.Workers goroutines with scheduler options opt.
// It returns when every phase has completed.
func Run(prog *core.Program, opt core.Options, cfg Config) (*Report, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("executive: need at least 1 worker")
	}
	if opt.Workers <= 0 {
		opt.Workers = cfg.Workers
	}
	sched, err := core.New(prog, opt)
	if err != nil {
		return nil, err
	}

	e := &engine{
		sched:   sched,
		prog:    prog,
		workers: cfg.Workers,
	}
	e.cond = sync.NewCond(&e.mu)

	start := time.Now()
	e.mu.Lock()
	m0 := time.Now()
	sched.Start()
	e.mgmt += time.Since(m0)
	e.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	wg.Wait()

	if e.err != nil {
		return nil, e.err
	}

	wall := time.Since(start)
	rep := &Report{
		Wall:    wall,
		Compute: e.compute,
		Mgmt:    e.mgmt,
		Idle:    e.idle,
		Tasks:   e.tasks,
		Sched:   sched.Stats(),
	}
	if e.mgmt > 0 {
		rep.MgmtRatio = float64(e.compute) / float64(e.mgmt)
	}
	if wall > 0 {
		rep.Utilization = float64(e.compute) / (float64(cfg.Workers) * float64(wall))
	}
	return rep, nil
}

type engine struct {
	mu   sync.Mutex
	cond *sync.Cond

	sched   *core.Scheduler
	prog    *core.Program
	workers int

	// Accumulators, guarded by mu.
	compute time.Duration
	mgmt    time.Duration
	idle    time.Duration
	tasks   int64
	err     error
	waiting int
}

// worker is the goroutine body: ask the serial manager for work, execute
// it, report completion, park when nothing is ready.
func (e *engine) worker() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return
		}
		m0 := time.Now()
		task, _, ok := e.sched.NextTask()
		e.mgmt += time.Since(m0)

		if ok {
			work := e.prog.Phases[task.Phase].Work
			e.mu.Unlock()

			c0 := time.Now()
			workErr := e.execute(work, task)
			dur := time.Since(c0)

			e.mu.Lock()
			if workErr != nil {
				if e.err == nil {
					e.err = workErr
				}
				e.cond.Broadcast()
				return
			}
			e.compute += dur
			e.tasks++
			m1 := time.Now()
			func() {
				defer func() {
					if r := recover(); r != nil && e.err == nil {
						e.err = fmt.Errorf("executive: completion processing panicked: %v", r)
					}
				}()
				e.sched.Complete(task)
			}()
			e.mgmt += time.Since(m1)
			e.cond.Broadcast()
			continue
		}

		if e.sched.Done() {
			e.cond.Broadcast()
			return
		}

		// Idle executive moment: absorb deferred successor-splitting
		// management tasks before parking.
		if e.sched.HasDeferred() {
			m1 := time.Now()
			_, _ = e.sched.DeferredMgmt()
			e.mgmt += time.Since(m1)
			e.cond.Broadcast()
			continue
		}

		// Park until a completion or release makes work available. If
		// every worker is parked with nothing in flight, the scheduler
		// has stalled — a bug its liveness guarantees should prevent;
		// fail loudly instead of deadlocking.
		if e.waiting+1 == e.workers && e.sched.InFlight() == 0 {
			e.err = fmt.Errorf("executive: stalled at phase %d: all workers idle, nothing in flight",
				e.sched.CurrentPhase())
			e.cond.Broadcast()
			return
		}
		i0 := time.Now()
		e.waiting++
		e.cond.Wait()
		e.waiting--
		e.idle += time.Since(i0)
	}
}

// execute runs the work function over the task's granules (outside the
// manager lock). A nil work function is a pure scheduling run. Panics in
// user work are captured and surfaced as run errors rather than tearing
// down the whole process.
func (e *engine) execute(work core.WorkFn, task core.Task) (err error) {
	if work == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("executive: work panicked in %v: %v", task, r)
		}
	}()
	task.Run.Each(func(g granule.ID) { work(g) })
	return nil
}
