// Package executive runs a core.Scheduler on real goroutines. It is split
// into two layers:
//
//   - the state machine (core.Scheduler, seen through the StateMachine
//     interface) holds every scheduling decision and no synchronization;
//   - a Manager owns all synchronization policy around the state machine
//     and drives it on behalf of a pool of worker goroutines.
//
// Three managers are provided. SerialManager guards every state-machine
// interaction with one global mutex, exactly serializing management the
// way the single UNIVAC executive did — the paper-faithful baseline whose
// lock time is measured as management time. ShardedManager gives each
// worker a bounded local task deque with batched completion submission and
// work stealing between shards, paying the global serialization once per
// batch instead of once per task — the management layer itself made
// parallel, which is what the paper's rundown analysis calls for once the
// executive becomes the bottleneck. AsyncManager moves all management to
// one dedicated background goroutine — the paper's separate executive
// processor realized on hardware: workers pull from a ready-buffer and
// push completions into a lock-free MPSC queue, and never touch the
// state-machine lock at all.
package executive

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes an executive run.
type Config struct {
	// Workers is the number of worker goroutines (>=1). Under the serial
	// and sharded managers management runs inline on whichever worker
	// needs it, under the manager's locks; the async manager adds one
	// dedicated management goroutine beside the workers (not counted in
	// Workers or in the utilization denominator — the paper's separate
	// executive processor).
	Workers int
	// Manager selects the management layer (SerialManager default).
	Manager ManagerKind
	// DequeCap bounds each worker's local task deque and sets the refill
	// batch size (ShardedManager only). <=0 selects 16.
	DequeCap int
	// Batch is the completion batch size: completions accumulate per
	// worker and are submitted to the state machine in one lock
	// acquisition when the batch fills (ShardedManager), or set the
	// management goroutine's per-CompleteBatch drain chunk
	// (AsyncManager). <=0 selects 8.
	Batch int
	// ReadyCap bounds the async manager's shared ready-buffer — the
	// channel of dispatched tasks the management goroutine keeps topped
	// up (AsyncManager only). <=0 selects 2*Workers (minimum 8), the
	// paper's two-tasks-per-processor outset condition applied to the
	// buffer.
	ReadyCap int
	// LowWater is the ready-buffer level above which the async
	// management goroutine overlaps deferred management with computation
	// (AsyncManager only). <=0 selects ReadyCap/4 (minimum 1).
	LowWater int
	// Adaptive enables the adaptive batching controller (ShardedManager
	// only): DequeCap and Batch become starting values retuned online
	// from the observed management and idle shares each refill epoch.
	// Run and the tenant pool set it from core.Options.AdaptiveBatch.
	Adaptive bool
	// MgmtTarget is the adaptive controller's lock-overhead-share
	// setpoint; <= 0 selects 0.02. Ignored unless Adaptive.
	MgmtTarget float64
	// Observer, when non-nil, receives periodic Snapshots sampled on a
	// dedicated goroutine while the run is live, plus one Final snapshot
	// after the workers exit — built from the finished Report on
	// success, from the counters accumulated so far on failure or
	// cancellation. The callback must not block for long — it delays
	// only the sampler, not the workers, but a stuck callback delays run
	// teardown.
	Observer func(Snapshot)
	// ObservePeriod is the sampling period; <= 0 selects 10ms. Ignored
	// without Observer.
	ObservePeriod time.Duration
	// Trace, when non-nil, flight-records every scheduling decision the
	// run makes — dispatch/complete per task (wall-clock nanoseconds
	// since the recorder's start), steal attempts/wins/losses and
	// park/unpark from the managers, controller retunes, aborts. Workers
	// record into per-worker rings with no synchronization; the caller
	// merges with Recorder.Take after the run returns.
	Trace *trace.Recorder
	// Faults, when non-nil, compiles a deterministic fault-injection
	// campaign for this run (see internal/fault and faults.go): the same
	// Spec the simulator prices in virtual time, with Rule.After read as
	// wall-clock nanoseconds since run start and delays bounded by
	// fault.Sleep. The injection-off fast path is one nil check per task.
	Faults *fault.Spec
	// Metrics, when non-nil, is the telemetry set the run records into:
	// per-worker counters (dispatches, completions, steals), latency
	// histograms (dispatch wait), and the time-share gauges behind the
	// registry's Prometheus/expvar exposition. All durations are
	// wall-clock nanoseconds. The run always keeps its core counters in a
	// metric set (a private one when this is nil); a caller-provided set
	// additionally turns on the fine-grained latency histograms, which
	// cost one extra clock reading per dispatch.
	Metrics *telemetry.Set
}

// Report aggregates a run's measurements.
type Report struct {
	// Manager identifies the management layer that produced the run.
	Manager ManagerKind `json:"manager"`
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration `json:"wall_ns"`
	// Compute is the summed time workers spent executing granule work.
	Compute time.Duration `json:"compute_ns"`
	// Mgmt is the summed time spent inside manager-serialized scheduler
	// calls (dispatch, completion processing, deferred management).
	Mgmt time.Duration `json:"mgmt_ns"`
	// Idle is the summed time workers spent parked waiting for work.
	Idle time.Duration `json:"idle_ns"`
	// Tasks is the number of tasks executed.
	Tasks int64 `json:"tasks"`
	// MgmtRatio is Compute/Mgmt — the paper's computation-to-management
	// ratio (0 when Mgmt is 0).
	MgmtRatio float64 `json:"mgmt_ratio"`
	// Utilization is Compute / (Workers * Wall).
	Utilization float64 `json:"utilization"`
	// Sched holds the scheduler's operation counts.
	Sched core.Stats `json:"sched"`
}

func (r *Report) String() string {
	return fmt.Sprintf("manager=%v wall=%v compute=%v mgmt=%v idle=%v tasks=%d ratio=%.1f util=%.3f",
		r.Manager, r.Wall, r.Compute, r.Mgmt, r.Idle, r.Tasks, r.MgmtRatio, r.Utilization)
}

// Run executes prog on cfg.Workers goroutines with scheduler options opt
// under the configured manager. It returns when every phase has completed.
func Run(prog *core.Program, opt core.Options, cfg Config) (*Report, error) {
	return RunContext(context.Background(), prog, opt, cfg)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the run aborts at the next dispatch boundary — workers finish the task
// in hand, parked workers are released, any dedicated management
// goroutine is joined — and the error wraps ctx.Err() (test with
// errors.Is). Teardown leaks no goroutines. A nil ctx behaves like
// context.Background().
func RunContext(ctx context.Context, prog *core.Program, opt core.Options, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// failEarly keeps the observer contract — one Final snapshot on
	// every outcome — for runs that die before starting: the stream
	// opens and closes with a single bare Final.
	failEarly := func(err error) (*Report, error) {
		if cfg.Observer != nil {
			cfg.Observer(Snapshot{Final: true})
		}
		return nil, err
	}
	// An already-cancelled context aborts deterministically before any
	// work: relying on the watcher goroutine alone would let a short
	// program finish before the watcher is ever scheduled.
	if err := ctx.Err(); err != nil {
		return failEarly(fmt.Errorf("executive: run canceled: %w", err))
	}
	if cfg.Workers < 1 {
		return failEarly(fmt.Errorf("executive: need at least 1 worker"))
	}
	if opt.Workers <= 0 {
		opt.Workers = cfg.Workers
	}
	if opt.AdaptiveBatch {
		cfg.Adaptive = true
		if cfg.MgmtTarget <= 0 {
			cfg.MgmtTarget = opt.MgmtTarget
		}
	}
	sched, err := core.New(prog, opt)
	if err != nil {
		return failEarly(err)
	}
	// The engine's task/compute accounting lives in a telemetry set either
	// way — sharded per-worker counters contend less than the shared
	// atomics they replace. A caller-provided set additionally enables the
	// fine-grained latency histograms (one extra clock reading per
	// dispatch) and is what the registry exposes over Prometheus/expvar.
	fine := cfg.Metrics != nil
	met := cfg.Metrics
	if met == nil {
		met = telemetry.NewSet(telemetry.NewRegistry(cfg.Workers, "ns"))
	}
	cfg.Metrics = met // managers record steal/retune counters into the same set
	mgr, err := newManager(sched, cfg)
	if err != nil {
		return failEarly(err)
	}

	e := &engine{mgr: mgr, prog: prog, rec: cfg.Trace, met: met, fine: fine}
	if cfg.Faults != nil {
		e.plan = fault.New(*cfg.Faults)
		e.live.Store(int64(cfg.Workers))
	}
	if rec := cfg.Trace; rec != nil {
		m := rec.Meta()
		if m.Backend == "" {
			m.Backend = "exec"
		}
		m.Manager = cfg.Manager.String()
		m.Workers = cfg.Workers
		m.TimeUnit = trace.UnitNanos
		if len(m.Phases) == 0 {
			for _, ph := range prog.Phases {
				m.Phases = append(m.Phases, trace.PhaseMeta{Name: ph.Name, Granules: ph.Granules})
			}
		}
		rec.Emit(trace.KStart, rec.Now(), -1, 0, -1, 0, 0, 0)
	}

	start := time.Now()
	e.start = start
	mgr.Start()
	// Lifecycle metrics mirror the simulator's dump shape: one job,
	// admitted immediately (the plain executive has no admission queue).
	met.JobsSubmitted.Inc(0)
	met.ActiveJobs.Add(1)
	met.QueueWait.Observe(0)

	// Cancellation watcher: ctx firing aborts the manager, which releases
	// parked workers and makes every subsequent Next return ok=false. The
	// watcher is joined before RunContext returns so teardown is
	// goroutine-leak-free.
	stopWatch := WatchCancel(ctx, func(err error) {
		mgr.Abort(fmt.Errorf("executive: run canceled: %w", err))
	})

	var smp *Sampler
	if cfg.Observer != nil {
		smp = StartSampler(cfg.ObservePeriod, func() {
			cfg.Observer(e.liveSnapshot(cfg.Workers))
		})
	}

	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			defer wg.Done()
			// The pprof label makes per-worker attribution visible in CPU
			// and goroutine profiles (profile → rundown_worker=N), tying
			// profile samples to the same worker index the metric shards
			// and trace rings use.
			pprof.Do(ctx, pprof.Labels("rundown_worker", strconv.Itoa(w)),
				func(context.Context) { e.worker(w) })
		}(w)
	}
	wg.Wait()
	// A manager with its own management goroutine (async) may still be
	// driving the state machine for a moment after the workers exit; join
	// it before reading the final statistics.
	if j, ok := mgr.(Joiner); ok {
		j.Join()
	}
	stopWatch()
	smp.Stop()

	if err := mgr.Err(); err != nil {
		// The observer contract promises a closing Final snapshot on
		// every outcome: a failed or cancelled run closes the stream with
		// the counters accumulated so far. (The manager recorded its own
		// KAbort at the failure point.)
		e.closeMetrics()
		if cfg.Observer != nil {
			final := e.liveSnapshot(cfg.Workers)
			final.Final = true
			cfg.Observer(final)
		}
		return nil, err
	}

	wall := time.Since(start)
	if rec := cfg.Trace; rec != nil {
		rec.Emit(trace.KFinish, rec.Now(), -1, 0, -1, 0, 0, 0)
	}
	e.closeMetrics()
	rep := &Report{
		Manager: cfg.Manager,
		Wall:    wall,
		Compute: time.Duration(met.ComputeTime.Value()),
		Mgmt:    mgr.Mgmt(),
		Idle:    mgr.Idle(),
		Tasks:   met.Completions.Value(),
		Sched:   sched.Stats(),
	}
	if rep.Mgmt > 0 {
		rep.MgmtRatio = float64(rep.Compute) / float64(rep.Mgmt)
	}
	var overhead float64
	rep.Utilization, overhead = telemetry.Shares(
		int64(rep.Compute), int64(rep.Mgmt), cfg.Workers, int64(wall))
	if cfg.Observer != nil {
		final := Snapshot{
			Elapsed: wall, Tasks: rep.Tasks,
			Compute: rep.Compute, Mgmt: rep.Mgmt, Idle: rep.Idle,
			Utilization: rep.Utilization, OverheadShare: overhead,
			Final: true, Done: true,
		}
		cfg.Observer(final)
	}
	return rep, nil
}

// engine is the manager-agnostic worker pool: it executes work functions
// and reports the results; every scheduling decision and all
// synchronization live behind the Manager.
type engine struct {
	mgr  Manager
	prog *core.Program
	rec  *trace.Recorder // flight recorder (nil = tracing off)

	// plan is the compiled fault-injection campaign (nil = injection
	// off); start anchors Rule.After wall-clock offsets and live is the
	// WorkerCrash floor — the last live worker refuses to crash.
	plan  *fault.Plan
	start time.Time
	live  atomic.Int64

	// met holds the run's counters (always non-nil: a private registry
	// when the caller configured none) on padded per-worker shards; fine
	// additionally enables the latency histograms, which need an extra
	// clock reading per dispatch.
	met  *telemetry.Set
	fine bool

	// mgmtSeen/idleSeen are the manager accumulator values already
	// mirrored into the metric set. Touched only by the sampler goroutine
	// and, after the sampler is joined, the finishing RunContext — never
	// concurrently.
	mgmtSeen int64
	idleSeen int64
}

// syncTimes mirrors the manager's management/idle accumulators into the
// metric counters as deltas, so mid-run scrapes of the registry see the
// same time shares the Report totals at the end.
func (e *engine) syncTimes() {
	if mg := int64(e.mgr.Mgmt()); mg > e.mgmtSeen {
		e.met.MgmtTime.Add(0, mg-e.mgmtSeen)
		e.mgmtSeen = mg
	}
	if id := int64(e.mgr.Idle()); id > e.idleSeen {
		e.met.IdleTime.Add(0, id-e.idleSeen)
		e.idleSeen = id
	}
}

// closeMetrics settles the run's lifecycle metrics on any outcome: the
// final management/idle mirror and the job-level counters.
func (e *engine) closeMetrics() {
	e.syncTimes()
	e.met.JobsDone.Inc(0)
	e.met.ActiveJobs.Add(-1)
}

// worker is the goroutine body: ask the manager for work, execute it,
// report completion; exit when the manager says the run is over. With
// tracing on, this one manager-agnostic loop records every task's
// dispatch and completion into the worker's private ring; the
// tracing-off fast path is a single nil check per task.
func (e *engine) worker(w int) {
	var ring *trace.Ring
	if e.rec != nil {
		ring = e.rec.Ring(w)
	}
	for {
		var a0 time.Time
		if e.fine {
			a0 = time.Now()
		}
		task, ok := e.mgr.Next(w)
		if !ok {
			return
		}
		if e.fine {
			// On the real backends the dispatch wait is the whole Next call
			// — queue pop, lock wait, steal sweep, park — the honest answer
			// to "how long did this worker wait for its next task".
			e.met.DispatchWait.Observe(int64(time.Since(a0)))
		}
		e.met.Dispatches.Inc(w)
		if ring != nil {
			ring.Record(trace.KDispatch, e.rec.Now(), int32(w), 0,
				int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), 0)
		}
		work := e.prog.Phases[task.Phase].Work

		var tf taskFaults
		if e.plan != nil {
			e.injectTask(w, task, &work, &tf)
			if tf.err != nil {
				e.mgr.Abort(tf.err)
				return
			}
		}

		c0 := time.Now()
		workErr := e.execute(work, task)
		if workErr == nil && tf.factor > 1 {
			stretchCompute(time.Since(c0), tf.factor)
		}
		dur := time.Since(c0)

		if workErr != nil {
			e.mgr.Abort(workErr)
			return
		}
		if e.plan != nil {
			e.beforeComplete(w, &tf)
		}
		e.met.ComputeTime.Add(w, int64(dur))
		e.met.Completions.Inc(w)
		// Recorded BEFORE the completion is submitted to management, so
		// any dispatch it enables carries a larger Seq (the causal edge
		// replay and diff rely on).
		if ring != nil {
			ring.Record(trace.KComplete, e.rec.Now(), int32(w), 0,
				int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), int64(dur))
		}
		e.mgr.Complete(w, task)
		if e.plan != nil && e.maybeCrash(w) {
			return
		}
	}
}

// execute runs the work function over the task's granules (outside any
// manager lock). A nil work function is a pure scheduling run. Panics in
// user work are captured and surfaced as run errors rather than tearing
// down the whole process.
func (e *engine) execute(work core.WorkFn, task core.Task) (err error) {
	if work == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("executive: work panicked in %v: %v", task, r)
		}
	}()
	task.Run.Each(func(g granule.ID) { work(g) })
	return nil
}
