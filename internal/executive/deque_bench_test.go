package executive

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// The BenchmarkDeque* suite is the microscopic half of the perf story
// (BenchmarkManager* in the repo root is the macroscopic half): owner-side
// push/pop with no lock, steals as single CASes, and zero allocations on
// every steady-state path. CI runs these with -race as a smoke and emits
// BENCH_pr3.json so the trajectory has data points.

// BenchmarkDequePushPop: the owner's uncontended push/pop pair — the cost
// a worker pays per locally-buffered task.
func BenchmarkDequePushPop(b *testing.B) {
	d := newDeque(64)
	task := mkTask(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pushBottom(task)
		if _, ok := d.popBottom(); !ok {
			b.Fatal("popBottom failed")
		}
	}
}

// BenchmarkDequePushPopDeep: push/pop across a standing backlog of 32
// tasks, so bottom moves through the ring rather than bouncing on one
// slot.
func BenchmarkDequePushPopDeep(b *testing.B) {
	d := newDeque(64)
	for i := 0; i < 32; i++ {
		d.pushBottom(mkTask(i))
	}
	task := mkTask(99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pushBottom(task)
		if _, ok := d.popBottom(); !ok {
			b.Fatal("popBottom failed")
		}
	}
}

// BenchmarkDequeSteal: uncontended steals — the CAS a thief pays per task
// taken from a victim.
func BenchmarkDequeSteal(b *testing.B) {
	d := newDeque(1 << 16)
	task := mkTask(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pushBottom(task)
		if _, ok := d.steal(); !ok {
			b.Fatal("steal failed")
		}
	}
}

// BenchmarkDequeStealContended: steals racing a live owner that keeps the
// deque fed while popping its own bottom — the rundown regime.
func BenchmarkDequeStealContended(b *testing.B) {
	d := newDeque(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		task := mkTask(7)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d.size() < 128 {
				d.pushBottom(task)
			} else {
				d.popBottom()
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.steal()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkDequeShardSteal: the manager-level sweep — find a victim,
// CAS-transfer half its deque, pop one to run. Compare allocs/op against
// the old mutex deque's make([]core.Task, take) per steal: must be 0.
func BenchmarkDequeShardSteal(b *testing.B) {
	m := shardedForTest(4, 64, 8)
	var load []core.Task
	for i := 0; i < 32; i++ {
		load = append(load, mkTask(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.load(1, load)
		for {
			if _, ok := m.steal(0); !ok {
				break
			}
			m.drainNoAlloc(0)
		}
		m.drainNoAlloc(1)
	}
}
