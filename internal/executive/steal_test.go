package executive

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/granule"
)

// mkTask builds a distinguishable task for direct deque manipulation.
func mkTask(id int) core.Task {
	return core.Task{ID: id, Phase: 0, Run: granule.Range{Lo: granule.ID(id), Hi: granule.ID(id + 1)}}
}

func shardedForTest(workers, dequeCap, batch int) *sharded {
	return newSharded(&stubSM{}, Config{Workers: workers, DequeCap: dequeCap, Batch: batch})
}

// load pushes ts into shard i's deque the way a refill would: reversed, so
// the owner's popBottom consumes ts in order and thieves steal from the
// ts tail.
func (m *sharded) load(i int, ts []core.Task) {
	for k := len(ts) - 1; k >= 0; k-- {
		m.shards[i].dq.pushBottom(ts[k])
	}
}

// drain pops shard i's deque empty from the owner side.
func (m *sharded) drain(i int) []core.Task {
	var out []core.Task
	for {
		t, ok := m.shards[i].dq.popBottom()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// TestStealSingleTaskVictim: a thief sweeping a victim whose deque holds
// exactly one task must take that task (half of one is one), leave the
// victim empty, and leave nothing parked in its own deque.
func TestStealSingleTaskVictim(t *testing.T) {
	m := shardedForTest(4, 8, 4)
	m.load(2, []core.Task{mkTask(42)})

	got, ok := m.steal(0)
	if !ok {
		t.Fatal("steal found nothing with a one-task victim present")
	}
	if got.ID != 42 {
		t.Fatalf("stole task %d, want 42", got.ID)
	}
	for i := range m.shards {
		if n := m.shards[i].dq.size(); n != 0 {
			t.Errorf("shard %d holds %d tasks after the steal, want 0", i, n)
		}
	}
}

// TestStealLandsAtDequeCap: stealing half of a full victim (2*cap tasks)
// hands the thief exactly cap tasks — one in hand, cap-1 parked in its own
// deque. Nothing may be lost or duplicated at the boundary.
func TestStealLandsAtDequeCap(t *testing.T) {
	const cap = 8
	m := shardedForTest(2, cap, 4)
	var all []core.Task
	for i := 0; i < 2*cap; i++ {
		all = append(all, mkTask(i))
	}
	m.load(1, all)

	got, ok := m.steal(0)
	if !ok {
		t.Fatal("steal failed against a full victim")
	}
	if n := m.shards[0].dq.size(); n != cap-1 {
		t.Fatalf("thief deque holds %d tasks, want %d (cap-1, one in hand)", n, cap-1)
	}
	if n := m.shards[1].dq.size(); n != cap {
		t.Fatalf("victim deque holds %d tasks, want %d", n, cap)
	}
	seen := map[int]int{got.ID: 1}
	for w := 0; w < 2; w++ {
		for _, task := range m.drain(w) {
			seen[task.ID]++
		}
	}
	for i := 0; i < 2*cap; i++ {
		if seen[i] != 1 {
			t.Fatalf("task %d present %d times after the steal, want exactly once", i, seen[i])
		}
	}
}

// TestStealSweepRotation: the sweep start rotates per call, so successive
// steals with every victim populated must not all hit the same neighbor —
// the bias this rotation removes had every starving worker hammering
// shard w+1 first.
func TestStealSweepRotation(t *testing.T) {
	m := shardedForTest(4, 8, 4)
	firstVictims := map[int]bool{}
	for round := 0; round < 3; round++ {
		for i := 1; i < 4; i++ {
			m.drain(i)
			m.load(i, []core.Task{mkTask(100*round + i)})
		}
		got, ok := m.steal(0)
		if !ok {
			t.Fatal("steal failed with three populated victims")
		}
		firstVictims[got.ID%100] = true
		m.drain(0)
	}
	if len(firstVictims) < 2 {
		t.Errorf("three rotated sweeps all hit the same victim %v", firstVictims)
	}
}

// TestStealTimeCountsAsMgmt: steal sweeps run CAS loops and deque
// transfers outside the global lock, so their time must still be folded
// into Mgmt() — otherwise reported computation-to-management ratios
// undercount sharded management.
func TestStealTimeCountsAsMgmt(t *testing.T) {
	m := shardedForTest(2, 8, 4)
	before := m.Mgmt()
	m.load(1, []core.Task{mkTask(1), mkTask(2)})
	if _, ok := m.steal(0); !ok {
		t.Fatal("steal failed")
	}
	if m.stealNS.Load() <= 0 {
		t.Fatal("steal sweep recorded no time")
	}
	if got := m.Mgmt(); got <= before {
		t.Errorf("Mgmt() = %v after a steal, want > %v (steal time folded in)", got, before)
	}
}

// TestStealPriorityOrder: a refill-ordered deque must hand the owner its
// tasks in priority order while a thief's sweep returns the
// highest-priority task of the half it stole.
func TestStealPriorityOrder(t *testing.T) {
	m := shardedForTest(2, 8, 4)
	// Priority order 0,1,2,3: the owner must pop 0 first.
	m.load(1, []core.Task{mkTask(0), mkTask(1), mkTask(2), mkTask(3)})
	if got, ok := m.shards[1].dq.popBottom(); !ok || got.ID != 0 {
		t.Fatalf("owner popped %v, want task 0", got)
	}
	// Thief steals half of {1,2,3} = 2 tasks from the low-priority end
	// (3, then 2) and runs the better of them first.
	got, ok := m.steal(0)
	if !ok {
		t.Fatal("steal failed")
	}
	if got.ID != 2 {
		t.Errorf("thief ran task %d first, want 2 (best of the stolen half)", got.ID)
	}
	rest := m.drain(0)
	if len(rest) != 1 || rest[0].ID != 3 {
		t.Errorf("thief parked %v, want [task 3]", rest)
	}
	if got, ok := m.shards[1].dq.popBottom(); !ok || got.ID != 1 {
		t.Fatalf("victim owner popped %v, want task 1", got)
	}
}

// TestStealRacesPopBottom is the -race workout for the deque protocol in
// its manager context: one owner draining popBottom against several
// thieves sweeping steal, with refills, must hand every task to exactly
// one goroutine.
func TestStealRacesPopBottom(t *testing.T) {
	const (
		thieves = 6
		batches = 64
		perLoad = 32
	)
	m := shardedForTest(thieves+1, 8, 4)

	var mu sync.Mutex
	seen := map[int]int{}
	record := func(task core.Task) {
		mu.Lock()
		seen[task.ID]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 1; th <= thieves; th++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if task, ok := m.steal(w); ok {
					record(task)
				}
				// A successful steal parks part of the loot in the thief's
				// own deque; drain it so the count balances.
				for {
					task, ok := m.shards[w].dq.popBottom()
					if !ok {
						break
					}
					record(task)
				}
			}
		}(th)
	}

	// The owner loads its deque in bursts and drains popBottom, racing the
	// thieves' top-end CAS grabs.
	next := 0
	for b := 0; b < batches; b++ {
		var load []core.Task
		for i := 0; i < perLoad; i++ {
			load = append(load, mkTask(next))
			next++
		}
		m.load(0, load)
		for {
			task, ok := m.shards[0].dq.popBottom()
			if !ok {
				break
			}
			record(task)
		}
	}
	// Let the thieves mop up whatever they parked locally.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == next || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for w := 0; w <= thieves; w++ {
		for {
			task, ok := m.shards[w].dq.popBottom()
			if !ok {
				break
			}
			record(task)
		}
	}

	if len(seen) != next {
		t.Fatalf("extracted %d distinct tasks, want %d", len(seen), next)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d extracted %d times", id, n)
		}
	}
}
