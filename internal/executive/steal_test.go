package executive

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/granule"
)

// mkTask builds a distinguishable task for direct deque manipulation.
func mkTask(id int) core.Task {
	return core.Task{ID: id, Phase: 0, Run: granule.Range{Lo: granule.ID(id), Hi: granule.ID(id + 1)}}
}

// TestStealSingleTaskVictim: a thief sweeping a victim whose deque holds
// exactly one task must take that task (the "back half" of one is one),
// leave the victim empty, and push nothing into its own deque.
func TestStealSingleTaskVictim(t *testing.T) {
	m := newSharded(&stubSM{}, 4, 8, 4)
	m.shards[2].push([]core.Task{mkTask(42)})

	got, ok := m.steal(0)
	if !ok {
		t.Fatal("steal found nothing with a one-task victim present")
	}
	if got.ID != 42 {
		t.Fatalf("stole task %d, want 42", got.ID)
	}
	for i := range m.shards {
		if n := len(m.shards[i].tasks); n != 0 {
			t.Errorf("shard %d holds %d tasks after the steal, want 0", i, n)
		}
	}
}

// TestStealLandsAtDequeCap: stealing the back half of a full victim (2*cap
// tasks) hands the thief exactly cap tasks — one in hand, cap-1 pushed —
// so its deque lands exactly at DequeCap. Nothing may be lost or
// duplicated at the boundary.
func TestStealLandsAtDequeCap(t *testing.T) {
	const cap = 8
	m := newSharded(&stubSM{}, 2, cap, 4)
	var all []core.Task
	for i := 0; i < 2*cap; i++ {
		all = append(all, mkTask(i))
	}
	m.shards[1].push(all)

	got, ok := m.steal(0)
	if !ok {
		t.Fatal("steal failed against a full victim")
	}
	if n := len(m.shards[0].tasks); n != cap-1 {
		t.Fatalf("thief deque holds %d tasks, want %d (cap-1, one in hand)", n, cap-1)
	}
	if n := len(m.shards[1].tasks); n != cap {
		t.Fatalf("victim deque holds %d tasks, want %d", n, cap)
	}
	seen := map[int]int{got.ID: 1}
	for _, sh := range []*shard{&m.shards[0], &m.shards[1]} {
		for _, task := range sh.tasks {
			seen[task.ID]++
		}
	}
	for i := 0; i < 2*cap; i++ {
		if seen[i] != 1 {
			t.Fatalf("task %d present %d times after the steal, want exactly once", i, seen[i])
		}
	}
}

// TestStealSweepRotation: the sweep start rotates per call, so successive
// steals with every victim populated must not all hit the same neighbor —
// the bias this rotation removes had every starving worker hammering
// shard w+1 first.
func TestStealSweepRotation(t *testing.T) {
	m := newSharded(&stubSM{}, 4, 8, 4)
	firstVictims := map[int]bool{}
	for round := 0; round < 3; round++ {
		for i := 1; i < 4; i++ {
			m.shards[i].tasks = nil
			m.shards[i].push([]core.Task{mkTask(100*round + i)})
		}
		got, ok := m.steal(0)
		if !ok {
			t.Fatal("steal failed with three populated victims")
		}
		firstVictims[got.ID%100] = true
	}
	if len(firstVictims) < 2 {
		t.Errorf("three rotated sweeps all hit the same victim %v", firstVictims)
	}
}

// TestStealTimeCountsAsMgmt: steal sweeps take per-shard locks outside the
// global lock, so their time must still be folded into Mgmt() — otherwise
// reported computation-to-management ratios undercount sharded management.
func TestStealTimeCountsAsMgmt(t *testing.T) {
	m := newSharded(&stubSM{}, 2, 8, 4)
	before := m.Mgmt()
	m.shards[1].push([]core.Task{mkTask(1), mkTask(2)})
	if _, ok := m.steal(0); !ok {
		t.Fatal("steal failed")
	}
	if m.stealNS.Load() <= 0 {
		t.Fatal("steal sweep recorded no time")
	}
	if got := m.Mgmt(); got <= before {
		t.Errorf("Mgmt() = %v after a steal, want > %v (steal time folded in)", got, before)
	}
}

// TestStealRacesPopFront is the -race workout for the deque protocol: one
// owner draining popFront against several thieves sweeping steal, with
// refills, must hand every task to exactly one goroutine.
func TestStealRacesPopFront(t *testing.T) {
	const (
		thieves = 6
		batches = 64
		perLoad = 32
	)
	m := newSharded(&stubSM{}, thieves+1, 8, 4)

	var mu sync.Mutex
	seen := map[int]int{}
	record := func(task core.Task) {
		mu.Lock()
		seen[task.ID]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 1; th <= thieves; th++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if task, ok := m.steal(w); ok {
					record(task)
				}
				// A successful steal parks half the loot in the thief's own
				// deque; drain it so the count balances.
				for {
					task, ok := m.shards[w].popFront()
					if !ok {
						break
					}
					record(task)
				}
			}
		}(th)
	}

	// The owner loads its deque in bursts and drains popFront, racing the
	// thieves' back-half grabs.
	next := 0
	for b := 0; b < batches; b++ {
		var load []core.Task
		for i := 0; i < perLoad; i++ {
			load = append(load, mkTask(next))
			next++
		}
		m.shards[0].push(load)
		for {
			task, ok := m.shards[0].popFront()
			if !ok {
				break
			}
			record(task)
		}
	}
	// Let the thieves mop up whatever they parked locally.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == next || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for w := 0; w <= thieves; w++ {
		for {
			task, ok := m.shards[w].popFront()
			if !ok {
				break
			}
			record(task)
		}
	}

	if len(seen) != next {
		t.Fatalf("extracted %d distinct tasks, want %d", len(seen), next)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d extracted %d times", id, n)
		}
	}
}
