package executive

import "testing"

// TestTunerDefaults: the zero config selects the sharded manager's fixed
// defaults as the starting point (cap 16, batch 8) and sane bounds.
func TestTunerDefaults(t *testing.T) {
	tu := NewTuner(TunerConfig{})
	if tu.Cap() != 16 || tu.Batch() != 8 {
		t.Fatalf("defaults cap=%d batch=%d, want 16/8", tu.Cap(), tu.Batch())
	}
	if _, _, changed := tu.Observe(0, 0, 0); changed {
		t.Error("empty epoch changed parameters")
	}
}

// synthEpoch models the closed loop the tuner actually runs in: the
// amortizable lock overhead falls inversely with the batch (each doubling
// halves the visit count), and hoarded-idle starvation appears once the
// batch outgrows the machine (here: above 64).
func synthEpoch(cap int) (overhead, hoardedIdle int64) {
	const capacity = 1_000_000
	overhead = int64(float64(capacity) * 0.5 / float64(cap))
	if cap > 64 {
		hoardedIdle = int64(float64(capacity) * 0.4)
	}
	return overhead, hoardedIdle
}

// TestTunerGrowsUnderLockPressure: with the lock-overhead share far above
// target the tuner must grow multiplicatively, then hold once the share
// falls below target — and never move again on the steady signal (the
// hold band is wider than the one halving each doubling buys).
func TestTunerGrowsUnderLockPressure(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 2, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 40; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi)
	}
	// 0.5/cap <= 0.05 first holds at cap 16: growth must stop there, well
	// short of the hoarding region.
	if tu.Cap() != 16 {
		t.Fatalf("converged cap = %d, want 16", tu.Cap())
	}
	if tu.Batch() > tu.Cap() {
		t.Fatalf("batch %d exceeds cap %d", tu.Batch(), tu.Cap())
	}
	settled := tu.Changes()
	for e := 0; e < 100; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi)
	}
	if tu.Changes() != settled {
		t.Fatalf("steady signal kept moving the parameters: %d changes after settling at %d",
			tu.Changes(), settled)
	}
}

// TestTunerShrinksOnHoardedIdle: overhead cheap, workers starving while
// peers hold tasks — the tuner must shrink until the starvation clears.
func TestTunerShrinksOnHoardedIdle(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 512, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 60; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi)
	}
	// synthEpoch's starvation signal fires above cap 64, so 64 is the
	// first quiet size; its overhead share (0.0078) is inside the hold
	// band.
	if tu.Cap() != 64 {
		t.Fatalf("converged cap = %d, want 64", tu.Cap())
	}
}

// TestTunerRundownTailDoesNotRatchet: parked workers with every deque
// empty contribute nothing to hoarded idle — a genuine rundown tail must
// hold, and a one-epoch starvation blip must also hold (the persistence
// gate).
func TestTunerRundownTailDoesNotRatchet(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 64, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 40; e++ {
		tu.Observe(capacity, 0, 0) // idle tail: no hoarded starvation
	}
	if tu.Cap() != 64 || tu.Changes() != 0 {
		t.Fatalf("rundown tail moved the cap to %d (%d changes), want held at 64",
			tu.Cap(), tu.Changes())
	}
	// One starvation blip between quiet epochs: armed, then disarmed.
	tu.Observe(capacity, 0, capacity/2)
	tu.Observe(capacity, 0, 0)
	tu.Observe(capacity, 0, capacity/2)
	if tu.Changes() != 0 {
		t.Fatalf("isolated starvation blips shrank the cap to %d", tu.Cap())
	}
}

// TestTunerNeverOscillatesSteady: any fixed signal must produce at most
// one-directional travel and then silence — the persistence gate plus the
// hold band must prevent limit cycles even for signals at the thresholds.
func TestTunerNeverOscillatesSteady(t *testing.T) {
	const capacity = 1_000_000
	cases := []struct{ overShare, starveShare float64 }{
		{0.0, 0.0},
		{0.04, 0.0},
		{0.05, 0.5},
		{0.051, 0.5},
		{0.019, 0.5},
		{0.9, 0.0},
	}
	for _, tc := range cases {
		tu := NewTuner(TunerConfig{Cap: 16, MgmtTarget: 0.05})
		over := int64(tc.overShare * capacity)
		starve := int64(tc.starveShare * capacity)
		dir := 0 // -1 shrinking, +1 growing
		prev := tu.Cap()
		for e := 0; e < 60; e++ {
			tu.Observe(capacity, over, starve)
			switch {
			case tu.Cap() > prev:
				if dir < 0 {
					t.Fatalf("%+v: grew after shrinking (cap %d -> %d)", tc, prev, tu.Cap())
				}
				dir = 1
			case tu.Cap() < prev:
				if dir > 0 {
					t.Fatalf("%+v: shrank after growing (cap %d -> %d)", tc, prev, tu.Cap())
				}
				dir = -1
			}
			prev = tu.Cap()
		}
	}
}

// TestTunerClamps: growth saturates at MaxCap, shrink at MinCap, and the
// batch never exceeds the cap.
func TestTunerClamps(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 16, MaxCap: 64, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 30; e++ {
		tu.Observe(capacity, capacity/2, 0) // overhead share 50%: grow hard
	}
	if tu.Cap() != 64 {
		t.Fatalf("cap = %d, want clamped at 64", tu.Cap())
	}
	tu2 := NewTuner(TunerConfig{Cap: 8, MinCap: 2, MgmtTarget: 0.05})
	for e := 0; e < 30; e++ {
		tu2.Observe(capacity, 0, capacity/2) // hoarded idle 50%: shrink hard
	}
	if tu2.Cap() != 2 {
		t.Fatalf("cap = %d, want clamped at 2", tu2.Cap())
	}
	if tu2.Batch() > tu2.Cap() {
		t.Fatalf("batch %d exceeds cap %d", tu2.Batch(), tu2.Cap())
	}
}
