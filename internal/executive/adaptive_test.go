package executive

import "testing"

// TestTunerDefaults: the zero config selects the sharded manager's fixed
// defaults as the starting point (cap 16, batch 8) and sane bounds.
func TestTunerDefaults(t *testing.T) {
	tu := NewTuner(TunerConfig{})
	if tu.Cap() != 16 || tu.Batch() != 8 {
		t.Fatalf("defaults cap=%d batch=%d, want 16/8", tu.Cap(), tu.Batch())
	}
	if _, _, changed := tu.Observe(0, 0, 0, 0); changed {
		t.Error("empty epoch changed parameters")
	}
}

// synthEpoch models the closed loop the tuner actually runs in: the
// amortizable lock overhead falls inversely with the batch (each doubling
// halves the visit count), and hoarded-idle starvation appears once the
// batch outgrows the machine (here: above 64).
func synthEpoch(cap int) (overhead, hoardedIdle int64) {
	const capacity = 1_000_000
	overhead = int64(float64(capacity) * 0.5 / float64(cap))
	if cap > 64 {
		hoardedIdle = int64(float64(capacity) * 0.4)
	}
	return overhead, hoardedIdle
}

// TestTunerGrowsUnderLockPressure: with the lock-overhead share far above
// target the tuner must grow multiplicatively, then hold once the share
// falls below target — and never move again on the steady signal (the
// hold band is wider than the one halving each doubling buys).
func TestTunerGrowsUnderLockPressure(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 2, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 40; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi, 0)
	}
	// 0.5/cap <= 0.05 first holds at cap 16: growth must stop there, well
	// short of the hoarding region.
	if tu.Cap() != 16 {
		t.Fatalf("converged cap = %d, want 16", tu.Cap())
	}
	if tu.Batch() > tu.Cap() {
		t.Fatalf("batch %d exceeds cap %d", tu.Batch(), tu.Cap())
	}
	settled := tu.Changes()
	for e := 0; e < 100; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi, 0)
	}
	if tu.Changes() != settled {
		t.Fatalf("steady signal kept moving the parameters: %d changes after settling at %d",
			tu.Changes(), settled)
	}
}

// TestTunerShrinksOnHoardedIdle: overhead cheap, workers starving while
// peers hold tasks — the tuner must shrink until the starvation clears.
func TestTunerShrinksOnHoardedIdle(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 512, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 60; e++ {
		o, hi := synthEpoch(tu.Cap())
		tu.Observe(capacity, o, hi, 0)
	}
	// synthEpoch's starvation signal fires above cap 64, so 64 is the
	// first quiet size; its overhead share (0.0078) is inside the hold
	// band.
	if tu.Cap() != 64 {
		t.Fatalf("converged cap = %d, want 64", tu.Cap())
	}
}

// TestTunerRundownTailDoesNotRatchet: parked workers with every deque
// empty contribute nothing to hoarded idle — a genuine rundown tail must
// hold, and a one-epoch starvation blip must also hold (the persistence
// gate).
func TestTunerRundownTailDoesNotRatchet(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 64, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 40; e++ {
		tu.Observe(capacity, 0, 0, 0) // idle tail: no hoarded starvation
	}
	if tu.Cap() != 64 || tu.Changes() != 0 {
		t.Fatalf("rundown tail moved the cap to %d (%d changes), want held at 64",
			tu.Cap(), tu.Changes())
	}
	// One starvation blip between quiet epochs: armed, then disarmed.
	tu.Observe(capacity, 0, capacity/2, 0)
	tu.Observe(capacity, 0, 0, 0)
	tu.Observe(capacity, 0, capacity/2, 0)
	if tu.Changes() != 0 {
		t.Fatalf("isolated starvation blips shrank the cap to %d", tu.Cap())
	}
}

// TestTunerLockStarvationGrows is the ROADMAP's large-P scenario: the
// global lock is saturated, but the waiters park on the condition
// variable instead of spinning on the mutex, so the measured acquisition
// overhead reads ~0 against machine capacity and the classic grow rule
// stays silent. The parked-while-lock-busy input must trigger growth on
// its own once it persists two epochs — a one-epoch blip moves nothing —
// and must stay quiet below its target, and always lose to the
// hoarded-idle shrink signal when tasks provably sat in peer deques.
func TestTunerLockStarvationGrows(t *testing.T) {
	const capacity = 1_000_000
	tu := NewTuner(TunerConfig{Cap: 16, MgmtTarget: 0.05})
	// Overhead ~0 (well under target), no hoarded idle, 30% of capacity
	// parked behind a busy management path.
	cap0 := tu.Cap()
	tu.Observe(capacity, capacity/1000, 0, capacity*3/10)
	if tu.Cap() != cap0 {
		t.Fatalf("one lock-starvation epoch moved the cap to %d, want persistence gate to hold %d",
			tu.Cap(), cap0)
	}
	tu.Observe(capacity, capacity/1000, 0, capacity*3/10)
	if tu.Cap() != cap0*2 {
		t.Fatalf("persistent lock starvation at 30%% grew cap to %d, want %d", tu.Cap(), cap0*2)
	}

	// An isolated blip between quiet epochs disarms the gate.
	blip := NewTuner(TunerConfig{Cap: 16, MgmtTarget: 0.05})
	blip.Observe(capacity, 0, 0, capacity*3/10)
	blip.Observe(capacity, 0, 0, 0)
	blip.Observe(capacity, 0, 0, capacity*3/10)
	if blip.Changes() != 0 {
		t.Fatalf("isolated lock-starvation blips grew the cap to %d", blip.Cap())
	}

	// Below the starvation target nothing moves.
	quiet := NewTuner(TunerConfig{Cap: 16, MgmtTarget: 0.05})
	for e := 0; e < 20; e++ {
		quiet.Observe(capacity, capacity/1000, 0, capacity/10) // 10% < 20% target
	}
	if quiet.Changes() != 0 {
		t.Fatalf("sub-target lock starvation moved the cap to %d", quiet.Cap())
	}

	// Hoarded idle wins over lock starvation: tasks sat in peer deques,
	// so the remedy is redistribution (shrink), not amortization.
	both := NewTuner(TunerConfig{Cap: 64, MgmtTarget: 0.05})
	for e := 0; e < 10; e++ {
		both.Observe(capacity, 0, capacity/2, capacity/2)
	}
	if both.Cap() >= 64 {
		t.Fatalf("simultaneous hoarding+starvation grew the cap to %d, want shrink", both.Cap())
	}

	// The veto holds even when the shrink rule itself cannot fire: with
	// the overhead share inside the hold band (above MgmtTarget*LowBand,
	// below MgmtTarget) the shrink case's guard fails, but high hoarded
	// idle must still block the lock-starvation grow — growing the
	// refill while tasks sit hoarded deepens the starvation.
	band := NewTuner(TunerConfig{Cap: 64, MgmtTarget: 0.05})
	for e := 0; e < 10; e++ {
		// overShare 0.03 (hold band), hoarded 40%, lock starvation 30%.
		band.Observe(capacity, capacity*3/100, capacity*4/10, capacity*3/10)
	}
	if band.Cap() != 64 || band.Changes() != 0 {
		t.Fatalf("hold-band hoarding let lock starvation move the cap to %d (%d changes), want held at 64",
			band.Cap(), band.Changes())
	}
}

// TestTunerNeverOscillatesSteady: any fixed signal must produce at most
// one-directional travel and then silence — the persistence gate plus the
// hold band must prevent limit cycles even for signals at the thresholds.
func TestTunerNeverOscillatesSteady(t *testing.T) {
	const capacity = 1_000_000
	cases := []struct{ overShare, starveShare float64 }{
		{0.0, 0.0},
		{0.04, 0.0},
		{0.05, 0.5},
		{0.051, 0.5},
		{0.019, 0.5},
		{0.9, 0.0},
	}
	for _, tc := range cases {
		tu := NewTuner(TunerConfig{Cap: 16, MgmtTarget: 0.05})
		over := int64(tc.overShare * capacity)
		starve := int64(tc.starveShare * capacity)
		dir := 0 // -1 shrinking, +1 growing
		prev := tu.Cap()
		for e := 0; e < 60; e++ {
			tu.Observe(capacity, over, starve, 0)
			switch {
			case tu.Cap() > prev:
				if dir < 0 {
					t.Fatalf("%+v: grew after shrinking (cap %d -> %d)", tc, prev, tu.Cap())
				}
				dir = 1
			case tu.Cap() < prev:
				if dir > 0 {
					t.Fatalf("%+v: shrank after growing (cap %d -> %d)", tc, prev, tu.Cap())
				}
				dir = -1
			}
			prev = tu.Cap()
		}
	}
}

// TestTunerClamps: growth saturates at MaxCap, shrink at MinCap, and the
// batch never exceeds the cap.
func TestTunerClamps(t *testing.T) {
	tu := NewTuner(TunerConfig{Cap: 16, MaxCap: 64, MgmtTarget: 0.05})
	const capacity = 1_000_000
	for e := 0; e < 30; e++ {
		tu.Observe(capacity, capacity/2, 0, 0) // overhead share 50%: grow hard
	}
	if tu.Cap() != 64 {
		t.Fatalf("cap = %d, want clamped at 64", tu.Cap())
	}
	tu2 := NewTuner(TunerConfig{Cap: 8, MinCap: 2, MgmtTarget: 0.05})
	for e := 0; e < 30; e++ {
		tu2.Observe(capacity, 0, capacity/2, 0) // hoarded idle 50%: shrink hard
	}
	if tu2.Cap() != 2 {
		t.Fatalf("cap = %d, want clamped at 2", tu2.Cap())
	}
	if tu2.Batch() > tu2.Cap() {
		t.Fatalf("batch %d exceeds cap %d", tu2.Batch(), tu2.Cap())
	}
}
