package executive

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// sharded is the parallel Manager: each worker owns a bounded local task
// deque and a local completion batch, so the global lock that guards the
// state machine is acquired once per batch instead of once per task.
//
//   - Refill: when a worker's deque drains it acquires the global lock
//     once, submits its accumulated completions (CompleteBatch), and pulls
//     up to DequeCap tasks (NextTasks) into its deque.
//   - Batched completion: completions accumulate per worker and are
//     applied to the state machine in one lock acquisition when the batch
//     fills or at the next refill, whichever comes first.
//   - Work stealing: a worker whose deque drains during rundown first
//     steals the back half of a peer's deque before falling back to the
//     global refill path, keeping processors busy while the queue runs dry.
//
// Invariants the stall detector relies on: a worker only parks after its
// deque is empty, a steal sweep failed, and its completion batch was
// flushed under the global lock; nothing refills a parked worker's deque
// or batch. So when every worker is parked, no task is held anywhere
// outside the state machine and InFlight()==0 identifies a true stall.
type sharded struct {
	mu   sync.Mutex // guards sm, waiting, err, mgmt, idle
	cond *sync.Cond

	sm      StateMachine
	workers int
	cap     int // deque capacity = refill batch size
	batch   int // completion batch size

	shards []shard
	failed atomic.Bool // fast-path abort flag, mirrors err != nil

	// stealTick rotates the steal-sweep start position across calls so
	// starving workers spread their first probes over different victims
	// instead of all hammering the same neighbor.
	stealTick atomic.Uint64
	// stealNS accumulates time spent inside steal sweeps (per-shard lock
	// acquisitions and deque copies outside the global lock). It is
	// management work — the sharded analogue of executive dispatch — and
	// is folded into Mgmt() so computation-to-management ratios do not
	// undercount sharded management.
	stealNS atomic.Int64

	// Accumulators, guarded by mu.
	mgmt    time.Duration
	idle    time.Duration
	waiting int
	err     error
}

// shard is one worker's local state. tasks is the bounded local deque:
// the owner pushes refills and pops the front; thieves take the back
// half. done is the owner-only completion batch — it is touched by no
// goroutine but its owner, so it needs no lock.
type shard struct {
	mu    sync.Mutex
	tasks []core.Task
	done  []core.Task
	// refillBuf is the owner-only scratch the refill path hands to
	// NextTasks, so steady-state refills allocate nothing.
	refillBuf []core.Task
}

func (sh *shard) popFront() (core.Task, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.tasks) == 0 {
		return core.Task{}, false
	}
	t := sh.tasks[0]
	sh.tasks = sh.tasks[1:]
	return t, true
}

func (sh *shard) push(ts []core.Task) {
	if len(ts) == 0 {
		return
	}
	sh.mu.Lock()
	sh.tasks = append(sh.tasks, ts...)
	sh.mu.Unlock()
}

func newSharded(sm StateMachine, workers, dequeCap, batch int) *sharded {
	if dequeCap <= 0 {
		dequeCap = 16
	}
	if batch <= 0 {
		batch = 8
	}
	m := &sharded{
		sm:      sm,
		workers: workers,
		cap:     dequeCap,
		batch:   batch,
		shards:  make([]shard, workers),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *sharded) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.sm.Start()
	m.mgmt += time.Since(m0)
}

func (m *sharded) Next(w int) (core.Task, bool) {
	if m.failed.Load() {
		return core.Task{}, false
	}
	if t, ok := m.shards[w].popFront(); ok {
		return t, true
	}
	if t, ok := m.steal(w); ok {
		return t, true
	}
	return m.refill(w, true)
}

// TryNext is the non-blocking Next the multi-tenant pool drives: local
// deque, then a steal sweep, then one non-parking pass through the global
// refill path (which flushes this worker's completion batch and absorbs
// deferred management before declaring the state machine dry). ok=false
// means nothing is dispatchable right now; the pool decides whether to
// look at another job or park.
func (m *sharded) TryNext(w int) (core.Task, bool) {
	if m.failed.Load() {
		return core.Task{}, false
	}
	if t, ok := m.shards[w].popFront(); ok {
		return t, true
	}
	if t, ok := m.steal(w); ok {
		return t, true
	}
	return m.refill(w, false)
}

// steal sweeps the other shards and takes the back half of the first
// non-empty deque it finds. The owner pops the front (the state machine's
// priority order), so thieves taking the back trade a small priority
// inversion for minimal contention with the victim. The sweep start
// rotates per call (stealTick): a fixed w+1 start would make every
// starving worker hammer the same neighbor first under contention. Sweep
// time is charged to stealNS — it is management work done outside the
// global lock.
func (m *sharded) steal(w int) (core.Task, bool) {
	n := len(m.shards)
	if n < 2 {
		return core.Task{}, false
	}
	t0 := time.Now()
	defer func() { m.stealNS.Add(int64(time.Since(t0))) }()
	start := int(m.stealTick.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx == w {
			continue
		}
		v := &m.shards[idx]
		v.mu.Lock()
		k := len(v.tasks)
		if k == 0 {
			v.mu.Unlock()
			continue
		}
		take := (k + 1) / 2
		stolen := make([]core.Task, take)
		copy(stolen, v.tasks[k-take:])
		v.tasks = v.tasks[:k-take]
		v.mu.Unlock()
		m.shards[w].push(stolen[1:])
		return stolen[0], true
	}
	return core.Task{}, false
}

// refill is the global-lock path: flush this worker's completion batch,
// pull a deque refill, absorb deferred management, or (when park is set)
// park. Returning ok=false means the program is done, the run was
// aborted, the manager detected a stall, or — non-parking callers only —
// nothing is dispatchable right now.
func (m *sharded) refill(w int, park bool) (core.Task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	triedSteal := false
	for {
		if m.err != nil {
			return core.Task{}, false
		}
		m0 := time.Now()
		m.flushLocked(w)
		if m.err != nil {
			// A recovered completion-processing panic may have left the
			// state machine inconsistent; do not touch it again.
			m.mgmt += time.Since(m0)
			return core.Task{}, false
		}
		ts, _ := m.sm.NextTasks(m.shards[w].refillBuf[:0], m.cap)
		m.shards[w].refillBuf = ts[:0]
		m.mgmt += time.Since(m0)
		if len(ts) > 0 {
			m.shards[w].push(ts[1:])
			// Wake parked peers: they can pull their own refill from the
			// state machine, or — when this refill drained it — steal from
			// the deque we just filled.
			if m.waiting > 0 && (len(ts) > 1 || m.sm.ReadyTasks() > 0) {
				m.cond.Broadcast()
			}
			return ts[0], true
		}
		if m.sm.Done() {
			m.cond.Broadcast()
			return core.Task{}, false
		}

		// Idle executive moment: absorb deferred management (successor
		// splitting, incremental composite-map builds) before parking.
		if m.sm.HasDeferred() {
			m1 := time.Now()
			_, _ = m.sm.DeferredMgmt()
			m.mgmt += time.Since(m1)
			continue
		}

		if !park {
			return core.Task{}, false
		}

		// The state machine is dry, but a peer's deque may have refilled
		// since our last sweep: try stealing once more before parking.
		if !triedSteal {
			m.mu.Unlock()
			t, ok := m.steal(w)
			m.mu.Lock()
			triedSteal = true
			if ok {
				return t, true
			}
			continue
		}

		// Every other worker parked only after flushing its batch and
		// emptying its deque, so InFlight()==0 here means no task exists
		// anywhere outside the state machine: a true stall.
		if m.waiting+1 == m.workers && m.sm.InFlight() == 0 {
			m.failLocked(fmt.Errorf("executive: stalled at phase %d: all workers idle, nothing in flight",
				m.sm.CurrentPhase()))
			return core.Task{}, false
		}
		i0 := time.Now()
		m.waiting++
		m.cond.Wait()
		m.waiting--
		m.idle += time.Since(i0)
		triedSteal = false
	}
}

// Complete accumulates t in worker w's local batch, submitting the batch
// to the state machine in one lock acquisition when it fills.
func (m *sharded) Complete(w int, t core.Task) bool {
	sh := &m.shards[w]
	sh.done = append(sh.done, t)
	if len(sh.done) < m.batch {
		return false
	}
	m.mu.Lock()
	m0 := time.Now()
	m.flushLocked(w)
	m.mgmt += time.Since(m0)
	m.mu.Unlock()
	return true
}

// flushLocked applies worker w's accumulated completions to the state
// machine. Completions release successor work, so parked peers are woken.
// Caller holds m.mu.
func (m *sharded) flushLocked(w int) {
	sh := &m.shards[w]
	if len(sh.done) == 0 {
		return
	}
	func() {
		defer func() {
			if r := recover(); r != nil && m.err == nil {
				m.failLocked(fmt.Errorf("executive: completion processing panicked: %v", r))
			}
		}()
		m.sm.CompleteBatch(sh.done)
	}()
	sh.done = sh.done[:0]
	m.cond.Broadcast()
}

// failLocked records err (first wins) and releases everyone. Caller holds
// m.mu.
func (m *sharded) failLocked(err error) {
	if m.err == nil {
		m.err = err
	}
	m.failed.Store(true)
	m.cond.Broadcast()
}

// Flush submits worker w's accumulated completion batch to the state
// machine. The pool calls it when a worker switches jobs, so a job's last
// completions cannot linger in the batch of a worker now busy elsewhere.
func (m *sharded) Flush(w int) bool {
	if len(m.shards[w].done) == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.flushLocked(w)
	m.mgmt += time.Since(m0)
	return true
}

// Done reports whether the state machine has completed every phase.
func (m *sharded) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.Done()
}

// InFlight reports dispatched-but-incomplete tasks, including tasks
// parked in worker-local deques and completions awaiting a batch flush.
func (m *sharded) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.InFlight()
}

func (m *sharded) Abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failLocked(err)
}

func (m *sharded) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *sharded) Mgmt() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mgmt + time.Duration(m.stealNS.Load())
}

func (m *sharded) Idle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idle
}
