package executive

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// sharded is the parallel Manager: each worker owns a lock-free Chase-Lev
// task deque and a local completion batch, so the global lock that guards
// the state machine is acquired once per batch instead of once per task —
// and the per-task path between acquisitions costs no lock at all.
//
//   - Refill: when a worker's deque drains it acquires the global lock
//     once, submits its accumulated completions (CompleteBatch), and pulls
//     up to cap tasks (NextTasks). The first refilled task is returned
//     directly; the rest are pushed into the worker's own deque in reverse
//     priority order, so the owner's popBottom consumes them in the state
//     machine's priority order while thieves steal the lowest-priority
//     end.
//   - Batched completion: completions accumulate per worker and are
//     applied to the state machine in one lock acquisition when the batch
//     fills or at the next refill, whichever comes first.
//   - Work stealing: a worker whose deque drains during rundown sweeps the
//     other shards and CAS-steals up to half of the first non-empty deque
//     it finds into its own — no lock, no allocation — before falling back
//     to the global refill path.
//   - Adaptive batching (Config.Adaptive): cap and batch are retuned
//     online by a Tuner from the observed management and idle shares each
//     refill epoch; see adaptive.go.
//
// Invariants the stall detector relies on: a worker only parks after its
// deque is empty, a steal sweep failed, and its completion batch was
// flushed under the global lock; nothing refills a parked worker's deque
// or batch. So when every worker is parked, no task is held anywhere
// outside the state machine and InFlight()==0 identifies a true stall.
type sharded struct {
	mu   sync.Mutex // guards sm, cap, waiting, err, mgmt, idle
	cond *sync.Cond

	sm      StateMachine
	workers int
	rec     *trace.Recorder // flight recorder (nil = tracing off)
	met     *telemetry.Set  // steal/retune counters (nil = metrics off)
	cap     int // deque refill batch size, guarded by mu (the tuner moves it)

	// batch is the completion batch size. It is read lock-free on the
	// per-task Complete path and rewritten under mu by the tuner, hence
	// atomic.
	batch atomic.Int32

	shards []shard
	failed atomic.Bool // fast-path abort flag, mirrors err != nil

	// stealTick rotates the steal-sweep start position across calls so
	// starving workers spread their first probes over different victims
	// instead of all hammering the same neighbor.
	stealTick atomic.Uint64
	// stealNS accumulates time spent inside steal sweeps (CAS loops and
	// deque transfers outside the global lock). It is management work —
	// the sharded analogue of executive dispatch — and is folded into
	// Mgmt() so computation-to-management ratios do not undercount
	// sharded management.
	stealNS atomic.Int64

	// Adaptive controller state, guarded by mu; tuner is nil when
	// adaptivity is disabled. lockNS accumulates time spent *acquiring*
	// the global lock (contention wait, the amortizable per-visit
	// overhead the tuner steers on — distinct from mgmt, the time spent
	// inside it).
	tuner      *Tuner
	lockNS     time.Duration
	hoardIdle  time.Duration // parked time that began with peer deques nonempty
	lockStarve time.Duration // parked time that began with the mgmt path occupied
	epochStart time.Time
	epochLock  time.Duration // lockNS snapshot at epoch start
	epochHI    time.Duration // hoardIdle snapshot at epoch start
	epochLS    time.Duration // lockStarve snapshot at epoch start

	// visitors counts workers currently inside the global management path
	// (refill, batch flush). Maintained only when the tuner is enabled;
	// read at park time to classify the wait: parking while another
	// worker occupies the path is lock starvation — the signal the
	// overhead share cannot see at large P, because cond-parked waiters
	// never touch the mutex.
	visitors atomic.Int32

	// Accumulators, guarded by mu.
	mgmt    time.Duration
	idle    time.Duration
	waiting int
	err     error
}

// shard is one worker's local state. dq is the lock-free task deque: the
// owner pushes refills and pops the bottom; thieves CAS the top. done is
// the owner-only completion batch and refillBuf the owner-only scratch the
// refill path hands to NextTasks, so steady-state refills and steals
// allocate nothing.
type shard struct {
	dq        *deque
	done      []core.Task
	refillBuf []core.Task
}

// adaptiveEpoch is the minimum wall time between tuner observations.
const adaptiveEpoch = time.Millisecond

func newSharded(sm StateMachine, cfg Config) *sharded {
	dequeCap, batch := cfg.DequeCap, cfg.Batch
	if dequeCap <= 0 {
		dequeCap = 16
	}
	if batch <= 0 {
		batch = 8
	}
	m := &sharded{
		sm:      sm,
		workers: cfg.Workers,
		rec:     cfg.Trace,
		met:     cfg.Metrics,
		cap:     dequeCap,
		shards:  make([]shard, cfg.Workers),
	}
	m.batch.Store(int32(batch))
	for i := range m.shards {
		m.shards[i].dq = newDeque(dequeCap)
	}
	if cfg.Adaptive {
		m.tuner = NewTuner(TunerConfig{
			Cap: dequeCap, Batch: batch, MgmtTarget: cfg.MgmtTarget,
		})
		m.cap = m.tuner.Cap()
		m.batch.Store(int32(m.tuner.Batch()))
	}
	if m.met != nil {
		m.met.BatchSize.Set(int64(m.cap))
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *sharded) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.sm.Start()
	m.mgmt += time.Since(m0)
	m.epochStart = time.Now()
}

func (m *sharded) Next(w int) (core.Task, bool) {
	if m.failed.Load() {
		return core.Task{}, false
	}
	if t, ok := m.shards[w].dq.popBottom(); ok {
		return t, true
	}
	if t, ok := m.steal(w); ok {
		return t, true
	}
	return m.refill(w, true)
}

// TryNext is the non-blocking Next the multi-tenant pool drives: local
// deque, then a steal sweep, then one non-parking pass through the global
// refill path (which flushes this worker's completion batch and absorbs
// deferred management before declaring the state machine dry). ok=false
// means nothing is dispatchable right now; the pool decides whether to
// look at another job or park.
func (m *sharded) TryNext(w int) (core.Task, bool) {
	if m.failed.Load() {
		return core.Task{}, false
	}
	if t, ok := m.shards[w].dq.popBottom(); ok {
		return t, true
	}
	if t, ok := m.steal(w); ok {
		return t, true
	}
	return m.refill(w, false)
}

// steal sweeps the other shards and CAS-steals up to half of the first
// non-empty deque it finds, transferring the loot into this worker's own
// deque and popping one task to run. The owner pops the bottom (the state
// machine's priority order), so thieves taking the top trade a small
// priority inversion for a single CAS per task and zero allocation. The
// sweep start rotates per call (stealTick): a fixed w+1 start would make
// every starving worker hammer the same neighbor first under contention.
// Sweep time is charged to stealNS — it is management work done outside
// the global lock.
func (m *sharded) steal(w int) (core.Task, bool) {
	n := len(m.shards)
	if n < 2 {
		return core.Task{}, false
	}
	t0 := time.Now()
	defer func() { m.stealNS.Add(int64(time.Since(t0))) }()
	var ring *trace.Ring
	if m.rec != nil {
		ring = m.rec.Ring(w)
		ring.Record(trace.KStealAttempt, m.rec.Now(), int32(w), 0, -1, 0, 0, 0)
	}
	if m.met != nil {
		m.met.StealAttempts.Inc(w)
	}
	own := m.shards[w].dq
	start := int(m.stealTick.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx == w {
			continue
		}
		v := m.shards[idx].dq
		k := v.size()
		if k <= 0 {
			continue
		}
		take := (k + 1) / 2
		var got int64
		for got < take {
			t, ok := v.steal()
			if !ok {
				break
			}
			own.pushBottom(t)
			got++
		}
		if got == 0 {
			continue
		}
		// The last transfer is the highest-priority task stolen; run it.
		if t, ok := own.popBottom(); ok {
			if ring != nil {
				// Arg carries the victim; Lo the number of tasks taken.
				ring.Record(trace.KStealWin, m.rec.Now(), int32(w), 0,
					int32(t.Phase), uint32(got), 0, int64(idx))
			}
			if m.met != nil {
				m.met.StealWins.Inc(w)
			}
			return t, true
		}
		// Everything we moved was re-stolen already; keep sweeping.
	}
	if ring != nil {
		ring.Record(trace.KStealLose, m.rec.Now(), int32(w), 0, -1, 0, 0, 0)
	}
	if m.met != nil {
		m.met.StealLoses.Inc(w)
	}
	return core.Task{}, false
}

// refill is the global-lock path: flush this worker's completion batch,
// pull a deque refill, absorb deferred management, or (when park is set)
// park. Returning ok=false means the program is done, the run was
// aborted, the manager detected a stall, or — non-parking callers only —
// nothing is dispatchable right now.
func (m *sharded) refill(w int, park bool) (core.Task, bool) {
	if m.tuner != nil {
		m.visitors.Add(1)
		defer m.visitors.Add(-1)
	}
	m.lockMeasured()
	defer m.mu.Unlock()
	triedSteal := false
	for {
		if m.err != nil {
			return core.Task{}, false
		}
		m0 := time.Now()
		m.flushLocked(w)
		if m.err != nil {
			// A recovered completion-processing panic may have left the
			// state machine inconsistent; do not touch it again.
			m.mgmt += time.Since(m0)
			return core.Task{}, false
		}
		ts, _ := m.sm.NextTasks(m.shards[w].refillBuf[:0], m.cap)
		m.shards[w].refillBuf = ts[:0]
		m.mgmt += time.Since(m0)
		m.retuneLocked()
		if len(ts) > 0 {
			sh := &m.shards[w]
			// Reverse push: the owner's popBottom then yields ts[1],
			// ts[2], ... in the state machine's priority order, and
			// thieves steal from ts[len-1], the lowest-priority end.
			for i := len(ts) - 1; i >= 1; i-- {
				sh.dq.pushBottom(ts[i])
			}
			// Wake parked peers — one per task they could acquire: they
			// can pull their own refill from the state machine, or —
			// when this refill drained it — steal from the deque we
			// just filled.
			if m.waiting > 0 {
				if avail := len(ts) - 1 + m.sm.ReadyTasks(); avail > 0 {
					m.wakeLocked(avail)
				} else {
					m.wakeStealerLocked()
				}
			}
			return ts[0], true
		}
		if m.sm.Done() {
			m.cond.Broadcast()
			return core.Task{}, false
		}

		// Idle executive moment: absorb deferred management (successor
		// splitting, incremental composite-map builds) before parking.
		if m.sm.HasDeferred() {
			m1 := time.Now()
			_, _ = m.sm.DeferredMgmt()
			m.mgmt += time.Since(m1)
			continue
		}

		if !park {
			return core.Task{}, false
		}

		// The state machine is dry, but a peer's deque may have refilled
		// since our last sweep: try stealing once more before parking.
		if !triedSteal {
			m.mu.Unlock()
			t, ok := m.steal(w)
			m.mu.Lock()
			triedSteal = true
			if ok {
				return t, true
			}
			continue
		}

		// Every other worker parked only after flushing its batch and
		// emptying its deque, so InFlight()==0 here means no task exists
		// anywhere outside the state machine: a true stall.
		if m.waiting+1 == m.workers && m.sm.InFlight() == 0 {
			m.failLocked(fmt.Errorf("executive: stalled at phase %d: all workers idle, nothing in flight",
				m.sm.CurrentPhase()))
			return core.Task{}, false
		}
		// For the adaptive controller: a park that begins while peer
		// deques still hold tasks is starvation a smaller refill batch
		// would have fed (hoarded idle); a park with every deque empty
		// is a genuine rundown tail, which must not shrink the batch. A
		// park that begins while another worker actively occupies the
		// management path is lock starvation — the grow signal that
		// scales with P where the overhead share saturates; see
		// adaptive.go. visitors counts every worker inside the path,
		// including this one and every cond-parked waiter (they park
		// inside refill, so their increment persists through the wait);
		// subtracting m.waiting — stable here, under mu — leaves only
		// the active occupants, so a phase barrier or rundown tail full
		// of parked peers does not read as a saturated lock.
		hoardedAtPark, lockBusyAtPark := false, false
		if m.tuner != nil {
			for i := range m.shards {
				if m.shards[i].dq.size() > 0 {
					hoardedAtPark = true
					break
				}
			}
			lockBusyAtPark = m.visitors.Load()-int32(m.waiting) > 1
		}
		i0 := time.Now()
		if m.rec != nil {
			m.rec.Ring(w).Record(trace.KPark, m.rec.Now(), int32(w), 0, -1, 0, 0, 0)
		}
		m.waiting++
		m.cond.Wait()
		m.waiting--
		d := time.Since(i0)
		m.idle += d
		if m.rec != nil {
			m.rec.Ring(w).Record(trace.KUnpark, m.rec.Now(), int32(w), 0, -1, 0, 0, int64(d))
		}
		if hoardedAtPark {
			m.hoardIdle += d
		}
		if lockBusyAtPark {
			m.lockStarve += d
		}
		triedSteal = false
	}
}

// lockMeasured acquires m.mu, charging the acquisition wait to lockNS —
// the per-visit overhead (contention) that batch sizing amortizes, which
// the adaptive controller steers on. Without a controller it is a plain
// Lock: the fixed-parameter manager must not pay clock reads the old code
// did not (m.tuner is set once at construction, so the unsynchronized
// read is safe).
func (m *sharded) lockMeasured() {
	if m.tuner == nil {
		m.mu.Lock()
		return
	}
	l0 := time.Now()
	m.mu.Lock()
	m.lockNS += time.Since(l0)
}

// retuneLocked feeds the adaptive controller one epoch when enough wall
// time has passed since the last observation: the lock-acquisition wait
// is the amortizable overhead, and parked time that began with peer
// deques nonempty the hoarded-idle (starvation) share. Caller holds m.mu.
func (m *sharded) retuneLocked() {
	if m.tuner == nil {
		return
	}
	elapsed := time.Since(m.epochStart)
	if elapsed < adaptiveEpoch {
		return
	}
	capacity := int64(elapsed) * int64(m.workers)
	cap, batch, changed := m.tuner.Observe(capacity,
		int64(m.lockNS-m.epochLock), int64(m.hoardIdle-m.epochHI),
		int64(m.lockStarve-m.epochLS))
	if changed {
		m.cap = cap
		m.batch.Store(int32(batch))
		if m.rec != nil {
			m.rec.Emit(trace.KRetune, m.rec.Now(), -1, 0, -1, 0, 0, int64(cap))
		}
		if m.met != nil {
			m.met.Retunes.Inc(0)
			m.met.BatchSize.Set(int64(cap))
		}
	}
	m.epochStart = time.Now()
	m.epochLock = m.lockNS
	m.epochHI = m.hoardIdle
	m.epochLS = m.lockStarve
}

// wakeLocked wakes up to n parked workers — targeted Signals instead of a
// Broadcast thundering herd when fewer tasks than sleepers exist. Caller
// holds m.mu.
func (m *sharded) wakeLocked(n int) {
	if n >= m.waiting {
		m.cond.Broadcast()
		return
	}
	for i := 0; i < n; i++ {
		m.cond.Signal()
	}
}

// Complete accumulates t in worker w's local batch, submitting the batch
// to the state machine in one lock acquisition when it fills.
func (m *sharded) Complete(w int, t core.Task) bool {
	sh := &m.shards[w]
	sh.done = append(sh.done, t)
	if len(sh.done) < int(m.batch.Load()) {
		return false
	}
	if m.tuner != nil {
		m.visitors.Add(1)
		defer m.visitors.Add(-1)
	}
	m.lockMeasured()
	m0 := time.Now()
	m.flushLocked(w)
	m.mgmt += time.Since(m0)
	m.mu.Unlock()
	return true
}

// flushLocked applies worker w's accumulated completions to the state
// machine. Completions release successor work, so parked peers are woken —
// one Signal per task now ready (or one for pending deferred management)
// rather than an unconditional Broadcast; completion of the program or an
// error still releases everyone. Caller holds m.mu.
func (m *sharded) flushLocked(w int) {
	sh := &m.shards[w]
	if len(sh.done) == 0 {
		return
	}
	if m.err != nil {
		// The run already failed (abort, cancellation, earlier panic): the
		// batch is dropped, not applied — nothing may mutate the state
		// machine after the failure point, because the pool and Job.Wait
		// read its statistics as soon as the job is retired.
		sh.done = sh.done[:0]
		return
	}
	func() {
		defer func() {
			if r := recover(); r != nil && m.err == nil {
				m.failLocked(fmt.Errorf("executive: completion processing panicked: %v", r))
			}
		}()
		m.sm.CompleteBatch(sh.done)
	}()
	sh.done = sh.done[:0]
	switch {
	case m.err != nil || m.sm.Done():
		m.cond.Broadcast()
	case m.waiting > 0:
		if avail := m.sm.ReadyTasks(); avail > 0 {
			m.wakeLocked(avail)
		} else if m.sm.HasDeferred() {
			// No task is ready but deferred management is: one worker
			// can absorb it (and wake the others if it releases work).
			m.cond.Signal()
		} else {
			m.wakeStealerLocked()
		}
	}
}

// wakeStealerLocked wakes one parked worker when the state machine is dry
// but a peer's deque still holds stealable tasks. A worker can park in
// the window between its failed steal sweep and a peer's refill landing;
// without this, a flush or refill that released nothing new would leave
// it asleep while the remaining work drains single-threaded (the old
// unconditional Broadcast covered the window by brute force). The woken
// worker re-sweeps before re-parking, and its own later flushes wake the
// next stealer if deques are still nonempty. Caller holds m.mu.
func (m *sharded) wakeStealerLocked() {
	for i := range m.shards {
		if m.shards[i].dq.size() > 0 {
			m.cond.Signal()
			return
		}
	}
}

// failLocked records err (first wins) and releases everyone. Caller holds
// m.mu.
func (m *sharded) failLocked(err error) {
	if m.err == nil {
		m.err = err
		recordAbort(m.rec)
	}
	m.failed.Store(true)
	m.cond.Broadcast()
}

// Flush submits worker w's accumulated completion batch to the state
// machine. The pool calls it when a worker switches jobs, so a job's last
// completions cannot linger in the batch of a worker now busy elsewhere.
func (m *sharded) Flush(w int) bool {
	if len(m.shards[w].done) == 0 {
		return false
	}
	if m.tuner != nil {
		m.visitors.Add(1)
		defer m.visitors.Add(-1)
	}
	m.lockMeasured()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.flushLocked(w)
	m.mgmt += time.Since(m0)
	return true
}

// Done reports whether the state machine has completed every phase.
func (m *sharded) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.Done()
}

// InFlight reports dispatched-but-incomplete tasks, including tasks
// parked in worker-local deques and completions awaiting a batch flush.
func (m *sharded) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.InFlight()
}

// Abort terminates the run with err — unless the state machine has
// already completed (checked under the global lock, no window): a late
// cancellation must not poison a fully-executed run's results. Callers
// observe the refusal through Err() == nil.
func (m *sharded) Abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil && m.sm.Done() {
		return
	}
	m.failLocked(err)
}

func (m *sharded) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *sharded) Mgmt() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mgmt + time.Duration(m.stealNS.Load())
}

func (m *sharded) Idle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idle
}
