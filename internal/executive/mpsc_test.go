package executive

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/granule"
)

func mpscTask(i int) core.Task {
	return core.Task{ID: i, Phase: granule.PhaseID(i % 7), Run: granule.Range{Lo: granule.ID(i), Hi: granule.ID(i + 1)}}
}

// TestMPSCFIFO: single-threaded push/pop is FIFO across several ring laps.
func TestMPSCFIFO(t *testing.T) {
	q := newMPSC(8)
	next := 0
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < 6; i++ {
			if !q.push(mpscTask(next + i)) {
				t.Fatalf("lap %d: push %d failed on a non-full queue", lap, i)
			}
		}
		for i := 0; i < 6; i++ {
			task, ok := q.pop()
			if !ok {
				t.Fatalf("lap %d: pop %d empty", lap, i)
			}
			if task != mpscTask(next+i) {
				t.Fatalf("lap %d: pop %d = %v, want %v", lap, i, task, mpscTask(next+i))
			}
		}
		next += 6
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

// TestMPSCFull: a full ring rejects pushes without losing anything, and
// frees exactly one slot per pop.
func TestMPSCFull(t *testing.T) {
	q := newMPSC(8)
	n := 0
	for q.push(mpscTask(n)) {
		n++
		if n > 1024 {
			t.Fatal("queue never filled")
		}
	}
	if n != 8 {
		t.Fatalf("capacity %d, want 8", n)
	}
	if q.size() != 8 {
		t.Fatalf("size %d, want 8", q.size())
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop on full queue failed")
	}
	if !q.push(mpscTask(n)) {
		t.Fatal("push after pop failed")
	}
	if q.push(mpscTask(n + 1)) {
		t.Fatal("push on re-filled queue succeeded")
	}
	for i := 1; i <= n; i++ {
		task, ok := q.pop()
		if !ok || task != mpscTask(i) {
			t.Fatalf("drain %d = %v,%v, want %v", i, task, ok, mpscTask(i))
		}
	}
}

// TestMPSCConcurrentProducers is the -race workout: GOMAXPROCS producers
// hammer one small ring while a single consumer drains it; every task
// must come out exactly once. The tiny ring forces constant full/retry
// cycles, exercising the claimed-but-unpublished window.
func TestMPSCConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 4096
	q := newMPSC(16)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := p*perProducer + i
				for !q.push(mpscTask(id)) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	seen := make([]bool, producers*perProducer)
	got := 0
	for got < producers*perProducer {
		task, ok := q.pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if task.ID < 0 || task.ID >= len(seen) {
			t.Fatalf("popped alien task %v", task)
		}
		if seen[task.ID] {
			t.Fatalf("task %d popped twice", task.ID)
		}
		if task != mpscTask(task.ID) {
			t.Fatalf("task %d tore: %v", task.ID, task)
		}
		seen[task.ID] = true
		got++
	}
	wg.Wait()
	if _, ok := q.pop(); ok {
		t.Fatal("queue not empty after full drain")
	}
}

// TestMPSCAllocs: steady-state push and pop allocate nothing.
func TestMPSCAllocs(t *testing.T) {
	q := newMPSC(64)
	if avg := testing.AllocsPerRun(1000, func() {
		q.push(mpscTask(1))
		q.pop()
	}); avg != 0 {
		t.Fatalf("push+pop allocates %v per op", avg)
	}
}
