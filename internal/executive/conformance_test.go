package executive

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// This file is the cross-manager conformance suite. Every test ranges
// over ManagerKinds(), so a new manager inherits the barrier, mixed-
// mapping, race, and Done-invariant checks the moment it is registered in
// manager.go — nothing here names a specific manager.

// conformanceConfig returns a Config that stresses kind's batching paths:
// small deques, batches, and ready-buffers force constant refills,
// flushes, steals, and drains.
func conformanceConfig(kind ManagerKind, workers int) Config {
	return Config{
		Workers: workers, Manager: kind,
		DequeCap: 8, Batch: 4, ReadyCap: 8, LowWater: 2,
	}
}

// buildBarrierProbe builds a chain of Null-mapped phases whose work
// functions observe the barrier guarantee: no granule of phase p may
// execute until every granule of phase p-1 has completed. It returns the
// program, the per-phase completion counters, and a violation counter.
func buildBarrierProbe(t *testing.T, phases, n int) (*core.Program, []atomic.Int64, *atomic.Int64, []int64) {
	t.Helper()
	counts := make([]atomic.Int64, phases)
	var violations atomic.Int64
	out := make([]int64, n)
	specs := make([]*core.Phase, phases)
	for p := 0; p < phases; p++ {
		p := p
		specs[p] = &core.Phase{
			Name:     "phase" + string(rune('A'+p)),
			Granules: n,
			Work: func(g granule.ID) {
				if p > 0 && counts[p-1].Load() != int64(n) {
					violations.Add(1)
				}
				out[g] = out[g]*3 + int64(p)
				counts[p].Add(1)
			},
			// Enable nil: the Null mapping — no overlap is permitted, so
			// phases must complete strictly in program order.
		}
	}
	prog, err := core.NewProgram(specs...)
	if err != nil {
		t.Fatal(err)
	}
	return prog, counts, &violations, out
}

// TestManagerConformanceNullMappings verifies the cross-manager guarantee
// every non-serial manager must preserve: on Null mappings, phase
// completion order is identical to the serial manager's — each phase
// fully completes before any successor granule executes, and the results
// are bit-identical across managers.
func TestManagerConformanceNullMappings(t *testing.T) {
	const phases, n = 4, 1024
	results := make(map[ManagerKind][]int64)
	for _, kind := range ManagerKinds() {
		prog, counts, violations, out := buildBarrierProbe(t, phases, n)
		rep, err := Run(prog, core.Options{
			Grain: 8, Overlap: true, Costs: core.DefaultCosts(),
		}, conformanceConfig(kind, 8))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("%v: %d granules executed before their predecessor phase completed", kind, v)
		}
		for p := range counts {
			if c := counts[p].Load(); c != int64(n) {
				t.Fatalf("%v: phase %d completed %d of %d granules", kind, p, c, n)
			}
		}
		if rep.Tasks == 0 {
			t.Fatalf("%v: no tasks executed", kind)
		}
		results[kind] = out
	}
	serial := results[SerialManager]
	for kind, out := range results {
		if kind == SerialManager {
			continue
		}
		for i := range serial {
			if serial[i] != out[i] {
				t.Fatalf("results diverge at granule %d: serial=%d %v=%d", i, serial[i], kind, out[i])
			}
		}
	}
}

// TestManagerConformanceMixedMappings runs the same probe logic over a
// chain that alternates Null and overlap-permitting mappings: the Null
// boundaries must still barrier under every manager even while the
// identity pairs overlap.
func TestManagerConformanceMixedMappings(t *testing.T) {
	const n = 768
	for _, kind := range ManagerKinds() {
		counts := make([]atomic.Int64, 4)
		var violations atomic.Int64
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "i1", Granules: n,
				Work:   func(g granule.ID) { counts[0].Add(1) },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				// i1 -> i2 overlaps; the i2 -> n3 boundary is Null.
				Name: "i2", Granules: n,
				Work: func(g granule.ID) { counts[1].Add(1) },
			},
			&core.Phase{
				Name: "n3", Granules: n,
				Work: func(g granule.ID) {
					if counts[1].Load() != int64(n) {
						violations.Add(1)
					}
					counts[2].Add(1)
				},
				Enable: enable.NewUniversal(),
			},
			&core.Phase{
				Name: "u4", Granules: n,
				Work: func(g granule.ID) { counts[3].Add(1) },
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(prog, core.Options{
			Grain: 8, Overlap: true, Costs: core.DefaultCosts(),
		}, conformanceConfig(kind, 8)); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("%v: %d granules crossed a Null barrier early", kind, v)
		}
	}
}

// TestManagerDoneInvariant drives every manager through the PoolDriver
// surface with the plain worker protocol and checks the post-run
// invariants the pool and the report path rely on: no error, Done() true,
// InFlight() zero, and — for managers with their own management goroutine
// — a quiescent state machine after Join, with the computed values
// correct.
func TestManagerDoneInvariant(t *testing.T) {
	for _, kind := range ManagerKinds() {
		const workers = 8
		prog, a, b, c := buildCopyChain(t, 1024)
		sched, err := core.New(prog, core.Options{
			Workers: workers, Grain: 4, Overlap: true, Costs: core.DefaultCosts(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := NewPoolDriver(sched, conformanceConfig(kind, workers))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		mgr.Start()
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					task, ok := mgr.Next(w)
					if !ok {
						return
					}
					work := prog.Phases[task.Phase].Work
					task.Run.Each(func(g granule.ID) { work(g) })
					mgr.Complete(w, task)
				}
			}(w)
		}
		wg.Wait()
		if j, ok := mgr.(Joiner); ok {
			j.Join()
		}
		if err := mgr.Err(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !mgr.Done() {
			t.Fatalf("%v: workers exited but the state machine is not done", kind)
		}
		if inf := mgr.InFlight(); inf != 0 {
			t.Fatalf("%v: %d tasks still in flight after completion", kind, inf)
		}
		if got := sched.Stats().Completions; got == 0 {
			t.Fatalf("%v: no completions recorded", kind)
		}
		checkCopyChain(t, a, b, c)
	}
}

// TestManagerRace is the designated -race workout: >= 8 workers, small
// deques, batches and ready-buffers to force constant stealing, flushing
// and draining, run under every manager over every mapping kind that
// exercises a distinct release path.
func TestManagerRace(t *testing.T) {
	for _, kind := range ManagerKinds() {
		n := 2048
		a := make([]int64, n)
		b := make([]int64, n)
		c := make([]int64, n)
		d := make([]int64, n/2)
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "fill", Granules: n,
				Work:   func(g granule.ID) { a[g] = int64(g) },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "square", Granules: n,
				Work:   func(g granule.ID) { b[g] = a[g] * a[g] },
				Enable: enable.NewUniversal(),
			},
			&core.Phase{
				Name: "mix", Granules: n,
				Work: func(g granule.ID) { c[g] = b[g] + 1 },
				Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
					return []granule.ID{2 * r, 2*r + 1}
				}),
			},
			&core.Phase{
				Name: "gather", Granules: n / 2,
				Work: func(g granule.ID) { d[g] = c[2*g] + c[2*g+1] },
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(prog, core.Options{
			Grain: 4, Overlap: true, Elevate: true, Costs: core.DefaultCosts(),
		}, Config{
			Workers: 10, Manager: kind,
			DequeCap: 4, Batch: 2, ReadyCap: 4, LowWater: 1,
		}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for g := 0; g < n/2; g++ {
			i, j := int64(2*g), int64(2*g+1)
			want := i*i + 1 + j*j + 1
			if d[g] != want {
				t.Fatalf("%v: d[%d] = %d, want %d", kind, g, d[g], want)
			}
		}
	}
}
