package executive

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// buildBarrierProbe builds a chain of Null-mapped phases whose work
// functions observe the barrier guarantee: no granule of phase p may
// execute until every granule of phase p-1 has completed. It returns the
// program, the per-phase completion counters, and a violation counter.
func buildBarrierProbe(t *testing.T, phases, n int) (*core.Program, []atomic.Int64, *atomic.Int64, []int64) {
	t.Helper()
	counts := make([]atomic.Int64, phases)
	var violations atomic.Int64
	out := make([]int64, n)
	specs := make([]*core.Phase, phases)
	for p := 0; p < phases; p++ {
		p := p
		specs[p] = &core.Phase{
			Name:     "phase" + string(rune('A'+p)),
			Granules: n,
			Work: func(g granule.ID) {
				if p > 0 && counts[p-1].Load() != int64(n) {
					violations.Add(1)
				}
				out[g] = out[g]*3 + int64(p)
				counts[p].Add(1)
			},
			// Enable nil: the Null mapping — no overlap is permitted, so
			// phases must complete strictly in program order.
		}
	}
	prog, err := core.NewProgram(specs...)
	if err != nil {
		t.Fatal(err)
	}
	return prog, counts, &violations, out
}

// TestManagerConformanceNullMappings verifies the cross-manager guarantee
// the sharded manager must preserve: on Null mappings, phase completion
// order is identical to the serial manager's — each phase fully completes
// before any successor granule executes, and the results are bit-identical.
func TestManagerConformanceNullMappings(t *testing.T) {
	const phases, n = 4, 1024
	results := make(map[ManagerKind][]int64)
	for _, kind := range []ManagerKind{SerialManager, ShardedManager} {
		prog, counts, violations, out := buildBarrierProbe(t, phases, n)
		rep, err := Run(prog, core.Options{
			Grain: 8, Overlap: true, Costs: core.DefaultCosts(),
		}, Config{Workers: 8, Manager: kind, DequeCap: 8, Batch: 4})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("%v: %d granules executed before their predecessor phase completed", kind, v)
		}
		for p := range counts {
			if c := counts[p].Load(); c != int64(n) {
				t.Fatalf("%v: phase %d completed %d of %d granules", kind, p, c, n)
			}
		}
		if rep.Tasks == 0 {
			t.Fatalf("%v: no tasks executed", kind)
		}
		results[kind] = out
	}
	serial, sharded := results[SerialManager], results[ShardedManager]
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("results diverge at granule %d: serial=%d sharded=%d", i, serial[i], sharded[i])
		}
	}
}

// TestManagerConformanceMixedMappings runs the same probe logic over a
// chain that alternates Null and overlap-permitting mappings: the Null
// boundaries must still barrier under both managers even while the
// identity pairs overlap.
func TestManagerConformanceMixedMappings(t *testing.T) {
	const n = 768
	for _, kind := range []ManagerKind{SerialManager, ShardedManager} {
		counts := make([]atomic.Int64, 4)
		var violations atomic.Int64
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "i1", Granules: n,
				Work:   func(g granule.ID) { counts[0].Add(1) },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				// i1 -> i2 overlaps; the i2 -> n3 boundary is Null.
				Name: "i2", Granules: n,
				Work: func(g granule.ID) { counts[1].Add(1) },
			},
			&core.Phase{
				Name: "n3", Granules: n,
				Work: func(g granule.ID) {
					if counts[1].Load() != int64(n) {
						violations.Add(1)
					}
					counts[2].Add(1)
				},
				Enable: enable.NewUniversal(),
			},
			&core.Phase{
				Name: "u4", Granules: n,
				Work: func(g granule.ID) { counts[3].Add(1) },
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(prog, core.Options{
			Grain: 8, Overlap: true, Costs: core.DefaultCosts(),
		}, Config{Workers: 8, Manager: kind, DequeCap: 8, Batch: 4}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("%v: %d granules crossed a Null barrier early", kind, v)
		}
	}
}

// TestShardedManagerRace is the designated -race workout: >= 8 workers,
// small deques and batches to force constant stealing and flushing, run
// over every mapping kind that exercises a distinct release path.
func TestShardedManagerRace(t *testing.T) {
	n := 2048
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	d := make([]int64, n/2)
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "fill", Granules: n,
			Work:   func(g granule.ID) { a[g] = int64(g) },
			Enable: enable.NewIdentity(),
		},
		&core.Phase{
			Name: "square", Granules: n,
			Work:   func(g granule.ID) { b[g] = a[g] * a[g] },
			Enable: enable.NewUniversal(),
		},
		&core.Phase{
			Name: "mix", Granules: n,
			Work: func(g granule.ID) { c[g] = b[g] + 1 },
			Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
				return []granule.ID{2 * r, 2*r + 1}
			}),
		},
		&core.Phase{
			Name: "gather", Granules: n / 2,
			Work: func(g granule.ID) { d[g] = c[2*g] + c[2*g+1] },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, core.Options{
		Grain: 4, Overlap: true, Elevate: true, Costs: core.DefaultCosts(),
	}, Config{Workers: 10, Manager: ShardedManager, DequeCap: 4, Batch: 2}); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < n/2; g++ {
		i, j := int64(2*g), int64(2*g+1)
		want := i*i + 1 + j*j + 1
		if d[g] != want {
			t.Fatalf("d[%d] = %d, want %d", g, d[g], want)
		}
	}
}
