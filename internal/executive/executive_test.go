package executive

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// buildCopyChain constructs the paper's canonical identity chain as real
// work: B[i] = A[i] + 1 then C[i] = B[i] * 2, with the identity mapping
// declared between the phases.
func buildCopyChain(t *testing.T, n int) (*core.Program, []int64, []int64, []int64) {
	t.Helper()
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 3)
	}
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "copyAB", Granules: n,
			Work:   func(g granule.ID) { b[g] = a[g] + 1 },
			Enable: enable.NewIdentity(),
		},
		&core.Phase{
			Name: "copyBC", Granules: n,
			Work: func(g granule.ID) { c[g] = b[g] * 2 },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog, a, b, c
}

func checkCopyChain(t *testing.T, a, b, c []int64) {
	t.Helper()
	for i := range a {
		if b[i] != a[i]+1 {
			t.Fatalf("b[%d] = %d, want %d", i, b[i], a[i]+1)
		}
		if c[i] != (a[i]+1)*2 {
			t.Fatalf("c[%d] = %d, want %d", i, c[i], (a[i]+1)*2)
		}
	}
}

func TestExecutiveBarrier(t *testing.T) {
	prog, a, b, c := buildCopyChain(t, 2048)
	rep, err := Run(prog, core.Options{Grain: 32, Overlap: false, Costs: core.DefaultCosts()},
		Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
	if rep.Tasks == 0 || rep.Wall <= 0 {
		t.Errorf("report %v", rep)
	}
}

func TestExecutiveOverlapIdentity(t *testing.T) {
	for _, mode := range []core.IdentityMode{core.IdentityConflictQueue, core.IdentityTable} {
		prog, a, b, c := buildCopyChain(t, 2048)
		rep, err := Run(prog, core.Options{
			Grain: 16, Overlap: true, IdentityVia: mode, Costs: core.DefaultCosts(),
		}, Config{Workers: 8})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		checkCopyChain(t, a, b, c)
		if rep.Sched.Completions == 0 {
			t.Errorf("mode %v: no completions", mode)
		}
	}
}

func TestExecutiveOverlapDeferredSplit(t *testing.T) {
	prog, a, b, c := buildCopyChain(t, 1024)
	_, err := Run(prog, core.Options{
		Grain: 8, Overlap: true,
		IdentityVia: core.IdentityConflictQueue, SuccSplit: core.SuccSplitDeferred,
		Costs: core.DefaultCosts(),
	}, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
}

func TestExecutiveReverseGather(t *testing.T) {
	// Phase 1 computes A[p]; phase 2 gathers D[r] = A[2r] + A[2r+1],
	// declared as a reverse indirect mapping — the overlapped executive
	// must never run a gather before both sources are written.
	n := 512
	a := make([]int64, 2*n)
	d := make([]int64, n)
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "produce", Granules: 2 * n,
			Work: func(g granule.ID) { a[g] = int64(g) * 7 },
			Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
				return []granule.ID{2 * r, 2*r + 1}
			}),
		},
		&core.Phase{
			Name: "gather", Granules: n,
			Work: func(g granule.ID) { d[g] = a[2*g] + a[2*g+1] },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, core.Options{
		Grain: 8, Overlap: true, Elevate: true, SubsetSize: 32,
		Costs: core.DefaultCosts(),
	}, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		want := int64(2*r)*7 + int64(2*r+1)*7
		if d[r] != want {
			t.Fatalf("d[%d] = %d, want %d", r, d[r], want)
		}
	}
}

func TestExecutiveSerialAction(t *testing.T) {
	var order []string
	var mu atomic.Int64
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "a", Granules: 64,
			Work: func(g granule.ID) { mu.Add(1) },
		},
		&core.Phase{
			Name: "b", Granules: 64,
			SerialBefore: func() {
				if mu.Load() != 64 {
					order = append(order, "early")
				}
				order = append(order, "serial")
			},
			Work: func(g granule.ID) { mu.Add(1) },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
		Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "serial" {
		t.Fatalf("serial action order = %v", order)
	}
	if mu.Load() != 128 {
		t.Fatalf("work count = %d", mu.Load())
	}
}

// TestExecutiveEquivalence: overlapped execution must produce bit-identical
// results to barrier execution for a correctly declared program.
func TestExecutiveEquivalence(t *testing.T) {
	run := func(overlap bool) []int64 {
		n := 1024
		a := make([]int64, n)
		b := make([]int64, n)
		c := make([]int64, n)
		for i := range a {
			a[i] = int64(i)
		}
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "p1", Granules: n,
				Work:   func(g granule.ID) { b[g] = a[g]*a[g] + 1 },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "p2", Granules: n,
				Work:   func(g granule.ID) { c[g] = b[g] ^ (b[g] >> 3) },
				Enable: enable.NewUniversal(),
			},
			&core.Phase{
				Name: "p3", Granules: n,
				Work: func(g granule.ID) { a[g] = -int64(g) }, // disjoint output: universal is sound
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(prog, core.Options{Grain: 16, Overlap: overlap, Costs: core.DefaultCosts()},
			Config{Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	barrier := run(false)
	overlap := run(true)
	for i := range barrier {
		if barrier[i] != overlap[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, barrier[i], overlap[i])
		}
	}
}

func TestExecutiveSingleWorker(t *testing.T) {
	prog, a, b, c := buildCopyChain(t, 256)
	if _, err := Run(prog, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
		Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
}

func TestExecutiveConfigValidation(t *testing.T) {
	prog, _, _, _ := buildCopyChain(t, 16)
	if _, err := Run(prog, core.Options{}, Config{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestExecutiveWorkPanicSurfaces(t *testing.T) {
	prog, err := core.NewProgram(
		&core.Phase{Name: "a", Granules: 4, Work: func(g granule.ID) {
			if g == 2 {
				panic("boom")
			}
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, core.Options{Grain: 1}, Config{Workers: 2}); err == nil {
		t.Fatal("work panic did not surface as an error")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{MgmtRatio: 3.5}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func BenchmarkExecutiveOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 1 << 14
		dst := make([]float64, n)
		src := make([]float64, n)
		prog, _ := core.NewProgram(
			&core.Phase{
				Name: "fill", Granules: n,
				Work:   func(g granule.ID) { src[g] = float64(g) * 1.5 },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "scale", Granules: n,
				Work: func(g granule.ID) { dst[g] = src[g] * 2 },
			},
		)
		if _, err := Run(prog, core.Options{Grain: 256, Overlap: true, Costs: core.DefaultCosts()},
			Config{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
