package executive

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testutil"
)

// cancelBudget is the conformance suite's stall budget for cancellation:
// a cancelled run must return (workers exited, management goroutine
// joined) within this window. Generous for single-CPU CI hosts.
const cancelBudget = 10 * time.Second

// buildSlowChain builds the shared sleeping identity chain (see
// testutil.SleepChain).
func buildSlowChain(t *testing.T, phases, n int, d time.Duration) *core.Program {
	t.Helper()
	return testutil.SleepChain(t, phases, n, d)
}

// TestManagerConformanceCancel is the cancellation conformance check
// every manager must pass: cancelling a running fine-grain chain returns
// a ctx.Err()-wrapped error within the stall budget and leaks no
// goroutines — the cancel watcher, the workers, and any dedicated
// management goroutine are all joined before RunContext returns.
func TestManagerConformanceCancel(t *testing.T) {
	for _, kind := range ManagerKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			prog := buildSlowChain(t, 3, 256, time.Millisecond)
			ctx, cancel := context.WithCancel(context.Background())

			type outcome struct {
				rep *Report
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				rep, err := RunContext(ctx, prog, core.Options{
					Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
				}, conformanceConfig(kind, 8))
				done <- outcome{rep, err}
			}()

			time.Sleep(20 * time.Millisecond) // let the run get going
			cancel()

			select {
			case out := <-done:
				if !errors.Is(out.err, context.Canceled) {
					t.Fatalf("err = %v, want wrapped context.Canceled", out.err)
				}
				if out.rep != nil {
					t.Fatalf("cancelled run returned a report: %v", out.rep)
				}
			case <-time.After(cancelBudget):
				buf := make([]byte, 1<<20)
				t.Fatalf("cancelled run did not return within %v\n%s",
					cancelBudget, buf[:runtime.Stack(buf, true)])
			}
			testutil.WaitGoroutines(t, before)
		})
	}
}

// TestManagerCancelBeforeStart: a context cancelled before the run
// begins must abort promptly under every manager, without waiting for
// the workload.
func TestManagerCancelBeforeStart(t *testing.T) {
	for _, kind := range ManagerKinds() {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		prog := buildSlowChain(t, 2, 64, 5*time.Millisecond)
		_, err := RunContext(ctx, prog, core.Options{
			Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
		}, conformanceConfig(kind, 4))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want wrapped context.Canceled", kind, err)
		}
		testutil.WaitGoroutines(t, before)
	}
}

// TestRunContextUncancelled pins that threading a live context through a
// run that completes normally changes nothing: same results as Run, no
// stray abort from the watcher teardown.
func TestRunContextUncancelled(t *testing.T) {
	for _, kind := range ManagerKinds() {
		prog, a, b, c := buildCopyChain(t, 512)
		ctx, cancel := context.WithCancel(context.Background())
		rep, err := RunContext(ctx, prog, core.Options{
			Grain: 4, Overlap: true, Costs: core.DefaultCosts(),
		}, conformanceConfig(kind, 4))
		cancel()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rep.Tasks == 0 {
			t.Fatalf("%v: no tasks", kind)
		}
		checkCopyChain(t, a, b, c)
	}
}

// TestObserverFinalOnCancel: a mid-run cancel must still close the
// observer stream with a Final snapshot (with Done=false — the program
// did not complete), so stream consumers always see the run end.
func TestObserverFinalOnCancel(t *testing.T) {
	for _, kind := range ManagerKinds() {
		var mu sync.Mutex
		var snaps []Snapshot
		ctx, cancel := context.WithCancel(context.Background())
		cfg := conformanceConfig(kind, 4)
		cfg.Observer = func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}
		prog := buildSlowChain(t, 3, 256, time.Millisecond)
		done := make(chan error, 1)
		go func() {
			_, err := RunContext(ctx, prog, core.Options{
				Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
			}, cfg)
			done <- err
		}()
		time.Sleep(15 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: err = %v, want wrapped context.Canceled", kind, err)
			}
		case <-time.After(cancelBudget):
			t.Fatalf("%v: cancelled run did not return", kind)
		}
		mu.Lock()
		got := append([]Snapshot(nil), snaps...)
		mu.Unlock()
		if len(got) == 0 || !got[len(got)-1].Final {
			t.Fatalf("%v: cancelled run did not close the observer stream with Final: %v", kind, got)
		}
		if got[len(got)-1].Done {
			t.Fatalf("%v: cancelled run's Final snapshot claims Done", kind)
		}
	}
}

func TestParseManager(t *testing.T) {
	cases := []struct {
		in   string
		want ManagerKind
	}{
		{"serial", SerialManager},
		{"SERIAL", SerialManager},
		{"Serial", SerialManager},
		{" sharded ", ShardedManager},
		{"SHARDED", ShardedManager},
		{"async", AsyncManager},
		{"ASYNC", AsyncManager},
	}
	for _, c := range cases {
		got, err := ParseManager(c.in)
		if err != nil {
			t.Errorf("ParseManager(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseManager(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	_, err := ParseManager("quantum")
	if err == nil {
		t.Fatal("ParseManager accepted an unknown manager")
	}
	for _, name := range ManagerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseManager error %q does not enumerate %q", err, name)
		}
	}
}

// TestSupportsPoolMatchesNewPoolDriver pins the static capability check
// to the constructor's actual behaviour for every registered kind.
func TestSupportsPoolMatchesNewPoolDriver(t *testing.T) {
	for _, kind := range ManagerKinds() {
		prog, _, _, _ := buildCopyChain(t, 16)
		sched, err := core.New(prog, core.Options{Workers: 2, Costs: core.DefaultCosts()})
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewPoolDriver(sched, Config{Workers: 2, Manager: kind})
		if (err == nil) != SupportsPool(kind) {
			t.Errorf("%v: SupportsPool = %v but NewPoolDriver err = %v",
				kind, SupportsPool(kind), err)
		}
	}
	if SupportsPool(ManagerKind(250)) {
		t.Error("SupportsPool accepted an unknown kind")
	}
}

// TestExecutiveObserver checks the wall-clock sampler: snapshots arrive
// while the run is live (given a sufficiently long run), elapsed time is
// monotonic, and the closing snapshot is Final with the Report's totals.
func TestExecutiveObserver(t *testing.T) {
	for _, kind := range ManagerKinds() {
		var mu sync.Mutex
		var snaps []Snapshot
		prog := buildSlowChain(t, 2, 128, time.Millisecond)
		cfg := conformanceConfig(kind, 4)
		cfg.Observer = func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}
		cfg.ObservePeriod = 2 * time.Millisecond
		rep, err := Run(prog, core.Options{
			Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
		}, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		mu.Lock()
		got := append([]Snapshot(nil), snaps...)
		mu.Unlock()
		if len(got) == 0 {
			t.Fatalf("%v: no snapshots", kind)
		}
		last := got[len(got)-1]
		if !last.Final {
			t.Fatalf("%v: last snapshot not Final", kind)
		}
		if last.Tasks != rep.Tasks || last.Compute != rep.Compute {
			t.Errorf("%v: final snapshot tasks=%d compute=%v, report tasks=%d compute=%v",
				kind, last.Tasks, last.Compute, rep.Tasks, rep.Compute)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Elapsed < got[i-1].Elapsed {
				t.Errorf("%v: snapshot %d elapsed went backwards", kind, i)
			}
			if got[i].Tasks < got[i-1].Tasks {
				t.Errorf("%v: snapshot %d task count went backwards", kind, i)
			}
		}
	}
}
