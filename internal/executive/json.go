package executive

// JSON codec for ManagerKind: reports on the service daemon's wire
// carry the manager by its stable string name ("serial", "sharded",
// "async"), never the enum's numeric value.

import "encoding/json"

// MarshalJSON encodes the kind as its string name.
func (k ManagerKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind from its string name (or, leniently, the
// numeric enum value).
func (k *ManagerKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParseManager(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = ManagerKind(n)
	return nil
}
