package executive

// This file is the adaptive batching controller: the paper's E5
// computation-to-management ratio turned into a feedback signal. The
// fixed DequeCap/Batch defaults leave the virtual-processor granularity
// trade-off untuned — too small and every worker visits the global lock
// per task (the amortizable lock-entry overhead explodes at fine grain),
// too large and refills hoard tasks workers elsewhere could have run
// (rundown tail latency grows). The Tuner retunes both online, one
// multiplicative step per refill epoch:
//
//   - lock-overhead share above the target -> double cap and batch.
//     The overhead fed here is only the amortizable part of management —
//     the per-visit cost of entering the executive at all (measured lock
//     acquisition time on hardware, Acquire charges in the simulator) —
//     NOT total management time: the state-machine work inside the lock
//     grows with the batch, so feeding total management would tell the
//     controller to grow precisely when visits are already too long.
//     Overhead falls monotonically as the batch grows, so this rule
//     cannot run away upward.
//   - lock-starvation share above its target, two epochs in a row ->
//     double cap and batch. The overhead share is measured against
//     machine capacity (workers x elapsed), so at large P a saturated
//     global lock reads as cheap: the waiters park on the condition
//     variable instead of spinning on the mutex, and their wait lands in
//     idle, not in lock-acquisition time. The second grow input closes
//     that hole — processor time spent parked while another worker
//     actively occupied the management path is starvation that a bigger
//     batch (fewer, larger lock visits) relieves, and it scales with P
//     where the overhead share does not. Because it is inferred from
//     park timing rather than measured directly, it carries the same
//     two-epoch persistence gate as the shrink rule.
//   - hoarded-idle share above its target -> halve cap and batch. The
//     hoarded-idle signal is processor time spent parked *while tasks
//     sat in peer deques* — the exact waste a smaller refill would have
//     redistributed (the rundown tail latency the batch size inflates).
//     A genuine rundown tail (idle high, every deque empty — nothing to
//     redistribute) contributes nothing to it, so the drain of the final
//     phase cannot ratchet the batch to the floor; neither can a fully
//     busy machine, however much its deques hold.
//   - otherwise hold. The hold band between the shrink and grow
//     thresholds is wider than one doubling (overhead halves per step),
//     a starvation signal must persist two consecutive epochs, and a
//     cooldown epoch follows every change, so a steady workload settles
//     and stays put.
//
// The Tuner is deterministic and unit-agnostic: the goroutine sharded
// manager feeds it wall-clock nanoseconds, the discrete-event simulator
// feeds it virtual units. Both express an epoch as total machine capacity
// (workers x elapsed) plus the lock-overhead and hoarded-idle shares of
// it.

// TunerConfig parameterizes a Tuner. The zero value selects the defaults
// noted on each field.
type TunerConfig struct {
	// Cap is the starting deque capacity / refill batch. <= 0 selects 16.
	Cap int
	// Batch is the starting completion batch. <= 0 selects Cap/2 (min 1).
	Batch int
	// MinCap and MaxCap bound the deque capacity (defaults 1 and 512).
	MinCap, MaxCap int
	// MgmtTarget is the lock-overhead share of capacity to steer toward
	// (<= 0 selects 0.02: an untuned batch-1 fine-grain run burns ~5% of
	// the machine on lock entry, so the trigger must sit well under
	// that). Above it the controller grows; the shrink rule only fires
	// below MgmtTarget*LowBand.
	MgmtTarget float64
	// IdleTarget is the hoarded-idle share (parked time overlapping
	// nonempty peer deques) above which — overhead being cheap — the
	// controller shrinks (<= 0 selects 0.25).
	IdleTarget float64
	// StarveTarget is the lock-starvation share (parked time overlapping
	// another worker's occupation of the management path) above which the
	// controller grows even though the measured acquisition overhead
	// reads cheap — the large-P saturation signal (<= 0 selects 0.2).
	StarveTarget float64
	// LowBand is the fraction of MgmtTarget below which the overhead is
	// considered cheap enough to trade batching away for distribution
	// (<= 0 selects 0.4). The hold band [MgmtTarget*LowBand, MgmtTarget]
	// must be wider than one halving of the overhead, i.e. LowBand <
	// 0.5, or a single step could jump across it and oscillate.
	LowBand float64
	// Cooldown is how many epochs to hold after a change so the next
	// observation reflects the new parameters (< 0 selects 0 epochs;
	// 0 selects 1).
	Cooldown int
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.Cap <= 0 {
		c.Cap = 16
	}
	if c.MinCap <= 0 {
		c.MinCap = 1
	}
	if c.MaxCap <= 0 {
		c.MaxCap = 512
	}
	if c.Cap < c.MinCap {
		c.Cap = c.MinCap
	}
	if c.Cap > c.MaxCap {
		c.Cap = c.MaxCap
	}
	if c.Batch <= 0 {
		c.Batch = c.Cap / 2
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.MgmtTarget <= 0 {
		c.MgmtTarget = 0.02
	}
	if c.IdleTarget <= 0 {
		c.IdleTarget = 0.25
	}
	if c.StarveTarget <= 0 {
		c.StarveTarget = 0.2
	}
	if c.LowBand <= 0 {
		c.LowBand = 0.4
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	} else if c.Cooldown < 0 {
		c.Cooldown = 0
	}
	return c
}

// Tuner is the adaptive batching controller. Not safe for concurrent use;
// callers serialize Observe (the sharded manager calls it under its global
// lock, the simulator is single-threaded).
type Tuner struct {
	cfg       TunerConfig
	cap       int
	batch     int
	cooldown  int
	shrinkArm bool // hoarded idle seen last epoch; shrink needs two in a row
	starveArm bool // lock starvation seen last epoch; that grow needs two in a row
	epochs    int  // observations consumed (diagnostics)
	changes   int  // parameter changes made (diagnostics)
}

// NewTuner builds a Tuner from cfg (zero value = all defaults).
func NewTuner(cfg TunerConfig) *Tuner {
	c := cfg.withDefaults()
	return &Tuner{cfg: c, cap: c.Cap, batch: c.Batch}
}

// Cap returns the current deque capacity / refill batch size.
func (t *Tuner) Cap() int { return t.cap }

// Batch returns the current completion batch size.
func (t *Tuner) Batch() int { return t.batch }

// Epochs and Changes report how many observations the tuner has consumed
// and how many parameter changes it has made.
func (t *Tuner) Epochs() int  { return t.epochs }
func (t *Tuner) Changes() int { return t.changes }

// Observe feeds one epoch: capacity is total machine time available
// (workers x elapsed); overhead is the amortizable lock-entry cost paid
// in the epoch (lock acquisition time on hardware, Acquire charges in the
// simulator — NOT total management time); hoardedIdle is the processor
// time spent parked while peer deques held redistributable tasks;
// lockStarve is the processor time spent parked while another worker
// occupied the management path (the large-P lock-saturation signal —
// drivers without the measurement pass 0). All in one consistent unit. It
// returns the cap and batch to use for the next epoch and whether they
// changed.
func (t *Tuner) Observe(capacity, overhead, hoardedIdle, lockStarve int64) (cap, batch int, changed bool) {
	if capacity <= 0 {
		return t.cap, t.batch, false
	}
	t.epochs++
	if t.cooldown > 0 {
		t.cooldown--
		return t.cap, t.batch, false
	}
	overShare := float64(overhead) / float64(capacity)
	starveShare := float64(hoardedIdle) / float64(capacity)
	lockShare := float64(lockStarve) / float64(capacity)

	switch {
	case overShare > t.cfg.MgmtTarget:
		// Lock-entry overhead above target: workers visit the executive
		// too often — amortize more tasks per visit.
		t.shrinkArm, t.starveArm = false, false
		changed = t.set(t.cap*2, t.batch*2)
	case starveShare > t.cfg.IdleTarget && overShare < t.cfg.MgmtTarget*t.cfg.LowBand:
		// Workers starve while peers sit on refilled tasks: hand work
		// out in smaller lots. The signal must persist two consecutive
		// epochs, so a one-epoch blip (a phase boundary, the final
		// drain) moves nothing. Hoarded idle takes precedence over lock
		// starvation below: tasks provably sat in peer deques, so
		// redistribution, not amortization, is the remedy.
		t.starveArm = false
		if t.shrinkArm {
			t.shrinkArm = false
			changed = t.set(t.cap/2, t.batch/2)
		} else {
			t.shrinkArm = true
		}
	case lockShare > t.cfg.StarveTarget && starveShare <= t.cfg.IdleTarget:
		// Workers park behind a busy management path while the measured
		// acquisition overhead reads ~0 (they wait on the condition
		// variable, not the mutex, so their time never lands in
		// overhead). The lock is saturated at this P: amortize more
		// tasks per visit, exactly as the overhead rule would have done
		// had it been able to see the wait. Hoarded idle above its
		// target vetoes this grow outright — tasks provably sat in peer
		// deques, so a bigger refill would deepen the starvation even
		// when the shrink rule's own overhead guard keeps it from
		// firing. Like the shrink rule — and unlike the
		// directly-measured overhead rule — this signal is inferred
		// from park timing, so it must persist two consecutive epochs
		// before it moves anything.
		t.shrinkArm = false
		if t.starveArm {
			t.starveArm = false
			changed = t.set(t.cap*2, t.batch*2)
		} else {
			t.starveArm = true
		}
	default:
		t.shrinkArm, t.starveArm = false, false
	}
	if changed {
		t.changes++
		t.cooldown = t.cfg.Cooldown
	}
	return t.cap, t.batch, changed
}

// set clamps and applies new parameters, reporting whether anything moved.
func (t *Tuner) set(cap, batch int) bool {
	if cap < t.cfg.MinCap {
		cap = t.cfg.MinCap
	}
	if cap > t.cfg.MaxCap {
		cap = t.cfg.MaxCap
	}
	if batch < 1 {
		batch = 1
	}
	if batch > cap {
		batch = cap
	}
	if cap == t.cap && batch == t.batch {
		return false
	}
	t.cap, t.batch = cap, batch
	return true
}
