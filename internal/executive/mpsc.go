package executive

import (
	"sync/atomic"

	"repro/internal/core"
)

// mpsc is a bounded lock-free multi-producer single-consumer queue of
// core.Tasks: the completion channel between the worker goroutines (any
// number of producers) and the async manager's management goroutine (one
// consumer at a time — whoever holds the manager's state-machine mutex).
// It is the bounded-ring sibling of deque.go's Chase-Lev deque, built on
// the same atomic-slot discipline, but specialized the other way around:
// the deque has one producer and many thieves, this queue many producers
// and one drainer.
//
// The protocol is the Vyukov bounded queue: each slot carries a sequence
// number that encodes which lap of the ring it is on and whether it holds
// data.
//
//   - A producer reads tail; if the slot's seq equals tail the slot is
//     free on this lap, and the producer claims it by CASing tail
//     forward. tail, like the deque's top, is ABA-free by monotonicity: a
//     stale read can only make the CAS fail. Having claimed the slot, the
//     producer owns it exclusively — it stores the task with plain writes
//     and then publishes seq = tail+1 (seq-cst), so a consumer that
//     observes the published seq also observes the task words.
//   - The consumer reads head; if the slot's seq equals head+1 the slot
//     holds data for this lap. It reads the task, then releases the slot
//     for the next lap by storing seq = head + ring size, and advances
//     head. head is written only under the manager's state-machine mutex
//     (single consumer), but stored atomically so producers can read
//     size() without synchronization.
//   - A producer that finds seq < tail is a full ring (the consumer has
//     not yet released the slot from the previous lap): push reports
//     false and the caller falls back to draining inline. seq > tail
//     means another producer already claimed past this tail; reload and
//     retry.
//
// A claimed-but-unpublished slot (producer between the CAS and the seq
// store) makes pop report empty even though size() > 0. That transient
// under-read is safe everywhere it is observed: the producer rings the
// manager's doorbell after publishing, so the item is never silently
// stranded, and the stall detector keys on the state machine's InFlight
// count, which includes the completion until it is actually applied.
type mpsc struct {
	mask  int64
	slots []mpscSlot
	tail  atomic.Int64 // next slot to claim (producers, CAS)
	head  atomic.Int64 // next slot to pop (consumer only; atomic for size readers)
}

// mpscSlot is one ring slot: the lap/state sequence word plus the task,
// which is written and read only inside the seq-established
// happens-before edges.
type mpscSlot struct {
	seq  atomic.Int64
	task core.Task
}

// newMPSC sizes the ring for at least capHint entries (rounded up to a
// power of two, minimum 8). The queue does not grow: push reports false
// when full and the caller drains inline.
func newMPSC(capHint int) *mpsc {
	size := int64(8)
	for size < int64(capHint) {
		size <<= 1
	}
	q := &mpsc{mask: size - 1, slots: make([]mpscSlot, size)}
	for i := range q.slots {
		q.slots[i].seq.Store(int64(i))
	}
	return q
}

// push appends t. Safe from any goroutine. It reports false when the ring
// is full — the caller must drain (or help the drainer) and retry, never
// drop the task.
func (q *mpsc) push(t core.Task) bool {
	for {
		pos := q.tail.Load()
		s := &q.slots[pos&q.mask]
		switch seq := s.seq.Load(); {
		case seq == pos:
			if q.tail.CompareAndSwap(pos, pos+1) {
				s.task = t
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // previous lap not yet consumed: full
		}
		// seq > pos: another producer claimed this slot first; reload tail.
	}
}

// pop removes the oldest published task. Single consumer: only the holder
// of the manager's state-machine mutex may call it. ok=false means no
// published task is available right now (empty, or the head producer has
// claimed but not yet published its slot).
func (q *mpsc) pop() (core.Task, bool) {
	pos := q.head.Load()
	s := &q.slots[pos&q.mask]
	if s.seq.Load() != pos+1 {
		return core.Task{}, false
	}
	t := s.task
	s.seq.Store(pos + q.mask + 1) // release the slot for the next lap
	q.head.Store(pos + 1)
	return t, true
}

// size reports tail-head: published plus claimed-but-unpublished entries.
// A moment-in-time estimate for anyone but the consumer.
func (q *mpsc) size() int64 {
	return q.tail.Load() - q.head.Load()
}
