package executive

import (
	"context"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file is the goroutine executive's observability surface: a run
// configured with Config.Observer is sampled by a dedicated goroutine at
// Config.ObservePeriod, so a caller watches utilization and management
// overhead build up while the run is live instead of only reading the
// final Report. Unlike the simulator's virtual-time observer the sampler
// is wall-clock driven, so the snapshot *sequence* is not deterministic —
// but sampling only reads counters the run already maintains (worker
// atomics plus the manager's Mgmt/Idle accessors), so observation does
// not change scheduling decisions.

// Snapshot is one observation of a running executive. All values are
// cumulative since Start.
type Snapshot struct {
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Tasks is the number of tasks executed so far.
	Tasks int64
	// Compute, Mgmt and Idle are the summed worker-execution,
	// manager-serialized, and parked durations so far.
	Compute time.Duration
	Mgmt    time.Duration
	Idle    time.Duration
	// Utilization is Compute / (Workers * Elapsed) so far.
	Utilization float64
	// OverheadShare is Mgmt / (Workers * Elapsed) so far — live work
	// inflation.
	OverheadShare float64
	// Final marks the closing snapshot, emitted once after the run is
	// over — with the Report's finished totals on success, with the
	// counters accumulated so far on failure or cancellation.
	Final bool
	// Done reports whether the program actually completed: true on a
	// successful run's Final snapshot, false on live snapshots and on
	// the Final snapshot of a failed or cancelled run.
	Done bool
}

// DefaultObservePeriod is the sampling period when a config's
// ObservePeriod is unset (shared with the tenant pool's sampler).
const DefaultObservePeriod = 10 * time.Millisecond

// Sampler periodically invokes a sample function on its own goroutine —
// the shared lifecycle behind Config.Observer here and the tenant
// pool's observer. Stop halts the ticker and joins the goroutine
// (leak-free teardown); the owner emits its Final snapshot itself after
// Stop, so a final observation never races a live sample.
type Sampler struct {
	stopCh chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// StartSampler begins calling sample every period (<= 0 selects
// DefaultObservePeriod); sample must be safe to call concurrently with
// the observed run (read atomics and lock-guarded accessors only).
func StartSampler(period time.Duration, sample func()) *Sampler {
	if period <= 0 {
		period = DefaultObservePeriod
	}
	s := &Sampler{stopCh: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return s
}

// Stop halts sampling and joins the sampler goroutine. Safe on a nil
// receiver and idempotent (even across concurrent calls).
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// WatchCancel spawns the cancellation-watcher goroutine shared by
// RunContext and the Runner's pool backend: when ctx fires, abort is
// called once with the raw ctx.Err() (the caller wraps it in its own
// error text). The returned stop function releases and joins the
// watcher; call it exactly once, after the run is over, so teardown is
// goroutine-leak-free. A nil or never-cancellable ctx costs nothing.
func WatchCancel(ctx context.Context, abort func(error)) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	runOver := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			abort(ctx.Err())
		case <-runOver:
		}
	}()
	return func() {
		close(runOver)
		<-watchDone
	}
}

// liveSnapshot builds a mid-run observation from the metric set and the
// manager accessors — the registry is the single source of truth for the
// counters, and telemetry.Shares for the derived ratios, so a sampler
// callback and a Prometheus scrape can never disagree.
func (e *engine) liveSnapshot(workers int) Snapshot {
	e.syncTimes()
	sn := Snapshot{
		Elapsed: time.Since(e.start),
		Tasks:   e.met.Completions.Value(),
		Compute: time.Duration(e.met.ComputeTime.Value()),
		Mgmt:    e.mgr.Mgmt(),
		Idle:    e.mgr.Idle(),
	}
	sn.Utilization, sn.OverheadShare = telemetry.Shares(
		int64(sn.Compute), int64(sn.Mgmt), workers, int64(sn.Elapsed))
	return sn
}
