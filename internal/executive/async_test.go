package executive

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// TestAsyncDefaults: the ready-buffer and low-water defaults follow the
// paper's two-tasks-per-processor outset condition.
func TestAsyncDefaults(t *testing.T) {
	m := newAsync(&stubSM{}, Config{Workers: 8, Manager: AsyncManager})
	if m.readyCap != 16 {
		t.Errorf("readyCap = %d, want 2*workers = 16", m.readyCap)
	}
	if m.lowWater != 4 {
		t.Errorf("lowWater = %d, want readyCap/4 = 4", m.lowWater)
	}
	m = newAsync(&stubSM{}, Config{Workers: 2, Manager: AsyncManager})
	if m.readyCap != 8 {
		t.Errorf("small-pool readyCap = %d, want minimum 8", m.readyCap)
	}
	m = newAsync(&stubSM{}, Config{Workers: 4, Manager: AsyncManager, ReadyCap: 4, LowWater: 9})
	if m.readyCap != 4 || m.lowWater != 3 {
		t.Errorf("explicit knobs: readyCap=%d lowWater=%d, want 4 and 3 (clamped below cap)",
			m.readyCap, m.lowWater)
	}
}

// TestAsyncCorrectness runs the copy chain across ready-buffer extremes,
// including a buffer smaller than the worker count (workers contend for
// every slot) and a huge one (the whole program fits).
func TestAsyncCorrectness(t *testing.T) {
	cases := []struct{ workers, ready, low, batch, grain int }{
		{1, 1, 1, 1, 4},
		{4, 2, 1, 1, 4},
		{8, 16, 4, 8, 8},
		{12, 512, 128, 32, 2},
	}
	for _, tc := range cases {
		prog, a, b, c := buildCopyChain(t, 2048)
		rep, err := Run(prog, core.Options{
			Grain: tc.grain, Overlap: true, Costs: core.DefaultCosts(),
		}, Config{
			Workers: tc.workers, Manager: AsyncManager,
			ReadyCap: tc.ready, LowWater: tc.low, Batch: tc.batch,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		checkCopyChain(t, a, b, c)
		if rep.Manager != AsyncManager {
			t.Errorf("%+v: report manager = %v", tc, rep.Manager)
		}
		if rep.Sched.Completions == 0 {
			t.Errorf("%+v: no completions recorded", tc)
		}
	}
}

// TestAsyncDeferredOverlap: indirect mappings queue deferred management
// (composite-map builds, successor splitting); the async management
// goroutine must absorb all of it while keeping the gather correct.
func TestAsyncDeferredOverlap(t *testing.T) {
	n := 512
	a := make([]int64, 2*n)
	d := make([]int64, n)
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "produce", Granules: 2 * n,
			Work: func(g granule.ID) { a[g] = int64(g) * 7 },
			Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
				return []granule.ID{2 * r, 2*r + 1}
			}),
		},
		&core.Phase{
			Name: "gather", Granules: n,
			Work: func(g granule.ID) { d[g] = a[2*g] + a[2*g+1] },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(prog, core.Options{
		Grain: 8, Overlap: true, Elevate: true, SubsetSize: 32,
		Costs: core.DefaultCosts(),
	}, Config{Workers: 8, Manager: AsyncManager, ReadyCap: 8, LowWater: 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		want := int64(2*r)*7 + int64(2*r+1)*7
		if d[r] != want {
			t.Fatalf("d[%d] = %d, want %d", r, d[r], want)
		}
	}
	if rep.Sched.DeferredItems == 0 {
		t.Error("no deferred management was queued — the overlap path went unexercised")
	}
}

// TestAsyncInlineFallback drives the worker protocol by hand with the
// drain-latency watermark forced stale before every completion, so the
// worker-side fallback must run management cycles inline — the
// no-spare-core degradation path.
func TestAsyncInlineFallback(t *testing.T) {
	prog, a, b, c := buildCopyChain(t, 1024)
	sched, err := core.New(prog, core.Options{
		Workers: 1, Grain: 4, Overlap: true, Costs: core.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newAsync(sched, Config{Workers: 1, Manager: AsyncManager, ReadyCap: 4, Batch: 1})
	m.Start()
	for {
		task, ok := m.Next(0)
		if !ok {
			break
		}
		work := prog.Phases[task.Phase].Work
		task.Run.Each(func(g granule.ID) { work(g) })
		// Pretend the management goroutine has been descheduled since the
		// epoch: the completion's watermark check must drain inline.
		m.lastDrain.Store(1)
		m.Complete(0, task)
	}
	m.Join()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
	if m.InlineCycles() == 0 {
		t.Error("stale watermark never triggered an inline management cycle")
	}
}

// TestAsyncNoSpareCore: with GOMAXPROCS(1) the management goroutine has
// no core of its own; the run must still complete correctly through the
// scheduler's preemption and the inline fallback.
func TestAsyncNoSpareCore(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	prog, a, b, c := buildCopyChain(t, 2048)
	if _, err := Run(prog, core.Options{
		Grain: 2, Overlap: true, Costs: core.DefaultCosts(),
	}, Config{Workers: 4, Manager: AsyncManager, ReadyCap: 4, LowWater: 1, Batch: 2}); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
}

// TestAsyncAbortReleasesWorkers: Abort from one worker must release
// workers parked in the ready-buffer receive and surface through Err.
func TestAsyncAbortReleasesWorkers(t *testing.T) {
	prog, _, _, _ := buildCopyChain(t, 64)
	sched, err := core.New(prog, core.Options{
		Workers: 2, Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newAsync(sched, Config{Workers: 2, Manager: AsyncManager})
	m.Start()
	if _, ok := m.Next(0); !ok {
		t.Fatal("no first task")
	}
	done := make(chan bool)
	go func() {
		// Parks once the buffer drains (worker 0 never completes, so the
		// program cannot finish), released only by the abort.
		for {
			if _, ok := m.Next(1); !ok {
				done <- true
				return
			}
		}
	}()
	m.Abort(errAbortTest)
	if !<-done {
		t.Fatal("parked worker not released")
	}
	m.Join()
	if m.Err() != errAbortTest {
		t.Fatalf("Err = %v, want the abort error", m.Err())
	}
}

var errAbortTest = &abortErr{}

type abortErr struct{}

func (*abortErr) Error() string { return "test abort" }
