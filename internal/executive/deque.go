package executive

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/granule"
)

// deque is a Chase-Lev work-stealing deque of core.Tasks (Chase & Lev,
// "Dynamic Circular Work-Stealing Deque", SPAA 2005; atomics ordered per
// Lê et al., "Correct and Efficient Work-Stealing for Weak Memory Models",
// PPoPP 2013 — Go's sync/atomic operations are sequentially consistent, so
// every fence in that formulation is implied). One goroutine owns the
// deque; any number of thieves steal from it concurrently.
//
//   - The owner pushes and pops at the bottom with plain atomic loads and
//     stores — no lock, no CAS — except when taking the last element,
//     where it races the thieves with one CAS on top.
//   - Thieves take the oldest element at the top with one CAS each. top
//     only ever increases, so a stale read of it can only make a CAS fail,
//     never succeed wrongly: the counter is ABA-free by monotonicity.
//   - The circular array grows when full; the old ring is never written
//     again after the copy, so thieves still holding it read stable values.
//
// Memory model (the three atomics and their happens-before edges):
//
//   - bottom: written only by the owner. pushBottom publishes the slot
//     write before the bottom increment (both seq-cst), so a thief that
//     observes the new bottom also observes the slot contents.
//   - top: CAS'd by thieves (steal) and by the owner (last element). The
//     owner's popBottom stores the decremented bottom *before* loading
//     top; a thief loads top *before* loading bottom. Sequential
//     consistency makes those two orderings a total order, so the owner
//     and a thief can never both conclude the same last element is theirs
//     without going through the top CAS, which only one of them wins.
//   - ring: the pointer is republished (seq-cst) only after every live
//     slot has been copied into the new ring, so a thief loading the
//     pointer after a push that grew sees the copied slots; a thief
//     holding the old pointer sees the frozen old slots.
//
// Slot contents are four independent atomic words (a core.Task is ID,
// Phase, Run.Lo, Run.Hi). A thief's read of a slot can therefore tear —
// but only if the owner concurrently reuses the slot for a new push, which
// requires bottom - top >= ring size at push time, which requires top to
// have already advanced past the thief's index: the thief's CAS on the old
// top value then necessarily fails and the torn read is discarded. A
// successful CAS proves the four words were stable for the whole read.
// Atomic word access keeps the race detector precise about all of this:
// every flagged interleaving would be a real protocol violation.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

// dequeRing is one power-of-two circular array generation.
type dequeRing struct {
	mask  int64
	slots []dequeSlot
}

// dequeSlot holds one core.Task as four atomic words.
type dequeSlot struct {
	id, phase, lo, hi atomic.Int64
}

// Compile-time guard that the slot encoding covers every core.Task field:
// this conversion stops compiling the moment core.Task's shape changes,
// which is the signal that load/store below must be extended — without
// it, a new Task field would silently round-trip through the deque as
// its zero value.
var _ = struct {
	ID    int
	Phase granule.PhaseID
	Run   granule.Range
}(core.Task{})

func newDequeRing(size int64) *dequeRing {
	return &dequeRing{mask: size - 1, slots: make([]dequeSlot, size)}
}

func (r *dequeRing) size() int64 { return r.mask + 1 }

func (r *dequeRing) load(i int64) core.Task {
	s := &r.slots[i&r.mask]
	return core.Task{
		ID:    int(s.id.Load()),
		Phase: granule.PhaseID(s.phase.Load()),
		Run:   granule.Range{Lo: granule.ID(s.lo.Load()), Hi: granule.ID(s.hi.Load())},
	}
}

func (r *dequeRing) store(i int64, t core.Task) {
	s := &r.slots[i&r.mask]
	s.id.Store(int64(t.ID))
	s.phase.Store(int64(t.Phase))
	s.lo.Store(int64(t.Run.Lo))
	s.hi.Store(int64(t.Run.Hi))
}

// newDeque sizes the initial ring for capHint tasks (rounded up to a power
// of two, minimum 8). The deque grows past the hint if needed; the hint
// just makes the steady state allocation-free.
func newDeque(capHint int) *deque {
	size := int64(8)
	for size < int64(capHint) {
		size <<= 1
	}
	d := &deque{}
	d.ring.Store(newDequeRing(size))
	return d
}

// size reports bottom-top. It is exact for the owner; for anyone else it
// is a moment-in-time estimate (may be stale, may briefly read as -1
// during the owner's popBottom of an empty deque).
func (d *deque) size() int64 {
	return d.bottom.Load() - d.top.Load()
}

// pushBottom appends t at the bottom. Owner only.
func (d *deque) pushBottom(t core.Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= r.size() {
		r = d.grow(r, top, b)
	}
	r.store(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes the most recently pushed task. Owner only.
func (d *deque) popBottom() (core.Task, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return core.Task{}, false
	}
	task := r.load(b)
	if t == b {
		// Last element: race the thieves for it via the top CAS.
		if !d.top.CompareAndSwap(t, t+1) {
			// A thief won; the deque is empty.
			d.bottom.Store(b + 1)
			return core.Task{}, false
		}
		d.bottom.Store(b + 1)
		return task, true
	}
	return task, true
}

// steal removes the oldest task. Safe from any goroutine. A failed CAS
// means another thief (or the owner, on the last element) got there first;
// the loop re-reads top and retries until the deque is observed empty, so
// a steal attempt never spuriously fails while work remains.
func (d *deque) steal() (core.Task, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return core.Task{}, false
		}
		r := d.ring.Load()
		task := r.load(t)
		if d.top.CompareAndSwap(t, t+1) {
			return task, true
		}
	}
}

// grow doubles the ring, copying the live window [top, bottom). Owner
// only; called from pushBottom with the pre-push top and bottom.
func (d *deque) grow(old *dequeRing, top, bottom int64) *dequeRing {
	r := newDequeRing(old.size() * 2)
	for i := top; i < bottom; i++ {
		r.store(i, old.load(i))
	}
	d.ring.Store(r)
	return r
}
