package executive

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// stubSM is a StateMachine that never yields work and never finishes: the
// shape of a stalled scheduler, unreachable through the real state
// machine's liveness guarantees. Managers must detect it and fail loudly
// instead of parking every worker forever. All methods are called under
// the manager's own serialization, so the stub needs no locking.
type stubSM struct {
	phase int
}

func (s *stubSM) Start() core.Cost                       { return 0 }
func (s *stubSM) NextTask() (core.Task, core.Cost, bool) { return core.Task{}, 0, false }
func (s *stubSM) Complete(core.Task) core.Cost           { return 0 }
func (s *stubSM) CompleteBatch(ts []core.Task) core.Cost { return 0 }
func (s *stubSM) DeferredMgmt() (core.Cost, bool)        { return 0, false }
func (s *stubSM) HasDeferred() bool                      { return false }
func (s *stubSM) Done() bool                             { return false }
func (s *stubSM) InFlight() int                          { return 0 }
func (s *stubSM) ReadyTasks() int                        { return 0 }
func (s *stubSM) CurrentPhase() int                      { return s.phase }
func (s *stubSM) Stats() core.Stats                      { return core.Stats{} }
func (s *stubSM) NextTasks(dst []core.Task, max int) ([]core.Task, core.Cost) {
	return dst, 0
}

// driveWorkers runs the plain worker protocol over mgr until every worker
// exits, then returns the run error.
func driveWorkers(mgr Manager, workers int) error {
	mgr.Start()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				t, ok := mgr.Next(w)
				if !ok {
					return
				}
				mgr.Complete(w, t)
			}
		}(w)
	}
	wg.Wait()
	return mgr.Err()
}

// TestStallDetector: when every worker is parked with nothing in flight
// and the state machine is not done, both managers must surface a stall
// error rather than deadlock.
func TestStallDetector(t *testing.T) {
	for _, kind := range ManagerKinds() {
		for _, workers := range []int{1, 4, 9} {
			mgr, err := newManager(&stubSM{phase: 7}, Config{
				Workers: workers, Manager: kind, DequeCap: 4, Batch: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = driveWorkers(mgr, workers)
			if err == nil {
				t.Fatalf("%v/%d workers: stalled run returned no error", kind, workers)
			}
			if !strings.Contains(err.Error(), "stalled at phase 7") {
				t.Fatalf("%v/%d workers: error %q does not identify the stall", kind, workers, err)
			}
		}
	}
}

// TestWorkPanicMidPhase: a work-function panic in the middle phase of a
// three-phase program must surface as a run error under both managers,
// with the remaining workers released.
func TestWorkPanicMidPhase(t *testing.T) {
	for _, kind := range ManagerKinds() {
		n := 512
		a := make([]int64, n)
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "fill", Granules: n,
				Work:   func(g granule.ID) { a[g] = int64(g) },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "poison", Granules: n,
				Work: func(g granule.ID) {
					if g == granule.ID(n/2) {
						panic("mid-phase poison")
					}
				},
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "after", Granules: n,
				Work: func(g granule.ID) { a[g] = -a[g] },
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(prog, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
			Config{Workers: 8, Manager: kind, DequeCap: 4, Batch: 2})
		if err == nil {
			t.Fatalf("%v: mid-phase panic did not surface", kind)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("%v: error %q does not mention the panic", kind, err)
		}
	}
}

// TestShardedCorrectness runs the copy chain under the sharded manager
// across deque/batch extremes and verifies the computed values.
func TestShardedCorrectness(t *testing.T) {
	cases := []struct{ workers, deque, batch, grain int }{
		{1, 1, 1, 4},
		{4, 2, 1, 4},
		{8, 16, 8, 8},
		{12, 64, 32, 2},
	}
	for _, tc := range cases {
		prog, a, b, c := buildCopyChain(t, 2048)
		rep, err := Run(prog, core.Options{
			Grain: tc.grain, Overlap: true, Costs: core.DefaultCosts(),
		}, Config{
			Workers: tc.workers, Manager: ShardedManager,
			DequeCap: tc.deque, Batch: tc.batch,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		checkCopyChain(t, a, b, c)
		if rep.Manager != ShardedManager {
			t.Errorf("%+v: report manager = %v", tc, rep.Manager)
		}
		if rep.Sched.Completions == 0 {
			t.Errorf("%+v: no completions recorded", tc)
		}
	}
}

// TestShardedReverseGather mirrors TestExecutiveReverseGather under the
// sharded manager: batched completions must never let a reverse-indirect
// gather run before both of its sources are written.
func TestShardedReverseGather(t *testing.T) {
	n := 512
	a := make([]int64, 2*n)
	d := make([]int64, n)
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "produce", Granules: 2 * n,
			Work: func(g granule.ID) { a[g] = int64(g) * 7 },
			Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
				return []granule.ID{2 * r, 2*r + 1}
			}),
		},
		&core.Phase{
			Name: "gather", Granules: n,
			Work: func(g granule.ID) { d[g] = a[2*g] + a[2*g+1] },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, core.Options{
		Grain: 8, Overlap: true, Elevate: true, SubsetSize: 32,
		Costs: core.DefaultCosts(),
	}, Config{Workers: 8, Manager: ShardedManager, DequeCap: 4, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		want := int64(2*r)*7 + int64(2*r+1)*7
		if d[r] != want {
			t.Fatalf("d[%d] = %d, want %d", r, d[r], want)
		}
	}
}

func TestManagerKindParse(t *testing.T) {
	for _, kind := range ManagerKinds() {
		got, err := ParseManager(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseManager(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParseManager("quantum"); err == nil {
		t.Error("unknown manager name accepted")
	}
	if s := ManagerKind(250).String(); !strings.Contains(s, "250") {
		t.Errorf("invalid kind string %q", s)
	}
}

func TestUnknownManagerRejected(t *testing.T) {
	prog, _, _, _ := buildCopyChain(t, 16)
	if _, err := Run(prog, core.Options{}, Config{Workers: 2, Manager: ManagerKind(250)}); err == nil {
		t.Error("unknown manager kind accepted")
	}
}
