package executive

// Deterministic fault injection on the real goroutine backend. The same
// fault.Plan the simulator consults in virtual time is consulted here at
// the matching chokepoints, with wall-clock effects bounded by
// fault.Sleep so a campaign can never turn a run into a sleep marathon:
//
//   - grain faults strike in the worker loop around execute: a slow grain
//     (and a slow worker) stretches the task's measured compute, a stuck
//     grain withholds the completion, a panicking grain replaces the work
//     function with one that panics — exercising the engine's recover
//     machinery end to end — and an erroring grain aborts with an
//     injected error before execute runs;
//   - worker crash retires the goroutine after its completion is
//     submitted: graceful capacity loss, no task lost. Managers that
//     census workers for stall detection or keep per-worker state are
//     told through the optional Retirer interface;
//   - management faults delay a completion's submission (MgmtDelay).
//     DropWakeup and the unbounded wedge are pool/simulator concepts —
//     the plain executive has no watchdog to recover them, so injecting
//     them here would trade a priced fault for a hang.
//
// Every firing is flight-recorded as a KFault event (Arg = fault.Kind).

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/trace"
)

// Retirer is implemented by managers that must be told when a worker
// retires mid-run (fault injection's WorkerCrash): the manager flushes
// the worker's local state and removes it from the census its stall
// detector counts against, so the survivors' all-parked probe stays
// sound with fewer workers alive.
type Retirer interface {
	Retire(w int)
}

// Retire removes w from the serial stall census. Serial keeps no
// per-worker state to flush; the broadcast re-evaluates the all-parked
// check under the new worker count.
func (m *serial) Retire(w int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers--
	m.cond.Broadcast()
}

// Retire flushes w's completion batch and removes it from the sharded
// stall census. Tasks still in w's deque stay where they are — they are
// stealable, and the broadcast sends every parked peer through one more
// steal sweep so they are picked up even when no future completion would
// have woken anyone.
func (m *sharded) Retire(w int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.flushLocked(w)
	m.mgmt += time.Since(m0)
	m.workers--
	m.cond.Broadcast()
}

// Retire rings the management doorbell. The async manager has no
// worker census (its stall probe runs on the management goroutine
// against InFlight) and no worker-local state — completions were already
// queued before the crash point.
func (m *async) Retire(w int) { m.ring() }

// taskFaults carries one dispatch's injected effects from the
// pre-execute consultation to the post-execute application.
type taskFaults struct {
	factor int64 // compute stretch (GrainSlow × WorkerSlow product)
	stall  int64 // completion withhold in units (GrainStall + WorkerWedge)
	err    error // injected failure (GrainError)
}

// sinceStart is the wall-clock nanoseconds since the run started — the
// real-backend reading of a Rule's After field.
func (e *engine) sinceStart() int64 { return time.Since(e.start).Nanoseconds() }

// noteFault flight-records and counts one injected fault firing.
func (e *engine) noteFault(w int, k fault.Kind) {
	if e.rec != nil {
		e.rec.Ring(w).Record(trace.KFault, e.rec.Now(), int32(w), 0, -1, 0, 0, int64(k))
	}
	e.met.Faults.Inc(w)
}

// injectTask consults the plan for worker- and grain-level faults on one
// dispatch, possibly replacing work with a panicking body (GrainPanic).
// Only called with a non-nil plan.
func (e *engine) injectTask(w int, task core.Task, work *core.WorkFn, tf *taskFaults) {
	at := e.sinceStart()
	tf.factor = 1
	if _, f, ok := e.plan.Worker(w, at, fault.WorkerSlow); ok {
		e.noteFault(w, fault.WorkerSlow)
		tf.factor *= f
	}
	if d, _, ok := e.plan.Worker(w, at, fault.WorkerWedge); ok {
		// On the plain executive a wedge is a bounded withhold (the pool's
		// release-gated wedge needs a stall probe or deadline above it).
		e.noteFault(w, fault.WorkerWedge)
		tf.stall += d
	}
	k, d, f := e.plan.Grain(0, int(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), at)
	if k == 0 {
		return
	}
	e.noteFault(w, k)
	switch k {
	case fault.GrainSlow:
		tf.factor *= f
	case fault.GrainStall:
		tf.stall += d
	case fault.GrainPanic:
		ph := task.Phase
		*work = func(granule.ID) {
			panic(fmt.Sprintf("fault: injected panic in phase %d", ph))
		}
	case fault.GrainError:
		tf.err = fmt.Errorf("executive: injected error in phase %d granules [%d,%d)",
			task.Phase, task.Run.Lo, task.Run.Hi)
	}
}

// stretchCompute sleeps the slow-fault extension of a task that just ran
// for dur — called inside the worker's compute-measurement window, so a
// slow grain shows up as inflated compute exactly as it does in virtual
// time.
func stretchCompute(dur time.Duration, factor int64) {
	if factor > 1 {
		fault.Sleep(int64(dur) * (factor - 1) / int64(time.Microsecond))
	}
}

// beforeComplete withholds the completion (stuck grain, wedged worker)
// and delays its submission to management (MgmtDelay). Only called with
// a non-nil plan.
func (e *engine) beforeComplete(w int, tf *taskFaults) {
	if tf.stall > 0 {
		fault.Sleep(tf.stall)
	}
	if d, ok := e.plan.Mgmt(0, e.sinceStart()); ok {
		e.noteFault(w, fault.MgmtDelay)
		fault.Sleep(d)
	}
}

// maybeCrash retires the worker after its completion was submitted when
// a WorkerCrash rule fires: the goroutine returns and never asks for
// work again. The last live worker refuses (the rule is consumed but
// ignored). Only called with a non-nil plan.
func (e *engine) maybeCrash(w int) bool {
	if _, _, ok := e.plan.Worker(w, e.sinceStart(), fault.WorkerCrash); !ok {
		return false
	}
	if e.live.Add(-1) < 1 {
		e.live.Add(1)
		return false
	}
	e.noteFault(w, fault.WorkerCrash)
	if r, ok := e.mgr.(Retirer); ok {
		r.Retire(w)
	}
	return true
}
