package executive

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// faultManagers is the set every injection test sweeps: the fault plan is
// consulted in the manager-agnostic worker loop, so all three managers
// must show identical failure semantics.
var faultManagers = []ManagerKind{SerialManager, ShardedManager, AsyncManager}

func anyRule(k fault.Kind) fault.Rule {
	return fault.Rule{Kind: k, Job: -1, Phase: -1, Worker: -1, Count: 1}
}

// countFaults counts KFault firings of kind k in a merged trace.
func countFaults(tr *trace.Trace, k fault.Kind) int {
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KFault && ev.Arg == int64(k) {
			n++
		}
	}
	return n
}

func TestFaultInjectedErrorAborts(t *testing.T) {
	for _, mk := range faultManagers {
		t.Run(mk.String(), func(t *testing.T) {
			prog, _, _, _ := buildCopyChain(t, 512)
			_, err := Run(prog, core.Options{Grain: 16, Overlap: true, Costs: core.DefaultCosts()},
				Config{Workers: 4, Manager: mk,
					Faults: &fault.Spec{Rules: []fault.Rule{anyRule(fault.GrainError)}}})
			if err == nil {
				t.Fatal("injected error did not fail the run")
			}
			if !strings.Contains(err.Error(), "injected error") {
				t.Fatalf("error does not name the injection: %v", err)
			}
		})
	}
}

func TestFaultInjectedPanicRecovered(t *testing.T) {
	for _, mk := range faultManagers {
		t.Run(mk.String(), func(t *testing.T) {
			prog, _, _, _ := buildCopyChain(t, 512)
			_, err := Run(prog, core.Options{Grain: 16, Overlap: true, Costs: core.DefaultCosts()},
				Config{Workers: 4, Manager: mk,
					Faults: &fault.Spec{Rules: []fault.Rule{anyRule(fault.GrainPanic)}}})
			if err == nil {
				t.Fatal("injected panic did not fail the run")
			}
			if !strings.Contains(err.Error(), "injected panic") {
				t.Fatalf("panic was not surfaced as a run error: %v", err)
			}
		})
	}
}

// TestFaultWorkerCrashGracefulLoss retires workers mid-run and expects the
// survivors to finish the program correctly: capacity loss, no task loss.
// The Retirer path keeps each manager's stall census sound, so the run
// must neither hang nor trip a spurious stall abort.
func TestFaultWorkerCrashGracefulLoss(t *testing.T) {
	for _, mk := range faultManagers {
		t.Run(mk.String(), func(t *testing.T) {
			rule := anyRule(fault.WorkerCrash)
			rule.Count = 3
			rec := trace.NewRecorder(trace.Meta{}, 4)
			prog, a, b, c := buildCopyChain(t, 2048)
			rep, err := Run(prog, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
				Config{Workers: 4, Manager: mk, Trace: rec,
					Faults: &fault.Spec{Rules: []fault.Rule{rule}}})
			if err != nil {
				t.Fatalf("crash campaign failed the run: %v", err)
			}
			checkCopyChain(t, a, b, c)
			if rep.Tasks == 0 {
				t.Fatal("no tasks recorded")
			}
			if n := countFaults(rec.Take(), fault.WorkerCrash); n == 0 {
				t.Error("no WorkerCrash firing recorded")
			}
		})
	}
}

// TestFaultBoundedDelaysComplete runs a campaign of purely latency-shaped
// faults — slow grains, stuck grains, wedged workers, delayed management —
// and expects every manager to finish with correct data: on the plain
// executive these are bounded delays, never hangs.
func TestFaultBoundedDelaysComplete(t *testing.T) {
	spec := fault.Spec{Seed: 7, Rules: []fault.Rule{
		{Kind: fault.GrainSlow, Job: -1, Phase: -1, Worker: -1, Factor: 4, Count: 2},
		{Kind: fault.GrainStall, Job: -1, Phase: -1, Worker: -1, Delay: 200, Count: 2},
		{Kind: fault.WorkerWedge, Job: -1, Phase: -1, Worker: -1, Delay: 200, Count: 1},
		{Kind: fault.MgmtDelay, Job: -1, Phase: -1, Worker: -1, Delay: 200, Count: 2},
	}}
	for _, mk := range faultManagers {
		t.Run(mk.String(), func(t *testing.T) {
			rec := trace.NewRecorder(trace.Meta{}, 4)
			prog, a, b, c := buildCopyChain(t, 1024)
			if _, err := Run(prog, core.Options{Grain: 16, Overlap: true, Costs: core.DefaultCosts()},
				Config{Workers: 4, Manager: mk, Trace: rec, Faults: &spec}); err != nil {
				t.Fatalf("latency campaign failed the run: %v", err)
			}
			checkCopyChain(t, a, b, c)
			tr := rec.Take()
			fired := 0
			for _, k := range []fault.Kind{fault.GrainSlow, fault.GrainStall, fault.WorkerWedge, fault.MgmtDelay} {
				fired += countFaults(tr, k)
			}
			if fired == 0 {
				t.Error("campaign fired no faults")
			}
		})
	}
}

// TestFaultInjectionOffFastPath pins the injection-off contract: a nil
// Faults spec must leave the engine on the plain path with zero KFault
// events and a correct result.
func TestFaultInjectionOffFastPath(t *testing.T) {
	rec := trace.NewRecorder(trace.Meta{}, 4)
	prog, a, b, c := buildCopyChain(t, 1024)
	if _, err := Run(prog, core.Options{Grain: 16, Overlap: true, Costs: core.DefaultCosts()},
		Config{Workers: 4, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
	for _, ev := range rec.Take().Events {
		if ev.Kind == trace.KFault {
			t.Fatalf("KFault event on an injection-off run: %+v", ev)
		}
	}
}
