package executive

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// StateMachine is the slice of the core scheduler state machine a Manager
// drives. The split is the load-bearing boundary of this package: the
// state machine (core.Scheduler) holds all scheduling policy and no
// synchronization; a Manager holds all synchronization and no scheduling
// policy. *core.Scheduler implements it; tests substitute stubs to
// exercise manager failure paths the real state machine cannot reach.
type StateMachine interface {
	// Start activates the program; returns the management cost.
	Start() core.Cost
	// NextTask pops one ready task; ok is false when nothing is ready.
	NextTask() (core.Task, core.Cost, bool)
	// NextTasks pops up to max ready tasks in one call (batch refill).
	NextTasks(dst []core.Task, max int) ([]core.Task, core.Cost)
	// Complete performs completion processing for one dispatched task.
	Complete(t core.Task) core.Cost
	// CompleteBatch performs completion processing for ts in order.
	CompleteBatch(ts []core.Task) core.Cost
	// DeferredMgmt performs one unit of deferred management work.
	DeferredMgmt() (core.Cost, bool)
	// HasDeferred reports whether deferred management work is queued.
	HasDeferred() bool
	// Done reports whether every phase has completed.
	Done() bool
	// InFlight reports dispatched-but-incomplete tasks.
	InFlight() int
	// ReadyTasks reports how many NextTask calls would succeed right now.
	ReadyTasks() int
	// CurrentPhase reports the oldest incomplete phase index.
	CurrentPhase() int
	// Stats returns the management statistics so far.
	Stats() core.Stats
}

var _ StateMachine = (*core.Scheduler)(nil)

// A Manager owns the state machine on behalf of the worker pool: it
// decides how scheduler interactions are serialized, where completions
// accumulate, and when parked workers wake. The worker loop in Run is
// manager-agnostic.
//
// The contract: one Start, then each worker loops Next -> execute ->
// Complete until Next returns ok=false (program done, run aborted, or
// stall detected). Abort may be called from any worker at any time.
type Manager interface {
	// Start activates the program on the state machine.
	Start()
	// Next blocks until a task is available for worker w and returns it.
	// ok=false means the worker must exit: the program is done, the run
	// was aborted, or the manager detected a stall.
	Next(w int) (t core.Task, ok bool)
	// Complete reports that worker w finished executing t. The manager
	// may submit it to the state machine immediately (serial) or
	// accumulate it for batched submission (sharded). It reports whether
	// completions were applied to the state machine by this call — false
	// means t only joined a local batch, so no successor work can have
	// been released (the pool uses this to skip waking parked workers).
	Complete(w int, t core.Task) (applied bool)
	// Abort terminates the run with err; parked workers are released.
	Abort(err error)
	// Err returns the run error, if any. Call after the workers exit.
	Err() error
	// Mgmt and Idle return the summed management-lock and parked time.
	Mgmt() time.Duration
	Idle() time.Duration
}

// PoolDriver is the manager surface the multi-tenant pool
// (internal/tenant) drives. It keeps the Manager contract but adds the
// non-blocking probes a pool worker needs to serve several jobs: instead
// of parking inside one job's manager, a worker that gets TryNext
// ok=false moves on to another job, and the pool owns parking and stall
// detection across all of them. Both built-in managers implement it.
type PoolDriver interface {
	Manager
	// TryNext returns a task without parking. Like Next it absorbs
	// deferred management (and, sharded, flushes this worker's completion
	// batch) before declaring the job dry, so ok=false means the job has
	// nothing for this worker to do right now — the job is in rundown,
	// done, or aborted.
	TryNext(w int) (t core.Task, ok bool)
	// Flush submits worker w's accumulated completions immediately
	// (no-op for managers that do not batch). The pool calls it when a
	// worker switches jobs so completions cannot linger unflushed. It
	// reports whether anything was applied.
	Flush(w int) (applied bool)
	// Done reports whether the job's state machine has completed.
	Done() bool
	// InFlight reports dispatched-but-incomplete tasks. When every pool
	// worker is parked (all deques drained, all batches flushed),
	// InFlight()==0 on an unfinished job identifies a true stall.
	InFlight() int
}

// Joiner is implemented by managers that run management on a goroutine of
// their own (AsyncManager). Join blocks until that goroutine has exited;
// call it only after the run is over (workers exited, or Abort was
// called) and before reading final state-machine statistics — until Join
// returns, the management goroutine may still be touching the state
// machine.
type Joiner interface {
	Join()
}

// Notifier is implemented by managers whose scheduling progress happens
// off the worker goroutines (AsyncManager: completions apply and refills
// land on the management goroutine). A pool that parks workers above the
// manager would never observe that progress through its own calls, so it
// registers a callback here — invoked, outside all manager locks, after
// every management cycle that applied completions, buffered new tasks, or
// finished the run. SetNotify must be called before Start.
type Notifier interface {
	SetNotify(func())
}

// NewPoolDriver builds the configured Manager over sm and returns its
// pool-driving surface. It is the constructor internal/tenant uses; Run
// keeps its own private path.
func NewPoolDriver(sm StateMachine, cfg Config) (PoolDriver, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("executive: need at least 1 worker")
	}
	mgr, err := newManager(sm, cfg)
	if err != nil {
		return nil, err
	}
	pd, ok := mgr.(PoolDriver)
	if !ok {
		return nil, fmt.Errorf("executive: manager %v cannot drive a multi-job pool", cfg.Manager)
	}
	return pd, nil
}

// ManagerKind selects the Manager implementation an executive run uses.
type ManagerKind uint8

const (
	// SerialManager serializes every state-machine interaction under one
	// global lock — the PAX serial executive, preserved as the paper
	// baseline. Management is a single contended resource exactly as on
	// the UNIVAC 1100 test bed.
	SerialManager ManagerKind = iota
	// ShardedManager gives each worker a bounded local task deque and a
	// local completion batch. Workers refill their deque (and flush
	// their batch) in one global-lock acquisition, and steal from each
	// other's deques when their own drains during rundown, so global
	// serialization is paid once per batch rather than once per task.
	ShardedManager
	// AsyncManager runs all management on one dedicated background
	// goroutine — the paper's separate executive processor (the sim's
	// Dedicated model) realized on hardware. Workers pull tasks from a
	// bounded ready-buffer the management goroutine keeps refilled and
	// push completions into a lock-free MPSC queue; deferred management
	// overlaps computation on the management thread whenever the buffer
	// is above its low-water mark, and workers fall back to inline
	// draining when GOMAXPROCS leaves the management goroutine no core.
	AsyncManager
)

// ManagerKinds lists every built-in manager kind, in declaration order.
// The conformance suite ranges over it so a new manager inherits the
// stall/panic/race/Done-invariant checks the moment it is registered.
func ManagerKinds() []ManagerKind {
	return []ManagerKind{SerialManager, ShardedManager, AsyncManager}
}

func (k ManagerKind) String() string {
	switch k {
	case SerialManager:
		return "serial"
	case ShardedManager:
		return "sharded"
	case AsyncManager:
		return "async"
	default:
		return fmt.Sprintf("ManagerKind(%d)", uint8(k))
	}
}

// ManagerNames lists the accepted ParseManager names in declaration
// order. CLI help strings and parse errors are built from it so the
// enumeration cannot drift from the parser.
func ManagerNames() []string {
	names := make([]string, 0, len(ManagerKinds()))
	for _, k := range ManagerKinds() {
		names = append(names, k.String())
	}
	return names
}

// ParseManager parses a -manager flag value. Matching is
// case-insensitive and tolerates surrounding whitespace; the error
// enumerates the valid names.
func ParseManager(s string) (ManagerKind, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, k := range ManagerKinds() {
		if name == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("executive: unknown manager %q (valid managers: %s)",
		s, strings.Join(ManagerNames(), "|"))
}

// Every built-in manager implements the PoolDriver surface; these
// compile-time assertions are what keeps SupportsPool's static answer
// honest.
var (
	_ PoolDriver = (*serial)(nil)
	_ PoolDriver = (*sharded)(nil)
	_ PoolDriver = (*async)(nil)
)

// SupportsPool reports whether kind's manager implements the PoolDriver
// surface the multi-tenant pool drives — the static form of the
// NewPoolDriver capability check (a conformance test pins the two
// together). False also covers unknown kinds.
func SupportsPool(kind ManagerKind) bool {
	switch kind {
	case SerialManager, ShardedManager, AsyncManager:
		return true
	}
	return false
}

// recordAbort flight-records the failure point of a run. Every manager
// calls it exactly where its error transitions nil -> non-nil, so a
// trace carries at most one KAbort and RunContext's failure path can
// rely on it being there.
func recordAbort(rec *trace.Recorder) {
	if rec != nil {
		rec.Emit(trace.KAbort, rec.Now(), -1, 0, -1, 0, 0, 0)
	}
}

// newManager builds the configured Manager over sm.
func newManager(sm StateMachine, cfg Config) (Manager, error) {
	switch cfg.Manager {
	case SerialManager:
		return newSerial(sm, cfg), nil
	case ShardedManager:
		return newSharded(sm, cfg), nil
	case AsyncManager:
		return newAsync(sm, cfg), nil
	default:
		return nil, fmt.Errorf("executive: unknown manager kind %v", cfg.Manager)
	}
}
