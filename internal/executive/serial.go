package executive

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// serial is the paper-baseline Manager: a single mutex guards every state
// machine interaction, exactly serializing management the way the single
// UNIVAC executive did. The time spent inside the lock is measured as
// management time, so the paper's computation-to-management ratio can be
// observed on real hardware.
type serial struct {
	mu   sync.Mutex
	cond *sync.Cond

	sm      StateMachine
	workers int
	rec     *trace.Recorder // flight recorder (nil = tracing off)

	// Accumulators, guarded by mu.
	mgmt    time.Duration
	idle    time.Duration
	waiting int
	err     error
}

func newSerial(sm StateMachine, cfg Config) *serial {
	m := &serial{sm: sm, workers: cfg.Workers, rec: cfg.Trace}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *serial) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m0 := time.Now()
	m.sm.Start()
	m.mgmt += time.Since(m0)
}

// Next asks the serial executive for work, absorbing deferred management
// in idle moments and parking when nothing is ready.
func (m *serial) Next(w int) (core.Task, bool) {
	return m.next(w, true)
}

// TryNext is the non-blocking Next the multi-tenant pool drives: when the
// executive has nothing dispatchable — even after absorbing deferred
// management — the worker goes to look at another job instead of parking.
func (m *serial) TryNext(w int) (core.Task, bool) {
	return m.next(w, false)
}

func (m *serial) next(w int, park bool) (core.Task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.err != nil {
			return core.Task{}, false
		}
		m0 := time.Now()
		task, _, ok := m.sm.NextTask()
		m.mgmt += time.Since(m0)

		if ok {
			return task, true
		}
		if m.sm.Done() {
			m.cond.Broadcast()
			return core.Task{}, false
		}

		// Idle executive moment: absorb deferred successor-splitting
		// management tasks before parking.
		if m.sm.HasDeferred() {
			m1 := time.Now()
			_, _ = m.sm.DeferredMgmt()
			m.mgmt += time.Since(m1)
			m.cond.Broadcast()
			continue
		}

		if !park {
			return core.Task{}, false
		}

		// Park until a completion or release makes work available. If
		// every worker is parked with nothing in flight, the scheduler
		// has stalled — a bug its liveness guarantees should prevent;
		// fail loudly instead of deadlocking.
		if m.waiting+1 == m.workers && m.sm.InFlight() == 0 {
			m.err = fmt.Errorf("executive: stalled at phase %d: all workers idle, nothing in flight",
				m.sm.CurrentPhase())
			recordAbort(m.rec)
			m.cond.Broadcast()
			return core.Task{}, false
		}
		i0 := time.Now()
		if m.rec != nil {
			m.rec.Ring(w).Record(trace.KPark, m.rec.Now(), int32(w), 0, -1, 0, 0, 0)
		}
		m.waiting++
		m.cond.Wait()
		m.waiting--
		d := time.Since(i0)
		m.idle += d
		if m.rec != nil {
			m.rec.Ring(w).Record(trace.KUnpark, m.rec.Now(), int32(w), 0, -1, 0, 0, int64(d))
		}
	}
}

// Complete submits the completion immediately under the global lock. A
// completion arriving after the run failed (abort, cancellation, panic)
// is dropped without touching the state machine: the run's results are
// void, and nothing may mutate the state machine after the failure point
// — Job.Wait and the report path read its statistics as soon as the job
// is retired.
func (m *serial) Complete(w int, t core.Task) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return false
	}
	m1 := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil && m.err == nil {
				m.err = fmt.Errorf("executive: completion processing panicked: %v", r)
				recordAbort(m.rec)
			}
		}()
		m.sm.Complete(t)
	}()
	m.mgmt += time.Since(m1)
	m.cond.Broadcast()
	return true
}

// Flush is a no-op: serial completions are submitted immediately.
func (m *serial) Flush(w int) bool { return false }

// Done reports whether the state machine has completed every phase.
func (m *serial) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.Done()
}

// InFlight reports dispatched-but-incomplete tasks.
func (m *serial) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sm.InFlight()
}

// Abort terminates the run with err. A run whose state machine has
// already completed refuses the abort (checked under the same lock that
// serialized the completion, so there is no window): every Work
// function ran and the results are valid — a late cancellation must not
// poison them. Callers observe the refusal through Err() == nil.
func (m *serial) Abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil && m.sm.Done() {
		return
	}
	if m.err == nil {
		m.err = err
		recordAbort(m.rec)
	}
	m.cond.Broadcast()
}

func (m *serial) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *serial) Mgmt() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mgmt
}

func (m *serial) Idle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idle
}
