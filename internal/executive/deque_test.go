package executive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestDequeOwnerOrder: with no thieves, the deque is a plain LIFO stack
// for its owner, and size tracks it.
func TestDequeOwnerOrder(t *testing.T) {
	d := newDeque(4)
	if _, ok := d.popBottom(); ok {
		t.Fatal("popBottom on empty deque returned a task")
	}
	for i := 0; i < 10; i++ {
		d.pushBottom(mkTask(i))
	}
	if n := d.size(); n != 10 {
		t.Fatalf("size = %d, want 10", n)
	}
	for i := 9; i >= 0; i-- {
		got, ok := d.popBottom()
		if !ok || got.ID != i {
			t.Fatalf("popBottom = %v,%v, want task %d", got, ok, i)
		}
	}
	if _, ok := d.popBottom(); ok {
		t.Fatal("drained deque still pops")
	}
}

// TestDequeGrow: pushing far past the initial ring capacity must grow the
// ring without losing or reordering anything, and steals must see the
// grown contents.
func TestDequeGrow(t *testing.T) {
	d := newDeque(8)
	const n = 1000
	for i := 0; i < n; i++ {
		d.pushBottom(mkTask(i))
	}
	for i := 0; i < n/2; i++ {
		got, ok := d.steal()
		if !ok || got.ID != i {
			t.Fatalf("steal = %v,%v, want task %d", got, ok, i)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		got, ok := d.popBottom()
		if !ok || got.ID != i {
			t.Fatalf("popBottom = %v,%v, want task %d", got, ok, i)
		}
	}
}

// TestDequeStealVsPopLastElement races the owner and GOMAXPROCS thieves
// for a deque holding exactly one task, over many rounds: exactly one
// goroutine may win each round — the core last-element CAS arbitration.
func TestDequeStealVsPopLastElement(t *testing.T) {
	thieves := runtime.GOMAXPROCS(0)
	if thieves < 2 {
		thieves = 2
	}
	const rounds = 2000
	d := newDeque(4)

	var wins atomic.Int64
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		ready.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			ready.Done()
			<-start
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := d.steal(); ok {
					wins.Add(1)
				}
			}
		}()
	}
	ready.Wait()
	close(start)

	ownerWins := 0
	for r := 0; r < rounds; r++ {
		d.pushBottom(mkTask(r))
		if _, ok := d.popBottom(); ok {
			ownerWins++
		}
		// Whoever won, the deque must now be empty for the owner.
		if _, ok := d.popBottom(); ok {
			t.Fatal("last element won twice in one round")
		}
	}
	close(stop)
	done.Wait()
	total := int(wins.Load()) + ownerWins
	if total != rounds {
		t.Fatalf("%d tasks extracted over %d rounds (owner %d, thieves %d)",
			total, rounds, ownerWins, wins.Load())
	}
}

// TestDequeGrowDuringSteal: the owner pushes enough to force repeated ring
// growth while thieves continuously steal; every task must be extracted
// exactly once. This exercises thieves reading a stale ring pointer across
// a grow.
func TestDequeGrowDuringSteal(t *testing.T) {
	thieves := runtime.GOMAXPROCS(0)
	if thieves < 2 {
		thieves = 2
	}
	const n = 20000
	d := newDeque(8) // tiny initial ring: growth is constant

	var mu sync.Mutex
	seen := make(map[int]int, n)
	record := func(id int) {
		mu.Lock()
		seen[id]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if task, ok := d.steal(); ok {
					record(task.ID)
					continue
				}
				select {
				case <-stop:
					// One last sweep so nothing pushed after our miss
					// is stranded.
					for {
						task, ok := d.steal()
						if !ok {
							return
						}
						record(task.ID)
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		d.pushBottom(mkTask(i))
		if i%7 == 0 {
			if task, ok := d.popBottom(); ok {
				record(task.ID)
			}
		}
	}
	for {
		task, ok := d.popBottom()
		if !ok {
			break
		}
		record(task.ID)
	}
	close(stop)
	wg.Wait()

	if len(seen) != n {
		t.Fatalf("extracted %d distinct tasks, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d extracted %d times", id, c)
		}
	}
}

// TestDequeTopMonotonic: the ABA guard on the steal index is top's
// monotonicity — concurrent thieves CASing the same top value must never
// extract the same task twice even as the owner push/pops around them.
// GOMAXPROCS thieves hammer one owner through continuous load/unload
// cycles that wrap the ring many times (index reuse at the same slot is
// exactly the ABA shape).
func TestDequeTopMonotonic(t *testing.T) {
	thieves := runtime.GOMAXPROCS(0)
	if thieves < 4 {
		thieves = 4
	}
	const cycles = 3000
	const burst = 8 // within the initial ring: slots are reused constantly
	d := newDeque(burst)

	var stolen sync.Map // id -> count
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if task, ok := d.steal(); ok {
					if n, loaded := stolen.LoadOrStore(task.ID, 1); loaded {
						stolen.Store(task.ID, n.(int)+1)
					}
				}
			}
		}()
	}

	next := 0
	ownerSeen := make(map[int]int)
	for c := 0; c < cycles; c++ {
		for i := 0; i < burst; i++ {
			d.pushBottom(mkTask(next))
			next++
		}
		for {
			task, ok := d.popBottom()
			if !ok {
				break
			}
			ownerSeen[task.ID]++
		}
	}
	close(stop)
	wg.Wait()
	for {
		task, ok := d.popBottom()
		if !ok {
			break
		}
		ownerSeen[task.ID]++
	}

	total := 0
	for id, c := range ownerSeen {
		if c != 1 {
			t.Fatalf("owner extracted task %d %d times", id, c)
		}
		if v, ok := stolen.Load(id); ok {
			t.Fatalf("task %d extracted by owner and stolen %v times", id, v)
		}
		total++
	}
	stolen.Range(func(id, c any) bool {
		if c.(int) != 1 {
			t.Fatalf("task %v stolen %v times", id, c)
		}
		total++
		return true
	})
	if total != next {
		t.Fatalf("extracted %d distinct tasks, want %d", total, next)
	}
}

// TestDequeStealZeroAlloc: the steady-state steal and pop paths must not
// allocate — the per-steal allocation of the old mutex deque
// (stolen := make([]core.Task, take)) is the regression this guards.
func TestDequeStealZeroAlloc(t *testing.T) {
	d := newDeque(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			d.pushBottom(mkTask(i))
		}
		for i := 0; i < 16; i++ {
			if _, ok := d.steal(); !ok {
				t.Fatal("steal failed")
			}
		}
		for {
			if _, ok := d.popBottom(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/steal/pop allocated %.1f times per run, want 0", allocs)
	}
}

// TestShardStealZeroAlloc: the manager-level steal sweep (CAS transfer
// into the thief's own deque) must also be allocation-free once rings are
// warm.
func TestShardStealZeroAlloc(t *testing.T) {
	m := shardedForTest(2, 64, 8)
	var load []core.Task
	for i := 0; i < 32; i++ {
		load = append(load, mkTask(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.load(1, load)
		for {
			if _, ok := m.steal(0); !ok {
				break
			}
			m.drainNoAlloc(0)
		}
		m.drainNoAlloc(1)
	})
	if allocs != 0 {
		t.Fatalf("steal sweep allocated %.1f times per run, want 0", allocs)
	}
}

// drainNoAlloc empties shard i's deque without building a slice.
func (m *sharded) drainNoAlloc(i int) {
	for {
		if _, ok := m.shards[i].dq.popBottom(); !ok {
			return
		}
	}
}
