package telemetry

// Dump is a registry's deterministic point-in-time export: every
// registered metric, sorted by name, with histogram buckets in index
// order and zero-count buckets elided. Two registries fed identical
// recordings marshal to identical JSON — the property the virtual-time
// metrics goldens pin — so Dump doubles as the structured form behind
// rundown's Report.Metrics.
type Dump struct {
	// TimeUnit labels every duration-valued metric: "ns" on real
	// backends, "virtual" on the simulator.
	TimeUnit string `json:"time_unit"`
	// Metrics lists every registered metric sorted by name.
	Metrics []MetricDump `json:"metrics"`
}

// MetricDump is one metric's exported state.
type MetricDump struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`
	// Value is the counter sum or gauge reading (counters, gauges).
	Value int64 `json:"value,omitempty"`
	// Count/Sum/Min/Max summarize a histogram's observations.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	Min   int64 `json:"min,omitempty"`
	Max   int64 `json:"max,omitempty"`
	// Buckets are the histogram's non-zero buckets in ascending bound
	// order; Upper is the bucket's inclusive upper bound.
	Buckets []BucketDump `json:"buckets,omitempty"`
}

// BucketDump is one non-empty histogram bucket.
type BucketDump struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// Dump exports the registry. Values are read lock-free, so a dump taken
// during a live run is a consistent-enough snapshot (like any metrics
// scrape); a dump taken after the run quiesces is exact.
func (r *Registry) Dump() *Dump {
	d := &Dump{TimeUnit: r.timeUnit}
	r.visit(
		func(c *Counter) {
			d.Metrics = append(d.Metrics, MetricDump{
				Name: c.name, Kind: KindCounter.String(), Help: c.help, Value: c.Value(),
			})
		},
		func(g *Gauge) {
			d.Metrics = append(d.Metrics, MetricDump{
				Name: g.name, Kind: KindGauge.String(), Help: g.help, Value: g.Value(),
			})
		},
		func(h *Histogram) {
			d.Metrics = append(d.Metrics, MetricDump{
				Name: h.name, Kind: KindHistogram.String(), Help: h.help,
				Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
				Buckets: h.snapshotBuckets(nil),
			})
		},
	)
	return d
}

// Get returns the dumped metric by name (nil when absent) — the
// convenience tests and report consumers use instead of scanning.
func (d *Dump) Get(name string) *MetricDump {
	for i := range d.Metrics {
		if d.Metrics[i].Name == name {
			return &d.Metrics[i]
		}
	}
	return nil
}
