package telemetry

// Set binds the standard rundown metric taxonomy — the one metric set
// every backend records, so a dump reads the same whether the run was
// priced in virtual time or executed on goroutines. NewSet registers
// every member idempotently, which means the full set appears in every
// dump (zero-valued where a backend has nothing to record: the
// simulator's sharded model has no steals, a run without faults fires
// none) — a deterministic shape the goldens rely on.
//
// Time-valued members (compute/mgmt/idle time, the wait histograms)
// record the registry's time base: wall-clock nanoseconds on real
// backends, virtual units on the simulator.
type Set struct {
	// Registry is the registry the set was built on.
	Registry *Registry

	// Dispatches counts tasks handed to workers; Completions counts
	// tasks finishing. Backfill counts the cross-job subset of
	// dispatches (tenancy only).
	Dispatches  *Counter
	Completions *Counter
	Backfill    *Counter

	// ComputeTime / MgmtTime / IdleTime / BackfillTime split where
	// processor time went — the paper's rundown accounting as live
	// counters. OverheadShare and Utilization derive from these plus
	// elapsed time (see Shares).
	ComputeTime  *Counter
	MgmtTime     *Counter
	IdleTime     *Counter
	BackfillTime *Counter

	// StealAttempts / StealWins / StealLoses count the sharded
	// manager's steal sweeps (goroutine backends only).
	StealAttempts *Counter
	StealWins     *Counter
	StealLoses    *Counter

	// Faults counts injected fault firings; Retries counts job attempt
	// restarts; DeadlineMisses counts jobs aborted past their deadline;
	// Retunes counts adaptive-controller parameter changes.
	Faults         *Counter
	Retries        *Counter
	DeadlineMisses *Counter
	Retunes        *Counter

	// JobsSubmitted / JobsDone count job lifecycle; ActiveJobs gauges
	// the currently incomplete jobs.
	JobsSubmitted *Counter
	JobsDone      *Counter
	ActiveJobs    *Gauge

	// ReadyOccupancy gauges the async manager's ready-buffer depth;
	// BatchSize gauges the adaptive controller's current refill batch.
	ReadyOccupancy *Gauge
	BatchSize      *Gauge

	// DispatchWait distributes ask-to-dispatch latency: how long a
	// worker needing work waited on management before a task was in
	// hand.
	DispatchWait *Histogram
	// QueueWait distributes per-job submit-to-activation wait
	// (admission control queueing; zero when admitted immediately).
	QueueWait *Histogram
	// DeadlineMargin distributes how much budget deadlined jobs had
	// left at completion (met deadlines only; misses count in
	// DeadlineMisses).
	DeadlineMargin *Histogram
}

// NewSet registers the standard metric taxonomy on r and returns the
// bound set. Calling it twice on one registry returns sets sharing the
// same underlying metrics.
func NewSet(r *Registry) *Set {
	return &Set{
		Registry: r,

		Dispatches:  r.Counter("rundown_dispatch_total", "tasks handed to workers"),
		Completions: r.Counter("rundown_complete_total", "tasks completed"),
		Backfill:    r.Counter("rundown_backfill_total", "cross-job tasks dispatched to foreign-home workers"),

		ComputeTime:  r.Counter("rundown_compute_time_total", "summed granule execution time"),
		MgmtTime:     r.Counter("rundown_mgmt_time_total", "summed management (executive) time"),
		IdleTime:     r.Counter("rundown_idle_time_total", "summed parked worker time"),
		BackfillTime: r.Counter("rundown_backfill_time_total", "summed cross-job execution time"),

		StealAttempts: r.Counter("rundown_steal_attempt_total", "sharded-manager steal sweeps started"),
		StealWins:     r.Counter("rundown_steal_win_total", "steal sweeps that took a task"),
		StealLoses:    r.Counter("rundown_steal_lose_total", "steal sweeps that found every victim dry"),

		Faults:         r.Counter("rundown_fault_total", "injected fault firings"),
		Retries:        r.Counter("rundown_retry_total", "job attempt restarts"),
		DeadlineMisses: r.Counter("rundown_deadline_miss_total", "jobs aborted past their deadline"),
		Retunes:        r.Counter("rundown_retune_total", "adaptive controller parameter changes"),

		JobsSubmitted: r.Counter("rundown_jobs_total", "jobs submitted"),
		JobsDone:      r.Counter("rundown_jobs_done_total", "jobs finished (any outcome)"),
		ActiveJobs:    r.Gauge("rundown_jobs_active", "currently incomplete jobs"),

		ReadyOccupancy: r.Gauge("rundown_ready_occupancy", "async ready-buffer depth"),
		BatchSize:      r.Gauge("rundown_batch_size", "adaptive refill batch size"),

		DispatchWait:   r.Histogram("rundown_dispatch_wait", "ask-to-dispatch latency"),
		QueueWait:      r.Histogram("rundown_queue_wait", "per-job submit-to-activation wait"),
		DeadlineMargin: r.Histogram("rundown_deadline_margin", "budget left at completion of deadlined jobs"),
	}
}

// ClassCounters is the per-service-class admission slice of the
// taxonomy: rundown_class_<class>_{jobs,rejected,done}_total.
type ClassCounters struct {
	Submitted *Counter
	Rejected  *Counter
	Done      *Counter
}

// Class registers (idempotently) and returns the counters for one
// service class. Unlike the fixed members above, class series appear in
// a dump only once a classified job has touched the pool — the
// zero-class golden shape is untouched. The class name is sanitized
// into the metric name (lowercased; anything outside [a-z0-9_] becomes
// '_').
func (s *Set) Class(class string) ClassCounters {
	n := sanitizeClass(class)
	return ClassCounters{
		Submitted: s.Registry.Counter("rundown_class_"+n+"_jobs_total", "jobs submitted in class "+class),
		Rejected:  s.Registry.Counter("rundown_class_"+n+"_rejected_total", "jobs rejected by admission in class "+class),
		Done:      s.Registry.Counter("rundown_class_"+n+"_done_total", "jobs finished in class "+class),
	}
}

// sanitizeClass maps an arbitrary class label into a metric-name-safe
// token.
func sanitizeClass(class string) string {
	b := []byte(class)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		default:
			b[i] = '_'
		}
	}
	if len(b) == 0 {
		return "unclassified"
	}
	return string(b)
}
