package telemetry

import (
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry(4, "ns")
	c1 := r.Counter("a_total", "help")
	c2 := r.Counter("a_total", "ignored on re-register")
	if c1 != c2 {
		t.Fatalf("re-registering a counter returned a different instance")
	}
	g1, g2 := r.Gauge("g", ""), r.Gauge("g", "")
	if g1 != g2 {
		t.Fatalf("re-registering a gauge returned a different instance")
	}
	h1, h2 := r.Histogram("h", ""), r.Histogram("h", "")
	if h1 != h2 {
		t.Fatalf("re-registering a histogram returned a different instance")
	}
	s1, s2 := NewSet(r), NewSet(r)
	if s1.Dispatches != s2.Dispatches {
		t.Fatalf("NewSet on one registry did not share metrics")
	}
}

func TestCounterShardsSum(t *testing.T) {
	r := NewRegistry(8, "ns")
	c := r.Counter("c_total", "")
	for w := 0; w < 8; w++ {
		c.Add(w, int64(w+1))
	}
	if got := c.Value(); got != 36 {
		t.Fatalf("Value = %d, want 36", got)
	}
	// Out-of-range workers fold into shard 0 rather than faulting.
	c.Add(-1, 1)
	c.Add(99, 1)
	if got := c.Value(); got != 38 {
		t.Fatalf("Value after out-of-range adds = %d, want 38", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(1, "ns")
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket upper bounds must be strictly increasing.
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 + 99}
	for _, v := range vals {
		i := bucketIndex(v)
		if up := bucketUpper(i); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if lo := bucketUpper(i - 1); v <= lo {
				t.Errorf("value %d at or below previous bucket's bound %d (bucket %d)", v, lo, i)
			}
		}
	}
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d", i, up, prev)
		}
		prev = up
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	r := NewRegistry(1, "ns")
	h := r.Histogram("h", "")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	// Log-linear buckets bound relative error by 1/subCount.
	p50 := h.Quantile(0.50)
	if p50 < 450 || p50 > 560 {
		t.Fatalf("p50 = %d, want ~500 within bucket error", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 930 || p99 > 1056 {
		t.Fatalf("p99 = %d, want ~990 within bucket error", p99)
	}
	if h.Quantile(0) > 16 {
		t.Fatalf("q0 = %d, want first bucket", h.Quantile(0))
	}
}

func TestDumpDeterministicAndSorted(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry(4, "virtual")
		for _, n := range order {
			r.Counter(n, "h")
		}
		h := r.Histogram("zz_hist", "")
		h.Observe(3)
		h.Observe(300)
		for i, n := range order {
			r.Counter(n, "").Add(i%4, int64(10+i))
		}
		b, err := json.Marshal(r.Dump())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a := build([]string{"b_total", "a_total", "c_total"})
	d := NewRegistry(2, "virtual")
	d.Counter("b_total", "").Add(0, 1)
	d.Counter("a_total", "").Add(0, 2)
	dump := d.Dump()
	if dump.Metrics[0].Name != "a_total" || dump.Metrics[1].Name != "b_total" {
		t.Fatalf("dump not sorted by name: %+v", dump.Metrics)
	}
	if dump.TimeUnit != "virtual" {
		t.Fatalf("TimeUnit = %q", dump.TimeUnit)
	}
	// Bit-identical across identical recordings.
	a2 := build([]string{"b_total", "a_total", "c_total"})
	if string(a) != string(a2) {
		t.Fatalf("identical recordings dumped differently:\n%s\n%s", a, a2)
	}
	if g := dump.Get("a_total"); g == nil || g.Value != 2 {
		t.Fatalf("Get(a_total) = %+v", g)
	}
	if dump.Get("missing") != nil {
		t.Fatalf("Get(missing) should be nil")
	}
}

func TestSharesMath(t *testing.T) {
	util, over := Shares(400, 100, 4, 200)
	if util != 0.5 || over != 0.125 {
		t.Fatalf("Shares = %v, %v; want 0.5, 0.125", util, over)
	}
	if u, o := Shares(1, 1, 0, 100); u != 0 || o != 0 {
		t.Fatalf("zero workers must yield zero shares")
	}
	if u, o := Shares(1, 1, 4, 0); u != 0 || o != 0 {
		t.Fatalf("zero elapsed must yield zero shares")
	}
}

// TestConcurrentRecording hammers one set from many goroutines; run
// under -race this is the sharded-counter concurrency gate.
func TestConcurrentRecording(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	r := NewRegistry(workers, "ns")
	s := NewSet(r)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				s.Dispatches.Inc(w)
				s.ComputeTime.Add(w, 5)
				s.DispatchWait.Observe(rng.Int63n(1 << 20))
				s.ReadyOccupancy.Set(int64(i))
				if i%64 == 0 {
					// A concurrent scrape must be safe against recording.
					_ = r.Dump()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Dispatches.Value(); got != workers*perWorker {
		t.Fatalf("Dispatches = %d, want %d", got, workers*perWorker)
	}
	if got := s.ComputeTime.Value(); got != workers*perWorker*5 {
		t.Fatalf("ComputeTime = %d, want %d", got, workers*perWorker*5)
	}
	if got := s.DispatchWait.Count(); got != workers*perWorker {
		t.Fatalf("DispatchWait count = %d, want %d", got, workers*perWorker)
	}
}

// TestRecordingAllocs pins amortized-zero-alloc recording: the hot-path
// operations must not allocate at all.
func TestRecordingAllocs(t *testing.T) {
	r := NewRegistry(4, "ns")
	s := NewSet(r)
	if n := testing.AllocsPerRun(1000, func() {
		s.Dispatches.Inc(1)
		s.ComputeTime.Add(2, 123)
		s.DispatchWait.Observe(4096)
		s.ReadyOccupancy.Set(7)
	}); n != 0 {
		t.Fatalf("recording allocated %.1f allocs/op, want 0", n)
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry(2, "ns")
	s := NewSet(r)
	s.Dispatches.Add(0, 3)
	s.DispatchWait.Observe(10)
	s.DispatchWait.Observe(1000)
	s.ReadyOccupancy.Set(4)
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE rundown_dispatch_total counter",
		"rundown_dispatch_total 3",
		"# TYPE rundown_ready_occupancy gauge",
		"rundown_ready_occupancy 4",
		"# TYPE rundown_dispatch_wait histogram",
		"rundown_dispatch_wait_bucket{le=\"+Inf\"} 2",
		"rundown_dispatch_wait_sum 1010",
		"rundown_dispatch_wait_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rundown_dispatch_wait_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
}

func TestExpvarPublishIdempotent(t *testing.T) {
	r := NewRegistry(1, "ns")
	s := NewSet(r)
	s.Dispatches.Inc(0)
	// Publishing twice (and publishing a second registry under the same
	// prefix) must not panic on duplicate names.
	r.Publish("telemetry_test")
	r.Publish("telemetry_test")
	r2 := NewRegistry(1, "ns")
	NewSet(r2)
	r2.Publish("telemetry_test")
}

func TestFormatDump(t *testing.T) {
	r := NewRegistry(1, "virtual")
	s := NewSet(r)
	s.Dispatches.Add(0, 9)
	s.DispatchWait.Observe(100)
	out := FormatDump(r.Dump())
	if !strings.Contains(out, "rundown_dispatch_total") || !strings.Contains(out, "time unit: virtual") {
		t.Fatalf("FormatDump output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "count=1") {
		t.Fatalf("FormatDump histogram summary missing:\n%s", out)
	}
}
