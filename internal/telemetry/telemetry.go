// Package telemetry is the unified metrics core: a deterministic,
// amortized-zero-alloc registry of counters, gauges, and log-linear
// duration histograms, instrumented at the same scheduling chokepoints
// the flight recorder (internal/trace) and fault injector
// (internal/fault) already use — on every backend.
//
// The recording discipline matches the trace rings: hot-path counters
// are sharded per worker into 64-byte-padded cells so two workers never
// contend on one cache line, histogram observation is one atomic add
// into a fixed bucket array, and gauge stores are single atomics. No
// recording operation allocates, takes a lock, or branches on more than
// the caller's own nil check — so a metrics-on run prices within noise
// of a metrics-off run (pinned by BenchmarkMetricsChainFineOn/Off).
//
// Determinism: the simulator records the same metric set in virtual
// units from its single event-loop goroutine, so identical seeds yield
// bit-identical Dumps (golden-tested). Real backends record wall-clock
// nanoseconds; their dumps are structurally identical but carry
// measured times.
//
// Exposition is multi-format: Registry.Dump returns the deterministic
// JSON-marshalable form wired into rundown's Report.Metrics, Handler
// serves the Prometheus text format, and Publish mirrors the registry
// into expvar — the mount points a long-lived service front door
// (ROADMAP item 1) needs.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric.
type Kind uint8

const (
	// KindCounter is a monotonically increasing sum, sharded per worker.
	KindCounter Kind = iota
	// KindGauge is a last-write-wins instantaneous value.
	KindGauge
	// KindHistogram is a log-linear distribution of non-negative values.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// cell is one worker's counter shard. The padding keeps two adjacent
// cells out of one cache line — the same discipline as the trace rings:
// each worker bumps its own cell on every task, and cross-line sharing
// would put that store on the neighbor's hot path.
type cell struct {
	v atomic.Int64
	_ [64 - 8]byte
}

// Counter is a monotonically increasing sum sharded across per-worker
// cells. Add and Inc are safe from any number of goroutines; Value sums
// the cells (a racing read may miss in-flight adds, like any metrics
// snapshot).
type Counter struct {
	name  string
	help  string
	cells []cell
}

// Add adds delta to worker w's shard. Out-of-range worker indexes
// (including -1 for "no worker") fold into shard 0, so callers with
// synthetic worker numbers never fault.
func (c *Counter) Add(w int, delta int64) {
	if w < 0 || w >= len(c.cells) {
		w = 0
	}
	c.cells[w].v.Add(delta)
}

// Inc adds 1 to worker w's shard.
func (c *Counter) Inc(w int) { c.Add(w, 1) }

// Value sums the shards.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value: last write wins.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Registry holds one run's (or one process's) metrics. Registration is
// idempotent by name — two calls with one name return the same metric —
// and Dump lists metrics sorted by name, so a registry filled in any
// order dumps identically.
type Registry struct {
	shards   int
	timeUnit string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds a registry whose counters shard across `shards`
// worker cells (minimum 1). timeUnit labels the dump's time base:
// "ns" for wall-clock backends, "virtual" for the simulator.
func NewRegistry(shards int, timeUnit string) *Registry {
	if shards < 1 {
		shards = 1
	}
	if timeUnit == "" {
		timeUnit = "ns"
	}
	return &Registry{
		shards:   shards,
		timeUnit: timeUnit,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// TimeUnit reports the registry's time base label.
func (r *Registry) TimeUnit() string { return r.timeUnit }

// Shards reports the counter shard width.
func (r *Registry) Shards() int { return r.shards }

// Counter returns the counter registered under name, creating it on
// first use. Registration races are resolved under the registry mutex;
// the returned counter is shared by every caller of the same name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help, cells: make([]cell, r.shards)}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, help: help}
	r.hists[name] = h
	return h
}

// visit walks the registered metrics sorted by name, calling exactly
// one of the callbacks per metric. It snapshots the name sets under the
// mutex and reads values lock-free afterwards.
func (r *Registry) visit(onCounter func(*Counter), onGauge func(*Gauge), onHist func(*Histogram)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	cs := make(map[string]*Counter, len(r.counters))
	gs := make(map[string]*Gauge, len(r.gauges))
	hs := make(map[string]*Histogram, len(r.hists))
	for n, c := range r.counters {
		names = append(names, n)
		cs[n] = c
	}
	for n, g := range r.gauges {
		names = append(names, n)
		gs[n] = g
	}
	for n, h := range r.hists {
		names = append(names, n)
		hs[n] = h
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		switch {
		case cs[n] != nil:
			onCounter(cs[n])
		case gs[n] != nil:
			onGauge(gs[n])
		default:
			onHist(hs[n])
		}
	}
}

// Shares computes the utilization and overhead-share ratios every
// backend reports: compute (or management) time over the machine's
// capacity, workers × elapsed. It is the one copy of the sampling math
// the executive and tenant observers used to duplicate. elapsed <= 0
// returns zeros (a run that has not started has no capacity).
func Shares(compute, mgmt int64, workers int, elapsed int64) (util, overhead float64) {
	if elapsed <= 0 || workers <= 0 {
		return 0, 0
	}
	capacity := float64(workers) * float64(elapsed)
	return float64(compute) / capacity, float64(mgmt) / capacity
}
