package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// This file is the wire exposition: the Prometheus text format (0.0.4)
// over HTTP and an expvar mirror — the two mount points a long-lived
// daemon needs. Both read the registry lock-free through the same
// sorted visit Dump uses, so a scrape during a live run costs the
// workers nothing.

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are already chosen to pass
// through unchanged; this keeps arbitrary caller-registered names from
// corrupting the exposition.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative le-labeled buckets plus _sum and _count.
func (r *Registry) WriteProm(w *strings.Builder) {
	r.visit(
		func(c *Counter) {
			n := promName(c.name)
			if c.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", n, c.help)
			}
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value())
		},
		func(g *Gauge) {
			n := promName(g.name)
			if g.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", n, g.help)
			}
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value())
		},
		func(h *Histogram) {
			n := promName(h.name)
			if h.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", n, h.help)
			}
			fmt.Fprintf(w, "# TYPE %s histogram\n", n)
			var cum int64
			for _, b := range h.snapshotBuckets(nil) {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Upper, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count())
			fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum())
			fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
		},
	)
}

// Handler serves the registry in the Prometheus text format — mount it
// on any mux (the rundownsim -metrics-listen endpoint, or a service's
// /metrics route).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteProm(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// Publish mirrors the registry into the process-global expvar
// namespace under the given prefix: each metric becomes
// "<prefix>.<name>" reading its live value (histograms expose count,
// sum, and p50/p99). expvar panics on duplicate names, so Publish
// checks first and re-Publish of the same prefix is a no-op — but two
// registries published under one prefix silently keep the first, so
// give long-lived registries distinct prefixes.
func (r *Registry) Publish(prefix string) {
	if prefix == "" {
		prefix = "rundown"
	}
	r.visit(
		func(c *Counter) {
			name := prefix + "." + c.name
			if expvar.Get(name) == nil {
				expvar.Publish(name, expvar.Func(func() any { return c.Value() }))
			}
		},
		func(g *Gauge) {
			name := prefix + "." + g.name
			if expvar.Get(name) == nil {
				expvar.Publish(name, expvar.Func(func() any { return g.Value() }))
			}
		},
		func(h *Histogram) {
			name := prefix + "." + h.name
			if expvar.Get(name) == nil {
				expvar.Publish(name, expvar.Func(func() any {
					return map[string]int64{
						"count": h.Count(),
						"sum":   h.Sum(),
						"p50":   h.Quantile(0.50),
						"p99":   h.Quantile(0.99),
					}
				}))
			}
		},
	)
}

// FormatDump renders a Dump as a human-readable table for CLI output
// (rundownsim -metrics). One line per metric; histograms summarize as
// count/sum/min/p50/p99/max.
func FormatDump(d *Dump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# metrics (time unit: %s)\n", d.TimeUnit)
	for _, m := range d.Metrics {
		switch m.Kind {
		case "histogram":
			p50, p99 := quantileFromDump(&m, 0.50), quantileFromDump(&m, 0.99)
			fmt.Fprintf(&b, "%-36s count=%d sum=%d min=%d p50=%d p99=%d max=%d\n",
				m.Name, m.Count, m.Sum, m.Min, p50, p99, m.Max)
		default:
			fmt.Fprintf(&b, "%-36s %s\n", m.Name, strconv.FormatInt(m.Value, 10))
		}
	}
	return b.String()
}

// quantileFromDump estimates a quantile from a dumped histogram's
// buckets, mirroring Histogram.Quantile.
func quantileFromDump(m *MetricDump, q float64) int64 {
	if m.Count == 0 {
		return 0
	}
	rank := int64(q*float64(m.Count-1)) + 1
	var seen int64
	for _, b := range m.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Upper
		}
	}
	return m.Max
}
