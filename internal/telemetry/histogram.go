package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear histogram layout (HDR-style). Values 0..subCount-1 land in
// exact unit buckets; above that, each power-of-two octave splits into
// subCount linear sub-buckets, so the relative error of any recorded
// value is bounded by 1/subCount (~6%) while the whole int63 range fits
// in a fixed array. Bucket boundaries are pure functions of the index —
// no configuration — so two histograms filled with the same values are
// bit-identical, which is what the virtual-time determinism goldens
// pin.
const (
	subBits  = 4
	subCount = 1 << subBits // 16 sub-buckets per octave

	// numBuckets covers every non-negative int64: the top value has
	// bits.Len64 == 63, giving octave index 63-subBits, and each octave
	// past the first contributes subCount buckets.
	numBuckets = (64 - subBits) * subCount
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0 (durations cannot be negative; a clamped margin is
// recorded by the caller as a miss instead).
func bucketIndex(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // >= subBits
	shift := msb - subBits
	sub := int(v>>uint(shift)) & (subCount - 1)
	return (shift+1)*subCount + sub
}

// bucketUpper is the inclusive upper bound of bucket i — the largest
// value that maps to it.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	shift := i/subCount - 1
	sub := int64(i % subCount)
	base := (int64(subCount) + sub) << uint(shift)
	return base + (int64(1)<<uint(shift) - 1)
}

// Histogram is a fixed-bucket log-linear distribution of non-negative
// values (durations, occupancies, margins). Observe is one atomic add
// per bucket plus count/sum maintenance — no locks, no allocation —
// and is safe from any number of goroutines. The bucket array is a
// fixed ~7.5KB allocated once at registration.
type Histogram struct {
	name    string
	help    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	// Min/max maintenance: racy CAS loops, exact under the simulator's
	// single recording goroutine, best-effort within a snapshot under
	// concurrent recording (like any live metrics read).
	for {
		cur := h.min.Load()
		if h.count.Load() > 1 && cur <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v && h.count.Load() > 1 {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count reports how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min and Max report the observed extremes (0 when nothing was
// observed).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

func (h *Histogram) Max() int64 { return h.max.Load() }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets,
// returning the upper bound of the bucket holding the target rank —
// within one sub-bucket (~6%) of the true value. Returns 0 when
// nothing was observed.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// snapshotBuckets appends the non-zero buckets in index order.
func (h *Histogram) snapshotBuckets(dst []BucketDump) []BucketDump {
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			dst = append(dst, BucketDump{Upper: bucketUpper(i), Count: n})
		}
	}
	return dst
}
