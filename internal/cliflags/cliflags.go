// Package cliflags centralizes the executive-selection flags shared by
// cmd/rundownsim and cmd/experiments: -manager, -adaptive, -ready,
// -low-water and -batch are registered once here, and the parsed values
// convert into Runner options (rundown.New) through one resolution path,
// so the two CLIs cannot drift on names, conflict rules, or defaults.
package cliflags

import (
	"flag"
	"fmt"
	"strings"

	rundown "repro"
)

// Exec holds the shared executive-selection flag values. Read them after
// fs.Parse.
type Exec struct {
	// Manager is the raw -manager value. Parse it with Kind, or pass it
	// verbatim to a filter that accepts extra values (experiments'
	// "both").
	Manager string
	// Adaptive is -adaptive: the adaptive batching controller (sharded
	// manager on hardware, the Adaptive model in virtual time).
	Adaptive bool
	// Ready and LowWater are the async manager's ready-buffer knobs.
	Ready    int
	LowWater int
	// Batch is the refill batch for adaptive runs (the controller's
	// starting point).
	Batch int

	fs *flag.FlagSet
}

// Register installs the shared flags on fs. managerDefault seeds
// -manager ("serial" for rundownsim, "both" for experiments' filter);
// managerUsage documents the accepted values for the caller's context.
func Register(fs *flag.FlagSet, managerDefault, managerUsage string) *Exec {
	e := &Exec{fs: fs}
	fs.StringVar(&e.Manager, "manager", managerDefault, managerUsage)
	fs.BoolVar(&e.Adaptive, "adaptive", false,
		"adaptive batching: worker-local buffers with the batch size retuned online (sharded manager / Adaptive sim model)")
	fs.IntVar(&e.Ready, "ready", 0,
		"ready-buffer bound for -manager async (0 = 2*workers, min 8)")
	fs.IntVar(&e.LowWater, "low-water", 0,
		"deferred-overlap low-water mark for -manager async (0 = ready/4)")
	fs.IntVar(&e.Batch, "batch", 0,
		"refill/completion batch size (0 = model default: 16 for the adaptive sim model — its controller starting point — and 8 for the goroutine managers)")
	return e
}

// ManagerNames returns the accepted -manager spellings ("serial|sharded|
// async"), for building usage strings.
func ManagerNames() string { return strings.Join(rundown.ExecManagerNames(), "|") }

// ManagerSet reports whether -manager was passed explicitly (call after
// fs.Parse).
func (e *Exec) ManagerSet() bool {
	set := false
	e.fs.Visit(func(f *flag.Flag) {
		if f.Name == "manager" {
			set = true
		}
	})
	return set
}

// Kind parses the -manager value case-insensitively; the error
// enumerates the valid names.
func (e *Exec) Kind() (rundown.ExecManager, error) {
	return rundown.ParseExecManager(e.Manager)
}

// Options resolves the parsed flags into Runner options, enforcing the
// conflict rules the CLIs share. dedicated is rundownsim's -dedicated
// flag (the virtual serial model's own-processor variant); callers
// without that flag pass false.
//
// Rules preserved from the pre-extraction parsers: -adaptive is its own
// management layer, so it conflicts with an explicit -manager and with
// -dedicated; -manager sharded runs management inline on the workers, so
// it conflicts with -dedicated; -manager async *is* the dedicated
// processor, so -dedicated is redundant and rejected.
func (e *Exec) Options(dedicated bool) ([]rundown.Option, error) {
	if e.Adaptive {
		if dedicated {
			return nil, fmt.Errorf("-dedicated conflicts with -adaptive (management runs inline on the workers)")
		}
		if e.ManagerSet() {
			return nil, fmt.Errorf("-manager conflicts with -adaptive (the adaptive model is its own management layer)")
		}
		return []rundown.Option{
			rundown.WithManager(rundown.ShardedManager),
			rundown.WithAdaptiveBatching(0),
			rundown.WithBatch(e.Batch),
		}, nil
	}
	kind, err := e.Kind()
	if err != nil {
		return nil, err
	}
	// -batch is a general executive knob (completion batch / drain chunk
	// for every goroutine manager, refill batch for the adaptive sim
	// model); 0 keeps each backend's own default.
	opts := []rundown.Option{rundown.WithManager(kind), rundown.WithBatch(e.Batch)}
	switch kind {
	case rundown.ShardedManager:
		if dedicated {
			return nil, fmt.Errorf("-dedicated conflicts with -manager sharded (management runs inline on the workers)")
		}
	case rundown.AsyncManager:
		if dedicated {
			return nil, fmt.Errorf("-dedicated is redundant with -manager async (the async executive is the dedicated processor, extended with the ready-buffer)")
		}
		opts = append(opts, rundown.WithReadyCap(e.Ready), rundown.WithLowWater(e.LowWater))
	default:
		if dedicated {
			opts = append(opts, rundown.WithDedicatedExec())
		}
	}
	return opts, nil
}
