package cliflags

import (
	"context"
	"flag"
	"strings"
	"testing"

	rundown "repro"
)

func parse(t *testing.T, args ...string) *Exec {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e := Register(fs, "serial", "management layer: "+ManagerNames())
	fs.Bool("dedicated", false, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestKindCaseInsensitive(t *testing.T) {
	e := parse(t, "-manager", "SHARDED")
	kind, err := e.Kind()
	if err != nil {
		t.Fatal(err)
	}
	if kind != rundown.ShardedManager {
		t.Fatalf("kind = %v", kind)
	}
}

func TestKindErrorEnumerates(t *testing.T) {
	e := parse(t, "-manager", "quantum")
	_, err := e.Kind()
	if err == nil {
		t.Fatal("unknown manager accepted")
	}
	for _, name := range rundown.ExecManagerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}
}

func TestManagerSet(t *testing.T) {
	if parse(t).ManagerSet() {
		t.Error("ManagerSet true without -manager")
	}
	if !parse(t, "-manager", "serial").ManagerSet() {
		t.Error("ManagerSet false with explicit -manager")
	}
}

// TestOptionsResolve drives the resolved options through rundown.New and
// checks the backend/model they select — the flags and the Runner
// options API must agree end to end.
func TestOptionsResolve(t *testing.T) {
	cases := []struct {
		args      []string
		dedicated bool
		wantModel rundown.MgmtModel
	}{
		{nil, false, rundown.StealsWorker},
		{nil, true, rundown.Dedicated},
		{[]string{"-manager", "sharded"}, false, rundown.ShardedMgmt},
		{[]string{"-manager", "ASYNC"}, false, rundown.AsyncMgmt},
		{[]string{"-adaptive"}, false, rundown.AdaptiveMgmt},
	}
	for i, c := range cases {
		e := parse(t, c.args...)
		opts, err := e.Options(c.dedicated)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		opts = append(opts, rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{}))
		r, err := rundown.New(opts...)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prog, err := rundown.Chain(rundown.KindIdentity, 2, 64, rundown.UnitCost(), 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background(), rundown.Job{
			Prog: prog, Opt: rundown.Options{Grain: 4, Overlap: true, Costs: rundown.DefaultCosts()},
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rep.Model != c.wantModel {
			t.Errorf("case %d: model = %v, want %v", i, rep.Model, c.wantModel)
		}
	}
}

func TestOptionsConflicts(t *testing.T) {
	if _, err := parse(t, "-manager", "sharded").Options(true); err == nil {
		t.Error("-manager sharded -dedicated accepted")
	}
	if _, err := parse(t, "-manager", "async").Options(true); err == nil {
		t.Error("-manager async -dedicated accepted")
	}
	if _, err := parse(t, "-adaptive").Options(true); err == nil {
		t.Error("-adaptive -dedicated accepted")
	}
	if _, err := parse(t, "-adaptive", "-manager", "sharded").Options(false); err == nil {
		t.Error("-adaptive with explicit -manager accepted")
	}
}
