package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !approx(s.Mean, 2.5) || !approx(s.Sum, 10) ||
		!approx(s.Min, 1) || !approx(s.Max, 4) || !approx(s.Median, 2.5) {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.Std, math.Sqrt(5.0/3.0)) {
		t.Errorf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	if Summarize([]float64{7}).Std != 0 {
		t.Error("single-sample std should be 0")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {10, 14}, {-5, 10}, {120, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated (sorted copy).
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestMeans(t *testing.T) {
	if !approx(Mean([]float64{2, 4}), 3) || Mean(nil) != 0 {
		t.Error("Mean wrong")
	}
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean wrong")
	}
	if GeoMean([]float64{1, -1}) != 0 || GeoMean(nil) != 0 {
		t.Error("GeoMean degenerate cases wrong")
	}
}

func TestLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := Linear(x, y)
	if !approx(a, 1) || !approx(b, 2) || !approx(r2, 1) {
		t.Errorf("fit = %v %v %v", a, b, r2)
	}
	a, b, _ = Linear([]float64{5, 5}, []float64{1, 2})
	if b != 0 || !approx(a, 1.5) {
		t.Errorf("degenerate fit = %v %v", a, b)
	}
	if _, b, _ := Linear(nil, nil); b != 0 {
		t.Error("empty fit slope != 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

// TestQuickSummaryBounds: mean and median always lie within [min, max].
func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Median >= s.Min-1e-6 && s.Median <= s.Max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
