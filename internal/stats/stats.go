// Package stats provides the small statistical helpers used by the
// benchmark harness: summaries, percentiles, and linear fits over float64
// samples. It is intentionally dependency-free.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Sum    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Linear fits y = a + b*x by least squares, returning the intercept a,
// slope b, and coefficient of determination r2. Degenerate inputs (fewer
// than two points or zero x-variance) return b = 0 with a = mean(y).
func Linear(x, y []float64) (a, b, r2 float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return 0, 0, 0
	}
	mx := Mean(x[:n])
	my := Mean(y[:n])
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if n < 2 || sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// Ratio returns num/den, or 0 when den is 0 (avoids Inf in reports).
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
