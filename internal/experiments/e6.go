package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E6SplitPolicies compares the executive control strategies the paper
// narrates for identity-mapped overlap:
//
//   - demand-driven splitting with inline successor-description splitting
//     (the delay the paper worries "may represent an unacceptable
//     situation");
//   - demand-driven splitting with deferred successor-splitting management
//     tasks ("quickly queued for later attention when the executive would
//     again be idle");
//   - pre-splitting before idle workers present themselves ("allow the
//     executive to work ahead in otherwise idle time");
//   - the conflict-release priority ablation (released successor work ahead
//     of vs behind remaining current-phase work).
func E6SplitPolicies(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Executive control strategies (identity chain, conflict-queue mechanism)",
		Paper: "presplitting vs successor-splitting tasks are proposed qualitatively; the paper " +
			"gives no measurements",
		Columns: []string{
			"strategy", "makespan", "utilization", "idle", "mgmt", "splits", "deferred",
		},
	}
	granules, procs, phases := 8192, 32, 4
	if scale == Quick {
		granules, procs = 2048, 16
	}
	grain := granules / (4 * procs)

	type cfg struct {
		name    string
		split   core.SplitPolicy
		succ    core.SuccSplitMode
		ident   core.IdentityMode
		ahead   bool
		overlap bool
	}
	cases := []cfg{
		{name: "barrier", overlap: false},
		{name: "demand+inline", split: core.SplitDemand, succ: core.SuccSplitInline, ident: core.IdentityConflictQueue, overlap: true},
		{name: "demand+deferred", split: core.SplitDemand, succ: core.SuccSplitDeferred, ident: core.IdentityConflictQueue, overlap: true},
		{name: "presplit", split: core.SplitPre, succ: core.SuccSplitInline, ident: core.IdentityConflictQueue, overlap: true},
		{name: "table-counters", split: core.SplitDemand, ident: core.IdentityTable, overlap: true},
		{name: "demand+inline+released-ahead", split: core.SplitDemand, succ: core.SuccSplitInline, ident: core.IdentityConflictQueue, ahead: true, overlap: true},
	}
	for _, c := range cases {
		prog, err := workload.Chain(enable.Identity, phases, granules, workload.UniformCost(100, 500, 6), 6)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(prog, core.Options{
			Grain: grain, Overlap: c.overlap, Split: c.split, SuccSplit: c.succ,
			IdentityVia: c.ident, ReleasedAhead: c.ahead, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: procs, Mgmt: sim.StealsWorker})
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, res.Makespan, fmt.Sprintf("%.4f", res.Utilization),
			res.IdleUnits, res.MgmtUnits, res.Sched.Splits, res.Sched.DeferredItems)
	}
	t.Note("%d granules x %d identity phases, %d processors, grain %d, uniform cost 100..500",
		granules, phases, procs, grain)
	return t, nil
}
