package experiments

import (
	"fmt"

	"repro/internal/executive"
)

// E13AsyncExecutive is the paper's central resource comparison — where
// does management run during rundown? — taken to real goroutines. Three
// architectures, head-to-head on the same workloads:
//
//   - serial: management steals idle worker moments under one global lock
//     (the paper's steals-worker executive — on the UNIVAC test bed
//     "executive computation was done at the direct expense of worker
//     computation");
//   - sharded: management distributed across the workers (per-worker
//     deques, batched flushes, stealing);
//   - async: management moved to a dedicated background goroutine (the
//     paper's "separate processors for the executive"), workers pulling
//     from a ready-buffer and queueing completions through a lock-free
//     MPSC queue.
//
// The structural claims: on the fine-grain identity chain (management-
// bound, the serial executive's worst case) async must clearly beat
// serial at P >= 4 — the dedicated thread takes the whole management load
// off the workers' critical path; on the coarser CASPER pipeline the gap
// between async and sharded must stay bounded — one management thread
// serves P workers well until the per-task management rate exceeds what
// one thread sustains, which is exactly the trade the sharded design
// makes the other way.
func E13AsyncExecutive(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Async executive: dedicated management goroutine vs steals-worker vs sharded (wall-clock)",
		Paper: "the paper's dedicated-executive-processor alternative (\"some real parallel " +
			"machines may provide separate processors for the executive\") realized on hardware " +
			"and compared against the steals-worker baseline it discusses",
		Columns: []string{
			"workload", "manager", "workers", "tasks", "wall", "utilization", "compute:mgmt",
		},
	}
	kinds := []executive.ManagerKind{
		executive.SerialManager, executive.ShardedManager, executive.AsyncManager,
	}
	// The first two E10 workload families: the fine-grain identity chain
	// (management-bound) and the CASPER mini-CFD pipeline (coarser grain,
	// every mapping kind).
	for _, wl := range e10Workloads()[:2] {
		for _, workers := range []int{4, 8} {
			for _, kind := range kinds {
				if managerFilter != "" && kind.String() != managerFilter {
					continue
				}
				prog, opt, err := wl.build(scale)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", wl.name, err)
				}
				rep, err := executive.Run(prog, opt, execConfig(workers, kind))
				if err != nil {
					return nil, fmt.Errorf("%s/%v/%d: %w", wl.name, kind, workers, err)
				}
				t.AddRow(wl.name, kind.String(), workers, rep.Tasks,
					rep.Wall.Round(10_000).String(),
					fmt.Sprintf("%.3f", rep.Utilization),
					fmt.Sprintf("%.1f", rep.MgmtRatio))
			}
		}
	}
	t.Note("async runs one management goroutine beside the workers (the dedicated executive " +
		"processor — not counted in the utilization denominator, exactly as the sim's " +
		"Dedicated model does not count the executive's processor)")
	t.Note("wall-clock measurements vary with the host; the structural signal is async " +
		"clearing serial at fine grain and staying within a bounded gap of sharded at coarse grain")
	if managerFilter != "" {
		t.Note("restricted to -manager %s", managerFilter)
	}
	return t, nil
}
