package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/granule"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E11TenantPool prices multi-tenancy against the alternatives E9 frames:
// the introduction rejects multi-job-stream batching because a static
// split of the machine lengthens every job; the paper's overlap shortens
// a job but leaves cross-job idle capacity (serial actions, rundown
// tails) unrecovered. The tenant pool (internal/tenant, modelled in
// virtual time by sim.RunMulti) is the missing point in that design
// space: overlap-first dispatch inside each job plus cross-job backfill
// of whatever idle capacity remains.
//
// The workload pair is deliberately mixed — the regime where tenancy
// wins:
//
//   - "bursty": wide barriered phases split by serial actions. Alone it
//     saturates the machine during bursts and idles it between them. A
//     static split caps its bursts at half the machine and nearly
//     doubles them.
//   - "narrow": a chain of low-parallelism barriered phases with uneven
//     granule costs. Alone it holds a few processors and wastes the
//     rest; its home share in the pool covers its width, and its
//     rundown tails donate the spare moments to the bursty job.
//
// Claims the table must show (asserted by TestE11PoolDominates):
//
//   - the pool finishes both jobs sooner than E9's static two-stream
//     split (total throughput);
//   - each job's pool makespan stays within 10% of running alone on the
//     full machine with overlap;
//   - cross-job backfill actually flows (nonzero backfill units).
func E11TenantPool(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Multi-tenant pool vs static split vs sequential overlap (mixed pair)",
		Paper: "beyond the paper: E9 shows the static batch split lengthens each job; the " +
			"tenant pool backfills rundown across jobs without giving up per-job makespan",
		Columns: []string{
			"strategy", "bursty makespan", "narrow makespan", "both done", "utilization", "backfill units",
		},
	}

	procs := 32
	burstPhases, burstGranules := 6, 1984
	narrowPhases, narrowWidth := 9, 3
	serialCost := core.Cost(6000)
	burstyWeight, narrowWeight := 9, 1
	if scale == Quick {
		procs = 16
		burstPhases, burstGranules = 4, 960
		narrowPhases, narrowWidth = 5, 2
		burstyWeight, narrowWeight = 13, 2
	}

	bursty := func() (*core.Program, error) {
		phases := make([]*core.Phase, burstPhases)
		for i := range phases {
			phases[i] = &core.Phase{
				Name:     fmt.Sprintf("burst%d", i),
				Granules: burstGranules,
				Cost:     func(granule.ID) core.Cost { return 100 },
			}
			if i > 0 {
				phases[i].SerialCost = serialCost
			}
		}
		return core.NewProgram(phases...)
	}
	narrowCost := workload.UniformCost(3000, 9000, 1986)
	narrow := func() (*core.Program, error) {
		phases := make([]*core.Phase, narrowPhases)
		for i := range phases {
			phases[i] = &core.Phase{
				Name:     fmt.Sprintf("narrow%d", i),
				Granules: narrowWidth,
				Cost:     narrowCost,
			}
		}
		return core.NewProgram(phases...)
	}
	burstyOpt := func() core.Options {
		return core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}
	}
	// The narrow job's phases are thinner than the bursty grain; grain 1
	// keeps its few granules independently dispatchable.
	narrowOpt := func() core.Options {
		return core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}
	}
	// Management runs under the Sharded model throughout: the tenant pool
	// gives every job its own manager with per-worker management lanes, so
	// a single shared serial executive (StealsWorker) would misprice it —
	// and the comparison arms must use the same machine model to be fair.
	runAlone := func(build func() (*core.Program, error), opt core.Options, p int) (*sim.Result, error) {
		prog, err := build()
		if err != nil {
			return nil, err
		}
		return sim.Run(prog, opt, sim.Config{Procs: p, Mgmt: sim.Sharded})
	}

	// Reference: each job alone on the full machine with overlap.
	aloneBursty, err := runAlone(bursty, burstyOpt(), procs)
	if err != nil {
		return nil, err
	}
	aloneNarrow, err := runAlone(narrow, narrowOpt(), procs)
	if err != nil {
		return nil, err
	}
	totalCompute := aloneBursty.ComputeUnits + aloneNarrow.ComputeUnits
	t.AddRow("alone+overlap (reference)", aloneBursty.Makespan, aloneNarrow.Makespan,
		"-", "-", "-")

	// Sequential: the jobs run back to back, each with the full machine.
	seqBoth := aloneBursty.Makespan + aloneNarrow.Makespan
	t.AddRow("sequential overlap", aloneBursty.Makespan, aloneNarrow.Makespan, seqBoth,
		fmt.Sprintf("%.3f", float64(totalCompute)/(float64(procs)*float64(seqBoth))), 0)

	// Static split: E9's batch environment — each stream owns half the
	// machine for the whole run.
	splitBursty, err := runAlone(bursty, burstyOpt(), procs/2)
	if err != nil {
		return nil, err
	}
	splitNarrow, err := runAlone(narrow, narrowOpt(), procs/2)
	if err != nil {
		return nil, err
	}
	splitBoth := splitBursty.Makespan
	if splitNarrow.Makespan > splitBoth {
		splitBoth = splitNarrow.Makespan
	}
	t.AddRow("static split (E9 batch)", splitBursty.Makespan, splitNarrow.Makespan, splitBoth,
		fmt.Sprintf("%.3f", float64(totalCompute)/(float64(procs)*float64(splitBoth))), 0)

	// Tenant pool: both jobs share the machine under the overlap-first
	// cross-job dispatch policy.
	burstyProg, err := bursty()
	if err != nil {
		return nil, err
	}
	narrowProg, err := narrow()
	if err != nil {
		return nil, err
	}
	multi, err := sim.RunMulti([]sim.JobSpec{
		{Name: "bursty", Prog: burstyProg, Opt: burstyOpt(), Weight: burstyWeight},
		{Name: "narrow", Prog: narrowProg, Opt: narrowOpt(), Weight: narrowWeight},
	}, sim.Config{Procs: procs, Mgmt: sim.Sharded})
	if err != nil {
		return nil, err
	}
	t.AddRow("tenant pool", multi.Jobs[0].Makespan, multi.Jobs[1].Makespan, multi.Makespan,
		fmt.Sprintf("%.3f", multi.Utilization), multi.BackfillUnits)

	t.Note("%d-processor machine; bursty: %d wide barriered phases with serial actions; "+
		"narrow: %d-wide barriered chain, uneven granule costs", procs, burstPhases, narrowWidth)
	t.Note("pool both-done %d vs split %d vs sequential %d; per-job slowdown vs alone: "+
		"bursty %.2fx, narrow %.2fx; backfill %d units",
		multi.Makespan, splitBoth, seqBoth,
		float64(multi.Jobs[0].Makespan)/float64(aloneBursty.Makespan),
		float64(multi.Jobs[1].Makespan)/float64(aloneNarrow.Makespan),
		multi.BackfillUnits)
	return t, nil
}
