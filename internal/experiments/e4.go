package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E4TaskRatio tests the paper's outset condition: "there should be at the
// outset of the current-phase work at least two tasks for each processor so
// that at least one task execution time will be available to process the
// completion of the first task assigned to the processor and to schedule
// the enabled next-phase task. ... it assumes that one such completion,
// enablement, and scheduling cycle for each of the processors in the system
// can be completed in a single task execution time."
//
// The sweep holds the task duration fixed and varies the number of tasks
// available per processor at phase outset (by scaling the phase size).
// The task duration is chosen so one completion+enable+schedule cycle for
// every processor just fits inside one task execution — the paper's
// boundary assumption — so the utilization knee lands at 2 tasks/processor.
func E4TaskRatio(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Tasks-per-processor outset condition (identity overlap, fixed task size)",
		Paper: "at least two tasks per processor at phase outset; completion processing for all " +
			"processors must fit in one task execution time",
		Columns: []string{"tasks/proc", "granules/phase", "makespan", "utilization", "idle/phase-cost"},
	}
	procs, grain, phases := 32, 16, 4
	if scale == Quick {
		procs = 16
	}
	// One management round for all processors: roughly
	// procs * (Complete + Merge + Dispatch + Split + release) ~ procs*7.
	// Task duration grain*cost must be >= that: cost = procs*7/grain.
	perGranule := core.Cost(procs * 7 / grain)
	if perGranule < 1 {
		perGranule = 1
	}
	for _, ratio := range []int{1, 2, 3, 4, 8} {
		granules := procs * grain * ratio
		prog, err := workload.Chain(enable.Identity, phases, granules, workload.FixedCost(perGranule), 3)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(prog, core.Options{
			Grain: grain, Overlap: true, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: procs, Mgmt: sim.StealsWorker})
		if err != nil {
			return nil, err
		}
		idlePerWork := float64(res.IdleUnits) / float64(res.ComputeUnits)
		t.AddRow(ratio, granules, res.Makespan,
			fmt.Sprintf("%.4f", res.Utilization), fmt.Sprintf("%.4f", idlePerWork))
	}
	t.Note("%d processors, grain %d, %d units/granule (one full completion cycle for all "+
		"processors fits in one task execution), %d identity-mapped phases",
		procs, grain, perGranule, phases)
	t.Note("below 2 tasks/processor the executive cannot hide completion processing behind a " +
		"second task; utilization recovers at and beyond the paper's threshold")
	return t, nil
}
