// Package experiments regenerates every quantitative claim of the paper
// (the TM has no numbered tables or figures; its evaluation is inline
// statistics and worked examples, indexed here as E1..E8 per DESIGN.md).
// Each experiment returns a Table that cmd/experiments prints and
// EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Paper   string // what the paper claims
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "**Paper claim:** %s\n\n", t.Paper)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Spec names one experiment and its generator.
type Spec struct {
	ID    string
	Title string
	Run   func(scale Scale) (*Table, error)
}

// Scale selects experiment sizing: Full reproduces the paper-scale runs
// (cmd/experiments, EXPERIMENTS.md); Quick shrinks them for tests and
// benchmarks while keeping the qualitative shape.
type Scale int

const (
	Quick Scale = iota
	Full
)

// All lists the experiments in order.
func All() []Spec {
	return []Spec{
		{ID: "E1", Title: "PAX/CASPER enablement-mapping census", Run: E1Census},
		{ID: "E2", Title: "Checkerboard rundown arithmetic (1024^2 grid, 1000 processors)", Run: E2Checkerboard},
		{ID: "E3", Title: "Rundown recovery by mapping kind", Run: E3MappingSweep},
		{ID: "E4", Title: "Tasks-per-processor outset condition", Run: E4TaskRatio},
		{ID: "E5", Title: "Computation-to-management ratio", Run: E5MgmtRatio},
		{ID: "E6", Title: "Executive control strategies", Run: E6SplitPolicies},
		{ID: "E7", Title: "Composite-map generation cost", Run: E7CompositeMapCost},
		{ID: "E8", Title: "End-to-end CASPER-profile improvement", Run: E8EndToEnd},
		{ID: "E9", Title: "Multi-job-stream batching vs phase overlap", Run: E9JobStreams},
		{ID: "E10", Title: "Executive managers head-to-head (serial vs sharded)", Run: E10Managers},
		{ID: "E11", Title: "Multi-tenant pool vs static split vs sequential overlap", Run: E11TenantPool},
		{ID: "E12", Title: "Adaptive batch tuning vs fixed batches (batched executive)", Run: E12AdaptiveBatch},
		{ID: "E13", Title: "Async executive vs steals-worker vs sharded (dedicated management goroutine)", Run: E13AsyncExecutive},
	}
}
