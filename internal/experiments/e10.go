package experiments

import (
	"fmt"

	"repro/internal/casper"
	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/executive"
	"repro/internal/granule"
)

// managerFilter optionally restricts E10 to one manager; cmd/experiments
// sets it from the -manager flag. Empty means run both head-to-head.
var managerFilter = ""

// adaptiveArm adds a third E10 arm — the sharded manager with the
// adaptive batching controller — when cmd/experiments passes -adaptive.
var adaptiveArm = false

// SetManagerFilter restricts E10 and E13 to one executive manager
// ("serial", "sharded" or "async"); "both" or "" restores the
// head-to-head default. E10 compares serial and sharded; E13 adds async.
func SetManagerFilter(s string) error {
	if s == "" || s == "both" {
		managerFilter = ""
		return nil
	}
	if _, err := executive.ParseManager(s); err != nil {
		return err
	}
	managerFilter = s
	return nil
}

// SetAdaptive toggles E10's sharded+adaptive arm.
func SetAdaptive(b bool) { adaptiveArm = b }

// asyncReady/asyncLowWater/execBatch parameterize the goroutine
// executives in E10 and E13: the async manager's ready-buffer bounds
// and the completion batch size for every manager kind. Zero keeps the
// executive defaults. cmd/experiments sets them from the shared
// -ready/-low-water/-batch flags (internal/cliflags).
var asyncReady, asyncLowWater, execBatch int

// SetExecKnobs threads the shared CLI executive knobs into the
// goroutine-executive experiments (E10, E13).
func SetExecKnobs(ready, lowWater, batch int) {
	asyncReady, asyncLowWater, execBatch = ready, lowWater, batch
}

// execConfig builds the goroutine executive configuration the
// experiments share, applying the CLI knobs from SetExecKnobs.
func execConfig(workers int, kind executive.ManagerKind) executive.Config {
	cfg := executive.Config{Workers: workers, Manager: kind, Batch: execBatch}
	if kind == executive.AsyncManager {
		cfg.ReadyCap, cfg.LowWater = asyncReady, asyncLowWater
	}
	return cfg
}

// e10Workload is one real-work program generator for the manager
// comparison.
type e10Workload struct {
	name  string
	build func(scale Scale) (*core.Program, core.Options, error)
}

// e10Workloads builds the three workload families of the comparison:
// the fine-grain identity chain (management-bound — the serial
// executive's worst case), the CASPER mini-CFD pipeline (every mapping
// kind), and the red/black SOR checkerboard with seam overlap.
func e10Workloads() []e10Workload {
	return []e10Workload{
		{name: "chain(identity,fine)", build: func(scale Scale) (*core.Program, core.Options, error) {
			n := 1 << 15
			if scale == Quick {
				n = 1 << 12
			}
			dst := make([]float64, n)
			src := make([]float64, n)
			prog, err := core.NewProgram(
				&core.Phase{
					Name: "fill", Granules: n,
					Work:   func(g granule.ID) { src[g] = float64(g) * 1.5 },
					Enable: enable.NewIdentity(),
				},
				&core.Phase{
					Name: "scale", Granules: n,
					Work:   func(g granule.ID) { dst[g] = src[g] * 2 },
					Enable: enable.NewIdentity(),
				},
				&core.Phase{
					Name: "sum", Granules: n,
					Work: func(g granule.ID) { src[g] = dst[g] + src[g] },
				},
			)
			return prog, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}, err
		}},
		{name: "casper(pipeline)", build: func(scale Scale) (*core.Program, core.Options, error) {
			n := 16384
			if scale == Quick {
				n = 4096
			}
			p, err := casper.NewPipeline(n)
			if err != nil {
				return nil, core.Options{}, err
			}
			prog, err := p.Program()
			return prog, core.Options{Grain: 64, Overlap: true, Elevate: true, Costs: core.DefaultCosts()}, err
		}},
		{name: "checkerboard(SOR)", build: func(scale Scale) (*core.Program, core.Options, error) {
			n, sweeps := 128, 4
			if scale == Quick {
				n, sweeps = 64, 2
			}
			g, err := casper.NewGrid(n, 1.3, casper.HotEdgeBoundary(n))
			if err != nil {
				return nil, core.Options{}, err
			}
			prog, err := g.SORProgram(sweeps, true)
			return prog, core.Options{Grain: 32, Overlap: true, Costs: core.DefaultCosts()}, err
		}},
	}
}

// E10Managers runs the two executive managers head-to-head on real
// goroutine workers (wall-clock time, not virtual time) across the three
// workload families. The serial manager reproduces the paper's structural
// bottleneck — one global lock serializes every dispatch and completion,
// so utilization collapses as grain shrinks; the sharded manager (local
// deques, batched completion submission, work stealing) pays that
// serialization once per batch and keeps processors busy through rundown.
func E10Managers(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Executive managers head-to-head (goroutine executive, wall-clock)",
		Paper: "beyond the paper: the serial executive itself made parallel; the paper's " +
			"serial manager is preserved as the baseline",
		Columns: []string{
			"workload", "manager", "workers", "tasks", "wall", "utilization", "compute:mgmt",
		},
	}
	workers := 8
	kinds := []executive.ManagerKind{executive.SerialManager, executive.ShardedManager}
	for _, wl := range e10Workloads() {
		for _, kind := range kinds {
			if managerFilter != "" && kind.String() != managerFilter {
				continue
			}
			prog, opt, err := wl.build(scale)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", wl.name, err)
			}
			rep, err := executive.Run(prog, opt, execConfig(workers, kind))
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", wl.name, kind, err)
			}
			t.AddRow(wl.name, kind.String(), workers, rep.Tasks,
				rep.Wall.Round(10_000).String(),
				fmt.Sprintf("%.3f", rep.Utilization),
				fmt.Sprintf("%.1f", rep.MgmtRatio))
		}
		if adaptiveArm && (managerFilter == "" || managerFilter == "sharded") {
			prog, opt, err := wl.build(scale)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", wl.name, err)
			}
			opt.AdaptiveBatch = true
			rep, err := executive.Run(prog, opt, execConfig(workers, executive.ShardedManager))
			if err != nil {
				return nil, fmt.Errorf("%s/sharded+adaptive: %w", wl.name, err)
			}
			t.AddRow(wl.name, "sharded+adaptive", workers, rep.Tasks,
				rep.Wall.Round(10_000).String(),
				fmt.Sprintf("%.3f", rep.Utilization),
				fmt.Sprintf("%.1f", rep.MgmtRatio))
		}
	}
	t.Note("wall-clock measurements vary with the host; the structural signal is the " +
		"utilization and compute:management gap between managers at fine grain")
	if managerFilter != "" {
		t.Note("restricted to -manager %s", managerFilter)
	}
	if adaptiveArm && (managerFilter == "" || managerFilter == "sharded") {
		t.Note("sharded+adaptive: DequeCap/Batch retuned online from lock-wait and " +
			"hoarded-idle shares (-adaptive)")
	}
	return t, nil
}
