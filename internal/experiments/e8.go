package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E8EndToEnd runs the full CASPER-profile program (22 phases per cycle with
// the paper's published mapping mix) and compares strict barrier execution
// against phase overlap across machine sizes. The paper's implied claim:
// with 68% of phases simply overlappable (and 82% overlappable with
// effort), overlap materially raises utilization and shortens the job.
func E8EndToEnd(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "End-to-end CASPER profile: barrier vs overlap",
		Paper: "simple and plausible steps could provide overlapping in 68 percent of the " +
			"computational phases; more with extended effort",
		Columns: []string{
			"procs", "makespan(barrier)", "makespan(overlap)", "gain%",
			"util(barrier)", "util(overlap)", "idle(barrier)", "idle(overlap)",
		},
	}
	gpl, cycles := 6, 2
	procSweep := []int{8, 32, 128}
	if scale == Quick {
		gpl, cycles = 2, 1
		procSweep = []int{8, 32}
	}
	for _, procs := range procSweep {
		var barrier, overlap *sim.Result
		for _, ov := range []bool{false, true} {
			prog, err := workload.CasperProgram(workload.CasperConfig{
				GranulesPerLine: gpl,
				Cycles:          cycles,
				Cost:            workload.ConditionalSkip(300, 0.2, 23),
				SerialCost:      100,
				Seed:            23,
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(prog, core.Options{
				Grain: 8, Overlap: ov, Elevate: true, Costs: core.DefaultCosts(),
			}, sim.Config{Procs: procs, Mgmt: sim.StealsWorker})
			if err != nil {
				return nil, err
			}
			if ov {
				overlap = res
			} else {
				barrier = res
			}
		}
		gain := 100 * (float64(barrier.Makespan) - float64(overlap.Makespan)) / float64(barrier.Makespan)
		t.AddRow(procs, barrier.Makespan, overlap.Makespan, fmt.Sprintf("%.1f", gain),
			fmt.Sprintf("%.3f", barrier.Utilization), fmt.Sprintf("%.3f", overlap.Utilization),
			barrier.IdleUnits, overlap.IdleUnits)
	}
	t.Note("CASPER profile: %d cycles x 22 phases, %d granules/line, conditional-skip cost 300 "+
		"(20%% of granules skip), serial cost 100 at null boundaries", cycles, gpl)
	t.Note("gain grows with processor count: rundown idle scales with P while work does not")
	return t, nil
}
