package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E9JobStreams reproduces the introduction's argument against the
// multi-parallel-job-stream alternative: filling one job's rundown with
// another job's work "will bring processor utilization up; however, it
// should be recognized that the primary goal of parallel processing is to
// reduce elapsed wall-clock time for a given job. The introduction of such
// a 'batch' environment will inevitably distribute processor resources
// among the several job streams and, thus, reduce the total processing
// power on any particular job and lengthen its elapsed wall-clock time."
//
// Two identical CASPER-profile jobs are scheduled three ways:
//
//   - alone/barrier: each job gets the whole machine, phases barriered
//     (the baseline both alternatives try to improve);
//   - batch: the machine is split between the two job streams, so each
//     job's rundown is covered by the other stream's work — utilization
//     rises, per-job wall-clock roughly doubles;
//   - overlap: each job gets the whole machine with phase overlap — the
//     paper's proposal raises utilization AND shortens the job.
func E9JobStreams(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Multi-job-stream batching vs phase overlap (two identical jobs)",
		Paper: "a batch environment brings utilization up but lengthens each job's elapsed " +
			"wall-clock time; overlap improves both",
		Columns: []string{
			"strategy", "procs/job", "per-job makespan", "both-jobs done", "utilization",
		},
	}
	procs, gpl := 32, 4
	if scale == Quick {
		procs, gpl = 16, 2
	}
	build := func() (*core.Program, error) {
		return workload.CasperProgram(workload.CasperConfig{
			GranulesPerLine: gpl,
			Cost:            workload.UniformCost(100, 500, 31),
			SerialCost:      100,
			Seed:            31,
		})
	}
	run := func(p int, overlap bool) (*sim.Result, error) {
		prog, err := build()
		if err != nil {
			return nil, err
		}
		return sim.Run(prog, core.Options{
			Grain: 8, Overlap: overlap, Elevate: true, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: p, Mgmt: sim.StealsWorker})
	}

	// Alone, barriered: jobs run back to back on the full machine.
	alone, err := run(procs, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("alone+barrier", procs, alone.Makespan, 2*alone.Makespan,
		fmt.Sprintf("%.3f", alone.Utilization))

	// Batch: each job stream owns half the machine; the streams run
	// concurrently, so machine-wide utilization is their mean, and both
	// jobs finish when the (identical) streams do.
	batch, err := run(procs/2, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("batch (2 streams)", procs/2, batch.Makespan, batch.Makespan,
		fmt.Sprintf("%.3f", batch.Utilization))

	// Overlap: the paper's proposal, full machine per job.
	overlap, err := run(procs, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("overlap", procs, overlap.Makespan, 2*overlap.Makespan,
		fmt.Sprintf("%.3f", overlap.Utilization))

	t.Note("two identical CASPER-profile jobs, %d-processor machine, uniform cost 100..500", procs)
	t.Note("batch raises utilization by shrinking each job's machine — and roughly doubles the "+
		"per-job wall-clock (%d vs %d); overlap raises utilization while shortening the job",
		batch.Makespan, alone.Makespan)
	return t, nil
}
