package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E5MgmtRatio measures the computation-to-management ratio on the
// CASPER-profile workload across task grains. The paper observed the ratio
// "running at something in the neighborhood of 200" on the UNIVAC testbed;
// the ratio is grain-dependent, so the sweep reports which grains land in
// that neighbourhood under the reference cost calibration.
func E5MgmtRatio(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Computation-to-management ratio vs task grain (CASPER profile)",
		Paper: "ratio of computation to management ~200 in PAX/CASPER operation",
		Columns: []string{
			"grain", "tasks", "compute", "mgmt", "ratio", "utilization",
		},
	}
	gpl, perGranule := 4, core.Cost(300)
	procs := 16
	if scale == Quick {
		gpl = 2
	}
	for _, grain := range []int{1, 2, 4, 8, 16, 32, 64} {
		prog, err := workload.CasperProgram(workload.CasperConfig{
			GranulesPerLine: gpl,
			Cost:            workload.FixedCost(perGranule),
			SerialCost:      50,
			Seed:            11,
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(prog, core.Options{
			Grain: grain, Overlap: true, Elevate: true, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: procs, Mgmt: sim.StealsWorker})
		if err != nil {
			return nil, err
		}
		t.AddRow(grain, res.Sched.Dispatches, res.ComputeUnits, res.MgmtUnits,
			fmt.Sprintf("%.0f", res.MgmtRatio), fmt.Sprintf("%.3f", res.Utilization))
	}
	t.Note("CASPER 22-phase profile, %d granules/line, %d units/granule, %d processors",
		gpl, perGranule, procs)
	t.Note("the ratio climbs toward the per-granule-cost ceiling as grain grows and reaches the " +
		"paper's ~200 neighbourhood at coarse grains; utilization peaks at fine-to-mid grains — " +
		"the tension PAX's demand-driven splitting was designed around")
	return t, nil
}
