package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E12AdaptiveBatch prices the adaptive batching controller against fixed
// batch parameters under the simulator's Adaptive management model — the
// virtual-time analogue of the Chase-Lev sharded executive, where worker
// deque pops are free and every refill or completion-batch flush is one
// visit to the serialized global lock charging MgmtCosts.Acquire on top
// of the state-machine work.
//
// The batch size is the virtual-processor granularity trade-off
// (Argentini): too small and the Acquire charges serialize the machine at
// fine grain; too large and refills hoard tasks that idle workers needed
// through every rundown. The fixed rows sweep that trade-off; the
// adaptive row starts from the repo's fixed default (16) and must find
// the knee on its own, fed only the lock-overhead and hoarded-idle shares
// each epoch.
//
// Three workloads, one per failure mode of a fixed parameter:
//
//   - fine: grain-1 chain, thousands of tiny tasks — the default batch is
//     too small, the lock's Acquire charges dominate; the controller must
//     grow toward the sweep's knee.
//   - coarse: grain-64 chain with abundant tasks — nothing to tune; the
//     controller must hold and match the default within 3%.
//   - hoard: grain-64 chain with only 32 tasks per phase — the default
//     batch hands a whole phase to two workers; the controller must
//     shrink and clearly beat the default.
//
// Claims the table must show (asserted by TestE12AdaptiveBatch): adaptive
// beats the fixed default on fine grain and lands near the best fixed
// batch, matches the default within 3% on coarse grain, and rescues the
// hoarding configuration — all from the same starting parameters, fed
// only the lock-overhead and hoarded-idle shares.
func E12AdaptiveBatch(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Adaptive batch tuning vs fixed batches (batched executive, virtual time)",
		Paper: "beyond the paper: the E5 computation-to-management ratio turned into a " +
			"feedback signal that sizes the sharded executive's deque refills online",
		Columns: []string{
			"workload", "batch", "final", "changes", "makespan", "utilization", "compute:mgmt",
		},
	}

	procs := 16
	fineGranules, hoardPhases := 4096, 8
	if scale == Quick {
		fineGranules, hoardPhases = 2048, 6
	}
	// Acquire priced at 64 units: a contended lock handoff (cache-line
	// transfer, wakeup) costs an order of magnitude more than one
	// scheduler operation, which is what makes the amortization axis
	// worth tuning at fine grain.
	costs := core.DefaultCosts()
	costs.Acquire = 64

	type wl struct {
		name            string
		phases          int
		granules, grain int
	}
	workloads := []wl{
		{"chain(identity,fine)", 3, fineGranules, 1},
		{"chain(identity,coarse)", 3, 32768, 64},
		{"chain(identity,hoard)", hoardPhases, 2048, 64},
	}
	fixedBatches := []int{1, 4, 16, 64}

	for _, w := range workloads {
		run := func(batch int, adaptive bool) (*sim.Result, error) {
			prog, err := workload.Chain(enable.Identity, w.phases, w.granules,
				workload.UniformCost(100, 400, 1986), 1986)
			if err != nil {
				return nil, err
			}
			opt := core.Options{
				Grain: w.grain, Overlap: true, Costs: costs,
				AdaptiveBatch: adaptive, MgmtTarget: 0.03,
			}
			return sim.Run(prog, opt, sim.Config{
				Procs: procs, Mgmt: sim.Adaptive, Batch: batch,
			})
		}
		for _, b := range fixedBatches {
			res, err := run(b, false)
			if err != nil {
				return nil, fmt.Errorf("%s/batch=%d: %w", w.name, b, err)
			}
			t.AddRow(w.name, fmt.Sprintf("fixed %d", b), res.Batch, res.BatchChanges,
				res.Makespan, fmt.Sprintf("%.3f", res.Utilization),
				fmt.Sprintf("%.1f", res.MgmtRatio))
		}
		res, err := run(16, true)
		if err != nil {
			return nil, fmt.Errorf("%s/adaptive: %w", w.name, err)
		}
		t.AddRow(w.name, "adaptive", res.Batch, res.BatchChanges,
			res.Makespan, fmt.Sprintf("%.3f", res.Utilization),
			fmt.Sprintf("%.1f", res.MgmtRatio))
	}

	t.Note("%d processors, identity chains, uniform cost 100..400, Acquire=64; the adaptive "+
		"rows start from the fixed default (16); fine: %d granules/phase at grain 1, coarse: "+
		"32768 at grain 64, hoard: %d phases of 2048 at grain 64 (32 tasks/phase)",
		procs, fineGranules, hoardPhases)
	t.Note("batched-executive model: deque pops are free, refills and completion flushes " +
		"serialize on the global lock; 'final' is where the batch ended, 'changes' how often " +
		"the controller moved it")
	return t, nil
}
