package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/executive"
	"repro/internal/granule"
	"repro/internal/sim"
	"repro/internal/workload"
)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	for _, spec := range All() {
		if spec.ID == id {
			tbl, err := spec.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			return tbl
		}
	}
	t.Fatalf("experiment %s not registered", id)
	return nil
}

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tbl.ID, row, col)
	}
	return tbl.Rows[row][col]
}

func cellFloat(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, tbl, row, col), "%"), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tbl.ID, row, col, cell(t, tbl, row, col))
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	specs := All()
	if len(specs) != 13 {
		t.Fatalf("registered %d experiments, want 13", len(specs))
	}
	for i, spec := range specs {
		want := "E" + strconv.Itoa(i+1)
		if spec.ID != want {
			t.Errorf("spec %d id = %s, want %s", i, spec.ID, want)
		}
		if spec.Title == "" || spec.Run == nil {
			t.Errorf("%s incomplete", spec.ID)
		}
	}
}

// TestE1MatchesPaperExactly pins the census table to the published values.
func TestE1MatchesPaperExactly(t *testing.T) {
	tbl := runExp(t, "E1")
	want := [][]string{
		{"universal", "6", "27%", "266", "22%"},
		{"identity", "9", "40%", "551", "46%"},
		{"null", "4", "18%", "262", "22%"},
		{"reverse-indirect", "2", "9%", "78", "6%"},
		{"forward-indirect", "1", "4%", "31", "2%"},
		{"total", "22", "100%", "1188", "100%"},
	}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, w := range want {
		for j, cellWant := range w {
			if got := cell(t, tbl, i, j); got != cellWant {
				t.Errorf("row %d col %d = %q, want %q", i, j, got, cellWant)
			}
		}
	}
	found68 := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "68% of phases, 68% of lines") {
			found68 = true
		}
	}
	if !found68 {
		t.Error("68%/68% note missing")
	}
}

// TestE2PaperArithmetic checks the full-scale leftover arithmetic directly
// (the Quick table uses a reduced grid; the arithmetic helper must still
// reproduce 524/288/712).
func TestE2PaperArithmetic(t *testing.T) {
	tbl := runExp(t, "E2")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Quick scale: 128x128 on 56 procs: 8192 granules, 146 each, 16 left,
	// 40 idle.
	if cell(t, tbl, 0, 3) != "146" || cell(t, tbl, 0, 4) != "16" || cell(t, tbl, 0, 5) != "40" {
		t.Errorf("quick leftover row = %v", tbl.Rows[0])
	}
	// Seam-on must beat seam-off in utilization.
	off := cellFloat(t, tbl, 1, 7)
	on := cellFloat(t, tbl, 2, 7)
	if on <= off {
		t.Errorf("seam utilization %v <= %v", on, off)
	}
}

func TestE3Shape(t *testing.T) {
	tbl := runExp(t, "E3")
	kinds := map[string]float64{}
	for i := range tbl.Rows {
		kinds[cell(t, tbl, i, 0)] = cellFloat(t, tbl, i, 3)
	}
	if kinds["null"] != 0 {
		t.Errorf("null gain = %v, want 0", kinds["null"])
	}
	for _, k := range []string{
		"universal", "identity",
		"forward-window", "forward-random",
		"reverse-window", "reverse-random",
	} {
		if kinds[k] <= 0 {
			t.Errorf("%s gain = %v, want > 0", k, kinds[k])
		}
	}
	if kinds["universal"] < kinds["reverse-random"]-3 {
		t.Errorf("universal gain %v should not trail reverse-random %v materially",
			kinds["universal"], kinds["reverse-random"])
	}
	// The window-vs-random ordering is scale-dependent (fragmentation
	// only hurts once the serial executive saturates, which needs the
	// Full-scale processor counts), so Quick mode asserts only that both
	// variants gain.
}

func TestE4KneeAtTwo(t *testing.T) {
	tbl := runExp(t, "E4")
	// Utilization at 2 tasks/proc must clearly beat 1; gains beyond 2 are
	// diminishing.
	u1 := cellFloat(t, tbl, 0, 3)
	u2 := cellFloat(t, tbl, 1, 3)
	u3 := cellFloat(t, tbl, 2, 3)
	if u2 <= u1 {
		t.Errorf("utilization at 2 (%v) not better than at 1 (%v)", u2, u1)
	}
	if (u2 - u1) < (u3-u2)*1.5 {
		t.Errorf("knee not at 2: jumps %v then %v", u2-u1, u3-u2)
	}
}

func TestE5RatioMonotoneInGrain(t *testing.T) {
	tbl := runExp(t, "E5")
	prev := 0.0
	for i := range tbl.Rows {
		r := cellFloat(t, tbl, i, 4)
		if r < prev {
			t.Errorf("ratio not monotone at row %d: %v after %v", i, r, prev)
		}
		prev = r
	}
	last := cellFloat(t, tbl, len(tbl.Rows)-1, 4)
	if last < 120 {
		t.Errorf("coarse-grain ratio %v not approaching the paper's neighbourhood", last)
	}
}

func TestE6OverlapBeatsBarrier(t *testing.T) {
	tbl := runExp(t, "E6")
	rows := map[string]float64{}
	for i := range tbl.Rows {
		rows[cell(t, tbl, i, 0)] = cellFloat(t, tbl, i, 1) // makespan
	}
	barrier := rows["barrier"]
	for _, s := range []string{"demand+inline", "demand+deferred", "presplit", "table-counters"} {
		if rows[s] >= barrier {
			t.Errorf("%s makespan %v >= barrier %v", s, rows[s], barrier)
		}
	}
}

func TestE7DeferredBoundsLoss(t *testing.T) {
	tbl := runExp(t, "E7")
	var worstInline, worstDeferred float64
	for i := range tbl.Rows {
		gain := cellFloat(t, tbl, i, 5)
		switch cell(t, tbl, i, 1) {
		case "inline":
			if gain < worstInline {
				worstInline = gain
			}
		case "deferred":
			if gain < worstDeferred {
				worstDeferred = gain
			}
		}
	}
	if worstInline > -50 {
		t.Errorf("inline worst gain %v: expected catastrophic self-defeat", worstInline)
	}
	if worstDeferred < -10 {
		t.Errorf("deferred worst gain %v: cancellation should bound the loss", worstDeferred)
	}
}

func TestE8OverlapGains(t *testing.T) {
	tbl := runExp(t, "E8")
	for i := range tbl.Rows {
		if gain := cellFloat(t, tbl, i, 3); gain <= 5 {
			t.Errorf("row %d gain %v, want clear improvement", i, gain)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "demo", Paper: "claim",
		Columns: []string{"a", "bb"},
	}
	tbl.AddRow("x", 3)
	tbl.AddRow(1.25, "y")
	tbl.Note("note %d", 7)
	out := tbl.Format()
	for _, want := range []string{"EX — demo", "paper: claim", "a", "bb", "x", "1.250", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### EX", "| a | bb |", "| x | 3 |", "*note 7*"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

// TestCensusConsistencyWithEnable cross-checks that every census kind is a
// valid mapping kind with the properties E1 relies on.
func TestCensusConsistencyWithEnable(t *testing.T) {
	for _, c := range workload.Census() {
		if c.Kind >= enable.Kind(enable.NumKinds) {
			t.Errorf("census %s has invalid kind", c.Name)
		}
		if c.Lines <= 0 {
			t.Errorf("census %s has no lines", c.Name)
		}
	}
}

// TestE10ManagerComparison checks the manager head-to-head table's shape:
// every workload runs under both managers (wall-clock magnitudes are
// host-dependent and not asserted), and the -manager filter restricts the
// rows.
func TestE10ManagerComparison(t *testing.T) {
	tbl := runExp(t, "E10")
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 workloads x 2 managers", len(tbl.Rows))
	}
	for i := 0; i < len(tbl.Rows); i += 2 {
		if cell(t, tbl, i, 0) != cell(t, tbl, i+1, 0) {
			t.Errorf("rows %d/%d compare different workloads: %q vs %q",
				i, i+1, cell(t, tbl, i, 0), cell(t, tbl, i+1, 0))
		}
		if cell(t, tbl, i, 1) != "serial" || cell(t, tbl, i+1, 1) != "sharded" {
			t.Errorf("rows %d/%d managers = %q/%q", i, i+1, cell(t, tbl, i, 1), cell(t, tbl, i+1, 1))
		}
	}

	if err := SetManagerFilter("sharded"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetManagerFilter("both"); err != nil {
			t.Fatal(err)
		}
	}()
	tbl = runExp(t, "E10")
	if len(tbl.Rows) != 3 {
		t.Fatalf("filtered rows = %d, want 3", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, 1) != "sharded" {
			t.Errorf("filtered row %d manager = %q", i, cell(t, tbl, i, 1))
		}
	}
	if err := SetManagerFilter("quantum"); err == nil {
		t.Error("unknown manager filter accepted")
	}
}

// TestE11PoolDominates pins the tenancy acceptance criteria: the tenant
// pool must beat E9's static two-stream split on total throughput, keep
// each job's makespan within 10% of running alone with overlap, raise
// utilization over sequential execution, and actually move work across
// jobs (nonzero backfill).
func TestE11PoolDominates(t *testing.T) {
	tbl := runExp(t, "E11")
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(tbl.Rows))
	}
	aloneBursty := cellFloat(t, tbl, 0, 1)
	aloneNarrow := cellFloat(t, tbl, 0, 2)
	seqBoth := cellFloat(t, tbl, 1, 3)
	seqUtil := cellFloat(t, tbl, 1, 4)
	splitBoth := cellFloat(t, tbl, 2, 3)
	poolBursty := cellFloat(t, tbl, 3, 1)
	poolNarrow := cellFloat(t, tbl, 3, 2)
	poolBoth := cellFloat(t, tbl, 3, 3)
	poolUtil := cellFloat(t, tbl, 3, 4)
	poolBackfill := cellFloat(t, tbl, 3, 5)

	if poolBoth >= splitBoth {
		t.Errorf("pool both-done %v not below static split %v", poolBoth, splitBoth)
	}
	if poolBoth >= seqBoth {
		t.Errorf("pool both-done %v not below sequential %v", poolBoth, seqBoth)
	}
	if poolBursty > aloneBursty*1.10 {
		t.Errorf("bursty pool makespan %v exceeds 110%% of alone %v", poolBursty, aloneBursty)
	}
	if poolNarrow > aloneNarrow*1.10 {
		t.Errorf("narrow pool makespan %v exceeds 110%% of alone %v", poolNarrow, aloneNarrow)
	}
	if poolUtil <= seqUtil {
		t.Errorf("pool utilization %v not above sequential %v", poolUtil, seqUtil)
	}
	if poolBackfill <= 0 {
		t.Errorf("pool moved no cross-job work (backfill %v)", poolBackfill)
	}
}

// TestE12AdaptiveBatch pins the adaptive-batching acceptance criteria on
// the batched-executive model: on the fine-grain identity chain the
// controller must beat the fixed default parameters and land near the
// best fixed batch (final size within one multiplicative step of the
// sweep's knee); on the coarse chain, with nothing to tune, it must match
// the default within 3%; on the hoarding chain it must shrink and clearly
// beat the default it started from.
func TestE12AdaptiveBatch(t *testing.T) {
	tbl := runExp(t, "E12")
	if len(tbl.Rows) != 15 {
		t.Fatalf("rows = %d, want 3 workloads x (4 fixed + adaptive)", len(tbl.Rows))
	}
	// Per workload block: rows base..base+3 are the fixed sweep
	// (batches 1, 4, 16, 64), base+4 is adaptive.
	util := func(r int) float64 { return cellFloat(t, tbl, r, 5) }
	makespan := func(r int) float64 { return cellFloat(t, tbl, r, 4) }
	finalBatch := func(r int) float64 { return cellFloat(t, tbl, r, 2) }
	changes := func(r int) float64 { return cellFloat(t, tbl, r, 3) }
	batches := []float64{1, 4, 16, 64}

	// Fine grain (rows 0-4): the default (fixed 16, row 2) is too small.
	fineBest, fineBestUtil := 0.0, 0.0
	for i := 0; i < 4; i++ {
		if u := util(i); u > fineBestUtil {
			fineBestUtil = u
		}
	}
	bestMk := makespan(0)
	for i := 1; i < 4; i++ {
		if m := makespan(i); m < bestMk {
			bestMk = m
		}
	}
	for i := 0; i < 4; i++ {
		if makespan(i) <= bestMk*1.02 {
			fineBest = batches[i]
			break
		}
	}
	if util(4) < util(2) {
		t.Errorf("fine: adaptive utilization %v below the fixed default %v", util(4), util(2))
	}
	if util(4) < fineBestUtil*0.9 {
		t.Errorf("fine: adaptive utilization %v not within 10%% of best fixed %v", util(4), fineBestUtil)
	}
	if changes(4) == 0 {
		t.Error("fine: controller never moved on a lock-bound workload")
	}
	if fb := finalBatch(4); fb < fineBest/2 || fb > fineBest*2 {
		t.Errorf("fine: controller settled at %v, want within one step of the knee %v", fb, fineBest)
	}

	// Coarse grain (rows 5-9): nothing to tune — match the default.
	d := util(9) - util(7)
	if d < 0 {
		d = -d
	}
	if d > 0.03*util(7) {
		t.Errorf("coarse: adaptive utilization %v not within 3%% of the fixed default %v", util(9), util(7))
	}

	// Hoarding (rows 10-14): the default hands whole phases to two
	// workers; adaptive must shrink and clearly beat it.
	if finalBatch(14) >= 16 {
		t.Errorf("hoard: controller did not shrink (final batch %v)", finalBatch(14))
	}
	if util(14) < util(12)*1.3 {
		t.Errorf("hoard: adaptive utilization %v does not clearly beat the fixed default %v",
			util(14), util(12))
	}
}

// TestE13AsyncExecutive pins the async-executive acceptance criteria.
//
// The quantitative claims are asserted in virtual time, where they are
// deterministic: on the fine-grain identity chain the Async model
// (dedicated executive processor + ready-buffer) must reach at least 1.2x
// the steals-worker utilization at 8 processors and beat it at every
// P >= 4, and on the coarse-grain chain it must stay within a few percent
// of the Sharded model (the optimistic distributed-management bound). The
// same comparison on real goroutines needs real parallelism — at least a
// core per worker plus one spare for the management goroutine — so the
// hardware assertion skips on smaller hosts (as ROADMAP notes for the PR3
// claim, wall-clock utilization claims want a multi-core host); the E13
// table itself still runs everywhere.
func TestE13AsyncExecutive(t *testing.T) {
	tbl := runExp(t, "E13")
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 2 workloads x 2 worker counts x 3 managers", len(tbl.Rows))
	}
	order := []string{"serial", "sharded", "async"}
	for i := range tbl.Rows {
		if got, want := cell(t, tbl, i, 1), order[i%3]; got != want {
			t.Errorf("row %d manager = %q, want %q", i, got, want)
		}
	}

	// Virtual time: the deterministic form of the acceptance numbers.
	fine := func(procs int, model sim.MgmtModel) *sim.Result {
		prog, err := workload.Chain(enable.Identity, 3, 4096,
			workload.UniformCost(30, 90, 1986), 1986)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(prog, core.Options{
			Grain: 1, Overlap: true, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: procs, Mgmt: model})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, procs := range []int{4, 6, 8} {
		s, a := fine(procs, sim.StealsWorker), fine(procs, sim.Async)
		if a.Utilization <= s.Utilization {
			t.Errorf("P=%d: async utilization %.3f not above steals-worker %.3f",
				procs, a.Utilization, s.Utilization)
		}
	}
	s8, a8 := fine(8, sim.StealsWorker), fine(8, sim.Async)
	if a8.Utilization < 1.2*s8.Utilization {
		t.Errorf("fine grain at 8: async utilization %.3f below 1.2x steals-worker %.3f",
			a8.Utilization, s8.Utilization)
	}

	coarse := func(model sim.MgmtModel) *sim.Result {
		prog, err := workload.Chain(enable.Identity, 3, 32768,
			workload.UniformCost(100, 400, 1986), 1986)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(prog, core.Options{
			Grain: 64, Overlap: true, Costs: core.DefaultCosts(),
		}, sim.Config{Procs: 8, Mgmt: model})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ca, cs := coarse(sim.Async), coarse(sim.Sharded)
	if ca.Utilization < 0.95*cs.Utilization {
		t.Errorf("coarse grain: async utilization %.3f not within 5%% of sharded %.3f",
			ca.Utilization, cs.Utilization)
	}

	// Hardware: one core per worker plus the management goroutine, or the
	// dedicated-processor comparison cannot physically happen.
	const hwWorkers = 8
	if runtime.NumCPU() < hwWorkers+1 {
		t.Skipf("hardware 1.2x assertion needs >= %d CPUs (have %d): a core per worker plus one spare for the management goroutine",
			hwWorkers+1, runtime.NumCPU())
	}
	hw := func(kind executive.ManagerKind) float64 {
		n := 1 << 15
		a := make([]int64, n)
		c := make([]int64, n)
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "fill", Granules: n,
				Work:   func(g granule.ID) { a[g] = int64(g) * 3 },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "scale", Granules: n,
				Work:   func(g granule.ID) { c[g] = a[g] + 1 },
				Enable: enable.NewIdentity(),
			},
			&core.Phase{
				Name: "sum", Granules: n,
				Work: func(g granule.ID) { a[g] = c[g] ^ a[g] },
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := executive.Run(prog, core.Options{
			Grain: 1, Overlap: true, IdentityVia: core.IdentityTable,
			Costs: core.DefaultCosts(),
		}, executive.Config{Workers: hwWorkers, Manager: kind})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Utilization
	}
	// Wall-clock is noisy even on a big host: take the best of three
	// attempts before declaring the structural claim violated.
	for attempt := 0; ; attempt++ {
		serial, async := hw(executive.SerialManager), hw(executive.AsyncManager)
		if async >= 1.2*serial {
			break
		}
		if attempt == 2 {
			t.Errorf("hardware fine grain at %d workers: async utilization %.4f below 1.2x serial %.4f",
				hwWorkers, async, serial)
			break
		}
	}
}

// TestE9BatchVsOverlap checks the introduction's trade-off: batching
// lengthens the per-job wall-clock while overlap shortens it, and both
// raise utilization over the barrier baseline.
func TestE9BatchVsOverlap(t *testing.T) {
	tbl := runExp(t, "E9")
	aloneMk := cellFloat(t, tbl, 0, 2)
	batchMk := cellFloat(t, tbl, 1, 2)
	overlapMk := cellFloat(t, tbl, 2, 2)
	if batchMk <= aloneMk*1.5 {
		t.Errorf("batch per-job makespan %v should be far above alone %v", batchMk, aloneMk)
	}
	if overlapMk >= aloneMk {
		t.Errorf("overlap per-job makespan %v should beat alone %v", overlapMk, aloneMk)
	}
	aloneU := cellFloat(t, tbl, 0, 4)
	batchU := cellFloat(t, tbl, 1, 4)
	overlapU := cellFloat(t, tbl, 2, 4)
	if batchU <= aloneU || overlapU <= aloneU {
		t.Errorf("both alternatives should raise utilization: alone %v batch %v overlap %v",
			aloneU, batchU, overlapU)
	}
}
