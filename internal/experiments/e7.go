package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E7CompositeMapCost sweeps the cost of composite-granule-map generation
// for reverse-indirect overlap, under both executive resource models and
// both construction strategies. The paper: "in the PAX/CASPER UNIVAC 1100
// test bed, executive computation was done at the direct expense of worker
// computation. Thus, extensive composite granule map generation could be
// self defeating. Some real parallel machines may provide separate
// executive computing resources, in which case the generation and use of
// composite granule maps would not be out of the question."
//
// The inline strategy builds the map at phase initiation, blocking the
// serial executive — the self-defeating case the paper warns about. The
// deferred strategy (this reproduction's default) builds the map
// incrementally in executive idle time and cancels it if the predecessor
// phase finishes first, bounding the worst case near barrier performance.
func E7CompositeMapCost(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Composite-map generation cost vs overlap gain (reverse indirect)",
		Paper: "extensive composite granule map generation could be self defeating when executive " +
			"computation comes at direct worker expense; separate executive resources help",
		Columns: []string{
			"mgmt-model", "build", "map-entry-cost", "makespan(barrier)", "makespan(overlap)", "gain%",
		},
	}
	granules, procs, phases := 2048, 32, 3
	if scale == Quick {
		granules, procs = 768, 16
	}
	grain := granules / (4 * procs)

	for _, model := range []sim.MgmtModel{sim.StealsWorker, sim.Dedicated} {
		for _, inline := range []bool{true, false} {
			for _, mapCost := range []core.Cost{0, 1, 16, 64} {
				var barrier, overlap *sim.Result
				for _, ov := range []bool{false, true} {
					prog, err := workload.Chain(enable.ReverseIndirect, phases, granules,
						workload.UniformCost(100, 400, 17), 17)
					if err != nil {
						return nil, err
					}
					costs := core.DefaultCosts()
					costs.MapEntry = mapCost
					res, err := sim.Run(prog, core.Options{
						Grain: grain, Overlap: ov, Elevate: true, InlineMaps: inline,
						Costs: costs,
					}, sim.Config{Procs: procs, Mgmt: model})
					if err != nil {
						return nil, err
					}
					if ov {
						overlap = res
					} else {
						barrier = res
					}
				}
				gain := 100 * (float64(barrier.Makespan) - float64(overlap.Makespan)) / float64(barrier.Makespan)
				build := "deferred"
				if inline {
					build = "inline"
				}
				t.AddRow(model.String(), build, int64(mapCost), barrier.Makespan, overlap.Makespan,
					fmt.Sprintf("%.1f", gain))
			}
		}
	}
	t.Note("%d granules x %d reverse-mapped phases, %d processors, grain %d; the reverse map "+
		"fans 2 predecessors per successor granule", granules, phases, procs, grain)
	t.Note("inline construction reproduces the paper's warned-about self-defeat: the serial " +
		"executive stalls every processor while it builds the map")
	t.Note("deferred+cancellable construction (this reproduction's default) bounds the loss near " +
		"zero: an unfinished map is abandoned when the predecessor phase completes")
	return t, nil
}
