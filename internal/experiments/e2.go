package experiments

import (
	"fmt"

	"repro/internal/casper"
	"repro/internal/core"
	"repro/internal/sim"
)

// E2Checkerboard reproduces the paper's worked rundown example: a
// 1024x1024 potential grid (2**20 points) gives 524,288 computations per
// checkerboard phase; on 1000 processors each receives 524 with 288 left
// over, leaving 712 processors idle while the final wave completes. The
// experiment reports the static arithmetic exactly, then simulates one
// red/black sweep at grain 1 to measure the utilization loss, and finally
// shows the seam-mapping extension recovering the idle time on a reduced
// grid (the full grid's 4M-entry seam table is unnecessary to show the
// shape).
func E2Checkerboard(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Checkerboard rundown (paper example: 1024^2 grid, 1000 processors)",
		Paper: "524 computations per processor, 288 left over, 712 processors idle during the final wave",
		Columns: []string{
			"config", "granules/phase", "procs", "per-proc", "leftover", "idle-procs",
			"makespan", "utilization",
		},
	}

	n, procs := 1024, 1000
	sweeps := 1
	if scale == Quick {
		n, procs = 128, 56 // 8192 granules: 146 each, 16 left over, 40 idle
	}
	ic, err := casper.NewIdealCheckerboard(n)
	if err != nil {
		return nil, err
	}
	each, left, idle := ic.Leftover(procs)

	barrierProg, err := ic.Program(sweeps, false)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(barrierProg,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		sim.Config{Procs: procs, Mgmt: sim.Dedicated})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("barrier %dx%d", n, n), ic.PhaseGranules(), procs,
		each, left, idle, res.Makespan, fmt.Sprintf("%.4f", res.Utilization))

	// Expected static makespan: each+1 per phase when there is a
	// leftover wave, each otherwise.
	perPhase := each
	if left > 0 {
		perPhase++
	}
	t.Note("static distribution: %d waves per phase; final wave busies %d of %d processors",
		perPhase, left, procs)

	// Seam-mapping recovery on a reduced grid.
	nSeam, pSeam := 128, 56
	ics, err := casper.NewIdealCheckerboard(nSeam)
	if err != nil {
		return nil, err
	}
	for _, seam := range []bool{false, true} {
		prog, err := ics.Program(2, seam)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(prog,
			core.Options{Grain: 1, Overlap: seam, Costs: core.FreeCosts()},
			sim.Config{Procs: pSeam, Mgmt: sim.Dedicated})
		if err != nil {
			return nil, err
		}
		label := "seam-off"
		if seam {
			label = "seam-on"
		}
		e2, l2, i2 := ics.Leftover(pSeam)
		t.AddRow(fmt.Sprintf("%s %dx%d x2 sweeps", label, nSeam, nSeam),
			ics.PhaseGranules(), pSeam, e2, l2, i2, r.Makespan, fmt.Sprintf("%.4f", r.Utilization))
	}
	t.Note("seam mapping (the paper's foreseen checkerboard extension) releases next-colour points " +
		"as their neighbours complete, filling the final-wave idle processors")
	return t, nil
}
