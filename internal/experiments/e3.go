package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E3MappingSweep measures how much rundown idle time overlap recovers for
// each enablement-mapping kind, with variable task times (the paper:
// computations "could not even be ascribed with definite execution times").
//
// The indirect kinds appear twice: with a *structured* information
// selection map (window gathers/scatters, as in real stencil and reduction
// codes — released successor granules coalesce into contiguous
// descriptions) and with a fully *random* map (the released granules are
// fragmented, so every one becomes its own description and the serial
// executive pays per-granule management). The contrast quantifies how much
// of the indirect-mapping overhead is the mapping itself versus the
// fragmentation it induces — the economy the paper attributes to
// descriptions as "large, contiguous collections of granules".
func E3MappingSweep(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Rundown recovery by mapping kind (3-phase chain, variable granule cost)",
		Paper: "overlapping keeps processors busy during rundown wherever the mapping permits; " +
			"indirect forms cost executive time; null permits nothing",
		Columns: []string{
			"mapping", "makespan(barrier)", "makespan(overlap)", "gain%",
			"idle(barrier)", "idle(overlap)", "mgmt(overlap)",
		},
	}
	granules, procs, phases := 4096, 64, 3
	if scale == Quick {
		granules, procs = 1024, 32
	}
	grain := granules / (4 * procs)
	// Granule costs sit two orders of magnitude above unit management
	// operations, matching the paper's observed computation-to-management
	// ratio regime (~200).
	cost := workload.UniformCost(100, 900, 1986)
	n := granules

	build := func(name string) (*core.Program, error) {
		spec := func() *enable.Spec {
			switch name {
			case "null":
				return nil
			case "universal":
				return enable.NewUniversal()
			case "identity":
				return enable.NewIdentity()
			case "forward-window":
				// Structured scatter: granule p enables successor p
				// rounded to pairs — releases coalesce.
				return enable.NewForward(func(p granule.ID) []granule.ID {
					return []granule.ID{p}
				})
			case "forward-random":
				return enable.NewForwardIMAP(workload.RandomIMap(n, n, 7))
			case "reverse-window":
				// Structured gather: r needs {r, r+1} — the paper's
				// composite map over a window.
				return enable.NewReverse(func(r granule.ID) []granule.ID {
					if int(r)+1 < n {
						return []granule.ID{r, r + 1}
					}
					return []granule.ID{r}
				})
			case "reverse-random":
				return enable.NewReverseIMAP(workload.RandomIMap(2*n, n, 7), 2)
			case "seam":
				return enable.NewSeam(func(r granule.ID) []granule.ID {
					reqs := []granule.ID{r}
					if r > 0 {
						reqs = append(reqs, r-1)
					}
					if int(r) < n-1 {
						reqs = append(reqs, r+1)
					}
					return reqs
				})
			}
			return nil
		}
		out := make([]*core.Phase, phases)
		for i := range out {
			out[i] = &core.Phase{Name: fmt.Sprintf("p%d", i), Granules: n, Cost: cost}
			if i < phases-1 {
				out[i].Enable = spec()
			}
		}
		return core.NewProgram(out...)
	}

	names := []string{
		"null", "universal", "identity",
		"forward-window", "forward-random",
		"reverse-window", "reverse-random", "seam",
	}
	for _, name := range names {
		var barrier, overlap *sim.Result
		for _, ov := range []bool{false, true} {
			prog, err := build(name)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(prog, core.Options{
				Grain: grain, Overlap: ov, Elevate: true,
				Costs: core.DefaultCosts(),
			}, sim.Config{Procs: procs, Mgmt: sim.StealsWorker})
			if err != nil {
				return nil, err
			}
			if ov {
				overlap = res
			} else {
				barrier = res
			}
		}
		gain := 100 * (float64(barrier.Makespan) - float64(overlap.Makespan)) / float64(barrier.Makespan)
		t.AddRow(name, barrier.Makespan, overlap.Makespan,
			fmt.Sprintf("%.1f", gain), barrier.IdleUnits, overlap.IdleUnits, overlap.MgmtUnits)
	}
	t.Note("%d granules x %d phases, %d processors (one stolen by the executive), grain %d, "+
		"uniform cost 100..900", granules, phases, procs, grain)
	t.Note("window vs random rows separate the cost of the mapping kind from the cost of the " +
		"release fragmentation a random information selection map induces")
	return t, nil
}
