package experiments

import (
	"fmt"

	"repro/internal/casper"
	"repro/internal/enable"
	"repro/internal/workload"
)

// E1Census reproduces the paper's enablement-mapping census of PAX/CASPER:
// phases and parallel-code lines per mapping class, with the derived
// overlap-coverage percentages. It also cross-checks the census kinds by
// classifying the mini-CFD pipeline's adjacent phase pairs from declared
// access footprints alone (enable.Infer), demonstrating that the mapping
// taxonomy is recoverable from data-dependence structure.
func E1Census(Scale) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "PAX/CASPER enablement-mapping census (22 phases, 1188 parallel lines)",
		Paper: "universal 6/22 (27%), 266 lines (22%); identity 9/22 (41%), 551 (46%); " +
			"null 4/22 (18%), 262 (22%); reverse 2/22 (9%), 78 (7%); forward 1/22 (5%), 31 (3%); " +
			"68% of phases and 68% of lines simply overlappable",
		Columns: []string{"mapping", "phases", "phase%", "lines", "line%"},
	}
	census := workload.Census()
	phases, lines, totalPhases, totalLines := workload.CensusTotals(census)
	order := []enable.Kind{
		enable.Universal, enable.Identity, enable.Null,
		enable.ReverseIndirect, enable.ForwardIndirect,
	}
	for _, k := range order {
		t.AddRow(k.String(),
			phases[k], fmt.Sprintf("%d%%", 100*phases[k]/totalPhases),
			lines[k], fmt.Sprintf("%d%%", 100*lines[k]/totalLines))
	}
	t.AddRow("total", totalPhases, "100%", totalLines, "100%")

	simpleP := phases[enable.Universal] + phases[enable.Identity]
	simpleL := lines[enable.Universal] + lines[enable.Identity]
	t.Note("simple overlap (universal+identity): %d%% of phases, %d%% of lines — the paper's 68%%/68%%",
		100*simpleP/totalPhases, 100*simpleL/totalLines)
	t.Note("with extended effort (all non-null forms): %d%% of phases amenable to overlap",
		100*(totalPhases-phases[enable.Null])/totalPhases)

	// Cross-check: infer the mini-CFD pipeline's mapping kinds from its
	// access footprints.
	p, err := casper.NewPipeline(64)
	if err != nil {
		return nil, err
	}
	prog, err := p.Program()
	if err != nil {
		return nil, err
	}
	fps := p.Footprints()
	inferred := make([]string, 0, len(prog.Phases)-1)
	for i := 0; i < len(prog.Phases)-1; i++ {
		kind, _ := enable.Infer(fps[i], prog.Phases[i].Granules, fps[i+1], prog.Phases[i+1].Granules)
		declared := prog.Phases[i].EnableKind()
		status := "declared " + declared.String()
		if declared == enable.Null && kind != enable.Null {
			status += " (serial action forces null)"
		}
		inferred = append(inferred, fmt.Sprintf("%s->%s: inferred %v, %s",
			prog.Phases[i].Name, prog.Phases[i+1].Name, kind, status))
	}
	for _, s := range inferred {
		t.Note("pipeline classification: %s", s)
	}
	return t, nil
}
