package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTimelineBasics(t *testing.T) {
	tl := NewTimeline(2, 10)
	tl.AddBusy(0, 0, 10)
	tl.AddBusy(1, 0, 5)
	tl.AddMgmt(5, 8)
	tl.SetEnd(10)
	if tl.BusyTotal() != 15 || tl.MgmtTotal() != 3 {
		t.Fatalf("busy=%d mgmt=%d", tl.BusyTotal(), tl.MgmtTotal())
	}
	if got := tl.Utilization(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("utilization = %v, want 0.75", got)
	}
	by := tl.ByProc()
	if by[0] != 10 || by[1] != 5 {
		t.Errorf("byProc = %v", by)
	}
	if tl.Procs() != 2 || tl.BucketWidth() != 10 || tl.End() != 10 {
		t.Error("accessors wrong")
	}
}

func TestTimelineBucketSpanning(t *testing.T) {
	tl := NewTimeline(1, 4)
	tl.AddBusy(0, 2, 11) // spans buckets 0 (2 units), 1 (4), 2 (3)
	curve := tl.Curve()
	want := []float64{0.5, 1.0, 1.0} // last bucket partial width 3: 3/3
	if len(curve) != 3 {
		t.Fatalf("curve = %v", curve)
	}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-9 {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
}

func TestTimelineMgmtCurve(t *testing.T) {
	tl := NewTimeline(3, 5)
	tl.AddMgmt(0, 5)
	tl.SetEnd(10)
	mc := tl.MgmtCurve()
	if len(mc) != 2 || math.Abs(mc[0]-1.0) > 1e-9 || mc[1] != 0 {
		t.Errorf("mgmt curve = %v", mc)
	}
}

func TestTimelineDegenerate(t *testing.T) {
	tl := NewTimeline(0, 0) // clamped to 1 proc, width 1
	if tl.Procs() != 1 || tl.BucketWidth() != 1 {
		t.Error("clamping failed")
	}
	tl.AddBusy(5, 0, 3) // out-of-range proc: counted in buckets, not byProc
	if tl.Utilization() == 0 {
		t.Error("interval dropped")
	}
	if c := (&Timeline{procs: 1, width: 1}).Curve(); c != nil {
		t.Error("empty curve not nil")
	}
	tl.AddBusy(0, 5, 5) // empty interval ignored
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1, -1, 2})
	if s == "" || len([]rune(s)) != 5 {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
}

func TestFormatPercent(t *testing.T) {
	if FormatPercent(0.973) != "97.3%" {
		t.Errorf("FormatPercent = %q", FormatPercent(0.973))
	}
}

func TestGantt(t *testing.T) {
	g := NewGantt(2)
	g.Add(0, 0, 10, 'A')
	g.Add(0, 10, 20, 'B')
	g.Add(1, 0, 5, 'A')
	g.Add(1, 12, 20, 'B')
	g.Add(-1, 0, 5, 'X') // ignored
	g.Add(0, 5, 5, 'X')  // empty ignored
	if g.Rows() != 2 || g.End() != 20 {
		t.Fatalf("rows=%d end=%d", g.Rows(), g.End())
	}
	out := g.Render(20)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") || !strings.Contains(out, ".") {
		t.Errorf("render missing labels/idle:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("render lines = %d", len(lines))
	}
	if (&Gantt{}).Render(10) != "" {
		t.Error("empty gantt should render empty")
	}
}

func TestGanttScaling(t *testing.T) {
	g := NewGantt(1)
	g.Add(0, 0, 1000, 'A')
	out := g.Render(10)
	if out == "" || strings.Count(out, "A") > 12 {
		t.Errorf("scaled render wrong:\n%s", out)
	}
}
