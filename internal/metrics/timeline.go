// Package metrics collects and renders utilization data for simulator and
// executive runs: bucketed busy-time timelines, per-processor accounting,
// and ASCII Gantt charts for small runs.
package metrics

import (
	"fmt"
	"strings"
)

// Timeline accumulates busy time into fixed-width virtual-time buckets so
// utilization curves stay O(buckets) regardless of event count.
type Timeline struct {
	procs  int
	width  int64
	busy   []int64 // worker compute per bucket
	mgmt   []int64 // management busy per bucket
	end    int64
	byProc []int64 // total compute per processor
}

// NewTimeline creates a timeline for procs processors with the given bucket
// width (virtual units; minimum 1).
func NewTimeline(procs int, bucketWidth int64) *Timeline {
	if bucketWidth < 1 {
		bucketWidth = 1
	}
	if procs < 1 {
		procs = 1
	}
	return &Timeline{procs: procs, width: bucketWidth, byProc: make([]int64, procs)}
}

// Procs returns the processor count.
func (tl *Timeline) Procs() int { return tl.procs }

// BucketWidth returns the bucket width in virtual units.
func (tl *Timeline) BucketWidth() int64 { return tl.width }

func (tl *Timeline) addInterval(dst *[]int64, t0, t1 int64) {
	if t1 <= t0 {
		return
	}
	if t1 > tl.end {
		tl.end = t1
	}
	b0 := t0 / tl.width
	b1 := (t1 - 1) / tl.width
	for int64(len(*dst)) <= b1 {
		*dst = append(*dst, 0)
	}
	if b0 == b1 {
		(*dst)[b0] += t1 - t0
		return
	}
	(*dst)[b0] += (b0+1)*tl.width - t0
	for b := b0 + 1; b < b1; b++ {
		(*dst)[b] += tl.width
	}
	(*dst)[b1] += t1 - b1*tl.width
}

// AddBusy records processor proc computing during [t0, t1).
func (tl *Timeline) AddBusy(proc int, t0, t1 int64) {
	if proc >= 0 && proc < tl.procs && t1 > t0 {
		tl.byProc[proc] += t1 - t0
	}
	tl.addInterval(&tl.busy, t0, t1)
}

// AddMgmt records the management resource busy during [t0, t1).
func (tl *Timeline) AddMgmt(t0, t1 int64) {
	tl.addInterval(&tl.mgmt, t0, t1)
}

// SetEnd extends the recorded horizon to t (e.g. the makespan).
func (tl *Timeline) SetEnd(t int64) {
	if t > tl.end {
		tl.end = t
	}
}

// End returns the recorded horizon.
func (tl *Timeline) End() int64 { return tl.end }

// BusyTotal returns total worker compute units recorded.
func (tl *Timeline) BusyTotal() int64 {
	var s int64
	for _, b := range tl.busy {
		s += b
	}
	return s
}

// MgmtTotal returns total management units recorded.
func (tl *Timeline) MgmtTotal() int64 {
	var s int64
	for _, b := range tl.mgmt {
		s += b
	}
	return s
}

// ByProc returns per-processor compute totals (a copy).
func (tl *Timeline) ByProc() []int64 {
	out := make([]int64, len(tl.byProc))
	copy(out, tl.byProc)
	return out
}

// Utilization returns aggregate compute utilization: busy/(procs*end).
func (tl *Timeline) Utilization() float64 {
	if tl.end == 0 {
		return 0
	}
	return float64(tl.BusyTotal()) / (float64(tl.procs) * float64(tl.end))
}

// Curve returns the per-bucket compute utilization in [0,1]. The last
// bucket is normalized by the partial width up to End.
func (tl *Timeline) Curve() []float64 {
	if tl.end == 0 {
		return nil
	}
	nb := (tl.end + tl.width - 1) / tl.width
	out := make([]float64, nb)
	for i := int64(0); i < nb; i++ {
		w := tl.width
		if (i+1)*tl.width > tl.end {
			w = tl.end - i*tl.width
		}
		var b int64
		if int(i) < len(tl.busy) {
			b = tl.busy[i]
		}
		out[i] = float64(b) / (float64(tl.procs) * float64(w))
	}
	return out
}

// MgmtCurve returns the per-bucket management utilization relative to one
// management server.
func (tl *Timeline) MgmtCurve() []float64 {
	if tl.end == 0 {
		return nil
	}
	nb := (tl.end + tl.width - 1) / tl.width
	out := make([]float64, nb)
	for i := int64(0); i < nb; i++ {
		w := tl.width
		if (i+1)*tl.width > tl.end {
			w = tl.end - i*tl.width
		}
		var b int64
		if int(i) < len(tl.mgmt) {
			b = tl.mgmt[i]
		}
		out[i] = float64(b) / float64(w)
	}
	return out
}

// Sparkline renders values (each in [0,1]) as a compact unicode bar string,
// for quick terminal inspection of utilization curves.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		idx := int(v * float64(len(ramp)-1))
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// FormatPercent renders a fraction as "97.3%".
func FormatPercent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
