package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one labelled busy interval on a Gantt row.
type Span struct {
	T0, T1 int64
	Label  rune // one character identifying the work (e.g. phase letter)
}

// Gantt records per-processor busy spans for small runs and renders them as
// an ASCII chart — one row per processor, one column per time cell.
type Gantt struct {
	rows [][]Span
}

// NewGantt creates a chart with procs rows.
func NewGantt(procs int) *Gantt {
	return &Gantt{rows: make([][]Span, procs)}
}

// Add records a span on processor proc.
func (g *Gantt) Add(proc int, t0, t1 int64, label rune) {
	if proc < 0 || proc >= len(g.rows) || t1 <= t0 {
		return
	}
	g.rows[proc] = append(g.rows[proc], Span{T0: t0, T1: t1, Label: label})
}

// Rows returns the number of processor rows.
func (g *Gantt) Rows() int { return len(g.rows) }

// End returns the latest span end.
func (g *Gantt) End() int64 {
	var end int64
	for _, row := range g.rows {
		for _, s := range row {
			if s.T1 > end {
				end = s.T1
			}
		}
	}
	return end
}

// Render draws the chart with at most maxCols time columns; longer
// horizons are scaled down. Idle cells are '.', management-free rendering:
// the majority label of each cell wins.
func (g *Gantt) Render(maxCols int) string {
	end := g.End()
	if end == 0 || maxCols <= 0 {
		return ""
	}
	cell := (end + int64(maxCols) - 1) / int64(maxCols)
	if cell < 1 {
		cell = 1
	}
	cols := int((end + cell - 1) / cell)
	var b strings.Builder
	fmt.Fprintf(&b, "time: 1 col = %d units, horizon = %d\n", cell, end)
	for p, row := range g.rows {
		line := make([]rune, cols)
		fill := make([]int64, cols)
		for i := range line {
			line[i] = '.'
		}
		sorted := append([]Span(nil), row...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].T0 < sorted[j].T0 })
		for _, s := range sorted {
			for c := s.T0 / cell; c*cell < s.T1 && int(c) < cols; c++ {
				lo := c * cell
				hi := lo + cell
				if s.T0 > lo {
					lo = s.T0
				}
				if s.T1 < hi {
					hi = s.T1
				}
				if hi-lo > fill[c] {
					fill[c] = hi - lo
					line[c] = s.Label
				}
			}
		}
		fmt.Fprintf(&b, "p%02d |%s|\n", p, string(line))
	}
	return b.String()
}
