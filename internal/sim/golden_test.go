package sim

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/casper"
	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/workload"
)

// The golden determinism suite pins the engine's complete observable
// output — Result / MultiResult fields, per-phase traces, scheduler
// statistics, timeline totals, and the full Observer snapshot stream — to
// fingerprints captured from the engine before the PR 6 hot-path rewrite
// (typed 4-ary event heaps, incremental backfill candidates, running
// ready counts, cached frontier). Any divergence, down to a single
// snapshot firing one event earlier, changes the fingerprint and fails
// the suite: the rewrite must be a pure performance change.
//
// Regenerate with `go test ./internal/sim -run TestGolden -update` ONLY
// when an intentional semantic change is being made, and say so in the
// commit.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.txt from the current engine")

const goldenFile = "testdata/golden.txt"

// goldenHasher accumulates a canonical serialization of run output.
type goldenHasher struct {
	h interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
}

func newGoldenHasher() *goldenHasher { return &goldenHasher{h: fnv.New64a()} }

func (g *goldenHasher) ints(vs ...int64) {
	for _, v := range vs {
		fmt.Fprintf(g.h, "%d,", v)
	}
}

// floats hashes exact bit patterns, not formatted decimals: two runs are
// bit-identical only if every derived ratio is too.
func (g *goldenHasher) floats(vs ...float64) {
	for _, v := range vs {
		fmt.Fprintf(g.h, "%x,", math.Float64bits(v))
	}
}

func (g *goldenHasher) str(s string) { fmt.Fprintf(g.h, "%s;", s) }

func (g *goldenHasher) stats(st core.Stats) {
	g.ints(st.Dispatches, st.Splits, st.Merges, st.Completions,
		st.EnableTouches, st.TableBuilds, st.TableEntries, st.Releases,
		st.Elevations, st.DeferredItems, st.CatchUps,
		int64(st.DispatchCost), int64(st.SplitCost), int64(st.CompleteCost),
		int64(st.TableCost), int64(st.ElevateCost), int64(st.DeferredCost),
		int64(st.SerialCost))
}

func (g *goldenHasher) snapshots(sns []Snapshot) {
	g.ints(int64(len(sns)))
	for _, sn := range sns {
		g.ints(sn.VirtualTime, sn.Tasks, sn.ComputeUnits, sn.MgmtUnits,
			sn.IdleUnits, int64(sn.Batch), int64(sn.Jobs))
		g.floats(sn.Utilization, sn.OverheadShare)
		if sn.Final {
			g.str("final")
		}
	}
}

func (g *goldenHasher) result(res *Result) {
	g.ints(res.Makespan, res.ComputeUnits, res.MgmtUnits, res.SerialUnits,
		res.IdleUnits, int64(res.Workers), int64(res.Procs),
		int64(res.Batch), int64(res.BatchChanges))
	g.floats(res.Utilization, res.WorkerUtilization, res.MgmtRatio)
	g.stats(res.Sched)
	for _, pt := range res.Phases {
		g.str(pt.Name)
		g.ints(pt.Start, pt.End, pt.RundownStart, pt.IdleUnits,
			pt.Dispatched, pt.OverlapUnits)
	}
	if res.Timeline != nil {
		g.ints(res.Timeline.BusyTotal(), res.Timeline.MgmtTotal(),
			res.Timeline.End(), res.Timeline.BucketWidth())
		for _, b := range res.Timeline.ByProc() {
			g.ints(b)
		}
	}
}

func (g *goldenHasher) multiResult(res *MultiResult) {
	g.ints(res.Makespan, res.ComputeUnits, res.MgmtUnits, res.IdleUnits,
		res.BackfillUnits, int64(res.Workers), int64(res.Procs))
	g.floats(res.Utilization)
	for _, j := range res.Jobs {
		g.str(j.Name)
		g.ints(j.Makespan, j.ComputeUnits, j.BackfillUnits, int64(j.HomeWorkers))
		g.stats(j.Sched)
	}
}

// goldenFixture is one pinned configuration. run executes it and returns
// (headline scalars for the readable part of the line, fingerprint).
type goldenFixture struct {
	name string
	run  func(t *testing.T) (headline string, hash uint64)
}

func goldenChain(t *testing.T, phases, granules int, seed uint64) *core.Program {
	t.Helper()
	prog, err := workload.Chain(enable.Identity, phases, granules,
		workload.UniformCost(100, 400, seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func goldenCasper(t *testing.T, seed uint64) *core.Program {
	t.Helper()
	prog, err := workload.CasperProgram(workload.CasperConfig{
		GranulesPerLine: 3, Cycles: 1,
		Cost:       workload.UniformCost(100, 400, seed),
		SerialCost: 100, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func goldenCheckerboard(t *testing.T) *core.Program {
	t.Helper()
	g, err := casper.NewGrid(48, 1.3, casper.HotEdgeBoundary(48))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := g.SORProgram(2, true)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func goldenOpt(grain int) core.Options {
	return core.Options{Grain: grain, Overlap: true, Costs: core.DefaultCosts()}
}

// singleFixture runs one single-program configuration with an observer
// attached and fingerprints everything.
func singleFixture(name string, build func(t *testing.T) *core.Program,
	opt core.Options, cfg Config) goldenFixture {
	return goldenFixture{name: name, run: func(t *testing.T) (string, uint64) {
		var sns []Snapshot
		cfg.Observer = func(sn Snapshot) { sns = append(sns, sn) }
		res, err := Run(build(t), opt, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := newGoldenHasher()
		g.result(res)
		g.snapshots(sns)
		head := fmt.Sprintf("makespan=%d compute=%d mgmt=%d idle=%d snaps=%d",
			res.Makespan, res.ComputeUnits, res.MgmtUnits, res.IdleUnits, len(sns))
		return head, g.h.Sum64()
	}}
}

// multiFixture runs one multi-program configuration with an observer
// attached and fingerprints everything.
func multiFixture(name string, build func(t *testing.T) []JobSpec, cfg Config) goldenFixture {
	return goldenFixture{name: name, run: func(t *testing.T) (string, uint64) {
		var sns []Snapshot
		cfg.Observer = func(sn Snapshot) { sns = append(sns, sn) }
		res, err := RunMulti(build(t), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := newGoldenHasher()
		g.multiResult(res)
		g.snapshots(sns)
		head := fmt.Sprintf("makespan=%d compute=%d mgmt=%d idle=%d snaps=%d",
			res.Makespan, res.ComputeUnits, res.MgmtUnits, res.IdleUnits, len(sns))
		return head, g.h.Sum64()
	}}
}

func goldenFixtures() []goldenFixture {
	var fx []goldenFixture

	// Single-program: every management model on the fine identity chain
	// at two machine sizes, covering the typed event heap, the request
	// ring, the adaptive shard path (fixed and tuned batch), and the
	// async ready-buffer protocol.
	models := []MgmtModel{StealsWorker, Dedicated, Sharded, Adaptive, Async}
	for _, m := range models {
		for _, procs := range []int{8, 48} {
			cfg := Config{Procs: procs, Mgmt: m}
			fx = append(fx, singleFixture(
				fmt.Sprintf("chain/%v/p%d", m, procs),
				func(t *testing.T) *core.Program { return goldenChain(t, 4, 1024, 1986) },
				goldenOpt(4), cfg))
		}
	}
	// Adaptive with the online batch controller (tuner path).
	adaptOpt := goldenOpt(2)
	adaptOpt.AdaptiveBatch = true
	fx = append(fx, singleFixture("chain/adaptive-tuned/p16",
		func(t *testing.T) *core.Program { return goldenChain(t, 4, 2048, 7) },
		adaptOpt, Config{Procs: 16, Mgmt: Adaptive, Batch: 8}))
	// Async with explicit buffer knobs.
	fx = append(fx, singleFixture("chain/async-knobs/p16",
		func(t *testing.T) *core.Program { return goldenChain(t, 4, 2048, 7) },
		goldenOpt(2), Config{Procs: 16, Mgmt: Async, ReadyCap: 24, LowWater: 3}))

	// CASPER census profile (serial actions, every mapping kind) and the
	// checkerboard SOR grid (seam mapping) under the paper's two models.
	for _, m := range []MgmtModel{StealsWorker, Sharded} {
		cfg := Config{Procs: 32, Mgmt: m}
		fx = append(fx, singleFixture(fmt.Sprintf("casper/%v/p32", m),
			func(t *testing.T) *core.Program { return goldenCasper(t, 11) },
			goldenOpt(2), cfg))
	}
	fx = append(fx, singleFixture("checkerboard/steals-worker/p16",
		goldenCheckerboard, goldenOpt(16), Config{Procs: 16, Mgmt: StealsWorker}))

	// Multi-program: the three models the seed engine supported, at two
	// job counts, with mixed priorities and weights so the backfill
	// order, deficit replenishment, and rebalance paths are all pinned.
	twoJobs := func(t *testing.T) []JobSpec {
		return []JobSpec{
			{Name: "a", Prog: goldenChain(t, 4, 768, 1), Opt: goldenOpt(4), Weight: 2},
			{Name: "b", Prog: goldenChain(t, 3, 384, 2), Opt: goldenOpt(2), Priority: 1},
		}
	}
	fiveJobs := func(t *testing.T) []JobSpec {
		specs := make([]JobSpec, 5)
		for i := range specs {
			specs[i] = JobSpec{
				Name: fmt.Sprintf("j%d", i),
				Prog: goldenChain(t, 3, 256+64*i, uint64(10+i)),
				Opt:  goldenOpt(2 + i%3),
				// Mixed priorities and weights: exercise the sorted
				// backfill order and largest-remainder home shares.
				Priority: i % 2,
				Weight:   1 + i%3,
			}
		}
		return specs
	}
	for _, m := range []MgmtModel{StealsWorker, Dedicated, Sharded} {
		fx = append(fx, multiFixture(fmt.Sprintf("multi2/%v/p8", m), twoJobs, Config{Procs: 8, Mgmt: m}))
		fx = append(fx, multiFixture(fmt.Sprintf("multi5/%v/p32", m), fiveJobs, Config{Procs: 32, Mgmt: m}))
	}
	// Mixed casper+chain tenancy: serial actions inside a shared pool
	// (the openAt gate) pinned too.
	fx = append(fx, multiFixture("multi-casper/steals-worker/p16",
		func(t *testing.T) []JobSpec {
			return []JobSpec{
				{Name: "casper", Prog: goldenCasper(t, 3), Opt: goldenOpt(2)},
				{Name: "chain", Prog: goldenChain(t, 3, 512, 4), Opt: goldenOpt(4), Priority: 1},
			}
		}, Config{Procs: 16, Mgmt: StealsWorker}))

	return fx
}

// TestGoldenDeterminism compares every fixture's fingerprint against
// testdata/golden.txt (or rewrites the file under -update).
func TestGoldenDeterminism(t *testing.T) {
	fixtures := goldenFixtures()
	got := make(map[string]string, len(fixtures))
	var order []string
	for _, fx := range fixtures {
		head, hash := fx.run(t)
		got[fx.name] = fmt.Sprintf("%s %016x %s", fx.name, hash, head)
		order = append(order, fx.name)
	}
	if *updateGolden {
		sort.Strings(order)
		var b strings.Builder
		b.WriteString("# Golden engine fingerprints: <fixture> <fnv64a> <headline scalars>\n")
		b.WriteString("# Regenerate with: go test ./internal/sim -run TestGolden -update\n")
		for _, name := range order {
			b.WriteString(got[name])
			b.WriteString("\n")
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(order), goldenFile)
		return
	}

	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		want[name] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		w, ok := want[fx.name]
		if !ok {
			t.Errorf("fixture %q not in golden file (run -update?)", fx.name)
			continue
		}
		if got[fx.name] != w {
			t.Errorf("fixture %q diverged from the pinned engine:\n  got  %s\n  want %s",
				fx.name, got[fx.name], w)
		}
		delete(want, fx.name)
	}
	for name := range want {
		t.Errorf("golden file has stale fixture %q (run -update?)", name)
	}
}
