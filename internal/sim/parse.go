package sim

import (
	"fmt"
	"strings"
)

// ModelNames lists the accepted ParseModel spellings, one per model, in
// declaration order. CLI help strings and parse errors are built from it
// so the enumeration cannot drift from the parser.
func ModelNames() []string {
	return []string{"steals-worker", "dedicated", "sharded", "adaptive", "async"}
}

// ParseModel parses a management-model name as written in CLI flags.
// Matching is case-insensitive and tolerates surrounding whitespace;
// "steals" is accepted as shorthand for "steals-worker". The error
// enumerates the valid names.
func ParseModel(s string) (MgmtModel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "steals-worker", "steals":
		return StealsWorker, nil
	case "dedicated":
		return Dedicated, nil
	case "sharded":
		return Sharded, nil
	case "adaptive":
		return Adaptive, nil
	case "async":
		return Async, nil
	}
	return 0, fmt.Errorf("sim: unknown management model %q (valid models: %s)",
		s, strings.Join(ModelNames(), "|"))
}
