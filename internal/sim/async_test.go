package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/workload"
)

// TestAsyncModelCompletes: the Async model runs programs to completion
// with all compute conserved and every processor computing (the dedicated
// executive is extra, not stolen).
func TestAsyncModelCompletes(t *testing.T) {
	prog := twoPhase(t, 256, enable.NewIdentity())
	res, err := Run(prog,
		core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: Async})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 8 || res.Procs != 8 {
		t.Errorf("workers=%d procs=%d, want 8/8", res.Workers, res.Procs)
	}
	if res.ComputeUnits != int64(prog.TotalCost()) {
		t.Errorf("compute=%d, want %d", res.ComputeUnits, prog.TotalCost())
	}
	if res.MgmtUnits == 0 {
		t.Error("async model charged no management")
	}
	if res.Utilization > 1.0000001 {
		t.Errorf("utilization %v > 1", res.Utilization)
	}
}

// TestAsyncModelDeterministic: identical inputs produce identical results.
func TestAsyncModelDeterministic(t *testing.T) {
	run := func() *Result {
		prog, err := workload.Chain(enable.Identity, 3, 512,
			workload.UniformCost(100, 400, 1986), 1986)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(prog, core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()},
			Config{Procs: 12, Mgmt: Async, ReadyCap: 16, LowWater: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MgmtUnits != b.MgmtUnits || a.IdleUnits != b.IdleUnits {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestAsyncBeatsStealsWorkerFineGrain: the central comparison the model
// exists to price. At fine grain with real granule work, the steals-worker
// executive costs a whole processor and makes every ask wait its turn at
// the serial server; the async model computes on all P processors and
// pops the ready-buffer for free, so it must strictly shorten the
// makespan. (On a purely management-bound workload the two models tie —
// one serial server is the bottleneck either way; that is correct
// pricing, not a gain the async executive can claim.)
func TestAsyncBeatsStealsWorkerFineGrain(t *testing.T) {
	build := func() *core.Program {
		prog, err := workload.Chain(enable.Identity, 2, 1024,
			workload.UniformCost(40, 120, 1986), 1986)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	opt := func() core.Options {
		return core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}
	}
	serial, err := Run(build(), opt(), Config{Procs: 8, Mgmt: StealsWorker})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(build(), opt(), Config{Procs: 8, Mgmt: Async})
	if err != nil {
		t.Fatal(err)
	}
	if async.Makespan >= serial.Makespan {
		t.Errorf("async makespan %d not below steals-worker %d", async.Makespan, serial.Makespan)
	}
	if async.Utilization <= serial.Utilization {
		t.Errorf("async utilization %.3f not above steals-worker %.3f",
			async.Utilization, serial.Utilization)
	}
	if async.ComputeUnits != serial.ComputeUnits {
		t.Errorf("compute diverged: %d vs %d", async.ComputeUnits, serial.ComputeUnits)
	}
}

// TestAsyncReadyCapMatters pins the ready-buffer knob to behaviour, not
// just plumbing. The workload queues a long deferred composite-map build
// (reverse-indirect mapping, small MapChunk, so the build occupies the
// dedicated server across many chunks). A well-sized buffer lets workers
// compute through the build — the overlap the low-water rule exists for —
// while a one-slot buffer makes every dispatch wait behind the build
// chunk in progress, so the generous buffer must finish strictly sooner.
func TestAsyncReadyCapMatters(t *testing.T) {
	const n = 2048
	run := func(readyCap int) *Result {
		prog, err := core.NewProgram(
			&core.Phase{
				Name: "produce", Granules: n,
				Cost: workload.UniformCost(20, 80, 7),
				Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
					return []granule.ID{r, (r + 1) % granule.ID(n)}
				}),
			},
			&core.Phase{Name: "gather", Granules: n, Cost: workload.UniformCost(20, 80, 11)},
		)
		if err != nil {
			t.Fatal(err)
		}
		costs := core.DefaultCosts()
		costs.MapChunk = 8
		res, err := Run(prog, core.Options{
			Grain: 2, Overlap: true, Elevate: true, Costs: costs,
		}, Config{Procs: 8, Mgmt: Async, ReadyCap: readyCap})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	starved, fed := run(1), run(64)
	if fed.Makespan >= starved.Makespan {
		t.Errorf("64-slot buffer makespan %d not below one-slot buffer %d",
			fed.Makespan, starved.Makespan)
	}
	if fed.ComputeUnits != starved.ComputeUnits {
		t.Errorf("compute diverged: %d vs %d", fed.ComputeUnits, starved.ComputeUnits)
	}
}

// TestAsyncDeferredOverlapLowWater: with a deferred composite-map build
// queued and the buffer kept above the low-water mark, the server absorbs
// the build while workers compute; the run completes with the deferred
// items accounted.
func TestAsyncDeferredOverlapLowWater(t *testing.T) {
	n := 512
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "produce", Granules: n,
			Enable: enable.NewReverse(func(r granule.ID) []granule.ID {
				return []granule.ID{r, (r + 1) % granule.ID(n)}
			}),
		},
		&core.Phase{Name: "gather", Granules: n},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, core.Options{
		Grain: 4, Overlap: true, Elevate: true, Costs: core.DefaultCosts(),
	}, Config{Procs: 8, Mgmt: Async, ReadyCap: 16, LowWater: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.DeferredItems == 0 {
		t.Error("no deferred management queued — the low-water overlap path went unexercised")
	}
	if res.ComputeUnits != int64(prog.TotalCost()) {
		t.Errorf("compute=%d, want %d", res.ComputeUnits, prog.TotalCost())
	}
}

// TestAsyncConservationRandomPrograms drives random programs through the
// Async model and checks the accounting identities that must hold for any
// schedule — the same invariants the main conservation sweep checks for
// the paper's models.
func TestAsyncConservationRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(41986))
	for iter := 0; iter < 40; iter++ {
		nPhases := 1 + rng.Intn(5)
		phases := make([]*core.Phase, nPhases)
		var serialSum core.Cost
		for i := range phases {
			phases[i] = &core.Phase{
				Name:     string(rune('a' + i)),
				Granules: rng.Intn(300),
				Cost:     workload.UniformCost(1, core.Cost(1+rng.Intn(200)), rng.Uint64()),
			}
			if i > 0 && rng.Intn(3) == 0 {
				sc := core.Cost(rng.Intn(50))
				phases[i].SerialCost = sc
				serialSum += sc
			}
		}
		for i := 0; i < nPhases-1; i++ {
			if phases[i+1].SerialCost > 0 {
				continue // must stay null
			}
			switch rng.Intn(4) {
			case 0:
				// null
			case 1:
				phases[i].Enable = enable.NewUniversal()
			case 2:
				phases[i].Enable = enable.NewIdentity()
			case 3:
				n := phases[i].Granules
				if n == 0 {
					phases[i].Enable = enable.NewUniversal()
					continue
				}
				phases[i].Enable = enable.NewReverse(func(r granule.ID) []granule.ID {
					return []granule.ID{r % granule.ID(n)}
				})
			}
		}
		prog, err := core.NewProgram(phases...)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		procs := 1 + rng.Intn(13)
		res, err := Run(prog, core.Options{
			Grain:      1 + rng.Intn(30),
			Overlap:    rng.Intn(3) != 0,
			Elevate:    rng.Intn(2) == 0,
			InlineMaps: rng.Intn(2) == 0,
			Split:      core.SplitPolicy(rng.Intn(2)),
			SuccSplit:  core.SuccSplitMode(rng.Intn(2)),
			Costs:      core.DefaultCosts(),
		}, Config{
			Procs: procs, Mgmt: Async,
			ReadyCap: rng.Intn(40), LowWater: rng.Intn(10),
		})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		if want := int64(prog.TotalCost()); res.ComputeUnits != want {
			t.Fatalf("iter %d: compute %d != program cost %d", iter, res.ComputeUnits, want)
		}
		if res.Utilization > 1.0000001 {
			t.Fatalf("iter %d: utilization %v > 1", iter, res.Utilization)
		}
		if res.SerialUnits != int64(serialSum) {
			t.Fatalf("iter %d: serial %d != declared %d", iter, res.SerialUnits, serialSum)
		}
		for i, pt := range res.Phases {
			if prog.Phases[i].Granules == 0 {
				continue
			}
			if pt.Start < 0 || pt.End > res.Makespan || pt.End < pt.Start {
				t.Fatalf("iter %d: phase %d window [%d,%d] outside [0,%d]",
					iter, i, pt.Start, pt.End, res.Makespan)
			}
		}
	}
}

// TestMultiAcceptsEveryModel: RunMulti prices every management model —
// the Async ready buffer and the Adaptive shards included — and each run
// executes every granule of every job.
func TestMultiAcceptsEveryModel(t *testing.T) {
	for _, model := range []MgmtModel{StealsWorker, Dedicated, Sharded, Adaptive, Async} {
		jobs := []JobSpec{
			{Prog: twoPhase(t, 64, enable.NewIdentity()),
				Opt: core.Options{Grain: 4, Costs: core.DefaultCosts()}},
			{Prog: twoPhase(t, 48, enable.NewIdentity()),
				Opt: core.Options{Grain: 4, Costs: core.DefaultCosts()}},
		}
		want := int64(jobs[0].Prog.TotalCost() + jobs[1].Prog.TotalCost())
		res, err := RunMulti(jobs, Config{Procs: 4, Mgmt: model})
		if err != nil {
			t.Errorf("%v: RunMulti rejected a supported model: %v", model, err)
			continue
		}
		if res.ComputeUnits != want {
			t.Errorf("%v: compute units %d, want %d", model, res.ComputeUnits, want)
		}
	}
}
