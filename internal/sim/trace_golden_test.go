package sim

// TestTraceOrderGolden pins the trace's equal-virtual-timestamp ordering
// contract (documented in trace.go): at one tick, (1) the KMark fires at
// the top of the loop iteration before the event it serves, (2) each
// KComplete precedes the scheduler absorption that enables further
// dispatches (so any enabled KDispatch carries a larger Seq), and (3)
// otherwise events follow the engine's FIFO/queue tie-break order. The
// full merged event stream of fixed small configurations — every field
// of every event — is fingerprinted against testdata/trace_golden.txt.
// A change that reorders even two same-tick events changes the hash.
//
// Regenerate with `go test ./internal/sim -run TestTraceOrder -update`
// ONLY when the ordering contract is being changed intentionally, and
// update the contract documentation in trace.go in the same commit.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

const traceGoldenFile = "testdata/trace_golden.txt"

func traceFingerprint(t *testing.T, name string, tr *trace.Trace) (string, uint64) {
	t.Helper()
	if tr == nil || tr.Len() == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	g := newGoldenHasher()
	g.str(tr.Meta.Model)
	g.ints(int64(tr.Meta.Workers), int64(tr.Len()))
	for i := range tr.Events {
		ev := &tr.Events[i]
		// Seq is deliberately not hashed: it is the merge key, and the
		// merged order already reflects it. Hashing the payload in merged
		// order pins exactly the ordering contract.
		g.ints(ev.Time, int64(ev.Kind), int64(ev.Proc), int64(ev.Job),
			int64(ev.Phase), int64(ev.Lo), int64(ev.Hi), ev.Arg)
	}
	head := fmt.Sprintf("events=%d dispatches=%d completes=%d",
		tr.Len(), tr.Count(trace.KDispatch), tr.Count(trace.KComplete))
	return head, g.h.Sum64()
}

func TestTraceOrderGolden(t *testing.T) {
	type fixture struct {
		name string
		run  func(t *testing.T) *trace.Trace
	}
	single := func(name string, model MgmtModel, procs, phases, granules int, opt func(*Config)) fixture {
		return fixture{name: name, run: func(t *testing.T) *trace.Trace {
			cfg := Config{Procs: procs, Mgmt: model,
				Trace: trace.NewRecorder(trace.Meta{}, procs)}
			if opt != nil {
				opt(&cfg)
			}
			if _, err := Run(goldenChain(t, phases, granules, 1986), goldenOpt(4), cfg); err != nil {
				t.Fatal(err)
			}
			return cfg.Trace.Take()
		}}
	}
	fixtures := []fixture{
		// The tie-break-heavy configuration: a small machine with plenty of
		// same-tick completions and refills under each management model.
		single("trace/steals-worker/p8", StealsWorker, 8, 3, 256, nil),
		single("trace/sharded/p8", Sharded, 8, 3, 256, nil),
		single("trace/async/p8", Async, 8, 3, 256, nil),
		{name: "trace/adaptive-tuned/p8", run: func(t *testing.T) *trace.Trace {
			opt := goldenOpt(2)
			opt.AdaptiveBatch = true
			cfg := Config{Procs: 8, Mgmt: Adaptive, Batch: 4,
				Trace: trace.NewRecorder(trace.Meta{}, 8)}
			if _, err := Run(goldenChain(t, 3, 512, 7), opt, cfg); err != nil {
				t.Fatal(err)
			}
			return cfg.Trace.Take()
		}},
		{name: "trace/multi2/p8", run: func(t *testing.T) *trace.Trace {
			rec := trace.NewRecorder(trace.Meta{}, 8)
			specs := []JobSpec{
				{Name: "a", Prog: goldenChain(t, 3, 256, 1), Opt: goldenOpt(4), Weight: 2},
				{Name: "b", Prog: goldenChain(t, 3, 128, 2), Opt: goldenOpt(2), Priority: 1},
			}
			if _, err := RunMulti(specs, Config{Procs: 8, Mgmt: StealsWorker, Trace: rec}); err != nil {
				t.Fatal(err)
			}
			return rec.Take()
		}},
	}

	got := make(map[string]string, len(fixtures))
	var order []string
	for _, fx := range fixtures {
		head, hash := traceFingerprint(t, fx.name, fx.run(t))
		got[fx.name] = fmt.Sprintf("%s %016x %s", fx.name, hash, head)
		order = append(order, fx.name)
	}
	if *updateGolden {
		sort.Strings(order)
		var b strings.Builder
		b.WriteString("# Trace ordering fingerprints: <fixture> <fnv64a> <headline>\n")
		b.WriteString("# Pins the equal-virtual-timestamp event order documented in trace.go.\n")
		b.WriteString("# Regenerate with: go test ./internal/sim -run TestTraceOrder -update\n")
		for _, name := range order {
			b.WriteString(got[name])
			b.WriteString("\n")
		}
		if err := os.MkdirAll(filepath.Dir(traceGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(traceGoldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(order), traceGoldenFile)
		return
	}

	f, err := os.Open(traceGoldenFile)
	if err != nil {
		t.Fatalf("trace golden file missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		want[name] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		w, ok := want[fx.name]
		if !ok {
			t.Errorf("fixture %q not in trace golden file (run -update?)", fx.name)
			continue
		}
		if got[fx.name] != w {
			t.Errorf("fixture %q: same-tick trace order diverged from the documented contract:\n  got  %s\n  want %s",
				fx.name, got[fx.name], w)
		}
		delete(want, fx.name)
	}
	for name := range want {
		t.Errorf("trace golden file has stale fixture %q (run -update?)", name)
	}
}
