package sim

// This file is the engine's hot-path plumbing: concrete 4-ary min-heaps
// for the two event queues and a compacting FIFO ring for the
// single-program request queue. The previous engine used container/heap,
// which costs an interface box per Push and per Pop (the `any`
// conversions) plus dynamic dispatch on every comparison; at millions of
// granules those allocations dominated the profile. The typed heaps
// allocate only when the backing array grows — in steady state, never —
// and the 4-ary shape halves the tree depth of a binary heap, trading
// three extra (cache-resident) sibling comparisons per level for half the
// cache-missing parent/child hops.
//
// Determinism: both heaps order by a strict total order (time, then the
// unique insertion sequence number; the multi queue additionally ranks
// asks before completions at equal times). A total order means heap
// arity and sift implementation cannot affect pop order, so the switch
// from container/heap is invisible to schedules — the golden suite pins
// this.

// eventHeap is the single-program completion-event queue: a 4-ary
// min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) before(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.before(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if s.before(s[k], s[m]) {
				m = k
			}
		}
		if !s.before(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

func (h eventHeap) peekTime() (int64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// mqueue is the multi-program queue of asks and completions, ordered by
// (at, ask-before-completion, seq). It is a calendar queue rather than a
// heap: the engine's pushes are monotone (every event is scheduled at or
// after the time of the event being processed — completion finishes,
// re-asks, reopen retries and task-end events all derive from the
// current event's time), so near-future events land in a ring of
// per-tick buckets with O(1) push and pop, and only far-future events
// (beyond the mqWindow horizon — long serial actions, long tasks) take
// the slow path through a small overflow heap. With tens of busy
// workers the old heap's sift costs — two pops and pushes per task
// across a ~P-deep heap — were the single largest line in the engine
// profile; the calendar pop is a bounds check and an index increment.
//
// Payloads are stored once, in a freelisted slot array; buckets and the
// overflow heap hold 4-byte slot indices. With many workers the asks of
// a whole machine cluster on a few ticks, and index lists keep each
// bucket's high-water footprint at 4 bytes per item instead of a full
// ~90-byte mitem copy. Overflow migration moves an index, not a
// payload.
//
// Determinism: the required order is a strict total order, and the
// bucket layout reproduces it literally — buckets advance in time
// order, each bucket holds asks and completions in separate
// append-order (= seq-order) lists, and asks drain before completions.
// The overflow heap orders by the same key, and items migrate from it
// into buckets whenever the window advances, before any same-tick
// bucket pushes can land behind them, so FIFO-within-tick is preserved
// across the two structures. The golden suite pins the equivalence.
type mqueue struct {
	base    int64 // time of buckets[cursor]; the window is [base, base+mqWindow)
	cursor  int   // ring index of the bucket at time base
	minTime int64 // earliest queued time when minOK; otherwise a lower-bound scan hint
	minOK   bool
	n       int // items in the bucket window
	buckets []mbucket
	slots   []mitem // shared payload store
	free    []int32 // retired slot indices
	over    []mkey  // 4-ary min-heap of events beyond the window horizon
}

type mbucket struct {
	asks   []int32 // same-tick ask slots in push (= seq) order
	dones  []int32 // same-tick completion slots in push (= seq) order
	ai, di int     // drain positions
}

type mkey struct {
	at  int64
	ord uint64 // isDone<<62 | seq
	idx int32
}

const mqDoneBit = uint64(1) << 62

func keyLess(a, b mkey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// mqWindow is the bucket horizon. It comfortably covers task durations
// and management costs at any grain the experiments use; events farther
// out are rare (phase serial actions) and pay one overflow-heap hop.
const mqWindow = 256

func (h *mqueue) alloc(it mitem) int32 {
	if n := len(h.free); n > 0 {
		idx := h.free[n-1]
		h.free = h.free[:n-1]
		h.slots[idx] = it
		return idx
	}
	h.slots = append(h.slots, it)
	return int32(len(h.slots) - 1)
}

func (h *mqueue) push(it mitem) {
	if h.n == 0 && len(h.over) == 0 {
		// Empty queue: re-anchor the window at the new event.
		if h.buckets == nil {
			h.buckets = make([]mbucket, mqWindow)
		}
		h.base = it.at
		h.cursor = 0
	}
	delta := it.at - h.base
	if delta < 0 {
		panic("sim: event pushed before the current virtual time")
	}
	idx := h.alloc(it)
	if delta < mqWindow {
		b := &h.buckets[(h.cursor+int(delta))&(mqWindow-1)]
		if it.isDone {
			b.dones = append(b.dones, idx)
		} else {
			b.asks = append(b.asks, idx)
		}
		h.n++
	} else {
		ord := uint64(it.seq)
		if it.isDone {
			ord |= mqDoneBit
		}
		h.overPush(mkey{at: it.at, ord: ord, idx: idx})
	}
	if h.minOK && it.at < h.minTime {
		h.minTime = it.at
	}
	// When !minOK, minTime is a lower-bound hint (all queued times are
	// >= it, and pushes land at >= base >= hint), so it stays valid as
	// the scan start.
}

// ensureMin locates the earliest queued time. Window items always beat
// the overflow (migration keeps every overflow time >= base+mqWindow),
// so the scan walks buckets from the hint forward and falls back to the
// overflow top only when the window is empty.
func (h *mqueue) ensureMin() {
	if h.minOK {
		return
	}
	if h.n > 0 {
		d := int(h.minTime - h.base)
		if d < 0 {
			d = 0
		}
		for ; ; d++ {
			b := &h.buckets[(h.cursor+d)&(mqWindow-1)]
			if b.ai < len(b.asks) || b.di < len(b.dones) {
				h.minTime = h.base + int64(d)
				h.minOK = true
				return
			}
		}
	}
	if len(h.over) > 0 {
		h.minTime = h.over[0].at
		h.minOK = true
	}
}

func (h *mqueue) pop() mitem {
	h.ensureMin()
	if h.n == 0 {
		// The earliest event lives in the overflow: jump the window.
		h.base = h.minTime
		h.cursor = 0
		h.migrate()
	} else if h.minTime > h.base {
		h.cursor = (h.cursor + int(h.minTime-h.base)) & (mqWindow - 1)
		h.base = h.minTime
		if len(h.over) > 0 {
			h.migrate()
		}
	}
	b := &h.buckets[h.cursor]
	var idx int32
	if b.ai < len(b.asks) {
		idx = b.asks[b.ai]
		b.ai++
	} else {
		idx = b.dones[b.di]
		b.di++
	}
	h.n--
	if b.ai == len(b.asks) && b.di == len(b.dones) {
		b.asks = b.asks[:0]
		b.dones = b.dones[:0]
		b.ai, b.di = 0, 0
		h.minOK = false // minTime remains the scan hint
	}
	h.free = append(h.free, idx)
	return h.slots[idx]
}

// migrate moves overflow events that the advanced window now covers into
// their buckets. It runs on every window advance, before any new pushes
// can land in those buckets, so migrated items keep their seq-order
// position in the per-tick lists.
func (h *mqueue) migrate() {
	for len(h.over) > 0 && h.over[0].at < h.base+mqWindow {
		k := h.overPop()
		b := &h.buckets[(h.cursor+int(k.at-h.base))&(mqWindow-1)]
		if k.ord >= mqDoneBit {
			b.dones = append(b.dones, k.idx)
		} else {
			b.asks = append(b.asks, k.idx)
		}
		h.n++
	}
}

func (h *mqueue) peekTime() (int64, bool) {
	if h.n == 0 && len(h.over) == 0 {
		return 0, false
	}
	h.ensureMin()
	return h.minTime, true
}

// askWouldPopFirst reports whether a fresh ask pushed now at time at
// would be the very next item popped: nothing queued orders before a new
// ask at at (an existing ask at the same time has a lower seq and wins;
// an existing completion at the same time loses — asks drain first).
// The completion path uses this to serve a worker's re-ask inline,
// skipping a queue round trip.
func (h *mqueue) askWouldPopFirst(at int64) bool {
	if h.n == 0 && len(h.over) == 0 {
		return true
	}
	h.ensureMin()
	if h.minTime != at {
		return h.minTime > at
	}
	if h.n > 0 {
		b := &h.buckets[(h.cursor+int(h.minTime-h.base))&(mqWindow-1)]
		return b.ai >= len(b.asks)
	}
	return h.over[0].ord >= mqDoneBit
}

// overPush/overPop maintain the overflow as a 4-ary min-heap of 20-byte
// keys ordered by keyLess; payloads stay in the shared slot array.
func (h *mqueue) overPush(k mkey) {
	s := append(h.over, k)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !keyLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	h.over = s
}

func (h *mqueue) overPop() mkey {
	s := h.over
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	h.over = s
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if keyLess(s[k], s[m]) {
				m = k
			}
		}
		if !keyLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// reqRing is the single-program management FIFO. The previous engine
// popped by reslicing (reqs = reqs[1:]) and pushed with append — the
// backing array marched forward and reallocated every cap-len pops. The
// ring pops by advancing a head index and compacts in place when a push
// hits the array's end with dead space at the front, so a warmed-up run
// never allocates for requests again.
type reqRing struct {
	buf  []request
	head int
}

func (r *reqRing) push(q request) {
	if r.head > 0 && len(r.buf) == cap(r.buf) {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
	r.buf = append(r.buf, q)
}

func (r *reqRing) pop() request {
	q := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
	return q
}

func (r *reqRing) len() int { return len(r.buf) - r.head }

// parkedSet tracks parked workers as a bitset so wake passes iterate
// only the set bits instead of scanning every worker: with a thousand
// busy workers and nobody parked, a wake is sixteen zero-word loads, not
// a thousand boolean tests. Iteration is in ascending worker order —
// the same order the old linear scan used, so wake fairness (and the
// golden schedules) are unchanged.
type parkedSet struct {
	words []uint64
}

func newParkedSet(n int) parkedSet {
	return parkedSet{words: make([]uint64, (n+63)/64)}
}

func (p *parkedSet) set(w int)   { p.words[w>>6] |= 1 << (w & 63) }
func (p *parkedSet) clear(w int) { p.words[w>>6] &^= 1 << (w & 63) }
