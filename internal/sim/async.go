package sim

import (
	"repro/internal/core"
	"repro/internal/fault"
)

// This file is the Async management model: the Dedicated model (a
// separate executive processor beside all P workers) extended with the
// async executive's ready-buffer protocol, so the virtual-time pricing
// matches what internal/executive's AsyncManager does on hardware:
//
//   - the dedicated server keeps a bounded ready-buffer (Config.ReadyCap)
//     topped up with batched NextTasks pulls, each charged on the
//     server's own lane;
//   - a worker's ask pops the buffer for free — the hardware channel
//     receive — so worker latency is decoupled from management service;
//     each buffered task carries the virtual time the server finished
//     producing it, and a dispatch starts no earlier than that;
//   - completions queue to the server and are applied in one fused
//     CompleteBatch whenever the server has caught up — under load they
//     accumulate, exactly like the MPSC queue backing up behind a busy
//     management goroutine, which is where completion-batch fusion pays;
//   - deferred management is absorbed on the server whenever the buffer
//     is above Config.LowWater (the overlap-with-computation rule), on
//     top of the generic idle-executive absorption in the main loop.
//
// Like Dedicated, the server's processor is not part of the utilization
// denominator: Procs counts the computing workers only, which is the
// resource trade the paper's steals-worker/dedicated comparison prices.

// asyncSlot is one ready-buffer entry: a task plus the virtual time the
// server finished producing it.
type asyncSlot struct {
	task core.Task
	at   int64
}

// asyncInit sizes the ready buffer and low-water mark with the same
// defaults as the hardware manager (executive.Config).
func (s *state) asyncInit(cfg Config) {
	rc := cfg.ReadyCap
	if rc <= 0 {
		rc = 2 * s.workers
		if rc < 8 {
			rc = 8
		}
	}
	lw := cfg.LowWater
	if lw <= 0 {
		lw = rc / 4
		if lw < 1 {
			lw = 1
		}
	}
	if lw >= rc {
		lw = rc - 1
	}
	s.readyCap, s.lowWater = rc, lw
}

// asyncTopUp pulls one batched NextTasks refill into the ready buffer's
// free slots, charging the server and stamping each slot with its
// production time. It reports whether anything was buffered.
func (s *state) asyncTopUp(now int64) bool {
	free := s.readyCap - len(s.aready)
	if free <= 0 {
		return false
	}
	ts, dc := s.sched.NextTasks(s.abuf[:0], free)
	fin := s.serve(now, dc)
	for _, task := range ts {
		s.aready = append(s.aready, asyncSlot{task: task, at: fin})
	}
	s.abuf = ts[:0]
	if s.met != nil && len(ts) > 0 {
		s.met.ReadyOccupancy.Set(int64(len(s.aready)))
	}
	return len(ts) > 0
}

// asyncService is one pass of the dedicated server: drain queued
// completions when caught up (force drains regardless — the main loop's
// last-resort path when no worker event will arrive to trigger one),
// top the ready buffer up, and overlap deferred management while the
// buffer is above the low-water mark. Parked workers are woken when the
// pass buffered anything.
func (s *state) asyncService(now int64, force bool) {
	buffered := false
	for {
		worked := false
		if len(s.acomp) > 0 && (force || s.serverFree <= now) {
			cost := s.sched.CompleteBatch(s.acomp)
			fin := s.serve(now, cost)
			for _, ct := range s.acomp {
				if pt := &s.phases[ct.Phase]; fin > pt.End {
					pt.End = fin
				}
			}
			s.acomp = s.acomp[:0]
			worked = true
		}
		if s.asyncTopUp(now) {
			worked = true
			buffered = true
		}
		if !worked {
			break
		}
	}
	// At most one deferred unit per pass — the hardware cycle's rule
	// (overlap deferred work with computation while workers are fed), and
	// in virtual time also a modeling necessity: the buffer cannot drain
	// mid-pass, so a per-iteration gate would let one pass absorb the
	// whole deferred queue while workers starve behind it. Bulk
	// absorption belongs to the main loop's idle-executive path, which is
	// bounded by the event horizon. A unit that released work gets one
	// refill attempt so the release reaches the buffer this pass.
	if s.sched.HasDeferred() && len(s.aready) > s.lowWater {
		if cost, ok := s.sched.DeferredMgmt(); ok {
			s.serve(now, cost)
			if s.asyncTopUp(now) {
				buffered = true
			}
		}
	}
	if buffered {
		s.wakeAsync()
	}
}

// wakeAsync re-queues asks for parked workers, one per buffered task,
// stamped with the task's production time (a worker's idle ends when a
// task exists for it, not when the server's lane frees).
func (s *state) wakeAsync() {
	if s.parkedN > 0 && s.plan != nil && s.plan.DropWakeup() {
		s.noteFault(s.serverFree, -1, fault.DropWakeup)
		return
	}
	avail := len(s.aready)
	i := 0
	for w := 0; w < s.workers && i < avail; w++ {
		if s.parked[w] {
			at := s.aready[i].at
			if s.parkedA[w] > at {
				at = s.parkedA[w]
			}
			s.unpark(w, at)
			s.reqs.push(request{at: at, proc: w})
			i++
		}
	}
}

// asyncAsk serves a worker's ask: pop the ready buffer for free, or park.
// The server gets a pass on every ask — the background thread is always
// running; an event is just the moment virtual time can observe it.
func (s *state) asyncAsk(req request) {
	if len(s.aready) == 0 {
		s.asyncService(req.at, false)
	}
	if len(s.aready) == 0 {
		s.park(req.proc, req.at)
		return
	}
	sl := s.aready[0]
	s.aready = s.aready[1:]
	at := req.at
	if sl.at > at {
		at = sl.at
	}
	if s.met != nil {
		s.met.ReadyOccupancy.Set(int64(len(s.aready)))
		s.met.DispatchWait.Observe(at - req.at)
	}
	s.dispatch(req.proc, sl.task, at)
	// Top the buffer back up behind the pop so the next ask finds it warm.
	s.asyncService(at, false)
}

// asyncComplete queues a completion to the server. The worker asks for
// new work immediately — it hands the completion off and never waits on
// management, which is the async executive's defining property.
func (s *state) asyncComplete(req request) {
	s.acomp = append(s.acomp, req.task)
	if req.at > s.lastDone {
		s.lastDone = req.at
	}
	if pt := &s.phases[req.task.Phase]; req.at > pt.End {
		pt.End = req.at
	}
	s.asyncService(req.at, false)
	s.reqs.push(request{at: req.at, proc: req.proc})
}
