package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
)

// Review probe: Adaptive multi + SuccSplitDeferred sweep, catching panics.
func TestReviewAdaptiveDeferredSweep(t *testing.T) {
	for _, procs := range []int{4, 8, 16, 32, 64} {
		for _, batch := range []int{2, 4, 8, 16} {
			for _, n := range []int{64, 128, 256, 512} {
				name := fmt.Sprintf("p%d_b%d_n%d", procs, batch, n)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("%s: PANIC: %v", name, r)
						}
					}()
					jobs := []JobSpec{
						{Name: "a", Prog: twoPhase(t, n, enable.NewIdentity()),
							Opt: core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts(),
								IdentityVia: core.IdentityConflictQueue, SuccSplit: core.SuccSplitDeferred}},
						{Name: "b", Prog: twoPhase(t, n/2, enable.NewIdentity()),
							Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts(),
								IdentityVia: core.IdentityConflictQueue, SuccSplit: core.SuccSplitDeferred}, Priority: 1},
					}
					_, err := RunMulti(jobs, Config{Procs: procs, Mgmt: Adaptive, Batch: batch})
					if err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}()
			}
		}
	}
}
