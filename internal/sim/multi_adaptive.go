package sim

import (
	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/trace"
)

// This file is the Adaptive management model in multi-program mode: the
// single-program batched-shard protocol (sim.go's adaptiveAsk /
// adaptiveComplete) with each worker's shard tagged by the job its last
// refill pulled from, so the virtual-time pricing covers what sharded
// batching costs a tenant machine:
//
//   - a worker pops its local shard for free while tasks remain — the
//     whole point of batching — and the shard's tasks all belong to one
//     job (the tag);
//   - a refill visit FLUSHES the shard's completion batch to its job
//     before probing for new work, so a worker switching jobs can never
//     strand completions of the job it leaves (flush-before-switch);
//     the probe order is the dispatch policy's candidate walk — home
//     first, then backfill by (priority, deficit, index) — with the
//     deficit credit for a foreign refill charged for the whole pulled
//     batch at pull time;
//   - one Acquire covers the combined flush+refill visit (the visited
//     job's own Acquire cost — each job prices its own lock), exactly as
//     the single-program model charges one per lock visit;
//   - starvation is priced pool-wide: ONE hoarded-idle integral
//     (min(parked workers, hoarded tasks) over virtual time) and ONE
//     controller retune the shared batch knobs for the whole machine,
//     seeded from Config.Batch and enabled by Options.AdaptiveBatch on
//     any job.
//
// Conservation holds by construction: a shard's pending tasks keep their
// job from finishing until the owning worker dispatches and completes
// them (and the worker never parks while its shard holds tasks), and a
// parked worker always has an empty shard — its last refill visit flushed
// the completion batch before giving up.

// mshard is one worker's local state under the Adaptive model: the job
// tag, the task buffer a refill filled (tasks[next:] still pending), the
// completion batch awaiting a flush, and the NextTasks scratch. The tag
// covers both buffers: a worker completes only tasks it dispatched from
// its own shard, and flush-before-switch empties the completion batch
// before the tag can change.
type mshard struct {
	job   int
	tasks []core.Task
	next  int
	done  []core.Task
	buf   []core.Task
}

// madaptiveInit sets the pool-wide batch knobs, the per-worker shards,
// and — when any job opts into adaptive batching — the shared controller,
// with the same defaults and epoch sizing as the single-program model.
func (s *mstate) madaptiveInit(cfg Config, totalCost int64) {
	b := cfg.Batch
	if b <= 0 {
		b = 16
	}
	s.batchN, s.cbatchN = b, b/2
	if s.cbatchN < 1 {
		s.cbatchN = 1
	}
	for _, j := range s.jobs {
		if j.spec.Opt.AdaptiveBatch {
			s.tuner = executive.NewTuner(executive.TunerConfig{
				Cap: b, MgmtTarget: j.spec.Opt.MgmtTarget,
			})
			s.batchN, s.cbatchN = s.tuner.Cap(), s.tuner.Batch()
			break
		}
	}
	s.mab = make([]mshard, s.workers)
	for i := range s.mab {
		s.mab[i].job = -1
	}
	// Observation epochs: aim for ~100 per run, as in the single-program
	// model, so the multiplicative controller has room to travel and
	// settle.
	s.epochLen = (totalCost/int64(s.workers) + 1) / 100
	if s.epochLen < 1 {
		s.epochLen = 1
	}
}

// mNoteStarve advances the pool-wide hoarded-idle integral to now
// (Adaptive model only). Call before any change to the parked count or
// the hoarded-task count; out-of-order event times only stall the
// frontier, never rewind it.
func (s *mstate) mNoteStarve(now int64) {
	if s.model != Adaptive || now <= s.hiAt {
		return
	}
	if s.parkedN > 0 && s.hoardNow > 0 {
		n := int64(s.parkedN)
		if int64(s.hoardNow) < n {
			n = int64(s.hoardNow)
		}
		s.hiInt += n * (now - s.hiAt)
	}
	s.hiAt = now
}

// mMaybeRetune feeds the shared controller one epoch of pool-wide
// virtual-time measurements when enough virtual time has passed (see the
// single-program maybeRetune; the lock-starvation input is likewise zero
// in virtual time).
func (s *mstate) mMaybeRetune(now int64) {
	if s.tuner == nil || now-s.lastObsAt < s.epochLen {
		return
	}
	s.mNoteStarve(now)
	capacity := (now - s.lastObsAt) * int64(s.workers)
	cap, batch, changed := s.tuner.Observe(capacity,
		s.acquireUnits-s.lastObsAcq, s.hiInt-s.lastObsHI, 0)
	if changed {
		s.batchN, s.cbatchN = cap, batch
		if s.tr != nil {
			s.tr.Record(trace.KRetune, now, -1, -1, -1, 0, 0, int64(cap))
		}
		if s.met != nil {
			s.met.Retunes.Inc(0)
			s.met.BatchSize.Set(int64(cap))
		}
	}
	s.lastObsAt = now
	s.lastObsAcq = s.acquireUnits
	s.lastObsHI = s.hiInt
}

// mAcquire charges job j's per-lock-visit Acquire cost on the server and
// accrues it as the controller's amortizable-overhead input.
func (s *mstate) mAcquire(j *mjob, at int64) int64 {
	fin := s.serve(at, j.spec.Opt.Costs.Acquire)
	s.acquireUnits += int64(j.spec.Opt.Costs.Acquire)
	return fin
}

// mFlush applies shard sh's completion batch to its job through the
// serialized server, with the same serial-gate, makespan, and done
// bookkeeping as the plain completion path. It returns the finish time.
func (s *mstate) mFlush(sh *mshard, at int64) int64 {
	j := s.jobs[sh.job]
	serial0 := j.sched.SerialCost()
	cost := j.sched.CompleteBatch(sh.done)
	sh.done = sh.done[:0]
	fin := s.serve(at, cost)
	if j.sched.SerialCost() > serial0 && fin > j.openAt {
		j.openAt = fin
	}
	if fin > j.makespan {
		j.makespan = fin
		if fin > s.front {
			s.front = fin
		}
	}
	s.noteJobDone(j)
	s.syncReady(j)
	return fin
}

// madaptiveAsk serves a worker's ask under the Adaptive model: pop the
// local shard for free, or make one serialized visit that flushes the
// shard's completion batch (to the job it belongs to) and then walks the
// dispatch-policy candidates for the next refill.
func (s *mstate) madaptiveAsk(req mitem) {
	if !s.beginAsk(req) {
		return
	}
	// The crash hook defers while the shard holds tasks (they are not
	// re-queueable) and flushes the completion batch before retiring the
	// worker, so no work is stranded.
	if s.plan != nil && s.maybeCrash(req.proc, req.at) {
		return
	}
	sh := &s.mab[req.proc]
	if sh.next < len(sh.tasks) {
		// Local shard pop: no management charge.
		task := sh.tasks[sh.next]
		sh.next++
		s.mNoteStarve(req.at)
		s.hoardNow--
		if s.met != nil {
			s.met.DispatchWait.Observe(0)
		}
		s.dispatch(req.proc, sh.job, sh.job != s.homes[req.proc], task, req.at)
		return
	}
	// Refill visit. Completions flush first (they may release the very
	// work the refill then pulls, and the worker may be about to switch
	// jobs); one Acquire covers the combined visit.
	at := req.at
	flushed := false
	if len(sh.done) > 0 {
		at = s.mFlush(sh, at)
		flushed = true
	}
	home := s.homes[req.proc]
	reopen := int64(-1)
	for _, ji := range s.candidates(req.proc) {
		j := s.jobs[ji]
		if at < j.openAt {
			// The job's between-phase serial action is still running.
			if reopen < 0 || j.openAt < reopen {
				reopen = j.openAt
			}
			continue
		}
		ts, dc := j.sched.NextTasks(sh.buf[:0], s.batchN)
		s.syncReady(j)
		at = s.serve(at, dc)
		if len(ts) == 0 {
			sh.buf = ts[:0]
			continue // dry probe: the candidate walk moves on
		}
		at = s.mAcquire(j, at)
		if ji != home {
			// Deficit credit for the whole foreign batch, charged when the
			// work is taken from the job — the batched form of the plain
			// per-dispatch charge.
			var n int64
			for _, t := range ts {
				n += int64(t.Run.Len())
			}
			s.noteDeficit(j, -n)
		}
		s.mMaybeRetune(at)
		// Wake after the refill: the visit's flush (and NextTasks' liveness
		// fallback) can release work beyond what this worker's batch took,
		// and parked peers must see it.
		s.wake(at)
		sh.job = ji
		sh.tasks, sh.buf, sh.next = ts, ts[:0], 1
		s.mNoteStarve(at)
		s.hoardNow += len(ts) - 1
		if s.met != nil {
			s.met.DispatchWait.Observe(at - req.at)
		}
		s.dispatch(req.proc, ji, ji != home, ts[0], at)
		return
	}
	if flushed {
		at = s.mAcquire(s.jobs[sh.job], at)
		s.mMaybeRetune(at)
		s.wake(at)
	}
	s.park(req.proc, at)
	if reopen >= 0 {
		s.pendingAt[req.proc] = reopen
		s.askGen[req.proc]++
		s.push(mitem{at: reopen, proc: req.proc, gen: s.askGen[req.proc]})
	}
}

// madaptiveComplete accumulates a completion in the worker's shard,
// flushing it through one serialized visit when the completion batch
// fills. The shard's tag already names the completing job — a worker has
// one outstanding task, dispatched from its own shard.
func (s *mstate) madaptiveComplete(req mitem) {
	s.doneUnits += req.dur
	sh := &s.mab[req.proc]
	sh.done = append(sh.done, req.task)
	if req.at > s.lastDone {
		s.lastDone = req.at
		if req.at > s.front {
			s.front = req.at
		}
	}
	at := req.at
	if len(sh.done) >= s.cbatchN {
		at = s.mAcquire(s.jobs[sh.job], at)
		at = s.mFlush(sh, at)
		s.mMaybeRetune(at)
		s.wake(at)
	}
	// The worker asks for new work once its completion is handed off.
	s.push(mitem{at: at, proc: req.proc, gen: s.askGen[req.proc]})
}
