package sim

// This file is the Async management model in multi-program mode: the
// single-program ready-buffer protocol (async.go) replicated per job on
// ONE shared dedicated server, so the virtual-time pricing matches what
// the async executive would cost a tenant machine:
//
//   - the server keeps a bounded ready buffer PER JOB (each job's slice
//     of Config.ReadyCap), topped up with batched NextTasks pulls charged
//     on the server's serialized lane;
//   - a worker's ask walks its dispatch-policy candidates (home first,
//     then backfill order) and pops the first non-empty buffer for free —
//     the backfill gate is the home buffer found dry after a top-up
//     attempt, mirroring the plain models' "home has nothing
//     dispatchable" probe. Deficit-round-robin credit is charged when a
//     foreign slot is popped, exactly as the plain dispatch charges it;
//   - each buffered task carries the virtual time the server finished
//     producing it (never earlier than its job's openAt serial gate), and
//     a dispatch starts no earlier than that — production time, not
//     server availability, is what a worker waits on;
//   - completions queue per job and are applied in fused CompleteBatch
//     drains whenever the server has caught up (or, last resort, the main
//     loop forces a drain when no worker event is left to trigger one);
//   - deferred management is absorbed on the server whenever a job's
//     buffer is above the low-water mark, on top of the generic
//     idle-executive absorption in the main loop.
//
// Conservation holds by construction: a job cannot reach Done while any
// of its tasks sit buffered (they have not completed), and a buffered
// task can always be claimed — wake counts buffered tasks as
// availability, and a worker parked behind a serial gate schedules its
// own reopen retry.

// masyncInit sizes the per-job ready buffers. With one shared server
// feeding several jobs, the whole-machine default (2*workers) is split
// across the jobs so aggregate buffering matches the single-program
// model; an explicit Config.ReadyCap applies per job.
func (s *mstate) masyncInit(cfg Config) {
	rc := cfg.ReadyCap
	if rc <= 0 {
		rc = 2 * s.workers / len(s.jobs)
		if rc < 8 {
			rc = 8
		}
	}
	lw := cfg.LowWater
	if lw <= 0 {
		lw = rc / 4
		if lw < 1 {
			lw = 1
		}
	}
	if lw >= rc {
		lw = rc - 1
	}
	s.readyCap, s.lowWater = rc, lw
}

// masyncTopUp pulls one batched NextTasks refill into job j's buffer,
// charging the server and stamping each slot with its production time
// (clamped to the job's serial-gate reopening, so a gated phase's tasks
// cannot start early). It reports whether anything was buffered.
func (s *mstate) masyncTopUp(j *mjob, now int64) bool {
	if j.done {
		return false
	}
	free := s.readyCap - len(j.aready)
	if free <= 0 {
		return false
	}
	ts, dc := j.sched.NextTasks(j.abuf[:0], free)
	s.syncReady(j)
	fin := s.serve(now, dc)
	stamp := fin
	if j.openAt > stamp {
		stamp = j.openAt
	}
	for _, task := range ts {
		j.aready = append(j.aready, asyncSlot{task: task, at: stamp})
	}
	j.abuf = ts[:0]
	s.bufferedN += len(ts)
	if s.met != nil && len(ts) > 0 {
		s.met.ReadyOccupancy.Set(int64(s.bufferedN))
	}
	return len(ts) > 0
}

// masyncServiceJob is one pass of the shared server on behalf of job ji:
// drain the job's queued completions when caught up (force drains
// regardless), top its buffer up, and overlap one unit of the job's
// deferred management while the buffer is above the low-water mark.
// Parked workers are woken when the pass buffered anything.
func (s *mstate) masyncServiceJob(ji int, now int64, force bool) {
	j := s.jobs[ji]
	buffered := false
	for {
		worked := false
		if len(j.acomp) > 0 && (force || s.serverFree <= now) {
			serial0 := j.sched.SerialCost()
			cost := j.sched.CompleteBatch(j.acomp)
			j.acomp = j.acomp[:0]
			fin := s.serve(now, cost)
			if j.sched.SerialCost() > serial0 && fin > j.openAt {
				j.openAt = fin
			}
			if fin > j.makespan {
				j.makespan = fin
				if fin > s.front {
					s.front = fin
				}
			}
			s.noteJobDone(j)
			s.syncReady(j)
			worked = true
		}
		if s.masyncTopUp(j, now) {
			worked = true
			buffered = true
		}
		if !worked {
			break
		}
	}
	// At most one deferred unit per pass, as in the single-program server
	// (see asyncService): bulk absorption belongs to the main loop's
	// idle-executive path. A unit that released work gets one refill
	// attempt so the release reaches the buffer this pass.
	if !j.done && j.hasDef && len(j.aready) > s.lowWater {
		if cost, ok := j.sched.DeferredMgmt(); ok {
			s.serve(now, cost)
			s.syncReady(j)
			if s.masyncTopUp(j, now) {
				buffered = true
			}
		}
	}
	if buffered {
		s.wake(now)
	}
}

// masyncAsk serves a worker's ask under the Async model: walk the
// dispatch-policy candidates and pop the first non-empty ready buffer for
// free. A dry candidate gets one top-up attempt (charged to the server,
// not the worker — the background server is always running; the ask is
// just the moment virtual time can observe it), and only a home buffer
// still dry after that opens the backfill gate to the next candidate.
func (s *mstate) masyncAsk(req mitem) {
	if !s.beginAsk(req) {
		return
	}
	if s.plan != nil && s.maybeCrash(req.proc, req.at) {
		return // the worker is retired: its ask dies, it never asks again
	}
	at := req.at
	home := s.homes[req.proc]
	reopen := int64(-1)
	for _, ji := range s.candidates(req.proc) {
		j := s.jobs[ji]
		if at < j.openAt {
			// The job's between-phase serial action is still running; its
			// buffered slots are stamped at or after openAt anyway, but new
			// production on its behalf must wait too.
			if reopen < 0 || j.openAt < reopen {
				reopen = j.openAt
			}
			continue
		}
		if len(j.aready) == 0 {
			s.masyncServiceJob(ji, at, false)
		}
		if len(j.aready) == 0 {
			continue // dry after the top-up attempt: backfill gate opens
		}
		sl := j.aready[0]
		j.aready = j.aready[1:]
		s.bufferedN--
		dat := at
		if sl.at > dat {
			dat = sl.at
		}
		if ji != home {
			s.noteDeficit(j, -int64(sl.task.Run.Len()))
		}
		if s.met != nil {
			s.met.ReadyOccupancy.Set(int64(s.bufferedN))
			s.met.DispatchWait.Observe(dat - req.at)
		}
		s.dispatch(req.proc, ji, ji != home, sl.task, dat)
		// Top the buffer back up behind the pop so the next ask finds it
		// warm.
		s.masyncServiceJob(ji, dat, false)
		return
	}
	s.park(req.proc, at)
	if reopen >= 0 {
		s.pendingAt[req.proc] = reopen
		s.askGen[req.proc]++
		s.push(mitem{at: reopen, proc: req.proc, gen: s.askGen[req.proc]})
	}
}

// masyncComplete queues a completion behind the server on its job's
// completion queue. The worker asks for new work immediately — it hands
// the completion off and never waits on management, the async executive's
// defining property.
func (s *mstate) masyncComplete(req mitem) {
	s.doneUnits += req.dur
	j := s.jobs[req.job]
	j.acomp = append(j.acomp, req.task)
	if req.at > s.lastDone {
		s.lastDone = req.at
		if req.at > s.front {
			s.front = req.at
		}
	}
	s.masyncServiceJob(req.job, req.at, false)
	s.push(mitem{at: req.at, proc: req.proc, gen: s.askGen[req.proc]})
}
