package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

func onePhase(t *testing.T, n int) *core.Program {
	t.Helper()
	prog, err := core.NewProgram(&core.Phase{Name: "a", Granules: n})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func twoPhase(t *testing.T, n int, spec *enable.Spec) *core.Program {
	t.Helper()
	prog, err := core.NewProgram(
		&core.Phase{Name: "a", Granules: n, Enable: spec},
		&core.Phase{Name: "b", Granules: n},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSinglePhasePerfectFit(t *testing.T) {
	prog := onePhase(t, 8)
	res, err := Run(prog,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		Config{Procs: 2, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Errorf("makespan = %d, want 4", res.Makespan)
	}
	if res.Utilization != 1.0 {
		t.Errorf("utilization = %v, want 1.0", res.Utilization)
	}
	if res.ComputeUnits != 8 || res.IdleUnits != 0 {
		t.Errorf("compute=%d idle=%d", res.ComputeUnits, res.IdleUnits)
	}
}

func TestSinglePhaseRundownArithmetic(t *testing.T) {
	// 10 unit granules on 4 processors, grain 1: rounds of 4,4,2 — the
	// final round leaves 2 processors idle for 1 unit each.
	prog := onePhase(t, 10)
	res, err := Run(prog,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3 {
		t.Errorf("makespan = %d, want 3", res.Makespan)
	}
	if res.IdleUnits != 2 {
		t.Errorf("idle = %d, want 2", res.IdleUnits)
	}
	wantUtil := 10.0 / 12.0
	if diff := res.Utilization - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("utilization = %v, want %v", res.Utilization, wantUtil)
	}
	if res.Phases[0].RundownStart < 0 {
		t.Error("rundown start not detected")
	}
}

func TestOverlapBeatsBarrierIdentity(t *testing.T) {
	barrier, err := Run(twoPhase(t, 10, enable.NewIdentity()),
		core.Options{Grain: 1, Overlap: false, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Run(twoPhase(t, 10, enable.NewIdentity()),
		core.Options{Grain: 1, Overlap: true, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Makespan != 6 {
		t.Errorf("barrier makespan = %d, want 6", barrier.Makespan)
	}
	if overlap.Makespan >= barrier.Makespan {
		t.Errorf("overlap makespan %d not better than barrier %d", overlap.Makespan, barrier.Makespan)
	}
	if overlap.Utilization <= barrier.Utilization {
		t.Errorf("overlap util %v <= barrier util %v", overlap.Utilization, barrier.Utilization)
	}
}

func TestOverlapBeatsBarrierUniversal(t *testing.T) {
	barrier, err := Run(twoPhase(t, 10, enable.NewUniversal()),
		core.Options{Grain: 1, Overlap: false, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Run(twoPhase(t, 10, enable.NewUniversal()),
		core.Options{Grain: 1, Overlap: true, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	// Two universal phases of 10 on 4 procs = 20 units of independent
	// work: makespan 5, perfect utilization.
	if overlap.Makespan != 5 {
		t.Errorf("overlap makespan = %d, want 5", overlap.Makespan)
	}
	if barrier.Makespan != 6 {
		t.Errorf("barrier makespan = %d, want 6", barrier.Makespan)
	}
}

func TestNullMappingNoGain(t *testing.T) {
	barrier, _ := Run(twoPhase(t, 10, nil),
		core.Options{Grain: 1, Overlap: false, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	overlap, _ := Run(twoPhase(t, 10, nil),
		core.Options{Grain: 1, Overlap: true, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if overlap.Makespan != barrier.Makespan {
		t.Errorf("null mapping changed makespan: %d vs %d", overlap.Makespan, barrier.Makespan)
	}
}

func TestStealsWorkerModel(t *testing.T) {
	prog := onePhase(t, 12)
	res, err := Run(prog,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: StealsWorker})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d, want 3 (one stolen by executive)", res.Workers)
	}
	if res.Makespan != 4 { // 12 granules on 3 workers
		t.Errorf("makespan = %d, want 4", res.Makespan)
	}
	if _, err := Run(prog, core.Options{Grain: 1}, Config{Procs: 1, Mgmt: StealsWorker}); err == nil {
		t.Error("StealsWorker with 1 proc should fail")
	}
}

func TestMgmtCostsDelayDispatch(t *testing.T) {
	prog := onePhase(t, 8)
	free, _ := Run(prog,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	costly, _ := Run(onePhase(t, 8),
		core.Options{Grain: 1, Costs: core.MgmtCosts{Dispatch: 5, Complete: 5}},
		Config{Procs: 4, Mgmt: Dedicated})
	if costly.Makespan <= free.Makespan {
		t.Errorf("management cost did not extend makespan: %d vs %d", costly.Makespan, free.Makespan)
	}
	if costly.MgmtUnits == 0 || costly.MgmtRatio <= 0 {
		t.Error("management units/ratio not recorded")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		prog := twoPhase(t, 64, enable.NewIdentity())
		res, err := Run(prog,
			core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
			Config{Procs: 8, Mgmt: StealsWorker})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Makespan != b.Makespan || a.ComputeUnits != b.ComputeUnits ||
		a.MgmtUnits != b.MgmtUnits || a.IdleUnits != b.IdleUnits {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
}

func TestVariableCostPhases(t *testing.T) {
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "a", Granules: 16,
			Cost:   func(g granule.ID) core.Cost { return core.Cost(1 + int(g)%5) },
			Enable: enable.NewIdentity(),
		},
		&core.Phase{Name: "b", Granules: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog,
		core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := int64(0)
	for g := 0; g < 16; g++ {
		wantCompute += int64(1 + g%5)
	}
	wantCompute += 16 // phase b unit costs
	if res.ComputeUnits != wantCompute {
		t.Errorf("compute = %d, want %d", res.ComputeUnits, wantCompute)
	}
}

func TestSerialActionCharged(t *testing.T) {
	prog, err := core.NewProgram(
		&core.Phase{Name: "a", Granules: 4},
		&core.Phase{Name: "b", Granules: 4, SerialCost: 50},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog,
		core.Options{Grain: 1, Overlap: true, Costs: core.FreeCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialUnits != 50 {
		t.Errorf("serial units = %d, want 50", res.SerialUnits)
	}
	// Serial action gates the second phase: makespan >= 1 + 50 + 1.
	if res.Makespan < 52 {
		t.Errorf("makespan = %d, want >= 52", res.Makespan)
	}
}

func TestAllSchedulerModesComplete(t *testing.T) {
	for _, split := range []core.SplitPolicy{core.SplitDemand, core.SplitPre} {
		for _, succ := range []core.SuccSplitMode{core.SuccSplitInline, core.SuccSplitDeferred} {
			for _, id := range []core.IdentityMode{core.IdentityConflictQueue, core.IdentityTable} {
				prog := twoPhase(t, 40, enable.NewIdentity())
				res, err := Run(prog, core.Options{
					Grain: 3, Overlap: true, Split: split, SuccSplit: succ,
					IdentityVia: id, Costs: core.DefaultCosts(),
				}, Config{Procs: 5, Mgmt: Dedicated})
				if err != nil {
					t.Fatalf("split=%v succ=%v id=%v: %v", split, succ, id, err)
				}
				if res.ComputeUnits != 80 {
					t.Fatalf("split=%v succ=%v id=%v: compute=%d, want 80",
						split, succ, id, res.ComputeUnits)
				}
			}
		}
	}
}

func TestGanttAndCurve(t *testing.T) {
	prog := twoPhase(t, 12, enable.NewUniversal())
	res, err := Run(prog,
		core.Options{Grain: 2, Overlap: true, Costs: core.FreeCosts()},
		Config{Procs: 3, Mgmt: Dedicated, Gantt: true, BucketWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gantt == nil || res.Gantt.End() == 0 {
		t.Fatal("gantt not recorded")
	}
	if s := res.Gantt.Render(40); s == "" {
		t.Fatal("gantt render empty")
	}
	curve := res.Timeline.Curve()
	if len(curve) == 0 {
		t.Fatal("no utilization curve")
	}
	for i, u := range curve {
		if u < 0 || u > 1.0000001 {
			t.Errorf("curve[%d] = %v out of range", i, u)
		}
	}
}

func TestPhaseTraces(t *testing.T) {
	prog := twoPhase(t, 20, enable.NewIdentity())
	res, err := Run(prog,
		core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 4, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range res.Phases {
		if pt.Start < 0 || pt.End <= pt.Start {
			t.Errorf("phase %d window [%d,%d] invalid", i, pt.Start, pt.End)
		}
		if pt.Dispatched == 0 {
			t.Errorf("phase %d has no dispatches", i)
		}
	}
	if res.Phases[1].Start >= res.Phases[0].End {
		t.Error("identity overlap: phase b should start before phase a ends")
	}
	if res.Phases[0].OverlapUnits == 0 {
		t.Error("no overlap compute attributed to phase a's currency")
	}
}

func TestRunawayGuard(t *testing.T) {
	prog := onePhase(t, 100)
	_, err := Run(prog, core.Options{Grain: 1, Costs: core.DefaultCosts()},
		Config{Procs: 2, Mgmt: Dedicated, MaxOps: 3})
	if err == nil {
		t.Fatal("MaxOps guard did not trigger")
	}
}

func TestConfigValidation(t *testing.T) {
	prog := onePhase(t, 4)
	if _, err := Run(prog, core.Options{}, Config{Procs: 0}); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestMgmtModelString(t *testing.T) {
	if StealsWorker.String() != "steals-worker" || Dedicated.String() != "dedicated" {
		t.Error("MgmtModel strings wrong")
	}
	if MgmtModel(9).String() == "" {
		t.Error("unknown model string empty")
	}
}

func BenchmarkSimIdentityOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, _ := core.NewProgram(
			&core.Phase{Name: "a", Granules: 8192, Enable: enable.NewIdentity()},
			&core.Phase{Name: "b", Granules: 8192},
		)
		_, err := Run(prog,
			core.Options{Grain: 64, Overlap: true, Costs: core.DefaultCosts()},
			Config{Procs: 64, Mgmt: StealsWorker})
		if err != nil {
			b.Fatal(err)
		}
	}
}
