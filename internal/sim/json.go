package sim

// JSON codec for MgmtModel: reports on the service daemon's wire carry
// the model by its stable string name ("steals-worker", "dedicated",
// …), never the enum's numeric value.

import (
	"encoding/json"
	"errors"

	"repro/internal/core"
)

// MarshalJSON encodes the model as its string name.
func (m MgmtModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes a model from its string name (or, leniently,
// the numeric enum value).
func (m *MgmtModel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		mm, err := ParseModel(s)
		if err != nil {
			return err
		}
		*m = mm
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*m = MgmtModel(n)
	return nil
}

// jobResultWire is JobResult's pinned JSON shape: snake_case keys, with
// the Err field flattened to an error string (error values do not
// survive encoding/json round trips).
type jobResultWire struct {
	Name          string     `json:"name"`
	Makespan      int64      `json:"makespan"`
	ComputeUnits  int64      `json:"compute_units"`
	BackfillUnits int64      `json:"backfill_units"`
	HomeWorkers   int        `json:"home_workers"`
	Sched         core.Stats `json:"sched"`
	Error         string     `json:"error,omitempty"`
	Attempts      int        `json:"attempts"`
}

// MarshalJSON encodes the result with Err flattened to its message.
func (j JobResult) MarshalJSON() ([]byte, error) {
	w := jobResultWire{
		Name:          j.Name,
		Makespan:      j.Makespan,
		ComputeUnits:  j.ComputeUnits,
		BackfillUnits: j.BackfillUnits,
		HomeWorkers:   j.HomeWorkers,
		Sched:         j.Sched,
		Attempts:      j.Attempts,
	}
	if j.Err != nil {
		w.Error = j.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form; a non-empty "error" key becomes
// an opaque error carrying the original message.
func (j *JobResult) UnmarshalJSON(b []byte) error {
	var w jobResultWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*j = JobResult{
		Name:          w.Name,
		Makespan:      w.Makespan,
		ComputeUnits:  w.ComputeUnits,
		BackfillUnits: w.BackfillUnits,
		HomeWorkers:   w.HomeWorkers,
		Sched:         w.Sched,
		Attempts:      w.Attempts,
	}
	if w.Error != "" {
		j.Err = errors.New(w.Error)
	}
	return nil
}
