package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/workload"
)

// TestMultiSingleJobMatchesRun: with one job the multi-program loop must
// reproduce the single-program simulator exactly under every management
// model — same makespan, compute, and management charge. The fixtures
// cover both overlap (identity chain) and the serial-action path: the
// multi loop's explicit openAt gate and time-ordered queue must collapse
// to Run's implicit wake-delayed serial barrier when only one job runs.
func TestMultiSingleJobMatchesRun(t *testing.T) {
	serialProg := func() *core.Program {
		prog, err := core.NewProgram(
			&core.Phase{Name: "s1", Granules: 64},
			&core.Phase{Name: "s2", Granules: 64, SerialCost: 500},
			&core.Phase{Name: "s3", Granules: 64, SerialCost: 500},
		)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	fixtures := []struct {
		name  string
		build func() *core.Program
		// slackPerSerial bounds the makespan difference per serial action
		// under StealsWorker ONLY: that model shares one management
		// server, and the single-program FIFO serves a late-stamped ask
		// BEFORE an earlier completion event, burying its failed probe in
		// otherwise-idle server time where the time-ordered multi queue
		// correctly places it after the serial action. The drift is at
		// most one probe charge per serial action; every other model and
		// fixture must match exactly.
		serials int
	}{
		{"identity", func() *core.Program { return twoPhase(t, 256, enable.NewIdentity()) }, 0},
		{"serial-actions", serialProg, 2},
	}
	for _, fx := range fixtures {
		for _, model := range []MgmtModel{StealsWorker, Dedicated, Sharded} {
			opt := func() core.Options {
				return core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}
			}
			single, err := Run(fx.build(), opt(), Config{Procs: 8, Mgmt: model})
			if err != nil {
				t.Fatalf("%s/%v: %v", fx.name, model, err)
			}
			multi, err := RunMulti([]JobSpec{
				{Name: "solo", Prog: fx.build(), Opt: opt()},
			}, Config{Procs: 8, Mgmt: model})
			if err != nil {
				t.Fatalf("%s/%v: %v", fx.name, model, err)
			}
			slack := int64(0)
			if model == StealsWorker && fx.serials > 0 {
				// At most a couple of probe charges drift per serial action.
				probe := int64(core.DefaultCosts().Dispatch)
				slack = int64(fx.serials) * 2 * probe
			}
			if d := multi.Makespan - single.Makespan; d < 0 || d > slack {
				t.Errorf("%s/%v: multi makespan %d vs single %d (allowed slack %d)",
					fx.name, model, multi.Makespan, single.Makespan, slack)
			}
			if multi.ComputeUnits != single.ComputeUnits {
				t.Errorf("%s/%v: multi compute %d != single %d", fx.name, model, multi.ComputeUnits, single.ComputeUnits)
			}
			if d := multi.MgmtUnits - single.MgmtUnits; d < -slack || d > slack {
				t.Errorf("%s/%v: multi mgmt %d vs single %d (allowed slack %d)",
					fx.name, model, multi.MgmtUnits, single.MgmtUnits, slack)
			}
			if multi.BackfillUnits != 0 {
				t.Errorf("%s/%v: single-job run recorded backfill %d", fx.name, model, multi.BackfillUnits)
			}
			if multi.Jobs[0].Makespan != multi.Makespan {
				t.Errorf("%s/%v: job makespan %d != run makespan %d", fx.name, model, multi.Jobs[0].Makespan, multi.Makespan)
			}
		}
	}
}

// TestMultiDeterministic: identical inputs must produce identical results.
func TestMultiDeterministic(t *testing.T) {
	build := func() []JobSpec {
		return []JobSpec{
			{Name: "a", Prog: twoPhase(t, 512, enable.NewIdentity()),
				Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}},
			{Name: "b", Prog: twoPhase(t, 256, nil),
				Opt: core.Options{Grain: 2, Costs: core.DefaultCosts()}, Priority: 1},
		}
	}
	r1, err := RunMulti(build(), Config{Procs: 16, Mgmt: StealsWorker})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMulti(build(), Config{Procs: 16, Mgmt: StealsWorker})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.MgmtUnits != r2.MgmtUnits ||
		r1.BackfillUnits != r2.BackfillUnits || r1.IdleUnits != r2.IdleUnits {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Makespan != r2.Jobs[i].Makespan {
			t.Errorf("job %d makespan diverges: %d vs %d", i, r1.Jobs[i].Makespan, r2.Jobs[i].Makespan)
		}
	}
}

// TestMultiConservation: each job's compute is conserved exactly, and the
// aggregate utilization stays within the machine's capacity.
func TestMultiConservation(t *testing.T) {
	progA := twoPhase(t, 512, enable.NewIdentity())
	progB := twoPhase(t, 384, enable.NewUniversal())
	res, err := RunMulti([]JobSpec{
		{Name: "a", Prog: progA, Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}},
		{Name: "b", Prog: progB, Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}},
	}, Config{Procs: 8, Mgmt: Sharded})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].ComputeUnits != int64(progA.TotalCost()) {
		t.Errorf("job a compute %d != %d", res.Jobs[0].ComputeUnits, progA.TotalCost())
	}
	if res.Jobs[1].ComputeUnits != int64(progB.TotalCost()) {
		t.Errorf("job b compute %d != %d", res.Jobs[1].ComputeUnits, progB.TotalCost())
	}
	if res.ComputeUnits != res.Jobs[0].ComputeUnits+res.Jobs[1].ComputeUnits {
		t.Errorf("aggregate compute %d inconsistent", res.ComputeUnits)
	}
	if res.Utilization > 1.0 {
		t.Errorf("utilization %v exceeds capacity", res.Utilization)
	}
	for _, j := range res.Jobs {
		if j.Makespan <= 0 || j.Makespan > res.Makespan {
			t.Errorf("job %s makespan %d outside run makespan %d", j.Name, j.Makespan, res.Makespan)
		}
	}
}

// TestMultiBackfillFillsRundown: a narrow job (little parallelism, long
// chain) co-scheduled with a wide job must donate its idle home capacity:
// the wide job receives backfill units, and the machine finishes both
// jobs sooner than running them back to back.
func TestMultiBackfillFillsRundown(t *testing.T) {
	narrow := func() *core.Program {
		prog, err := workload.Chain(enable.Identity, 8, 32, workload.FixedCost(400), 7)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	wide := func() *core.Program {
		prog, err := workload.Chain(enable.Identity, 2, 4096, workload.FixedCost(100), 9)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	opt := func() core.Options {
		return core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}
	}
	cfg := Config{Procs: 32, Mgmt: StealsWorker}

	aloneNarrow, err := Run(narrow(), opt(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	aloneWide, err := Run(wide(), opt(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti([]JobSpec{
		{Name: "narrow", Prog: narrow(), Opt: opt()},
		{Name: "wide", Prog: wide(), Opt: opt()},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Jobs[1].BackfillUnits == 0 {
		t.Errorf("wide job received no backfill: %+v", multi.Jobs)
	}
	sequential := aloneNarrow.Makespan + aloneWide.Makespan
	if multi.Makespan >= sequential {
		t.Errorf("co-scheduled makespan %d not below sequential %d", multi.Makespan, sequential)
	}
	if multi.Utilization <= aloneNarrow.Utilization {
		t.Errorf("tenancy utilization %.3f not above the narrow job's alone %.3f",
			multi.Utilization, aloneNarrow.Utilization)
	}
}

// TestMultiWeightsSetHomeShares: home workers divide by weight.
func TestMultiWeightsSetHomeShares(t *testing.T) {
	res, err := RunMulti([]JobSpec{
		{Name: "heavy", Prog: twoPhase(t, 256, enable.NewIdentity()),
			Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}, Weight: 3},
		{Name: "light", Prog: twoPhase(t, 256, enable.NewIdentity()),
			Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}, Weight: 1},
	}, Config{Procs: 8, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].HomeWorkers != 6 || res.Jobs[1].HomeWorkers != 2 {
		t.Errorf("home shares = %d/%d, want 6/2", res.Jobs[0].HomeWorkers, res.Jobs[1].HomeWorkers)
	}
}

// TestMultiPriorityFavoursHighPriorityJob: with two identical jobs and
// one backfill donor, the higher-priority job must not finish after the
// lower-priority one.
func TestMultiPriorityFavoursHighPriorityJob(t *testing.T) {
	mk := func() *core.Program {
		prog, err := core.NewProgram(
			&core.Phase{Name: "p1", Granules: 512, Enable: enable.NewIdentity()},
			&core.Phase{Name: "p2", Granules: 512},
		)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	donor := func() *core.Program {
		prog, err := workload.Chain(enable.Identity, 6, 16, workload.FixedCost(600), 3)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	_ = granule.ID(0)
	opt := func() core.Options {
		return core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}
	}
	res, err := RunMulti([]JobSpec{
		{Name: "donor", Prog: donor(), Opt: opt()},
		{Name: "low", Prog: mk(), Opt: opt(), Priority: 0},
		{Name: "high", Prog: mk(), Opt: opt(), Priority: 5},
	}, Config{Procs: 16, Mgmt: Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	low, high := res.Jobs[1], res.Jobs[2]
	if high.Makespan > low.Makespan {
		t.Errorf("high-priority job finished at %d, after the identical low-priority job at %d",
			high.Makespan, low.Makespan)
	}
}
