package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/workload"
)

// TestConservationRandomPrograms drives random programs and option sets
// through the simulator and checks the accounting identities that must
// hold for any schedule:
//
//   - every granule's cost is computed exactly once
//     (ComputeUnits == program total cost);
//   - utilization never exceeds 1;
//   - the makespan is at least the critical path lower bound
//     (total work / workers) and at least the serial-action sum;
//   - the per-phase windows nest inside [0, makespan].
func TestConservationRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(8711986))
	for iter := 0; iter < 60; iter++ {
		nPhases := 1 + rng.Intn(5)
		phases := make([]*core.Phase, nPhases)
		var serialSum core.Cost
		for i := range phases {
			phases[i] = &core.Phase{
				Name:     string(rune('a' + i)),
				Granules: rng.Intn(300),
				Cost:     workload.UniformCost(1, core.Cost(1+rng.Intn(200)), rng.Uint64()),
			}
			if i > 0 && rng.Intn(3) == 0 {
				sc := core.Cost(rng.Intn(50))
				phases[i].SerialCost = sc
				serialSum += sc
			}
		}
		for i := 0; i < nPhases-1; i++ {
			if phases[i+1].SerialCost > 0 {
				continue // must stay null
			}
			switch rng.Intn(4) {
			case 0:
				// null
			case 1:
				phases[i].Enable = enable.NewUniversal()
			case 2:
				phases[i].Enable = enable.NewIdentity()
			case 3:
				n := phases[i].Granules
				if n == 0 {
					phases[i].Enable = enable.NewUniversal()
					continue
				}
				phases[i].Enable = enable.NewReverse(func(r granule.ID) []granule.ID {
					return []granule.ID{r % granule.ID(n)}
				})
			}
		}
		prog, err := core.NewProgram(phases...)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		procs := 2 + rng.Intn(12)
		model := MgmtModel(rng.Intn(2))
		res, err := Run(prog, core.Options{
			Grain:      1 + rng.Intn(30),
			Overlap:    rng.Intn(3) != 0,
			Elevate:    rng.Intn(2) == 0,
			InlineMaps: rng.Intn(2) == 0,
			Split:      core.SplitPolicy(rng.Intn(2)),
			SuccSplit:  core.SuccSplitMode(rng.Intn(2)),
			Costs:      core.DefaultCosts(),
		}, Config{Procs: procs, Mgmt: model})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		if want := int64(prog.TotalCost()); res.ComputeUnits != want {
			t.Fatalf("iter %d: compute %d != program cost %d", iter, res.ComputeUnits, want)
		}
		if res.Utilization > 1.0000001 {
			t.Fatalf("iter %d: utilization %v > 1", iter, res.Utilization)
		}
		if res.SerialUnits != int64(serialSum) {
			t.Fatalf("iter %d: serial %d != declared %d", iter, res.SerialUnits, serialSum)
		}
		lower := int64(prog.TotalCost())/int64(res.Workers) + int64(serialSum)
		if prog.TotalGranules() > 0 && res.Makespan < lower/2 {
			t.Fatalf("iter %d: makespan %d below plausible bound %d", iter, res.Makespan, lower)
		}
		for i, pt := range res.Phases {
			if prog.Phases[i].Granules == 0 {
				continue
			}
			if pt.Start < 0 || pt.End > res.Makespan || pt.End < pt.Start {
				t.Fatalf("iter %d: phase %d window [%d,%d] outside [0,%d]",
					iter, i, pt.Start, pt.End, res.Makespan)
			}
		}
	}
}

// TestTimelineAccountingMatchesResult cross-checks the bucketed timeline
// against the scalar accumulators.
func TestTimelineAccountingMatchesResult(t *testing.T) {
	prog, err := core.NewProgram(
		&core.Phase{Name: "a", Granules: 200, Enable: enable.NewIdentity()},
		&core.Phase{Name: "b", Granules: 200},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 6, Mgmt: StealsWorker, BucketWidth: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.BusyTotal() != res.ComputeUnits {
		t.Errorf("timeline busy %d != compute %d", res.Timeline.BusyTotal(), res.ComputeUnits)
	}
	if res.Timeline.MgmtTotal() != res.MgmtUnits {
		t.Errorf("timeline mgmt %d != mgmt %d", res.Timeline.MgmtTotal(), res.MgmtUnits)
	}
	var byProc int64
	for _, b := range res.Timeline.ByProc() {
		byProc += b
	}
	if byProc != res.ComputeUnits {
		t.Errorf("per-proc busy %d != compute %d", byProc, res.ComputeUnits)
	}
}
