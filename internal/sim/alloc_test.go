package sim

// Allocation gates for the zero-alloc event engine. A run's construction
// necessarily allocates (schedulers, bucket rings, slot arrays, worker
// state), but all of that is warmup whose size depends on the machine and
// phase structure, NOT on how many granules flow through: the typed
// calendar queue recycles payload slots through a freelist, descriptions
// recycle through the scheduler's slab freelist, the in-flight table and
// request ring reuse their backing arrays, and completion batches reuse
// their scratch. So the gate is differential: growing the program by K
// extra dispatches must cost (amortized) zero extra allocations — any
// steady-state per-dispatch allocation would scale with K and fail.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/workload"
)

// allocChain builds a phases-deep identity chain with n granules per
// phase.
func allocChain(t testing.TB, n int) *core.Program {
	t.Helper()
	prog, err := workload.Chain(enable.Identity, 3, n, workload.UnitCost(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runAllocs measures allocations per single-program run at n granules per
// phase and returns them with the run's dispatch count.
func runAllocs(t *testing.T, n int) (allocs float64, dispatches int64) {
	t.Helper()
	opt := core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}
	cfg := Config{Procs: 16, Mgmt: Sharded}
	res, err := Run(allocChain(t, n), opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(3, func() {
		if _, err := Run(allocChain(t, n), opt, cfg); err != nil {
			t.Error(err)
		}
	})
	return allocs, res.Sched.Dispatches
}

// multiAllocs is runAllocs for a 4-job multi-program run.
func multiAllocs(t *testing.T, n int) (allocs float64, dispatches int64) {
	t.Helper()
	build := func() []JobSpec {
		specs := make([]JobSpec, 4)
		for i := range specs {
			specs[i] = JobSpec{
				Prog:     allocChain(t, n),
				Opt:      core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
				Priority: i % 2,
				Weight:   1 + i%2,
			}
		}
		return specs
	}
	cfg := Config{Procs: 16, Mgmt: Sharded}
	res, err := RunMulti(build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		dispatches += j.Sched.Dispatches
	}
	allocs = testing.AllocsPerRun(3, func() {
		if _, err := RunMulti(build(), cfg); err != nil {
			t.Error(err)
		}
	})
	return allocs, dispatches
}

// TestRunSteadyStateAllocFree: quadrupling a single-program run's
// dispatch count must not add allocations beyond a fraction of an alloc
// per extra dispatch (slack for a handful of backing-array doublings).
func TestRunSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is slow under -short")
	}
	aSmall, dSmall := runAllocs(t, 2048)
	aBig, dBig := runAllocs(t, 8192)
	extraDispatch := float64(dBig - dSmall)
	extraAlloc := aBig - aSmall
	if extraDispatch <= 0 {
		t.Fatalf("dispatch counts did not grow: %d -> %d", dSmall, dBig)
	}
	// Program construction itself allocates per phase cost table, so give
	// the gate 1% — a real per-dispatch allocation would show up as >= 100%.
	if extraAlloc/extraDispatch > 0.01 {
		t.Errorf("steady-state allocations: %0.f extra allocs for %0.f extra dispatches (%.4f/dispatch); want amortized zero",
			extraAlloc, extraDispatch, extraAlloc/extraDispatch)
	}
}

// TestRunMultiSteadyStateAllocFree: the same differential gate for the
// multi-program engine — the calendar queue's slot freelist, the bucket
// index lists, and the per-job caches must all recycle.
func TestRunMultiSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is slow under -short")
	}
	// Sizes start past the warmup knee: below ~4096 granules the backing
	// arrays (bucket index lists, completed-set runs, slot stores) are
	// still doubling toward their scale-independent high-water marks.
	aSmall, dSmall := multiAllocs(t, 4096)
	aBig, dBig := multiAllocs(t, 16384)
	extraDispatch := float64(dBig - dSmall)
	extraAlloc := aBig - aSmall
	if extraDispatch <= 0 {
		t.Fatalf("dispatch counts did not grow: %d -> %d", dSmall, dBig)
	}
	if extraAlloc/extraDispatch > 0.01 {
		t.Errorf("steady-state allocations: %0.f extra allocs for %0.f extra dispatches (%.4f/dispatch); want amortized zero",
			extraAlloc, extraDispatch, extraAlloc/extraDispatch)
	}
}
