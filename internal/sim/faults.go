package sim

// Deterministic fault injection in virtual time. Both engines — the
// single-program state and the multi-program mstate — consult one
// compiled fault.Plan at the same chokepoints the real backends do:
//
//   - grain faults strike in dispatch: a slow grain stretches the task's
//     compute (work inflation the timeline and utilization then price), a
//     stuck grain delays the completion EVENT without inflating compute,
//     and a panicking/erroring grain stamps the completion with a failure
//     the run loop turns into a job failure (multi: retry or isolated
//     abort; single program: run error);
//   - worker faults strike at ask service: a crashed worker finishes the
//     task in hand and never asks again (graceful capacity loss — under
//     Adaptive the crash waits for the shard to drain and flushes the
//     completion batch, so no task is stranded); a wedged worker's next
//     completion is withheld for Delay; a slow worker stretches every
//     task it runs;
//   - management faults strike the executive: a delayed completion
//     submission re-queues the completion event Delay later, and a
//     dropped wakeup makes wake() a no-op once — the run loop's
//     queue-empty probe re-wakes, so the fault prices the recovery
//     instead of hanging the run.
//
// Every firing is flight-recorded as a KFault event (Arg = fault.Kind),
// so replay and conservation tooling can see exactly what was injected
// where.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// capGrain applies the PreemptBound contract to a job's options: the
// task grain — the largest non-preemptible unit a worker can hold, and
// therefore the longest a home job emerging from rundown can wait for an
// in-flight foreign grain — is capped at bound granules. When Grain is
// unset the core default (ceil(maxPhaseGranules / 2*Workers)) is
// materialized first so the cap composes with it instead of replacing
// it.
func capGrain(prog *core.Program, opt core.Options, bound int) core.Options {
	if bound <= 0 {
		return opt
	}
	if opt.Grain <= 0 {
		maxG := 1
		for _, ph := range prog.Phases {
			if ph.Granules > maxG {
				maxG = ph.Granules
			}
		}
		w := opt.Workers
		if w <= 0 {
			w = 1
		}
		opt.Grain = (maxG + 2*w - 1) / (2 * w)
		if opt.Grain < 1 {
			opt.Grain = 1
		}
	}
	if opt.Grain > bound {
		opt.Grain = bound
	}
	return opt
}

// satScale stretches dur by a slow-fault factor, saturating well below
// int64 overflow: fault.New clamps each Factor, but worker and grain
// stretches compound, and a wrapped negative duration would push a
// completion behind its dispatch and corrupt the virtual timeline.
func satScale(dur, factor int64) int64 {
	const maxVirtual = int64(1) << 56
	if dur <= 0 || factor <= 1 {
		return dur
	}
	if dur >= maxVirtual/factor {
		return maxVirtual
	}
	return dur * factor
}

// backoffDelay is the capped exponential retry backoff: the first retry
// waits base, each further retry doubles it, capped at 64× base.
func backoffDelay(base int64, attempts int) int64 {
	if base <= 0 {
		return 0
	}
	shift := attempts - 2 // attempts counts from 1; the first retry is attempt 2
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return base << shift
}

// ---- single-program engine hooks ----

// noteFault flight-records one injected fault firing.
func (s *state) noteFault(at int64, w int, k fault.Kind) {
	if s.tr != nil {
		s.tr.Record(trace.KFault, at, int32(w), 0, -1, 0, 0, int64(k))
	}
	if s.met != nil {
		s.met.Faults.Inc(0)
	}
}

// inject applies grain- and worker-level faults to a dispatch: it
// returns the (possibly stretched) compute cost, the completion-event
// lag, and the failure the completion should carry. Only called with a
// non-nil plan.
func (s *state) inject(worker int, task core.Task, at, dur int64) (int64, int64, error) {
	var lag int64
	var fail error
	if _, f, ok := s.plan.Worker(worker, at, fault.WorkerSlow); ok {
		s.noteFault(at, worker, fault.WorkerSlow)
		dur = satScale(dur, f)
	}
	if d, _, ok := s.plan.Worker(worker, at, fault.WorkerWedge); ok {
		s.noteFault(at, worker, fault.WorkerWedge)
		lag += d
	}
	k, d, f := s.plan.Grain(0, int(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), at)
	switch k {
	case fault.GrainSlow:
		dur = satScale(dur, f)
	case fault.GrainStall:
		lag += d
	case fault.GrainPanic:
		fail = fmt.Errorf("sim: injected panic in phase %d granules [%d,%d)",
			task.Phase, task.Run.Lo, task.Run.Hi)
	case fault.GrainError:
		fail = fmt.Errorf("sim: injected error in phase %d granules [%d,%d)",
			task.Phase, task.Run.Lo, task.Run.Hi)
	}
	if k != 0 {
		s.noteFault(at, worker, k)
	}
	return dur, lag, fail
}

// maybeCrash retires worker w when a WorkerCrash rule fires for it: the
// ask in hand dies and the worker never asks again. Under Adaptive the
// crash is deferred while the worker's shard holds tasks (they are not
// re-queueable) and the pending completion batch is flushed first, so no
// work is stranded. The last live worker refuses to crash — the rule is
// consumed but ignored — so a campaign cannot strand a program with zero
// workers.
func (s *state) maybeCrash(w int, at int64) bool {
	if s.crashed[w] {
		return true
	}
	if s.model == Adaptive && s.ab[w].next < len(s.ab[w].tasks) {
		return false
	}
	if _, _, ok := s.plan.Worker(w, at, fault.WorkerCrash); !ok {
		return false
	}
	if s.livew <= 1 {
		return false
	}
	if s.model == Adaptive {
		ab := &s.ab[w]
		if len(ab.done) > 0 {
			cost := s.acquire + s.sched.CompleteBatch(ab.done)
			s.acquireUnits += int64(s.acquire)
			fin := s.serve(at, cost)
			for _, t := range ab.done {
				if pt := &s.phases[t.Phase]; fin > pt.End {
					pt.End = fin
				}
			}
			ab.done = ab.done[:0]
			s.wake(fin)
		}
	}
	s.crashed[w] = true
	s.livew--
	s.noteFault(at, w, fault.WorkerCrash)
	return true
}

// ---- multi-program engine hooks ----

// noteFault flight-records one injected fault firing against job ji.
func (s *mstate) noteFault(at int64, w, ji int, k fault.Kind) {
	if s.tr != nil {
		s.tr.Record(trace.KFault, at, int32(w), int32(ji), -1, 0, 0, int64(k))
	}
	if s.met != nil {
		s.met.Faults.Inc(0)
	}
}

// inject is the multi-program dispatch injection (see state.inject).
func (s *mstate) inject(worker, ji int, task core.Task, at, dur int64) (int64, int64, error) {
	var lag int64
	var fail error
	if _, f, ok := s.plan.Worker(worker, at, fault.WorkerSlow); ok {
		s.noteFault(at, worker, ji, fault.WorkerSlow)
		dur = satScale(dur, f)
	}
	if d, _, ok := s.plan.Worker(worker, at, fault.WorkerWedge); ok {
		s.noteFault(at, worker, ji, fault.WorkerWedge)
		lag += d
	}
	k, d, f := s.plan.Grain(ji, int(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), at)
	switch k {
	case fault.GrainSlow:
		dur = satScale(dur, f)
	case fault.GrainStall:
		lag += d
	case fault.GrainPanic:
		fail = fmt.Errorf("sim: injected panic in job %q phase %d granules [%d,%d)",
			s.jobs[ji].spec.Name, task.Phase, task.Run.Lo, task.Run.Hi)
	case fault.GrainError:
		fail = fmt.Errorf("sim: injected error in job %q phase %d granules [%d,%d)",
			s.jobs[ji].spec.Name, task.Phase, task.Run.Lo, task.Run.Hi)
	}
	if k != 0 {
		s.noteFault(at, worker, ji, k)
	}
	return dur, lag, fail
}

// maybeCrash is the multi-program worker-crash hook (see state.maybeCrash):
// called at the top of every ask handler, it retires the asker when a
// crash rule fires, flushing an Adaptive shard's completion batch first.
func (s *mstate) maybeCrash(w int, at int64) bool {
	if s.crashed[w] {
		return true
	}
	if s.model == Adaptive && s.mab[w].next < len(s.mab[w].tasks) {
		return false
	}
	if _, _, ok := s.plan.Worker(w, at, fault.WorkerCrash); !ok {
		return false
	}
	if s.livew <= 1 {
		return false
	}
	if s.model == Adaptive {
		sh := &s.mab[w]
		if len(sh.done) > 0 {
			at = s.mAcquire(s.jobs[sh.job], at)
			at = s.mFlush(sh, at)
			s.wake(at)
		}
	}
	s.crashed[w] = true
	s.livew--
	s.noteFault(at, w, -1, fault.WorkerCrash)
	return true
}

// clearModelState discards job ji's model-held work — async ready and
// completion buffers, adaptive shards — when an attempt dies: the tasks
// belong to a scheduler that no longer exists, and a retried attempt
// rebuilds them from its fresh scheduler.
func (s *mstate) clearModelState(ji int, at int64) {
	j := s.jobs[ji]
	switch s.model {
	case Async:
		s.bufferedN -= len(j.aready)
		j.aready = j.aready[:0]
		j.acomp = j.acomp[:0]
		if s.met != nil {
			s.met.ReadyOccupancy.Set(int64(s.bufferedN))
		}
	case Adaptive:
		s.mNoteStarve(at)
		for w := range s.mab {
			sh := &s.mab[w]
			if sh.job != ji {
				continue
			}
			s.hoardNow -= len(sh.tasks) - sh.next
			sh.job = -1
			sh.tasks = sh.tasks[:0]
			sh.next = 0
			sh.done = sh.done[:0]
		}
	}
}

// failJob handles job ji's failure at time at (proc is the worker whose
// completion carried it, -1 for a deadline abort). A retryable failure
// with retries left restarts the job on a fresh scheduler after its
// capped exponential backoff; otherwise the job retires with err while
// its co-tenants keep running. Either way the attempt generation bumps
// first, orphaning every in-flight completion of the dead attempt — the
// run loop frees those workers and discards their results, so a failed
// job can never corrupt a surviving one.
func (s *mstate) failJob(ji int, at int64, proc int, err error, retryable bool) {
	j := s.jobs[ji]
	j.attempt++
	s.clearModelState(ji, at)
	if retryable && j.retriesLeft > 0 {
		j.retriesLeft--
		j.attempts++
		s.retries++
		if s.met != nil {
			s.met.Retries.Inc(0)
		}
		restart := at + backoffDelay(j.spec.Backoff, j.attempts)
		sched, nerr := core.New(j.spec.Prog, j.opt)
		if nerr != nil {
			// Unreachable: the same (prog, opt) compiled at setup.
			panic(fmt.Sprintf("sim: retry recompile of job %q failed: %v", j.spec.Name, nerr))
		}
		j.sched = sched
		fin := s.serve(restart, sched.Start())
		j.openAt = fin
		s.syncReady(j)
		s.orderDirty = true
		if s.tr != nil {
			s.tr.Record(trace.KRetry, at, int32(proc), int32(ji), -1, 0, 0, int64(j.attempts))
		}
		// Re-ask before waking: wake(fin) can re-anchor an emptied event
		// queue at fin, after which a push at the earlier at would be
		// rejected as time travel.
		if proc >= 0 {
			s.push(mitem{at: at, proc: proc, gen: s.askGen[proc]})
		}
		s.wake(fin)
		return
	}
	j.err = err
	j.done = true
	if s.met != nil {
		s.met.JobsDone.Inc(0)
		s.met.ActiveJobs.Add(-1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.DeadlineMisses.Inc(0)
		}
	}
	s.liveCount--
	if j.deficit > 0 {
		s.creditCount--
	}
	s.orderDirty = true
	s.rebalance()
	if at > j.makespan {
		j.makespan = at
		if at > s.front {
			s.front = at
		}
	}
	s.syncReady(j)
	if s.tr != nil {
		s.tr.Record(trace.KAbort, at, int32(proc), int32(ji), -1, 0, 0, 0)
	}
	if proc >= 0 {
		s.push(mitem{at: at, proc: proc, gen: s.askGen[proc]})
	}
}

// queueCanRefill reports whether a run-loop recovery branch can
// regenerate events from an empty queue: deferred management work, Async
// completions parked behind a busy server, or ready work a dropped
// wakeup stranded behind parked workers. The conditions mirror the run
// loop's recovery branches exactly — those branches run AFTER the
// deadline check, so a true here guarantees the loop still makes
// progress when the deadline check defers to it.
func (s *mstate) queueCanRefill() bool {
	if s.deferredN > 0 {
		return true
	}
	if s.model == Async {
		for _, j := range s.jobs {
			if len(j.acomp) > 0 {
				return true
			}
		}
	}
	if s.plan != nil && s.parkedN > 0 {
		avail := s.readyTotal
		if s.model == Async {
			avail += s.bufferedN
		}
		if avail > 0 {
			return true
		}
	}
	return false
}

// checkDeadlines aborts every live job whose deadline has passed: a job
// is failed exactly AT its deadline once no remaining event could finish
// it in time (the next queued event lies beyond the deadline, or the
// queue is truly dead). The abort wraps context.DeadlineExceeded and
// never retries. It reports whether any job was aborted.
func (s *mstate) checkDeadlines() bool {
	next, have := s.queue.peekTime()
	if !have && s.queueCanRefill() {
		// An empty event queue is not the end of time: under Async,
		// completions routinely park behind a busy server with every
		// worker idle, and the run loop's recovery branches (deferred
		// absorb, forced completion drain, dropped-wakeup re-wake)
		// regenerate events from exactly this state. Defer to them — the
		// regenerated event carries the real frontier, and the next pass
		// fails any job it cannot save.
		return false
	}
	fired := false
	for ji, j := range s.jobs {
		if j.done || j.spec.Deadline <= 0 {
			continue
		}
		if have && next <= j.spec.Deadline {
			continue
		}
		s.failJob(ji, j.spec.Deadline, -1,
			fmt.Errorf("sim: job %q exceeded its deadline of %d units: %w",
				j.spec.Name, j.spec.Deadline, context.DeadlineExceeded),
			false)
		fired = true
	}
	return fired
}
