package sim

// Conservation, determinism, and tenancy-behaviour tests for the two
// batched management models in multi-program mode: the Async per-job
// ready buffers and the Adaptive job-tagged shards. The invariants these
// pin are exactly what the buffering could break: every granule of every
// job executed exactly once (nothing stranded in a buffer, nothing leaked
// across jobs), bit-identical reruns, and backfill still flowing during
// rundown.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/workload"
)

func multiModelJobs(t *testing.T) []JobSpec {
	t.Helper()
	return []JobSpec{
		{Name: "a", Prog: twoPhase(t, 512, enable.NewIdentity()),
			Opt: core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}},
		{Name: "b", Prog: twoPhase(t, 384, enable.NewUniversal()),
			Opt: core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()}, Priority: 1},
		{Name: "c", Prog: twoPhase(t, 256, nil),
			Opt: core.Options{Grain: 8, Costs: core.DefaultCosts()}, Weight: 2},
	}
}

// TestMultiBatchedModelsConservation: under both batched models, each
// job's compute is conserved exactly (granules in == granules out, per
// job — a cross-job leak or a task stranded in a ready buffer or shard
// would break the per-job equality), every dispatch is completed by the
// same scheduler that issued it, and utilization stays within capacity.
func TestMultiBatchedModelsConservation(t *testing.T) {
	for _, model := range []MgmtModel{Async, Adaptive} {
		jobs := multiModelJobs(t)
		want := make([]int64, len(jobs))
		for i := range jobs {
			want[i] = int64(jobs[i].Prog.TotalCost())
		}
		res, err := RunMulti(jobs, Config{Procs: 8, Mgmt: model, Batch: 4})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		var sum int64
		for i, j := range res.Jobs {
			if j.ComputeUnits != want[i] {
				t.Errorf("%v: job %s compute %d != program cost %d",
					model, j.Name, j.ComputeUnits, want[i])
			}
			if j.Sched.Dispatches != j.Sched.Completions {
				t.Errorf("%v: job %s dispatched %d tasks but completed %d",
					model, j.Name, j.Sched.Dispatches, j.Sched.Completions)
			}
			if j.Makespan <= 0 || j.Makespan > res.Makespan {
				t.Errorf("%v: job %s makespan %d outside run makespan %d",
					model, j.Name, j.Makespan, res.Makespan)
			}
			sum += j.ComputeUnits
		}
		if res.ComputeUnits != sum {
			t.Errorf("%v: aggregate compute %d != per-job sum %d", model, res.ComputeUnits, sum)
		}
		if res.Utilization > 1.0 {
			t.Errorf("%v: utilization %v exceeds capacity", model, res.Utilization)
		}
	}
}

// TestMultiBatchedModelsDeterministic: identical inputs give identical
// results under both batched models — the buffers and batch flushes are
// as replayable as the plain event order.
func TestMultiBatchedModelsDeterministic(t *testing.T) {
	for _, model := range []MgmtModel{Async, Adaptive} {
		cfg := Config{Procs: 16, Mgmt: model, Batch: 8}
		r1, err := RunMulti(multiModelJobs(t), cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		r2, err := RunMulti(multiModelJobs(t), cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if r1.Makespan != r2.Makespan || r1.MgmtUnits != r2.MgmtUnits ||
			r1.IdleUnits != r2.IdleUnits || r1.BackfillUnits != r2.BackfillUnits {
			t.Errorf("%v: nondeterministic: %+v vs %+v", model, r1, r2)
		}
		for i := range r1.Jobs {
			if r1.Jobs[i].Makespan != r2.Jobs[i].Makespan ||
				r1.Jobs[i].BackfillUnits != r2.Jobs[i].BackfillUnits {
				t.Errorf("%v: job %d diverges: %+v vs %+v",
					model, i, r1.Jobs[i], r2.Jobs[i])
			}
		}
	}
}

// TestMultiBatchedModelsBackfill: a narrow job co-scheduled with a wide
// one must still donate its idle home capacity under the batched models —
// the backfill gate (home buffer or shard refill found dry) opens the
// candidate walk exactly like the plain models' failed home probe.
func TestMultiBatchedModelsBackfill(t *testing.T) {
	for _, model := range []MgmtModel{Async, Adaptive} {
		narrow, err := workload.Chain(enable.Identity, 8, 32, workload.FixedCost(400), 7)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := workload.Chain(enable.Identity, 2, 4096, workload.FixedCost(100), 9)
		if err != nil {
			t.Fatal(err)
		}
		opt := func() core.Options {
			return core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}
		}
		res, err := RunMulti([]JobSpec{
			{Name: "narrow", Prog: narrow, Opt: opt()},
			{Name: "wide", Prog: wide, Opt: opt()},
		}, Config{Procs: 32, Mgmt: model, Batch: 4})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Jobs[1].BackfillUnits == 0 {
			t.Errorf("%v: wide job received no backfill: %+v", model, res.Jobs)
		}
		if res.BackfillUnits != res.Jobs[0].BackfillUnits+res.Jobs[1].BackfillUnits {
			t.Errorf("%v: aggregate backfill %d inconsistent", model, res.BackfillUnits)
		}
	}
}

// TestMultiAdaptivePoolController: Options.AdaptiveBatch on any job
// enables ONE pool-wide controller; the run reports the settled batch and
// stays deterministic with the controller in the loop.
func TestMultiAdaptivePoolController(t *testing.T) {
	build := func() []JobSpec {
		jobs := multiModelJobs(t)
		for i := range jobs {
			jobs[i].Opt.AdaptiveBatch = true
		}
		return jobs
	}
	cfg := Config{Procs: 8, Mgmt: Adaptive, Batch: 32}
	r1, err := RunMulti(build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Batch <= 0 {
		t.Errorf("controller-run multi reported Batch = %d", r1.Batch)
	}
	r2, err := RunMulti(build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Batch != r2.Batch || r1.BatchChanges != r2.BatchChanges {
		t.Errorf("controller run nondeterministic: %+v vs %+v", r1, r2)
	}
}

// TestMultiAsyncReadyCapKnobs: an explicit ReadyCap/LowWater pair is
// honoured per job and conservation still holds at a tiny buffer, where
// the top-up / drain interleaving is tightest.
func TestMultiAsyncReadyCapKnobs(t *testing.T) {
	jobs := multiModelJobs(t)
	want := make([]int64, len(jobs))
	for i := range jobs {
		want[i] = int64(jobs[i].Prog.TotalCost())
	}
	res, err := RunMulti(jobs, Config{Procs: 8, Mgmt: Async, ReadyCap: 2, LowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		if j.ComputeUnits != want[i] {
			t.Errorf("job %s compute %d != %d at ReadyCap=2", j.Name, j.ComputeUnits, want[i])
		}
	}
}
