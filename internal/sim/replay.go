package sim

// Deterministic trace replay: re-execute a recorded flight-recorder
// trace as a PINNED schedule against a real core.Scheduler. The trace —
// from any backend: a virtual run, a goroutine executive, a tenant pool
// — names which processor ran which task in which order; the replay
// re-derives every task from the scheduler itself (so a trace cannot
// smuggle in granules the program never released), binds each dispatch
// to its recorded processor, rebuilds the virtual timeline, and checks
// conservation:
//
//   - every recorded dispatch must name a task the scheduler actually
//     made ready at that point in the replayed order (same phase, same
//     granule range) — a trace that dispatches work before its enablers
//     completed diverges here;
//   - every phase must complete exactly its granule count, and the
//     scheduler must reach Done with nothing left ready, pending, or in
//     flight;
//   - per-processor busy time is rebuilt from the scheduler's own task
//     costs, so two traces of the same program can be compared on a
//     common virtual time base regardless of which backend recorded
//     them.
//
// Task identity matching works because task boundaries are
// grain-deterministic: the scheduler carves grain-sized slices off the
// front of each released range, so the same program under the same
// options yields the same (phase, lo, hi) task set in every run — the
// property the golden tests pin.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// ReplayResult reports a successful replay: the rebuilt virtual
// timeline plus the conserved quantities.
type ReplayResult struct {
	// Procs is the processor count the timeline was rebuilt on.
	Procs int
	// Makespan is the replayed virtual completion time (the last
	// processor's busy end).
	Makespan int64
	// Dispatches and Granules count the replayed tasks and their summed
	// granules (Granules equals the program's total on success).
	Dispatches int64
	Granules   int64
	// Busy is each processor's summed virtual task cost.
	Busy []int64
	// PhaseGranules is the per-phase completed granule count (equals
	// each phase's declared granule count on success).
	PhaseGranules []int64
	// Utilization is sum(Busy) / (Procs * Makespan).
	Utilization float64
}

// replayKey identifies a task by what the trace records about it.
type replayKey struct {
	phase  int32
	lo, hi uint32
}

func eventKey(e *trace.Event) replayKey {
	return replayKey{phase: e.Phase, lo: e.Lo, hi: e.Hi}
}

func taskKey(t core.Task) replayKey {
	return replayKey{phase: int32(t.Phase), lo: uint32(t.Run.Lo), hi: uint32(t.Run.Hi)}
}

// pendingTask is a scheduler-released task awaiting its recorded
// dispatch, stamped with the virtual time it became ready.
type pendingTask struct {
	task    core.Task
	readyAt int64
}

// inflightTask is a dispatched task awaiting its recorded completion.
type inflightTask struct {
	task core.Task
	end  int64 // virtual finish time on its processor
}

// Replay re-executes tr against a fresh scheduler for prog under opt,
// pinning every dispatch to the trace's processor and order. It fails
// with a divergence error when the trace dispatches a task the
// scheduler never released (wrong range, wrong order, or violated
// enablement) and with a conservation error when the replayed run does
// not complete the program exactly.
//
// opt must match the options of the recorded run where they shape task
// identity (Grain, split policies, mappings); management costs may
// differ — replay prices only computation.
func Replay(prog *core.Program, opt core.Options, tr *trace.Trace) (*ReplayResult, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, fmt.Errorf("sim: replay: empty trace")
	}
	if len(tr.Meta.Jobs) > 1 {
		return nil, fmt.Errorf("sim: replay: multi-job trace (%d jobs); replay one program at a time", len(tr.Meta.Jobs))
	}
	procs := tr.Procs()
	if procs < 1 {
		return nil, fmt.Errorf("sim: replay: trace names no processors")
	}
	if opt.Workers <= 0 {
		opt.Workers = procs
	}
	sched, err := core.New(prog, opt)
	if err != nil {
		return nil, err
	}
	sched.Start()

	r := &replayer{
		sched:    sched,
		pending:  make(map[replayKey]pendingTask),
		inflight: make(map[replayKey]inflightTask),
		procEnd:  make([]int64, procs),
		busy:     make([]int64, procs),
		phases:   make([]int64, len(prog.Phases)),
	}
	r.drain(0)

	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case trace.KDispatch:
			if err := r.dispatch(i, ev); err != nil {
				return nil, err
			}
		case trace.KComplete:
			if err := r.complete(i, ev); err != nil {
				return nil, err
			}
		case trace.KAbort:
			return nil, fmt.Errorf("sim: replay: trace records an aborted run (event %d)", i)
		}
	}

	// Conservation: the program must be exactly complete — nothing still
	// in flight, nothing released but never dispatched, every phase at
	// its declared granule count, scheduler done.
	if n := len(r.inflight); n != 0 {
		return nil, fmt.Errorf("sim: replay: %d dispatched tasks never completed", n)
	}
	if n := len(r.pending); n != 0 {
		return nil, fmt.Errorf("sim: replay: %d released tasks never dispatched", n)
	}
	if !sched.Done() {
		return nil, fmt.Errorf("sim: replay: trace ends with the program incomplete (phase %d)", sched.CurrentPhase())
	}
	for pi, ph := range prog.Phases {
		if r.phases[pi] != int64(ph.Granules) {
			return nil, fmt.Errorf("sim: replay: phase %d completed %d granules, program declares %d",
				pi, r.phases[pi], ph.Granules)
		}
	}

	res := &ReplayResult{
		Procs:         procs,
		Dispatches:    r.dispatches,
		Granules:      r.granules,
		Busy:          r.busy,
		PhaseGranules: r.phases,
	}
	var busyTotal int64
	for p := 0; p < procs; p++ {
		busyTotal += r.busy[p]
		if r.procEnd[p] > res.Makespan {
			res.Makespan = r.procEnd[p]
		}
	}
	if res.Makespan > 0 {
		res.Utilization = float64(busyTotal) / (float64(procs) * float64(res.Makespan))
	}
	return res, nil
}

// replayer is the replay state: the scheduler being driven, the
// released-but-undispatched pool, the dispatched-but-incomplete set,
// and the rebuilt per-processor timeline.
type replayer struct {
	sched    *core.Scheduler
	buf      []core.Task
	pending  map[replayKey]pendingTask
	inflight map[replayKey]inflightTask
	procEnd  []int64
	busy     []int64
	phases   []int64

	dispatches int64
	granules   int64
}

// drain pulls every currently-ready task out of the scheduler into the
// pending pool, stamped ready at readyAt, absorbing deferred management
// until the scheduler is dry.
func (r *replayer) drain(readyAt int64) {
	for {
		ts, _ := r.sched.NextTasks(r.buf[:0], 1<<20)
		r.buf = ts[:0]
		for _, t := range ts {
			r.pending[taskKey(t)] = pendingTask{task: t, readyAt: readyAt}
		}
		if len(ts) > 0 {
			continue
		}
		if r.sched.HasDeferred() {
			r.sched.DeferredMgmt()
			continue
		}
		return
	}
}

// dispatch binds recorded dispatch ev to a scheduler-released task and
// places it on its processor's timeline.
func (r *replayer) dispatch(i int, ev *trace.Event) error {
	if int(ev.Proc) < 0 || int(ev.Proc) >= len(r.procEnd) {
		return fmt.Errorf("sim: replay: event %d dispatches on processor %d of %d", i, ev.Proc, len(r.procEnd))
	}
	k := eventKey(ev)
	pt, ok := r.pending[k]
	if !ok {
		// The range may sit behind deferred management the original run
		// absorbed before this dispatch.
		r.drain(r.procEnd[ev.Proc])
		if pt, ok = r.pending[k]; !ok {
			return fmt.Errorf("sim: replay: divergence at event %d: dispatch of phase %d [%d,%d) which the scheduler has not released (enablement violated or task boundaries differ)",
				i, ev.Phase, ev.Lo, ev.Hi)
		}
	}
	delete(r.pending, k)
	start := r.procEnd[ev.Proc]
	if pt.readyAt > start {
		start = pt.readyAt
	}
	cost := int64(r.sched.TaskCost(pt.task))
	end := start + cost
	r.procEnd[ev.Proc] = end
	r.busy[ev.Proc] += cost
	r.inflight[k] = inflightTask{task: pt.task, end: end}
	r.dispatches++
	return nil
}

// complete applies recorded completion ev to the scheduler and drains
// the work it released, stamped ready at the completing task's finish.
func (r *replayer) complete(i int, ev *trace.Event) error {
	k := eventKey(ev)
	ft, ok := r.inflight[k]
	if !ok {
		return fmt.Errorf("sim: replay: divergence at event %d: completion of phase %d [%d,%d) which was never dispatched",
			i, ev.Phase, ev.Lo, ev.Hi)
	}
	delete(r.inflight, k)
	r.sched.Complete(ft.task)
	if ev.Phase >= 0 && int(ev.Phase) < len(r.phases) {
		r.phases[ev.Phase] += int64(ev.Hi - ev.Lo)
	}
	r.granules += int64(ev.Hi - ev.Lo)
	r.drain(ft.end)
	return nil
}
