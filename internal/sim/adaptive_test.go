package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/workload"
)

// fineChain builds the management-bound workload of the Adaptive model
// tests: an identity chain at grain 1, where per-task management rivals
// per-task compute and the serialized lock visit is the bottleneck.
func fineChain(t testing.TB, phases, granules int) *core.Program {
	t.Helper()
	prog, err := workload.Chain(enable.Identity, phases, granules,
		workload.UniformCost(100, 400, 1986), 1986)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func fineOpts() core.Options {
	return core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}
}

// runAdaptive runs prog under the Adaptive model with a fixed batch (or,
// when adapt is set, the online controller starting from batch).
func runAdaptive(t testing.TB, prog *core.Program, opt core.Options, procs, batch int, adapt bool) *Result {
	t.Helper()
	opt.AdaptiveBatch = adapt
	res, err := Run(prog, opt, Config{Procs: procs, Mgmt: Adaptive, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveModelCompletes: the Adaptive model runs programs to
// completion with all compute conserved, management charged, and the
// fixed batch reported back.
func TestAdaptiveModelCompletes(t *testing.T) {
	prog := fineChain(t, 2, 256)
	res := runAdaptive(t, prog, fineOpts(), 8, 16, false)
	if res.Workers != 8 || res.Procs != 8 {
		t.Errorf("workers=%d procs=%d, want 8/8", res.Workers, res.Procs)
	}
	if res.ComputeUnits != int64(prog.TotalCost()) {
		t.Errorf("compute=%d, want %d", res.ComputeUnits, prog.TotalCost())
	}
	if res.MgmtUnits == 0 {
		t.Error("adaptive model charged no management")
	}
	if res.Batch != 16 {
		t.Errorf("reported batch %d, want the fixed 16", res.Batch)
	}
	if res.BatchChanges != 0 {
		t.Errorf("fixed run reported %d controller changes", res.BatchChanges)
	}
}

// TestAdaptiveModelDeterminism: identical inputs, identical results —
// including the controller's trajectory.
func TestAdaptiveModelDeterminism(t *testing.T) {
	run := func() *Result {
		return runAdaptive(t, fineChain(t, 3, 512), fineOpts(), 16, 4, true)
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MgmtUnits != b.MgmtUnits ||
		a.Batch != b.Batch || a.BatchChanges != b.BatchChanges {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestAdaptiveBatchAmortizesLock: at fine grain, each serialized lock
// visit's Acquire cost dominates when every task pays it alone; a batched
// run must finish strictly sooner than batch=1. This is the
// zero-allocation steal/batching claim priced in virtual time.
func TestAdaptiveBatchAmortizesLock(t *testing.T) {
	perTask := runAdaptive(t, fineChain(t, 3, 1024), fineOpts(), 16, 1, false)
	batched := runAdaptive(t, fineChain(t, 3, 1024), fineOpts(), 16, 16, false)
	if batched.Makespan >= perTask.Makespan {
		t.Errorf("batch=16 makespan %d not below batch=1 makespan %d",
			batched.Makespan, perTask.Makespan)
	}
	if batched.Utilization <= perTask.Utilization {
		t.Errorf("batch=16 utilization %.3f not above batch=1 %.3f",
			batched.Utilization, perTask.Utilization)
	}
	if batched.ComputeUnits != perTask.ComputeUnits {
		t.Errorf("compute diverged: %d vs %d", batched.ComputeUnits, perTask.ComputeUnits)
	}
}

// TestAdaptiveConvergesNearBestFixedBatch is the controller acceptance
// test: on an E5-style management-bound ratio workload, the online
// controller must land within one multiplicative step of the knee of the
// fixed-batch sweep — the smallest fixed batch whose makespan is within
// 2% of the sweep's best — and must get a makespan competitive with that
// best, without ever being told the workload.
func TestAdaptiveConvergesNearBestFixedBatch(t *testing.T) {
	const procs = 16
	build := func() *core.Program { return fineChain(t, 3, 2048) }

	best := int64(-1)
	makespans := map[int]int64{}
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	for _, b := range caps {
		res := runAdaptive(t, build(), fineOpts(), procs, b, false)
		makespans[b] = res.Makespan
		if best < 0 || res.Makespan < best {
			best = res.Makespan
		}
	}
	knee := caps[len(caps)-1]
	for _, b := range caps {
		if float64(makespans[b]) <= float64(best)*1.02 {
			knee = b
			break
		}
	}

	// Start the controller at the untuned worst case (batch 1) so it has
	// to climb the whole amortization curve on its own.
	opt := fineOpts()
	opt.MgmtTarget = 0.03
	adaptive := runAdaptive(t, build(), opt, procs, 1, true)
	if adaptive.BatchChanges == 0 {
		t.Fatalf("controller never moved on a management-bound workload (batch stayed %d)", adaptive.Batch)
	}
	lo, hi := knee/2, knee*2
	if adaptive.Batch < lo || adaptive.Batch > hi {
		t.Errorf("controller settled at batch %d, want within one step of the knee %d (sweep %v)",
			adaptive.Batch, knee, makespans)
	}
	if float64(adaptive.Makespan) > float64(best)*1.10 {
		t.Errorf("adaptive makespan %d more than 10%% above best fixed %d (knee %d, final batch %d)",
			adaptive.Makespan, best, knee, adaptive.Batch)
	}
}

// TestAdaptiveSteadyWorkloadHolds: started at a healthy batch on a
// workload with abundant tasks and low overhead, the controller has no
// signal through the body of the run. The final drain may legitimately
// shrink once — the last refills hoard the closing tasks while peers
// park, the exact tail-latency signal the controller exists for — but a
// steady workload permits nothing more: no oscillation (a second change
// would have to reverse the first), and a makespan indistinguishable from
// the fixed run.
func TestAdaptiveSteadyWorkloadHolds(t *testing.T) {
	fixed := runAdaptive(t, fineChain(t, 3, 2048), fineOpts(), 16, 16, false)
	opt := fineOpts()
	opt.MgmtTarget = 0.03
	adaptive := runAdaptive(t, fineChain(t, 3, 2048), opt, 16, 16, true)
	if adaptive.BatchChanges > 1 {
		t.Errorf("controller made %d changes on a steady workload, want at most the drain adjustment (batch %d)",
			adaptive.BatchChanges, adaptive.Batch)
	}
	if adaptive.Batch < 8 || adaptive.Batch > 16 {
		t.Errorf("steady batch drifted to %d, want 8..16", adaptive.Batch)
	}
	d := float64(adaptive.Makespan - fixed.Makespan)
	if d < 0 {
		d = -d
	}
	if d > float64(fixed.Makespan)*0.005 {
		t.Errorf("steady adaptive makespan %d differs from fixed %d by more than 0.5%%",
			adaptive.Makespan, fixed.Makespan)
	}
}

// TestAdaptiveShedsHoarding: phases of only 32 coarse tasks under a
// 16-task refill batch hand the whole phase to two workers; the
// controller must shrink the batch — one direction only — and must not
// end up slower than the fixed configuration it abandoned.
func TestAdaptiveShedsHoarding(t *testing.T) {
	build := func() *core.Program {
		prog, err := workload.Chain(enable.Identity, 6, 2048,
			workload.UniformCost(100, 400, 7), 7)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	opt := core.Options{Grain: 64, Overlap: true, Costs: core.DefaultCosts()}
	fixed, err := Run(build(), opt, Config{Procs: 8, Mgmt: Adaptive, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	opt.AdaptiveBatch = true
	adaptive, err := Run(build(), opt, Config{Procs: 8, Mgmt: Adaptive, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Batch >= 16 {
		t.Errorf("controller did not shrink a hoarding batch (still %d)", adaptive.Batch)
	}
	if float64(adaptive.Makespan) > float64(fixed.Makespan)*1.03 {
		t.Errorf("adaptive makespan %d worse than the hoarding fixed batch %d",
			adaptive.Makespan, fixed.Makespan)
	}
}

// TestAdaptiveAcceptedInMulti: the Adaptive model prices multi-program
// runs (job-tagged shards with flush-before-switch); a single-job multi
// run must complete and execute every granule.
func TestAdaptiveAcceptedInMulti(t *testing.T) {
	prog := fineChain(t, 2, 64)
	res, err := RunMulti([]JobSpec{{Name: "a", Prog: prog, Opt: fineOpts()}},
		Config{Procs: 4, Mgmt: Adaptive})
	if err != nil {
		t.Fatalf("RunMulti rejected the Adaptive model: %v", err)
	}
	if res.ComputeUnits != int64(prog.TotalCost()) {
		t.Errorf("compute units %d, want the program's total cost %d",
			res.ComputeUnits, prog.TotalCost())
	}
	if res.Batch == 0 {
		t.Error("Adaptive multi run reported Batch = 0")
	}
}

// TestAdaptivePhaseEndsWithinMakespan: batched completion flushes charge
// management after the last task's event; the phase End bookkeeping must
// still stay inside the reported makespan.
func TestAdaptivePhaseEndsWithinMakespan(t *testing.T) {
	n := 96
	prog, err := core.NewProgram(&core.Phase{
		Name: "only", Granules: n,
		Cost: func(granule.ID) core.Cost { return 50 },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, core.Options{Grain: 2, Costs: core.DefaultCosts()},
		Config{Procs: 4, Mgmt: Adaptive, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range res.Phases {
		if pt.End > res.Makespan {
			t.Errorf("phase %d End=%d exceeds makespan %d", i, pt.End, res.Makespan)
		}
	}
}
