package sim

// This file is the virtual-time observability surface: a simulation run
// configured with Config.Observer emits periodic Snapshots as its virtual
// frontier advances, so a caller can watch utilization and overhead build
// up *inside* a deterministic run instead of only reading the final
// Result. The emission points are deterministic — snapshots fire when the
// frontier crosses fixed virtual-time marks, never from a wall-clock
// ticker — so an observed run produces the same snapshot sequence every
// time, and observation cannot perturb the schedule.

// Snapshot is one periodic observation of a running simulation. All
// counters are cumulative since t=0. IdleUnits only counts closed park
// intervals (a worker still parked at the snapshot mark contributes
// nothing until it wakes), matching how the run loop accounts idle time.
type Snapshot struct {
	// VirtualTime is the frontier the run had reached when the snapshot
	// fired: the later of the management server's horizon and the last
	// task completion.
	VirtualTime int64
	// Tasks is the number of tasks dispatched so far.
	Tasks int64
	// ComputeUnits, MgmtUnits and IdleUnits are the cumulative totals so
	// far, in virtual units. ComputeUnits counts completed tasks only —
	// in-flight tasks' remaining work is excluded, so Utilization can
	// never read above 1.
	ComputeUnits int64
	MgmtUnits    int64
	IdleUnits    int64
	// Utilization is ComputeUnits / (Procs * VirtualTime) so far.
	Utilization float64
	// OverheadShare is MgmtUnits / (Procs * VirtualTime) so far — the
	// work-inflation share the executive is consuming.
	OverheadShare float64
	// Batch is the Adaptive model's current refill batch size (zero under
	// the other models) — live evidence of the controller moving.
	Batch int
	// Jobs is the number of unfinished jobs: 1 while a single-program
	// run is live (0 on its Final snapshot); counts down to 0 in
	// multi-program runs.
	Jobs int
	// Final marks the closing snapshot, emitted once at the makespan with
	// the run's finished totals.
	Final bool
}

// observeStride picks the default snapshot stride for a run whose total
// cost divided over the workers estimates the makespan: about 16
// snapshots per run.
func observeStride(totalCost int64, workers int) int64 {
	est := totalCost/int64(workers) + 1
	stride := est / 16
	if stride < 1 {
		stride = 1
	}
	return stride
}

// observer is the shared emission state for both run loops.
type observer struct {
	fn     func(Snapshot)
	stride int64
	next   int64
}

func newObserver(fn func(Snapshot), every, totalCost int64, workers int) *observer {
	if fn == nil {
		return nil
	}
	if every <= 0 {
		every = observeStride(totalCost, workers)
	}
	return &observer{fn: fn, stride: every, next: every}
}

// maybe emits one snapshot when the run's frontier has crossed the next
// mark. now must report the frontier and snap must build the snapshot at
// it; both are thunks the caller pre-binds once, so the per-event cost is
// one indirect call against a cached O(1) frontier — never a fresh
// closure allocation or an O(jobs) scan. Advancing next past the
// frontier (not by one stride) keeps long event gaps from flushing a
// burst of identical snapshots. It reports the frontier and whether a
// snapshot fired, so the caller can flight-record the observation mark
// at the same deterministic point (trace KMark).
func (o *observer) maybe(now func() int64, snap func(at int64) Snapshot) (int64, bool) {
	if o == nil {
		return 0, false
	}
	frontier := now()
	if frontier < o.next {
		return frontier, false
	}
	o.fn(snap(frontier))
	o.next = (frontier/o.stride + 1) * o.stride
	return frontier, true
}

// final emits the closing snapshot.
func (o *observer) final(s Snapshot) {
	if o == nil {
		return
	}
	s.Final = true
	o.fn(s)
}
