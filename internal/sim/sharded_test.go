package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
)

// TestShardedModelCompletes: the Sharded model runs programs to completion
// with all compute conserved and every processor computing (no stolen
// executive processor).
func TestShardedModelCompletes(t *testing.T) {
	prog := twoPhase(t, 256, enable.NewIdentity())
	res, err := Run(prog,
		core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: Sharded})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 8 || res.Procs != 8 {
		t.Errorf("workers=%d procs=%d, want 8/8", res.Workers, res.Procs)
	}
	if res.ComputeUnits != int64(prog.TotalCost()) {
		t.Errorf("compute=%d, want %d", res.ComputeUnits, prog.TotalCost())
	}
	if res.MgmtUnits == 0 {
		t.Error("sharded model charged no management")
	}
}

// TestShardedModelRelievesMgmtBottleneck: at fine grain the per-task
// management cost exceeds the per-task compute cost, so the serial
// executive is the bottleneck and the machine runs at its speed. The
// sharded model distributes that management across the processors, so the
// same program must finish strictly sooner.
func TestShardedModelRelievesMgmtBottleneck(t *testing.T) {
	build := func() *core.Program { return twoPhase(t, 1024, enable.NewIdentity()) }
	serial, err := Run(build(),
		core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: StealsWorker})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(build(),
		core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: Sharded})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Makespan >= serial.Makespan {
		t.Errorf("sharded makespan %d not below serial %d", sharded.Makespan, serial.Makespan)
	}
	if sharded.Utilization <= serial.Utilization {
		t.Errorf("sharded utilization %.3f not above serial %.3f",
			sharded.Utilization, serial.Utilization)
	}
	if sharded.ComputeUnits != serial.ComputeUnits {
		t.Errorf("compute diverged: %d vs %d", sharded.ComputeUnits, serial.ComputeUnits)
	}
}

// TestShardedModelDeterminism: identical inputs, identical results.
func TestShardedModelDeterminism(t *testing.T) {
	run := func() *Result {
		prog := twoPhase(t, 512, enable.NewIdentity())
		res, err := Run(prog,
			core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
			Config{Procs: 16, Mgmt: Sharded})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MgmtUnits != b.MgmtUnits || a.IdleUnits != b.IdleUnits {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestShardedModelMakespanCoversTrailingMgmt: management charged to a
// worker's lane after its last task completes must not escape the
// makespan — the phase End time can never exceed the reported makespan.
func TestShardedModelMakespanCoversTrailingMgmt(t *testing.T) {
	prog := onePhase(t, 64)
	res, err := Run(prog,
		core.Options{Grain: 4, Costs: core.DefaultCosts()},
		Config{Procs: 4, Mgmt: Sharded})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range res.Phases {
		if pt.End > res.Makespan {
			t.Errorf("phase %d End=%d exceeds makespan %d", i, pt.End, res.Makespan)
		}
	}
}
