package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// ErrUnsupportedMgmt reports a management model a simulation mode cannot
// price. Errors wrapping it name the rejected model and the supported
// alternatives; test with errors.Is.
var ErrUnsupportedMgmt = errors.New("sim: unsupported management model")

// This file is the MultiProgram mode: several jobs, each with its own
// core.Scheduler, sharing one P-processor machine in virtual time — the
// discrete-event analogue of internal/tenant's worker pool. It prices
// what tenancy costs the hot path: every management probe (including a
// failed ask at a foreign job) is charged to the executive resource under
// the same management models as Run, and the dispatch policy mirrors the
// pool exactly: a worker serves its home job while anything there is
// dispatchable, and backfills the other jobs — priority first, then
// deficit-round-robin credit — only during its home job's rundown.

// mdrrQuantum matches the tenant pool's deficit-round-robin quantum.
const mdrrQuantum = 64

// JobSpec describes one job of a multi-program run.
type JobSpec struct {
	// Name labels the job in results ("jobN" default).
	Name string
	// Prog is the job's program.
	Prog *core.Program
	// Opt configures the job's scheduler.
	Opt core.Options
	// Priority orders backfill (higher first), as in tenant.JobConfig.
	Priority int
	// Weight is the job's share of home workers and backfill credit
	// (<= 0 selects 1).
	Weight int
}

// JobResult aggregates one job's outcome within a multi-program run.
type JobResult struct {
	Name string
	// Makespan is the virtual time the job's last completion finished
	// processing (all jobs start at t=0).
	Makespan int64
	// ComputeUnits is the job's total granule execution time.
	ComputeUnits int64
	// BackfillUnits is the part of ComputeUnits performed by processors
	// homed on another job — the rundown fill the job received.
	BackfillUnits int64
	// HomeWorkers is the job's home-worker share at the start of the run.
	HomeWorkers int
	// Sched is the job's scheduler statistics.
	Sched core.Stats
}

// MultiResult aggregates a multi-program run.
type MultiResult struct {
	// Makespan is the virtual completion time of the last job.
	Makespan int64
	// ComputeUnits, MgmtUnits and IdleUnits aggregate across jobs.
	ComputeUnits int64
	MgmtUnits    int64
	IdleUnits    int64
	// BackfillUnits is total cross-job compute (every job's backfill).
	BackfillUnits int64
	// Workers is the number of processors that executed granules; Procs
	// is the machine size P.
	Workers int
	Procs   int
	// Utilization is ComputeUnits / (Procs * Makespan).
	Utilization float64
	// Jobs holds the per-job results in submission order.
	Jobs []JobResult
}

// mjob is one job's runtime state.
type mjob struct {
	spec    JobSpec
	sched   *core.Scheduler
	deficit int64
	done    bool
	// openAt gates dispatch: a serial action between phases (charged
	// inside the completion that advanced the phase window) must finish
	// before the next phase's queued granules may be handed out. The
	// single-program simulator enforces this implicitly — every other
	// worker is parked and the wake carries the serial's finish time —
	// but in a shared pool another job's event can wake a worker inside
	// the serial window, so the gate must be explicit.
	openAt int64

	makespan int64
	compute  int64
	backfill int64
	homeAt0  int
}

// mitem is one queue entry: a task completion (isDone) or an idle
// worker's ask for work. Unlike the single-program simulator's FIFO
// request list, the multi-program queue is strictly TIME-ordered
// (insertion order only breaks ties): with one job, serving a
// future-stamped wake before an earlier completion is harmless — nothing
// else could have used the worker — but with several jobs one job's
// serial-action delay must not commit workers before another job's
// earlier release gets a chance to claim them.
//
// Asks carry the issuing generation of their worker: a parked worker
// woken for time T can be re-woken for an earlier T' by another job's
// release, and the superseded ask must then die when it surfaces.
type mitem struct {
	at     int64
	seq    int64
	isDone bool
	proc   int
	gen    int64
	job    int
	task   core.Task
	dur    int64 // completed task's compute cost (isDone only)
}

type mqueue []mitem

func (h mqueue) Len() int { return len(h) }
func (h mqueue) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	// Asks before completions at equal times, matching the single-program
	// loop (which drains every pending request before the next event).
	if h[i].isDone != h[j].isDone {
		return !h[i].isDone
	}
	return h[i].seq < h[j].seq
}
func (h mqueue) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mqueue) Push(x any)   { *h = append(*h, x.(mitem)) }
func (h *mqueue) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (h mqueue) peekTime() (int64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// SupportsMulti reports whether RunMulti can price model — the static
// form of the ErrUnsupportedMgmt check, so a caller can discover the
// rejection before building jobs and running. RunMulti's own gate is
// derived from it, so the two can never disagree: per-worker batch state
// (Adaptive) and the shared ready-buffer (Async) do not interleave with
// cross-job backfill — a worker switching jobs would strand buffered
// tasks of the job it left.
func SupportsMulti(m MgmtModel) bool {
	switch m {
	case Adaptive, Async:
		return false
	}
	return true
}

// RunMulti simulates jobs sharing one machine under cfg. All jobs start
// at t=0. Config.BucketWidth, Gantt and the timeline are not used in
// multi-program mode; Mgmt selects the StealsWorker, Dedicated or Sharded
// management model (SupportsMulti reports the accepted set — the batched
// Adaptive model and the ready-buffer Async model are single-program
// only).
func RunMulti(jobs []JobSpec, cfg Config) (*MultiResult, error) {
	return RunMultiContext(context.Background(), jobs, cfg)
}

// RunMultiContext is RunMulti with cooperative cancellation: the event
// loop checks ctx between management operations and a cancelled run
// returns an error wrapping ctx.Err() (test with errors.Is). A nil ctx
// behaves like context.Background().
func RunMultiContext(ctx context.Context, jobs []JobSpec, cfg Config) (*MultiResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// failEarly keeps the observer contract — one Final snapshot on
	// every outcome — for runs that die before starting.
	failEarly := func(err error) (*MultiResult, error) {
		if cfg.Observer != nil {
			cfg.Observer(Snapshot{Final: true})
		}
		return nil, err
	}
	if len(jobs) == 0 {
		return failEarly(fmt.Errorf("sim: RunMulti needs at least one job"))
	}
	if cfg.Procs < 1 {
		return failEarly(fmt.Errorf("sim: need at least 1 processor"))
	}
	if !SupportsMulti(cfg.Mgmt) {
		return failEarly(fmt.Errorf("%w: the %v model is single-program only (multi-program runs support steals-worker, dedicated, and sharded)",
			ErrUnsupportedMgmt, cfg.Mgmt))
	}
	workers := cfg.Procs
	if cfg.Mgmt == StealsWorker {
		workers = cfg.Procs - 1
		if workers < 1 {
			return failEarly(fmt.Errorf("sim: StealsWorker model needs at least 2 processors"))
		}
	}

	s := &mstate{
		ctx:        ctx,
		model:      cfg.Mgmt,
		workers:    workers,
		procs:      cfg.Procs,
		homes:      make([]int, workers),
		parked:     make([]bool, workers),
		parkedAt:   make([]int64, workers),
		pendingAt:  make([]int64, workers),
		askGen:     make([]int64, workers),
		workerFree: make([]int64, workers),
	}
	var totalGranules, totalCost int64
	for i := range jobs {
		spec := jobs[i]
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("job%d", i)
		}
		if spec.Weight <= 0 {
			spec.Weight = 1
		}
		opt := spec.Opt
		if opt.Workers <= 0 {
			opt.Workers = workers
		}
		sched, err := core.New(spec.Prog, opt)
		if err != nil {
			return failEarly(fmt.Errorf("sim: job %q: %w", spec.Name, err))
		}
		s.jobs = append(s.jobs, &mjob{spec: spec, sched: sched})
		totalGranules += int64(spec.Prog.TotalGranules())
		totalCost += int64(spec.Prog.TotalCost())
	}
	s.obs = newObserver(cfg.Observer, cfg.ObserveEvery, totalCost, workers)

	maxOps := cfg.MaxOps
	if maxOps <= 0 {
		maxOps = totalGranules*64 + int64(workers)*1024 + 1_000_000
	}
	if err := s.run(maxOps); err != nil {
		// Close the observer stream on failure too, with the counters
		// accumulated so far.
		s.obs.final(s.snapshot(s.frontier()))
		return nil, err
	}
	res := s.result()
	s.obs.final(s.snapshot(res.Makespan))
	return res, nil
}

type mstate struct {
	ctx     context.Context
	jobs    []*mjob
	model   MgmtModel
	workers int
	procs   int
	obs     *observer

	queue      mqueue
	seq        int64
	serverFree int64
	workerFree []int64

	homes     []int // worker -> job index; -1 when every job is done
	parked    []bool
	parkedAt  []int64
	pendingAt []int64 // scheduled wake time of a parked worker; -1 = none
	askGen    []int64 // bumps when a pending ask is superseded

	idleUnits    int64
	computeUnits int64
	doneUnits    int64 // compute of tasks whose completion event was served
	mgmtUnits    int64
	lastDone     int64
}

// chargeMgmt mirrors the single-program state.chargeMgmt: serialize on
// the management server, or — Sharded — inline on the worker's own lane.
func (s *mstate) chargeMgmt(w int, at int64, cost core.Cost) int64 {
	if s.model != Sharded || w < 0 {
		return s.serve(at, cost)
	}
	start := at
	if s.workerFree[w] > start {
		start = s.workerFree[w]
	}
	fin := start + int64(cost)
	s.mgmtUnits += int64(cost)
	s.workerFree[w] = fin
	if fin > s.serverFree {
		s.serverFree = fin
	}
	return fin
}

func (s *mstate) serve(at int64, cost core.Cost) int64 {
	start := at
	if s.serverFree > start {
		start = s.serverFree
	}
	fin := start + int64(cost)
	s.mgmtUnits += int64(cost)
	s.serverFree = fin
	return fin
}

// rebalance assigns home workers over the unfinished jobs by weighted
// largest-remainder, leftovers to the highest (priority, remainder,
// index) — the tenant pool's policy in virtual time.
func (s *mstate) rebalance() {
	live := make([]int, 0, len(s.jobs))
	total := 0
	for i, j := range s.jobs {
		if !j.done {
			live = append(live, i)
			total += j.spec.Weight
		}
	}
	if len(live) == 0 {
		for w := range s.homes {
			s.homes[w] = -1
		}
		return
	}
	n := len(live)
	shares := make([]int, n)
	rems := make([]int, n)
	assigned := 0
	for k, ji := range live {
		exact := s.workers * s.jobs[ji].spec.Weight
		shares[k] = exact / total
		rems[k] = exact % total
		assigned += shares[k]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := s.jobs[live[order[a]]], s.jobs[live[order[b]]]
		if ja.spec.Priority != jb.spec.Priority {
			return ja.spec.Priority > jb.spec.Priority
		}
		return rems[order[a]] > rems[order[b]]
	})
	for i := 0; assigned < s.workers; i = (i + 1) % n {
		shares[order[i]]++
		assigned++
	}
	slot := 0
	for k, ji := range live {
		for c := 0; c < shares[k]; c++ {
			s.homes[slot] = ji
			slot++
		}
	}
}

// candidates returns the job order worker w asks for work in: home first,
// then the backfill candidates by (priority, deficit, index), with the
// deficit-round-robin credit replenished when collectively exhausted.
func (s *mstate) candidates(w int) []int {
	home := s.homes[w]
	out := make([]int, 0, len(s.jobs))
	if home >= 0 && !s.jobs[home].done {
		out = append(out, home)
	}
	var backfill []int
	credit := false
	for i, j := range s.jobs {
		if i == home || j.done {
			continue
		}
		backfill = append(backfill, i)
		if j.deficit > 0 {
			credit = true
		}
	}
	if len(backfill) > 0 && !credit {
		for _, j := range s.jobs {
			if !j.done {
				j.deficit += int64(j.spec.Weight) * mdrrQuantum
			}
		}
	}
	sort.SliceStable(backfill, func(a, b int) bool {
		ja, jb := s.jobs[backfill[a]], s.jobs[backfill[b]]
		if ja.spec.Priority != jb.spec.Priority {
			return ja.spec.Priority > jb.spec.Priority
		}
		if ja.deficit != jb.deficit {
			return ja.deficit > jb.deficit
		}
		return backfill[a] < backfill[b]
	})
	return append(out, backfill...)
}

func (s *mstate) park(w int, at int64) {
	if s.parked[w] {
		return
	}
	s.parked[w] = true
	s.parkedAt[w] = at
	s.pendingAt[w] = -1
}

// wake schedules asks for parked workers at time at, bounded by the
// ready tasks across all unfinished jobs. A worker stays parked until its
// ask is served: a wake carrying a serial-action delay schedules the ask
// in the future, and a later release by ANOTHER job may land inside that
// window — the earlier wake then supersedes the pending one (askGen
// orphans the stale ask). Without this, one job's serial action would
// phantom-occupy workers the other jobs could have used.
func (s *mstate) wake(at int64) {
	avail := 0
	for _, j := range s.jobs {
		if !j.done {
			avail += j.sched.ReadyTasks()
		}
	}
	for w := 0; w < s.workers && avail > 0; w++ {
		if !s.parked[w] {
			continue
		}
		if s.pendingAt[w] >= 0 && s.pendingAt[w] <= at {
			continue // already scheduled no later than this wake
		}
		s.pendingAt[w] = at
		s.askGen[w]++
		s.push(mitem{at: at, proc: w, gen: s.askGen[w]})
		avail--
	}
}

// push enqueues an item with the next tie-break sequence number.
func (s *mstate) push(it mitem) {
	s.seq++
	it.seq = s.seq
	heap.Push(&s.queue, it)
}

func (s *mstate) run(maxOps int64) error {
	// An already-cancelled context aborts before any work (the in-loop
	// poll is batched and would let a small run finish unobserved).
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("sim: multi run canceled at t=0: %w", err)
	}
	for _, j := range s.jobs {
		fin := s.serve(s.serverFree, j.sched.Start())
		if j.sched.Stats().SerialCost > 0 {
			j.openAt = fin
		}
	}
	s.rebalance()
	for i, j := range s.jobs {
		j.homeAt0 = 0
		for _, h := range s.homes {
			if h == i {
				j.homeAt0++
			}
		}
	}
	for w := 0; w < s.workers; w++ {
		s.push(mitem{at: s.serverFree, proc: w, gen: s.askGen[w]})
	}

	var ops int64
	for {
		ops++
		if ops > maxOps {
			return fmt.Errorf("sim: multi run exceeded %d management operations (runaway?)", maxOps)
		}
		// Cooperative cancellation, as in the single-program loop: one ctx
		// poll per batch of management operations.
		if ops&1023 == 0 {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("sim: multi run canceled at t=%d: %w", s.frontier(), err)
			}
		}
		// Guarded here, not in maybe: an unobserved run must not pay the
		// O(jobs) frontier scan per event.
		if s.obs != nil {
			s.obs.maybe(s.frontier(), s.snapshot)
		}

		// Idle executive moment (nothing due before the management
		// resource frees up): absorb one deferred management item from
		// the first unfinished job that has any (deterministic order).
		next, have := s.queue.peekTime()
		if !have || next >= s.serverFree {
			absorbed := false
			for _, j := range s.jobs {
				if !j.done && j.sched.HasDeferred() {
					if cost, ok := j.sched.DeferredMgmt(); ok {
						fin := s.serve(s.serverFree, cost)
						s.wake(fin)
						absorbed = true
						break
					}
				}
			}
			if absorbed {
				continue
			}
		}

		if have {
			it := heap.Pop(&s.queue).(mitem)
			if it.isDone {
				s.completeTask(it)
			} else {
				s.serveAsk(it)
			}
			continue
		}

		alldone := true
		for _, j := range s.jobs {
			if !j.done {
				alldone = false
				break
			}
		}
		if alldone {
			return nil
		}
		return fmt.Errorf("sim: multi run stalled at t=%d: queue empty, jobs incomplete", s.serverFree)
	}
}

// serveAsk handles an idle worker's ask: it walks the dispatch-policy
// order, charging every probe's management cost, and parks the worker
// when every candidate is dry. A candidate skipped because its serial
// action is still running reopens at a known time, so a worker that then
// parks schedules its own retry for the earliest such reopening — the
// wake that announced the gated work ran when openAt was set and cannot
// see workers that park later.
func (s *mstate) serveAsk(req mitem) {
	if req.gen != s.askGen[req.proc] {
		return // superseded by an earlier wake
	}
	if s.parked[req.proc] {
		s.parked[req.proc] = false
		s.pendingAt[req.proc] = -1
		if d := req.at - s.parkedAt[req.proc]; d > 0 {
			s.idleUnits += d
		}
	}
	at := req.at
	home := s.homes[req.proc]
	reopen := int64(-1)
	for _, ji := range s.candidates(req.proc) {
		j := s.jobs[ji]
		if at < j.openAt {
			// The job's between-phase serial action is still running.
			if reopen < 0 || j.openAt < reopen {
				reopen = j.openAt
			}
			continue
		}
		task, cost, ok := j.sched.NextTask()
		fin := s.chargeMgmt(req.proc, at, cost)
		if ok {
			if ji != home {
				j.deficit -= int64(task.Run.Len())
			}
			s.dispatch(req.proc, ji, ji != home, task, fin)
			return
		}
		at = fin
	}
	s.park(req.proc, at)
	if reopen >= 0 {
		s.pendingAt[req.proc] = reopen
		s.askGen[req.proc]++
		s.push(mitem{at: reopen, proc: req.proc, gen: s.askGen[req.proc]})
	}
}

func (s *mstate) dispatch(worker, ji int, backfill bool, task core.Task, at int64) {
	j := s.jobs[ji]
	dur := int64(j.sched.TaskCost(task))
	end := at + dur
	s.computeUnits += dur
	j.compute += dur
	if backfill {
		j.backfill += dur
	}
	if end > s.workerFree[worker] {
		s.workerFree[worker] = end
	}
	s.push(mitem{at: end, isDone: true, proc: worker, job: ji, task: task, dur: dur})
}

func (s *mstate) completeTask(req mitem) {
	// Done-work accrual for the observer (see the single-program loop):
	// snapshots count a task's compute only once it has completed.
	s.doneUnits += req.dur
	j := s.jobs[req.job]
	serial0 := j.sched.Stats().SerialCost
	cost := j.sched.Complete(req.task)
	fin := s.chargeMgmt(req.proc, req.at, cost)
	if j.sched.Stats().SerialCost > serial0 && fin > j.openAt {
		j.openAt = fin
	}
	if req.at > s.lastDone {
		s.lastDone = req.at
	}
	if fin > j.makespan {
		j.makespan = fin
	}
	if !j.done && j.sched.Done() {
		j.done = true
		s.rebalance()
	}
	s.wake(fin)
	s.push(mitem{at: fin, proc: req.proc, gen: s.askGen[req.proc]})
}

// frontier is the run's virtual-time high-water mark, matching the
// makespan quantity result() reports: the last completion event or
// completion-processing finish. The management server's own horizon
// (serverFree) is deliberately excluded — trailing zero-cost asks and
// deferred absorption can push it past the final makespan, and the
// observer stream must never report a VirtualTime beyond the Final
// snapshot's.
func (s *mstate) frontier() int64 {
	f := s.lastDone
	for _, j := range s.jobs {
		if j.makespan > f {
			f = j.makespan
		}
	}
	return f
}

// snapshot builds an observation of the multi-program run at virtual
// time at. Jobs counts the still-unfinished jobs, so a live observer
// watches the tenancy drain; ComputeUnits counts completed tasks only
// (see the single-program snapshot).
func (s *mstate) snapshot(at int64) Snapshot {
	sn := Snapshot{
		VirtualTime:  at,
		ComputeUnits: s.doneUnits,
		MgmtUnits:    s.mgmtUnits,
		IdleUnits:    s.idleUnits,
	}
	for _, j := range s.jobs {
		sn.Tasks += j.sched.Stats().Dispatches
		if !j.done {
			sn.Jobs++
		}
	}
	if at > 0 {
		capacity := float64(s.procs) * float64(at)
		sn.Utilization = float64(sn.ComputeUnits) / capacity
		sn.OverheadShare = float64(s.mgmtUnits) / capacity
	}
	return sn
}

func (s *mstate) result() *MultiResult {
	makespan := s.lastDone
	for _, j := range s.jobs {
		if j.makespan > makespan {
			makespan = j.makespan
		}
	}
	for w := range s.parked {
		if s.parked[w] {
			s.parked[w] = false
			if d := makespan - s.parkedAt[w]; d > 0 {
				s.idleUnits += d
			}
		}
	}
	res := &MultiResult{
		Makespan:     makespan,
		ComputeUnits: s.computeUnits,
		MgmtUnits:    s.mgmtUnits,
		IdleUnits:    s.idleUnits,
		Workers:      s.workers,
		Procs:        s.procs,
	}
	for _, j := range s.jobs {
		res.BackfillUnits += j.backfill
		res.Jobs = append(res.Jobs, JobResult{
			Name:          j.spec.Name,
			Makespan:      j.makespan,
			ComputeUnits:  j.compute,
			BackfillUnits: j.backfill,
			HomeWorkers:   j.homeAt0,
			Sched:         j.sched.Stats(),
		})
	}
	if makespan > 0 {
		res.Utilization = float64(s.computeUnits) / (float64(s.procs) * float64(makespan))
	}
	return res
}
