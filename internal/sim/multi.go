package sim

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrUnsupportedMgmt reports a management model a simulation mode cannot
// price. Errors wrapping it name the rejected model and the supported
// alternatives; test with errors.Is.
var ErrUnsupportedMgmt = errors.New("sim: unsupported management model")

// This file is the MultiProgram mode: several jobs, each with its own
// core.Scheduler, sharing one P-processor machine in virtual time — the
// discrete-event analogue of internal/tenant's worker pool. It prices
// what tenancy costs the hot path: every management probe (including a
// failed ask at a foreign job) is charged to the executive resource under
// the same management models as Run, and the dispatch policy mirrors the
// pool exactly: a worker serves its home job while anything there is
// dispatchable, and backfills the other jobs — priority first, then
// deficit-round-robin credit — only during its home job's rundown.

// mdrrQuantum matches the tenant pool's deficit-round-robin quantum.
const mdrrQuantum = 64

// JobSpec describes one job of a multi-program run.
type JobSpec struct {
	// Name labels the job in results ("jobN" default).
	Name string
	// Prog is the job's program.
	Prog *core.Program
	// Opt configures the job's scheduler.
	Opt core.Options
	// Priority orders backfill (higher first), as in tenant.JobConfig.
	Priority int
	// Weight is the job's share of home workers and backfill credit
	// (<= 0 selects 1).
	Weight int
	// Deadline is the job's virtual-time budget (<= 0 = none): a job not
	// done by t=Deadline is aborted AT the deadline with an error
	// wrapping context.DeadlineExceeded; co-tenants keep running.
	Deadline int64
	// Retry is how many times an injected grain failure (panic or error)
	// restarts the job on a fresh scheduler. Deadline aborts never
	// retry.
	Retry int
	// Backoff is the base restart delay in virtual units, doubled on
	// each further attempt and capped at 64× base (0 = restart
	// immediately).
	Backoff int64
}

// JobResult aggregates one job's outcome within a multi-program run.
type JobResult struct {
	Name string
	// Makespan is the virtual time the job's last completion finished
	// processing (all jobs start at t=0).
	Makespan int64
	// ComputeUnits is the job's total granule execution time.
	ComputeUnits int64
	// BackfillUnits is the part of ComputeUnits performed by processors
	// homed on another job — the rundown fill the job received.
	BackfillUnits int64
	// HomeWorkers is the job's home-worker share at the start of the run.
	HomeWorkers int
	// Sched is the job's scheduler statistics.
	Sched core.Stats
	// Err is the job's terminal error (nil = completed): an injected
	// failure that exhausted its retries, or a deadline abort (test with
	// errors.Is(err, context.DeadlineExceeded)). A failed job's Makespan
	// is the time it was retired.
	Err error
	// Attempts counts schedule attempts (1 = never retried).
	Attempts int
}

// MultiResult aggregates a multi-program run.
type MultiResult struct {
	// Makespan is the virtual completion time of the last job.
	Makespan int64
	// ComputeUnits, MgmtUnits and IdleUnits aggregate across jobs.
	ComputeUnits int64
	MgmtUnits    int64
	IdleUnits    int64
	// BackfillUnits is total cross-job compute (every job's backfill).
	BackfillUnits int64
	// Workers is the number of processors that executed granules; Procs
	// is the machine size P.
	Workers int
	Procs   int
	// Utilization is ComputeUnits / (Procs * Makespan).
	Utilization float64
	// Batch is the pool-wide refill batch size at the end of the run
	// (Adaptive model only; see Result.Batch). Zero under other models.
	Batch int
	// BatchChanges counts the pool-wide adaptive controller's parameter
	// changes (Adaptive model with Options.AdaptiveBatch on any job).
	BatchChanges int
	// Faults counts injected fault firings (Config.Faults); Retries
	// counts job restarts.
	Faults  int64
	Retries int64
	// MaxBackfillTask is the largest backfill dispatch in granules — the
	// measured bound Config.PreemptBound caps.
	MaxBackfillTask int
	// Jobs holds the per-job results in submission order.
	Jobs []JobResult
}

// mjob is one job's runtime state.
type mjob struct {
	spec    JobSpec
	sched   *core.Scheduler
	deficit int64
	done    bool
	// ready and hasDef cache sched.ReadyTasks() and sched.HasDeferred(),
	// refreshed by mstate.syncReady after every scheduler call, so wake
	// and the idle-absorption probe read counters instead of re-querying
	// every job per event.
	ready  int
	hasDef bool
	// openAt gates dispatch: a serial action between phases (charged
	// inside the completion that advanced the phase window) must finish
	// before the next phase's queued granules may be handed out. The
	// single-program simulator enforces this implicitly — every other
	// worker is parked and the wake carries the serial's finish time —
	// but in a shared pool another job's event can wake a worker inside
	// the serial window, so the gate must be explicit.
	openAt int64

	makespan int64
	compute  int64
	backfill int64
	homeAt0  int

	// Failure state (see faults.go): the resolved options retries
	// re-create the scheduler from, the attempt generation completion
	// events must match to be believed (a failure bumps it, orphaning the
	// dead attempt's in-flight work), the attempt count, the remaining
	// retry budget, and the terminal error.
	opt         core.Options
	attempt     int64
	attempts    int
	retriesLeft int
	err         error

	// Async model state: the job's slice of the shared dedicated server's
	// ready buffer (tasks already pulled from this job's scheduler, each
	// stamped with its production time), the completions queued behind the
	// server, and the NextTasks scratch. See multi_async.go.
	aready []asyncSlot
	acomp  []core.Task
	abuf   []core.Task
}

// mitem is one queue entry: a task completion (isDone) or an idle
// worker's ask for work. Unlike the single-program simulator's FIFO
// request list, the multi-program queue is strictly TIME-ordered
// (insertion order only breaks ties): with one job, serving a
// future-stamped wake before an earlier completion is harmless — nothing
// else could have used the worker — but with several jobs one job's
// serial-action delay must not commit workers before another job's
// earlier release gets a chance to claim them.
//
// Asks carry the issuing generation of their worker: a parked worker
// woken for time T can be re-woken for an earlier T' by another job's
// release, and the superseded ask must then die when it surfaces.
// Completions carry their job's ATTEMPT generation instead: a job
// failure bumps it, and the dead attempt's in-flight completions are
// dropped when they surface (the worker is freed, the result
// discarded).
type mitem struct {
	at     int64
	seq    int64
	isDone bool
	proc   int
	gen    int64
	job    int
	task   core.Task
	dur    int64 // completed task's compute cost (isDone only)
	fail   error // injected grain failure carried by this completion
}

// The queue holding mitems is the typed 4-ary mqueue in heap.go, ordered
// by (at, asks-before-completions, seq).

// SupportsMulti reports whether RunMulti can price model — the static
// form of the ErrUnsupportedMgmt check, so a caller can discover a
// rejection before building jobs and running. Every current model is
// supported: the Async model keeps per-job ready buffers on the shared
// dedicated server (an ask pops the asker's candidate buffers in
// dispatch-policy order, so cross-job backfill never strands a buffered
// task), and the Adaptive model tags each worker's batch shard with the
// job it was refilled from, flushing the shard's completion batch before
// the worker may switch jobs. RunMulti's own gate is derived from this
// predicate, so capability and behaviour cannot drift apart.
func SupportsMulti(m MgmtModel) bool {
	switch m {
	case StealsWorker, Dedicated, Sharded, Adaptive, Async:
		return true
	}
	return false
}

// RunMulti simulates jobs sharing one machine under cfg. All jobs start
// at t=0. Config.BucketWidth, Gantt and the timeline are not used in
// multi-program mode; Mgmt selects any management model (SupportsMulti
// reports the accepted set). Under Adaptive, Config.Batch and
// Options.AdaptiveBatch govern one pool-wide controller; under Async,
// Config.ReadyCap and Config.LowWater size each job's slice of the
// dedicated server's ready buffer.
func RunMulti(jobs []JobSpec, cfg Config) (*MultiResult, error) {
	return RunMultiContext(context.Background(), jobs, cfg)
}

// RunMultiContext is RunMulti with cooperative cancellation: the event
// loop checks ctx between management operations and a cancelled run
// returns an error wrapping ctx.Err() (test with errors.Is). A nil ctx
// behaves like context.Background().
func RunMultiContext(ctx context.Context, jobs []JobSpec, cfg Config) (*MultiResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// failEarly keeps the observer contract — one Final snapshot on
	// every outcome — for runs that die before starting.
	failEarly := func(err error) (*MultiResult, error) {
		if cfg.Observer != nil {
			cfg.Observer(Snapshot{Final: true})
		}
		return nil, err
	}
	if len(jobs) == 0 {
		return failEarly(fmt.Errorf("sim: RunMulti needs at least one job"))
	}
	if cfg.Procs < 1 {
		return failEarly(fmt.Errorf("sim: need at least 1 processor"))
	}
	if !SupportsMulti(cfg.Mgmt) {
		// Unreachable for the known models (SupportsMulti accepts them
		// all); this keeps an unknown or future model from being mispriced
		// silently.
		return failEarly(fmt.Errorf("%w: the %v model has no multi-program pricing",
			ErrUnsupportedMgmt, cfg.Mgmt))
	}
	workers := cfg.Procs
	if cfg.Mgmt == StealsWorker {
		workers = cfg.Procs - 1
		if workers < 1 {
			return failEarly(fmt.Errorf("sim: StealsWorker model needs at least 2 processors"))
		}
	}

	s := &mstate{
		ctx:        ctx,
		model:      cfg.Mgmt,
		workers:    workers,
		procs:      cfg.Procs,
		homes:      make([]int, workers),
		parked:     make([]bool, workers),
		parkedB:    newParkedSet(workers),
		parkedAt:   make([]int64, workers),
		pendingAt:  make([]int64, workers),
		askGen:     make([]int64, workers),
		workerFree: make([]int64, workers),
		orderDirty: true,
	}
	var totalGranules, totalCost int64
	for i := range jobs {
		spec := jobs[i]
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("job%d", i)
		}
		if spec.Weight <= 0 {
			spec.Weight = 1
		}
		opt := spec.Opt
		if opt.Workers <= 0 {
			opt.Workers = workers
		}
		opt = capGrain(spec.Prog, opt, cfg.PreemptBound)
		sched, err := core.New(spec.Prog, opt)
		if err != nil {
			return failEarly(fmt.Errorf("sim: job %q: %w", spec.Name, err))
		}
		s.jobs = append(s.jobs, &mjob{
			spec: spec, sched: sched,
			opt: opt, attempts: 1, retriesLeft: spec.Retry,
		})
		if spec.Deadline > 0 {
			s.hasDeadline = true
		}
		totalGranules += int64(spec.Prog.TotalGranules())
		totalCost += int64(spec.Prog.TotalCost())
	}
	s.liveCount = len(s.jobs)
	s.order = make([]int, 0, len(s.jobs))
	s.cand = make([]int, 0, len(s.jobs))
	s.obs = newObserver(cfg.Observer, cfg.ObserveEvery, totalCost, workers)
	if s.obs != nil {
		s.nowFn = s.frontier
		s.snapFn = s.snapshot
	}
	if cfg.Trace != nil {
		s.tr = bindTrace(cfg.Trace, cfg.Mgmt, workers, s.jobs[0].spec.Prog)
		m := cfg.Trace.Meta()
		m.Jobs = m.Jobs[:0]
		for _, j := range s.jobs {
			m.Jobs = append(m.Jobs, j.spec.Name)
		}
	}
	s.met = cfg.Metrics
	if cfg.Mgmt == Async {
		s.masyncInit(cfg)
	}
	if cfg.Mgmt == Adaptive {
		s.madaptiveInit(cfg, totalCost)
		if s.met != nil {
			s.met.BatchSize.Set(int64(s.batchN))
		}
	}
	if cfg.Faults != nil {
		s.plan = fault.New(*cfg.Faults)
	}
	s.crashed = make([]bool, workers)
	s.livew = workers

	maxOps := cfg.MaxOps
	if maxOps <= 0 {
		maxOps = totalGranules*64 + int64(workers)*1024 + 1_000_000
	}
	if err := s.run(maxOps); err != nil {
		// Close the observer stream on failure too, with the counters
		// accumulated so far; the trace closes with an abort record.
		if s.tr != nil {
			s.tr.Record(trace.KAbort, s.frontier(), -1, -1, -1, 0, 0, 0)
		}
		s.finishMetrics()
		s.obs.final(s.snapshot(s.frontier()))
		return nil, err
	}
	res := s.result()
	if s.tr != nil {
		s.tr.Record(trace.KFinish, res.Makespan, -1, -1, -1, 0, 0, 0)
	}
	s.finishMetrics()
	s.obs.final(s.snapshot(res.Makespan))
	return res, nil
}

type mstate struct {
	ctx     context.Context
	jobs    []*mjob
	model   MgmtModel
	workers int
	procs   int
	obs     *observer
	tr      *trace.Ring    // flight recorder (nil = tracing off)
	met     *telemetry.Set // metric set (nil = metrics off)

	queue      mqueue
	seq        int64
	serverFree int64
	workerFree []int64

	homes     []int // worker -> job index; -1 when every job is done
	parked    []bool
	parkedB   parkedSet // same membership as parked, for sparse wake scans
	parkedN   int
	parkedAt  []int64
	pendingAt []int64 // scheduled wake time of a parked worker; -1 = none
	askGen    []int64 // bumps when a pending ask is superseded

	// Incremental candidate machinery. order caches the live jobs sorted
	// by the backfill comparator (priority desc, deficit desc, index asc);
	// it is rebuilt only when orderDirty — set by any deficit, done-bit,
	// or replenishment change — so the common ask reuses the cached order.
	// cand is the per-ask scratch (home first, then order minus home).
	// liveCount/creditCount make the deficit-replenishment check O(1):
	// creditCount counts live jobs with deficit > 0, and the backfill
	// set's credit for a given asker is creditCount minus its home's
	// contribution.
	order       []int
	cand        []int
	orderDirty  bool
	liveCount   int
	creditCount int

	// readyTotal sums the jobs' cached ready counts; deferredN counts live
	// jobs with cached deferred work. Both are maintained by syncReady so
	// wake and the idle-absorption probe stop scanning every job.
	readyTotal int
	deferredN  int

	// Async model state: per-job ready-buffer knobs and the pool-wide
	// buffered-task count (wake's extra availability). See multi_async.go.
	readyCap  int
	lowWater  int
	bufferedN int

	// Adaptive model state: per-worker job-tagged shards, the shared batch
	// knobs, the per-visit Acquire accounting, and one pool-wide controller
	// with its epoch snapshots and hoarded-idle integral. See
	// multi_adaptive.go.
	mab          []mshard
	batchN       int
	cbatchN      int
	acquireUnits int64
	tuner        *executive.Tuner
	epochLen     int64
	lastObsAt    int64
	lastObsAcq   int64
	lastObsHI    int64
	hoardNow     int
	hiInt        int64
	hiAt         int64

	// front caches frontier()'s running maximum — lastDone and the job
	// makespans are monotone, so the max never has to be rescanned.
	front int64

	// Pre-bound observer thunks (see observer.maybe).
	nowFn  func() int64
	snapFn func(at int64) Snapshot

	idleUnits    int64
	computeUnits int64
	doneUnits    int64 // compute of tasks whose completion event was served
	mgmtUnits    int64
	lastDone     int64

	// Fault injection and tenancy state (see faults.go): the compiled
	// campaign (nil = off), retired workers and the live floor, whether
	// any job carries a deadline, the retry count, and the measured
	// PreemptBound bound.
	plan            *fault.Plan
	crashed         []bool
	livew           int
	hasDeadline     bool
	retries         int64
	maxBackfillTask int
}

// syncReady refreshes job j's cached ready/deferred state and the global
// readyTotal/deferredN counters. Call after every scheduler call that can
// change them (Start, NextTask, Complete, DeferredMgmt) — and after the
// done bit flips, which zeroes the job's contribution.
func (s *mstate) syncReady(j *mjob) {
	r := 0
	d := false
	if !j.done {
		r = j.sched.ReadyTasks()
		d = j.sched.HasDeferred()
	}
	s.readyTotal += r - j.ready
	j.ready = r
	if d != j.hasDef {
		if d {
			s.deferredN++
		} else {
			s.deferredN--
		}
		j.hasDef = d
	}
}

// chargeMgmt mirrors the single-program state.chargeMgmt: serialize on
// the management server, or — Sharded — inline on the worker's own lane.
func (s *mstate) chargeMgmt(w int, at int64, cost core.Cost) int64 {
	if s.model != Sharded || w < 0 {
		return s.serve(at, cost)
	}
	start := at
	if s.workerFree[w] > start {
		start = s.workerFree[w]
	}
	fin := start + int64(cost)
	s.mgmtUnits += int64(cost)
	s.workerFree[w] = fin
	if fin > s.serverFree {
		s.serverFree = fin
	}
	return fin
}

func (s *mstate) serve(at int64, cost core.Cost) int64 {
	start := at
	if s.serverFree > start {
		start = s.serverFree
	}
	fin := start + int64(cost)
	s.mgmtUnits += int64(cost)
	s.serverFree = fin
	return fin
}

// rebalance assigns home workers over the unfinished jobs by weighted
// largest-remainder, leftovers to the highest (priority, remainder,
// index) — the tenant pool's policy in virtual time.
func (s *mstate) rebalance() {
	live := make([]int, 0, len(s.jobs))
	total := 0
	for i, j := range s.jobs {
		if !j.done {
			live = append(live, i)
			total += j.spec.Weight
		}
	}
	if len(live) == 0 {
		for w := range s.homes {
			s.homes[w] = -1
		}
		return
	}
	n := len(live)
	shares := make([]int, n)
	rems := make([]int, n)
	assigned := 0
	for k, ji := range live {
		exact := s.workers * s.jobs[ji].spec.Weight
		shares[k] = exact / total
		rems[k] = exact % total
		assigned += shares[k]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		ja, jb := s.jobs[live[a]], s.jobs[live[b]]
		if c := cmp.Compare(jb.spec.Priority, ja.spec.Priority); c != 0 {
			return c
		}
		return cmp.Compare(rems[b], rems[a])
	})
	for i := 0; assigned < s.workers; i = (i + 1) % n {
		shares[order[i]]++
		assigned++
	}
	slot := 0
	for k, ji := range live {
		for c := 0; c < shares[k]; c++ {
			s.homes[slot] = ji
			slot++
		}
	}
}

// rebuildOrder recomputes the cached live-job order by the backfill
// comparator. The comparator is a strict total order (the index breaks
// every tie), so the globally sorted list with a given asker's home
// skipped is exactly what sorting that asker's backfill set would have
// produced — one shared cache serves every worker.
func (s *mstate) rebuildOrder() {
	s.order = s.order[:0]
	for i, j := range s.jobs {
		if !j.done {
			s.order = append(s.order, i)
		}
	}
	slices.SortStableFunc(s.order, func(a, b int) int {
		ja, jb := s.jobs[a], s.jobs[b]
		if c := cmp.Compare(jb.spec.Priority, ja.spec.Priority); c != 0 {
			return c
		}
		if c := cmp.Compare(jb.deficit, ja.deficit); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	s.orderDirty = false
}

// noteDeficit applies a deficit change to job j, keeping creditCount (live
// jobs with positive deficit) exact and invalidating the cached order.
func (s *mstate) noteDeficit(j *mjob, delta int64) {
	was := j.deficit > 0
	j.deficit += delta
	if now := j.deficit > 0; now != was && !j.done {
		if now {
			s.creditCount++
		} else {
			s.creditCount--
		}
	}
	s.orderDirty = true
}

// candidates returns the job order worker w asks for work in: home first,
// then the backfill candidates by (priority, deficit, index), with the
// deficit-round-robin credit replenished when collectively exhausted.
// The replenishment check is O(1): the asker's backfill set is the live
// jobs minus its home, so its size and credit are the global counters
// minus the home's contribution. Replenishment itself (and any other
// deficit or done-bit change) marks the cached order dirty; everything
// else reuses it, and the returned slice is a reused scratch valid until
// the next call.
func (s *mstate) candidates(w int) []int {
	home := s.homes[w]
	homeLive := home >= 0 && !s.jobs[home].done
	nBackfill := s.liveCount
	credit := s.creditCount
	if homeLive {
		nBackfill--
		if s.jobs[home].deficit > 0 {
			credit--
		}
	}
	if nBackfill > 0 && credit == 0 {
		for _, j := range s.jobs {
			if !j.done {
				s.noteDeficit(j, int64(j.spec.Weight)*mdrrQuantum)
			}
		}
	}
	if s.orderDirty {
		s.rebuildOrder()
	}
	out := s.cand[:0]
	if homeLive {
		out = append(out, home)
	}
	for _, ji := range s.order {
		if ji != home {
			out = append(out, ji)
		}
	}
	s.cand = out
	return out
}

func (s *mstate) park(w int, at int64) {
	if s.parked[w] {
		return
	}
	if s.tr != nil {
		s.tr.Record(trace.KPark, at, int32(w), -1, -1, 0, 0, 0)
	}
	s.mNoteStarve(at)
	s.parked[w] = true
	s.parkedB.set(w)
	s.parkedN++
	s.parkedAt[w] = at
	s.pendingAt[w] = -1
}

// beginAsk is the shared prologue of every ask handler: it drops asks a
// later wake superseded and settles the asker's park accounting. It
// reports whether the ask is still live.
func (s *mstate) beginAsk(req mitem) bool {
	if req.gen != s.askGen[req.proc] {
		return false // superseded by an earlier wake
	}
	if s.parked[req.proc] {
		if s.tr != nil {
			s.tr.Record(trace.KUnpark, req.at, int32(req.proc), -1, -1, 0, 0,
				req.at-s.parkedAt[req.proc])
		}
		s.mNoteStarve(req.at)
		s.parked[req.proc] = false
		s.parkedB.clear(req.proc)
		s.parkedN--
		s.pendingAt[req.proc] = -1
		if d := req.at - s.parkedAt[req.proc]; d > 0 {
			s.idleUnits += d
		}
	}
	return true
}

// noteJobDone flips job j's done bookkeeping when its scheduler just
// finished: the job leaves the live and credit counts, the cached
// backfill order, and the home-worker map. Call before syncReady (which
// zeroes a done job's cached contribution).
func (s *mstate) noteJobDone(j *mjob) {
	if j.done || !j.sched.Done() {
		return
	}
	j.done = true
	if s.met != nil {
		s.met.JobsDone.Inc(0)
		s.met.ActiveJobs.Add(-1)
		// A deadlined job reaching here beat its deadline (a miss is
		// aborted AT the deadline and never arrives); the margin is the
		// budget it had left. Callers update j.makespan before calling.
		if j.spec.Deadline > 0 {
			s.met.DeadlineMargin.Observe(j.spec.Deadline - j.makespan)
		}
	}
	s.liveCount--
	if j.deficit > 0 {
		s.creditCount--
	}
	s.orderDirty = true
	s.rebalance()
}

// wake schedules asks for parked workers at time at, bounded by the
// ready tasks across all unfinished jobs. A worker stays parked until its
// ask is served: a wake carrying a serial-action delay schedules the ask
// in the future, and a later release by ANOTHER job may land inside that
// window — the earlier wake then supersedes the pending one (askGen
// orphans the stale ask). Without this, one job's serial action would
// phantom-occupy workers the other jobs could have used.
func (s *mstate) wake(at int64) {
	if s.parkedN == 0 {
		return
	}
	avail := s.readyTotal
	if s.model == Async {
		// Buffered tasks are poppable by any worker whose candidate walk
		// reaches their job, so they count as availability; the dispatch
		// waits for the slot's production stamp, not the ask.
		avail += s.bufferedN
	}
	if avail <= 0 {
		return
	}
	if s.plan != nil && s.plan.DropWakeup() {
		// The wakeup vanishes; the run loop's queue-empty probe re-wakes.
		s.noteFault(at, -1, -1, fault.DropWakeup)
		return
	}
	// Walk only the parked workers, in ascending order — the order the
	// old full scan visited them — via the bitset.
	for wi := 0; wi < len(s.parkedB.words) && avail > 0; wi++ {
		word := s.parkedB.words[wi]
		for word != 0 && avail > 0 {
			w := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if s.pendingAt[w] >= 0 && s.pendingAt[w] <= at {
				continue // already scheduled no later than this wake
			}
			s.pendingAt[w] = at
			s.askGen[w]++
			s.push(mitem{at: at, proc: w, gen: s.askGen[w]})
			avail--
		}
	}
}

// push enqueues an item with the next tie-break sequence number.
func (s *mstate) push(it mitem) {
	s.seq++
	it.seq = s.seq
	s.queue.push(it)
}

func (s *mstate) run(maxOps int64) error {
	// An already-cancelled context aborts before any work (the in-loop
	// poll is batched and would let a small run finish unobserved).
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("sim: multi run canceled at t=0: %w", err)
	}
	for ji, j := range s.jobs {
		c0 := s.serverFree
		fin := s.serve(s.serverFree, j.sched.Start())
		if j.sched.SerialCost() > 0 {
			j.openAt = fin
		}
		s.syncReady(j)
		if s.tr != nil {
			s.tr.Record(trace.KStart, c0, -1, int32(ji), -1, 0, 0, fin-c0)
		}
		if s.met != nil {
			// Every job is admitted at t=0 — the virtual machine has no
			// admission queue — so queue wait observes zero per job.
			s.met.JobsSubmitted.Inc(0)
			s.met.ActiveJobs.Add(1)
			s.met.QueueWait.Observe(0)
		}
	}
	s.rebalance()
	for i, j := range s.jobs {
		j.homeAt0 = 0
		for _, h := range s.homes {
			if h == i {
				j.homeAt0++
			}
		}
	}
	for w := 0; w < s.workers; w++ {
		s.push(mitem{at: s.serverFree, proc: w, gen: s.askGen[w]})
	}

	var ops int64
	for {
		ops++
		if ops > maxOps {
			return fmt.Errorf("sim: multi run exceeded %d management operations (runaway?)", maxOps)
		}
		// Cooperative cancellation, as in the single-program loop: one ctx
		// poll per batch of management operations.
		if ops&1023 == 0 {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("sim: multi run canceled at t=%d: %w", s.frontier(), err)
			}
		}
		// Guarded here, not in maybe: an unobserved run must not pay even
		// the thunk's indirect call per event. (The frontier itself is a
		// cached running max, so an observed run pays O(1) too.) A mark
		// that fires here is recorded BEFORE the events this iteration
		// serves — the equal-tick ordering contract (trace.go).
		if s.obs != nil {
			if at, fired := s.obs.maybe(s.nowFn, s.snapFn); fired && s.tr != nil {
				s.tr.Record(trace.KMark, at, -1, -1, -1, 0, 0, 0)
			}
		}

		// Deadline enforcement: a deadlined job is failed exactly AT its
		// deadline once no queued event could finish it in time.
		if s.hasDeadline && s.checkDeadlines() {
			continue
		}

		// Idle executive moment (nothing due before the management
		// resource frees up): absorb one deferred management item from
		// the first unfinished job that has any (deterministic order).
		// deferredN gates the scan — the idle condition is common, and
		// without the counter every such event would re-probe all jobs.
		next, have := s.queue.peekTime()
		if s.deferredN > 0 && (!have || next >= s.serverFree) {
			absorbed := false
			for _, j := range s.jobs {
				if j.done || !j.hasDef {
					continue
				}
				cost, ok := j.sched.DeferredMgmt()
				s.syncReady(j)
				if ok {
					fin := s.serve(s.serverFree, cost)
					s.wake(fin)
					absorbed = true
					break
				}
			}
			if absorbed {
				continue
			}
		}

		if have {
			it := s.queue.pop()
			if it.isDone {
				j := s.jobs[it.job]
				if j.done || it.gen != j.attempt {
					// Orphaned completion of a retired or restarted
					// attempt: the result is discarded, the worker is
					// freed to ask again.
					s.push(mitem{at: it.at, proc: it.proc, gen: s.askGen[it.proc]})
					continue
				}
				if it.fail != nil {
					// The completion carries an injected grain failure:
					// retry the job or retire it; co-tenants keep running.
					s.failJob(it.job, it.at, it.proc, it.fail, true)
					continue
				}
				if s.plan != nil {
					// A management-delay fault withholds this completion's
					// submission to the executive: the event re-queues
					// Delay later (the rule's budget bounds the re-queues).
					if d, ok := s.plan.Mgmt(it.job, it.at); ok {
						s.noteFault(it.at, it.proc, it.job, fault.MgmtDelay)
						it.at += d
						s.push(it)
						continue
					}
				}
			}
			// One chokepoint records EVERY model's completions (the model
			// handlers below diverge), before the scheduler absorbs the
			// event — so dispatches it enables carry larger Seqs.
			if it.isDone && s.tr != nil {
				s.tr.Record(trace.KComplete, it.at, int32(it.proc), int32(it.job),
					int32(it.task.Phase), uint32(it.task.Run.Lo), uint32(it.task.Run.Hi), it.dur)
			}
			if it.isDone && s.met != nil {
				s.met.Completions.Inc(it.proc)
			}
			switch {
			case !it.isDone:
				switch s.model {
				case Async:
					s.masyncAsk(it)
				case Adaptive:
					s.madaptiveAsk(it)
				default:
					s.serveAsk(it)
				}
			case s.model == Async:
				s.masyncComplete(it)
			case s.model == Adaptive:
				s.madaptiveComplete(it)
			default:
				s.completeTask(it)
			}
			continue
		}

		// Async: completions can be parked behind a busy server with no
		// further worker event left to trigger a drain (every worker
		// parked); force one per backlogged job so the run can finish.
		if s.model == Async {
			drained := false
			for ji, j := range s.jobs {
				if len(j.acomp) > 0 {
					s.masyncServiceJob(ji, s.serverFree, true)
					drained = true
				}
			}
			if drained {
				continue
			}
		}

		alldone := true
		for _, j := range s.jobs {
			if !j.done {
				alldone = false
				break
			}
		}
		if alldone {
			return nil
		}
		// Dropped-wakeup recovery: ready work with every worker parked and
		// nothing queued means a wake was injected away — re-wake (the
		// DropWakeup budget bounds repeats; maxOps guards the rest).
		if s.plan != nil && s.parkedN > 0 {
			avail := s.readyTotal
			if s.model == Async {
				avail += s.bufferedN
			}
			if avail > 0 {
				s.wake(s.serverFree)
				continue
			}
		}
		return fmt.Errorf("sim: multi run stalled at t=%d: queue empty, jobs incomplete", s.serverFree)
	}
}

// serveAsk handles an idle worker's ask: it walks the dispatch-policy
// order, charging every probe's management cost, and parks the worker
// when every candidate is dry. A candidate skipped because its serial
// action is still running reopens at a known time, so a worker that then
// parks schedules its own retry for the earliest such reopening — the
// wake that announced the gated work ran when openAt was set and cannot
// see workers that park later.
func (s *mstate) serveAsk(req mitem) {
	if !s.beginAsk(req) {
		return
	}
	if s.plan != nil && s.maybeCrash(req.proc, req.at) {
		return // the worker is retired: its ask dies, it never asks again
	}
	at := req.at
	home := s.homes[req.proc]
	reopen := int64(-1)
	for _, ji := range s.candidates(req.proc) {
		j := s.jobs[ji]
		if at < j.openAt {
			// The job's between-phase serial action is still running.
			if reopen < 0 || j.openAt < reopen {
				reopen = j.openAt
			}
			continue
		}
		task, cost, ok := j.sched.NextTask()
		s.syncReady(j)
		fin := s.chargeMgmt(req.proc, at, cost)
		if ok {
			if ji != home {
				s.noteDeficit(j, -int64(task.Run.Len()))
			}
			if s.met != nil {
				s.met.DispatchWait.Observe(fin - req.at)
			}
			s.dispatch(req.proc, ji, ji != home, task, fin)
			return
		}
		at = fin
	}
	s.park(req.proc, at)
	if reopen >= 0 {
		s.pendingAt[req.proc] = reopen
		s.askGen[req.proc]++
		s.push(mitem{at: reopen, proc: req.proc, gen: s.askGen[req.proc]})
	}
}

func (s *mstate) dispatch(worker, ji int, backfill bool, task core.Task, at int64) {
	j := s.jobs[ji]
	dur := int64(j.sched.TaskCost(task))
	var lag int64 // completion-event delay (stuck grain / wedged worker)
	var fail error
	if s.plan != nil {
		dur, lag, fail = s.inject(worker, ji, task, at, dur)
	}
	if s.tr != nil {
		s.tr.Record(trace.KDispatch, at, int32(worker), int32(ji),
			int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), dur)
		if backfill {
			s.tr.Record(trace.KBackfill, at, int32(worker), int32(ji),
				int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), dur)
		}
	}
	if s.met != nil {
		s.met.Dispatches.Inc(worker)
		if backfill {
			s.met.Backfill.Inc(worker)
		}
	}
	end := at + dur
	s.computeUnits += dur
	j.compute += dur
	if backfill {
		j.backfill += dur
		if n := task.Run.Len(); n > s.maxBackfillTask {
			s.maxBackfillTask = n
		}
	}
	if end+lag > s.workerFree[worker] {
		s.workerFree[worker] = end + lag
	}
	s.push(mitem{at: end + lag, isDone: true, proc: worker, gen: j.attempt, job: ji, task: task, dur: dur, fail: fail})
}

func (s *mstate) completeTask(req mitem) {
	// Done-work accrual for the observer (see the single-program loop):
	// snapshots count a task's compute only once it has completed.
	s.doneUnits += req.dur
	j := s.jobs[req.job]
	serial0 := j.sched.SerialCost()
	cost := j.sched.Complete(req.task)
	fin := s.chargeMgmt(req.proc, req.at, cost)
	if j.sched.SerialCost() > serial0 && fin > j.openAt {
		j.openAt = fin
	}
	if req.at > s.lastDone {
		s.lastDone = req.at
		if req.at > s.front {
			s.front = req.at
		}
	}
	if fin > j.makespan {
		j.makespan = fin
		if fin > s.front {
			s.front = fin
		}
	}
	s.noteJobDone(j)
	s.syncReady(j)
	s.wake(fin)
	// Fast path: when the worker's re-ask would be the very next event
	// anyway, serve it inline and skip the heap push/pop pair. This is
	// exactly the event the main loop would process next — any worker
	// wake just issued at fin carries a lower sequence number and defeats
	// the peek check, and deferred absorption (which the loop would try
	// first, since completion processing leaves serverFree == fin) gates
	// the path out entirely. The loop-top observer poll is replayed here
	// so snapshot streams are untouched.
	if s.deferredN == 0 && s.queue.askWouldPopFirst(fin) {
		if s.obs != nil {
			if at, fired := s.obs.maybe(s.nowFn, s.snapFn); fired && s.tr != nil {
				s.tr.Record(trace.KMark, at, -1, -1, -1, 0, 0, 0)
			}
		}
		s.serveAsk(mitem{at: fin, proc: req.proc, gen: s.askGen[req.proc]})
		return
	}
	s.push(mitem{at: fin, proc: req.proc, gen: s.askGen[req.proc]})
}

// frontier is the run's virtual-time high-water mark, matching the
// makespan quantity result() reports: the last completion event or
// completion-processing finish. The management server's own horizon
// (serverFree) is deliberately excluded — trailing zero-cost asks and
// deferred absorption can push it past the final makespan, and the
// observer stream must never report a VirtualTime beyond the Final
// snapshot's.
// lastDone and the per-job makespans only ever increase, so front is
// maintained as a running max where they are updated (completeTask) and
// this is O(1).
func (s *mstate) frontier() int64 {
	return s.front
}

// snapshot builds an observation of the multi-program run at virtual
// time at. Jobs counts the still-unfinished jobs, so a live observer
// watches the tenancy drain; ComputeUnits counts completed tasks only
// (see the single-program snapshot).
func (s *mstate) snapshot(at int64) Snapshot {
	sn := Snapshot{
		VirtualTime:  at,
		ComputeUnits: s.doneUnits,
		MgmtUnits:    s.mgmtUnits,
		IdleUnits:    s.idleUnits,
	}
	for _, j := range s.jobs {
		sn.Tasks += j.sched.Dispatches()
		if !j.done {
			sn.Jobs++
		}
	}
	if at > 0 {
		capacity := float64(s.procs) * float64(at)
		sn.Utilization = float64(sn.ComputeUnits) / capacity
		sn.OverheadShare = float64(s.mgmtUnits) / capacity
	}
	return sn
}

func (s *mstate) result() *MultiResult {
	makespan := s.lastDone
	for _, j := range s.jobs {
		if j.makespan > makespan {
			makespan = j.makespan
		}
	}
	for w := range s.parked {
		if s.parked[w] {
			s.parked[w] = false
			if d := makespan - s.parkedAt[w]; d > 0 {
				s.idleUnits += d
			}
		}
	}
	res := &MultiResult{
		Makespan:     makespan,
		ComputeUnits: s.computeUnits,
		MgmtUnits:    s.mgmtUnits,
		IdleUnits:    s.idleUnits,
		Workers:      s.workers,
		Procs:        s.procs,
	}
	if s.model == Adaptive {
		res.Batch = s.batchN
		if s.tuner != nil {
			res.BatchChanges = s.tuner.Changes()
		}
	}
	res.Faults = s.plan.Injected()
	res.Retries = s.retries
	res.MaxBackfillTask = s.maxBackfillTask
	for _, j := range s.jobs {
		res.BackfillUnits += j.backfill
		res.Jobs = append(res.Jobs, JobResult{
			Name:          j.spec.Name,
			Makespan:      j.makespan,
			ComputeUnits:  j.compute,
			BackfillUnits: j.backfill,
			HomeWorkers:   j.homeAt0,
			Sched:         j.sched.Stats(),
			Err:           j.err,
			Attempts:      j.attempts,
		})
	}
	if makespan > 0 {
		res.Utilization = float64(s.computeUnits) / (float64(s.procs) * float64(makespan))
	}
	return res
}

// finishMetrics flushes the run's accumulated time-split totals into the
// metric set on any outcome — once, at the end, so the hot serve path
// stays metric-free (the single-program engine does the same).
func (s *mstate) finishMetrics() {
	if s.met == nil {
		return
	}
	s.met.ComputeTime.Add(0, s.computeUnits)
	s.met.MgmtTime.Add(0, s.mgmtUnits)
	s.met.IdleTime.Add(0, s.idleUnits)
	var backfill int64
	for _, j := range s.jobs {
		backfill += j.backfill
	}
	s.met.BackfillTime.Add(0, backfill)
}
