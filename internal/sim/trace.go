package sim

// Flight-recorder glue for the virtual backend, and the equal-tick
// ordering contract the trace-order golden pins.
//
// # Equal-tick ordering
//
// The simulator emits trace events from its single event-loop goroutine
// in processing order, and the merged trace is ordered by (Time, Seq) —
// so at EQUAL virtual timestamps the documented, deterministic order is
// the loop's own serve order:
//
//  1. an observation mark (KMark) fires at the top of the loop
//     iteration, BEFORE the request/event that iteration serves — a mark
//     and a scheduling event at the same tick always order mark first
//     unless the event was emitted by an earlier iteration;
//  2. a completion (KComplete) is recorded before the scheduler absorbs
//     it, so every dispatch it enables — same tick included — carries a
//     larger Seq and orders after it;
//  3. requests at one tick otherwise serve in FIFO arrival order
//     (single-program) or queue tie-break order (multi-program), and
//     their trace records inherit exactly that order.
//
// The contract makes virtual traces byte-stable: two identical-seed runs
// produce identical merged traces (tracediff reports zero divergence),
// pinned by TestTraceOrderGolden.

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// bindTrace fills rec's run description from the machine being priced
// and returns the simulator's ring (ring 0 — one emitting goroutine).
// The caller-set Backend survives; everything the simulator knows better
// is overwritten.
func bindTrace(rec *trace.Recorder, model MgmtModel, workers int, progs ...*core.Program) *trace.Ring {
	m := rec.Meta()
	if m.Backend == "" {
		m.Backend = "virtual"
	}
	m.Model = model.String()
	m.Workers = workers
	m.TimeUnit = trace.UnitVirtual
	if len(progs) > 0 && progs[0] != nil && len(m.Phases) == 0 {
		for _, ph := range progs[0].Phases {
			m.Phases = append(m.Phases, trace.PhaseMeta{Name: ph.Name, Granules: ph.Granules})
		}
	}
	return rec.Ring(0)
}
