// Package sim is a deterministic discrete-event simulator of a PAX-style
// parallel machine: P processors executing granule tasks dispatched by a
// serial management server (the executive). It drives the core.Scheduler
// state machine in virtual time, charging every management cost the
// scheduler reports to the management server.
//
// Five management resource models are provided. The first two reproduce
// the paper's discussion; the others price the parallel and asynchronous
// managers this reproduction adds (internal/executive's ShardedManager
// and AsyncManager):
//
//   - StealsWorker: the executive runs on one of the P processors ("in the
//     PAX/CASPER UNIVAC 1100 test bed, executive computation was done at
//     the direct expense of worker computation"), so only P-1 processors
//     compute granules.
//   - Dedicated: "some real parallel machines may provide separate
//     executive computing resources" — all P processors compute and the
//     executive runs beside them.
//   - Sharded: management is distributed across the workers. Each
//     processor pays its own dispatch and completion costs inline on its
//     own timeline (per-shard management), so management work from
//     different processors proceeds concurrently instead of queueing on
//     one serial server; only phase activation and deferred idle-time
//     work (table builds, successor splitting) remain serialized. This is
//     the optimistic bound: it assumes entering the executive costs
//     nothing beyond the state-machine work itself.
//   - Adaptive: the batched-executive model — the virtual-time price of
//     the deque-based sharded manager. Workers hold local task buffers
//     and completion batches; popping the local buffer is free, but every
//     refill (NextTasks) and batch flush (CompleteBatch) is one visit to
//     the serialized management server charging MgmtCosts.Acquire plus
//     the state-machine cost. Batch size governs how many tasks amortize
//     each Acquire — too small and the lock serializes the machine, too
//     large and refills hoard tasks idle workers needed (the rundown
//     tail). With Options.AdaptiveBatch the batch is retuned online by
//     the executive.Tuner feedback loop; otherwise Config.Batch fixes it.
//   - Async: the Dedicated model extended with the async executive's
//     ready-buffer/low-water protocol — workers pop a bounded buffer the
//     dedicated server keeps topped up and queue completions back without
//     waiting; the virtual-time price of executive.AsyncManager.
//
// The simulator is deterministic: identical inputs produce identical
// schedules, event orders and metrics.
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// MgmtModel selects where executive computation runs.
type MgmtModel uint8

const (
	// StealsWorker dedicates one of the P processors to the executive.
	StealsWorker MgmtModel = iota
	// Dedicated gives the executive its own processor beside the P workers.
	Dedicated
	// Sharded distributes management across the P workers: each processor
	// pays its own management costs inline, concurrently with the others'.
	Sharded
	// Adaptive is the batched-executive model: per-worker task buffers
	// and completion batches, each refill or flush paying one serialized
	// Acquire-priced lock visit; the batch size is fixed (Config.Batch)
	// or retuned online (Options.AdaptiveBatch).
	Adaptive
	// Async is the Dedicated model extended with the async executive's
	// ready-buffer protocol (see async.go): a separate executive
	// processor keeps a bounded ready-buffer topped up, workers pop it
	// for free and queue completions back without waiting, and deferred
	// management overlaps computation above the buffer's low-water mark
	// — the virtual-time price of executive.AsyncManager.
	Async
)

func (m MgmtModel) String() string {
	switch m {
	case StealsWorker:
		return "steals-worker"
	case Dedicated:
		return "dedicated"
	case Sharded:
		return "sharded"
	case Adaptive:
		return "adaptive"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("MgmtModel(%d)", uint8(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Procs is the machine's processor count P (>= 1; >= 2 for
	// StealsWorker, which reserves one processor for the executive).
	Procs int
	// Mgmt selects the executive resource model.
	Mgmt MgmtModel
	// BucketWidth sets the utilization-curve resolution in virtual units;
	// <= 0 chooses roughly 200 buckets from a makespan estimate.
	BucketWidth int64
	// Gantt records per-processor spans for ASCII rendering. Only use on
	// small runs; memory is O(tasks).
	Gantt bool
	// MaxOps bounds the number of management operations as a runaway
	// guard; <= 0 means a generous default.
	MaxOps int64
	// Batch is the Adaptive model's refill batch size (the virtual
	// DequeCap): how many tasks one serialized lock visit pulls; the
	// completion batch is half of it. <= 0 selects 16. With
	// Options.AdaptiveBatch this is the controller's starting point;
	// otherwise it is fixed for the whole run. Other models ignore it.
	Batch int
	// ReadyCap bounds the Async model's ready-buffer — how many
	// dispatched-but-unclaimed tasks the dedicated executive keeps ahead
	// of the workers. <= 0 selects 2*workers (minimum 8), matching
	// executive.Config.ReadyCap. Other models ignore it.
	ReadyCap int
	// LowWater is the Async model's deferred-overlap mark: the executive
	// absorbs deferred management whenever the ready-buffer holds more
	// than this many tasks. <= 0 selects ReadyCap/4 (minimum 1). Other
	// models ignore it.
	LowWater int
	// Observer, when non-nil, receives periodic Snapshots as the run's
	// virtual frontier advances, plus one Final snapshot on every
	// outcome — at the makespan on success, at the frontier reached on
	// failure or cancellation. Emission points are deterministic (fixed
	// virtual-time marks), so observation never perturbs the schedule.
	// Both Run and RunMulti honor it.
	Observer func(Snapshot)
	// ObserveEvery is the snapshot stride in virtual units; <= 0 selects
	// roughly 16 snapshots from a makespan estimate. Ignored without
	// Observer.
	ObserveEvery int64
	// Trace, when non-nil, flight-records every scheduling decision —
	// dispatches, completions, parks/unparks, controller retunes,
	// observation marks, start/finish/abort — stamped with virtual times.
	// The simulator emits from its single event-loop goroutine into ring
	// 0 in processing order, so the merged trace's (Time, Seq) order IS
	// the loop's deterministic serve order (equal-tick ordering contract:
	// see internal/sim/trace.go). Both Run and RunMulti honor it.
	Trace *trace.Recorder
	// Metrics, when non-nil, records the standard telemetry.Set at the
	// same chokepoints the flight recorder traces — dispatches,
	// completions, ask-to-dispatch latency, faults, retries, retunes,
	// buffer occupancy — with every duration in virtual units. Recording
	// happens on the single event-loop goroutine in processing order, so
	// identical inputs yield bit-identical metric dumps (the determinism
	// goldens pin this). Both Run and RunMulti honor it.
	Metrics *telemetry.Set
	// Faults is the seeded fault-injection campaign (nil = off). A fresh
	// fault.Plan is compiled per run — Plans are stateful — and consulted
	// at the same chokepoints the real backends use, so identical Specs
	// yield bit-identical virtual outcomes. Both Run and RunMulti honor
	// it.
	Faults *fault.Spec
	// PreemptBound caps every job's task grain at this many granules —
	// the bounded-degradation contract: a home job emerging from rundown
	// waits at most one PreemptBound-sized grain for any in-flight
	// foreign task. <= 0 leaves the grain at the job's own setting (or
	// the core default). MultiResult.MaxBackfillTask reports the measured
	// bound.
	PreemptBound int
}

// PhaseTrace describes one phase's schedule within a run.
type PhaseTrace struct {
	Name string
	// Start is the virtual time the phase's first task was handed out;
	// End is when its last completion finished processing.
	Start, End int64
	// RundownStart is the first time a processor went idle while this
	// phase was the current phase (-1 if none did): the onset of
	// computational rundown.
	RundownStart int64
	// IdleUnits is the processor-time accumulated by workers that parked
	// while this phase was current.
	IdleUnits int64
	// Dispatched counts tasks of this phase.
	Dispatched int64
	// OverlapUnits is compute from OTHER phases performed during this
	// phase's currency — the work that filled the rundown.
	OverlapUnits int64
}

// Result aggregates a simulation run.
type Result struct {
	// Makespan is the virtual completion time of the whole program.
	Makespan int64
	// ComputeUnits is the total granule execution time.
	ComputeUnits int64
	// MgmtUnits is the total executive busy time.
	MgmtUnits int64
	// SerialUnits is the executive time spent in between-phase serial actions.
	SerialUnits int64
	// IdleUnits is the total parked worker time.
	IdleUnits int64
	// Workers is the number of processors that executed granules.
	Workers int
	// Procs is the machine size P (capacity denominator).
	Procs int
	// Utilization is ComputeUnits / (Procs * Makespan).
	Utilization float64
	// WorkerUtilization is ComputeUnits / (Workers * Makespan).
	WorkerUtilization float64
	// MgmtRatio is the paper's computation-to-management ratio:
	// ComputeUnits / MgmtUnits (0 when MgmtUnits is 0).
	MgmtRatio float64
	// Sched is the scheduler's management statistics.
	Sched core.Stats
	// Batch is the refill batch size at the end of the run (Adaptive
	// model only: the fixed Config.Batch, or wherever the controller
	// settled). Zero under the other models.
	Batch int
	// BatchChanges counts the adaptive controller's parameter changes
	// (Adaptive model with Options.AdaptiveBatch only).
	BatchChanges int
	// Phases traces each phase.
	Phases []PhaseTrace
	// Timeline is the bucketed utilization recorder.
	Timeline *metrics.Timeline
	// Gantt is non-nil when Config.Gantt was set.
	Gantt *metrics.Gantt
}

// event is a scheduled future occurrence (task completion). dur carries
// the task's compute cost so completion-time accounting (the observer's
// done-work counter) does not re-evaluate the cost function. The queue
// holding these is the typed 4-ary eventHeap in heap.go.
type event struct {
	at   int64
	seq  int64
	task core.Task
	proc int
	dur  int64
	fail error // injected grain failure carried by this completion
}

// request is a unit of work for the serial management server.
type request struct {
	at     int64 // arrival time
	proc   int   // worker involved (-1 for none)
	isDone bool  // true: completion processing; false: task request
	task   core.Task
	dur    int64 // completed task's compute cost (isDone only)
}

// Run simulates prog under the scheduler options opt on the machine cfg.
func Run(prog *core.Program, opt core.Options, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, opt, cfg)
}

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx between management operations and a cancelled run returns an error
// wrapping ctx.Err() (test with errors.Is). A nil ctx behaves like
// context.Background().
func RunContext(ctx context.Context, prog *core.Program, opt core.Options, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// failEarly keeps the observer contract — one Final snapshot on
	// every outcome — for runs that die before starting.
	failEarly := func(err error) (*Result, error) {
		if cfg.Observer != nil {
			cfg.Observer(Snapshot{Final: true})
		}
		return nil, err
	}
	if cfg.Procs < 1 {
		return failEarly(fmt.Errorf("sim: need at least 1 processor"))
	}
	workers := cfg.Procs
	if cfg.Mgmt == StealsWorker {
		workers = cfg.Procs - 1
		if workers < 1 {
			return failEarly(fmt.Errorf("sim: StealsWorker model needs at least 2 processors"))
		}
	}
	if opt.Workers <= 0 {
		opt.Workers = workers
	}
	opt = capGrain(prog, opt, cfg.PreemptBound)
	sched, err := core.New(prog, opt)
	if err != nil {
		return failEarly(err)
	}

	bucket := cfg.BucketWidth
	if bucket <= 0 {
		est := int64(prog.TotalCost())/int64(workers) + 1
		bucket = est / 200
		if bucket < 1 {
			bucket = 1
		}
	}
	tl := metrics.NewTimeline(cfg.Procs, bucket)
	var gantt *metrics.Gantt
	if cfg.Gantt {
		gantt = metrics.NewGantt(cfg.Procs)
	}

	maxOps := cfg.MaxOps
	if maxOps <= 0 {
		maxOps = int64(prog.TotalGranules())*64 + int64(workers)*1024 + 1_000_000
	}

	s := &state{
		ctx:        ctx,
		sched:      sched,
		prog:       prog,
		model:      cfg.Mgmt,
		workers:    workers,
		procs:      cfg.Procs,
		tl:         tl,
		gantt:      gantt,
		obs:        newObserver(cfg.Observer, cfg.ObserveEvery, int64(prog.TotalCost()), workers),
		phases:     make([]PhaseTrace, len(prog.Phases)),
		parkedA:    make([]int64, workers),
		parked:     make([]bool, workers),
		parkedB:    newParkedSet(workers),
		workerFree: make([]int64, workers),
	}
	if s.obs != nil {
		s.nowFn = s.frontier
		s.snapFn = s.snapshot
	}
	if cfg.Trace != nil {
		s.tr = bindTrace(cfg.Trace, cfg.Mgmt, workers, prog)
	}
	s.met = cfg.Metrics
	if cfg.Faults != nil {
		s.plan = fault.New(*cfg.Faults)
	}
	s.crashed = make([]bool, workers)
	s.livew = workers
	for i, ph := range prog.Phases {
		s.phases[i] = PhaseTrace{Name: ph.Name, Start: -1, End: -1, RundownStart: -1}
	}
	if cfg.Mgmt == Async {
		s.asyncInit(cfg)
	}
	if cfg.Mgmt == Adaptive {
		b := cfg.Batch
		if b <= 0 {
			b = 16
		}
		s.batchN, s.cbatchN = b, b/2
		if s.cbatchN < 1 {
			s.cbatchN = 1
		}
		if opt.AdaptiveBatch {
			s.tuner = executive.NewTuner(executive.TunerConfig{
				Cap: b, MgmtTarget: opt.MgmtTarget,
			})
			s.batchN, s.cbatchN = s.tuner.Cap(), s.tuner.Batch()
		}
		s.ab = make([]simShard, workers)
		s.acquire = opt.Costs.Acquire
		// Observation epochs: aim for ~100 per run so the multiplicative
		// controller has room to travel and settle.
		s.epochLen = (int64(prog.TotalCost())/int64(workers) + 1) / 100
		if s.epochLen < 1 {
			s.epochLen = 1
		}
	}
	if s.met != nil && cfg.Mgmt == Adaptive {
		s.met.BatchSize.Set(int64(s.batchN))
	}

	if err := s.run(maxOps); err != nil {
		// The observer contract promises a closing Final snapshot on
		// every outcome; a failed or cancelled run closes the stream with
		// the counters accumulated so far. The trace closes with an abort
		// record the same way.
		if s.tr != nil {
			s.tr.Record(trace.KAbort, s.frontier(), -1, 0, -1, 0, 0, 0)
		}
		s.finishMetrics()
		s.obs.final(s.snapshot(s.frontier()))
		return nil, err
	}
	res := s.result()
	if s.tr != nil {
		s.tr.Record(trace.KFinish, res.Makespan, -1, 0, -1, 0, 0, 0)
	}
	s.finishMetrics()
	s.obs.final(s.snapshot(res.Makespan))
	return res, nil
}

type state struct {
	ctx     context.Context
	sched   *core.Scheduler
	prog    *core.Program
	model   MgmtModel
	workers int
	procs   int
	tl      *metrics.Timeline
	gantt   *metrics.Gantt
	obs     *observer
	tr      *trace.Ring    // flight recorder (nil = tracing off)
	met     *telemetry.Set // metric set (nil = metrics off)

	reqs       reqRing // FIFO management queue
	events     eventHeap
	seq        int64
	serverFree int64   // time the serial management server becomes free
	workerFree []int64 // Sharded model: time each worker's own lane frees

	// Pre-bound observer thunks (see observer.maybe): binding the method
	// values once at setup keeps the per-event observer probe from
	// allocating a fresh closure per call.
	nowFn  func() int64
	snapFn func(at int64) Snapshot

	// Async model state: the dedicated server's ready-buffer (tasks
	// already popped from the scheduler, each stamped with its production
	// time), completions queued behind the server, the NextTasks scratch,
	// and the buffer knobs. See async.go.
	aready   []asyncSlot
	acomp    []core.Task
	abuf     []core.Task
	readyCap int
	lowWater int

	// Adaptive model state: per-worker shards, current refill/completion
	// batch sizes, the per-lock-visit charge, and the controller with its
	// epoch snapshots.
	ab           []simShard
	batchN       int
	cbatchN      int
	acquire      core.Cost
	acquireUnits int64 // summed Acquire charges (the amortizable overhead)
	tuner        *executive.Tuner
	epochLen     int64
	lastObsAt    int64
	lastObsAcq   int64
	lastObsHI    int64

	// Hoarded-idle integral: processor time spent parked while tasks sat
	// in peer buffers — min(parked, buffered) integrated over virtual
	// time. hoardNow counts buffered-but-unconsumed tasks, parkedN the
	// parked workers; hiAt is the integral's frontier.
	hoardNow int
	parkedN  int
	hiInt    int64
	hiAt     int64

	parked    []bool
	parkedB   parkedSet // same membership as parked, for sparse wake scans
	parkedA   []int64   // park start per worker
	idleUnits int64

	computeUnits int64
	doneUnits    int64 // compute of tasks whose completion event was served
	mgmtUnits    int64
	lastDone     int64 // completion horizon (worker-side makespan)

	phases    []PhaseTrace
	phaseDone []bool

	// Fault injection (see faults.go): the compiled campaign (nil =
	// injection off — one branch per chokepoint), retired workers, and
	// the live-worker floor the crash hook maintains.
	plan    *fault.Plan
	crashed []bool
	livew   int
}

// chargeMgmt charges cost units of executive time for a request involving
// worker w: on the serial management server under the serial models, or —
// under the Sharded model — inline on the worker's own lane, so management
// from different processors proceeds concurrently. Requests with no worker
// (w < 0) always serialize.
func (s *state) chargeMgmt(w int, at int64, cost core.Cost) int64 {
	if s.model != Sharded || w < 0 {
		return s.serve(at, cost)
	}
	start := at
	if s.workerFree[w] > start {
		start = s.workerFree[w]
	}
	fin := start + int64(cost)
	if cost > 0 {
		s.tl.AddMgmt(start, fin)
		s.mgmtUnits += int64(cost)
	}
	s.workerFree[w] = fin
	// The serialized lane (phase activation, deferred idle-time work)
	// must never lag the management frontier: without this, deferred
	// composite-map builds would be charged in the past — overlapping
	// work that already happened — and the trailing completion costs on
	// worker lanes would escape the makespan.
	if fin > s.serverFree {
		s.serverFree = fin
	}
	return fin
}

// serve charges cost units of executive time starting no earlier than at,
// records them, and returns the finish time.
func (s *state) serve(at int64, cost core.Cost) int64 {
	start := at
	if s.serverFree > start {
		start = s.serverFree
	}
	fin := start + int64(cost)
	if cost > 0 {
		s.tl.AddMgmt(start, fin)
		s.mgmtUnits += int64(cost)
	}
	s.serverFree = fin
	return fin
}

// noteStarve advances the hoarded-idle integral to now (Adaptive model
// only). Call before any change to the parked count or the buffered-task
// count; out-of-order event times only stall the frontier, never rewind
// it.
func (s *state) noteStarve(now int64) {
	if s.model != Adaptive || now <= s.hiAt {
		return
	}
	if s.parkedN > 0 && s.hoardNow > 0 {
		n := int64(s.parkedN)
		if int64(s.hoardNow) < n {
			n = int64(s.hoardNow)
		}
		s.hiInt += n * (now - s.hiAt)
	}
	s.hiAt = now
}

func (s *state) park(worker int, at int64) {
	if s.parked[worker] {
		return
	}
	if s.tr != nil {
		s.tr.Record(trace.KPark, at, int32(worker), 0, -1, 0, 0, 0)
	}
	s.noteStarve(at)
	s.parkedN++
	s.parked[worker] = true
	s.parkedB.set(worker)
	s.parkedA[worker] = at
	cur := s.sched.CurrentPhase()
	if cur < len(s.phases) && s.phases[cur].RundownStart < 0 {
		s.phases[cur].RundownStart = at
	}
}

func (s *state) unpark(worker int, at int64) {
	if !s.parked[worker] {
		return
	}
	if s.tr != nil {
		s.tr.Record(trace.KUnpark, at, int32(worker), 0, -1, 0, 0, at-s.parkedA[worker])
	}
	s.noteStarve(at)
	s.parkedN--
	s.parked[worker] = false
	s.parkedB.clear(worker)
	d := at - s.parkedA[worker]
	if d > 0 {
		s.idleUnits += d
		cur := s.sched.CurrentPhase()
		if cur < len(s.phases) {
			s.phases[cur].IdleUnits += d
		}
	}
}

// wake re-queues task requests for parked workers, bounded by the number of
// tasks the queued descriptions will split into. The parked bitset is
// walked in ascending worker order — the order the old full scan used —
// so wake fairness is unchanged while a no-parked-workers wake costs a
// handful of zero-word loads instead of a full worker sweep.
func (s *state) wake(at int64) {
	if s.parkedN == 0 {
		return
	}
	avail := s.sched.ReadyTasks()
	if avail <= 0 {
		return
	}
	if s.plan != nil && s.plan.DropWakeup() {
		// The wakeup vanishes; the run loop's queue-empty probe re-wakes.
		s.noteFault(at, -1, fault.DropWakeup)
		return
	}
	for wi := 0; wi < len(s.parkedB.words) && avail > 0; wi++ {
		word := s.parkedB.words[wi]
		for word != 0 && avail > 0 {
			w := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.unpark(w, at)
			s.reqs.push(request{at: at, proc: w})
			avail--
		}
	}
}

func (s *state) run(maxOps int64) error {
	// An already-cancelled context aborts before any work: the batched
	// in-loop poll (every 1024 ops) would let a small run finish without
	// ever observing the cancellation.
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("sim: run canceled at t=0: %w", err)
	}
	startCost := s.sched.Start()
	s.serve(0, startCost)
	if s.tr != nil {
		s.tr.Record(trace.KStart, 0, -1, 0, -1, 0, 0, int64(startCost))
	}
	if s.met != nil {
		// One program, admitted immediately at t=0: the job-lifecycle
		// members exist in every backend's dump, zero-waited here.
		s.met.JobsSubmitted.Inc(0)
		s.met.ActiveJobs.Add(1)
		s.met.QueueWait.Observe(0)
	}
	for w := 0; w < s.workers; w++ {
		s.reqs.push(request{at: s.serverFree, proc: w})
	}

	var ops int64
	for {
		ops++
		if ops > maxOps {
			return fmt.Errorf("sim: exceeded %d management operations (runaway?)", maxOps)
		}
		// Cooperative cancellation: one ctx poll per batch of management
		// operations, so a cancelled caller gets back promptly without the
		// hot loop paying an atomic load per event.
		if ops&1023 == 0 {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("sim: run canceled at t=%d: %w", s.frontier(), err)
			}
		}
		// Guarded here, not in maybe: an unobserved run must not pay even
		// the thunk's indirect call per event. A mark that fires here is
		// recorded BEFORE the events this iteration then serves — the
		// equal-tick ordering contract (internal/sim/trace.go).
		if s.obs != nil {
			if at, fired := s.obs.maybe(s.nowFn, s.snapFn); fired && s.tr != nil {
				s.tr.Record(trace.KMark, at, -1, 0, -1, 0, 0, 0)
			}
		}

		if s.reqs.len() > 0 {
			s.serveRequest(s.reqs.pop())
			continue
		}

		// No requests: if the executive is idle before the next
		// completion arrives, process deferred successor-splitting work.
		next, haveEvent := s.events.peekTime()
		if s.sched.HasDeferred() && (!haveEvent || next >= s.serverFree) {
			cost, ok := s.sched.DeferredMgmt()
			if ok {
				fin := s.serve(s.serverFree, cost)
				s.wake(fin)
				continue
			}
		}

		if haveEvent {
			ev := s.events.pop()
			if s.plan != nil {
				// A management-delay fault withholds this completion's
				// submission to the executive; the event re-queues Delay
				// later (the rule's budget bounds the re-queues).
				if d, ok := s.plan.Mgmt(0, ev.at); ok {
					s.noteFault(ev.at, ev.proc, fault.MgmtDelay)
					ev.at += d
					s.seq++
					ev.seq = s.seq
					s.events.push(ev)
					continue
				}
			}
			if ev.fail != nil {
				// An injected grain failure: with one program there is no
				// co-tenant to isolate it from — the run fails.
				return ev.fail
			}
			s.reqs.push(request{at: ev.at, proc: ev.proc, isDone: true, task: ev.task, dur: ev.dur})
			continue
		}

		// Async: completions can be parked behind a busy server with no
		// further worker event left to trigger a drain (every worker
		// parked); force one so the run can finish.
		if s.model == Async && len(s.acomp) > 0 {
			s.asyncService(s.serverFree, true)
			continue
		}

		if s.sched.Done() {
			return nil
		}
		// Dropped-wakeup recovery: ready work with every worker parked and
		// nothing queued means a wake was injected away — re-wake (the
		// DropWakeup budget bounds repeats; maxOps guards the rest).
		if s.plan != nil && s.parkedN > 0 {
			avail := s.sched.ReadyTasks()
			if s.model == Async {
				avail += len(s.aready)
			}
			if avail > 0 {
				if s.model == Async {
					s.wakeAsync()
				} else {
					s.wake(s.serverFree)
				}
				continue
			}
		}
		return fmt.Errorf("sim: stalled at t=%d phase=%d: no events, no requests, scheduler not done",
			s.serverFree, s.sched.CurrentPhase())
	}
}

func (s *state) serveRequest(req request) {
	if req.isDone {
		s.completeTask(req)
		return
	}
	if s.plan != nil && s.maybeCrash(req.proc, req.at) {
		return // the worker is retired: its ask dies, it never asks again
	}
	if s.model == Adaptive {
		s.adaptiveAsk(req)
		return
	}
	if s.model == Async {
		s.asyncAsk(req)
		return
	}
	// Task request from an idle worker.
	task, cost, ok := s.sched.NextTask()
	fin := s.chargeMgmt(req.proc, req.at, cost)
	if !ok {
		s.park(req.proc, fin)
		return
	}
	if s.met != nil {
		s.met.DispatchWait.Observe(fin - req.at)
	}
	s.dispatch(req.proc, task, fin)
}

// simShard is one worker's local state under the Adaptive model: the task
// buffer a refill filled (tasks[next:] still pending) and the completion
// batch awaiting a flush. buf is the scratch handed to NextTasks so
// steady-state refills reuse one array.
type simShard struct {
	tasks []core.Task
	next  int
	done  []core.Task
	buf   []core.Task
}

// adaptiveAsk serves a task request under the Adaptive model: pop the
// local buffer for free, or make one serialized lock visit that flushes
// the completion batch and pulls the next refill.
func (s *state) adaptiveAsk(req request) {
	ab := &s.ab[req.proc]
	if ab.next < len(ab.tasks) {
		// Local deque pop: the whole point — no management charge.
		task := ab.tasks[ab.next]
		ab.next++
		s.noteStarve(req.at)
		s.hoardNow--
		if s.met != nil {
			s.met.DispatchWait.Observe(0)
		}
		s.dispatch(req.proc, task, req.at)
		return
	}
	// Refill visit. Completions flush first (they may release the very
	// work the refill then pulls), mirroring the sharded manager's refill
	// path; one Acquire covers the combined visit.
	var cost core.Cost
	flushed := len(ab.done) > 0
	if flushed {
		cost += s.sched.CompleteBatch(ab.done)
	}
	ts, dc := s.sched.NextTasks(ab.buf[:0], s.batchN)
	cost += dc
	if flushed || len(ts) > 0 {
		cost += s.acquire
		s.acquireUnits += int64(s.acquire)
	}
	fin := s.serve(req.at, cost)
	if flushed {
		for _, t := range ab.done {
			if pt := &s.phases[t.Phase]; fin > pt.End {
				pt.End = fin
			}
		}
		ab.done = ab.done[:0]
	}
	s.maybeRetune(fin)
	// Wake after the refill, not just after a flush: NextTasks' liveness
	// fallback can absorb deferred management and release work beyond
	// what this worker's batch took, and parked peers must see it (the
	// goroutine manager's refill wake counts ReadyTasks the same way).
	s.wake(fin)
	if len(ts) > 0 {
		ab.tasks, ab.buf, ab.next = ts, ts[:0], 1
		s.noteStarve(fin)
		s.hoardNow += len(ts) - 1
		if s.met != nil {
			s.met.DispatchWait.Observe(fin - req.at)
		}
		s.dispatch(req.proc, ts[0], fin)
		return
	}
	ab.buf = ts[:0]
	s.park(req.proc, fin)
}

// adaptiveComplete accumulates a completion in the worker's local batch,
// flushing it through one serialized lock visit when full.
func (s *state) adaptiveComplete(req request) {
	ab := &s.ab[req.proc]
	ab.done = append(ab.done, req.task)
	if req.at > s.lastDone {
		s.lastDone = req.at
	}
	at := req.at
	if len(ab.done) >= s.cbatchN {
		cost := s.acquire + s.sched.CompleteBatch(ab.done)
		s.acquireUnits += int64(s.acquire)
		fin := s.serve(at, cost)
		for _, t := range ab.done {
			if pt := &s.phases[t.Phase]; fin > pt.End {
				pt.End = fin
			}
		}
		ab.done = ab.done[:0]
		s.maybeRetune(fin)
		s.wake(fin)
		at = fin
	} else if pt := &s.phases[req.task.Phase]; at > pt.End {
		// Batched: the completion waits in the worker's local batch at no
		// management charge; the phase still saw the event.
		pt.End = at
	}
	// The worker asks for new work once its completion is handed off.
	s.reqs.push(request{at: at, proc: req.proc})
}

// maybeRetune feeds the adaptive controller one epoch of virtual-time
// measurements when enough virtual time has passed: the Acquire charges
// are the amortizable lock overhead, and the hoarded-idle integral the
// starvation a smaller batch would have fed.
func (s *state) maybeRetune(now int64) {
	if s.tuner == nil || now-s.lastObsAt < s.epochLen {
		return
	}
	s.noteStarve(now)
	capacity := (now - s.lastObsAt) * int64(s.workers)
	// The virtual-time model has no cond-parked-behind-the-lock state —
	// every wait is priced into the serialized server directly — so the
	// lock-starvation input is zero here.
	cap, batch, changed := s.tuner.Observe(capacity,
		s.acquireUnits-s.lastObsAcq, s.hiInt-s.lastObsHI, 0)
	if changed {
		s.batchN, s.cbatchN = cap, batch
		if s.tr != nil {
			s.tr.Record(trace.KRetune, now, -1, 0, -1, 0, 0, int64(cap))
		}
		if s.met != nil {
			s.met.Retunes.Inc(0)
			s.met.BatchSize.Set(int64(cap))
		}
	}
	s.lastObsAt = now
	s.lastObsAcq = s.acquireUnits
	s.lastObsHI = s.hiInt
}

func (s *state) dispatch(worker int, task core.Task, at int64) {
	dur := int64(s.sched.TaskCost(task))
	var lag int64 // completion-event delay (stuck grain / wedged worker)
	var fail error
	if s.plan != nil {
		dur, lag, fail = s.inject(worker, task, at, dur)
	}
	if s.tr != nil {
		s.tr.Record(trace.KDispatch, at, int32(worker), 0,
			int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), dur)
	}
	if s.met != nil {
		s.met.Dispatches.Inc(worker)
	}
	end := at + dur
	s.computeUnits += dur
	s.workerFree[worker] = end + lag
	s.tl.AddBusy(worker, at, end)
	if s.gantt != nil {
		label := rune('A' + int(task.Phase)%26)
		s.gantt.Add(worker, at, end, label)
	}
	pt := &s.phases[task.Phase]
	if pt.Start < 0 || at < pt.Start {
		pt.Start = at
	}
	pt.Dispatched++
	// Overlap attribution: compute performed for a non-current phase
	// fills the current phase's rundown.
	if cur := s.sched.CurrentPhase(); cur < len(s.phases) && granule.PhaseID(cur) != task.Phase {
		s.phases[cur].OverlapUnits += dur
	}
	s.seq++
	s.events.push(event{at: end + lag, seq: s.seq, task: task, proc: worker, dur: dur, fail: fail})
}

func (s *state) completeTask(req request) {
	// Done-work accrual for the observer: computeUnits is charged in full
	// at dispatch (it includes in-flight tasks' future work, which would
	// read as utilization > 1 mid-run), so snapshots count a task's
	// compute only when its completion event is served.
	s.doneUnits += req.dur
	// Recorded BEFORE the scheduler absorbs the completion, so any
	// dispatch the completion enables carries a larger Seq.
	if s.tr != nil {
		s.tr.Record(trace.KComplete, req.at, int32(req.proc), 0,
			int32(req.task.Phase), uint32(req.task.Run.Lo), uint32(req.task.Run.Hi), req.dur)
	}
	if s.met != nil {
		s.met.Completions.Inc(req.proc)
	}
	if s.model == Adaptive {
		s.adaptiveComplete(req)
		return
	}
	if s.model == Async {
		s.asyncComplete(req)
		return
	}
	cost := s.sched.Complete(req.task)
	fin := s.chargeMgmt(req.proc, req.at, cost)
	if req.at > s.lastDone {
		s.lastDone = req.at
	}
	pt := &s.phases[req.task.Phase]
	if fin > pt.End {
		pt.End = fin
	}
	s.wake(fin)
	// The completing worker asks for new work after its completion has
	// been processed.
	s.reqs.push(request{at: fin, proc: req.proc})
}

// frontier is the run's virtual-time high-water mark: the later of the
// management server's horizon and the last task completion — the same
// quantity result() uses as the makespan.
func (s *state) frontier() int64 {
	if s.lastDone > s.serverFree {
		return s.lastDone
	}
	return s.serverFree
}

// snapshot builds an observation of the run at virtual time at. Jobs is
// 1 until the program completes and 0 after, so the Final snapshot
// reads "drained" exactly as the other backends' do. ComputeUnits
// counts only completed tasks (doneUnits) — dispatch-time accrual would
// include in-flight tasks' future work and read as utilization above 1.
func (s *state) snapshot(at int64) Snapshot {
	sn := Snapshot{
		VirtualTime:  at,
		Tasks:        s.sched.Dispatches(),
		ComputeUnits: s.doneUnits,
		MgmtUnits:    s.mgmtUnits,
		IdleUnits:    s.idleUnits,
	}
	if !s.sched.Done() {
		sn.Jobs = 1
	}
	if s.model == Adaptive {
		sn.Batch = s.batchN
	}
	if at > 0 {
		capacity := float64(s.procs) * float64(at)
		sn.Utilization = float64(sn.ComputeUnits) / capacity
		sn.OverheadShare = float64(s.mgmtUnits) / capacity
	}
	return sn
}

func (s *state) result() *Result {
	makespan := s.serverFree
	if s.lastDone > makespan {
		makespan = s.lastDone
	}
	// Close out any still-parked workers at the makespan.
	for w := range s.parked {
		if s.parked[w] {
			s.parked[w] = false
			d := makespan - s.parkedA[w]
			if d > 0 {
				s.idleUnits += d
			}
		}
	}
	s.tl.SetEnd(makespan)

	st := s.sched.Stats()
	res := &Result{
		Makespan:     makespan,
		ComputeUnits: s.computeUnits,
		MgmtUnits:    s.mgmtUnits,
		SerialUnits:  int64(st.SerialCost),
		IdleUnits:    s.idleUnits,
		Workers:      s.workers,
		Procs:        s.procs,
		Sched:        st,
		Phases:       s.phases,
		Timeline:     s.tl,
		Gantt:        s.gantt,
	}
	if s.model == Adaptive {
		res.Batch = s.batchN
		if s.tuner != nil {
			res.BatchChanges = s.tuner.Changes()
		}
	}
	if makespan > 0 {
		res.Utilization = float64(s.computeUnits) / (float64(s.procs) * float64(makespan))
		res.WorkerUtilization = float64(s.computeUnits) / (float64(s.workers) * float64(makespan))
	}
	if s.mgmtUnits > 0 {
		res.MgmtRatio = float64(s.computeUnits) / float64(s.mgmtUnits)
	}
	return res
}

// finishMetrics closes out the metric set on any outcome: the job leaves
// the active gauge, and the time-split totals — accumulated as plain
// event-loop counters so the hot serve path stays metric-free — are
// flushed into their counters in one deterministic step.
func (s *state) finishMetrics() {
	if s.met == nil {
		return
	}
	s.met.JobsDone.Inc(0)
	s.met.ActiveJobs.Add(-1)
	s.met.ComputeTime.Add(0, s.computeUnits)
	s.met.MgmtTime.Add(0, s.mgmtUnits)
	s.met.IdleTime.Add(0, s.idleUnits)
}
