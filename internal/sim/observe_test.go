package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in   string
		want MgmtModel
	}{
		{"steals-worker", StealsWorker},
		{"STEALS-WORKER", StealsWorker},
		{"steals", StealsWorker},
		{"dedicated", Dedicated},
		{"Dedicated", Dedicated},
		{"sharded", Sharded},
		{"SHARDED", Sharded},
		{"adaptive", Adaptive},
		{" adaptive ", Adaptive},
		{"async", Async},
		{"Async", Async},
	}
	for _, c := range cases {
		got, err := ParseModel(c.in)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseModel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	_, err := ParseModel("quantum")
	if err == nil {
		t.Fatal("ParseModel accepted an unknown model")
	}
	for _, name := range ModelNames() {
		if !contains(err.Error(), name) {
			t.Errorf("ParseModel error %q does not enumerate %q", err, name)
		}
	}
	// Round trip: every listed name parses to a model whose String matches.
	for _, name := range ModelNames() {
		m, err := ParseModel(name)
		if err != nil {
			t.Errorf("listed name %q does not parse: %v", name, err)
			continue
		}
		if m.String() != name {
			t.Errorf("ParseModel(%q).String() = %q", name, m.String())
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestSupportsMultiMatchesRunMulti pins SupportsMulti to RunMulti's
// actual accept/reject behaviour for every model: the static capability
// check must never disagree with the runtime gate.
func TestSupportsMultiMatchesRunMulti(t *testing.T) {
	for _, m := range []MgmtModel{StealsWorker, Dedicated, Sharded, Adaptive, Async} {
		jobs := []JobSpec{
			{Prog: twoPhase(t, 32, enable.NewIdentity()), Opt: core.Options{Grain: 4, Costs: core.DefaultCosts()}},
			{Prog: twoPhase(t, 32, enable.NewIdentity()), Opt: core.Options{Grain: 4, Costs: core.DefaultCosts()}},
		}
		_, err := RunMulti(jobs, Config{Procs: 4, Mgmt: m})
		rejected := errors.Is(err, ErrUnsupportedMgmt)
		if err != nil && !rejected {
			t.Fatalf("%v: unexpected error: %v", m, err)
		}
		if rejected == SupportsMulti(m) {
			t.Errorf("%v: SupportsMulti = %v but RunMulti rejected = %v", m, SupportsMulti(m), rejected)
		}
	}
}

// cancelProg builds a chain long enough that the event loop's batched ctx
// poll (every 1024 management operations) fires many times.
func cancelProg(t *testing.T) *core.Program {
	t.Helper()
	prog, err := core.NewProgram(
		&core.Phase{Name: "a", Granules: 4096, Enable: enable.NewIdentity()},
		&core.Phase{Name: "b", Granules: 4096, Enable: enable.NewIdentity()},
		&core.Phase{Name: "c", Granules: 4096},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, cancelProg(t),
		core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: Dedicated})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestRunContextCanceledSmallRun: even a run far shorter than the
// batched in-loop poll interval must observe a pre-cancelled context
// (entry check), and the observer stream must still close with a Final
// snapshot.
func TestRunContextCanceledSmallRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var snaps []Snapshot
	_, err := RunContext(ctx, onePhase(t, 8),
		core.Options{Grain: 4, Costs: core.DefaultCosts()},
		Config{Procs: 2, Mgmt: Dedicated,
			Observer: func(s Snapshot) { snaps = append(snaps, s) }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if len(snaps) == 0 || !snaps[len(snaps)-1].Final {
		t.Fatalf("cancelled run did not close the observer stream with Final: %v", snaps)
	}
}

func TestRunMultiContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []JobSpec{
		{Prog: cancelProg(t), Opt: core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}},
		{Prog: cancelProg(t), Opt: core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}},
	}
	_, err := RunMultiContext(ctx, jobs, Config{Procs: 8, Mgmt: Dedicated})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestObserverDeterministic runs the same observed simulation twice and
// requires identical snapshot streams: virtual-time observation is part
// of the deterministic machine model, not a wall-clock side channel.
func TestObserverDeterministic(t *testing.T) {
	run := func() ([]Snapshot, *Result) {
		var snaps []Snapshot
		res, err := Run(twoPhase(t, 512, enable.NewIdentity()),
			core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()},
			Config{Procs: 8, Mgmt: StealsWorker,
				Observer: func(s Snapshot) { snaps = append(snaps, s) }})
		if err != nil {
			t.Fatal(err)
		}
		return snaps, res
	}
	a, res := run()
	b, _ := run()
	if len(a) == 0 {
		t.Fatal("observer saw no snapshots")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("snapshot streams differ:\n%v\n%v", a, b)
	}
	last := a[len(a)-1]
	if !last.Final {
		t.Error("last snapshot not marked Final")
	}
	if last.VirtualTime != res.Makespan {
		t.Errorf("final snapshot at t=%d, makespan %d", last.VirtualTime, res.Makespan)
	}
	if last.ComputeUnits != res.ComputeUnits || last.MgmtUnits != res.MgmtUnits {
		t.Errorf("final snapshot totals %d/%d, result %d/%d",
			last.ComputeUnits, last.MgmtUnits, res.ComputeUnits, res.MgmtUnits)
	}
	prev := int64(-1)
	for i, s := range a {
		if s.VirtualTime < prev {
			t.Fatalf("snapshot %d time %d went backwards from %d", i, s.VirtualTime, prev)
		}
		prev = s.VirtualTime
		if s.Utilization < 0 || s.Utilization > 1.0001 {
			t.Errorf("snapshot %d utilization %v out of range", i, s.Utilization)
		}
		// Jobs reads 1 while the program runs and 0 once it completes
		// (a trailing loop iteration may observe the drained state
		// before the Final snapshot); it must never go back up, and the
		// Final snapshot must read drained.
		if s.Jobs != 0 && s.Jobs != 1 {
			t.Errorf("snapshot %d jobs = %d, want 0 or 1", i, s.Jobs)
		}
		if i > 0 && s.Jobs > a[i-1].Jobs {
			t.Errorf("snapshot %d jobs went back up to %d", i, s.Jobs)
		}
		if s.Final && s.Jobs != 0 {
			t.Errorf("final snapshot jobs = %d, want 0", s.Jobs)
		}
	}
}

// TestObserverAdaptiveBatch checks the Adaptive model reports its live
// batch size through snapshots.
func TestObserverAdaptiveBatch(t *testing.T) {
	var snaps []Snapshot
	_, err := Run(twoPhase(t, 512, enable.NewIdentity()),
		core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
		Config{Procs: 8, Mgmt: Adaptive, Batch: 8,
			Observer: func(s Snapshot) { snaps = append(snaps, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	for i, s := range snaps {
		if s.Batch <= 0 {
			t.Errorf("snapshot %d batch = %d, want > 0 under Adaptive", i, s.Batch)
		}
	}
}

// TestObserverMulti checks the multi-program loop's snapshots: the job
// count drains to zero by the final snapshot and the stream is
// deterministic.
func TestObserverMulti(t *testing.T) {
	run := func() []Snapshot {
		var snaps []Snapshot
		jobs := []JobSpec{
			{Prog: twoPhase(t, 256, enable.NewIdentity()), Opt: core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()}},
			{Prog: twoPhase(t, 64, enable.NewIdentity()), Opt: core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()}},
		}
		res, err := RunMulti(jobs, Config{Procs: 4, Mgmt: Dedicated,
			Observer: func(s Snapshot) { snaps = append(snaps, s) }})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan <= 0 {
			t.Fatal("empty run")
		}
		return snaps
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("observer saw no snapshots")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("multi snapshot streams differ:\n%v\n%v", a, b)
	}
	last := a[len(a)-1]
	if !last.Final {
		t.Error("last snapshot not Final")
	}
	if last.Jobs != 0 {
		t.Errorf("final snapshot jobs = %d, want 0", last.Jobs)
	}
	// The live stream must never report a virtual time beyond the Final
	// snapshot's (the frontier excludes trailing management-server time
	// that the multi makespan does not count).
	for i, s := range a {
		if s.VirtualTime > last.VirtualTime {
			t.Errorf("snapshot %d at t=%d is beyond the final t=%d", i, s.VirtualTime, last.VirtualTime)
		}
	}
}
