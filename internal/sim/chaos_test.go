package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The chaos sweep: seeded fault campaigns against every management model
// in virtual time. The contract under test is the tentpole's isolation
// trichotomy — every injected fault ends in exactly one of {successful
// retry, isolated per-job error, deadline abort}, never a hung run or
// cross-job corruption — plus bit-identical determinism per seed and
// trace-replay conservation on every surviving job.

var chaosModels = []MgmtModel{StealsWorker, Dedicated, Sharded, Adaptive, Async}

// chaosProcs keeps the worker count at 8 under every model (StealsWorker
// spends one processor on the executive).
func chaosProcs(m MgmtModel) int {
	if m == StealsWorker {
		return 9
	}
	return 8
}

func chaosJobs(t *testing.T) []JobSpec {
	t.Helper()
	a, err := workload.Chain(enable.Identity, 4, 64, workload.FixedCost(200), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Chain(enable.Identity, 3, 96, workload.FixedCost(150), 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := func() core.Options {
		return core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}
	}
	return []JobSpec{
		{Name: "alpha", Prog: a, Opt: opt(), Weight: 2, Retry: 3, Backoff: 64},
		{Name: "beta", Prog: b, Opt: opt(), Weight: 1, Priority: 1, Retry: 3, Backoff: 64},
	}
}

// checkOutcome asserts the trichotomy for one job result.
func checkOutcome(t *testing.T, tag string, jr JobResult) {
	t.Helper()
	switch {
	case jr.Err == nil:
		// Completed — cleanly or after a successful retry.
	case errors.Is(jr.Err, context.DeadlineExceeded):
		// Deadline abort.
	case strings.Contains(jr.Err.Error(), "injected"):
		// Isolated per-job failure that exhausted its retries.
	default:
		t.Errorf("%s: job %q died of something other than the trichotomy: %v", tag, jr.Name, jr.Err)
	}
}

// TestChaosSweepDeterministicAndIsolated runs seeded scenarios against
// every model, twice per seed: the run must never error out as a whole
// (a fault escaping its job would surface here as a run error or a
// stall), each job must land in the trichotomy, and the two runs must be
// bit-identical.
func TestChaosSweepDeterministicAndIsolated(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				spec := fault.Scenario(seed, 4, 2, 4, 64, 8)
				cfg := Config{Procs: chaosProcs(model), Mgmt: model, Faults: &spec}
				r1, err := RunMulti(chaosJobs(t), cfg)
				if err != nil {
					t.Fatalf("seed %d: run failed as a whole (isolation breached): %v", seed, err)
				}
				r2, err := RunMulti(chaosJobs(t), cfg)
				if err != nil {
					t.Fatalf("seed %d: second run failed: %v", seed, err)
				}
				if !reflect.DeepEqual(r1.Jobs, r2.Jobs) || r1.Makespan != r2.Makespan ||
					r1.Faults != r2.Faults || r1.Retries != r2.Retries {
					t.Fatalf("seed %d: identical seeds produced different outcomes:\n%+v\nvs\n%+v", seed, r1, r2)
				}
				for _, jr := range r1.Jobs {
					checkOutcome(t, model.String(), jr)
					// A surviving job really ran to completion (replay
					// conservation pins exactness separately).
					if jr.Err == nil && (jr.Makespan <= 0 || jr.ComputeUnits <= 0) {
						t.Errorf("seed %d: surviving job %q has empty accounting: %+v", seed, jr.Name, jr)
					}
				}
			}
		})
	}
}

// TestChaosReplayConservation records a traced chaos run and replays
// every surviving job's filtered trace against a fresh scheduler: the
// schedule must be conserved — every dispatch enabled, every phase
// exactly complete — no matter what was injected around it.
func TestChaosReplayConservation(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				spec := fault.Scenario(seed, 4, 2, 4, 64, 8)
				rec := trace.NewRecorder(trace.Meta{}, chaosProcs(model))
				jobs := chaosJobs(t)
				res, err := RunMulti(jobs, Config{
					Procs: chaosProcs(model), Mgmt: model, Faults: &spec, Trace: rec,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				tr := rec.Take()
				for i, jr := range res.Jobs {
					if jr.Err != nil {
						continue // aborted jobs have no complete schedule to conserve
					}
					sub := tr.FilterJob(i)
					rep, rerr := Replay(jobs[i].Prog, jobs[i].Opt, sub)
					if rerr != nil {
						t.Errorf("seed %d job %q: replay diverged: %v", seed, jr.Name, rerr)
						continue
					}
					if want := int64(jobs[i].Prog.TotalGranules()); rep.Granules != want {
						t.Errorf("seed %d job %q: replay conserved %d granules, want %d",
							seed, jr.Name, rep.Granules, want)
					}
				}
			}
		})
	}
}

// TestChaosDeadlineAbortIsIsolated pins the deadline contract: a job
// whose budget cannot fit its work aborts AT its deadline (not later),
// with an error wrapping context.DeadlineExceeded, while its co-tenant
// finishes within 10% of the makespan it gets in a fault-free run.
func TestChaosDeadlineAbortIsIsolated(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			baseline, err := RunMulti(chaosJobs(t), Config{Procs: chaosProcs(model), Mgmt: model})
			if err != nil {
				t.Fatal(err)
			}
			jobs := chaosJobs(t)
			jobs[0].Deadline = baseline.Jobs[0].Makespan / 4
			res, err := RunMulti(jobs, Config{Procs: chaosProcs(model), Mgmt: model})
			if err != nil {
				t.Fatalf("deadline abort killed the whole run: %v", err)
			}
			j0, j1 := res.Jobs[0], res.Jobs[1]
			if !errors.Is(j0.Err, context.DeadlineExceeded) {
				t.Fatalf("deadlined job err = %v, want context.DeadlineExceeded", j0.Err)
			}
			if j0.Makespan > jobs[0].Deadline {
				t.Errorf("deadlined job retired at %d, past its budget %d", j0.Makespan, jobs[0].Deadline)
			}
			if j1.Err != nil {
				t.Fatalf("co-tenant died with the deadlined job: %v", j1.Err)
			}
			// The co-tenant inherits freed capacity; it must never be more
			// than 10% WORSE than its fault-free makespan.
			limit := baseline.Jobs[1].Makespan + baseline.Jobs[1].Makespan/10
			if j1.Makespan > limit {
				t.Errorf("co-tenant makespan %d exceeds 110%% of fault-free %d",
					j1.Makespan, baseline.Jobs[1].Makespan)
			}
		})
	}
}

// TestChaosGenerousDeadlineNeverFires pins the deadline check's
// empty-queue guard: a drained event queue is a normal, recoverable
// state — Async routinely parks completions behind a busy server with
// every worker idle, and the run loop's recovery branches regenerate
// events from it — so a job whose deadline comfortably exceeds its real
// makespan must never be spuriously aborted, fault-free and under seeded
// campaigns alike.
func TestChaosGenerousDeadlineNeverFires(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			baseline, err := RunMulti(chaosJobs(t), Config{Procs: chaosProcs(model), Mgmt: model})
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed <= 8; seed++ {
				jobs := chaosJobs(t)
				for i := range jobs {
					jobs[i].Deadline = baseline.Makespan * 64
				}
				cfg := Config{Procs: chaosProcs(model), Mgmt: model}
				if seed > 0 {
					spec := fault.Scenario(seed, 4, 2, 4, 64, 8)
					cfg.Faults = &spec
				}
				res, err := RunMulti(jobs, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, jr := range res.Jobs {
					if errors.Is(jr.Err, context.DeadlineExceeded) {
						t.Errorf("seed %d: job %q spuriously aborted against a 64x-makespan deadline: %v",
							seed, jr.Name, jr.Err)
					}
				}
			}
		})
	}
}

// TestChaosRetrySucceeds pins the retry path: a one-shot injected grain
// error fails the first attempt, the retry runs clean, and the job
// completes with Attempts == 2 under every model.
func TestChaosRetrySucceeds(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			spec := fault.Spec{Rules: []fault.Rule{
				{Kind: fault.GrainError, Job: 0, Phase: 1, Granule: 7},
			}}
			jobs := chaosJobs(t)
			res, err := RunMulti(jobs, Config{Procs: chaosProcs(model), Mgmt: model, Faults: &spec})
			if err != nil {
				t.Fatal(err)
			}
			j0 := res.Jobs[0]
			if j0.Err != nil {
				t.Fatalf("retry did not rescue the job: %v", j0.Err)
			}
			if j0.Attempts != 2 {
				t.Errorf("attempts = %d, want 2", j0.Attempts)
			}
			if res.Retries != 1 {
				t.Errorf("retries = %d, want 1", res.Retries)
			}
			if res.Faults < 1 {
				t.Errorf("faults = %d, want >= 1", res.Faults)
			}
			if res.Jobs[1].Err != nil {
				t.Errorf("co-tenant caught the failure: %v", res.Jobs[1].Err)
			}
		})
	}
}

// TestChaosRetryExhaustionIsolates pins the other arm: a grain error
// with more firings than the retry budget retires the job with the
// injected error while the co-tenant completes.
func TestChaosRetryExhaustionIsolates(t *testing.T) {
	spec := fault.Spec{Rules: []fault.Rule{
		{Kind: fault.GrainError, Job: 0, Phase: 0, Granule: 3, Count: 10},
	}}
	jobs := chaosJobs(t)
	jobs[0].Retry = 2
	res, err := RunMulti(jobs, Config{Procs: 8, Mgmt: Sharded, Faults: &spec})
	if err != nil {
		t.Fatal(err)
	}
	j0 := res.Jobs[0]
	if j0.Err == nil || !strings.Contains(j0.Err.Error(), "injected") {
		t.Fatalf("job 0 err = %v, want the injected error", j0.Err)
	}
	if j0.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + Retry 2)", j0.Attempts)
	}
	if res.Jobs[1].Err != nil {
		t.Errorf("co-tenant caught the failure: %v", res.Jobs[1].Err)
	}
}

// TestChaosWorkerCrashDegradesGracefully pins crash semantics: losing a
// worker mid-run completes both jobs (no task is lost with a crash) —
// capacity loss, not failure.
func TestChaosWorkerCrashDegradesGracefully(t *testing.T) {
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			spec := fault.Spec{Rules: []fault.Rule{
				{Kind: fault.WorkerCrash, Worker: 2, Job: -1, Phase: -1, After: 500},
			}}
			res, err := RunMulti(chaosJobs(t), Config{Procs: chaosProcs(model), Mgmt: model, Faults: &spec})
			if err != nil {
				t.Fatal(err)
			}
			for _, jr := range res.Jobs {
				if jr.Err != nil {
					t.Errorf("job %q failed after a graceful crash: %v", jr.Name, jr.Err)
				}
			}
		})
	}
}

// TestChaosPreemptBoundCapsBackfill pins the bounded-degradation
// contract: with PreemptBound set, no backfill dispatch exceeds the
// bound, and the measured MaxBackfillTask reports it.
func TestChaosPreemptBoundCapsBackfill(t *testing.T) {
	jobs := chaosJobs(t)
	// Large explicit grain so backfill would exceed the bound without it.
	jobs[0].Opt.Grain = 32
	jobs[1].Opt.Grain = 32
	res, err := RunMulti(jobs, Config{Procs: 8, Mgmt: Sharded, PreemptBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackfillUnits == 0 {
		t.Skip("fixture produced no backfill; bound unexercised")
	}
	if res.MaxBackfillTask > 2 {
		t.Errorf("backfill task of %d granules exceeds PreemptBound 2", res.MaxBackfillTask)
	}
	if res.MaxBackfillTask <= 0 {
		t.Errorf("MaxBackfillTask unmeasured with backfill present")
	}
}

// TestChaosFaultsOffIsBitIdentical proves the injection hooks are inert
// without a campaign: a run with Faults == nil must be bit-identical to
// one with an empty Spec (which compiles to a nil Plan).
func TestChaosFaultsOffIsBitIdentical(t *testing.T) {
	empty := fault.Spec{}
	a, err := RunMulti(chaosJobs(t), Config{Procs: 8, Mgmt: Sharded})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(chaosJobs(t), Config{Procs: 8, Mgmt: Sharded, Faults: &empty})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("an empty fault spec perturbed the schedule")
	}
}

// TestChaosSingleProgramFaults covers the single-program engine's
// injection: slow and stuck grains complete with inflated virtual time,
// panics and errors fail the run, a crash loses capacity but finishes,
// and a dropped wakeup is recovered.
func TestChaosSingleProgramFaults(t *testing.T) {
	build := func() (*core.Program, core.Options) {
		prog, err := workload.Chain(enable.Identity, 3, 64, workload.FixedCost(100), 5)
		if err != nil {
			t.Fatal(err)
		}
		return prog, core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()}
	}
	for _, model := range chaosModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			prog, opt := build()
			clean, err := Run(prog, opt, Config{Procs: chaosProcs(model), Mgmt: model})
			if err != nil {
				t.Fatal(err)
			}

			// Slow grain: completes, strictly more virtual compute.
			prog, opt = build()
			slow := fault.Spec{Rules: []fault.Rule{{Kind: fault.GrainSlow, Job: 0, Phase: 1, Granule: 5, Factor: 4}}}
			res, err := Run(prog, opt, Config{Procs: chaosProcs(model), Mgmt: model, Faults: &slow})
			if err != nil {
				t.Fatalf("slow grain failed the run: %v", err)
			}
			if res.ComputeUnits <= clean.ComputeUnits {
				t.Errorf("slow grain did not inflate compute: %d vs %d", res.ComputeUnits, clean.ComputeUnits)
			}

			// Stuck grain: completes, compute unchanged, makespan no smaller.
			prog, opt = build()
			stall := fault.Spec{Rules: []fault.Rule{{Kind: fault.GrainStall, Job: 0, Phase: 0, Granule: 9, Delay: 4000}}}
			res, err = Run(prog, opt, Config{Procs: chaosProcs(model), Mgmt: model, Faults: &stall})
			if err != nil {
				t.Fatalf("stuck grain failed the run: %v", err)
			}
			if res.ComputeUnits != clean.ComputeUnits {
				t.Errorf("stuck grain changed compute: %d vs %d", res.ComputeUnits, clean.ComputeUnits)
			}
			if res.Makespan < clean.Makespan {
				t.Errorf("stall shrank the makespan: %d vs %d", res.Makespan, clean.Makespan)
			}

			// Grain error: the run fails with the injected error.
			prog, opt = build()
			boom := fault.Spec{Rules: []fault.Rule{{Kind: fault.GrainError, Job: 0, Phase: 0, Granule: 0}}}
			if _, err = Run(prog, opt, Config{Procs: chaosProcs(model), Mgmt: model, Faults: &boom}); err == nil ||
				!strings.Contains(err.Error(), "injected") {
				t.Errorf("grain error outcome: %v", err)
			}

			// Crash + dropped wakeup + management delay: completes.
			prog, opt = build()
			mixed := fault.Spec{Rules: []fault.Rule{
				{Kind: fault.WorkerCrash, Worker: 1, After: 200},
				{Kind: fault.DropWakeup, Count: 2},
				{Kind: fault.MgmtDelay, Job: -1, Delay: 300},
			}}
			res, err = Run(prog, opt, Config{Procs: chaosProcs(model), Mgmt: model, Faults: &mixed})
			if err != nil {
				t.Fatalf("mixed campaign failed the run: %v", err)
			}
			if res.ComputeUnits != clean.ComputeUnits {
				t.Errorf("mixed campaign changed compute: %d vs %d", res.ComputeUnits, clean.ComputeUnits)
			}
		})
	}
}
