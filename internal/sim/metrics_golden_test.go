package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The metrics golden suite pins the telemetry a virtual run records: for
// every management model (single- and multi-program), the same seed must
// produce a bit-identical metric dump — virtual-unit times included —
// because the simulator observes metrics from its event loop on the
// virtual clock. Each fixture runs twice and requires the two JSON dumps
// to be byte-equal before comparing the fingerprint against
// testdata/metrics_golden.txt, so a nondeterministic recording fails
// even with a stale golden file. Regenerate with
// `go test ./internal/sim -run TestGoldenMetrics -update` ONLY for an
// intentional semantic change, and say so in the commit.
const metricsGoldenFile = "testdata/metrics_golden.txt"

// metricsFixture runs one configuration against a fresh registry and
// returns the dump's canonical JSON.
type metricsFixture struct {
	name string
	run  func(t *testing.T, met *telemetry.Set)
}

func (fx metricsFixture) dump(t *testing.T, procs int) []byte {
	t.Helper()
	met := telemetry.NewSet(telemetry.NewRegistry(procs, "virtual"))
	fx.run(t, met)
	buf, err := json.Marshal(met.Registry.Dump())
	if err != nil {
		t.Fatalf("%s: marshal dump: %v", fx.name, err)
	}
	return buf
}

func metricsSingleFixture(name string, phases, granules int, seed uint64,
	opt core.Options, cfg Config) metricsFixture {
	return metricsFixture{name: name, run: func(t *testing.T, met *telemetry.Set) {
		c := cfg
		c.Metrics = met
		if _, err := Run(goldenChain(t, phases, granules, seed), opt, c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}}
}

func metricsMultiFixture(name string, cfg Config, build func(t *testing.T) []JobSpec) metricsFixture {
	return metricsFixture{name: name, run: func(t *testing.T, met *telemetry.Set) {
		c := cfg
		c.Metrics = met
		if _, err := RunMulti(build(t), c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}}
}

func metricsFixtures() []metricsFixture {
	var fx []metricsFixture
	// Every management model on the identity chain: the five single-run
	// recording paths (dispatch/compute accounting, dispatch-wait at the
	// ask-serving sites, ready-buffer occupancy under Async, retunes and
	// batch-size under Adaptive).
	for _, m := range []MgmtModel{StealsWorker, Dedicated, Sharded, Adaptive, Async} {
		fx = append(fx, metricsSingleFixture(
			fmt.Sprintf("chain/%v/p8", m), 4, 1024, 1986,
			goldenOpt(4), Config{Procs: 8, Mgmt: m}))
	}
	// Adaptive with the online controller: retune counts pinned.
	tuned := goldenOpt(2)
	tuned.AdaptiveBatch = true
	fx = append(fx, metricsFixture{name: "chain/adaptive-tuned/p16",
		run: func(t *testing.T, met *telemetry.Set) {
			cfg := Config{Procs: 16, Mgmt: Adaptive, Batch: 8, Metrics: met}
			if _, err := Run(goldenChain(t, 4, 2048, 7), tuned, cfg); err != nil {
				t.Fatal(err)
			}
		}})
	// Multi-program: job lifecycle, backfill, and queue-wait recording
	// under three models; a deadlined pair pins DeadlineMargin/-Misses.
	twoJobs := func(t *testing.T) []JobSpec {
		return []JobSpec{
			{Name: "a", Prog: goldenChain(t, 4, 768, 1), Opt: goldenOpt(4), Weight: 2},
			{Name: "b", Prog: goldenChain(t, 3, 384, 2), Opt: goldenOpt(2), Priority: 1},
		}
	}
	for _, m := range []MgmtModel{StealsWorker, Sharded, Async} {
		fx = append(fx, metricsMultiFixture(
			fmt.Sprintf("multi2/%v/p8", m), Config{Procs: 8, Mgmt: m}, twoJobs))
	}
	fx = append(fx, metricsMultiFixture("multi2-deadline/steals-worker/p8",
		Config{Procs: 8, Mgmt: StealsWorker},
		func(t *testing.T) []JobSpec {
			return []JobSpec{
				// Generous budget: margin lands in the histogram.
				{Name: "ok", Prog: goldenChain(t, 3, 512, 3), Opt: goldenOpt(4), Deadline: 1 << 40},
				// One-unit budget: a deterministic miss.
				{Name: "late", Prog: goldenChain(t, 3, 512, 4), Opt: goldenOpt(4), Deadline: 1},
			}
		}))
	return fx
}

// TestGoldenMetricsDeterminism checks run-twice bit-identity of every
// fixture's metric dump, then compares the dump fingerprints against
// testdata/metrics_golden.txt (or rewrites it under -update).
func TestGoldenMetricsDeterminism(t *testing.T) {
	fixtures := metricsFixtures()
	got := make(map[string]string, len(fixtures))
	var order []string
	for _, fx := range fixtures {
		a := fx.dump(t, 8)
		b := fx.dump(t, 8)
		if !bytes.Equal(a, b) {
			t.Errorf("fixture %q: two identical runs dumped different metrics:\n  %s\n  %s", fx.name, a, b)
			continue
		}
		h := fnv.New64a()
		h.Write(a)
		var d telemetry.Dump
		if err := json.Unmarshal(a, &d); err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		head := fmt.Sprintf("dispatches=%d compute=%d mgmt=%d",
			d.Get("rundown_dispatch_total").Value,
			d.Get("rundown_compute_time_total").Value,
			d.Get("rundown_mgmt_time_total").Value)
		got[fx.name] = fmt.Sprintf("%s %016x %s", fx.name, h.Sum64(), head)
		order = append(order, fx.name)
	}
	if t.Failed() {
		return
	}

	if *updateGolden {
		sort.Strings(order)
		var b strings.Builder
		b.WriteString("# Golden metric-dump fingerprints: <fixture> <fnv64a of dump JSON> <headline>\n")
		b.WriteString("# Regenerate with: go test ./internal/sim -run TestGoldenMetrics -update\n")
		for _, name := range order {
			b.WriteString(got[name])
			b.WriteString("\n")
		}
		if err := os.MkdirAll(filepath.Dir(metricsGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metricsGoldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(order), metricsGoldenFile)
		return
	}

	f, err := os.Open(metricsGoldenFile)
	if err != nil {
		t.Fatalf("metrics golden file missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		want[name] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		w, ok := want[fx.name]
		if !ok {
			t.Errorf("fixture %q not in metrics golden file (run -update?)", fx.name)
			continue
		}
		if got[fx.name] != w {
			t.Errorf("fixture %q metrics diverged:\n  got  %s\n  want %s", fx.name, got[fx.name], w)
		}
		delete(want, fx.name)
	}
	for name := range want {
		t.Errorf("metrics golden file has stale fixture %q (run -update?)", name)
	}
}
