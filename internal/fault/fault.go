// Package fault is the deterministic fault-injection layer: a seeded
// Spec of failure Rules compiled into a per-run Plan that every backend
// consults at the same chokepoints — the simulator in virtual time
// (bit-identical outcomes per seed), the goroutine executive and the
// tenant pool on real hardware (same rules, wall-clock delays).
//
// Three fault levels mirror where a rundown can rot:
//
//   - grain faults strike one granule's task: panic, error, stall-for-D,
//     or slowdown×k. They are keyed on (job, phase, granule), not on task
//     boundaries, so the same Spec hits the same logical work no matter
//     how a backend carved tasks.
//   - worker faults strike one processor: crash (stops taking work after
//     finishing the task in hand), wedge (the completion in hand is
//     withheld for D — or, on the real pool, until released), slow
//     (every task it runs is stretched ×k).
//   - management faults strike the executive itself: a completion's
//     submission to management is delayed by D, or a wakeup of parked
//     workers is dropped (the engines recover deterministically; the
//     fault prices the recovery, it must never hang the run).
//
// A Plan is stateful — each Rule carries a firing budget consumed
// atomically — so compile a fresh Plan per run; the Spec itself is
// immutable and reusable.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// GrainPanic makes the work function of the matched granule's task
	// panic (real backends go through the engine's recover machinery;
	// virtual backends price the same per-job failure).
	GrainPanic Kind = 1 + iota
	// GrainError fails the matched granule's task with an injected error.
	GrainError
	// GrainStall withholds the matched task's completion for Delay units
	// (the task's compute cost is unchanged — a stuck grain, not a slow
	// one).
	GrainStall
	// GrainSlow stretches the matched task's compute by ×Factor.
	GrainSlow
	// WorkerCrash retires the matched worker after the task in hand: it
	// never asks for work again (graceful capacity loss — no task is
	// lost, the survivors absorb the load).
	WorkerCrash
	// WorkerWedge withholds the matched worker's next completion: for
	// Delay units in virtual time; on the real pool the worker blocks
	// until the Plan is released (Pool.Close), so only a stall probe or
	// deadline can fail the wedged job.
	WorkerWedge
	// WorkerSlow stretches every task the matched worker runs by ×Factor:
	// the default budget is unlimited (a slow worker stays slow); set
	// Count explicitly to bound the number of stretched tasks.
	WorkerSlow
	// MgmtDelay delays the matched job's next completion submission to
	// management by Delay units.
	MgmtDelay
	// DropWakeup makes the next wakeup of parked workers vanish. The
	// engines must recover (re-wake on their watchdog/queue-empty probe);
	// the fault exists to prove they do.
	DropWakeup

	kindCount
)

var kindNames = [...]string{
	GrainPanic:  "grain-panic",
	GrainError:  "grain-error",
	GrainStall:  "grain-stall",
	GrainSlow:   "grain-slow",
	WorkerCrash: "worker-crash",
	WorkerWedge: "worker-wedge",
	WorkerSlow:  "worker-slow",
	MgmtDelay:   "mgmt-delay",
	DropWakeup:  "drop-wakeup",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Rule is one injection: what to break, where, how hard, how often.
// The json tags pin the wire schema the service daemon accepts; Kind
// marshals as its string name. Job, Phase and Worker use -1 for "any",
// so they are never omitted (0 is a valid scope).
type Rule struct {
	Kind Kind `json:"kind"`
	// Job and Phase scope grain and management faults (-1 = any). Grain
	// faults additionally require Granule to fall inside the task's
	// range, so the rule keys on logical work, not task carving.
	Job     int    `json:"job"`
	Phase   int    `json:"phase"`
	Granule uint32 `json:"granule"`
	// Worker scopes worker faults (-1 = any worker).
	Worker int `json:"worker"`
	// After is the earliest firing time: virtual units in the simulator,
	// nanoseconds since run start on real backends. Zero fires from the
	// outset. DropWakeup rules ignore After — they strike the next
	// wakeup, whenever it comes.
	After int64 `json:"after,omitempty"`
	// Delay is the stall/wedge/management-delay length in virtual units
	// (real backends scale with Sleep).
	Delay int64 `json:"delay,omitempty"`
	// Factor is the GrainSlow/WorkerSlow stretch (clamped to
	// [2, MaxFactor] — grain and worker stretches compound on one
	// dispatch, and an unbounded factor could overflow a virtual
	// duration).
	Factor int64 `json:"factor,omitempty"`
	// Count is the firing budget; <= 0 means once, except WorkerSlow,
	// where it means unlimited.
	Count int `json:"count,omitempty"`
}

// Spec is a complete, immutable injection campaign: compile with New for
// each run that should suffer it.
type Spec struct {
	// Seed labels the campaign (Scenario derives the Rules from it); it
	// has no effect on an explicit Rules list.
	Seed uint64 `json:"seed,omitempty"`
	// Rules are the injections, consulted in order.
	Rules []Rule `json:"rules"`
}

// prule is a compiled rule with its remaining firing budget.
type prule struct {
	Rule
	left atomic.Int64
}

// Plan is one run's compiled, consumable fault state. All methods are
// safe for concurrent use; a nil *Plan is inert (every query misses), so
// backends hold a possibly-nil Plan and pay one branch when injection is
// off.
//
// The rule set is copy-on-write: queries load an immutable snapshot with
// one atomic read, and Extend (the dynamic-plan path) swaps in a fresh
// slice under extendMu — so a long-lived plan in a service daemon can
// grow while workers consult it.
type Plan struct {
	rules    atomic.Pointer[[]*prule]
	fired    [kindCount]atomic.Int64
	injected atomic.Int64

	extendMu sync.Mutex
	release  chan struct{}
	once     sync.Once
}

// ruleSet is the query-side snapshot of the rules.
func (p *Plan) ruleSet() []*prule {
	if v := p.rules.Load(); v != nil {
		return *v
	}
	return nil
}

// MaxFactor caps a slow-fault stretch. GrainSlow and WorkerSlow factors
// compound on one dispatch, so the cap keeps even a compounded stretch of
// a large virtual duration far from int64 overflow (a wrapped negative
// duration would push a completion behind its dispatch).
const MaxFactor = 1 << 16

// unbounded is the effectively-infinite firing budget of a default
// WorkerSlow rule: consume decrements it, so it sits far below MaxInt64
// yet beyond any realistic firing count.
const unbounded = int64(1) << 62

// New compiles spec into a fresh Plan. A nil return (empty spec) keeps
// the disabled fast path a single nil check.
func New(spec Spec) *Plan {
	if len(spec.Rules) == 0 {
		return nil
	}
	p := &Plan{release: make(chan struct{})}
	rs := make([]*prule, len(spec.Rules))
	for i, r := range spec.Rules {
		rs[i] = compileRule(r)
	}
	p.rules.Store(&rs)
	return p
}

// NewDynamic compiles spec like New but always returns a non-nil Plan —
// even an empty one — that accepts further rules via Extend: the
// service daemon's staging hook, where a fault campaign arrives with a
// job submitted to an already-running pool.
func NewDynamic(spec Spec) *Plan {
	if p := New(spec); p != nil {
		return p
	}
	p := &Plan{release: make(chan struct{})}
	rs := []*prule{}
	p.rules.Store(&rs)
	return p
}

// Extend appends compiled rules to the live plan. Queries in flight keep
// their snapshot; dispatches after Extend returns see the new rules.
func (p *Plan) Extend(rules []Rule) {
	if len(rules) == 0 {
		return
	}
	p.extendMu.Lock()
	old := p.ruleSet()
	rs := make([]*prule, 0, len(old)+len(rules))
	rs = append(rs, old...)
	for _, r := range rules {
		rs = append(rs, compileRule(r))
	}
	p.rules.Store(&rs)
	p.extendMu.Unlock()
}

// compileRule clamps and budgets one rule.
func compileRule(r Rule) *prule {
	if r.Kind == GrainSlow || r.Kind == WorkerSlow {
		if r.Factor < 2 {
			r.Factor = 2
		}
		if r.Factor > MaxFactor {
			r.Factor = MaxFactor
		}
	}
	left := int64(r.Count)
	if r.Count <= 0 {
		if r.Kind == WorkerSlow {
			left = unbounded
		} else {
			r.Count = 1
			left = 1
		}
	}
	pr := &prule{Rule: r}
	pr.left.Store(left)
	return pr
}

// consume takes one firing from rule r, recording the injection. It
// reports false when the budget is exhausted (concurrent callers race
// the decrement; losers see a negative residue and never fire).
func (p *Plan) consume(r *prule) bool {
	if r.left.Add(-1) < 0 {
		return false
	}
	p.fired[r.Kind].Add(1)
	p.injected.Add(1)
	return true
}

// Grain consults the grain-level rules for a task covering granules
// [lo, hi) of (job, phase), dispatched at time at. It returns the fired
// rule's kind (0 = no fault), its Delay, and its Factor.
func (p *Plan) Grain(job, phase int, lo, hi uint32, at int64) (Kind, int64, int64) {
	if p == nil {
		return 0, 0, 0
	}
	for _, r := range p.ruleSet() {
		switch r.Kind {
		case GrainPanic, GrainError, GrainStall, GrainSlow:
		default:
			continue
		}
		if r.Job >= 0 && r.Job != job {
			continue
		}
		if r.Phase >= 0 && r.Phase != phase {
			continue
		}
		if r.Granule < lo || r.Granule >= hi {
			continue
		}
		if at < r.After {
			continue
		}
		if !p.consume(r) {
			continue
		}
		return r.Kind, r.Delay, r.Factor
	}
	return 0, 0, 0
}

// Worker consults the worker-level rules of kind k for worker w at time
// at. It returns the fired rule's Delay and Factor.
func (p *Plan) Worker(w int, at int64, k Kind) (int64, int64, bool) {
	if p == nil {
		return 0, 0, false
	}
	for _, r := range p.ruleSet() {
		if r.Kind != k {
			continue
		}
		if r.Worker >= 0 && r.Worker != w {
			continue
		}
		if at < r.After {
			continue
		}
		if !p.consume(r) {
			continue
		}
		return r.Delay, r.Factor, true
	}
	return 0, 0, false
}

// Mgmt consults the MgmtDelay rules for job's completion submitted at
// time at. It returns the fired rule's Delay.
func (p *Plan) Mgmt(job int, at int64) (int64, bool) {
	if p == nil {
		return 0, false
	}
	for _, r := range p.ruleSet() {
		if r.Kind != MgmtDelay {
			continue
		}
		if r.Job >= 0 && r.Job != job {
			continue
		}
		if at < r.After {
			continue
		}
		if !p.consume(r) {
			continue
		}
		return r.Delay, true
	}
	return 0, false
}

// DropWakeup reports whether the next wakeup should vanish.
func (p *Plan) DropWakeup() bool {
	if p == nil {
		return false
	}
	for _, r := range p.ruleSet() {
		if r.Kind == DropWakeup && p.consume(r) {
			return true
		}
	}
	return false
}

// Release returns the channel real-backend wedges block on; it is closed
// by ReleaseAll. Nil-safe for select-free call sites only when the Plan
// is non-nil — wedges only exist under a Plan.
func (p *Plan) Release() <-chan struct{} { return p.release }

// ReleaseAll unblocks every wedged worker (idempotent). The tenant pool
// calls it at Close so teardown is hang-free even when a wedge was never
// resolved by a stall probe or deadline.
func (p *Plan) ReleaseAll() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.release) })
}

// Injected reports the total firings so far.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	return p.injected.Load()
}

// Fired reports the firings of one kind.
func (p *Plan) Fired(k Kind) int64 {
	if p == nil || k >= kindCount {
		return 0
	}
	return p.fired[k].Load()
}

// maxSleep caps real-backend injected delays so a campaign can never turn
// a test suite into a sleep marathon.
const maxSleep = 50 * time.Millisecond

// Sleep converts an injected virtual delay to a bounded real-backend
// sleep (1 unit = 1µs, capped at 50ms) and sleeps it.
func Sleep(units int64) {
	if units <= 0 {
		return
	}
	d := time.Duration(units) * time.Microsecond
	if d > maxSleep {
		d = maxSleep
	}
	time.Sleep(d)
}
