package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// splitmix64 is the scenario generator's PRNG step: tiny, seedable, and
// identical on every platform, so a seed names the same campaign
// everywhere (the same generator the workload package idiom uses).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// scenarioKinds is the pool Scenario draws from. WorkerCrash is handled
// separately (capacity loss is only survivable with workers to spare).
var scenarioKinds = []Kind{
	GrainPanic, GrainError, GrainStall, GrainSlow,
	WorkerWedge, WorkerSlow, MgmtDelay, DropWakeup,
}

// Scenario derives a deterministic Spec of n rules from seed, shaped to
// a run of `jobs` jobs × `phases` phases × `granules` granules per phase
// on `workers` workers. The same (seed, shape) yields the same campaign
// on every platform and backend. At most one WorkerCrash is dealt, and
// only when at least 3 workers leave capacity to absorb it.
func Scenario(seed uint64, n, jobs, phases, granules, workers int) Spec {
	if n <= 0 {
		n = 1
	}
	if jobs < 1 {
		jobs = 1
	}
	if phases < 1 {
		phases = 1
	}
	if granules < 1 {
		granules = 1
	}
	if workers < 1 {
		workers = 1
	}
	x := seed ^ 0xda942042e4dd58b5
	sp := Spec{Seed: seed}
	crashed := false
	for len(sp.Rules) < n {
		r := Rule{
			Job:     int(splitmix64(&x) % uint64(jobs)),
			Phase:   int(splitmix64(&x) % uint64(phases)),
			Granule: uint32(splitmix64(&x) % uint64(granules)),
			Worker:  int(splitmix64(&x) % uint64(workers)),
			Count:   1,
		}
		pick := splitmix64(&x)
		if !crashed && workers >= 3 && pick%11 == 0 {
			r.Kind = WorkerCrash
			crashed = true
		} else {
			r.Kind = scenarioKinds[pick%uint64(len(scenarioKinds))]
		}
		switch r.Kind {
		case GrainStall, WorkerWedge, MgmtDelay:
			r.Delay = int64(1024 + splitmix64(&x)%uint64(8192))
		case GrainSlow:
			r.Factor = int64(2 + splitmix64(&x)%6)
		case WorkerSlow:
			r.Factor = int64(2 + splitmix64(&x)%3)
			r.Count = 0 // unlimited: a slow worker stays slow
		case DropWakeup:
			r.Count = int(1 + splitmix64(&x)%2)
		}
		sp.Rules = append(sp.Rules, r)
	}
	return sp
}

// ParseFlag parses the CLI campaign syntax: "seed=N[,rules=K]". It
// returns the seed and rule count (default 2) for Scenario.
func ParseFlag(s string) (seed uint64, rules int, err error) {
	rules = 2
	seen := false
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, fmt.Errorf("fault: bad -faults term %q (want key=value)", part)
		}
		switch k {
		case "seed":
			seed, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			seen = true
		case "rules":
			rules, err = strconv.Atoi(v)
			if err != nil || rules < 1 {
				return 0, 0, fmt.Errorf("fault: bad rules count %q", v)
			}
		default:
			return 0, 0, fmt.Errorf("fault: unknown -faults key %q (want seed, rules)", k)
		}
	}
	if !seen {
		return 0, 0, fmt.Errorf("fault: -faults needs seed=N")
	}
	return seed, rules, nil
}
