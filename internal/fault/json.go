package fault

// JSON codec for Kind: a Spec on the service daemon's wire carries fault
// kinds by their stable string names ("grain-panic", "worker-wedge", …),
// not by the enum's numeric values, so reordering the constants can
// never silently change a stored campaign.

import (
	"encoding/json"
	"fmt"
)

// ParseKind resolves a kind's string name (the Kind.String form).
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n != "" && n == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q", s)
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) || kindNames[k] == "" {
		return nil, fmt.Errorf("fault: cannot marshal unknown kind %d", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind from its string name (or, leniently, the
// numeric enum value).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParseKind(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("fault: kind must be a name or enum value: %w", err)
	}
	if int(n) >= int(kindCount) || n == 0 {
		return fmt.Errorf("fault: unknown fault kind %d", n)
	}
	*k = Kind(n)
	return nil
}
