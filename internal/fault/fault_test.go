package fault

import (
	"reflect"
	"sync"
	"testing"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if k, _, _ := p.Grain(0, 0, 0, 10, 0); k != 0 {
		t.Fatalf("nil plan fired grain fault %v", k)
	}
	if _, _, ok := p.Worker(0, 0, WorkerCrash); ok {
		t.Fatal("nil plan fired worker fault")
	}
	if _, ok := p.Mgmt(0, 0); ok {
		t.Fatal("nil plan fired mgmt fault")
	}
	if p.DropWakeup() {
		t.Fatal("nil plan dropped a wakeup")
	}
	if p.Injected() != 0 || p.Fired(GrainPanic) != 0 {
		t.Fatal("nil plan reports injections")
	}
	p.ReleaseAll() // must not panic
}

func TestEmptySpecCompilesToNil(t *testing.T) {
	if New(Spec{Seed: 7}) != nil {
		t.Fatal("empty spec should compile to a nil (inert) plan")
	}
}

func TestGrainKeysOnGranuleNotTask(t *testing.T) {
	spec := Spec{Rules: []Rule{{Kind: GrainError, Job: 1, Phase: 2, Granule: 37}}}

	// A coarse task covering the granule fires; a fine one covering the
	// same granule in another compile fires identically.
	for _, r := range [][2]uint32{{0, 100}, {37, 38}} {
		p := New(spec)
		if k, _, _ := p.Grain(1, 2, r[0], r[1], 0); k != GrainError {
			t.Fatalf("task [%d,%d) covering granule 37 did not fire", r[0], r[1])
		}
	}
	p := New(spec)
	if k, _, _ := p.Grain(1, 2, 38, 100, 0); k != 0 {
		t.Fatal("task not covering granule 37 fired")
	}
	if k, _, _ := p.Grain(0, 2, 0, 100, 0); k != 0 {
		t.Fatal("wrong job fired")
	}
	if k, _, _ := p.Grain(1, 1, 0, 100, 0); k != 0 {
		t.Fatal("wrong phase fired")
	}
}

func TestCountBudget(t *testing.T) {
	p := New(Spec{Rules: []Rule{{Kind: MgmtDelay, Job: -1, Delay: 5, Count: 2}}})
	for i := 0; i < 2; i++ {
		if d, ok := p.Mgmt(0, 0); !ok || d != 5 {
			t.Fatalf("firing %d: got (%d,%v)", i, d, ok)
		}
	}
	if _, ok := p.Mgmt(0, 0); ok {
		t.Fatal("budget of 2 fired a third time")
	}
	if p.Injected() != 2 || p.Fired(MgmtDelay) != 2 {
		t.Fatalf("accounting: injected=%d fired=%d", p.Injected(), p.Fired(MgmtDelay))
	}
}

func TestWorkerAfterGate(t *testing.T) {
	p := New(Spec{Rules: []Rule{{Kind: WorkerCrash, Worker: 3, After: 100}}})
	if _, _, ok := p.Worker(3, 99, WorkerCrash); ok {
		t.Fatal("fired before After")
	}
	if _, _, ok := p.Worker(2, 200, WorkerCrash); ok {
		t.Fatal("fired for wrong worker")
	}
	if _, _, ok := p.Worker(3, 100, WorkerCrash); !ok {
		t.Fatal("did not fire at After")
	}
}

func TestGrainMgmtAfterGate(t *testing.T) {
	p := New(Spec{Rules: []Rule{
		{Kind: GrainError, Job: -1, Phase: -1, Granule: 3, After: 100},
		{Kind: MgmtDelay, Job: -1, Delay: 7, After: 100},
	}})
	if k, _, _ := p.Grain(0, 0, 0, 10, 99); k != 0 {
		t.Fatal("grain rule fired before After")
	}
	if _, ok := p.Mgmt(0, 99); ok {
		t.Fatal("mgmt rule fired before After")
	}
	if k, _, _ := p.Grain(0, 0, 0, 10, 100); k != GrainError {
		t.Fatal("grain rule did not fire at After")
	}
	if d, ok := p.Mgmt(0, 100); !ok || d != 7 {
		t.Fatal("mgmt rule did not fire at After")
	}
}

func TestWorkerSlowDefaultIsPersistent(t *testing.T) {
	p := New(Spec{Rules: []Rule{{Kind: WorkerSlow, Worker: 2, Factor: 3}}})
	for i := 0; i < 1000; i++ {
		if _, f, ok := p.Worker(2, 0, WorkerSlow); !ok || f != 3 {
			t.Fatalf("firing %d: got (%d,%v), want persistent ×3", i, f, ok)
		}
	}
	// An explicit Count still bounds the stretched tasks.
	p = New(Spec{Rules: []Rule{{Kind: WorkerSlow, Worker: 2, Factor: 3, Count: 2}}})
	for i := 0; i < 2; i++ {
		if _, _, ok := p.Worker(2, 0, WorkerSlow); !ok {
			t.Fatalf("bounded firing %d missed", i)
		}
	}
	if _, _, ok := p.Worker(2, 0, WorkerSlow); ok {
		t.Fatal("explicit Count of 2 fired a third time")
	}
}

func TestFactorClamped(t *testing.T) {
	p := New(Spec{Rules: []Rule{
		{Kind: WorkerSlow, Worker: -1, Factor: 1 << 40},
		{Kind: GrainSlow, Job: -1, Phase: -1, Granule: 0, Factor: 1 << 40},
	}})
	if _, f, ok := p.Worker(0, 0, WorkerSlow); !ok || f != MaxFactor {
		t.Fatalf("worker factor = %d, want clamp to %d", f, MaxFactor)
	}
	if _, _, f := p.Grain(0, 0, 0, 10, 0); f != MaxFactor {
		t.Fatalf("grain factor = %d, want clamp to %d", f, MaxFactor)
	}
}

func TestConcurrentBudgetNeverOverfires(t *testing.T) {
	p := New(Spec{Rules: []Rule{{Kind: DropWakeup, Count: 100}}})
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.DropWakeup() {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 100 {
		t.Fatalf("budget 100 fired %d times under contention", total)
	}
}

func TestScenarioDeterministicAndShaped(t *testing.T) {
	a := Scenario(42, 3, 2, 4, 256, 8)
	b := Scenario(42, 3, 2, 4, 256, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	c := Scenario(43, 3, 2, 4, 256, 8)
	if reflect.DeepEqual(a.Rules, c.Rules) {
		t.Fatal("different seeds produced identical scenarios")
	}
	for _, r := range a.Rules {
		if r.Job < 0 || r.Job >= 2 || r.Phase < 0 || r.Phase >= 4 ||
			r.Granule >= 256 || r.Worker < 0 || r.Worker >= 8 {
			t.Fatalf("rule out of shape: %+v", r)
		}
	}
	// Sweep many seeds: at most one crash per campaign, never with < 3
	// workers.
	for seed := uint64(0); seed < 200; seed++ {
		sp := Scenario(seed, 4, 2, 4, 256, 2)
		for _, r := range sp.Rules {
			if r.Kind == WorkerCrash {
				t.Fatalf("seed %d dealt a crash with 2 workers", seed)
			}
		}
		sp = Scenario(seed, 6, 2, 4, 256, 8)
		crashes := 0
		for _, r := range sp.Rules {
			if r.Kind == WorkerCrash {
				crashes++
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d dealt %d crashes", seed, crashes)
		}
	}
}

func TestParseFlag(t *testing.T) {
	seed, rules, err := ParseFlag("seed=7")
	if err != nil || seed != 7 || rules != 2 {
		t.Fatalf("seed=7: got (%d,%d,%v)", seed, rules, err)
	}
	seed, rules, err = ParseFlag("seed=9,rules=5")
	if err != nil || seed != 9 || rules != 5 {
		t.Fatalf("seed=9,rules=5: got (%d,%d,%v)", seed, rules, err)
	}
	for _, bad := range []string{"", "rules=3", "seed=x", "seed=1,bogus=2"} {
		if _, _, err := ParseFlag(bad); err == nil {
			t.Fatalf("ParseFlag(%q) accepted", bad)
		}
	}
}

func TestReleaseIdempotent(t *testing.T) {
	p := New(Spec{Rules: []Rule{{Kind: WorkerWedge, Worker: -1}}})
	select {
	case <-p.Release():
		t.Fatal("released before ReleaseAll")
	default:
	}
	p.ReleaseAll()
	p.ReleaseAll()
	select {
	case <-p.Release():
	default:
		t.Fatal("not released after ReleaseAll")
	}
}
