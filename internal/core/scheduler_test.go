package core

import (
	"math/rand"
	"testing"

	"repro/internal/enable"
	"repro/internal/granule"
)

// traceEvent records one driver-visible scheduler action.
type traceEvent struct {
	dispatch bool // true = dispatch, false = completion
	task     Task
}

// depChecker validates dependence order during a driver run.
type depChecker struct {
	t    *testing.T
	prog *Program
	// requires[i][r] = granules of phase i-1 that must complete before
	// granule r of phase i may be dispatched (nil slice = none).
	requires  []map[granule.ID][]granule.ID
	completed []map[granule.ID]bool
	phaseDone []bool
}

func newDepChecker(t *testing.T, prog *Program) *depChecker {
	c := &depChecker{t: t, prog: prog}
	c.requires = make([]map[granule.ID][]granule.ID, len(prog.Phases))
	c.completed = make([]map[granule.ID]bool, len(prog.Phases))
	c.phaseDone = make([]bool, len(prog.Phases))
	for i := range prog.Phases {
		c.completed[i] = make(map[granule.ID]bool)
		c.phaseDone[i] = prog.Phases[i].Granules == 0
	}
	for i := 1; i < len(prog.Phases); i++ {
		prev := prog.Phases[i-1]
		cur := prog.Phases[i]
		req := make(map[granule.ID][]granule.ID)
		spec := prev.Enable
		kind := enable.Null
		if spec != nil {
			kind = spec.Kind
		}
		switch kind {
		case enable.Null:
			all := granule.Span(prev.Granules).IDs()
			for r := 0; r < cur.Granules; r++ {
				req[granule.ID(r)] = all
			}
		case enable.Universal:
			// none
		case enable.Identity:
			for r := 0; r < cur.Granules && r < prev.Granules; r++ {
				req[granule.ID(r)] = []granule.ID{granule.ID(r)}
			}
		case enable.ForwardIndirect:
			for p := 0; p < prev.Granules; p++ {
				for _, r := range spec.Forward(granule.ID(p)) {
					req[r] = append(req[r], granule.ID(p))
				}
			}
		case enable.ReverseIndirect, enable.Seam:
			for r := 0; r < cur.Granules; r++ {
				req[granule.ID(r)] = append([]granule.ID(nil), spec.Requires(granule.ID(r))...)
			}
		}
		c.requires[i] = req
	}
	return c
}

func (c *depChecker) onDispatch(task Task) {
	pi := int(task.Phase)
	// Window invariant: all phases before pi-1 must be fully complete.
	for j := 0; j < pi-1; j++ {
		if !c.phaseDone[j] {
			c.t.Fatalf("dispatch %v while phase %d incomplete (window violation)", task, j)
		}
	}
	if c.requires[pi] == nil {
		return
	}
	task.Run.Each(func(r granule.ID) {
		for _, q := range c.requires[pi][r] {
			if !c.completed[pi-1][q] {
				c.t.Fatalf("dispatch of %d:%d before required %d:%d completed", pi, r, pi-1, q)
			}
		}
	})
}

func (c *depChecker) onComplete(task Task) {
	pi := int(task.Phase)
	task.Run.Each(func(g granule.ID) { c.completed[pi][g] = true })
	if len(c.completed[pi]) == c.prog.Phases[pi].Granules {
		c.phaseDone[pi] = true
	}
}

// runDriver executes the scheduler with `workers` logical slots. rng nil
// means FIFO completion order; otherwise random. It validates dependences
// and exactly-once dispatch throughout, returning the full trace.
func runDriver(t *testing.T, s *Scheduler, workers int, rng *rand.Rand) []traceEvent {
	t.Helper()
	chk := newDepChecker(t, s.Program())
	dispatched := make([]map[granule.ID]bool, len(s.Program().Phases))
	for i := range dispatched {
		dispatched[i] = make(map[granule.ID]bool)
	}
	var trace []traceEvent
	var inflight []Task
	s.Start()
	for !s.Done() {
		for len(inflight) < workers {
			task, _, ok := s.NextTask()
			if !ok {
				// Idle worker, idle executive: absorb deferred
				// management work (successor splitting, incremental
				// composite-map construction) and retry.
				if s.HasDeferred() {
					s.DeferredMgmt()
					continue
				}
				break
			}
			task.Run.Each(func(g granule.ID) {
				if dispatched[task.Phase][g] {
					t.Fatalf("granule %d:%d dispatched twice", task.Phase, g)
				}
				dispatched[task.Phase][g] = true
			})
			chk.onDispatch(task)
			trace = append(trace, traceEvent{dispatch: true, task: task})
			inflight = append(inflight, task)
		}
		if len(inflight) == 0 {
			if s.Done() {
				break
			}
			t.Fatalf("deadlock: nothing in flight, scheduler not done (phase %d)", s.CurrentPhase())
		}
		idx := 0
		if rng != nil {
			idx = rng.Intn(len(inflight))
		}
		task := inflight[idx]
		inflight = append(inflight[:idx], inflight[idx+1:]...)
		chk.onComplete(task)
		s.Complete(task)
		trace = append(trace, traceEvent{dispatch: false, task: task})
		if err := s.Check(); err != nil {
			t.Fatalf("invariant violated after %v: %v", task, err)
		}
	}
	// Everything dispatched and completed exactly once.
	for i, ph := range s.Program().Phases {
		if len(dispatched[i]) != ph.Granules {
			t.Fatalf("phase %d: dispatched %d of %d granules", i, len(dispatched[i]), ph.Granules)
		}
		if len(chk.completed[i]) != ph.Granules {
			t.Fatalf("phase %d: completed %d of %d granules", i, len(chk.completed[i]), ph.Granules)
		}
	}
	return trace
}

func mustProgram(t *testing.T, phases ...*Phase) *Program {
	t.Helper()
	p, err := NewProgram(phases...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func firstSuccessorDispatchBeforePredDone(trace []traceEvent, pred, succ granule.PhaseID) bool {
	predDone := 0
	for _, ev := range trace {
		if !ev.dispatch && ev.task.Phase == pred {
			predDone += ev.task.Run.Len()
		}
		if ev.dispatch && ev.task.Phase == succ {
			return true // saw successor dispatch; pred completions so far counted
		}
	}
	return false
}

// countSuccDispatchesBeforePredDone counts successor-phase granules
// dispatched strictly before the predecessor phase fully completed.
func countSuccDispatchesBeforePredDone(trace []traceEvent, prog *Program, pred, succ granule.PhaseID) int {
	predTotal := prog.Phases[pred].Granules
	predDone := 0
	n := 0
	for _, ev := range trace {
		if !ev.dispatch && ev.task.Phase == pred {
			predDone += ev.task.Run.Len()
		}
		if ev.dispatch && ev.task.Phase == succ && predDone < predTotal {
			n += ev.task.Run.Len()
		}
	}
	return n
}

func TestBarrierSequential(t *testing.T) {
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 20, Enable: enable.NewUniversal()},
		&Phase{Name: "b", Granules: 20, Enable: enable.NewIdentity()},
		&Phase{Name: "c", Granules: 20},
	)
	s, err := New(prog, Options{Workers: 4, Grain: 3, Overlap: false, Costs: DefaultCosts()})
	if err != nil {
		t.Fatal(err)
	}
	trace := runDriver(t, s, 4, nil)
	for _, pair := range [][2]granule.PhaseID{{0, 1}, {1, 2}} {
		if n := countSuccDispatchesBeforePredDone(trace, prog, pair[0], pair[1]); n != 0 {
			t.Errorf("barrier mode overlapped phases %d->%d (%d granules early)", pair[0], pair[1], n)
		}
	}
	if !s.Done() {
		t.Fatal("not done")
	}
}

func TestUniversalOverlap(t *testing.T) {
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 12, Enable: enable.NewUniversal()},
		&Phase{Name: "b", Granules: 12},
	)
	s, _ := New(prog, Options{Workers: 4, Grain: 2, Overlap: true, Costs: DefaultCosts()})
	trace := runDriver(t, s, 4, nil)
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("universal overlap produced no early successor dispatches")
	}
}

func TestUniversalBackgroundOrdering(t *testing.T) {
	// With one worker and FIFO completion, background successor work must
	// not displace current-phase work: phase b granules only appear after
	// all of phase a is queued out.
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 6, Enable: enable.NewUniversal()},
		&Phase{Name: "b", Granules: 6},
	)
	s, _ := New(prog, Options{Workers: 1, Grain: 1, Overlap: true, Costs: DefaultCosts()})
	trace := runDriver(t, s, 1, nil)
	seenB := false
	for _, ev := range trace {
		if !ev.dispatch {
			continue
		}
		if ev.task.Phase == 1 {
			seenB = true
		}
		if ev.task.Phase == 0 && seenB {
			t.Fatal("current-phase work dispatched after background successor work with a non-empty queue")
		}
	}
}

func identityProgram(t *testing.T, n int) *Program {
	return mustProgram(t,
		&Phase{Name: "a", Granules: n, Enable: enable.NewIdentity()},
		&Phase{Name: "b", Granules: n},
	)
}

func TestIdentityOverlapConflictQueue(t *testing.T) {
	prog := identityProgram(t, 16)
	s, _ := New(prog, Options{
		Workers: 4, Grain: 2, Overlap: true,
		IdentityVia: IdentityConflictQueue, Costs: DefaultCosts(),
	})
	trace := runDriver(t, s, 4, nil)
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("identity overlap (conflict queue) produced no early successor dispatches")
	}
}

func TestIdentityOverlapTable(t *testing.T) {
	prog := identityProgram(t, 16)
	s, _ := New(prog, Options{
		Workers: 4, Grain: 2, Overlap: true,
		IdentityVia: IdentityTable, Costs: DefaultCosts(),
	})
	trace := runDriver(t, s, 4, nil)
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("identity overlap (table) produced no early successor dispatches")
	}
}

// TestIdentityMechanismsAgree: the conflict-queue and table mechanisms must
// produce the same dispatch trace (they differ only in cost profile).
func TestIdentityMechanismsAgree(t *testing.T) {
	for _, workers := range []int{1, 3, 5} {
		prog1 := identityProgram(t, 24)
		prog2 := identityProgram(t, 24)
		opt := Options{Workers: workers, Grain: 4, Overlap: true, Costs: DefaultCosts()}
		opt.IdentityVia = IdentityConflictQueue
		s1, _ := New(prog1, opt)
		tr1 := runDriver(t, s1, workers, nil)
		opt.IdentityVia = IdentityTable
		s2, _ := New(prog2, opt)
		tr2 := runDriver(t, s2, workers, nil)
		if len(tr1) != len(tr2) {
			t.Fatalf("workers=%d: trace lengths differ: %d vs %d", workers, len(tr1), len(tr2))
		}
		for i := range tr1 {
			if tr1[i].dispatch != tr2[i].dispatch ||
				tr1[i].task.Phase != tr2[i].task.Phase ||
				tr1[i].task.Run != tr2[i].task.Run {
				t.Fatalf("workers=%d: traces diverge at %d: %+v vs %+v", workers, i, tr1[i], tr2[i])
			}
		}
	}
}

func TestForwardOverlap(t *testing.T) {
	n := 16
	imap := make([]granule.ID, n)
	for p := range imap {
		imap[p] = granule.ID(p / 2)
	}
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: n, Enable: enable.NewForwardIMAP(imap)},
		&Phase{Name: "b", Granules: n}, // granules n/2.. have no enabler: ready at start
	)
	s, _ := New(prog, Options{Workers: 4, Grain: 2, Overlap: true, Costs: DefaultCosts()})
	trace := runDriver(t, s, 4, nil)
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("forward overlap produced no early successor dispatches")
	}
}

func TestReverseOverlapWithElevation(t *testing.T) {
	n := 32
	spec := enable.NewReverse(func(r granule.ID) []granule.ID {
		// successor r requires the tail-end current granules — without
		// elevation these are dispatched last.
		return []granule.ID{granule.ID(n-1) - r}
	})
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: n, Enable: spec},
		&Phase{Name: "b", Granules: n},
	)
	s, _ := New(prog, Options{
		Workers: 2, Grain: 4, Overlap: true, Elevate: true, SubsetSize: 4,
		Costs: DefaultCosts(),
	})
	s.Start()
	// Composite-map construction is deferred to executive idle time; model
	// an idle executive by draining the deferred queue before dispatching.
	if !s.HasDeferred() {
		t.Fatal("indirect overlap did not defer composite-map construction")
	}
	for {
		if _, ok := s.DeferredMgmt(); !ok {
			break
		}
	}
	// The first dispatched task must now contain elevated granules: the
	// preds of subset {0,1,2,3} are {n-1, n-2, n-3, n-4}.
	first, _, ok := s.NextTask()
	if !ok {
		t.Fatal("no task after deferred build")
	}
	if first.Run.Lo < granule.ID(n-4) {
		t.Errorf("elevation did not promote enabling granules first: first task %v", first)
	}
	// Drain the rest with a two-slot driver loop, validating dependences.
	chk := newDepChecker(t, prog)
	chk.onDispatch(first)
	inflight := []Task{first}
	trace := []traceEvent{{dispatch: true, task: first}}
	for !s.Done() {
		for len(inflight) < 2 {
			task, _, ok := s.NextTask()
			if !ok {
				break
			}
			chk.onDispatch(task)
			trace = append(trace, traceEvent{dispatch: true, task: task})
			inflight = append(inflight, task)
		}
		if len(inflight) == 0 {
			t.Fatal("deadlock")
		}
		task := inflight[0]
		inflight = inflight[1:]
		chk.onComplete(task)
		s.Complete(task)
		trace = append(trace, traceEvent{dispatch: false, task: task})
	}
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("reverse overlap with elevation produced no early successor dispatches")
	}
}

func TestReverseOverlapWithoutElevation(t *testing.T) {
	n := 16
	spec := enable.NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{r, (r + 1) % granule.ID(n)}
	})
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: n, Enable: spec},
		&Phase{Name: "b", Granules: n},
	)
	s, _ := New(prog, Options{Workers: 2, Grain: 2, Overlap: true, Elevate: false, Costs: DefaultCosts()})
	runDriver(t, s, 2, nil)
}

func TestNullSerialAction(t *testing.T) {
	calls := 0
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 8},
		&Phase{Name: "b", Granules: 8, SerialBefore: func() { calls++ }, SerialCost: 5},
	)
	s, _ := New(prog, Options{Workers: 2, Grain: 2, Overlap: true, Costs: DefaultCosts()})
	trace := runDriver(t, s, 2, nil)
	if calls != 1 {
		t.Errorf("serial action ran %d times, want 1", calls)
	}
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n != 0 {
		t.Errorf("null mapping overlapped anyway (%d granules)", n)
	}
	if s.Stats().SerialCost != 5 {
		t.Errorf("SerialCost = %d, want 5", s.Stats().SerialCost)
	}
}

func TestZeroGranulePhases(t *testing.T) {
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 0, Enable: enable.NewUniversal()},
		&Phase{Name: "b", Granules: 4, Enable: enable.NewUniversal()},
		&Phase{Name: "c", Granules: 0},
	)
	s, _ := New(prog, Options{Workers: 2, Grain: 2, Overlap: true, Costs: DefaultCosts()})
	runDriver(t, s, 2, nil)
	if !s.Done() {
		t.Fatal("not done")
	}
}

func TestAllZeroGranules(t *testing.T) {
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 0},
		&Phase{Name: "b", Granules: 0},
	)
	s, _ := New(prog, Options{Workers: 1, Overlap: true, Costs: DefaultCosts()})
	s.Start()
	if !s.Done() {
		t.Fatal("program of empty phases should complete at Start")
	}
}

func TestDeferredSuccessorSplit(t *testing.T) {
	prog := identityProgram(t, 32)
	s, _ := New(prog, Options{
		Workers: 4, Grain: 4, Overlap: true,
		IdentityVia: IdentityConflictQueue, SuccSplit: SuccSplitDeferred,
		Costs: DefaultCosts(),
	})
	trace := runDriver(t, s, 4, nil)
	if s.Stats().DeferredItems == 0 {
		t.Error("deferred mode queued no successor-splitting tasks")
	}
	if n := countSuccDispatchesBeforePredDone(trace, prog, 0, 1); n == 0 {
		t.Error("deferred successor splitting produced no early successor dispatches")
	}
}

func TestPresplitPolicy(t *testing.T) {
	prog := mustProgram(t, &Phase{Name: "a", Granules: 20})
	s, _ := New(prog, Options{Workers: 2, Grain: 4, Split: SplitPre, Costs: DefaultCosts()})
	s.Start()
	if got := s.Stats().Splits; got != 4 { // 20/4 = 5 chunks = 4 splits
		t.Errorf("presplit splits = %d, want 4", got)
	}
	for {
		task, _, ok := s.NextTask()
		if !ok {
			break
		}
		if task.Run.Len() > 4 {
			t.Errorf("presplit task exceeds grain: %v", task)
		}
		s.Complete(task)
	}
	if !s.Done() {
		t.Fatal("not done")
	}
}

func TestReleasedAheadOption(t *testing.T) {
	// Default (released behind): with one worker and FIFO completion, all
	// of phase 0 is dispatched before any of phase 1 — released successor
	// work sits behind remaining normal work.
	prog := identityProgram(t, 8)
	s, _ := New(prog, Options{Workers: 1, Grain: 1, Overlap: true, Costs: DefaultCosts()})
	trace := runDriver(t, s, 1, nil)
	phase0Done := false
	doneCount := 0
	for _, ev := range trace {
		if !ev.dispatch && ev.task.Phase == 0 {
			doneCount += ev.task.Run.Len()
			phase0Done = doneCount == 8
		}
		if ev.dispatch && ev.task.Phase == 1 && !phase0Done {
			t.Fatal("default policy dispatched successor before current phase drained")
		}
	}

	// ReleasedAhead (PAX conflict-release priority): successor granules
	// preempt remaining current-phase work.
	prog2 := identityProgram(t, 8)
	s2, _ := New(prog2, Options{
		Workers: 1, Grain: 1, Overlap: true, ReleasedAhead: true,
		Costs: DefaultCosts(),
	})
	trace2 := runDriver(t, s2, 1, nil)
	if n := countSuccDispatchesBeforePredDone(trace2, prog2, 0, 1); n == 0 {
		t.Error("ReleasedAhead produced no early successor dispatches")
	}
	_ = firstSuccessorDispatchBeforePredDone
}

func TestProgramValidation(t *testing.T) {
	cases := []struct {
		name   string
		phases []*Phase
	}{
		{"empty", nil},
		{"nil phase", []*Phase{nil}},
		{"empty name", []*Phase{{Name: "", Granules: 1}}},
		{"dup name", []*Phase{{Name: "x", Granules: 1}, {Name: "x", Granules: 1}}},
		{"negative granules", []*Phase{{Name: "x", Granules: -1}}},
		{"negative serial", []*Phase{{Name: "x", Granules: 1, SerialCost: -1}}},
		{"final with mapping", []*Phase{{Name: "x", Granules: 1, Enable: enable.NewUniversal()}}},
		{"mapping into serial", []*Phase{
			{Name: "x", Granules: 1, Enable: enable.NewUniversal()},
			{Name: "y", Granules: 1, SerialBefore: func() {}},
		}},
		{"out of range map", []*Phase{
			{Name: "x", Granules: 2, Enable: enable.NewForwardIMAP([]granule.ID{5, 5})},
			{Name: "y", Granules: 2},
		}},
	}
	for _, c := range cases {
		if _, err := NewProgram(c.phases...); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	prog := mustProgram(t, &Phase{Name: "a", Granules: 100})
	s, _ := New(prog, Options{Workers: 5})
	opt := s.Options()
	if opt.Grain != 10 { // ceil(100 / (2*5))
		t.Errorf("default grain = %d, want 10", opt.Grain)
	}
	if opt.SubsetSize != 10 {
		t.Errorf("default subset = %d, want 10", opt.SubsetSize)
	}
	s2, _ := New(prog, Options{})
	if s2.Options().Workers != 1 {
		t.Errorf("default workers = %d, want 1", s2.Options().Workers)
	}
}

func TestStatsAccounting(t *testing.T) {
	prog := identityProgram(t, 32)
	s, _ := New(prog, Options{Workers: 4, Grain: 4, Overlap: true, Costs: DefaultCosts()})
	runDriver(t, s, 4, nil)
	st := s.Stats()
	if st.Dispatches == 0 || st.Completions == 0 {
		t.Fatal("no dispatches/completions recorded")
	}
	if st.MgmtCost() <= 0 {
		t.Fatal("management cost not accumulated")
	}
	sum := st.DispatchCost + st.SplitCost + st.CompleteCost + st.TableCost + st.ElevateCost + st.DeferredCost
	if st.MgmtCost() != sum {
		t.Errorf("MgmtCost %d != component sum %d", st.MgmtCost(), sum)
	}
	if st.TotalCost() != st.MgmtCost()+st.SerialCost {
		t.Error("TotalCost mismatch")
	}
}

func TestTaskCost(t *testing.T) {
	prog := mustProgram(t,
		&Phase{Name: "a", Granules: 10, Cost: func(g granule.ID) Cost { return Cost(g) }},
	)
	s, _ := New(prog, Options{Workers: 1, Grain: 10, Costs: FreeCosts()})
	s.Start()
	task, _, ok := s.NextTask()
	if !ok {
		t.Fatal("no task")
	}
	if got := s.TaskCost(task); got != 45 { // 0+1+...+9
		t.Errorf("TaskCost = %d, want 45", got)
	}
	s.Complete(task)

	prog2 := mustProgram(t, &Phase{Name: "a", Granules: 7})
	s2, _ := New(prog2, Options{Workers: 1, Grain: 7})
	s2.Start()
	task2, _, _ := s2.NextTask()
	if got := s2.TaskCost(task2); got != 7 {
		t.Errorf("unit TaskCost = %d, want 7", got)
	}
}

func TestNextTaskBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	prog := mustProgram(t, &Phase{Name: "a", Granules: 1})
	s, _ := New(prog, Options{Workers: 1})
	s.NextTask()
}

func TestCompleteUnknownTaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	prog := mustProgram(t, &Phase{Name: "a", Granules: 1})
	s, _ := New(prog, Options{Workers: 1})
	s.Start()
	s.Complete(Task{ID: 999})
}

// TestQuickRandomPrograms drives random programs with random mappings,
// worker counts and completion orders, validating dependences, exactly-once
// dispatch and scheduler invariants throughout.
func TestQuickRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(20230611))
	for iter := 0; iter < 120; iter++ {
		nPhases := 2 + rng.Intn(4)
		phases := make([]*Phase, nPhases)
		for i := range phases {
			phases[i] = &Phase{
				Name:     string(rune('a' + i)),
				Granules: rng.Intn(41),
			}
		}
		for i := 0; i < nPhases-1; i++ {
			nPred, nSucc := phases[i].Granules, phases[i+1].Granules
			switch rng.Intn(5) {
			case 0:
				phases[i].Enable = nil // null
			case 1:
				phases[i].Enable = enable.NewUniversal()
			case 2:
				phases[i].Enable = enable.NewIdentity()
			case 3:
				if nPred == 0 || nSucc == 0 {
					phases[i].Enable = enable.NewUniversal()
					continue
				}
				imap := make([]granule.ID, nPred)
				for p := range imap {
					imap[p] = granule.ID(rng.Intn(nSucc))
				}
				phases[i].Enable = enable.NewForwardIMAP(imap)
			case 4:
				if nPred == 0 {
					phases[i].Enable = enable.NewUniversal()
					continue
				}
				reqs := make([][]granule.ID, nSucc)
				for r := range reqs {
					k := rng.Intn(3)
					for j := 0; j < k; j++ {
						reqs[r] = append(reqs[r], granule.ID(rng.Intn(nPred)))
					}
				}
				phases[i].Enable = enable.NewReverse(func(r granule.ID) []granule.ID {
					if int(r) >= len(reqs) {
						return nil
					}
					return reqs[r]
				})
			}
		}
		prog, err := NewProgram(phases...)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		workers := 1 + rng.Intn(8)
		opt := Options{
			Workers:       workers,
			Grain:         1 + rng.Intn(7),
			Overlap:       rng.Intn(4) != 0,
			Split:         SplitPolicy(rng.Intn(2)),
			SuccSplit:     SuccSplitMode(rng.Intn(2)),
			IdentityVia:   IdentityMode(rng.Intn(2)),
			ReleasedAhead: rng.Intn(2) == 0,
			Elevate:       rng.Intn(2) == 0,
			InlineMaps:    rng.Intn(2) == 0,
			SubsetSize:    1 + rng.Intn(10),
			Costs:         DefaultCosts(),
		}
		s, err := New(prog, opt)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		runDriver(t, s, workers, rng)
	}
}

func BenchmarkSchedulerIdentityOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, _ := NewProgram(
			&Phase{Name: "a", Granules: 4096, Enable: enable.NewIdentity()},
			&Phase{Name: "b", Granules: 4096},
		)
		s, _ := New(prog, Options{Workers: 16, Grain: 64, Overlap: true, Costs: DefaultCosts()})
		s.Start()
		var inflight []Task
		for !s.Done() {
			for len(inflight) < 16 {
				task, _, ok := s.NextTask()
				if !ok {
					break
				}
				inflight = append(inflight, task)
			}
			if len(inflight) == 0 {
				break
			}
			task := inflight[0]
			inflight = inflight[1:]
			s.Complete(task)
		}
	}
}
