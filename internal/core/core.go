package core
