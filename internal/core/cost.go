// Package core implements the primary contribution of Jones (1986): a
// phase-overlap scheduler that releases enabled successor-phase granules
// during the rundown of the current phase.
//
// The scheduler is a pure state machine: it has no notion of time and no
// concurrency of its own. A driver owns it and calls
//
//	Start  -> NextTask* -> Complete* -> ... -> Done
//
// Every management action returns its cost in abstract management units.
// The discrete-event simulator (internal/sim) charges those units to a
// serial management server in virtual time — modelling the PAX executive on
// the UNIVAC 1100, where "executive computation was done at the direct
// expense of worker computation" — while the goroutine executive
// (internal/executive) simply performs them under the serial manager lock
// and measures wall-clock time.
package core

// Cost is an abstract amount of management (executive) computation, in the
// same virtual units as granule execution costs. One unit is roughly "one
// trivial granule" of work.
type Cost int64

// MgmtCosts prices the executive operations of the PAX-style scheduler.
// All values are in abstract units; DefaultCosts provides a calibration in
// which a typical mid-1980s managerial executive lands near the paper's
// observed computation-to-management ratio of ~200 for CASPER-like grains.
type MgmtCosts struct {
	// Dispatch is charged per NextTask call that hands out a task
	// (queue pop, worker assignment bookkeeping).
	Dispatch Cost
	// Split is charged per description split operation.
	Split Cost
	// Merge is charged per task completion for merging the completed
	// description back into the phase's completed-set bookkeeping.
	Merge Cost
	// Complete is the fixed part of completion processing for one task.
	Complete Cost
	// PerEnable is charged per enablement-counter touch during
	// completion processing.
	PerEnable Cost
	// MapEntry is charged per composite-granule-map entry generated when
	// an indirect mapping's table is built.
	MapEntry Cost
	// MapChunk bounds how much map-construction work the executive does
	// per idle step, so a large composite-map build never monopolizes the
	// serial executive (the paper's incremental work-ahead). <= 0 builds
	// in one step.
	MapChunk Cost
	// Elevate is charged per description manipulated while elevating the
	// priority of enabling current-phase granules.
	Elevate Cost
	// Acquire is charged per batched-executive visit: one refill
	// (NextTasks) or one completion-batch flush (CompleteBatch) pays it
	// once, however many tasks the visit moves. It prices what the
	// state-machine methods cannot see — the serialization cost of
	// entering the executive at all (lock acquisition, queue handoff) —
	// and is what deque/batch sizing amortizes. Only the batched
	// management models charge it (sim's Adaptive model); the per-task
	// models reproduce the paper's executive, where every interaction
	// already pays the full serial path.
	Acquire Cost
}

// DefaultCosts returns the reference calibration used by the experiments.
func DefaultCosts() MgmtCosts {
	return MgmtCosts{
		Dispatch:  1,
		Split:     1,
		Merge:     1,
		Complete:  2,
		PerEnable: 1,
		MapEntry:  1,
		MapChunk:  64,
		Elevate:   1,
		Acquire:   8,
	}
}

// FreeCosts returns a zero-cost management model, useful for tests that
// check scheduling order independent of overhead.
func FreeCosts() MgmtCosts { return MgmtCosts{} }
