package core

import "fmt"

// SplitPolicy selects when computation descriptions are split into
// worker-sized tasks.
type SplitPolicy uint8

const (
	// SplitDemand splits a description when an idle worker presents
	// itself — PAX's choice: "computation splitting was demand-driven by
	// the presence of an idle worker."
	SplitDemand SplitPolicy = iota
	// SplitPre splits every description into grain-sized tasks at phase
	// activation: "presplit the tasks before idle workers present
	// themselves ... allow the executive to work ahead in otherwise idle
	// time." The split cost is paid up front on the management resource.
	SplitPre
)

func (p SplitPolicy) String() string {
	switch p {
	case SplitDemand:
		return "demand"
	case SplitPre:
		return "presplit"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", uint8(p))
	}
}

// SuccSplitMode selects how queued successor descriptions (identity-mapped
// overlap implemented via conflict queues) are split when their enabling
// current-phase description is split.
type SuccSplitMode uint8

const (
	// SuccSplitInline splits the queued successor description at the same
	// moment the current description is split, on the dispatch path. The
	// paper worries the "additional delays of splitting queued successor
	// computation descriptions may represent an unacceptable situation."
	SuccSplitInline SuccSplitMode = iota
	// SuccSplitDeferred detaches the successor description and enqueues a
	// successor-splitting management task "that could be quickly queued
	// for later attention when the executive would again be idle."
	SuccSplitDeferred
)

func (m SuccSplitMode) String() string {
	switch m {
	case SuccSplitInline:
		return "inline"
	case SuccSplitDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("SuccSplitMode(%d)", uint8(m))
	}
}

// IdentityMode selects the mechanism implementing identity-mapped overlap.
type IdentityMode uint8

const (
	// IdentityConflictQueue queues successor descriptions on the conflict
	// ring of the matching current-phase descriptions, PAX's native
	// mechanism: "the successor phase is also initiated and the resulting
	// computation description placed in the conflicted computation queue
	// of the current phase description."
	IdentityConflictQueue IdentityMode = iota
	// IdentityTable releases identity-mapped granules through the same
	// enablement-counter table used by indirect mappings. Scheduling
	// results are identical; the management cost profile differs.
	IdentityTable
)

func (m IdentityMode) String() string {
	switch m {
	case IdentityConflictQueue:
		return "conflict-queue"
	case IdentityTable:
		return "table"
	default:
		return fmt.Sprintf("IdentityMode(%d)", uint8(m))
	}
}

// Options configures the scheduler.
type Options struct {
	// Workers is the number of processors the driver will run. The
	// scheduler uses it only for defaults (grain, subset size).
	Workers int
	// Grain is the maximum number of granules per task. <=0 selects a
	// default of ceil(maxPhaseGranules / (2*Workers)), honouring the
	// paper's "at least two tasks for each processor" outset condition.
	Grain int
	// Overlap enables phase overlap. False reproduces the strict
	// barrier-per-phase baseline.
	Overlap bool
	// Split selects the description-splitting policy.
	Split SplitPolicy
	// SuccSplit selects inline vs deferred successor-description splitting
	// (conflict-queue identity mode only).
	SuccSplit SuccSplitMode
	// IdentityVia selects the identity-mapping mechanism.
	IdentityVia IdentityMode
	// ReleasedAhead, when true, queues released successor work ahead of
	// normal current-phase work, the priority PAX gave conflict-released
	// computations ("placed ahead of the normal computations in the
	// queue"). The default (false) queues released successor work behind
	// current-phase work, matching the paper's placement of overlapped
	// successors "behind the current phase description"; the ahead
	// variant delays the enabling current-phase tail and is kept as an
	// ablation (see experiment E6).
	ReleasedAhead bool
	// Elevate raises the queue priority of current-phase granules that
	// enable the planned successor subset of an indirect mapping.
	Elevate bool
	// InlineMaps builds indirect composite granule maps inline at phase
	// initiation instead of deferring construction to executive idle
	// time. This is the naive strategy the paper warns about ("extensive
	// composite granule map generation could be self defeating"): the
	// build blocks the serial executive while every processor waits.
	// Kept as an ablation; the default defers and cancels.
	InlineMaps bool
	// SubsetSize is the size of the successor-phase subset targeted by
	// indirect-mapping enablement planning. <=0 selects a default of
	// 2*Workers granules ("avoid solving an unnecessarily large
	// enablement problem").
	SubsetSize int
	// AdaptiveBatch enables online retuning of the batched executive's
	// parameters (the sharded manager's DequeCap and Batch; the simulator's
	// Adaptive-model refill batch) from the observed
	// computation-to-management ratio each refill epoch, instead of the
	// fixed defaults. The scheduler state machine itself ignores it; the
	// drivers (internal/executive, internal/sim) consume it.
	AdaptiveBatch bool
	// MgmtTarget is the amortizable lock-overhead share of machine
	// capacity the adaptive controller steers toward (the paper's E5
	// ratio turned into a feedback setpoint). <= 0 selects 0.02.
	// Ignored unless AdaptiveBatch.
	MgmtTarget float64
	// Costs prices the management operations.
	Costs MgmtCosts
}

// withDefaults fills derived defaults given the program.
func (o Options) withDefaults(p *Program) Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Grain <= 0 {
		maxG := 1
		for _, ph := range p.Phases {
			if ph.Granules > maxG {
				maxG = ph.Granules
			}
		}
		o.Grain = (maxG + 2*o.Workers - 1) / (2 * o.Workers)
		if o.Grain < 1 {
			o.Grain = 1
		}
	}
	if o.SubsetSize <= 0 {
		o.SubsetSize = 2 * o.Workers
	}
	return o
}
