package core

import (
	"fmt"

	"repro/internal/granule"
	"repro/internal/queue"
)

// This file is the dispatch half of the state machine: draining the
// waiting computation queue into worker-sized tasks, splitting
// descriptions on demand, and handling attached successor descriptions.

// NextTask pops the highest-priority description, splitting it to the
// grain if needed, and returns the dispatched task with the management cost
// of the dispatch. ok is false when no work is ready (the processor idles —
// this is computational rundown unless the program is done).
func (s *Scheduler) NextTask() (t Task, cost Cost, ok bool) {
	if !s.started {
		panic("core: NextTask before Start")
	}
	n, class, ok := s.wait.Pop()
	if !ok {
		// Liveness fallback: with nothing queued AND nothing in flight,
		// no completion can ever release work, so the executive must
		// drain its deferred queue now or deadlock. When tasks are still
		// in flight the driver simply idles this worker — completions
		// (and the driver's own idle-executive DeferredMgmt calls) will
		// make progress, and an unfinished composite-map build can still
		// be cancelled by the predecessor completing.
		for s.wait.Empty() && s.inflight.len() == 0 {
			dc, any := s.DeferredMgmt()
			if !any {
				return Task{}, cost, false
			}
			cost += dc
		}
		n, class, ok = s.wait.Pop()
		if !ok {
			return Task{}, cost, false
		}
	}
	d := n.Value
	pr := s.phases[d.phase]
	pr.nQueued -= d.run.Len()
	s.readyTasks -= s.taskCount(d.run.Len())

	cost += s.opt.Costs.Dispatch
	s.stats.DispatchCost += s.opt.Costs.Dispatch

	if d.run.Len() > s.opt.Grain {
		cost += s.splitForDispatch(d, class, pr)
	}

	// Double-dispatch guard: a granule must never be handed out twice.
	if pr.dispatched.IntersectsRange(d.run) {
		panic(fmt.Sprintf("core: double dispatch of %v in phase %d", d.run, d.phase))
	}
	pr.dispatched.AddRange(d.run)

	s.nextID++
	s.stats.Dispatches++
	t = Task{ID: s.nextID, Phase: d.phase, Run: d.run}
	s.inflight.put(t.ID, d)
	return t, cost, true
}

// NextTasks pops up to max ready tasks in one call, appending them to dst
// and returning it with the summed management cost. It dispatches the same
// tasks, in the same order and with the same cost charges, as max
// sequential NextTask calls, but carves large attachment-free descriptions
// in place: the description is popped once and grain-sized tasks are taken
// off its front directly, skipping the per-task pop/split/requeue cycle
// the one-at-a-time path pays. A batching driver pulls a whole deque
// refill under one lock acquisition this way. Fewer than max tasks
// (possibly zero) are returned when the queue drains.
func (s *Scheduler) NextTasks(dst []Task, max int) ([]Task, Cost) {
	if !s.started {
		panic("core: NextTask before Start")
	}
	var cost Cost
	for n := 0; n < max; {
		node, class, ok := s.wait.Peek()
		if !ok || !node.Value.succ.Empty() || node.Value.run.Len() <= s.opt.Grain {
			// Empty queue (let NextTask run its liveness fallback),
			// attached successor descriptions to mirror-split, or a
			// description that already fits the grain: sequential path.
			t, c, taken := s.NextTask()
			cost += c
			if !taken {
				break
			}
			dst = append(dst, t)
			n++
			continue
		}

		// Fused carve. No completion can interleave (the driver holds the
		// state machine for the whole call) and carving releases nothing,
		// so no higher-priority description can appear mid-carve: the
		// sequential path would dispatch exactly these tasks in this
		// order.
		d := node.Value
		s.wait.Remove(node, class)
		pr := s.phases[d.phase]
		pr.nQueued -= d.run.Len()
		s.readyTasks -= s.taskCount(d.run.Len())
		span, rest := d.run.TakeFront((max - n) * s.opt.Grain)

		// Double-dispatch guard, once for the whole carved span.
		if pr.dispatched.IntersectsRange(span) {
			panic(fmt.Sprintf("core: double dispatch of %v in phase %d", span, d.phase))
		}
		pr.dispatched.AddRange(span)

		// Charges mirror the sequential path: one dispatch per task, one
		// split per carve that left a remainder behind.
		carved := s.taskCount(span.Len())
		splits := carved
		if rest.Empty() {
			splits--
		}
		dc := Cost(carved) * s.opt.Costs.Dispatch
		sc := Cost(splits) * s.opt.Costs.Split
		s.stats.DispatchCost += dc
		s.stats.Splits += int64(splits)
		s.stats.SplitCost += sc
		cost += dc + sc

		for !span.Empty() {
			var front granule.Range
			front, span = span.TakeFront(s.opt.Grain)
			s.nextID++
			s.stats.Dispatches++
			t := Task{ID: s.nextID, Phase: d.phase, Run: front}
			s.inflight.put(t.ID, s.getDesc(d.phase, front))
			dst = append(dst, t)
			n++
		}
		if rest.Empty() {
			s.putDesc(d)
		} else {
			d.run = rest
			s.pushDescFront(d, class)
		}
	}
	return dst, cost
}

// splitForDispatch splits description d so its front fits the grain,
// requeueing the remainder at the front of its class, and handles the
// attached successor range per the successor-split mode.
func (s *Scheduler) splitForDispatch(d *desc, class queue.Class, pr *phaseRun) Cost {
	var cost Cost
	succ := d.succ
	d.succ = granule.Range{}

	front, rest := d.run.TakeFront(s.opt.Grain)
	d.run = front
	rd := s.getDesc(d.phase, rest)
	s.pushDescFront(rd, class)
	s.stats.Splits++
	sc := s.opt.Costs.Split
	s.stats.SplitCost += sc
	cost += sc

	if !succ.Empty() {
		switch s.opt.SuccSplit {
		case SuccSplitInline:
			sf := succ.Intersect(front)
			sr := succ.Intersect(rest)
			switch {
			case sf.Empty():
				rd.succ = succ
			case sr.Empty():
				d.succ = succ
			default:
				// Split the queued successor range to mirror the split
				// of its enabler, paying the split cost on the
				// dispatch path.
				d.succ = sf
				rd.succ = sr
				s.stats.Splits++
				s.stats.SplitCost += s.opt.Costs.Split
				cost += s.opt.Costs.Split
			}
		case SuccSplitDeferred:
			// Detach entirely; a successor-splitting management task
			// will sort it out when the executive is idle. The range
			// stays conflict-queue-managed (table emissions stay
			// suppressed) until the task runs, so there is exactly one
			// release authority at any moment.
			s.deferred = append(s.deferred, deferredItem{
				kind:      deferSplitSucc,
				predPhase: int(pr.idx),
				succPhase: int(d.phase) + 1,
				run:       succ,
			})
			s.stats.DeferredItems++
		}
	}
	return cost
}
