package core

import (
	"fmt"

	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/queue"
)

// The scheduler is organized as a pure state machine split across files by
// concern; no file knows about time, goroutines or locks:
//
//	scheduler.go — structure, construction, observers, invariant checks
//	window.go    — the phase window: activation, overlap preparation,
//	               enablement-table publication, priority elevation
//	dispatch.go  — the waiting computation queue drain: NextTask/NextTasks
//	               and demand splitting
//	complete.go  — completion processing: Complete/CompleteBatch, counter
//	               decrements, conflict-queue releases
//	deferred.go  — deferred management work for idle executive moments
//
// Drivers (internal/sim's virtual-time machine and internal/executive's
// Manager implementations) own all concurrency and serialization policy.

// phaseRun is the runtime state of one program phase.
type phaseRun struct {
	spec  *Phase
	idx   granule.PhaseID
	total int
	state PhaseState

	completed  *granule.Set // granules whose tasks have completed
	dispatched *granule.Set // granules handed out (superset of completed)
	nComplete  int
	nQueued    int // granules currently in the waiting queue

	// Overlap state for the pair (this phase -> next program phase).
	tab           *enable.Table // nil until overlap is prepared
	pendingTab    *enable.Table // built but unpublished (incremental map build)
	buildLeft     Cost          // map-construction work still to charge
	cqManaged     *granule.Set  // successor granules handled by conflict-queue attachments
	subsetManaged *granule.Set  // successor granules released as a unit by subsetCounter
	subsetCounter enable.Counter
	subsetPreds   *granule.Set // current-phase granules counted by subsetCounter
	nextActivated bool         // successor has been initiated (may dispatch)
}

// Scheduler is the PAX-style phase-overlap scheduler. It is not safe for
// concurrent use: the driver must serialize calls. A serial driver models
// the serial PAX executive; a sharded driver batches its calls under one
// lock (see internal/executive).
type Scheduler struct {
	prog *Program
	opt  Options

	wait       *queue.Wait[*desc]
	phases     []*phaseRun
	current    int // index of the oldest incomplete phase; len(phases) when done
	readyTasks int // queued descriptions counted at grain granularity
	inflight   inflightTable
	deferred   []deferredItem
	nextID     int
	started    bool
	stats      Stats

	// freeDescs recycles retired computation descriptions (and their
	// embedded queue nodes): at fine grain the dispatch path would
	// otherwise allocate one description per task, and the allocator
	// dominates management time. descSlab batch-allocates fresh
	// descriptions 256 at a time, so cold-start growth costs one
	// allocation per 256 descriptions rather than one each. In steady
	// state the identity-overlap cycle is allocation-free: each
	// completion retires its enabler description right after
	// materializing the released successor, so the free list feeds
	// itself.
	freeDescs []*desc
	descSlab  []desc
}

// getDesc returns a recycled description, or a fresh one when the free
// list is empty.
func (s *Scheduler) getDesc(phase granule.PhaseID, run granule.Range) *desc {
	if n := len(s.freeDescs); n > 0 {
		d := s.freeDescs[n-1]
		s.freeDescs = s.freeDescs[:n-1]
		d.phase, d.run, d.class = phase, run, 0
		d.succ = granule.Range{}
		return d
	}
	if len(s.descSlab) == 0 {
		s.descSlab = make([]desc, 256)
	}
	d := &s.descSlab[0]
	s.descSlab = s.descSlab[1:]
	d.phase, d.run = phase, run
	d.node.Value = d
	return d
}

// putDesc retires a description to the free list. Descriptions still
// linked into the waiting queue, or with a pending successor, are never
// recycled (defensive: recycling an aliased description would corrupt
// the scheduler).
func (s *Scheduler) putDesc(d *desc) {
	if d == nil || d.node.Attached() || !d.succ.Empty() {
		return
	}
	s.freeDescs = append(s.freeDescs, d)
}

// New constructs a scheduler for prog with the given options.
func New(prog *Program, opt Options) (*Scheduler, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(prog)
	s := &Scheduler{
		prog: prog,
		opt:  opt,
		wait: queue.NewWait[*desc](),
	}
	for i, ph := range prog.Phases {
		s.phases = append(s.phases, &phaseRun{
			spec:       ph,
			idx:        granule.PhaseID(i),
			total:      ph.Granules,
			completed:  granule.NewSet(),
			dispatched: granule.NewSet(),
		})
	}
	return s, nil
}

// Options returns the effective options after defaulting.
func (s *Scheduler) Options() Options { return s.opt }

// Program returns the scheduled program.
func (s *Scheduler) Program() *Program { return s.prog }

// Stats returns a copy of the management statistics so far.
func (s *Scheduler) Stats() Stats { return s.stats }

// SerialCost reports the serial-action cost accumulated so far — the
// Stats().SerialCost field without copying the whole Stats struct, for
// drivers that probe it around every completion (the multi-program
// simulator's openAt gate).
func (s *Scheduler) SerialCost() Cost { return s.stats.SerialCost }

// Dispatches reports the number of tasks dispatched so far, without
// copying the whole Stats struct.
func (s *Scheduler) Dispatches() int64 { return s.stats.Dispatches }

// Done reports whether every phase has completed.
func (s *Scheduler) Done() bool { return s.started && s.current >= len(s.phases) }

// CurrentPhase returns the index of the oldest incomplete phase, or the
// phase count when the program is done.
func (s *Scheduler) CurrentPhase() int { return s.current }

// PhaseState reports the lifecycle state of phase i.
func (s *Scheduler) PhaseState(i int) PhaseState { return s.phases[i].state }

// Ready reports the number of granules currently in the waiting queue.
func (s *Scheduler) Ready() int {
	n := 0
	for _, pr := range s.phases {
		n += pr.nQueued
	}
	return n
}

// InFlight reports the number of dispatched-but-incomplete tasks. With a
// sharded driver this includes tasks parked in worker-local deques and
// completions not yet submitted, not only tasks actually executing.
func (s *Scheduler) InFlight() int { return s.inflight.len() }

// QueueDescs reports the number of descriptions in the waiting queue — a
// lower bound on the number of NextTask calls that will succeed right now.
func (s *Scheduler) QueueDescs() int { return s.wait.Len() }

// ReadyTasks reports how many NextTask calls would succeed right now:
// queued descriptions counted at grain granularity (a large description
// splits into many tasks). Drivers use it to bound worker wake-ups.
func (s *Scheduler) ReadyTasks() int { return s.readyTasks }

// taskCount is the number of grain-sized tasks a run splits into.
func (s *Scheduler) taskCount(n int) int {
	return (n + s.opt.Grain - 1) / s.opt.Grain
}

// TaskCost returns the virtual execution cost of a task: the sum of its
// granules' costs.
func (s *Scheduler) TaskCost(t Task) Cost {
	ph := s.prog.Phases[t.Phase]
	if ph.Cost == nil {
		return Cost(t.Run.Len())
	}
	var sum Cost
	t.Run.Each(func(g granule.ID) { sum += ph.Cost(g) })
	return sum
}

// Check verifies cross-structure invariants; tests call it between driver
// steps. It is O(phases + queue length).
func (s *Scheduler) Check() error {
	queued := make(map[granule.PhaseID]int)
	tasks := 0
	s.wait.Each(func(n *queue.Node[*desc], _ queue.Class) {
		queued[n.Value.phase] += n.Value.run.Len()
		tasks += s.taskCount(n.Value.run.Len())
	})
	if tasks != s.readyTasks {
		return fmt.Errorf("readyTasks=%d but queue holds %d task-equivalents", s.readyTasks, tasks)
	}
	for _, pr := range s.phases {
		if q := queued[pr.idx]; q != pr.nQueued {
			return fmt.Errorf("phase %d: nQueued=%d but queue holds %d", pr.idx, pr.nQueued, q)
		}
		if pr.nComplete > pr.total {
			return fmt.Errorf("phase %d: completed %d of %d", pr.idx, pr.nComplete, pr.total)
		}
		if pr.state == PhaseComplete && pr.nComplete != pr.total {
			return fmt.Errorf("phase %d: complete with %d/%d", pr.idx, pr.nComplete, pr.total)
		}
		if pr.completed.Len() != pr.nComplete {
			return fmt.Errorf("phase %d: completed set %d != count %d", pr.idx, pr.completed.Len(), pr.nComplete)
		}
	}
	return nil
}
