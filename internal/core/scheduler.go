package core

import (
	"fmt"

	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/queue"
)

// phaseRun is the runtime state of one program phase.
type phaseRun struct {
	spec  *Phase
	idx   granule.PhaseID
	total int
	state PhaseState

	completed  *granule.Set // granules whose tasks have completed
	dispatched *granule.Set // granules handed out (superset of completed)
	nComplete  int
	nQueued    int // granules currently in the waiting queue

	// Overlap state for the pair (this phase -> next program phase).
	tab           *enable.Table // nil until overlap is prepared
	pendingTab    *enable.Table // built but unpublished (incremental map build)
	buildLeft     Cost          // map-construction work still to charge
	cqManaged     *granule.Set  // successor granules handled by conflict-queue attachments
	subsetManaged *granule.Set  // successor granules released as a unit by subsetCounter
	subsetCounter enable.Counter
	subsetPreds   *granule.Set // current-phase granules counted by subsetCounter
	nextActivated bool         // successor has been initiated (may dispatch)
}

// Scheduler is the PAX-style phase-overlap scheduler. It is not safe for
// concurrent use: the driver must serialize calls, which models the serial
// PAX executive.
type Scheduler struct {
	prog *Program
	opt  Options

	wait       *queue.Wait[*desc]
	phases     []*phaseRun
	current    int // index of the oldest incomplete phase; len(phases) when done
	readyTasks int // queued descriptions counted at grain granularity
	inflight   map[int]*desc
	deferred   []deferredItem
	nextID     int
	started    bool
	stats      Stats
}

// deferredKind distinguishes deferred management work.
type deferredKind uint8

const (
	// deferSplitSucc is a successor-splitting task: a successor
	// description detached from a conflict queue, awaiting splitting and
	// requeueing "for later attention when the executive would again be
	// idle".
	deferSplitSucc deferredKind = iota
	// deferBuildTable is composite-granule-map construction for an
	// indirect mapping, deferred so the executive can "get the current
	// phase into execution without the delay of constructing the
	// necessary information for enabling successor computations".
	deferBuildTable
)

// deferredItem is one unit of deferred management work.
type deferredItem struct {
	kind      deferredKind
	predPhase int
	succPhase int
	run       granule.Range // deferSplitSucc only
}

// New constructs a scheduler for prog with the given options.
func New(prog *Program, opt Options) (*Scheduler, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(prog)
	s := &Scheduler{
		prog:     prog,
		opt:      opt,
		wait:     queue.NewWait[*desc](),
		inflight: make(map[int]*desc),
	}
	for i, ph := range prog.Phases {
		s.phases = append(s.phases, &phaseRun{
			spec:       ph,
			idx:        granule.PhaseID(i),
			total:      ph.Granules,
			completed:  granule.NewSet(),
			dispatched: granule.NewSet(),
		})
	}
	return s, nil
}

// Options returns the effective options after defaulting.
func (s *Scheduler) Options() Options { return s.opt }

// Program returns the scheduled program.
func (s *Scheduler) Program() *Program { return s.prog }

// Stats returns a copy of the management statistics so far.
func (s *Scheduler) Stats() Stats { return s.stats }

// Done reports whether every phase has completed.
func (s *Scheduler) Done() bool { return s.started && s.current >= len(s.phases) }

// CurrentPhase returns the index of the oldest incomplete phase, or the
// phase count when the program is done.
func (s *Scheduler) CurrentPhase() int { return s.current }

// PhaseState reports the lifecycle state of phase i.
func (s *Scheduler) PhaseState(i int) PhaseState { return s.phases[i].state }

// Ready reports the number of granules currently in the waiting queue.
func (s *Scheduler) Ready() int {
	n := 0
	for _, pr := range s.phases {
		n += pr.nQueued
	}
	return n
}

// InFlight reports the number of dispatched-but-incomplete tasks.
func (s *Scheduler) InFlight() int { return len(s.inflight) }

// QueueDescs reports the number of descriptions in the waiting queue — a
// lower bound on the number of NextTask calls that will succeed right now.
func (s *Scheduler) QueueDescs() int { return s.wait.Len() }

// ReadyTasks reports how many NextTask calls would succeed right now:
// queued descriptions counted at grain granularity (a large description
// splits into many tasks). Drivers use it to bound worker wake-ups.
func (s *Scheduler) ReadyTasks() int { return s.readyTasks }

// taskCount is the number of grain-sized tasks a run splits into.
func (s *Scheduler) taskCount(n int) int {
	return (n + s.opt.Grain - 1) / s.opt.Grain
}

// HasDeferred reports whether successor-splitting management work awaits an
// idle executive.
func (s *Scheduler) HasDeferred() bool { return len(s.deferred) > 0 }

// TaskCost returns the virtual execution cost of a task: the sum of its
// granules' costs.
func (s *Scheduler) TaskCost(t Task) Cost {
	ph := s.prog.Phases[t.Phase]
	if ph.Cost == nil {
		return Cost(t.Run.Len())
	}
	var sum Cost
	t.Run.Each(func(g granule.ID) { sum += ph.Cost(g) })
	return sum
}

// Start activates the first phase (and, when overlap is enabled, prepares
// its successor). It returns the management cost incurred.
func (s *Scheduler) Start() Cost {
	if s.started {
		return 0
	}
	s.started = true
	return s.advance()
}

// advance drives the current-phase window forward until it rests on an
// incomplete, activated phase (or the program ends).
func (s *Scheduler) advance() Cost {
	var cost Cost
	for s.current < len(s.phases) {
		pr := s.phases[s.current]
		switch pr.state {
		case PhaseUnstarted:
			cost += s.serialActivate(pr)
			pr.state = PhaseCurrent
			cost += s.prepareOverlap(s.current)
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			return cost
		case PhaseOverlapped:
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			// The overlapped phase becomes the current phase: its
			// filler work is promoted to normal priority and its own
			// successor is prepared for overlap.
			s.wait.Promote(queue.Background, queue.Normal)
			pr.state = PhaseCurrent
			// If the pair's composite map was never published (the build
			// was deferred and overtaken by the predecessor's
			// completion), nothing has been released: queue the whole
			// span as normal work now. The pending build item becomes a
			// cancelled no-op.
			if s.current > 0 {
				prev := s.phases[s.current-1]
				if s.opt.Overlap && prev.spec.Enable != nil &&
					prev.spec.Enable.Kind != enable.Null &&
					prev.tab == nil && pr.total > 0 {
					cost += s.enqueueRange(pr, granule.Span(pr.total), queue.Normal)
				}
			}
			cost += s.prepareOverlap(s.current)
			return cost
		case PhaseCurrent:
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			return cost
		case PhaseComplete:
			s.current++
		default:
			panic(fmt.Sprintf("core: invalid phase state %v", pr.state))
		}
	}
	return cost
}

// serialActivate performs the between-phase serial action (if any) and
// queues the phase's whole span as normal-priority work.
func (s *Scheduler) serialActivate(pr *phaseRun) Cost {
	var cost Cost
	if pr.spec.SerialBefore != nil {
		pr.spec.SerialBefore()
	}
	cost += pr.spec.SerialCost
	s.stats.SerialCost += pr.spec.SerialCost
	if pr.total > 0 {
		cost += s.enqueueRange(pr, granule.Span(pr.total), queue.Normal)
	}
	return cost
}

// enqueueRange queues run for phase pr at the given class, honouring the
// pre-split policy, and returns the management cost.
func (s *Scheduler) enqueueRange(pr *phaseRun, run granule.Range, class queue.Class) Cost {
	if run.Empty() {
		return 0
	}
	var cost Cost
	if s.opt.Split == SplitPre && run.Len() > s.opt.Grain {
		chunks := run.Chunks(s.opt.Grain)
		s.stats.Splits += int64(len(chunks) - 1)
		cost += Cost(len(chunks)-1) * s.opt.Costs.Split
		for _, c := range chunks {
			cost += s.pushDesc(newDesc(pr.idx, c), class)
		}
		return cost
	}
	return cost + s.pushDesc(newDesc(pr.idx, run), class)
}

// pushDesc appends d to the waiting computation queue.
func (s *Scheduler) pushDesc(d *desc, class queue.Class) Cost {
	s.wait.Push(d.node, class)
	s.phases[d.phase].nQueued += d.run.Len()
	s.readyTasks += s.taskCount(d.run.Len())
	s.stats.DispatchCost += s.opt.Costs.Dispatch
	return s.opt.Costs.Dispatch
}

// pushDescFront inserts d at the front of its class (split remainders keep
// their place at the head of the queue).
func (s *Scheduler) pushDescFront(d *desc, class queue.Class) {
	s.wait.PushFront(d.node, class)
	s.phases[d.phase].nQueued += d.run.Len()
	s.readyTasks += s.taskCount(d.run.Len())
}

// releasedClass is the class successor work is released to.
func (s *Scheduler) releasedClass() queue.Class {
	if s.opt.ReleasedAhead {
		return queue.Released
	}
	return queue.Background
}

// prepareOverlap initiates phase c+1 for overlap with current phase c, per
// the declared enablement mapping. No-op for barrier mode, null mappings,
// or the final phase. Universal and identity pairs are wired immediately
// (their "tables" are implicit and O(1) to build); indirect pairs defer
// composite-map construction to executive idle time, per the paper: "it
// would seem wise to get the current phase into execution without the
// delay of constructing the necessary information for enabling successor
// computations."
func (s *Scheduler) prepareOverlap(c int) Cost {
	if !s.opt.Overlap || c+1 >= len(s.phases) {
		return 0
	}
	pr := s.phases[c]
	spec := pr.spec.Enable
	if spec == nil || spec.Kind == enable.Null {
		return 0
	}
	next := s.phases[c+1]
	if next.state != PhaseUnstarted {
		return 0 // already active or complete; nothing to prepare
	}
	next.state = PhaseOverlapped
	next.nextActivated = true

	if spec.Kind.Indirect() && !s.opt.InlineMaps {
		s.deferred = append(s.deferred, deferredItem{
			kind: deferBuildTable, predPhase: c, succPhase: c + 1,
		})
		s.stats.DeferredItems++
		return 0
	}
	return s.buildPair(pr, next)
}

// buildPair constructs the enablement table (composite granule map) for
// the pair pr -> next and publishes it immediately — the inline path used
// for universal and identity mappings, whose "maps" are implicit and O(1).
// The paper: the map "would have to be generated by the executive at or
// after first phase initiation but before any second phase enablements".
func (s *Scheduler) buildPair(pr, next *phaseRun) Cost {
	tab := s.constructTable(pr, next)
	tcost := Cost(tab.BuildCost()) * s.opt.Costs.MapEntry
	s.stats.TableCost += tcost
	return tcost + s.publishPair(pr, next, tab)
}

// constructTable builds the enablement table for the pair (no publication,
// no cost charging).
func (s *Scheduler) constructTable(pr, next *phaseRun) *enable.Table {
	tab, err := enable.Build(pr.spec.Enable, pr.total, next.total)
	if err != nil {
		// Validate() passed at New; a failure here means the mapping
		// functions are impure, which is a programming error.
		panic(fmt.Sprintf("core: enablement table build failed at runtime: %v", err))
	}
	s.stats.TableBuilds++
	s.stats.TableEntries += tab.BuildCost()
	return tab
}

// publishPair installs a constructed table: catches up completions that
// happened before the table existed, releases the computable successor
// granules, attaches identity conflict-queue descriptions, and plans the
// indirect successor subset.
func (s *Scheduler) publishPair(pr, next *phaseRun, tab *enable.Table) Cost {
	spec := pr.spec.Enable
	var cost Cost

	pr.tab = tab
	pr.pendingTab = nil
	pr.cqManaged = granule.NewSet()
	pr.subsetManaged = granule.NewSet()
	pr.subsetPreds = granule.NewSet()

	// Catch up completions that happened before the table existed (the
	// current phase may have progressed while it was itself overlapped).
	ready := tab.ReadyAtStart().Clone()
	if !pr.completed.Empty() {
		touched := 0
		for _, r := range pr.completed.Runs() {
			touched += tab.CompleteRange(r, ready)
		}
		s.stats.CatchUps += int64(touched)
		ccost := Cost(touched) * s.opt.Costs.PerEnable
		s.stats.CompleteCost += ccost
		cost += ccost
	}

	// Queue the immediately computable successor granules behind the
	// current phase ("placed in the waiting computation queue behind the
	// current phase description"). A deferred build may land after the
	// successor has already become the current phase; its work is then
	// normal-priority.
	class := queue.Background
	if next.state == PhaseCurrent {
		class = queue.Normal
	}
	for _, run := range ready.Runs() {
		cost += s.enqueueRange(next, run, class)
		s.stats.Releases++
	}

	// Identity via conflict queues: attach successor descriptions to the
	// queued current-phase descriptions they are enabled by.
	if spec.Kind == enable.Identity && s.opt.IdentityVia == IdentityConflictQueue {
		cost += s.attachIdentitySuccessors(pr, next)
	}

	// Indirect mappings: plan a successor subset, elevate its enabling
	// current-phase granules, and arm the enablement counter.
	if spec.Kind.Indirect() && s.opt.Elevate {
		cost += s.planSubset(pr, next, ready)
	}
	return cost
}

// attachIdentitySuccessors walks the waiting queue and, for every queued
// description of the current phase, attaches the matching successor
// description to its conflict ring.
func (s *Scheduler) attachIdentitySuccessors(pr, next *phaseRun) Cost {
	lim := pr.total
	if next.total < lim {
		lim = next.total
	}
	var cost Cost
	s.wait.Each(func(n *queue.Node[*desc], _ queue.Class) {
		d := n.Value
		if d.phase != pr.idx {
			return
		}
		run := d.run.Intersect(granule.R(0, granule.ID(lim)))
		if run.Empty() {
			return
		}
		sd := newDesc(next.idx, run)
		d.attachSuccessor(sd)
		pr.cqManaged.AddRange(run)
		s.stats.Releases++ // queue insertion onto the conflict ring
		cost += s.opt.Costs.Dispatch
		s.stats.DispatchCost += s.opt.Costs.Dispatch
	})
	return cost
}

// planSubset implements the paper's indirect-mapping strategy: "identify a
// subset group of successor-phase granules that are to be the subject of
// the enablement operation", find the current-phase granules that enable
// it, elevate their priority, and arm an enablement counter that releases
// the subset when they have all completed.
func (s *Scheduler) planSubset(pr, next *phaseRun, released *granule.Set) Cost {
	var cost Cost

	// Successor subset: the first SubsetSize granules still pending —
	// excluding everything already queued (ready-at-start granules and
	// catch-up releases), which must not be released a second time.
	pending := granule.NewSet(granule.Span(next.total))
	pending.Subtract(released)
	subset := granule.NewSet()
	remaining := s.opt.SubsetSize
	for remaining > 0 && !pending.Empty() {
		r := pending.TakeFront(remaining)
		if r.Empty() {
			break
		}
		subset.AddRange(r)
		remaining -= r.Len()
	}
	if subset.Empty() {
		return 0
	}

	// Composite-map scan for the enabling current-phase granules.
	preds, scanned := pr.tab.PredsFor(subset)
	scost := Cost(scanned) * s.opt.Costs.MapEntry
	s.stats.TableCost += scost
	cost += scost

	// Only uncompleted granules are counted; completed ones already
	// contributed their enablement.
	preds.Subtract(pr.completed)
	if preds.Empty() {
		// Everything needed has completed; release the subset now.
		cost += s.releaseSet(next, subset)
		return cost
	}

	pr.subsetManaged = subset
	pr.subsetPreds = preds
	pr.subsetCounter.Arm(preds.Len())

	// Elevate the enabling granules that are still queued. Granules in
	// flight will complete soon regardless.
	cost += s.elevate(pr, preds)
	return cost
}

// elevate extracts the granules of preds from the current phase's queued
// descriptions and requeues them at elevated priority.
func (s *Scheduler) elevate(pr *phaseRun, preds *granule.Set) Cost {
	type hit struct {
		n     *queue.Node[*desc]
		class queue.Class
	}
	var hits []hit
	s.wait.Each(func(n *queue.Node[*desc], c queue.Class) {
		d := n.Value
		if d.phase != pr.idx || c == queue.Elevated {
			return
		}
		if preds.IntersectRange(d.run).Empty() {
			return
		}
		hits = append(hits, hit{n: n, class: c})
	})
	var cost Cost
	for _, h := range hits {
		d := h.n.Value
		s.wait.Remove(h.n, h.class)
		pr.nQueued -= d.run.Len()
		s.readyTasks -= s.taskCount(d.run.Len())

		inter := preds.IntersectRange(d.run)
		rest := granule.NewSet(d.run)
		rest.Subtract(inter)
		pieces := inter.NumRuns() + rest.NumRuns() - 1
		if pieces > 0 {
			s.stats.Splits += int64(pieces)
			sc := Cost(pieces) * s.opt.Costs.Split
			s.stats.SplitCost += sc
			cost += sc
		}
		for _, r := range inter.Runs() {
			cost += s.pushDesc(newDesc(pr.idx, r), queue.Elevated)
			s.stats.Elevations++
			ec := s.opt.Costs.Elevate
			s.stats.ElevateCost += ec
			cost += ec
		}
		for _, r := range rest.Runs() {
			cost += s.pushDesc(newDesc(pr.idx, r), h.class)
		}
	}
	return cost
}

// releaseSet queues successor granules (as coalesced descriptions) at the
// released class.
func (s *Scheduler) releaseSet(next *phaseRun, set *granule.Set) Cost {
	var cost Cost
	for _, run := range set.Runs() {
		cost += s.enqueueRange(next, run, s.releasedClass())
		s.stats.Releases++
	}
	return cost
}

// NextTask pops the highest-priority description, splitting it to the
// grain if needed, and returns the dispatched task with the management cost
// of the dispatch. ok is false when no work is ready (the processor idles —
// this is computational rundown unless the program is done).
func (s *Scheduler) NextTask() (t Task, cost Cost, ok bool) {
	if !s.started {
		panic("core: NextTask before Start")
	}
	n, class, ok := s.wait.Pop()
	if !ok {
		// Liveness fallback: with nothing queued AND nothing in flight,
		// no completion can ever release work, so the executive must
		// drain its deferred queue now or deadlock. When tasks are still
		// in flight the driver simply idles this worker — completions
		// (and the driver's own idle-executive DeferredMgmt calls) will
		// make progress, and an unfinished composite-map build can still
		// be cancelled by the predecessor completing.
		for s.wait.Empty() && len(s.inflight) == 0 {
			dc, any := s.DeferredMgmt()
			if !any {
				return Task{}, cost, false
			}
			cost += dc
		}
		n, class, ok = s.wait.Pop()
		if !ok {
			return Task{}, cost, false
		}
	}
	d := n.Value
	pr := s.phases[d.phase]
	pr.nQueued -= d.run.Len()
	s.readyTasks -= s.taskCount(d.run.Len())

	cost += s.opt.Costs.Dispatch
	s.stats.DispatchCost += s.opt.Costs.Dispatch

	if d.run.Len() > s.opt.Grain {
		cost += s.splitForDispatch(d, class, pr)
	}

	// Double-dispatch guard: a granule must never be handed out twice.
	if !pr.dispatched.IntersectRange(d.run).Empty() {
		panic(fmt.Sprintf("core: double dispatch of %v in phase %d", d.run, d.phase))
	}
	pr.dispatched.AddRange(d.run)

	s.nextID++
	s.stats.Dispatches++
	t = Task{ID: s.nextID, Phase: d.phase, Run: d.run}
	s.inflight[t.ID] = d
	return t, cost, true
}

// splitForDispatch splits description d so its front fits the grain,
// requeueing the remainder at the front of its class, and handles the
// attached successor descriptions per the successor-split mode.
func (s *Scheduler) splitForDispatch(d *desc, class queue.Class, pr *phaseRun) Cost {
	var cost Cost
	attachments := d.detachAll()

	front, rest := d.run.TakeFront(s.opt.Grain)
	d.run = front
	rd := newDesc(d.phase, rest)
	s.pushDescFront(rd, class)
	s.stats.Splits++
	sc := s.opt.Costs.Split
	s.stats.SplitCost += sc
	cost += sc

	for _, sd := range attachments {
		switch s.opt.SuccSplit {
		case SuccSplitInline:
			sf := sd.run.Intersect(front)
			sr := sd.run.Intersect(rest)
			switch {
			case sf.Empty():
				rd.attachSuccessor(sd)
			case sr.Empty():
				d.attachSuccessor(sd)
			default:
				// Split the queued successor description to mirror
				// the split of its enabler, paying the split cost on
				// the dispatch path.
				sd.run = sf
				d.attachSuccessor(sd)
				rd.attachSuccessor(newDesc(sd.phase, sr))
				s.stats.Splits++
				s.stats.SplitCost += s.opt.Costs.Split
				cost += s.opt.Costs.Split
			}
		case SuccSplitDeferred:
			// Detach entirely; a successor-splitting management task
			// will sort it out when the executive is idle. The range
			// stays conflict-queue-managed (table emissions stay
			// suppressed) until the task runs, so there is exactly one
			// release authority at any moment.
			s.deferred = append(s.deferred, deferredItem{
				kind:      deferSplitSucc,
				predPhase: int(pr.idx),
				succPhase: int(sd.phase),
				run:       sd.run,
			})
			s.stats.DeferredItems++
		}
	}
	return cost
}

// DeferredMgmt processes one queued deferred management task (successor
// splitting or composite-map construction) and returns its cost. ok is
// false when none are pending. Drivers call this when the management
// resource is otherwise idle; NextTask also drains the queue as a liveness
// fallback when the waiting queue runs dry.
func (s *Scheduler) DeferredMgmt() (cost Cost, ok bool) {
	if len(s.deferred) == 0 {
		return 0, false
	}
	item := s.deferred[0]
	s.deferred = s.deferred[1:]

	pr := s.phases[item.predPhase]
	next := s.phases[item.succPhase]

	switch item.kind {
	case deferBuildTable:
		if pr.tab != nil {
			return 0, true // defensive: already built
		}
		if pr.nComplete >= pr.total || next.state == PhaseComplete {
			// Cancelled: the predecessor finished before the map was
			// needed; the successor is released wholesale by advance().
			pr.pendingTab = nil
			pr.buildLeft = 0
			return 0, true
		}
		if pr.pendingTab == nil {
			pr.pendingTab = s.constructTable(pr, next)
			pr.buildLeft = Cost(pr.pendingTab.BuildCost()) * s.opt.Costs.MapEntry
		}
		// Incremental construction: charge at most one chunk of map work
		// per idle-executive step so the build never monopolizes the
		// serial executive.
		step := pr.buildLeft
		if chunk := s.opt.Costs.MapChunk; chunk > 0 && step > chunk {
			step = chunk
		}
		pr.buildLeft -= step
		s.stats.TableCost += step
		cost = step
		if pr.buildLeft > 0 {
			// Not finished: keep the item queued for the next idle step.
			s.deferred = append([]deferredItem{item}, s.deferred...)
			return cost, true
		}
		cost += s.publishPair(pr, next, pr.pendingTab)
		return cost, true

	case deferSplitSucc:
		// Identity mapping: successor granule r is enabled iff current
		// granule r has completed. Release the already-enabled part
		// (whose table emissions were suppressed while the range was
		// conflict-queue-managed); the rest flows through the enablement
		// table from now on.
		pr.cqManaged.RemoveRange(item.run)
		enabled := pr.completed.IntersectRange(item.run)
		cost = s.opt.Costs.Split + Cost(item.run.Len())*s.opt.Costs.PerEnable
		s.stats.DeferredCost += cost
		cost += s.releaseSet(next, enabled)
		return cost, true
	}
	panic(fmt.Sprintf("core: unknown deferred item kind %d", item.kind))
}

// Complete performs completion processing for a dispatched task: it merges
// the completed description, releases conflict-queued successor
// descriptions, decrements enablement counters, and advances the phase
// window when the current phase finishes. It returns the management cost.
func (s *Scheduler) Complete(t Task) Cost {
	d, ok := s.inflight[t.ID]
	if !ok {
		panic(fmt.Sprintf("core: Complete of unknown %v", t))
	}
	delete(s.inflight, t.ID)
	pr := s.phases[d.phase]

	cost := s.opt.Costs.Complete + s.opt.Costs.Merge
	s.stats.Completions++
	s.stats.Merges++
	s.stats.CompleteCost += s.opt.Costs.Complete + s.opt.Costs.Merge

	if pr.completed.ContainsRange(d.run) && !d.run.Empty() {
		panic(fmt.Sprintf("core: double completion of %v in phase %d", d.run, d.phase))
	}
	pr.completed.AddRange(d.run)
	pr.nComplete += d.run.Len()

	// Release conflict-queued successor descriptions: "upon completion of
	// the described computation, all the queued conflicting computations
	// became unconditionally computable and were placed in the waiting
	// computation queue" — ahead of normal work.
	for _, sd := range d.detachAll() {
		cost += s.pushDesc(sd, s.releasedClass())
		s.stats.Releases++
	}

	// Enablement-counter processing for the phase pair. Counter touches
	// for conflict-queue-managed granules are not charged: PAX releases
	// those per description, in O(1), which is exactly why computations
	// are "described as large, contiguous collections of granules". The
	// counters are still advanced so that deferred successor-splitting
	// tasks and phase accounting stay consistent.
	if pr.tab != nil {
		released := granule.NewSet()
		charged := 0
		d.run.Each(func(p granule.ID) {
			suppressed := false
			n := pr.tab.Complete(p, func(r granule.ID) {
				if pr.cqManaged.Contains(r) {
					suppressed = true
					return // released by the conflict-queue mechanism
				}
				if pr.subsetManaged.Contains(r) {
					return // released as a unit by the subset counter
				}
				released.Add(r)
			})
			if !suppressed {
				charged += n
			}
		})
		if charged > 0 {
			ec := Cost(charged) * s.opt.Costs.PerEnable
			s.stats.EnableTouches += int64(charged)
			s.stats.CompleteCost += ec
			cost += ec
		}
		if !released.Empty() && int(d.phase)+1 < len(s.phases) {
			cost += s.releaseSet(s.phases[int(d.phase)+1], released)
		}

		// Subset counter: the paper's status-bit-plus-counter mechanism.
		if pr.subsetCounter.Armed() {
			hits := pr.subsetPreds.IntersectRange(d.run)
			fired := false
			for i := 0; i < hits.Len(); i++ {
				if pr.subsetCounter.Dec() {
					fired = true
				}
			}
			if fired && int(d.phase)+1 < len(s.phases) {
				subset := pr.subsetManaged
				pr.subsetManaged = granule.NewSet()
				cost += s.releaseSet(s.phases[int(d.phase)+1], subset)
			}
		}
	}

	if pr.nComplete >= pr.total {
		if int(pr.idx) == s.current {
			pr.state = PhaseComplete
			s.current++
			cost += s.advance()
		} else {
			pr.state = PhaseComplete
		}
	}
	return cost
}

// Check verifies cross-structure invariants; tests call it between driver
// steps. It is O(phases + queue length).
func (s *Scheduler) Check() error {
	queued := make(map[granule.PhaseID]int)
	tasks := 0
	s.wait.Each(func(n *queue.Node[*desc], _ queue.Class) {
		queued[n.Value.phase] += n.Value.run.Len()
		tasks += s.taskCount(n.Value.run.Len())
	})
	if tasks != s.readyTasks {
		return fmt.Errorf("readyTasks=%d but queue holds %d task-equivalents", s.readyTasks, tasks)
	}
	for _, pr := range s.phases {
		if q := queued[pr.idx]; q != pr.nQueued {
			return fmt.Errorf("phase %d: nQueued=%d but queue holds %d", pr.idx, pr.nQueued, q)
		}
		if pr.nComplete > pr.total {
			return fmt.Errorf("phase %d: completed %d of %d", pr.idx, pr.nComplete, pr.total)
		}
		if pr.state == PhaseComplete && pr.nComplete != pr.total {
			return fmt.Errorf("phase %d: complete with %d/%d", pr.idx, pr.nComplete, pr.total)
		}
		if pr.completed.Len() != pr.nComplete {
			return fmt.Errorf("phase %d: completed set %d != count %d", pr.idx, pr.completed.Len(), pr.nComplete)
		}
	}
	return nil
}
