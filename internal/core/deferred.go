package core

import (
	"fmt"

	"repro/internal/granule"
)

// This file holds the deferred-management half of the state machine: the
// work the executive postpones to its idle moments — successor splitting
// and incremental composite-granule-map construction.

// deferredKind distinguishes deferred management work.
type deferredKind uint8

const (
	// deferSplitSucc is a successor-splitting task: a successor
	// description detached from a conflict queue, awaiting splitting and
	// requeueing "for later attention when the executive would again be
	// idle".
	deferSplitSucc deferredKind = iota
	// deferBuildTable is composite-granule-map construction for an
	// indirect mapping, deferred so the executive can "get the current
	// phase into execution without the delay of constructing the
	// necessary information for enabling successor computations".
	deferBuildTable
)

// deferredItem is one unit of deferred management work.
type deferredItem struct {
	kind      deferredKind
	predPhase int
	succPhase int
	run       granule.Range // deferSplitSucc only
}

// HasDeferred reports whether successor-splitting management work awaits an
// idle executive.
func (s *Scheduler) HasDeferred() bool { return len(s.deferred) > 0 }

// DeferredMgmt processes one queued deferred management task (successor
// splitting or composite-map construction) and returns its cost. ok is
// false when none are pending. Drivers call this when the management
// resource is otherwise idle; NextTask also drains the queue as a liveness
// fallback when the waiting queue runs dry.
func (s *Scheduler) DeferredMgmt() (cost Cost, ok bool) {
	if len(s.deferred) == 0 {
		return 0, false
	}
	item := s.deferred[0]
	s.deferred = s.deferred[1:]

	pr := s.phases[item.predPhase]
	next := s.phases[item.succPhase]

	switch item.kind {
	case deferBuildTable:
		if pr.tab != nil {
			return 0, true // defensive: already built
		}
		if pr.nComplete >= pr.total || next.state == PhaseComplete {
			// Cancelled: the predecessor finished before the map was
			// needed; the successor is released wholesale by advance().
			pr.pendingTab = nil
			pr.buildLeft = 0
			return 0, true
		}
		if pr.pendingTab == nil {
			pr.pendingTab = s.constructTable(pr, next)
			pr.buildLeft = Cost(pr.pendingTab.BuildCost()) * s.opt.Costs.MapEntry
		}
		// Incremental construction: charge at most one chunk of map work
		// per idle-executive step so the build never monopolizes the
		// serial executive.
		step := pr.buildLeft
		if chunk := s.opt.Costs.MapChunk; chunk > 0 && step > chunk {
			step = chunk
		}
		pr.buildLeft -= step
		s.stats.TableCost += step
		cost = step
		if pr.buildLeft > 0 {
			// Not finished: keep the item queued for the next idle step.
			s.deferred = append([]deferredItem{item}, s.deferred...)
			return cost, true
		}
		cost += s.publishPair(pr, next, pr.pendingTab)
		return cost, true

	case deferSplitSucc:
		// Identity mapping: successor granule r is enabled iff current
		// granule r has completed. Release the already-enabled part
		// (whose table emissions were suppressed while the range was
		// conflict-queue-managed); the rest flows through the enablement
		// table from now on.
		pr.cqManaged.RemoveRange(item.run)
		enabled := pr.completed.IntersectRange(item.run)
		cost = s.opt.Costs.Split + Cost(item.run.Len())*s.opt.Costs.PerEnable
		s.stats.DeferredCost += cost
		cost += s.releaseSet(next, enabled)
		return cost, true
	}
	panic(fmt.Sprintf("core: unknown deferred item kind %d", item.kind))
}
