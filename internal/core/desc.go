package core

import (
	"fmt"

	"repro/internal/granule"
	"repro/internal/queue"
)

// Task is a contiguous run of granules of one phase handed to a worker.
type Task struct {
	// ID is unique within a scheduler run and identifies the dispatch.
	ID int
	// Phase indexes the program phase the granules belong to.
	Phase granule.PhaseID
	// Run is the half-open granule range to execute.
	Run granule.Range
}

func (t Task) String() string {
	return fmt.Sprintf("task#%d phase=%d run=%v", t.ID, t.Phase, t.Run)
}

// desc is a PAX computation description: one (or more) granules of one
// phase, described as a contiguous collection that the executive splits
// apart "as necessary to produce conveniently sized tasks for workers".
//
// A desc lives in exactly one place at a time: the waiting computation
// queue (node attached) or in flight as a dispatched task.
type desc struct {
	phase granule.PhaseID
	run   granule.Range
	class queue.Class

	// succ is the PAX conflict queue of this description, in its only
	// occurring shape: identity-mapped successor work enabled by this
	// description's completion ("upon completion of the described
	// computation, all the queued conflicting computations became
	// unconditionally computable"). The identity mechanism attaches
	// exactly one successor description per enabler, always a contiguous
	// subrange of the enabler's own run (dispatch splits mirror-split it,
	// keeping the invariant), so the queue is represented as the bare
	// range — empty meaning none — and the successor description is
	// materialized only at completion time, when it enters the waiting
	// queue. Compared to carrying a linked ring of successor
	// descriptions, this halves the per-description footprint and lets a
	// completion's released successor reuse the enabler's just-retired
	// allocation: the description working set stops growing with the
	// phase.
	succ granule.Range

	// node links the desc into the waiting computation queue. It is
	// embedded by value (not a *Node) so a description is one allocation,
	// not two — at fine grain the extra node allocation per description
	// dominated the dispatch path's allocation profile.
	node queue.Node[*desc]
}

func (d *desc) String() string {
	return fmt.Sprintf("desc{phase=%d run=%v class=%v}", d.phase, d.run, d.class)
}
