package core

import (
	"fmt"

	"repro/internal/granule"
	"repro/internal/queue"
)

// Task is a contiguous run of granules of one phase handed to a worker.
type Task struct {
	// ID is unique within a scheduler run and identifies the dispatch.
	ID int
	// Phase indexes the program phase the granules belong to.
	Phase granule.PhaseID
	// Run is the half-open granule range to execute.
	Run granule.Range
}

func (t Task) String() string {
	return fmt.Sprintf("task#%d phase=%d run=%v", t.ID, t.Phase, t.Run)
}

// desc is a PAX computation description: one (or more) granules of one
// phase, described as a contiguous collection that the executive splits
// apart "as necessary to produce conveniently sized tasks for workers".
//
// A desc lives in exactly one place at a time: the waiting computation
// queue (node attached), the conflict ring of another desc (cnode
// attached), or in flight as a dispatched task.
type desc struct {
	phase granule.PhaseID
	run   granule.Range
	class queue.Class

	// node links the desc into the waiting computation queue.
	node *queue.Node[*desc]
	// conflict is the desc's queue head for the double circularly-linked
	// list of computable-but-conflicting descriptions — here, identity-
	// mapped successor descriptions enabled by this desc's completion.
	conflict queue.Ring[*desc]
	// cnode links the desc into another desc's conflict ring.
	cnode *queue.Node[*desc]
}

func newDesc(phase granule.PhaseID, run granule.Range) *desc {
	d := &desc{phase: phase, run: run}
	d.node = queue.NewNode(d)
	d.cnode = queue.NewNode(d)
	return d
}

func (d *desc) String() string {
	return fmt.Sprintf("desc{phase=%d run=%v class=%v}", d.phase, d.run, d.class)
}

// attachSuccessor queues s on d's conflict ring.
func (d *desc) attachSuccessor(s *desc) {
	d.conflict.PushBack(s.cnode)
}

// detachAll removes and returns all successor descs queued on d.
func (d *desc) detachAll() []*desc {
	var out []*desc
	d.conflict.Drain(func(s *desc) { out = append(out, s) })
	return out
}
