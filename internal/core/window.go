package core

import (
	"fmt"

	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/queue"
)

// This file is the phase-window half of the state machine: driving the
// current-phase window forward, preparing phase pairs for overlap,
// constructing and publishing enablement tables (composite granule maps),
// planning indirect successor subsets, and elevating enabling granules.

// Start activates the first phase (and, when overlap is enabled, prepares
// its successor). It returns the management cost incurred.
func (s *Scheduler) Start() Cost {
	if s.started {
		return 0
	}
	s.started = true
	return s.advance()
}

// advance drives the current-phase window forward until it rests on an
// incomplete, activated phase (or the program ends).
func (s *Scheduler) advance() Cost {
	var cost Cost
	for s.current < len(s.phases) {
		pr := s.phases[s.current]
		switch pr.state {
		case PhaseUnstarted:
			cost += s.serialActivate(pr)
			pr.state = PhaseCurrent
			cost += s.prepareOverlap(s.current)
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			return cost
		case PhaseOverlapped:
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			// The overlapped phase becomes the current phase: its
			// filler work is promoted to normal priority and its own
			// successor is prepared for overlap.
			s.wait.Promote(queue.Background, queue.Normal)
			pr.state = PhaseCurrent
			// If the pair's composite map was never published (the build
			// was deferred and overtaken by the predecessor's
			// completion), nothing has been released: queue the whole
			// span as normal work now. The pending build item becomes a
			// cancelled no-op.
			if s.current > 0 {
				prev := s.phases[s.current-1]
				if s.opt.Overlap && prev.spec.Enable != nil &&
					prev.spec.Enable.Kind != enable.Null &&
					prev.tab == nil && pr.total > 0 {
					cost += s.enqueueRange(pr, granule.Span(pr.total), queue.Normal)
				}
			}
			cost += s.prepareOverlap(s.current)
			return cost
		case PhaseCurrent:
			if pr.nComplete >= pr.total {
				pr.state = PhaseComplete
				s.current++
				continue
			}
			return cost
		case PhaseComplete:
			s.current++
		default:
			panic(fmt.Sprintf("core: invalid phase state %v", pr.state))
		}
	}
	return cost
}

// serialActivate performs the between-phase serial action (if any) and
// queues the phase's whole span as normal-priority work.
func (s *Scheduler) serialActivate(pr *phaseRun) Cost {
	var cost Cost
	if pr.spec.SerialBefore != nil {
		pr.spec.SerialBefore()
	}
	cost += pr.spec.SerialCost
	s.stats.SerialCost += pr.spec.SerialCost
	if pr.total > 0 {
		cost += s.enqueueRange(pr, granule.Span(pr.total), queue.Normal)
	}
	return cost
}

// enqueueRange queues run for phase pr at the given class, honouring the
// pre-split policy, and returns the management cost.
func (s *Scheduler) enqueueRange(pr *phaseRun, run granule.Range, class queue.Class) Cost {
	if run.Empty() {
		return 0
	}
	var cost Cost
	if s.opt.Split == SplitPre && run.Len() > s.opt.Grain {
		chunks := run.Chunks(s.opt.Grain)
		s.stats.Splits += int64(len(chunks) - 1)
		cost += Cost(len(chunks)-1) * s.opt.Costs.Split
		for _, c := range chunks {
			cost += s.pushDesc(s.getDesc(pr.idx, c), class)
		}
		return cost
	}
	return cost + s.pushDesc(s.getDesc(pr.idx, run), class)
}

// pushDesc appends d to the waiting computation queue.
func (s *Scheduler) pushDesc(d *desc, class queue.Class) Cost {
	s.wait.Push(&d.node, class)
	s.phases[d.phase].nQueued += d.run.Len()
	s.readyTasks += s.taskCount(d.run.Len())
	s.stats.DispatchCost += s.opt.Costs.Dispatch
	return s.opt.Costs.Dispatch
}

// pushDescFront inserts d at the front of its class (split remainders keep
// their place at the head of the queue).
func (s *Scheduler) pushDescFront(d *desc, class queue.Class) {
	s.wait.PushFront(&d.node, class)
	s.phases[d.phase].nQueued += d.run.Len()
	s.readyTasks += s.taskCount(d.run.Len())
}

// releasedClass is the class successor work is released to.
func (s *Scheduler) releasedClass() queue.Class {
	if s.opt.ReleasedAhead {
		return queue.Released
	}
	return queue.Background
}

// prepareOverlap initiates phase c+1 for overlap with current phase c, per
// the declared enablement mapping. No-op for barrier mode, null mappings,
// or the final phase. Universal and identity pairs are wired immediately
// (their "tables" are implicit and O(1) to build); indirect pairs defer
// composite-map construction to executive idle time, per the paper: "it
// would seem wise to get the current phase into execution without the
// delay of constructing the necessary information for enabling successor
// computations."
func (s *Scheduler) prepareOverlap(c int) Cost {
	if !s.opt.Overlap || c+1 >= len(s.phases) {
		return 0
	}
	pr := s.phases[c]
	spec := pr.spec.Enable
	if spec == nil || spec.Kind == enable.Null {
		return 0
	}
	next := s.phases[c+1]
	if next.state != PhaseUnstarted {
		return 0 // already active or complete; nothing to prepare
	}
	next.state = PhaseOverlapped
	next.nextActivated = true

	if spec.Kind.Indirect() && !s.opt.InlineMaps {
		s.deferred = append(s.deferred, deferredItem{
			kind: deferBuildTable, predPhase: c, succPhase: c + 1,
		})
		s.stats.DeferredItems++
		return 0
	}
	return s.buildPair(pr, next)
}

// buildPair constructs the enablement table (composite granule map) for
// the pair pr -> next and publishes it immediately — the inline path used
// for universal and identity mappings, whose "maps" are implicit and O(1).
// The paper: the map "would have to be generated by the executive at or
// after first phase initiation but before any second phase enablements".
func (s *Scheduler) buildPair(pr, next *phaseRun) Cost {
	tab := s.constructTable(pr, next)
	tcost := Cost(tab.BuildCost()) * s.opt.Costs.MapEntry
	s.stats.TableCost += tcost
	return tcost + s.publishPair(pr, next, tab)
}

// constructTable builds the enablement table for the pair (no publication,
// no cost charging).
func (s *Scheduler) constructTable(pr, next *phaseRun) *enable.Table {
	tab, err := enable.Build(pr.spec.Enable, pr.total, next.total)
	if err != nil {
		// Validate() passed at New; a failure here means the mapping
		// functions are impure, which is a programming error.
		panic(fmt.Sprintf("core: enablement table build failed at runtime: %v", err))
	}
	s.stats.TableBuilds++
	s.stats.TableEntries += tab.BuildCost()
	return tab
}

// publishPair installs a constructed table: catches up completions that
// happened before the table existed, releases the computable successor
// granules, attaches identity conflict-queue descriptions, and plans the
// indirect successor subset.
func (s *Scheduler) publishPair(pr, next *phaseRun, tab *enable.Table) Cost {
	spec := pr.spec.Enable
	var cost Cost

	pr.tab = tab
	pr.pendingTab = nil
	pr.cqManaged = granule.NewSet()
	pr.subsetManaged = granule.NewSet()
	pr.subsetPreds = granule.NewSet()

	// Catch up completions that happened before the table existed (the
	// current phase may have progressed while it was itself overlapped).
	ready := tab.ReadyAtStart().Clone()
	if !pr.completed.Empty() {
		touched := 0
		for _, r := range pr.completed.Runs() {
			touched += tab.CompleteRange(r, ready)
		}
		s.stats.CatchUps += int64(touched)
		ccost := Cost(touched) * s.opt.Costs.PerEnable
		s.stats.CompleteCost += ccost
		cost += ccost
	}

	// Queue the immediately computable successor granules behind the
	// current phase ("placed in the waiting computation queue behind the
	// current phase description"). A deferred build may land after the
	// successor has already become the current phase; its work is then
	// normal-priority.
	class := queue.Background
	if next.state == PhaseCurrent {
		class = queue.Normal
	}
	for _, run := range ready.Runs() {
		cost += s.enqueueRange(next, run, class)
		s.stats.Releases++
	}

	// Identity via conflict queues: attach successor descriptions to the
	// queued current-phase descriptions they are enabled by.
	if spec.Kind == enable.Identity && s.opt.IdentityVia == IdentityConflictQueue {
		cost += s.attachIdentitySuccessors(pr, next)
	}

	// Indirect mappings: plan a successor subset, elevate its enabling
	// current-phase granules, and arm the enablement counter.
	if spec.Kind.Indirect() && s.opt.Elevate {
		cost += s.planSubset(pr, next, ready)
	}
	return cost
}

// attachIdentitySuccessors walks the waiting queue and, for every queued
// description of the current phase, attaches the matching successor
// range to its conflict queue (see desc.succ: the successor description
// itself is materialized at completion time).
func (s *Scheduler) attachIdentitySuccessors(pr, next *phaseRun) Cost {
	lim := pr.total
	if next.total < lim {
		lim = next.total
	}
	var cost Cost
	s.wait.Each(func(n *queue.Node[*desc], _ queue.Class) {
		d := n.Value
		if d.phase != pr.idx {
			return
		}
		run := d.run.Intersect(granule.R(0, granule.ID(lim)))
		if run.Empty() {
			return
		}
		d.succ = run
		pr.cqManaged.AddRange(run)
		s.stats.Releases++ // queue insertion onto the conflict ring
		cost += s.opt.Costs.Dispatch
		s.stats.DispatchCost += s.opt.Costs.Dispatch
	})
	return cost
}

// planSubset implements the paper's indirect-mapping strategy: "identify a
// subset group of successor-phase granules that are to be the subject of
// the enablement operation", find the current-phase granules that enable
// it, elevate their priority, and arm an enablement counter that releases
// the subset when they have all completed.
func (s *Scheduler) planSubset(pr, next *phaseRun, released *granule.Set) Cost {
	var cost Cost

	// Successor subset: the first SubsetSize granules still pending —
	// excluding everything already queued (ready-at-start granules and
	// catch-up releases), which must not be released a second time.
	pending := granule.NewSet(granule.Span(next.total))
	pending.Subtract(released)
	subset := granule.NewSet()
	remaining := s.opt.SubsetSize
	for remaining > 0 && !pending.Empty() {
		r := pending.TakeFront(remaining)
		if r.Empty() {
			break
		}
		subset.AddRange(r)
		remaining -= r.Len()
	}
	if subset.Empty() {
		return 0
	}

	// Composite-map scan for the enabling current-phase granules.
	preds, scanned := pr.tab.PredsFor(subset)
	scost := Cost(scanned) * s.opt.Costs.MapEntry
	s.stats.TableCost += scost
	cost += scost

	// Only uncompleted granules are counted; completed ones already
	// contributed their enablement.
	preds.Subtract(pr.completed)
	if preds.Empty() {
		// Everything needed has completed; release the subset now.
		cost += s.releaseSet(next, subset)
		return cost
	}

	pr.subsetManaged = subset
	pr.subsetPreds = preds
	pr.subsetCounter.Arm(preds.Len())

	// Elevate the enabling granules that are still queued. Granules in
	// flight will complete soon regardless.
	cost += s.elevate(pr, preds)
	return cost
}

// elevate extracts the granules of preds from the current phase's queued
// descriptions and requeues them at elevated priority.
func (s *Scheduler) elevate(pr *phaseRun, preds *granule.Set) Cost {
	type hit struct {
		n     *queue.Node[*desc]
		class queue.Class
	}
	var hits []hit
	s.wait.Each(func(n *queue.Node[*desc], c queue.Class) {
		d := n.Value
		if d.phase != pr.idx || c == queue.Elevated {
			return
		}
		if preds.IntersectRange(d.run).Empty() {
			return
		}
		hits = append(hits, hit{n: n, class: c})
	})
	var cost Cost
	for _, h := range hits {
		d := h.n.Value
		s.wait.Remove(h.n, h.class)
		pr.nQueued -= d.run.Len()
		s.readyTasks -= s.taskCount(d.run.Len())

		inter := preds.IntersectRange(d.run)
		rest := granule.NewSet(d.run)
		rest.Subtract(inter)
		pieces := inter.NumRuns() + rest.NumRuns() - 1
		if pieces > 0 {
			s.stats.Splits += int64(pieces)
			sc := Cost(pieces) * s.opt.Costs.Split
			s.stats.SplitCost += sc
			cost += sc
		}
		for _, r := range inter.Runs() {
			cost += s.pushDesc(s.getDesc(pr.idx, r), queue.Elevated)
			s.stats.Elevations++
			ec := s.opt.Costs.Elevate
			s.stats.ElevateCost += ec
			cost += ec
		}
		for _, r := range rest.Runs() {
			cost += s.pushDesc(s.getDesc(pr.idx, r), h.class)
		}
		s.putDesc(d)
	}
	return cost
}

// releaseSet queues successor granules (as coalesced descriptions) at the
// released class.
func (s *Scheduler) releaseSet(next *phaseRun, set *granule.Set) Cost {
	var cost Cost
	for _, run := range set.Runs() {
		cost += s.enqueueRange(next, run, s.releasedClass())
		s.stats.Releases++
	}
	return cost
}
