package core

import (
	"fmt"

	"repro/internal/granule"
)

// This file is the completion half of the state machine: merging completed
// descriptions, releasing conflict-queued successors, decrementing
// enablement counters, and advancing the phase window.

// Complete performs completion processing for a dispatched task: it merges
// the completed description, releases conflict-queued successor
// descriptions, decrements enablement counters, and advances the phase
// window when the current phase finishes. It returns the management cost.
func (s *Scheduler) Complete(t Task) Cost {
	d, ok := s.inflight.take(t.ID)
	if !ok {
		panic(fmt.Sprintf("core: Complete of unknown %v", t))
	}
	pr := s.phases[d.phase]

	cost := s.opt.Costs.Complete + s.opt.Costs.Merge
	s.stats.Completions++
	s.stats.Merges++
	s.stats.CompleteCost += s.opt.Costs.Complete + s.opt.Costs.Merge

	if pr.completed.ContainsRange(d.run) && !d.run.Empty() {
		panic(fmt.Sprintf("core: double completion of %v in phase %d", d.run, d.phase))
	}
	pr.completed.AddRange(d.run)
	pr.nComplete += d.run.Len()

	// Release the conflict-queued successor: "upon completion of the
	// described computation, all the queued conflicting computations
	// became unconditionally computable and were placed in the waiting
	// computation queue" — ahead of normal work. The successor
	// description is materialized only now, typically reusing the
	// allocation the enabler retires below.
	if !d.succ.Empty() {
		run := d.succ
		d.succ = granule.Range{}
		cost += s.pushDesc(s.getDesc(d.phase+1, run), s.releasedClass())
		s.stats.Releases++
	}

	// Enablement-counter processing for the phase pair. Counter touches
	// for conflict-queue-managed granules are not charged: PAX releases
	// those per description, in O(1), which is exactly why computations
	// are "described as large, contiguous collections of granules". The
	// counters are still advanced so that deferred successor-splitting
	// tasks and phase accounting stay consistent.
	if pr.tab != nil {
		released := granule.NewSet()
		charged := 0
		d.run.Each(func(p granule.ID) {
			suppressed := false
			n := pr.tab.Complete(p, func(r granule.ID) {
				if pr.cqManaged.Contains(r) {
					suppressed = true
					return // released by the conflict-queue mechanism
				}
				if pr.subsetManaged.Contains(r) {
					return // released as a unit by the subset counter
				}
				released.Add(r)
			})
			if !suppressed {
				charged += n
			}
		})
		if charged > 0 {
			ec := Cost(charged) * s.opt.Costs.PerEnable
			s.stats.EnableTouches += int64(charged)
			s.stats.CompleteCost += ec
			cost += ec
		}
		if !released.Empty() && int(d.phase)+1 < len(s.phases) {
			cost += s.releaseSet(s.phases[int(d.phase)+1], released)
		}

		// Subset counter: the paper's status-bit-plus-counter mechanism.
		if pr.subsetCounter.Armed() {
			hits := pr.subsetPreds.CountRange(d.run)
			fired := false
			for i := 0; i < hits; i++ {
				if pr.subsetCounter.Dec() {
					fired = true
				}
			}
			if fired && int(d.phase)+1 < len(s.phases) {
				subset := pr.subsetManaged
				pr.subsetManaged = granule.NewSet()
				cost += s.releaseSet(s.phases[int(d.phase)+1], subset)
			}
		}
	}

	if pr.nComplete >= pr.total {
		if int(pr.idx) == s.current {
			pr.state = PhaseComplete
			s.current++
			cost += s.advance()
		} else {
			pr.state = PhaseComplete
		}
	}
	s.putDesc(d)
	return cost
}

// CompleteBatch performs completion processing for ts in order and returns
// the summed management cost. It is the batching driver's entry point:
// completions accumulate per worker and are applied here under a single
// lock acquisition. Runs of consecutive same-phase tasks are fused — their
// completed descriptions merged into coalesced runs, their enablement
// releases unioned, and their conflict-released successor descriptions
// combined — so a batch of B fine-grain completions costs far fewer
// structure operations (and queues far fewer, larger descriptions) than B
// sequential Complete calls, while completing and releasing exactly the
// same granules. This is the paper's own economy — computations "described
// as large, contiguous collections of granules" — recovered at completion
// time from a batch.
func (s *Scheduler) CompleteBatch(ts []Task) Cost {
	var cost Cost
	for i := 0; i < len(ts); {
		j := i + 1
		for j < len(ts) && ts[j].Phase == ts[i].Phase {
			j++
		}
		if j-i == 1 {
			cost += s.Complete(ts[i])
		} else {
			cost += s.completeGroup(ts[i:j])
		}
		i = j
	}
	return cost
}

// completeGroup fuses completion processing for two or more tasks of one
// phase. Within the batch no dispatches can interleave (the driver holds
// the state machine for the whole call), so deferring queue pushes and the
// phase-window advance to the end of the group is observationally
// equivalent to sequential Complete calls.
func (s *Scheduler) completeGroup(ts []Task) Cost {
	pr := s.phases[ts[0].Phase]

	cost := Cost(len(ts)) * (s.opt.Costs.Complete + s.opt.Costs.Merge)
	s.stats.Completions += int64(len(ts))
	s.stats.Merges += int64(len(ts))
	s.stats.CompleteCost += cost

	// Merge the completed descriptions and drain their conflict rings.
	// Task runs are pairwise disjoint (the dispatch path guards against
	// double dispatch), so the per-task double-completion check against
	// the already-completed set mirrors sequential semantics.
	merged := granule.NewSet()
	var succ *granule.Set // conflict-released successor granules
	for _, t := range ts {
		d, ok := s.inflight.take(t.ID)
		if !ok {
			panic(fmt.Sprintf("core: Complete of unknown %v", t))
		}
		if pr.completed.ContainsRange(d.run) && !d.run.Empty() {
			panic(fmt.Sprintf("core: double completion of %v in phase %d", d.run, d.phase))
		}
		merged.AddRange(d.run)
		if !d.succ.Empty() {
			if succ == nil {
				succ = granule.NewSet()
			}
			succ.AddRange(d.succ)
			d.succ = granule.Range{}
		}
		s.putDesc(d)
	}
	for _, r := range merged.Runs() {
		pr.completed.AddRange(r)
	}
	pr.nComplete += merged.Len()

	// Release the conflict-queued successors as coalesced descriptions,
	// ahead of normal work — one queue insertion per contiguous run
	// instead of one per drained description.
	if succ != nil && int(pr.idx)+1 < len(s.phases) {
		next := s.phases[int(pr.idx)+1]
		for _, run := range succ.Runs() {
			cost += s.pushDesc(s.getDesc(next.idx, run), s.releasedClass())
			s.stats.Releases++
		}
	}

	// Enablement-counter processing over the merged runs, with the same
	// suppression rules and cost charges as the sequential path; the
	// released successors of the whole group coalesce into one release.
	if pr.tab != nil {
		released := granule.NewSet()
		charged := 0
		for _, run := range merged.Runs() {
			run.Each(func(p granule.ID) {
				suppressed := false
				n := pr.tab.Complete(p, func(r granule.ID) {
					if pr.cqManaged.Contains(r) {
						suppressed = true
						return // released by the conflict-queue mechanism
					}
					if pr.subsetManaged.Contains(r) {
						return // released as a unit by the subset counter
					}
					released.Add(r)
				})
				if !suppressed {
					charged += n
				}
			})
		}
		if charged > 0 {
			ec := Cost(charged) * s.opt.Costs.PerEnable
			s.stats.EnableTouches += int64(charged)
			s.stats.CompleteCost += ec
			cost += ec
		}
		if !released.Empty() && int(pr.idx)+1 < len(s.phases) {
			cost += s.releaseSet(s.phases[int(pr.idx)+1], released)
		}

		if pr.subsetCounter.Armed() {
			fired := false
			for _, run := range merged.Runs() {
				hits := pr.subsetPreds.CountRange(run)
				for i := 0; i < hits; i++ {
					if pr.subsetCounter.Dec() {
						fired = true
					}
				}
			}
			if fired && int(pr.idx)+1 < len(s.phases) {
				subset := pr.subsetManaged
				pr.subsetManaged = granule.NewSet()
				cost += s.releaseSet(s.phases[int(pr.idx)+1], subset)
			}
		}
	}

	if pr.nComplete >= pr.total {
		if int(pr.idx) == s.current {
			pr.state = PhaseComplete
			s.current++
			cost += s.advance()
		} else {
			pr.state = PhaseComplete
		}
	}
	return cost
}
