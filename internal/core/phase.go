package core

import (
	"fmt"

	"repro/internal/enable"
	"repro/internal/granule"
)

// CostFn gives the virtual execution cost of one granule. The simulator
// sums it over a task's granules to obtain the task's duration. A nil
// CostFn means unit cost per granule.
type CostFn func(g granule.ID) Cost

// WorkFn performs the real computation of one granule; used by the
// goroutine executive. A nil WorkFn is a no-op (pure scheduling studies).
type WorkFn func(g granule.ID)

// Phase describes one parallel computational phase of a program.
type Phase struct {
	// Name identifies the phase; it must be unique within a Program and
	// is the name used by PAX-language DEFINE PHASE / DISPATCH / ENABLE.
	Name string
	// Granules is the number of indivisible parallel computations in the
	// phase. Must be >= 0; a zero-granule phase completes immediately.
	Granules int
	// Cost gives per-granule virtual cost (simulation); nil = 1 unit.
	Cost CostFn
	// Work performs the real per-granule computation (executive); may be nil.
	Work WorkFn
	// Enable declares the enablement mapping from THIS phase to the NEXT
	// phase in the program. nil means Null (no overlap possible).
	Enable *enable.Spec
	// SerialBefore, if non-nil, is a serial action that must run after
	// the predecessor phase completes and before this phase begins. Its
	// presence forces the predecessor's mapping to Null — this is the
	// paper's observed cause of all null mappings in CASPER ("serial
	// actions and decisions had to occur between the phases").
	SerialBefore func()
	// SerialCost is the virtual cost of SerialBefore, charged to the
	// management resource between the phases.
	SerialCost Cost
	// Lines is the phase's parallel source-line weight. It has no effect
	// on scheduling; the census experiment (E1) aggregates it exactly as
	// the paper reports lines of parallel code per mapping class.
	Lines int
}

// EnableKind returns the declared mapping kind (Null when no spec).
func (p *Phase) EnableKind() enable.Kind {
	if p.Enable == nil {
		return enable.Null
	}
	return p.Enable.Kind
}

// GranuleCost returns the virtual cost of granule g.
func (p *Phase) GranuleCost(g granule.ID) Cost {
	if p.Cost == nil {
		return 1
	}
	return p.Cost(g)
}

// TotalCost returns the summed virtual cost of all granules of the phase.
func (p *Phase) TotalCost() Cost {
	var sum Cost
	for g := 0; g < p.Granules; g++ {
		sum += p.GranuleCost(granule.ID(g))
	}
	return sum
}

// Program is a sequence of phases dispatched in order, with each phase's
// Enable spec describing its relation to the following phase. (The paper's
// branch-dependent dispatch is handled one level up: the PAX-language
// interpreter resolves branches and lowers the executed path into a linear
// Program, marking unresolvable successors as Null.)
type Program struct {
	Phases []*Phase
}

// NewProgram builds a program from phases and validates it.
func NewProgram(phases ...*Phase) (*Program, error) {
	p := &Program{Phases: phases}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the program's static well-formedness: unique names,
// non-negative granule counts, mapping specs that stay in range, and the
// serial-action/null-mapping consistency rule.
func (p *Program) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("core: program has no phases")
	}
	seen := make(map[string]bool, len(p.Phases))
	for i, ph := range p.Phases {
		if ph == nil {
			return fmt.Errorf("core: phase %d is nil", i)
		}
		if ph.Name == "" {
			return fmt.Errorf("core: phase %d has empty name", i)
		}
		if seen[ph.Name] {
			return fmt.Errorf("core: duplicate phase name %q", ph.Name)
		}
		seen[ph.Name] = true
		if ph.Granules < 0 {
			return fmt.Errorf("core: phase %q has negative granule count", ph.Name)
		}
		if ph.SerialCost < 0 {
			return fmt.Errorf("core: phase %q has negative serial cost", ph.Name)
		}
		if i+1 < len(p.Phases) {
			next := p.Phases[i+1]
			if ph.Enable != nil && ph.Enable.Kind != enable.Null {
				if next.SerialBefore != nil || next.SerialCost > 0 {
					return fmt.Errorf(
						"core: phase %q declares %v mapping but successor %q requires a serial action; the mapping must be null",
						ph.Name, ph.Enable.Kind, next.Name)
				}
				if err := ph.Enable.Validate(ph.Granules, next.Granules); err != nil {
					return fmt.Errorf("core: phase %q -> %q: %w", ph.Name, next.Name, err)
				}
			}
		} else if ph.Enable != nil && ph.Enable.Kind != enable.Null {
			return fmt.Errorf("core: final phase %q declares a successor mapping", ph.Name)
		}
	}
	return nil
}

// TotalGranules sums granule counts across phases.
func (p *Program) TotalGranules() int {
	n := 0
	for _, ph := range p.Phases {
		n += ph.Granules
	}
	return n
}

// TotalCost sums virtual granule costs across phases (excluding serial and
// management costs).
func (p *Program) TotalCost() Cost {
	var sum Cost
	for _, ph := range p.Phases {
		sum += ph.TotalCost()
	}
	return sum
}

// PhaseByName returns the index of the named phase, or -1.
func (p *Program) PhaseByName(name string) int {
	for i, ph := range p.Phases {
		if ph.Name == name {
			return i
		}
	}
	return -1
}
