package core

// inflightTable maps dispatched task IDs to their computation
// descriptions. It replaces a map[int]*desc on the hot dispatch/complete
// path: IDs are small, dense, positive ints (the scheduler's own
// monotonic counter), and every entry is inserted exactly once and
// removed exactly once, so a linear-probing table with backward-shift
// deletion does the same job with no hashing, no tombstones, and far
// less per-operation bookkeeping than the general map.
//
// ID 0 is never issued (nextID pre-increments), so a zero id marks an
// empty slot.
type inflightTable struct {
	slots []inflightSlot
	n     int
}

type inflightSlot struct {
	id int
	d  *desc
}

const inflightMinSize = 64 // power of two

// inflightHash spreads the sequential IDs across the table (Fibonacci
// hashing). Using the ID directly would map consecutive IDs to
// consecutive slots, forming one long probe run that makes
// backward-shift deletion O(live entries) instead of O(1).
func inflightHash(id, mask int) int {
	return int(uint64(id)*0x9E3779B97F4A7C15>>17) & mask
}

func (t *inflightTable) len() int { return t.n }

// put inserts id -> d. id must be non-zero and not present.
func (t *inflightTable) put(id int, d *desc) {
	if t.slots == nil {
		t.slots = make([]inflightSlot, inflightMinSize)
	} else if t.n*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := len(t.slots) - 1
	i := inflightHash(id, mask)
	for t.slots[i].id != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = inflightSlot{id: id, d: d}
	t.n++
}

// take removes and returns the description for id, or (nil, false) when
// id is not present.
func (t *inflightTable) take(id int) (*desc, bool) {
	if t.n == 0 {
		return nil, false
	}
	mask := len(t.slots) - 1
	i := inflightHash(id, mask)
	for {
		s := t.slots[i]
		if s.id == id {
			break
		}
		if s.id == 0 {
			return nil, false
		}
		i = (i + 1) & mask
	}
	d := t.slots[i].d
	t.n--

	// Backward-shift deletion: close the hole so probe chains stay
	// contiguous without tombstones.
	j := i
	for {
		j = (j + 1) & mask
		s := t.slots[j]
		if s.id == 0 {
			break
		}
		k := inflightHash(s.id, mask)
		// Slot j's entry may move into the hole at i only if its home
		// position k does not lie in the cyclic interval (i, j].
		if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = inflightSlot{}
	return d, true
}

func (t *inflightTable) grow() {
	old := t.slots
	t.slots = make([]inflightSlot, len(old)*2)
	mask := len(t.slots) - 1
	for _, s := range old {
		if s.id == 0 {
			continue
		}
		i := inflightHash(s.id, mask)
		for t.slots[i].id != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}
