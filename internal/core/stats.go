package core

// Stats counts the management operations a scheduler run performed and the
// management cost charged for them, by category. The simulator turns these
// costs into virtual time on the management server; the ratio of total
// granule cost to total management cost is the paper's computation-to-
// management ratio (observed "in the neighborhood of 200" for PAX/CASPER).
// The json tags pin the wire form inside the service daemon's job
// reports.
type Stats struct {
	Dispatches    int64 `json:"dispatches"`     // tasks handed to workers
	Splits        int64 `json:"splits"`         // description split operations
	Merges        int64 `json:"merges"`         // completion merges
	Completions   int64 `json:"completions"`    // task completions processed
	EnableTouches int64 `json:"enable_touches"` // enablement counters touched
	TableBuilds   int64 `json:"table_builds"`   // composite-map/table constructions
	TableEntries  int64 `json:"table_entries"`  // composite-map entries generated
	Releases      int64 `json:"releases"`       // successor descriptions released to the queue
	Elevations    int64 `json:"elevations"`     // descriptions manipulated for priority elevation
	DeferredItems int64 `json:"deferred_items"` // successor-splitting management tasks queued
	CatchUps      int64 `json:"catch_ups"`      // late-table catch-up completions processed

	// Cost charged to the management resource, by source.
	DispatchCost Cost `json:"dispatch_cost"`
	SplitCost    Cost `json:"split_cost"`
	CompleteCost Cost `json:"complete_cost"`
	TableCost    Cost `json:"table_cost"`
	ElevateCost  Cost `json:"elevate_cost"`
	DeferredCost Cost `json:"deferred_cost"`
	SerialCost   Cost `json:"serial_cost"`
}

// MgmtCost sums every management cost category (excluding serial actions,
// which the paper treats as algorithm content rather than overhead; use
// TotalCost for the sum including serial).
func (s Stats) MgmtCost() Cost {
	return s.DispatchCost + s.SplitCost + s.CompleteCost + s.TableCost +
		s.ElevateCost + s.DeferredCost
}

// TotalCost sums management and serial cost.
func (s Stats) TotalCost() Cost { return s.MgmtCost() + s.SerialCost }

// PhaseState is the lifecycle of a phase inside the scheduler.
type PhaseState uint8

const (
	// PhaseUnstarted: not yet activated; no granule may be dispatched.
	PhaseUnstarted PhaseState = iota
	// PhaseOverlapped: activated early by the overlap machinery; enabled
	// granules may be dispatched while the predecessor still runs.
	PhaseOverlapped
	// PhaseCurrent: the oldest incomplete phase.
	PhaseCurrent
	// PhaseComplete: all granules completed.
	PhaseComplete
)

func (ps PhaseState) String() string {
	switch ps {
	case PhaseUnstarted:
		return "unstarted"
	case PhaseOverlapped:
		return "overlapped"
	case PhaseCurrent:
		return "current"
	case PhaseComplete:
		return "complete"
	default:
		return "invalid"
	}
}
