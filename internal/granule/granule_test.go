package granule

import (
	"testing"
)

func TestRangeLenEmpty(t *testing.T) {
	cases := []struct {
		r     Range
		n     int
		empty bool
	}{
		{Range{}, 0, true},
		{R(3, 3), 0, true},
		{R(5, 2), 0, true},
		{R(0, 1), 1, false},
		{R(10, 25), 15, false},
	}
	for _, c := range cases {
		if got := c.r.Len(); got != c.n {
			t.Errorf("%v.Len() = %d, want %d", c.r, got, c.n)
		}
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := R(5, 10)
	for id := ID(0); id < 15; id++ {
		want := id >= 5 && id < 10
		if got := r.Contains(id); got != want {
			t.Errorf("Contains(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestRangeOverlapsAdjacent(t *testing.T) {
	cases := []struct {
		a, b               Range
		overlaps, adjacent bool
	}{
		{R(0, 5), R(5, 10), false, true},
		{R(5, 10), R(0, 5), false, true},
		{R(0, 5), R(4, 10), true, false},
		{R(0, 5), R(6, 10), false, false},
		{R(0, 5), R(2, 3), true, false},
		{R(0, 0), R(0, 5), false, true}, // empty ranges never overlap
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlaps)
		}
		if got := c.a.Adjacent(c.b); got != c.adjacent {
			t.Errorf("%v.Adjacent(%v) = %v, want %v", c.a, c.b, got, c.adjacent)
		}
	}
}

func TestRangeIntersect(t *testing.T) {
	cases := []struct{ a, b, want Range }{
		{R(0, 10), R(5, 15), R(5, 10)},
		{R(5, 15), R(0, 10), R(5, 10)},
		{R(0, 5), R(5, 10), R(5, 5)},
		{R(0, 5), R(7, 10), R(7, 7)},
		{R(0, 20), R(5, 10), R(5, 10)},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Canon() != c.want.Canon() {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRangeTakeFront(t *testing.T) {
	r := R(10, 20)
	front, rest := r.TakeFront(4)
	if front != R(10, 14) || rest != R(14, 20) {
		t.Fatalf("TakeFront(4) = %v, %v", front, rest)
	}
	front, rest = r.TakeFront(10)
	if front != r || !rest.Empty() {
		t.Fatalf("TakeFront(len) = %v, %v", front, rest)
	}
	front, rest = r.TakeFront(100)
	if front != r || !rest.Empty() {
		t.Fatalf("TakeFront(>len) = %v, %v", front, rest)
	}
	front, rest = r.TakeFront(0)
	if !front.Empty() || rest != r {
		t.Fatalf("TakeFront(0) = %v, %v", front, rest)
	}
}

func TestRangeSplitAt(t *testing.T) {
	r := R(10, 20)
	l, rr := r.SplitAt(15)
	if l != R(10, 15) || rr != R(15, 20) {
		t.Fatalf("SplitAt(15) = %v,%v", l, rr)
	}
	l, rr = r.SplitAt(5) // clamped
	if !l.Empty() || rr != r {
		t.Fatalf("SplitAt(clamp lo) = %v,%v", l, rr)
	}
	l, rr = r.SplitAt(25) // clamped
	if l != r || !rr.Empty() {
		t.Fatalf("SplitAt(clamp hi) = %v,%v", l, rr)
	}
}

func TestRangeChunks(t *testing.T) {
	r := R(0, 10)
	chunks := r.Chunks(3)
	want := []Range{R(0, 3), R(3, 6), R(6, 9), R(9, 10)}
	if len(chunks) != len(want) {
		t.Fatalf("Chunks(3) = %v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, chunks[i], want[i])
		}
	}
	if got := r.Chunks(0); len(got) != 10 {
		t.Errorf("Chunks(0) treated grain as 1, got %d chunks", len(got))
	}
	if got := (Range{}).Chunks(3); got != nil {
		t.Errorf("empty.Chunks = %v, want nil", got)
	}
}

func TestRangeIDsEach(t *testing.T) {
	r := R(3, 7)
	ids := r.IDs()
	want := []ID{3, 4, 5, 6}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Phase: 3, Granule: 17}
	if r.String() != "3:17" {
		t.Errorf("Ref.String = %q", r.String())
	}
}

func TestRangeString(t *testing.T) {
	if s := R(1, 4).String(); s != "[1,4)" {
		t.Errorf("String = %q", s)
	}
	if s := (Range{}).String(); s != "[)" {
		t.Errorf("empty String = %q", s)
	}
}

func TestSpan(t *testing.T) {
	if Span(12) != R(0, 12) {
		t.Errorf("Span(12) = %v", Span(12))
	}
}
