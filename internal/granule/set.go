package granule

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a set of granule IDs stored as an ordered list of disjoint,
// non-adjacent (coalesced) ranges. It is the workhorse behind ready-granule
// bookkeeping in the scheduler: phases touch granules in large contiguous
// runs, so an interval representation keeps both memory and scheduling cost
// proportional to fragmentation rather than granule count.
//
// The zero Set is an empty set ready for use. Set is not safe for concurrent
// use; the executive serializes access (as the serial PAX executive did).
type Set struct {
	runs []Range // sorted by Lo, pairwise disjoint and non-adjacent, none empty
}

// NewSet returns a set containing the given ranges.
func NewSet(rs ...Range) *Set {
	s := &Set{}
	for _, r := range rs {
		s.AddRange(r)
	}
	return s
}

// Len reports the number of granules in the set.
func (s *Set) Len() int {
	n := 0
	for _, r := range s.runs {
		n += r.Len()
	}
	return n
}

// Empty reports whether the set contains no granules.
func (s *Set) Empty() bool { return len(s.runs) == 0 }

// Runs returns the coalesced ranges of the set in ascending order. The
// returned slice is a copy and may be retained by the caller.
func (s *Set) Runs() []Range {
	out := make([]Range, len(s.runs))
	copy(out, s.runs)
	return out
}

// NumRuns reports the fragmentation of the set: the number of maximal
// contiguous runs it is stored as.
func (s *Set) NumRuns() int { return len(s.runs) }

// Contains reports whether id is in the set.
func (s *Set) Contains(id ID) bool {
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > id })
	return i < len(s.runs) && s.runs[i].Contains(id)
}

// ContainsRange reports whether every granule of r is in the set.
func (s *Set) ContainsRange(r Range) bool {
	if r.Empty() {
		return true
	}
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > r.Lo })
	return i < len(s.runs) && s.runs[i].Lo <= r.Lo && r.Hi <= s.runs[i].Hi
}

// Add inserts a single granule.
func (s *Set) Add(id ID) { s.AddRange(Range{Lo: id, Hi: id + 1}) }

// AddRange inserts every granule of r, coalescing with existing runs.
func (s *Set) AddRange(r Range) {
	if r.Empty() {
		return
	}
	// Find the window of runs that overlap or are adjacent to r.
	lo := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi >= r.Lo })
	hi := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Lo > r.Hi })
	if lo == hi {
		// No overlap/adjacency: plain insertion.
		s.runs = append(s.runs, Range{})
		copy(s.runs[lo+1:], s.runs[lo:])
		s.runs[lo] = r
		return
	}
	merged := r
	if s.runs[lo].Lo < merged.Lo {
		merged.Lo = s.runs[lo].Lo
	}
	if s.runs[hi-1].Hi > merged.Hi {
		merged.Hi = s.runs[hi-1].Hi
	}
	s.runs[lo] = merged
	s.runs = append(s.runs[:lo+1], s.runs[hi:]...)
}

// Remove deletes a single granule if present.
func (s *Set) Remove(id ID) { s.RemoveRange(Range{Lo: id, Hi: id + 1}) }

// RemoveRange deletes every granule of r that is present.
func (s *Set) RemoveRange(r Range) {
	if r.Empty() || len(s.runs) == 0 {
		return
	}
	lo := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > r.Lo })
	hi := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Lo >= r.Hi })
	if lo >= hi {
		return
	}
	var repl []Range
	left := Range{Lo: s.runs[lo].Lo, Hi: r.Lo}
	right := Range{Lo: r.Hi, Hi: s.runs[hi-1].Hi}
	if !left.Empty() {
		repl = append(repl, left)
	}
	if !right.Empty() {
		repl = append(repl, right)
	}
	tail := s.runs[hi:]
	s.runs = append(s.runs[:lo], append(repl, tail...)...)
}

// TakeFront removes and returns up to n granules from the lowest-numbered
// run of the set. It returns the removed range; the range is empty when the
// set is empty. Splitting always honours run boundaries: the returned range
// is contiguous in the set, which mirrors PAX splitting a description rather
// than scattering granules.
func (s *Set) TakeFront(n int) Range {
	if len(s.runs) == 0 || n <= 0 {
		return Range{}
	}
	front, rest := s.runs[0].TakeFront(n)
	if rest.Empty() {
		s.runs = s.runs[1:]
	} else {
		s.runs[0] = rest
	}
	return front
}

// PopRun removes and returns the lowest-numbered maximal run (the whole
// first description), or an empty range if the set is empty.
func (s *Set) PopRun() Range {
	if len(s.runs) == 0 {
		return Range{}
	}
	r := s.runs[0]
	s.runs = s.runs[1:]
	return r
}

// Min returns the smallest granule in the set; ok is false when empty.
func (s *Set) Min() (id ID, ok bool) {
	if len(s.runs) == 0 {
		return 0, false
	}
	return s.runs[0].Lo, true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{runs: make([]Range, len(s.runs))}
	copy(c.runs, s.runs)
	return c
}

// Equal reports whether s and t contain exactly the same granules.
func (s *Set) Equal(t *Set) bool {
	if len(s.runs) != len(t.runs) {
		return false
	}
	for i, r := range s.runs {
		if r != t.runs[i] {
			return false
		}
	}
	return true
}

// Union adds every granule of t into s.
func (s *Set) Union(t *Set) {
	for _, r := range t.runs {
		s.AddRange(r)
	}
}

// Subtract removes every granule of t from s.
func (s *Set) Subtract(t *Set) {
	for _, r := range t.runs {
		s.RemoveRange(r)
	}
}

// IntersectsRange reports whether any granule of r is in the set. It is
// IntersectRange(r).Empty() negated, without materializing a set — the
// dispatch path's double-dispatch guard runs once per task and must not
// allocate.
func (s *Set) IntersectsRange(r Range) bool {
	if r.Empty() {
		return false
	}
	lo := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > r.Lo })
	return lo < len(s.runs) && s.runs[lo].Lo < r.Hi
}

// CountRange reports how many granules of r are in the set, without
// materializing the intersection.
func (s *Set) CountRange(r Range) int {
	if r.Empty() {
		return 0
	}
	n := 0
	lo := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > r.Lo })
	for i := lo; i < len(s.runs) && s.runs[i].Lo < r.Hi; i++ {
		n += s.runs[i].Intersect(r).Len()
	}
	return n
}

// IntersectRange returns the granules of s that lie inside r, as a new set.
func (s *Set) IntersectRange(r Range) *Set {
	out := &Set{}
	if r.Empty() {
		return out
	}
	lo := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > r.Lo })
	for i := lo; i < len(s.runs) && s.runs[i].Lo < r.Hi; i++ {
		if x := s.runs[i].Intersect(r); !x.Empty() {
			out.runs = append(out.runs, x)
		}
	}
	return out
}

// Each calls f for every granule in ascending order.
func (s *Set) Each(f func(ID)) {
	for _, r := range s.runs {
		r.Each(f)
	}
}

// IDs returns all granule IDs in ascending order (tests and small sets).
func (s *Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	s.Each(func(id ID) { out = append(out, id) })
	return out
}

// String renders the set as "{[0,5) [9,10)}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.runs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprint(&b, r)
	}
	b.WriteByte('}')
	return b.String()
}

// check verifies the internal invariants; used by tests.
func (s *Set) check() error {
	for i, r := range s.runs {
		if r.Empty() {
			return fmt.Errorf("run %d empty: %v", i, r)
		}
		if i > 0 && s.runs[i-1].Hi >= r.Lo {
			return fmt.Errorf("runs %d,%d not disjoint/coalesced: %v %v", i-1, i, s.runs[i-1], r)
		}
	}
	return nil
}
