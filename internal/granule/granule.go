// Package granule defines the identifier and interval types used throughout
// the reproduction of Jones's 1986 phase-overlap system (NASA TM-87349).
//
// In the paper's terminology a parallel program is divided into sequential
// *phases*; each phase consists of *granules*, the indivisible units of
// parallel computation. The PAX executive described large contiguous
// collections of granules as single "computation descriptions" that were
// split apart on demand to produce conveniently sized tasks for workers and
// merged back when the work completed. This package provides the value types
// for that machinery: granule and phase identifiers, half-open contiguous
// ranges, and coalescing interval sets.
package granule

import "fmt"

// ID identifies a single granule within one phase. Granules of a phase with
// n granules are numbered 0..n-1.
type ID int

// PhaseID identifies a phase within a program. Phases of a program with k
// phases are numbered 0..k-1 in dispatch order.
type PhaseID int

// Ref names one granule of one phase.
type Ref struct {
	Phase   PhaseID
	Granule ID
}

// String returns "phase:granule", e.g. "3:17".
func (r Ref) String() string { return fmt.Sprintf("%d:%d", r.Phase, r.Granule) }

// Range is a half-open contiguous interval [Lo, Hi) of granule IDs. The
// zero Range is empty. A Range with Hi <= Lo is treated as empty.
type Range struct {
	Lo, Hi ID
}

// R constructs the range [lo, hi).
func R(lo, hi ID) Range { return Range{Lo: lo, Hi: hi} }

// Span constructs the range [0, n) covering a whole phase of n granules.
func Span(n int) Range { return Range{Lo: 0, Hi: ID(n)} }

// Len reports the number of granules in the range.
func (r Range) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return int(r.Hi - r.Lo)
}

// Empty reports whether the range contains no granules.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether id lies inside the range.
func (r Range) Contains(id ID) bool { return id >= r.Lo && id < r.Hi }

// Overlaps reports whether r and s share at least one granule.
func (r Range) Overlaps(s Range) bool {
	return !r.Empty() && !s.Empty() && r.Lo < s.Hi && s.Lo < r.Hi
}

// Adjacent reports whether r and s touch without overlapping, so that their
// union is a single contiguous range.
func (r Range) Adjacent(s Range) bool { return r.Hi == s.Lo || s.Hi == r.Lo }

// Intersect returns the common sub-range of r and s (possibly empty).
func (r Range) Intersect(s Range) Range {
	lo, hi := r.Lo, r.Hi
	if s.Lo > lo {
		lo = s.Lo
	}
	if s.Hi < hi {
		hi = s.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Range{Lo: lo, Hi: hi}
}

// TakeFront splits off the first n granules of the range. It returns the
// front part (at most n granules) and the remainder. This models PAX's
// demand-driven splitting of a computation description when an idle worker
// presents itself.
func (r Range) TakeFront(n int) (front, rest Range) {
	if n <= 0 || r.Empty() {
		return Range{Lo: r.Lo, Hi: r.Lo}, r
	}
	if n >= r.Len() {
		return r, Range{Lo: r.Hi, Hi: r.Hi}
	}
	mid := r.Lo + ID(n)
	return Range{Lo: r.Lo, Hi: mid}, Range{Lo: mid, Hi: r.Hi}
}

// SplitAt splits the range at granule id, returning [Lo,id) and [id,Hi).
// id is clamped into the range.
func (r Range) SplitAt(id ID) (left, right Range) {
	if id < r.Lo {
		id = r.Lo
	}
	if id > r.Hi {
		id = r.Hi
	}
	return Range{Lo: r.Lo, Hi: id}, Range{Lo: id, Hi: r.Hi}
}

// Chunks divides the range into consecutive sub-ranges of at most grain
// granules each. grain <= 0 is treated as 1. This models pre-splitting a
// description into worker-sized tasks ahead of demand.
func (r Range) Chunks(grain int) []Range {
	if grain <= 0 {
		grain = 1
	}
	if r.Empty() {
		return nil
	}
	out := make([]Range, 0, (r.Len()+grain-1)/grain)
	for lo := r.Lo; lo < r.Hi; lo += ID(grain) {
		hi := lo + ID(grain)
		if hi > r.Hi {
			hi = r.Hi
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// Each calls f for every granule ID in the range in ascending order.
func (r Range) Each(f func(ID)) {
	for id := r.Lo; id < r.Hi; id++ {
		f(id)
	}
}

// IDs returns the granule IDs of the range in ascending order. Intended for
// tests and small ranges; large ranges should use Each or arithmetic.
func (r Range) IDs() []ID {
	out := make([]ID, 0, r.Len())
	r.Each(func(id ID) { out = append(out, id) })
	return out
}

// Canon returns the canonical form of the range: empty ranges normalize to
// the zero Range so that all empty ranges compare equal.
func (r Range) Canon() Range {
	if r.Empty() {
		return Range{}
	}
	return r
}

// String returns "[lo,hi)".
func (r Range) String() string {
	if r.Empty() {
		return "[)"
	}
	return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi)
}
