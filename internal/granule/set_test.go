package granule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func setOf(t *testing.T, rs ...Range) *Set {
	t.Helper()
	s := NewSet(rs...)
	if err := s.check(); err != nil {
		t.Fatalf("invariant after NewSet(%v): %v", rs, err)
	}
	return s
}

func TestSetAddCoalesce(t *testing.T) {
	s := setOf(t, R(0, 5), R(10, 15))
	if s.NumRuns() != 2 || s.Len() != 10 {
		t.Fatalf("set = %v", s)
	}
	s.AddRange(R(5, 10)) // bridges the gap
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
	if s.NumRuns() != 1 || s.Len() != 15 {
		t.Fatalf("after bridge: %v", s)
	}
}

func TestSetAddAdjacent(t *testing.T) {
	s := setOf(t)
	s.AddRange(R(0, 3))
	s.AddRange(R(3, 6)) // adjacent: must coalesce
	if s.NumRuns() != 1 {
		t.Fatalf("adjacent not coalesced: %v", s)
	}
}

func TestSetAddOverlapping(t *testing.T) {
	s := setOf(t, R(2, 8))
	s.AddRange(R(0, 4))
	s.AddRange(R(6, 12))
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
	if s.NumRuns() != 1 || !s.ContainsRange(R(0, 12)) || s.Len() != 12 {
		t.Fatalf("set = %v", s)
	}
}

func TestSetRemoveMiddle(t *testing.T) {
	s := setOf(t, R(0, 10))
	s.RemoveRange(R(3, 7))
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 || s.NumRuns() != 2 || s.Contains(3) || s.Contains(6) || !s.Contains(2) || !s.Contains(7) {
		t.Fatalf("set = %v", s)
	}
}

func TestSetRemoveSpanningRuns(t *testing.T) {
	s := setOf(t, R(0, 4), R(6, 10), R(12, 16))
	s.RemoveRange(R(2, 14))
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || !s.ContainsRange(R(0, 2)) || !s.ContainsRange(R(14, 16)) {
		t.Fatalf("set = %v", s)
	}
}

func TestSetRemoveDisjoint(t *testing.T) {
	s := setOf(t, R(0, 4))
	s.RemoveRange(R(6, 10))
	if s.Len() != 4 {
		t.Fatalf("set = %v", s)
	}
	s.RemoveRange(Range{})
	if s.Len() != 4 {
		t.Fatalf("set = %v", s)
	}
}

func TestSetTakeFront(t *testing.T) {
	s := setOf(t, R(0, 5), R(10, 12))
	got := s.TakeFront(3)
	if got != R(0, 3) || s.Len() != 4 {
		t.Fatalf("TakeFront(3) = %v, set %v", got, s)
	}
	got = s.TakeFront(10) // honours run boundary: only rest of first run
	if got != R(3, 5) || s.Len() != 2 {
		t.Fatalf("TakeFront(10) = %v, set %v", got, s)
	}
	got = s.TakeFront(2)
	if got != R(10, 12) || !s.Empty() {
		t.Fatalf("TakeFront = %v, set %v", got, s)
	}
	if got = s.TakeFront(1); !got.Empty() {
		t.Fatalf("TakeFront on empty = %v", got)
	}
}

func TestSetPopRun(t *testing.T) {
	s := setOf(t, R(3, 5), R(8, 9))
	if r := s.PopRun(); r != R(3, 5) {
		t.Fatalf("PopRun = %v", r)
	}
	if r := s.PopRun(); r != R(8, 9) {
		t.Fatalf("PopRun = %v", r)
	}
	if r := s.PopRun(); !r.Empty() {
		t.Fatalf("PopRun on empty = %v", r)
	}
}

func TestSetMin(t *testing.T) {
	s := setOf(t, R(7, 9))
	if id, ok := s.Min(); !ok || id != 7 {
		t.Fatalf("Min = %v,%v", id, ok)
	}
	if _, ok := (&Set{}).Min(); ok {
		t.Fatal("Min on empty reported ok")
	}
}

func TestSetUnionSubtractIntersect(t *testing.T) {
	a := setOf(t, R(0, 10))
	b := setOf(t, R(5, 15))
	a.Union(b)
	if a.Len() != 15 {
		t.Fatalf("union = %v", a)
	}
	a.Subtract(setOf(t, R(0, 5)))
	if a.Len() != 10 || a.Contains(4) {
		t.Fatalf("subtract = %v", a)
	}
	x := a.IntersectRange(R(8, 12))
	if x.Len() != 4 || !x.ContainsRange(R(8, 12)) {
		t.Fatalf("intersect = %v", x)
	}
}

func TestSetCloneEqual(t *testing.T) {
	a := setOf(t, R(0, 4), R(9, 12))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(100)
	if a.Equal(b) {
		t.Fatal("mutating clone affected original equality")
	}
	if a.Contains(100) {
		t.Fatal("clone shares storage with original")
	}
}

func TestSetString(t *testing.T) {
	s := setOf(t, R(0, 5), R(9, 10))
	if got := s.String(); got != "{[0,5) [9,10)}" {
		t.Errorf("String = %q", got)
	}
}

// refSet is a simple map-based model for property testing.
type refSet map[ID]bool

func (m refSet) addRange(r Range)    { r.Each(func(id ID) { m[id] = true }) }
func (m refSet) removeRange(r Range) { r.Each(func(id ID) { delete(m, id) }) }

func (m refSet) equal(s *Set) bool {
	if len(m) != s.Len() {
		return false
	}
	for id := range m {
		if !s.Contains(id) {
			return false
		}
	}
	return true
}

// TestSetQuickAgainstModel drives random Add/Remove/TakeFront sequences and
// checks the interval set against a map-based model plus its own invariants.
func TestSetQuickAgainstModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Set{}
		m := refSet{}
		for _, raw := range opsRaw {
			op := int(raw) % 3
			lo := ID(rng.Intn(64))
			length := rng.Intn(16)
			r := R(lo, lo+ID(length))
			switch op {
			case 0:
				s.AddRange(r)
				m.addRange(r)
			case 1:
				s.RemoveRange(r)
				m.removeRange(r)
			case 2:
				got := s.TakeFront(length)
				// model: remove the same granules
				m.removeRange(got)
				if got.Len() > length && length > 0 {
					return false
				}
			}
			if err := s.check(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			if !m.equal(s) {
				t.Logf("model mismatch: set=%v model-len=%d", s, len(m))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetQuickSplitMergeRoundTrip checks the paper's split/merge contract:
// splitting a description into chunks and adding them back in any order
// reconstructs exactly the original description.
func TestSetQuickSplitMergeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, grain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n)%500 + 1
		g := int(grain)%37 + 1
		orig := Span(total)
		chunks := orig.Chunks(g)
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		s := &Set{}
		for _, c := range chunks {
			s.AddRange(c)
		}
		if err := s.check(); err != nil {
			return false
		}
		return s.NumRuns() == 1 && s.ContainsRange(orig) && s.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetAddRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := &Set{}
		for j := 0; j < 128; j++ {
			lo := ID((j * 37) % 1024)
			s.AddRange(R(lo, lo+8))
		}
	}
}

func BenchmarkSetTakeFront(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSet(Span(4096))
		for !s.Empty() {
			s.TakeFront(64)
		}
	}
}
