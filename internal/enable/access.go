package enable

import (
	"fmt"
	"sort"

	"repro/internal/granule"
)

// Effect names one shared-array element touched by a granule: element Idx
// of array Var. Granule footprints over such effects are the concrete form
// of the paper's abstract predicate PARALLEL(x, y).
type Effect struct {
	Var string
	Idx int
}

func (e Effect) String() string { return fmt.Sprintf("%s[%d]", e.Var, e.Idx) }

// Footprint is the declared shared-data access set of one granule.
type Footprint struct {
	Reads  []Effect
	Writes []Effect
}

// AccessFn returns the footprint of granule g of a phase. It must be pure.
type AccessFn func(g granule.ID) Footprint

// Parallel is the logical predicate PARALLEL(x, y): two computations may
// execute in parallel iff neither writes an element the other reads or
// writes (Bernstein's conditions over the declared footprints). The paper
// leaves the predicate's exact nature open — "different parallel systems
// may identify different logical predicates" — and this implementation
// chooses the classical data-dependence form.
func Parallel(x, y Footprint) bool {
	return !touches(x.Writes, y.Writes) &&
		!touches(x.Writes, y.Reads) &&
		!touches(x.Reads, y.Writes)
}

func touches(a, b []Effect) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[Effect]struct{}, len(a))
	for _, e := range a {
		set[e] = struct{}{}
	}
	for _, e := range b {
		if _, ok := set[e]; ok {
			return true
		}
	}
	return false
}

// Conflicts returns the dependence relation between a predecessor phase
// (nPred granules with footprint pred) and a successor phase (nSucc
// granules with footprint succ): deps[r] lists predecessor granules q with
// !PARALLEL(q, r), ascending. Exhaustive — intended for verification and
// inference on test-sized phases.
func Conflicts(pred AccessFn, nPred int, succ AccessFn, nSucc int) [][]granule.ID {
	pf := make([]Footprint, nPred)
	for q := 0; q < nPred; q++ {
		pf[q] = pred(granule.ID(q))
	}
	deps := make([][]granule.ID, nSucc)
	for r := 0; r < nSucc; r++ {
		sf := succ(granule.ID(r))
		for q := 0; q < nPred; q++ {
			if !Parallel(pf[q], sf) {
				deps[r] = append(deps[r], granule.ID(q))
			}
		}
	}
	return deps
}

// Verify checks the paper's overlap-correctness condition for a declared
// mapping: let q be any uncompleted current-phase granule and r a successor
// granule enabled after completing exactly the granules the mapping demands
// for r; then PARALLEL(q, r) must hold. Equivalently, every true dependence
// of r on q must be covered by the mapping's requirement set for r.
//
// Verify is exhaustive in nPred x nSucc and meant for tests and for the
// paxrun --verify mode on reduced problem sizes.
func Verify(spec *Spec, pred AccessFn, nPred int, succ AccessFn, nSucc int) error {
	if spec == nil {
		spec = NewNull()
	}
	if err := spec.Validate(nPred, nSucc); err != nil {
		return err
	}
	if spec.Kind == Null {
		return nil // no overlap declared, nothing to prove
	}
	deps := Conflicts(pred, nPred, succ, nSucc)
	for r := 0; r < nSucc; r++ {
		req := requirementSet(spec, granule.ID(r), nPred)
		for _, q := range deps[r] {
			if !req[q] {
				return fmt.Errorf(
					"enable: %v mapping unsound: successor granule %d depends on current granule %d, which the mapping does not require",
					spec.Kind, r, q)
			}
		}
	}
	return nil
}

// requirementSet returns the set of current granules whose completion the
// mapping demands before enabling successor granule r.
func requirementSet(spec *Spec, r granule.ID, nPred int) map[granule.ID]bool {
	req := make(map[granule.ID]bool)
	switch spec.Kind {
	case Universal:
		// empty
	case Identity:
		if int(r) < nPred {
			req[r] = true
		}
	case ForwardIndirect:
		for p := 0; p < nPred; p++ {
			for _, rr := range spec.Forward(granule.ID(p)) {
				if rr == r {
					req[granule.ID(p)] = true
				}
			}
		}
	case ReverseIndirect, Seam:
		for _, p := range spec.Requires(r) {
			req[p] = true
		}
	}
	return req
}

// Infer classifies the enablement relation of a phase pair from footprints
// alone, choosing the simplest sound mapping kind:
//
//   - Universal when no successor granule depends on any current granule;
//   - Identity when every dependence is of the form r -> r;
//   - ForwardIndirect when every current granule conflicts with at most one
//     successor granule (a single-valued forward map exists);
//   - ReverseIndirect otherwise.
//
// Null cannot be inferred from footprints: it arises from serial actions
// and decisions between phases, which the caller must declare.
func Infer(pred AccessFn, nPred int, succ AccessFn, nSucc int) (Kind, *Spec) {
	deps := Conflicts(pred, nPred, succ, nSucc)

	total := 0
	identityOnly := true
	for r, qs := range deps {
		total += len(qs)
		for _, q := range qs {
			if int(q) != r {
				identityOnly = false
			}
		}
	}
	if total == 0 {
		return Universal, NewUniversal()
	}
	if identityOnly {
		return Identity, NewIdentity()
	}

	// Forward map: invert deps to predecessor -> successors.
	bySource := make([][]granule.ID, nPred)
	for r, qs := range deps {
		for _, q := range qs {
			bySource[q] = append(bySource[q], granule.ID(r))
		}
	}
	functional := true
	for _, succs := range bySource {
		if len(succs) > 1 {
			functional = false
			break
		}
	}
	if functional {
		fwd := make([][]granule.ID, nPred)
		for p := range bySource {
			fwd[p] = bySource[p]
		}
		return ForwardIndirect, NewForward(func(p granule.ID) []granule.ID {
			if int(p) >= len(fwd) {
				return nil
			}
			return fwd[p]
		})
	}

	reqs := make([][]granule.ID, nSucc)
	for r := range deps {
		reqs[r] = append([]granule.ID(nil), deps[r]...)
		sort.Slice(reqs[r], func(i, j int) bool { return reqs[r][i] < reqs[r][j] })
	}
	return ReverseIndirect, NewReverse(func(r granule.ID) []granule.ID {
		if int(r) >= len(reqs) {
			return nil
		}
		return reqs[r]
	})
}
