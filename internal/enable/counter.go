package enable

import "fmt"

// Counter is the paper's all-of enablement mechanism for successor-phase
// subsets: "during completion processing, a status bit (set when the
// current-phase granules were identified and split into individual
// descriptions) can be checked and, if it is set, an enablement counter
// decremented. When the enablement counter reaches zero, it can be taken as
// a signal that the successor-phase granules are computable."
//
// The successor subset cannot be queued on any single current-phase
// description "since it is enabled not by the completion of any one such
// granule but by the completion of all the identified granules" — hence the
// counter. The zero Counter is unarmed; Arm it before use.
type Counter struct {
	remaining int
	armed     bool // the paper's status bit
	fired     bool
}

// Arm sets the status bit and initializes the counter to n outstanding
// completions. Arming with n <= 0 fires immediately on the first Check.
func (c *Counter) Arm(n int) {
	c.remaining = n
	c.armed = true
	c.fired = false
}

// Armed reports the status bit.
func (c *Counter) Armed() bool { return c.armed }

// Remaining reports the outstanding completion count.
func (c *Counter) Remaining() int { return c.remaining }

// Dec records one completion of an identified current-phase granule. It
// returns true exactly once: when the counter reaches zero, signalling that
// the successor-phase subset is computable. Dec on an unarmed counter is a
// no-op returning false (the status bit is clear, so completion processing
// skips it).
func (c *Counter) Dec() bool {
	if !c.armed || c.fired {
		return false
	}
	c.remaining--
	if c.remaining <= 0 {
		c.fired = true
		c.armed = false
		return true
	}
	return false
}

// Fired reports whether the counter has already signalled.
func (c *Counter) Fired() bool { return c.fired }

func (c *Counter) String() string {
	return fmt.Sprintf("Counter{armed:%v remaining:%d fired:%v}", c.armed, c.remaining, c.fired)
}
