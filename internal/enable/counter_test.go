package enable

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if c.Armed() || c.Fired() {
		t.Fatal("zero counter should be unarmed and unfired")
	}
	if c.Dec() {
		t.Fatal("Dec on unarmed counter fired")
	}
	c.Arm(3)
	if !c.Armed() || c.Remaining() != 3 {
		t.Fatalf("after Arm: %v", c.String())
	}
	if c.Dec() || c.Dec() {
		t.Fatal("fired before reaching zero")
	}
	if !c.Dec() {
		t.Fatal("did not fire at zero")
	}
	if !c.Fired() || c.Armed() {
		t.Fatalf("after firing: %v", c.String())
	}
	if c.Dec() {
		t.Fatal("fired twice")
	}
}

func TestCounterArmZero(t *testing.T) {
	var c Counter
	c.Arm(0)
	if !c.Dec() {
		t.Fatal("Arm(0) should fire on first Dec")
	}
}

func TestCounterRearm(t *testing.T) {
	var c Counter
	c.Arm(1)
	if !c.Dec() {
		t.Fatal("no fire")
	}
	c.Arm(2)
	if c.Fired() || !c.Armed() || c.Remaining() != 2 {
		t.Fatalf("rearm: %v", c.String())
	}
	c.Dec()
	if !c.Dec() {
		t.Fatal("rearmed counter did not fire")
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	c.Arm(2)
	if s := c.String(); !strings.Contains(s, "remaining:2") {
		t.Errorf("String = %q", s)
	}
}

// TestCounterQuickFiresExactlyOnce: an armed counter fires exactly once
// regardless of how many extra Decs arrive.
func TestCounterQuickFiresExactlyOnce(t *testing.T) {
	f := func(nRaw uint8, extraRaw uint8) bool {
		n := int(nRaw)%50 + 1
		extra := int(extraRaw) % 20
		var c Counter
		c.Arm(n)
		fires := 0
		for i := 0; i < n+extra; i++ {
			if c.Dec() {
				fires++
			}
		}
		return fires == 1 && c.Fired()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
