package enable

import "testing"

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Null:            "null",
		Universal:       "universal",
		Identity:        "identity",
		ForwardIndirect: "forward-indirect",
		ReverseIndirect: "reverse-indirect",
		Seam:            "seam",
		Kind(200):       "Kind(200)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"null": Null, "NULL": Null,
		"universal": Universal, "UNIVERSAL": Universal,
		"identity": Identity, "direct": Identity, "IDENTITY": Identity, "DIRECT": Identity,
		"forward-indirect": ForwardIndirect, "forward": ForwardIndirect, "FORWARD": ForwardIndirect,
		"reverse-indirect": ReverseIndirect, "reverse": ReverseIndirect, "REVERSE": ReverseIndirect,
		"seam": Seam, "SEAM": Seam,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) did not fail")
	}
}

func TestKindPredicates(t *testing.T) {
	if Null.Overlappable() {
		t.Error("Null should not be overlappable")
	}
	for _, k := range []Kind{Universal, Identity, ForwardIndirect, ReverseIndirect, Seam} {
		if !k.Overlappable() {
			t.Errorf("%v should be overlappable", k)
		}
	}
	if !Universal.Simple() || !Identity.Simple() {
		t.Error("universal/identity should be simple")
	}
	if ForwardIndirect.Simple() || Null.Simple() {
		t.Error("forward/null should not be simple")
	}
	for _, k := range []Kind{ForwardIndirect, ReverseIndirect, Seam} {
		if !k.Indirect() {
			t.Errorf("%v should be indirect", k)
		}
	}
	if Universal.Indirect() || Identity.Indirect() || Null.Indirect() {
		t.Error("simple/null kinds must not be indirect")
	}
	if len(Kinds()) != NumKinds {
		t.Errorf("Kinds() has %d entries, want %d", len(Kinds()), NumKinds)
	}
}
