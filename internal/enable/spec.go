package enable

import (
	"fmt"

	"repro/internal/granule"
)

// ForwardFn maps a completed current-phase granule to the successor
// granules it enables (the paper's forward information selection map; a
// single-valued IMAP yields one-element slices). It must be pure.
type ForwardFn func(p granule.ID) []granule.ID

// RequiresFn maps a successor granule to the current-phase granules that
// must all complete before it is enabled (the paper's reverse mapping "from
// desired second phase granule to required first phase granules"). It must
// be pure.
type RequiresFn func(r granule.ID) []granule.ID

// Spec declares the enablement relation from one phase to its successor.
// Construct Specs with the NewXxx constructors, which enforce that the
// mapping functions required by each kind are present.
type Spec struct {
	Kind Kind
	// Forward is consulted for ForwardIndirect specs.
	Forward ForwardFn
	// Requires is consulted for ReverseIndirect and Seam specs.
	Requires RequiresFn
}

// NewNull returns the mapping that forbids overlap.
func NewNull() *Spec { return &Spec{Kind: Null} }

// NewUniversal returns the mapping that permits total overlap.
func NewUniversal() *Spec { return &Spec{Kind: Universal} }

// NewIdentity returns the direct mapping I = I.
func NewIdentity() *Spec { return &Spec{Kind: Identity} }

// NewForward returns a forward indirect mapping driven by f.
func NewForward(f ForwardFn) *Spec {
	if f == nil {
		panic("enable: NewForward requires a map function")
	}
	return &Spec{Kind: ForwardIndirect, Forward: f}
}

// NewForwardIMAP adapts a single-valued integer map (the paper's
// IMAP array) into a forward indirect mapping: completing current granule p
// enables successor granule imap[p].
func NewForwardIMAP(imap []granule.ID) *Spec {
	return NewForward(func(p granule.ID) []granule.ID {
		if int(p) >= len(imap) {
			return nil
		}
		return []granule.ID{imap[p]}
	})
}

// NewReverse returns a reverse indirect mapping driven by requires.
func NewReverse(requires RequiresFn) *Spec {
	if requires == nil {
		panic("enable: NewReverse requires a map function")
	}
	return &Spec{Kind: ReverseIndirect, Requires: requires}
}

// NewReverseIMAP adapts the paper's second Fortran fragment: successor
// granule r sums A(IMAP(j, r)) for j in 0..fan-1, so it requires the
// current-phase granules imap[r*fan : (r+1)*fan].
func NewReverseIMAP(imap []granule.ID, fan int) *Spec {
	if fan <= 0 {
		panic("enable: NewReverseIMAP fan must be positive")
	}
	return NewReverse(func(r granule.ID) []granule.ID {
		lo := int(r) * fan
		hi := lo + fan
		if lo >= len(imap) {
			return nil
		}
		if hi > len(imap) {
			hi = len(imap)
		}
		return imap[lo:hi]
	})
}

// NewSeam returns the structured stencil mapping: successor granule r
// requires the current-phase granules returned by neighbours(r).
func NewSeam(neighbours RequiresFn) *Spec {
	if neighbours == nil {
		panic("enable: NewSeam requires a neighbour function")
	}
	return &Spec{Kind: Seam, Requires: neighbours}
}

// Validate checks that the spec's functions, evaluated over nPred current
// granules and nSucc successor granules, stay in range. It returns the
// first out-of-range reference found.
func (s *Spec) Validate(nPred, nSucc int) error {
	switch s.Kind {
	case Null, Universal, Identity:
		return nil
	case ForwardIndirect:
		if s.Forward == nil {
			return fmt.Errorf("enable: %v spec missing Forward function", s.Kind)
		}
		for p := 0; p < nPred; p++ {
			for _, r := range s.Forward(granule.ID(p)) {
				if r < 0 || int(r) >= nSucc {
					return fmt.Errorf("enable: forward map sends %d to %d, outside successor [0,%d)", p, r, nSucc)
				}
			}
		}
		return nil
	case ReverseIndirect, Seam:
		if s.Requires == nil {
			return fmt.Errorf("enable: %v spec missing Requires function", s.Kind)
		}
		for r := 0; r < nSucc; r++ {
			for _, p := range s.Requires(granule.ID(r)) {
				if p < 0 || int(p) >= nPred {
					return fmt.Errorf("enable: requires map for %d names %d, outside predecessor [0,%d)", r, p, nPred)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("enable: invalid kind %v", s.Kind)
}
