package enable

import (
	"fmt"

	"repro/internal/granule"
)

// Table is the runtime enablement state for one phase pair: the paper's
// "composite map of first phase granules that must be completed in order to
// enable a particular second phase granule", plus the enablement counters
// used during completion processing.
//
// Build charges a management cost proportional to the number of map entries
// generated — the paper warns that "extensive composite granule map
// generation could be self defeating" when executive computation comes at
// the direct expense of worker computation. The scheduler charges that cost
// to the management resource.
//
// Table is not safe for concurrent use; the (serial) executive owns it.
type Table struct {
	kind         Kind
	nPred, nSucc int

	// remaining[r] is the enablement counter for successor granule r:
	// the number of not-yet-completed current granules it still requires.
	// Only allocated for indirect kinds.
	remaining []int32

	// enables[p] lists the successor granules whose counters completion
	// of current granule p decrements. Only allocated for indirect kinds.
	enables [][]granule.ID

	// requires is retained for ReverseIndirect/Seam tables so that
	// successor-subset planning can scan only the subset's requirement
	// lists instead of the whole composite map.
	requires RequiresFn

	// readyAtStart holds the successor granules computable the moment the
	// successor phase is initiated (requirement set empty).
	readyAtStart *granule.Set

	pending   int   // successor granules not yet released
	buildCost int64 // management units charged for construction
}

// CostPerEntry is the management cost, in abstract units, of generating one
// composite-map entry. Exported so experiments can sweep it.
const CostPerEntry = 1

// Build constructs the runtime table for spec over a phase pair with nPred
// current granules and nSucc successor granules. It validates the spec and
// reports the management cost of construction via Table.BuildCost.
func Build(spec *Spec, nPred, nSucc int) (*Table, error) {
	if spec == nil {
		spec = NewNull()
	}
	if nPred < 0 || nSucc < 0 {
		return nil, fmt.Errorf("enable: negative phase size (%d, %d)", nPred, nSucc)
	}
	if err := spec.Validate(nPred, nSucc); err != nil {
		return nil, err
	}
	t := &Table{
		kind:         spec.Kind,
		nPred:        nPred,
		nSucc:        nSucc,
		readyAtStart: granule.NewSet(),
	}
	switch spec.Kind {
	case Null:
		// Nothing is enabled before phase completion. The scheduler
		// treats the whole successor phase as ready only after the
		// serial action; the table exists only for uniformity.
		t.pending = nSucc
	case Universal:
		t.readyAtStart.AddRange(granule.Span(nSucc))
		t.pending = 0
		t.buildCost = CostPerEntry // constant: one queue insertion
	case Identity:
		// Successor granule i waits for current granule i. Successor
		// granules beyond the current phase's extent have no
		// dependence and are ready at start.
		overlap := nSucc
		if nPred < overlap {
			overlap = nPred
		}
		if overlap < nSucc {
			t.readyAtStart.AddRange(granule.R(granule.ID(overlap), granule.ID(nSucc)))
		}
		t.pending = overlap
		t.buildCost = CostPerEntry // the relation is implicit; no map storage
	case ForwardIndirect:
		t.remaining = make([]int32, nSucc)
		t.enables = make([][]granule.ID, nPred)
		entries := 0
		for p := 0; p < nPred; p++ {
			succs := spec.Forward(granule.ID(p))
			if len(succs) == 0 {
				continue
			}
			t.enables[p] = append([]granule.ID(nil), succs...)
			for _, r := range succs {
				t.remaining[r]++
			}
			entries += len(succs)
		}
		t.finishIndirect(entries)
	case ReverseIndirect, Seam:
		t.requires = spec.Requires
		t.remaining = make([]int32, nSucc)
		t.enables = make([][]granule.ID, nPred)
		entries := 0
		for r := 0; r < nSucc; r++ {
			reqs := spec.Requires(granule.ID(r))
			seen := make(map[granule.ID]bool, len(reqs))
			for _, p := range reqs {
				if seen[p] {
					continue // duplicate requirement counts once
				}
				seen[p] = true
				t.remaining[r]++
				t.enables[p] = append(t.enables[p], granule.ID(r))
				entries++
			}
		}
		t.finishIndirect(entries)
	default:
		return nil, fmt.Errorf("enable: invalid kind %v", spec.Kind)
	}
	return t, nil
}

func (t *Table) finishIndirect(entries int) {
	pending := 0
	for r, c := range t.remaining {
		if c == 0 {
			t.readyAtStart.Add(granule.ID(r))
		} else {
			pending++
		}
	}
	t.pending = pending
	t.buildCost = int64(entries) * CostPerEntry
}

// Kind reports the mapping kind the table was built for.
func (t *Table) Kind() Kind { return t.kind }

// BuildCost reports the management cost charged for constructing the table.
func (t *Table) BuildCost() int64 { return t.buildCost }

// ReadyAtStart returns the successor granules computable at successor-phase
// initiation. The returned set is owned by the table; callers clone it.
func (t *Table) ReadyAtStart() *granule.Set { return t.readyAtStart }

// Pending reports how many successor granules are still awaiting enablement
// through completion processing (excludes ready-at-start granules).
func (t *Table) Pending() int { return t.pending }

// Complete performs completion processing for one finished current-phase
// granule p: it decrements the enablement counters of every successor
// granule that requires p and calls emit for each counter that reaches
// zero. It returns the number of counters touched (a management cost
// driver). Calling Complete twice for the same granule corrupts the
// counters; the scheduler guarantees exactly-once completion.
func (t *Table) Complete(p granule.ID, emit func(r granule.ID)) int {
	switch t.kind {
	case Null, Universal:
		return 0
	case Identity:
		if int(p) < t.nSucc && int(p) < t.nPred {
			t.pending--
			emit(p)
			return 1
		}
		return 0
	default:
		if int(p) >= len(t.enables) {
			return 0
		}
		touched := 0
		for _, r := range t.enables[p] {
			touched++
			t.remaining[r]--
			if t.remaining[r] == 0 {
				t.pending--
				emit(r)
			}
		}
		return touched
	}
}

// CompleteRange applies Complete to every granule in run, coalescing the
// emitted successor granules into a set. It returns the enabled set and the
// number of counters touched.
func (t *Table) CompleteRange(run granule.Range, enabled *granule.Set) int {
	touched := 0
	run.Each(func(p granule.ID) {
		touched += t.Complete(p, func(r granule.ID) { enabled.Add(r) })
	})
	return touched
}

// PredsFor computes the set of current-phase granules whose completion
// contributes to enabling the given successor granules — the input to the
// paper's priority-elevation strategy ("they should be split into
// individual descriptions and placed in the waiting computation queue in
// such a manner as to elevate their computational priority"). The cost of
// this scan is proportional to the stored map size for forward mappings and
// to the requirement lists for reverse mappings; it returns that entry
// count alongside the set.
func (t *Table) PredsFor(succs *granule.Set) (*granule.Set, int) {
	preds := granule.NewSet()
	scanned := 0
	switch t.kind {
	case Null, Universal:
		return preds, 0
	case Identity:
		succs.Each(func(r granule.ID) {
			scanned++
			if int(r) < t.nPred {
				preds.Add(r)
			}
		})
		return preds, scanned
	case ReverseIndirect, Seam:
		// The requirement lists of the subset alone determine the
		// enabling predecessors — no full-map scan needed.
		succs.Each(func(r granule.ID) {
			for _, p := range t.requires(r) {
				scanned++
				preds.Add(p)
			}
		})
		return preds, scanned
	default:
		// Forward maps must be scanned in the map's own direction.
		for p, succList := range t.enables {
			for _, r := range succList {
				scanned++
				if succs.Contains(r) {
					preds.Add(granule.ID(p))
					break
				}
			}
		}
		return preds, scanned
	}
}
