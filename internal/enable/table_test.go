package enable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/granule"
)

func collectEnabled(t *Table, p granule.ID) []granule.ID {
	var out []granule.ID
	t.Complete(p, func(r granule.ID) { out = append(out, r) })
	return out
}

func TestBuildUniversal(t *testing.T) {
	tab, err := Build(NewUniversal(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ReadyAtStart().Len() != 7 || tab.Pending() != 0 {
		t.Fatalf("universal: ready=%d pending=%d", tab.ReadyAtStart().Len(), tab.Pending())
	}
	if got := collectEnabled(tab, 3); got != nil {
		t.Fatalf("universal Complete enabled %v", got)
	}
}

func TestBuildNull(t *testing.T) {
	tab, err := Build(NewNull(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ReadyAtStart().Len() != 0 || tab.Pending() != 7 {
		t.Fatalf("null: ready=%d pending=%d", tab.ReadyAtStart().Len(), tab.Pending())
	}
	if got := collectEnabled(tab, 3); got != nil {
		t.Fatalf("null Complete enabled %v", got)
	}
	tabNil, err := Build(nil, 4, 4)
	if err != nil || tabNil.Kind() != Null {
		t.Fatalf("nil spec: %v %v", tabNil.Kind(), err)
	}
}

func TestBuildIdentity(t *testing.T) {
	tab, err := Build(NewIdentity(), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Successor granules 5..7 have no dependence: ready at start.
	if !tab.ReadyAtStart().ContainsRange(granule.R(5, 8)) || tab.ReadyAtStart().Len() != 3 {
		t.Fatalf("identity readyAtStart = %v", tab.ReadyAtStart())
	}
	if tab.Pending() != 5 {
		t.Fatalf("identity pending = %d", tab.Pending())
	}
	for p := granule.ID(0); p < 5; p++ {
		got := collectEnabled(tab, p)
		if len(got) != 1 || got[0] != p {
			t.Fatalf("identity Complete(%d) = %v", p, got)
		}
	}
	if tab.Pending() != 0 {
		t.Fatalf("identity pending after all = %d", tab.Pending())
	}
}

func TestBuildIdentityShortSuccessor(t *testing.T) {
	tab, err := Build(NewIdentity(), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ReadyAtStart().Len() != 0 || tab.Pending() != 5 {
		t.Fatalf("ready=%v pending=%d", tab.ReadyAtStart(), tab.Pending())
	}
	if got := collectEnabled(tab, 6); got != nil {
		t.Fatalf("Complete(6) beyond successor = %v", got)
	}
	if got := collectEnabled(tab, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Complete(2) = %v", got)
	}
}

func TestBuildForward(t *testing.T) {
	// imap: p -> p/2 (two preds per successor granule).
	imap := []granule.ID{0, 0, 1, 1, 2, 2}
	tab, err := Build(NewForwardIMAP(imap), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// successor 3 has no enabler: ready at start.
	if !tab.ReadyAtStart().Contains(3) || tab.ReadyAtStart().Len() != 1 {
		t.Fatalf("forward readyAtStart = %v", tab.ReadyAtStart())
	}
	if tab.Pending() != 3 {
		t.Fatalf("forward pending = %d", tab.Pending())
	}
	if got := collectEnabled(tab, 0); got != nil {
		t.Fatalf("first of two completions enabled %v", got)
	}
	if got := collectEnabled(tab, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("second completion = %v", got)
	}
	if tab.BuildCost() != int64(len(imap))*CostPerEntry {
		t.Fatalf("forward build cost = %d", tab.BuildCost())
	}
}

func TestBuildReverse(t *testing.T) {
	// successor r requires current granules {r, r+1}.
	spec := NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{r, r + 1}
	})
	tab, err := Build(spec, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Pending() != 4 || tab.ReadyAtStart().Len() != 0 {
		t.Fatalf("reverse pending=%d ready=%v", tab.Pending(), tab.ReadyAtStart())
	}
	// Complete 0..4 in order; successor r fires when r+1 completes.
	fired := map[granule.ID]bool{}
	for p := granule.ID(0); p < 5; p++ {
		for _, r := range collectEnabled(tab, p) {
			fired[r] = true
		}
		if p >= 1 && !fired[p-1] {
			t.Fatalf("successor %d not fired after completing %d", p-1, p)
		}
	}
	if len(fired) != 4 || tab.Pending() != 0 {
		t.Fatalf("fired=%v pending=%d", fired, tab.Pending())
	}
}

func TestBuildReverseDuplicateRequirements(t *testing.T) {
	spec := NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{0, 0, 0} // duplicates must count once
	})
	tab, err := Build(spec, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := collectEnabled(tab, 0)
	if len(got) != 2 {
		t.Fatalf("duplicate reqs: Complete(0) enabled %v", got)
	}
}

func TestBuildSeam(t *testing.T) {
	spec := NewSeam(func(r granule.ID) []granule.ID {
		var out []granule.ID
		if r > 0 {
			out = append(out, r-1)
		}
		out = append(out, r)
		if int(r) < 3 {
			out = append(out, r+1)
		}
		return out
	})
	tab, err := Build(spec, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Kind() != Seam || tab.Pending() != 4 {
		t.Fatalf("seam: kind=%v pending=%d", tab.Kind(), tab.Pending())
	}
	// Completing 0,1 enables successor 0 only.
	if got := collectEnabled(tab, 0); got != nil {
		t.Fatalf("seam early enable %v", got)
	}
	if got := collectEnabled(tab, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("seam Complete(1) = %v", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(NewForwardIMAP([]granule.ID{99}), 1, 4); err == nil {
		t.Error("out-of-range forward map not rejected")
	}
	bad := NewReverse(func(r granule.ID) []granule.ID { return []granule.ID{-1} })
	if _, err := Build(bad, 4, 4); err == nil {
		t.Error("negative requirement not rejected")
	}
	if _, err := Build(NewUniversal(), -1, 4); err == nil {
		t.Error("negative nPred not rejected")
	}
	if _, err := Build(&Spec{Kind: Kind(99)}, 2, 2); err == nil {
		t.Error("invalid kind not rejected")
	}
	if _, err := Build(&Spec{Kind: ForwardIndirect}, 2, 2); err == nil {
		t.Error("forward spec without function not rejected")
	}
	if _, err := Build(&Spec{Kind: ReverseIndirect}, 2, 2); err == nil {
		t.Error("reverse spec without function not rejected")
	}
}

func TestSpecConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"NewForward(nil)":       func() { NewForward(nil) },
		"NewReverse(nil)":       func() { NewReverse(nil) },
		"NewSeam(nil)":          func() { NewSeam(nil) },
		"NewReverseIMAP(fan<1)": func() { NewReverseIMAP(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCompleteRange(t *testing.T) {
	tab, err := Build(NewIdentity(), 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	enabled := granule.NewSet()
	touched := tab.CompleteRange(granule.R(2, 6), enabled)
	if touched != 4 || enabled.Len() != 4 || !enabled.ContainsRange(granule.R(2, 6)) {
		t.Fatalf("CompleteRange: touched=%d enabled=%v", touched, enabled)
	}
}

func TestPredsFor(t *testing.T) {
	// Reverse: r requires {2r, 2r+1}.
	spec := NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{2 * r, 2*r + 1}
	})
	tab, err := Build(spec, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	preds, scanned := tab.PredsFor(granule.NewSet(granule.R(1, 3))) // successors 1,2
	if preds.Len() != 4 || !preds.ContainsRange(granule.R(2, 6)) {
		t.Fatalf("PredsFor = %v (scanned %d)", preds, scanned)
	}
	if scanned == 0 {
		t.Fatal("PredsFor reported zero scan cost for indirect mapping")
	}

	idTab, _ := Build(NewIdentity(), 8, 8)
	preds, _ = idTab.PredsFor(granule.NewSet(granule.R(5, 7)))
	if preds.Len() != 2 || !preds.ContainsRange(granule.R(5, 7)) {
		t.Fatalf("identity PredsFor = %v", preds)
	}

	uniTab, _ := Build(NewUniversal(), 8, 8)
	preds, scanned = uniTab.PredsFor(granule.NewSet(granule.R(0, 8)))
	if !preds.Empty() || scanned != 0 {
		t.Fatalf("universal PredsFor = %v scanned=%d", preds, scanned)
	}
}

// TestTableQuickExactlyOnce: for random indirect mappings, running every
// predecessor completion exactly once releases every successor granule
// exactly once, with no early release.
func TestTableQuickExactlyOnce(t *testing.T) {
	f := func(seed int64, nPredRaw, nSuccRaw uint8, reverse bool) bool {
		nPred := int(nPredRaw)%30 + 1
		nSucc := int(nSuccRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))

		var spec *Spec
		requires := make([][]granule.ID, nSucc)
		if reverse {
			for r := 0; r < nSucc; r++ {
				k := rng.Intn(4)
				for j := 0; j < k; j++ {
					requires[r] = append(requires[r], granule.ID(rng.Intn(nPred)))
				}
			}
			spec = NewReverse(func(r granule.ID) []granule.ID { return requires[r] })
		} else {
			imap := make([]granule.ID, nPred)
			for p := range imap {
				imap[p] = granule.ID(rng.Intn(nSucc))
				requires[imap[p]] = append(requires[imap[p]], granule.ID(p))
			}
			spec = NewForwardIMAP(imap)
		}

		tab, err := Build(spec, nPred, nSucc)
		if err != nil {
			return false
		}
		released := make(map[granule.ID]int)
		tab.ReadyAtStart().Each(func(r granule.ID) { released[r]++ })

		order := rng.Perm(nPred)
		done := make(map[granule.ID]bool)
		for _, pi := range order {
			p := granule.ID(pi)
			done[p] = true
			tab.Complete(p, func(r granule.ID) {
				released[r]++
				// No early release: all requirements of r must be done.
				seen := map[granule.ID]bool{}
				for _, q := range requires[r] {
					if seen[q] {
						continue
					}
					seen[q] = true
					if !done[q] {
						t.Logf("early release of %d before %d", r, q)
						released[r] = -1000
					}
				}
			})
		}
		for r := 0; r < nSucc; r++ {
			if released[granule.ID(r)] != 1 {
				return false
			}
		}
		return tab.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildReverse(b *testing.B) {
	const n = 1024
	spec := NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{r, (r + 1) % n, (r + 7) % n}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(spec, n, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompleteIdentity(b *testing.B) {
	const n = 4096
	for i := 0; i < b.N; i++ {
		tab, _ := Build(NewIdentity(), n, n)
		for p := granule.ID(0); p < n; p++ {
			tab.Complete(p, func(granule.ID) {})
		}
	}
}
