// Package enable implements the enablement mappings of Jones (1986):
// the relations that determine which granules of a successor computational
// phase become correctly computable ("enabled") when granules of the
// current phase complete.
//
// The paper's taxonomy, with observed PAX/CASPER frequencies:
//
//   - universal: any successor granule is enabled by any (even the empty)
//     set of current-phase granules — the phases share no information.
//     (6/22 phases, 266/1188 parallel lines)
//   - identity (direct): successor granule i is enabled by completion of
//     current granule i. (9/22 phases, 551/1188 lines)
//   - null: no overlap is possible because serial actions and decisions
//     must occur between the phases. (4/22 phases, 262/1188 lines)
//   - reverse indirect: successor granule r requires a set of current
//     granules determined through a dynamically generated information
//     selection map; a composite granule map must be built. (2/22, 78 lines)
//   - forward indirect: completion of current granule p directly enables
//     successor granule IMAP(p). (1/22, 31 lines)
//
// The package also provides the logical predicate PARALLEL(x, y) over
// declared access footprints, a verifier that checks a declared mapping
// against the paper's correctness condition, and an inference routine that
// classifies a phase pair from footprints alone.
package enable

import "fmt"

// Kind identifies an enablement mapping form.
type Kind uint8

const (
	// Null permits no overlap: the successor phase may begin only after
	// the current phase has completed (and any serial action has run).
	Null Kind = iota
	// Universal enables every successor granule immediately: the phases
	// are mutually independent and can be entirely overlapped.
	Universal
	// Identity enables successor granule i upon completion of current
	// granule i (the paper's "direct" mapping, I = I).
	Identity
	// ForwardIndirect enables successor granule F(p) upon completion of
	// current granule p, where F is a (dynamically generated) map.
	ForwardIndirect
	// ReverseIndirect enables successor granule r once every current
	// granule in Requires(r) has completed, where Requires derives from a
	// dynamically generated information selection map.
	ReverseIndirect
	// Seam is the paper's foreseen-but-deferred form for stencil codes
	// (e.g. the checkerboard successive over-relaxation): successor
	// granule r requires the completion of its geometric neighbours in
	// the current phase. Mechanically it is a structured reverse
	// indirect mapping; it is kept distinct for census and reporting.
	Seam
	numKinds
)

// NumKinds is the number of mapping kinds.
const NumKinds = int(numKinds)

// Kinds lists every mapping kind in declaration order.
func Kinds() []Kind {
	return []Kind{Null, Universal, Identity, ForwardIndirect, ReverseIndirect, Seam}
}

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Universal:
		return "universal"
	case Identity:
		return "identity"
	case ForwardIndirect:
		return "forward-indirect"
	case ReverseIndirect:
		return "reverse-indirect"
	case Seam:
		return "seam"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a mapping option name (as written in PAX language
// ENABLE/MAPPING= clauses) to a Kind. Accepted names are the String forms
// plus the upper-case spellings used in .pax sources.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null", "NULL":
		return Null, nil
	case "universal", "UNIVERSAL":
		return Universal, nil
	case "identity", "direct", "IDENTITY", "DIRECT":
		return Identity, nil
	case "forward-indirect", "forward", "FORWARD":
		return ForwardIndirect, nil
	case "reverse-indirect", "reverse", "REVERSE":
		return ReverseIndirect, nil
	case "seam", "SEAM":
		return Seam, nil
	}
	return 0, fmt.Errorf("enable: unknown mapping option %q", s)
}

// Overlappable reports whether the kind permits any phase overlap at all.
func (k Kind) Overlappable() bool { return k != Null }

// Simple reports whether the kind is one of the two "easily identified"
// mappings the paper counts toward its 68% figure.
func (k Kind) Simple() bool { return k == Universal || k == Identity }

// Indirect reports whether the kind requires composite-map machinery.
func (k Kind) Indirect() bool {
	return k == ForwardIndirect || k == ReverseIndirect || k == Seam
}
