package enable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/granule"
)

// Footprint helpers mirroring the paper's Fortran fragments.

// copyAB: first phase B(I)=A(I) — reads A[i], writes B[i].
func copyAB(g granule.ID) Footprint {
	return Footprint{
		Reads:  []Effect{{Var: "A", Idx: int(g)}},
		Writes: []Effect{{Var: "B", Idx: int(g)}},
	}
}

// copyDC: second phase D(I)=C(I) — disjoint arrays from copyAB: universal.
func copyDC(g granule.ID) Footprint {
	return Footprint{
		Reads:  []Effect{{Var: "C", Idx: int(g)}},
		Writes: []Effect{{Var: "D", Idx: int(g)}},
	}
}

// copyCB: second phase C(I)=B(I) — reads what copyAB wrote: identity.
func copyCB(g granule.ID) Footprint {
	return Footprint{
		Reads:  []Effect{{Var: "B", Idx: int(g)}},
		Writes: []Effect{{Var: "C", Idx: int(g)}},
	}
}

func TestParallelPredicate(t *testing.T) {
	a := Footprint{Reads: []Effect{{"X", 1}}, Writes: []Effect{{"Y", 1}}}
	b := Footprint{Reads: []Effect{{"X", 1}}, Writes: []Effect{{"Z", 1}}}
	if !Parallel(a, b) {
		t.Error("read-read sharing should be parallel")
	}
	c := Footprint{Reads: []Effect{{"Y", 1}}}
	if Parallel(a, c) {
		t.Error("write-read conflict not detected")
	}
	d := Footprint{Writes: []Effect{{"Y", 1}}}
	if Parallel(a, d) {
		t.Error("write-write conflict not detected")
	}
	e := Footprint{Writes: []Effect{{"X", 1}}}
	if Parallel(a, e) {
		t.Error("read-write conflict not detected")
	}
	if !Parallel(Footprint{}, a) || !Parallel(a, Footprint{}) {
		t.Error("empty footprint should be parallel with anything")
	}
	// Same index different array: no conflict.
	f := Footprint{Writes: []Effect{{"Q", 1}}}
	if !Parallel(a, f) {
		t.Error("different arrays conflated")
	}
}

func TestConflictsIdentityChain(t *testing.T) {
	deps := Conflicts(copyAB, 4, copyCB, 4)
	for r, qs := range deps {
		if len(qs) != 1 || int(qs[0]) != r {
			t.Fatalf("deps[%d] = %v, want [%d]", r, qs, r)
		}
	}
}

func TestInferUniversal(t *testing.T) {
	kind, spec := Infer(copyAB, 6, copyDC, 6)
	if kind != Universal || spec.Kind != Universal {
		t.Fatalf("Infer = %v", kind)
	}
}

func TestInferIdentity(t *testing.T) {
	kind, _ := Infer(copyAB, 6, copyCB, 6)
	if kind != Identity {
		t.Fatalf("Infer = %v, want identity", kind)
	}
}

func TestInferForward(t *testing.T) {
	// Paper's forward fragment: phase 1 writes B(IMAP(I)); phase 2 reads B(I).
	imap := []granule.ID{3, 1, 4, 0}
	phase1 := func(g granule.ID) Footprint {
		return Footprint{
			Reads:  []Effect{{Var: "A", Idx: int(imap[g])}},
			Writes: []Effect{{Var: "B", Idx: int(imap[g])}},
		}
	}
	phase2 := func(g granule.ID) Footprint {
		return Footprint{
			Reads:  []Effect{{Var: "B", Idx: int(g)}},
			Writes: []Effect{{Var: "C", Idx: int(g)}},
		}
	}
	kind, spec := Infer(phase1, 4, phase2, 5)
	if kind != ForwardIndirect {
		t.Fatalf("Infer = %v, want forward-indirect", kind)
	}
	if err := Verify(spec, phase1, 4, phase2, 5); err != nil {
		t.Fatalf("inferred forward spec fails verification: %v", err)
	}
	got := spec.Forward(0)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Forward(0) = %v, want [3]", got)
	}
}

func TestInferReverse(t *testing.T) {
	// Paper's reverse fragment: phase 2 granule r reads A(IMAP(j,r)) for
	// several j — multiple predecessors per successor, not functional.
	imap := [][]granule.ID{{0, 1}, {1, 2}, {0, 3}}
	phase1 := func(g granule.ID) Footprint {
		return Footprint{Writes: []Effect{{Var: "A", Idx: int(g)}}}
	}
	phase2 := func(g granule.ID) Footprint {
		fp := Footprint{Writes: []Effect{{Var: "B", Idx: int(g)}}}
		for _, src := range imap[g] {
			fp.Reads = append(fp.Reads, Effect{Var: "A", Idx: int(src)})
		}
		return fp
	}
	kind, spec := Infer(phase1, 4, phase2, 3)
	if kind != ReverseIndirect {
		t.Fatalf("Infer = %v, want reverse-indirect", kind)
	}
	if err := Verify(spec, phase1, 4, phase2, 3); err != nil {
		t.Fatalf("inferred reverse spec fails verification: %v", err)
	}
	reqs := spec.Requires(2)
	if len(reqs) != 2 || reqs[0] != 0 || reqs[1] != 3 {
		t.Fatalf("Requires(2) = %v, want [0 3]", reqs)
	}
}

func TestVerifyRejectsUnsoundMapping(t *testing.T) {
	// Declared universal, but phase 2 reads what phase 1 writes.
	err := Verify(NewUniversal(), copyAB, 4, copyCB, 4)
	if err == nil {
		t.Fatal("unsound universal mapping not rejected")
	}
	// Declared identity on a shifted dependence: r reads B[r+1].
	shifted := func(g granule.ID) Footprint {
		return Footprint{
			Reads:  []Effect{{Var: "B", Idx: int(g) + 1}},
			Writes: []Effect{{Var: "C", Idx: int(g)}},
		}
	}
	if err := Verify(NewIdentity(), copyAB, 5, shifted, 4); err == nil {
		t.Fatal("unsound identity mapping not rejected")
	}
	// Null always verifies (declares no overlap).
	if err := Verify(NewNull(), copyAB, 4, copyCB, 4); err != nil {
		t.Fatalf("null mapping should verify: %v", err)
	}
	// nil spec treated as null.
	if err := Verify(nil, copyAB, 4, copyCB, 4); err != nil {
		t.Fatalf("nil spec should verify as null: %v", err)
	}
}

func TestVerifyAcceptsSoundMappings(t *testing.T) {
	if err := Verify(NewUniversal(), copyAB, 4, copyDC, 4); err != nil {
		t.Errorf("universal: %v", err)
	}
	if err := Verify(NewIdentity(), copyAB, 4, copyCB, 4); err != nil {
		t.Errorf("identity: %v", err)
	}
	// Over-approximation is sound: reverse mapping that requires extra
	// granules still verifies.
	over := NewReverse(func(r granule.ID) []granule.ID {
		return []granule.ID{r, (r + 1) % 4}
	})
	if err := Verify(over, copyAB, 4, copyCB, 4); err != nil {
		t.Errorf("over-approximate reverse: %v", err)
	}
}

// TestQuickInferredMappingsVerify: for random single-assignment phase
// pairs, the inferred mapping always passes Verify, and a Table built from
// it releases successor granules only after all their dependences complete.
func TestQuickInferredMappingsVerify(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		rng := rand.New(rand.NewSource(seed))
		// Phase 1 writes A[perm(i)], phase 2 reads a random subset of A.
		perm := rng.Perm(n)
		reads := make([][]int, n)
		for r := range reads {
			k := rng.Intn(3)
			for j := 0; j < k; j++ {
				reads[r] = append(reads[r], rng.Intn(n))
			}
		}
		phase1 := func(g granule.ID) Footprint {
			return Footprint{Writes: []Effect{{Var: "A", Idx: perm[g]}}}
		}
		phase2 := func(g granule.ID) Footprint {
			fp := Footprint{Writes: []Effect{{Var: "B", Idx: int(g)}}}
			for _, idx := range reads[g] {
				fp.Reads = append(fp.Reads, Effect{Var: "A", Idx: idx})
			}
			return fp
		}
		kind, spec := Infer(phase1, n, phase2, n)
		if err := Verify(spec, phase1, n, phase2, n); err != nil {
			t.Logf("inferred %v failed verify: %v", kind, err)
			return false
		}
		_, err := Build(spec, n, n)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectString(t *testing.T) {
	if s := (Effect{Var: "A", Idx: 3}).String(); s != "A[3]" {
		t.Errorf("Effect.String = %q", s)
	}
}
