package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/sim"
)

// TestCensusMatchesPaper pins the census to the paper's published numbers.
// This is experiment E1's ground truth.
func TestCensusMatchesPaper(t *testing.T) {
	phases, lines, totalPhases, totalLines := CensusTotals(Census())
	if totalPhases != 22 {
		t.Fatalf("total phases = %d, want 22", totalPhases)
	}
	if totalLines != 1188 {
		t.Fatalf("total lines = %d, want 1188", totalLines)
	}
	wantPhases := map[enable.Kind]int{
		enable.Universal:       6,
		enable.Identity:        9,
		enable.Null:            4,
		enable.ReverseIndirect: 2,
		enable.ForwardIndirect: 1,
	}
	wantLines := map[enable.Kind]int{
		enable.Universal:       266,
		enable.Identity:        551,
		enable.Null:            262,
		enable.ReverseIndirect: 78,
		enable.ForwardIndirect: 31,
	}
	for k, want := range wantPhases {
		if phases[k] != want {
			t.Errorf("%v phases = %d, want %d", k, phases[k], want)
		}
	}
	for k, want := range wantLines {
		if lines[k] != want {
			t.Errorf("%v lines = %d, want %d", k, lines[k], want)
		}
	}
	// The paper's headline fractions.
	simplePhases := phases[enable.Universal] + phases[enable.Identity]
	if pct := 100 * simplePhases / totalPhases; pct != 68 {
		t.Errorf("simple-overlap phase percentage = %d, want 68", pct)
	}
	simpleLines := lines[enable.Universal] + lines[enable.Identity]
	if pct := 100 * simpleLines / totalLines; pct != 68 {
		t.Errorf("simple-overlap line percentage = %d, want 68", pct)
	}
	overlappable := totalPhases - phases[enable.Null]
	if pct := 100 * overlappable / totalPhases; pct != 81 { // 18/22
		t.Errorf("overlappable phase percentage = %d, want 81", pct)
	}
}

func TestCensusNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Census() {
		if seen[c.Name] {
			t.Fatalf("duplicate census name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestCasperProgramBuilds(t *testing.T) {
	prog, err := CasperProgram(CasperConfig{GranulesPerLine: 2, SerialCost: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 22 {
		t.Fatalf("phases = %d", len(prog.Phases))
	}
	// Lines metadata preserved for census aggregation.
	total := 0
	for _, ph := range prog.Phases {
		total += ph.Lines
	}
	if total != 1188 {
		t.Errorf("program lines = %d, want 1188", total)
	}
}

func TestCasperProgramRuns(t *testing.T) {
	prog, err := CasperProgram(CasperConfig{GranulesPerLine: 1, SerialCost: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(prog,
		core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
		sim.Config{Procs: 8, Mgmt: sim.Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeUnits != int64(prog.TotalGranules()) {
		t.Errorf("compute = %d, want %d", res.ComputeUnits, prog.TotalGranules())
	}
}

func TestCasperProgramCycles(t *testing.T) {
	prog, err := CasperProgram(CasperConfig{GranulesPerLine: 1, Cycles: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 44 {
		t.Fatalf("phases = %d, want 44", len(prog.Phases))
	}
	// Cycle boundary: phase 21 (checkpoint, null kind) must not map into
	// the next cycle's first phase.
	if prog.Phases[21].Enable != nil {
		t.Error("cycle-boundary phase should have null mapping")
	}
}

func TestCostModelsDeterministic(t *testing.T) {
	u := UniformCost(2, 9, 77)
	for g := granule.ID(0); g < 100; g++ {
		c1, c2 := u(g), u(g)
		if c1 != c2 {
			t.Fatal("UniformCost not deterministic")
		}
		if c1 < 2 || c1 > 9 {
			t.Fatalf("UniformCost(%d) = %d out of range", g, c1)
		}
	}
	// Swapped bounds are normalized.
	s := UniformCost(9, 2, 77)
	if s(3) != u(3) {
		t.Error("swapped bounds differ")
	}
}

func TestBimodalCost(t *testing.T) {
	b := BimodalCost(1, 100, 0.9, 5)
	fast, slow := 0, 0
	for g := granule.ID(0); g < 1000; g++ {
		switch b(g) {
		case 1:
			fast++
		case 100:
			slow++
		default:
			t.Fatal("unexpected bimodal value")
		}
	}
	if fast < 800 || slow < 20 {
		t.Errorf("bimodal split fast=%d slow=%d implausible", fast, slow)
	}
}

func TestConditionalSkip(t *testing.T) {
	cs := ConditionalSkip(50, 0.5, 9)
	skipped := 0
	for g := granule.ID(0); g < 1000; g++ {
		c := cs(g)
		if c == 1 {
			skipped++
		} else if c != 50 {
			t.Fatal("unexpected conditional value")
		}
	}
	if skipped < 350 || skipped > 650 {
		t.Errorf("skip count %d implausible for p=0.5", skipped)
	}
}

func TestScaleCost(t *testing.T) {
	sc := ScaleCost(FixedCost(3), 4)
	if sc(0) != 12 {
		t.Errorf("ScaleCost = %d", sc(0))
	}
	unit := ScaleCost(nil, 7)
	if unit(5) != 7 {
		t.Errorf("ScaleCost(nil) = %d", unit(5))
	}
	if UnitCost() != nil {
		t.Error("UnitCost should be nil (scheduler default)")
	}
	if FixedCost(5)(1) != 5 {
		t.Error("FixedCost wrong")
	}
}

func TestRandomIMap(t *testing.T) {
	m := RandomIMap(100, 10, 3)
	if len(m) != 100 {
		t.Fatal("length wrong")
	}
	for _, v := range m {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
	m2 := RandomIMap(100, 10, 3)
	for i := range m {
		if m[i] != m2[i] {
			t.Fatal("not deterministic")
		}
	}
	z := RandomIMap(4, 0, 1) // limit clamped to 1
	for _, v := range z {
		if v != 0 {
			t.Fatal("clamped limit broken")
		}
	}
}

func TestChainAllKinds(t *testing.T) {
	for _, k := range enable.Kinds() {
		prog, err := Chain(k, 3, 24, UnitCost(), 11)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		res, err := sim.Run(prog,
			core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
			sim.Config{Procs: 4, Mgmt: sim.Dedicated})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.ComputeUnits != 72 {
			t.Fatalf("%v: compute = %d", k, res.ComputeUnits)
		}
	}
	if _, err := Chain(enable.Universal, 0, 4, nil, 0); err == nil {
		t.Error("zero-phase chain accepted")
	}
	if _, err := Chain(enable.Kind(99), 2, 4, nil, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}
