// Package workload provides the synthetic workloads of the reproduction:
// deterministic per-granule cost models (including the paper's
// "computations could not even be ascribed with definite execution times"
// and conditional-execution behaviours), the PAX/CASPER 22-phase census
// profile with its published enablement-mapping mix, and generic phase-
// chain generators for sweeps and property tests.
package workload

import (
	"repro/internal/core"
	"repro/internal/granule"
)

// splitmix64 is a tiny deterministic hash used to give each granule a
// stable pseudo-random cost without any global RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps (seed, g) to a float in [0, 1).
func hash01(seed uint64, g granule.ID) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(g)+0x5851f42d4c957f2d))
	return float64(h>>11) / float64(1<<53)
}

// UnitCost charges one unit per granule (the checkerboard's "definite
// execution time" of four additions and a divide).
func UnitCost() core.CostFn { return nil }

// FixedCost charges c units per granule.
func FixedCost(c core.Cost) core.CostFn {
	return func(granule.ID) core.Cost { return c }
}

// UniformCost charges a deterministic pseudo-random cost in [lo, hi] per
// granule, seeded so runs are reproducible. It models the paper's
// observation that PAX/CASPER task times were unpredictable and
// unrepeatable ("shared information access times were unpredictable").
func UniformCost(lo, hi core.Cost, seed uint64) core.CostFn {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := float64(hi - lo + 1)
	return func(g granule.ID) core.Cost {
		return lo + core.Cost(hash01(seed, g)*span)
	}
}

// BimodalCost charges fast units with probability pFast and slow units
// otherwise — long stragglers are what make rundown expensive.
func BimodalCost(fast, slow core.Cost, pFast float64, seed uint64) core.CostFn {
	return func(g granule.ID) core.Cost {
		if hash01(seed, g) < pFast {
			return fast
		}
		return slow
	}
}

// ConditionalSkip models the paper's "whether or not the computation was
// even to be carried out in a particular instance was a conditional part
// of the algorithm": with probability pSkip the granule costs 1 unit (the
// test-and-skip), otherwise it costs the full amount.
func ConditionalSkip(full core.Cost, pSkip float64, seed uint64) core.CostFn {
	return func(g granule.ID) core.Cost {
		if hash01(seed, g) < pSkip {
			return 1
		}
		return full
	}
}

// ScaleCost multiplies an underlying cost model by k.
func ScaleCost(base core.CostFn, k core.Cost) core.CostFn {
	if base == nil {
		return FixedCost(k)
	}
	return func(g granule.ID) core.Cost { return base(g) * k }
}
