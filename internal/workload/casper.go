package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// CasperPhase is one entry of the PAX/CASPER parallel-phase census: the
// phase's name, the enablement-mapping kind relating it to its successor,
// and its weight in parallel source lines. The paper reports only per-class
// totals (phases and lines); the per-phase split below distributes each
// class total as evenly as possible over plausibly named CFD pipeline
// stages, preserving the published class sums exactly.
type CasperPhase struct {
	Name  string
	Kind  enable.Kind
	Lines int
}

// Census returns the 22-phase PAX/CASPER profile. Class totals match the
// paper exactly:
//
//	universal        6 phases, 266 lines
//	identity         9 phases, 551 lines
//	null             4 phases, 262 lines
//	reverse-indirect 2 phases,  78 lines
//	forward-indirect 1 phase,   31 lines
//	total           22 phases, 1188 lines
func Census() []CasperPhase {
	return []CasperPhase{
		{Name: "metric-setup", Kind: enable.Universal, Lines: 45},
		{Name: "power-compression", Kind: enable.Universal, Lines: 45},
		{Name: "interp-matrix", Kind: enable.Identity, Lines: 62},
		{Name: "flux-predict", Kind: enable.Identity, Lines: 62},
		{Name: "flux-correct", Kind: enable.Identity, Lines: 61},
		{Name: "smooth-x", Kind: enable.Identity, Lines: 61},
		{Name: "smooth-y", Kind: enable.Identity, Lines: 61},
		{Name: "residual-gather", Kind: enable.ReverseIndirect, Lines: 39},
		{Name: "residual-norm", Kind: enable.Null, Lines: 66},
		{Name: "bc-update", Kind: enable.Universal, Lines: 44},
		{Name: "pressure-red", Kind: enable.Identity, Lines: 61},
		{Name: "pressure-black", Kind: enable.Identity, Lines: 61},
		{Name: "velocity-update", Kind: enable.Identity, Lines: 61},
		{Name: "scatter-corrections", Kind: enable.ForwardIndirect, Lines: 31},
		{Name: "structural-loads", Kind: enable.Universal, Lines: 44},
		{Name: "modal-project", Kind: enable.ReverseIndirect, Lines: 39},
		{Name: "modal-advance", Kind: enable.Null, Lines: 66},
		{Name: "mesh-move", Kind: enable.Universal, Lines: 44},
		{Name: "jacobian-update", Kind: enable.Identity, Lines: 61},
		{Name: "timestep-limit", Kind: enable.Null, Lines: 65},
		{Name: "io-pack", Kind: enable.Universal, Lines: 44},
		{Name: "checkpoint", Kind: enable.Null, Lines: 65},
	}
}

// CensusTotals aggregates a census by mapping kind, returning phase counts
// and line counts per kind plus overall totals.
func CensusTotals(census []CasperPhase) (phases map[enable.Kind]int, lines map[enable.Kind]int, totalPhases, totalLines int) {
	phases = make(map[enable.Kind]int)
	lines = make(map[enable.Kind]int)
	for _, c := range census {
		phases[c.Kind]++
		lines[c.Kind] += c.Lines
		totalPhases++
		totalLines += c.Lines
	}
	return phases, lines, totalPhases, totalLines
}

// CasperConfig controls materialization of the census into a runnable
// program.
type CasperConfig struct {
	// GranulesPerLine scales phase sizes: granules = Lines *
	// GranulesPerLine (minimum 1 granule per phase). Default 4.
	GranulesPerLine int
	// Cycles unrolls the 22-phase cycle this many times (default 1),
	// modelling CASPER's iterative time-stepping.
	Cycles int
	// Cost is the per-granule cost model (nil = unit cost).
	Cost core.CostFn
	// SerialCost is charged for each null mapping's between-phase serial
	// action (the "serial actions and decisions" the paper observed).
	SerialCost core.Cost
	// Seed drives the dynamically generated information selection maps
	// of the indirect phases.
	Seed uint64
	// Fan is the gather width of reverse-indirect phases (default 4).
	Fan int
}

// CasperProgram materializes the census into a core.Program. The final
// phase of the last cycle carries no successor mapping.
func CasperProgram(cfg CasperConfig) (*core.Program, error) {
	census := Census()
	if cfg.GranulesPerLine <= 0 {
		cfg.GranulesPerLine = 4
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 1
	}
	if cfg.Fan <= 0 {
		cfg.Fan = 4
	}

	var phases []*core.Phase
	for cyc := 0; cyc < cfg.Cycles; cyc++ {
		for i, c := range census {
			name := c.Name
			if cfg.Cycles > 1 {
				name = fmt.Sprintf("%s#%d", c.Name, cyc)
			}
			n := c.Lines * cfg.GranulesPerLine
			if n < 1 {
				n = 1
			}
			phases = append(phases, &core.Phase{
				Name:     name,
				Granules: n,
				Cost:     cfg.Cost,
				Lines:    c.Lines,
			})
			_ = i
		}
	}

	// Wire successor mappings. Phase k's spec depends on its census kind
	// and the size of phase k+1.
	for k := 0; k < len(phases)-1; k++ {
		c := census[k%len(census)]
		nPred := phases[k].Granules
		nSucc := phases[k+1].Granules
		switch c.Kind {
		case enable.Null:
			phases[k].Enable = nil
			phases[k+1].SerialCost = cfg.SerialCost
		case enable.Universal:
			phases[k].Enable = enable.NewUniversal()
		case enable.Identity:
			phases[k].Enable = enable.NewIdentity()
		case enable.ForwardIndirect:
			imap := RandomIMap(nPred, nSucc, cfg.Seed+uint64(k))
			phases[k].Enable = enable.NewForwardIMAP(imap)
		case enable.ReverseIndirect:
			imap := RandomIMap(nSucc*cfg.Fan, nPred, cfg.Seed+uint64(k))
			phases[k].Enable = enable.NewReverseIMAP(imap, cfg.Fan)
		}
	}
	return core.NewProgram(phases...)
}

// RandomIMap generates a deterministic pseudo-random information selection
// map of length n with values in [0, limit) — the paper's "IMAP(J,I) =
// IRAND()" setup phase.
func RandomIMap(n, limit int, seed uint64) []granule.ID {
	if limit < 1 {
		limit = 1
	}
	out := make([]granule.ID, n)
	for i := range out {
		out[i] = granule.ID(splitmix64(seed^uint64(i*2654435761)) % uint64(limit))
	}
	return out
}

// Chain builds a linear program of identical phases with one mapping kind
// between each pair — the basic unit of the mapping sweep (E3).
func Chain(kind enable.Kind, phases, granules int, cost core.CostFn, seed uint64) (*core.Program, error) {
	if phases < 1 {
		return nil, fmt.Errorf("workload: chain needs at least one phase")
	}
	out := make([]*core.Phase, phases)
	for i := range out {
		out[i] = &core.Phase{
			Name:     fmt.Sprintf("phase%d", i),
			Granules: granules,
			Cost:     cost,
		}
	}
	for i := 0; i < phases-1; i++ {
		switch kind {
		case enable.Null:
			out[i].Enable = nil
		case enable.Universal:
			out[i].Enable = enable.NewUniversal()
		case enable.Identity:
			out[i].Enable = enable.NewIdentity()
		case enable.ForwardIndirect:
			out[i].Enable = enable.NewForwardIMAP(RandomIMap(granules, granules, seed+uint64(i)))
		case enable.ReverseIndirect:
			out[i].Enable = enable.NewReverseIMAP(RandomIMap(granules*2, granules, seed+uint64(i)), 2)
		case enable.Seam:
			n := granules
			out[i].Enable = enable.NewSeam(func(r granule.ID) []granule.ID {
				reqs := []granule.ID{r}
				if r > 0 {
					reqs = append(reqs, r-1)
				}
				if int(r) < n-1 {
					reqs = append(reqs, r+1)
				}
				return reqs
			})
		default:
			return nil, fmt.Errorf("workload: unknown kind %v", kind)
		}
	}
	return core.NewProgram(out...)
}
