// Package trace is the flight recorder: a low-overhead structured event
// log of every scheduling decision a run makes — dispatches, completions,
// steals, backfill grants, parks, batch retunes, aborts — captured from
// any backend (the deterministic simulator, the goroutine executive, or
// the multi-tenant pool) in one common record format.
//
// The recording hot path is built for the goroutine backends: each worker
// appends to its own Ring with no synchronization (owner-only writes,
// amortized-zero allocation past the growth knee), a global atomic
// sequence number stamps causal order across rings, and rare events from
// non-worker contexts (a controller retune under the manager lock, an
// abort from an arbitrary goroutine) go through the mutex-guarded
// Recorder.Emit side channel. The simulator emits into ring 0 from its
// single event-loop goroutine, stamping virtual times directly.
//
// Take merges the rings into a Trace ordered by (Time, Seq). Because
// every emitter records a completion BEFORE submitting it to management
// and a dispatch AFTER management hands the task out, any dispatch
// enabled by a completion carries a larger Seq — so the merged order is a
// valid causal schedule even when coarse clocks produce equal timestamps.
// Traces round-trip through a versioned binary file format (file.go),
// diff against each other (diff.go), replay in the simulator
// (sim.Replay), and export to metrics timelines, Gantt charts, and JSON
// (export.go).
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one scheduling decision.
type Kind uint8

const (
	// KStart marks the run's begin (Arg: the scheduler's start cost in
	// virtual traces).
	KStart Kind = 1 + iota
	// KDispatch records a task handed to a worker: Proc executes granules
	// [Lo, Hi) of Phase for Job. In virtual traces Arg is the task's
	// compute cost; wall-clock traces leave it 0 (the duration is known
	// only at completion).
	KDispatch
	// KComplete records a task finishing on Proc: granules [Lo, Hi) of
	// Phase for Job. Arg is the task's duration — virtual compute cost in
	// simulator traces, wall nanoseconds in executive/pool traces — so a
	// trace alone reconstructs busy intervals as [Time-Arg, Time).
	KComplete
	// KStealAttempt / KStealWin / KStealLose record a sharded-manager
	// steal sweep by Proc: the attempt when the sweep starts, then either
	// a win (Arg: the victim worker, Lo/Hi: the first stolen task's
	// range) or a loss (every victim was dry).
	KStealAttempt
	KStealWin
	KStealLose
	// KBackfill records a cross-job grant: the KDispatch it accompanies
	// gave Proc a task from a job it is not homed on (rundown fill).
	KBackfill
	// KPark / KUnpark bracket a worker idling: KPark when Proc gives up
	// finding work, KUnpark when it resumes (Arg: the idle span, virtual
	// units or wall nanoseconds, when the emitter knows it).
	KPark
	KUnpark
	// KRetune records the adaptive controller changing the batch knobs
	// (Arg: the new refill capacity).
	KRetune
	// KAbort records a run failing or being cancelled.
	KAbort
	// KFinish marks the run's end (Time: the makespan in virtual traces).
	KFinish
	// KMark records a deterministic observation mark: the virtual-time
	// point where the simulator's Observer emitted a Snapshot. At equal
	// virtual timestamps marks order BEFORE the events the same loop
	// iteration then processes (see §"ordering" in DESIGN.md), pinned by
	// the trace-order golden test.
	KMark
	// KFault records an injected fault firing (internal/fault): Arg is
	// the fault.Kind, Proc/Job/Phase/[Lo,Hi) locate the victim where the
	// fault has one. Appended after KMark so pre-fault binary traces
	// replay unchanged.
	KFault
	// KRetry records a job restarting after a retryable failure: Job is
	// the retried job, Arg the attempt number just begun (2 = first
	// retry). Granules completed by earlier attempts re-run, so per-job
	// conservation holds from the LAST KRetry onward (Trace.FilterJob
	// cuts there).
	KRetry
)

var kindNames = [...]string{
	KStart:        "start",
	KDispatch:     "dispatch",
	KComplete:     "complete",
	KStealAttempt: "steal-attempt",
	KStealWin:     "steal-win",
	KStealLose:    "steal-lose",
	KBackfill:     "backfill",
	KPark:         "park",
	KUnpark:       "unpark",
	KRetune:       "retune",
	KAbort:        "abort",
	KFinish:       "finish",
	KMark:         "mark",
	KFault:        "fault",
	KRetry:        "retry",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded scheduling decision. Proc, Job and Phase are -1
// when the event has no such association (e.g. a machine-wide mark).
type Event struct {
	// Seq is the global emission order: unique, monotone per emitting
	// goroutine, and causal across goroutines for the completion→dispatch
	// edge (see the package comment).
	Seq uint64
	// Time is when the decision happened: virtual units in simulator
	// traces, nanoseconds since the run's start in wall-clock traces
	// (Meta.TimeUnit says which).
	Time int64
	Kind Kind
	// Proc is the worker/processor involved.
	Proc int32
	// Job indexes the job in multi-program runs (0 in single-program).
	Job int32
	// Phase and [Lo, Hi) name the task's granule range.
	Phase  int32
	Lo, Hi uint32
	// Arg is per-kind payload (durations, victims, batch sizes).
	Arg int64
}

func (e Event) String() string {
	return fmt.Sprintf("#%d t=%d %s proc=%d job=%d phase=%d [%d,%d) arg=%d",
		e.Seq, e.Time, e.Kind, e.Proc, e.Job, e.Phase, e.Lo, e.Hi, e.Arg)
}

// Time units for Meta.TimeUnit.
const (
	UnitVirtual = "virtual" // deterministic simulator units
	UnitNanos   = "ns"      // wall-clock nanoseconds since run start
)

// PhaseMeta names one phase of the recorded program.
type PhaseMeta struct {
	Name     string `json:"name"`
	Granules int    `json:"granules"`
}

// Meta describes the run a trace was recorded from. It is stored as a
// JSON block in the file header so the format can grow fields without a
// version bump; unknown fields are ignored on read.
type Meta struct {
	// Version is the record-format version (set by the file writer).
	Version int `json:"version,omitempty"`
	// Backend names the recording machine: "virtual", "exec", or "pool".
	Backend string `json:"backend"`
	// Manager / Model name the management configuration (whichever side
	// of the pairing the backend used).
	Manager string `json:"manager,omitempty"`
	Model   string `json:"model,omitempty"`
	// Workers is the worker/processor count the run used.
	Workers int `json:"workers"`
	// TimeUnit is UnitVirtual or UnitNanos.
	TimeUnit string `json:"time_unit"`
	// Jobs names the jobs of a multi-program run, in index order.
	Jobs []string `json:"jobs,omitempty"`
	// Phases describes the (first job's) program, for replay cross-checks
	// and labeled exports.
	Phases []PhaseMeta `json:"phases,omitempty"`
}

// Virtual reports whether the trace's times are deterministic virtual
// units (diff compares them exactly; wall-clock times are never equal
// across runs and are compared structurally instead).
func (m *Meta) Virtual() bool { return m.TimeUnit == UnitVirtual }

// Ring is one worker's private event buffer. Only the owning worker
// calls Record; the Recorder merges rings in Take. Append amortizes to
// zero allocations: the backing array doubles like any slice but is
// retained by Reset, so steady-state recording never allocates (pinned
// by an AllocsPerRun gate). The per-ring mutex exists for live
// snapshots (Take on a long-lived pool's recorder, see cmd/rundownd):
// it is private to the ring, so the only contention a worker ever sees
// is an in-progress snapshot copy.
type Ring struct {
	rec *Recorder
	mu  sync.Mutex
	ev  []Event
	// pad keeps two adjacent Rings out of one cache line: each worker
	// bumps its own slice header on every Record, and cross-line sharing
	// would put that store on the neighbor's hot path.
	_ [64 - 8 - 8 - 24]byte
}

// Record appends one event stamped with the next global sequence number.
func (g *Ring) Record(k Kind, at int64, proc, job, phase int32, lo, hi uint32, arg int64) {
	e := Event{
		Seq: g.rec.seq.Add(1), Time: at, Kind: k,
		Proc: proc, Job: job, Phase: phase, Lo: lo, Hi: hi, Arg: arg,
	}
	g.mu.Lock()
	g.ev = append(g.ev, e)
	g.mu.Unlock()
}

// Len reports the number of events recorded so far.
func (g *Ring) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.ev)
}

// Reset drops the recorded events but keeps the backing array, so a
// reused ring records without allocating.
func (g *Ring) Reset() {
	g.mu.Lock()
	g.ev = g.ev[:0]
	g.mu.Unlock()
}

// Recorder owns the per-worker rings and the global sequence counter for
// one recorded run. Create one per run with NewRecorder, hand Ring(w) to
// each worker, and call Take once the run has quiesced.
type Recorder struct {
	meta  Meta
	start time.Time
	seq   atomic.Uint64
	rings []*Ring

	mu  sync.Mutex
	aux []Event
}

// NewRecorder builds a recorder with workers rings (minimum 1).
func NewRecorder(meta Meta, workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	r := &Recorder{meta: meta, start: time.Now()}
	r.rings = make([]*Ring, workers)
	for i := range r.rings {
		r.rings[i] = &Ring{rec: r}
	}
	return r
}

// Ring returns worker w's private ring (clamped into range, so callers
// with synthetic worker numbers never fault).
func (r *Recorder) Ring(w int) *Ring {
	if w < 0 || w >= len(r.rings) {
		w = 0
	}
	return r.rings[w]
}

// Now is the wall-clock timestamp source for real-machine recording:
// nanoseconds since the recorder was created (monotonic).
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// Emit records one event from a context that has no ring of its own — a
// controller retune under the manager lock, an abort from an arbitrary
// goroutine. It takes the recorder's mutex, so keep it off hot paths;
// rare events only.
func (r *Recorder) Emit(k Kind, at int64, proc, job, phase int32, lo, hi uint32, arg int64) {
	e := Event{
		Seq: r.seq.Add(1), Time: at, Kind: k,
		Proc: proc, Job: job, Phase: phase, Lo: lo, Hi: hi, Arg: arg,
	}
	r.mu.Lock()
	r.aux = append(r.aux, e)
	r.mu.Unlock()
}

// Meta returns the recorder's run description for late amendment (e.g.
// filling phase names after construction). Not safe concurrently with
// recording workers that read it; amend before the run or after Take.
func (r *Recorder) Meta() *Meta { return &r.meta }

// Take merges every ring and the aux channel into one Trace ordered by
// (Time, Seq). It does not consume the rings, so a second Take returns
// a superset of the first. Safe while recording continues (each ring is
// copied under its own lock): a live Take is a consistent prefix of
// every ring, though events racing the call may land on either side of
// the snapshot.
func (r *Recorder) Take() *Trace {
	var ev []Event
	for _, g := range r.rings {
		g.mu.Lock()
		ev = append(ev, g.ev...)
		g.mu.Unlock()
	}
	r.mu.Lock()
	ev = append(ev, r.aux...)
	r.mu.Unlock()
	sort.Slice(ev, func(i, j int) bool {
		if ev[i].Time != ev[j].Time {
			return ev[i].Time < ev[j].Time
		}
		return ev[i].Seq < ev[j].Seq
	})
	return &Trace{Meta: r.meta, Events: ev}
}

// Trace is a completed recording: the run description plus its events in
// (Time, Seq) order.
type Trace struct {
	Meta   Meta
	Events []Event
}

// Len reports the event count.
func (t *Trace) Len() int { return len(t.Events) }

// Granules sums the granules completed in the trace.
func (t *Trace) Granules() int64 {
	var n int64
	for _, e := range t.Events {
		if e.Kind == KComplete {
			n += int64(e.Hi - e.Lo)
		}
	}
	return n
}

// Count tallies events of kind k.
func (t *Trace) Count(k Kind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Span reports the closed busy window [first dispatch, last completion].
// Both are 0 for a trace with no dispatches.
func (t *Trace) Span() (start, end int64) {
	first := true
	for _, e := range t.Events {
		switch e.Kind {
		case KDispatch:
			if first || e.Time < start {
				start = e.Time
			}
			first = false
		case KComplete:
			if e.Time > end {
				end = e.Time
			}
		}
	}
	return start, end
}

// FilterJob extracts one job's schedule from a multi-job trace as a
// single-job trace replayable with sim.Replay: only the job's dispatch,
// completion, backfill, steal, fault and lifecycle events survive, and
// Meta.Jobs shrinks to the one name. Events before the job's LAST KRetry
// are dropped — a retried job re-runs from a fresh scheduler, so only the
// final attempt is a complete, conserved schedule. Machine-wide events
// (parks, marks, the run's own start/finish) are dropped; Meta.Phases is
// kept only for job 0, whose program it describes.
func (t *Trace) FilterJob(job int) *Trace {
	cut := -1
	for i, e := range t.Events {
		if e.Kind == KRetry && int(e.Job) == job {
			cut = i
		}
	}
	out := &Trace{Meta: t.Meta}
	out.Meta.Jobs = nil
	if job >= 0 && job < len(t.Meta.Jobs) {
		out.Meta.Jobs = []string{t.Meta.Jobs[job]}
	}
	if job != 0 {
		out.Meta.Phases = nil
	}
	for i, e := range t.Events {
		if i <= cut || int(e.Job) != job {
			continue
		}
		switch e.Kind {
		case KDispatch, KComplete, KBackfill, KStealWin,
			KStart, KFinish, KAbort, KFault:
			e.Job = 0
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Procs reports the processor count: Meta.Workers when set, otherwise
// the highest Proc seen plus one.
func (t *Trace) Procs() int {
	if t.Meta.Workers > 0 {
		return t.Meta.Workers
	}
	maxP := -1
	for _, e := range t.Events {
		if int(e.Proc) > maxP {
			maxP = int(e.Proc)
		}
	}
	return maxP + 1
}
