package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func sampleTrace() *Trace {
	rec := NewRecorder(Meta{
		Backend: "virtual", Model: "sharded", Workers: 2, TimeUnit: UnitVirtual,
		Phases: []PhaseMeta{{Name: "p0", Granules: 4}, {Name: "p1", Granules: 4}},
	}, 2)
	r := rec.Ring(0)
	r.Record(KStart, 0, -1, 0, -1, 0, 0, 10)
	r.Record(KDispatch, 10, 0, 0, 0, 0, 2, 200)
	r.Record(KDispatch, 10, 1, 0, 0, 2, 4, 200)
	r.Record(KComplete, 210, 0, 0, 0, 0, 2, 200)
	r.Record(KDispatch, 210, 0, 0, 1, 0, 4, 300)
	r.Record(KComplete, 210, 1, 0, 0, 2, 4, 200)
	r.Record(KPark, 215, 1, 0, -1, 0, 0, 0)
	rec.Emit(KRetune, 400, -1, -1, -1, 0, 0, 32)
	r.Record(KComplete, 510, 0, 0, 1, 0, 4, 300)
	r.Record(KFinish, 510, -1, 0, -1, 0, 0, 0)
	return rec.Take()
}

func TestTakeOrdersByTimeSeq(t *testing.T) {
	tr := sampleTrace()
	for i := 1; i < len(tr.Events); i++ {
		a, b := tr.Events[i-1], tr.Events[i]
		if a.Time > b.Time || (a.Time == b.Time && a.Seq >= b.Seq) {
			t.Fatalf("events %d,%d out of (Time, Seq) order: %v then %v", i-1, i, a, b)
		}
	}
	if got := tr.Granules(); got != 8 {
		t.Fatalf("Granules = %d, want 8", got)
	}
	if start, end := tr.Span(); start != 10 || end != 510 {
		t.Fatalf("Span = [%d, %d], want [10, 510]", start, end)
	}
}

// Concurrent rings must interleave into a strictly increasing Seq order
// with no events lost.
func TestConcurrentRings(t *testing.T) {
	const workers, per = 8, 1000
	rec := NewRecorder(Meta{Backend: "exec", Workers: workers, TimeUnit: UnitNanos}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := rec.Ring(w)
			for i := 0; i < per; i++ {
				g.Record(KDispatch, rec.Now(), int32(w), 0, 0, uint32(i), uint32(i+1), 0)
			}
		}(w)
	}
	wg.Wait()
	tr := rec.Take()
	if tr.Len() != workers*per {
		t.Fatalf("lost events: %d recorded, want %d", tr.Len(), workers*per)
	}
	seen := map[uint64]bool{}
	for _, e := range tr.Events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Meta.Backend != tr.Meta.Backend || got.Meta.Model != tr.Meta.Model ||
		got.Meta.Workers != tr.Meta.Workers || got.Meta.TimeUnit != tr.Meta.TimeUnit ||
		len(got.Meta.Phases) != len(tr.Meta.Phases) {
		t.Fatalf("meta mangled: %+v vs %+v", got.Meta, tr.Meta)
	}
	if got.Meta.Version != FormatVersion {
		t.Fatalf("read version %d, want %d", got.Meta.Version, FormatVersion)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mangled: %v vs %v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b := buf.Bytes()

	flipped := append([]byte(nil), b...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Fatal("Read accepted a corrupted payload")
	}
	truncated := b[:len(b)-10]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Fatal("Read accepted a truncated file")
	}
	badVersion := append([]byte(nil), b...)
	badVersion[4] = 99
	if _, err := Read(bytes.NewReader(badVersion)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("Read accepted unknown version: %v", err)
	}
	if _, err := Read(strings.NewReader("not a trace at all, definitely")); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

func TestDiff(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	if d := Diff(a, b); !d.Identical || d.DivergeAt != -1 || !d.Exact {
		t.Fatalf("identical traces reported divergent: %+v", d)
	}

	b.Events[3].Proc = 1 // completion moves to the other worker
	d := Diff(a, b)
	if d.Identical || d.DivergeAt != 3 || d.Reason == "" {
		t.Fatalf("moved completion not caught: %+v", d)
	}

	c := sampleTrace()
	c.Events = c.Events[:len(c.Events)-1]
	d = Diff(a, c)
	if d.Identical || d.DivergeAt != len(c.Events) || d.B != nil || d.A == nil {
		t.Fatalf("prefix trace not caught: %+v", d)
	}

	// Wall-clock traces compare structurally: perturbing a timestamp is
	// not a divergence, moving an event between procs is.
	wa, wb := sampleTrace(), sampleTrace()
	wa.Meta.TimeUnit, wb.Meta.TimeUnit = UnitNanos, UnitNanos
	wb.Events[1].Time += 12345
	wb.Events[1].Arg += 9
	if d := Diff(wa, wb); !d.Identical || d.Exact {
		t.Fatalf("structural comparison flagged timing jitter: %+v", d)
	}

	if deltas := Diff(a, a).Phases; len(deltas) != 2 ||
		deltas[0].BusyA != 400 || deltas[1].BusyA != 300 {
		t.Fatalf("phase deltas wrong: %+v", deltas)
	}
}

func TestTimelineExport(t *testing.T) {
	tr := sampleTrace()
	tl := tr.Timeline(0)
	if got := tl.BusyTotal(); got != 700 {
		t.Fatalf("timeline busy total = %d, want 700 (sum of completion durations)", got)
	}
	by := tl.ByProc()
	if by[0] != 500 || by[1] != 200 {
		t.Fatalf("per-proc busy = %v, want [500 200]", by)
	}
	if g := tr.Gantt(); g.End() != 510 {
		t.Fatalf("gantt end = %d, want 510", g.End())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"kind": "dispatch"`, `"kind": "retune"`, `"spans"`, `"time_unit": "virtual"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON export missing %s:\n%s", want, buf.String())
		}
	}
}

// The recording hot path must be amortized zero-alloc: past the growth
// knee, Record never allocates. This is the CI gate ISSUE 7 names.
func TestRingRecordZeroAlloc(t *testing.T) {
	rec := NewRecorder(Meta{Backend: "exec", Workers: 1, TimeUnit: UnitNanos}, 1)
	g := rec.Ring(0)
	for i := 0; i < 1<<14; i++ {
		g.Record(KDispatch, int64(i), 0, 0, 0, 0, 1, 0)
	}
	g.Reset() // keeps capacity: steady state begins here
	var i int64
	allocs := testing.AllocsPerRun(10000, func() {
		g.Record(KComplete, i, 0, 0, 0, 0, 1, 100)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f allocs/op in steady state, want 0", allocs)
	}
}
