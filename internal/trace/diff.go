package trace

import (
	"fmt"
	"io"
)

// PhaseDelta compares one phase's utilization between two traces: busy
// time is the summed task durations of the phase's completions, and
// utilization divides it by the trace's whole busy window times its
// worker count.
type PhaseDelta struct {
	Phase        int32
	Name         string
	BusyA, BusyB int64
	UtilA, UtilB float64
}

// DiffResult reports how two traces compare. Two deterministic (virtual)
// traces of the same run are expected to be identical event for event;
// wall-clock traces are compared structurally (timestamps and durations
// never repeat across real runs).
type DiffResult struct {
	// Identical: every event matched under the comparison rule.
	Identical bool
	// DivergeAt is the index of the first differing event (-1 when
	// identical). When one trace is a prefix of the other, it is the
	// shorter length and the missing side's event is nil.
	DivergeAt int
	// A, B are the first diverging events (nil past a trace's end).
	A, B *Event
	// Reason says what differed.
	Reason string
	// Exact: timestamps and payloads were compared too (both traces
	// virtual), not just structure.
	Exact bool
	// Phases holds the per-phase utilization deltas regardless of
	// divergence, union of phases seen in either trace, ascending.
	Phases []PhaseDelta
}

// sameStructure compares the schedule-shaped fields: what happened, on
// which processor, for which job/phase/granules.
func sameStructure(a, b *Event) bool {
	return a.Kind == b.Kind && a.Proc == b.Proc && a.Job == b.Job &&
		a.Phase == b.Phase && a.Lo == b.Lo && a.Hi == b.Hi
}

// Diff aligns traces a and b event by event and reports the first
// divergence plus per-phase utilization deltas. When both traces carry
// virtual timestamps the comparison is exact (Time and Arg included);
// otherwise only the structure is compared.
func Diff(a, b *Trace) *DiffResult {
	exact := a.Meta.Virtual() && b.Meta.Virtual()
	res := &DiffResult{Identical: true, DivergeAt: -1, Exact: exact}

	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		ea, eb := &a.Events[i], &b.Events[i]
		switch {
		case !sameStructure(ea, eb):
			res.Reason = "structure differs"
		case exact && ea.Time != eb.Time:
			res.Reason = fmt.Sprintf("virtual time differs (%d vs %d)", ea.Time, eb.Time)
		case exact && ea.Arg != eb.Arg:
			res.Reason = fmt.Sprintf("payload differs (%d vs %d)", ea.Arg, eb.Arg)
		default:
			continue
		}
		res.Identical = false
		res.DivergeAt = i
		res.A, res.B = ea, eb
		break
	}
	if res.Identical && len(a.Events) != len(b.Events) {
		res.Identical = false
		res.DivergeAt = n
		if len(a.Events) > n {
			res.A = &a.Events[n]
		}
		if len(b.Events) > n {
			res.B = &b.Events[n]
		}
		res.Reason = fmt.Sprintf("lengths differ (%d vs %d events)", len(a.Events), len(b.Events))
	}

	res.Phases = phaseDeltas(a, b)
	return res
}

func phaseBusy(t *Trace) map[int32]int64 {
	m := map[int32]int64{}
	for _, e := range t.Events {
		if e.Kind == KComplete {
			m[e.Phase] += e.Arg
		}
	}
	return m
}

func phaseDeltas(a, b *Trace) []PhaseDelta {
	ba, bb := phaseBusy(a), phaseBusy(b)
	maxPhase := int32(-1)
	for p := range ba {
		if p > maxPhase {
			maxPhase = p
		}
	}
	for p := range bb {
		if p > maxPhase {
			maxPhase = p
		}
	}
	if maxPhase < 0 {
		return nil
	}
	capA := capacity(a)
	capB := capacity(b)
	out := make([]PhaseDelta, 0, maxPhase+1)
	for p := int32(0); p <= maxPhase; p++ {
		if _, okA := ba[p]; !okA {
			if _, okB := bb[p]; !okB {
				continue
			}
		}
		d := PhaseDelta{Phase: p, BusyA: ba[p], BusyB: bb[p]}
		if int(p) < len(a.Meta.Phases) {
			d.Name = a.Meta.Phases[p].Name
		} else if int(p) < len(b.Meta.Phases) {
			d.Name = b.Meta.Phases[p].Name
		}
		if capA > 0 {
			d.UtilA = float64(d.BusyA) / capA
		}
		if capB > 0 {
			d.UtilB = float64(d.BusyB) / capB
		}
		out = append(out, d)
	}
	return out
}

// capacity is workers × busy-window length: the denominator turning a
// phase's busy time into its share of the machine.
func capacity(t *Trace) float64 {
	start, end := t.Span()
	if end <= start {
		return 0
	}
	return float64(t.Procs()) * float64(end-start)
}

// Format renders the diff as a human-readable report.
func (r *DiffResult) Format(w io.Writer) {
	if r.Identical {
		fmt.Fprintf(w, "traces identical (%s comparison)\n", r.mode())
	} else {
		fmt.Fprintf(w, "traces diverge at event %d (%s comparison): %s\n", r.DivergeAt, r.mode(), r.Reason)
		if r.A != nil {
			fmt.Fprintf(w, "  a: %v\n", *r.A)
		} else {
			fmt.Fprintf(w, "  a: <ended>\n")
		}
		if r.B != nil {
			fmt.Fprintf(w, "  b: %v\n", *r.B)
		} else {
			fmt.Fprintf(w, "  b: <ended>\n")
		}
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "per-phase utilization:\n")
		for _, d := range r.Phases {
			name := d.Name
			if name == "" {
				name = fmt.Sprintf("phase%d", d.Phase)
			}
			fmt.Fprintf(w, "  %2d %-24s busy %12d vs %-12d util %.4f vs %.4f (Δ%+.4f)\n",
				d.Phase, name, d.BusyA, d.BusyB, d.UtilA, d.UtilB, d.UtilB-d.UtilA)
		}
	}
}

func (r *DiffResult) mode() string {
	if r.Exact {
		return "exact"
	}
	return "structural"
}
