package trace

// The on-disk format. One trace file is:
//
//	magic   "RDTR"                       4 bytes
//	version u8                           currently 1
//	metaLen u32 LE                       length of the meta JSON block
//	meta    JSON(Meta)                   forward-extensible run description
//	count   u64 LE                       number of event records
//	events  count × 45-byte records      fixed little-endian layout below
//	crc     u32 LE                       CRC-32 (IEEE) of everything above
//
// Each record: seq u64, time i64, kind u8, proc i32, job i32, phase i32,
// lo u32, hi u32, arg i64 — 45 bytes, little-endian throughout. The JSON
// meta block absorbs descriptive growth without a version bump; the
// version byte only changes when the record layout itself does, and the
// reader rejects versions it does not know.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	fileMagic = "RDTR"
	// FormatVersion is the record-layout version Write produces and Read
	// accepts.
	FormatVersion = 1
	recordSize    = 45
)

func putEvent(b []byte, e *Event) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], e.Seq)
	le.PutUint64(b[8:], uint64(e.Time))
	b[16] = byte(e.Kind)
	le.PutUint32(b[17:], uint32(e.Proc))
	le.PutUint32(b[21:], uint32(e.Job))
	le.PutUint32(b[25:], uint32(e.Phase))
	le.PutUint32(b[29:], e.Lo)
	le.PutUint32(b[33:], e.Hi)
	le.PutUint64(b[37:], uint64(e.Arg))
}

func getEvent(b []byte, e *Event) {
	le := binary.LittleEndian
	e.Seq = le.Uint64(b[0:])
	e.Time = int64(le.Uint64(b[8:]))
	e.Kind = Kind(b[16])
	e.Proc = int32(le.Uint32(b[17:]))
	e.Job = int32(le.Uint32(b[21:]))
	e.Phase = int32(le.Uint32(b[25:]))
	e.Lo = le.Uint32(b[29:])
	e.Hi = le.Uint32(b[33:])
	e.Arg = int64(le.Uint64(b[37:]))
}

// Write serializes t to w in the versioned binary format.
func Write(w io.Writer, t *Trace) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	meta := t.Meta
	meta.Version = FormatVersion
	mj, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("trace: encoding meta: %w", err)
	}

	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(FormatVersion); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(mj)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	if _, err := bw.Write(mj); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(t.Events)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range t.Events {
		putEvent(rec[:], &t.Events[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	// The trailer CRC covers everything written so far; flush through the
	// MultiWriter first so the hash has seen it all.
	if err := bw.Flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	_, err = w.Write(u32[:])
	return err
}

// Read parses one trace from r, verifying the version and the trailer
// checksum. The stream is slurped whole — a trace is bounded by its
// event count (45 bytes each), and whole-buffer parsing keeps the
// checksum honest without double-buffering games.
func Read(r io.Reader) (*Trace, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading stream: %w", err)
	}
	minHeader := len(fileMagic) + 1 + 4
	if len(buf) < minHeader+8+4 {
		return nil, fmt.Errorf("trace: file too short (%d bytes)", len(buf))
	}
	if string(buf[:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", buf[:4])
	}
	if v := buf[4]; v != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (reader knows %d)", v, FormatVersion)
	}

	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	want := crc32.ChecksumIEEE(body)
	if got := binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("trace: checksum mismatch (file %08x, computed %08x): truncated or corrupt", got, want)
	}

	off := minHeader
	metaLen := int(binary.LittleEndian.Uint32(buf[5:]))
	if metaLen < 0 || off+metaLen+8 > len(body) {
		return nil, fmt.Errorf("trace: meta length %d exceeds file", metaLen)
	}
	t := &Trace{}
	if err := json.Unmarshal(body[off:off+metaLen], &t.Meta); err != nil {
		return nil, fmt.Errorf("trace: decoding meta: %w", err)
	}
	off += metaLen

	count := binary.LittleEndian.Uint64(body[off:])
	off += 8
	if int64(count) < 0 || int(count)*recordSize != len(body)-off {
		return nil, fmt.Errorf("trace: event count %d does not match %d payload bytes",
			count, len(body)-off)
	}
	t.Events = make([]Event, count)
	for i := range t.Events {
		getEvent(body[off:], &t.Events[i])
		off += recordSize
	}
	return t, nil
}

// WriteFile writes t to path (creating or truncating it).
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses the trace stored at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
