package trace

// Timeline/Gantt/JSON export. A trace alone reconstructs every busy
// interval: KComplete carries the task's duration in Arg, so the task
// occupied [Time-Arg, Time) on Proc. That holds for both time units —
// virtual compute cost in simulator traces, wall nanoseconds in
// executive/pool traces — which is why no dispatch/complete pairing pass
// is needed here.

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
)

// Timeline builds a bucketed utilization timeline from the trace's
// completion records. bucket <= 0 picks roughly 200 buckets across the
// busy window.
func (t *Trace) Timeline(bucket int64) *metrics.Timeline {
	_, end := t.Span()
	if bucket <= 0 {
		bucket = end / 200
		if bucket < 1 {
			bucket = 1
		}
	}
	tl := metrics.NewTimeline(t.Procs(), bucket)
	for _, e := range t.Events {
		if e.Kind == KComplete && e.Proc >= 0 && e.Arg > 0 {
			tl.AddBusy(int(e.Proc), e.Time-e.Arg, e.Time)
		}
	}
	tl.SetEnd(end)
	return tl
}

// Gantt builds a per-processor span chart from the trace's completion
// records, labeling each span with its phase letter. Only use on small
// traces; memory is O(tasks), as with the simulator's own Gantt.
func (t *Trace) Gantt() *metrics.Gantt {
	g := metrics.NewGantt(t.Procs())
	for _, e := range t.Events {
		if e.Kind == KComplete && e.Proc >= 0 && e.Arg > 0 {
			g.Add(int(e.Proc), e.Time-e.Arg, e.Time, rune('A'+int(e.Phase)%26))
		}
	}
	return g
}

// jsonTrace is the export schema: the run description, one object per
// event, and the reconstructed busy spans ready for external plotting.
type jsonTrace struct {
	Meta   Meta        `json:"meta"`
	Events []jsonEvent `json:"events"`
	Spans  []jsonSpan  `json:"spans"`
}

type jsonEvent struct {
	Seq   uint64 `json:"seq"`
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Proc  int32  `json:"proc"`
	Job   int32  `json:"job"`
	Phase int32  `json:"phase"`
	Lo    uint32 `json:"lo,omitempty"`
	Hi    uint32 `json:"hi,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
}

type jsonSpan struct {
	Proc  int32 `json:"proc"`
	Job   int32 `json:"job"`
	Phase int32 `json:"phase"`
	T0    int64 `json:"t0"`
	T1    int64 `json:"t1"`
}

// WriteJSON exports the trace for external tooling: meta, the full event
// list, and per-task busy spans derived from the completions.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{
		Meta:   t.Meta,
		Events: make([]jsonEvent, len(t.Events)),
		Spans:  make([]jsonSpan, 0, t.Count(KComplete)),
	}
	out.Meta.Version = FormatVersion
	for i, e := range t.Events {
		out.Events[i] = jsonEvent{
			Seq: e.Seq, T: e.Time, Kind: e.Kind.String(),
			Proc: e.Proc, Job: e.Job, Phase: e.Phase,
			Lo: e.Lo, Hi: e.Hi, Arg: e.Arg,
		}
		if e.Kind == KComplete && e.Proc >= 0 && e.Arg > 0 {
			out.Spans = append(out.Spans, jsonSpan{
				Proc: e.Proc, Job: e.Job, Phase: e.Phase,
				T0: e.Time - e.Arg, T1: e.Time,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
