package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingPushPop(t *testing.T) {
	r := NewRing[int]()
	if !r.Empty() || r.Len() != 0 {
		t.Fatal("new ring not empty")
	}
	for i := 1; i <= 3; i++ {
		r.PushBack(NewNode(i))
	}
	r.PushFront(NewNode(0))
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	for want := 0; want <= 3; want++ {
		n := r.PopFront()
		if n == nil || n.Value != want {
			t.Fatalf("PopFront = %v, want %d", n, want)
		}
		if n.Attached() {
			t.Fatal("popped node still attached")
		}
	}
	if r.PopFront() != nil {
		t.Fatal("PopFront on empty != nil")
	}
}

func TestRingPopBack(t *testing.T) {
	r := NewRing[string]()
	r.PushBack(NewNode("a"))
	r.PushBack(NewNode("b"))
	if n := r.PopBack(); n.Value != "b" {
		t.Fatalf("PopBack = %q", n.Value)
	}
	if n := r.Back(); n.Value != "a" {
		t.Fatalf("Back = %q", n.Value)
	}
}

func TestRingRemoveMiddle(t *testing.T) {
	r := NewRing[int]()
	var nodes []*Node[int]
	for i := 0; i < 5; i++ {
		n := NewNode(i)
		nodes = append(nodes, n)
		r.PushBack(n)
	}
	r.Remove(nodes[2])
	want := []int{0, 1, 3, 4}
	var got []int
	r.Each(func(n *Node[int]) { got = append(got, n.Value) })
	if len(got) != len(want) {
		t.Fatalf("after remove: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after remove: %v, want %v", got, want)
		}
	}
}

func TestRingInsertAfterBefore(t *testing.T) {
	r := NewRing[int]()
	a, c := NewNode(1), NewNode(3)
	r.PushBack(a)
	r.PushBack(c)
	r.InsertAfter(NewNode(2), a)
	r.InsertBefore(NewNode(0), a)
	var got []int
	r.Each(func(n *Node[int]) { got = append(got, n.Value) })
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestRingDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double insert")
		}
	}()
	r := NewRing[int]()
	n := NewNode(1)
	r.PushBack(n)
	r.PushBack(n)
}

func TestRingRemoveForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on foreign remove")
		}
	}()
	r1, r2 := NewRing[int](), NewRing[int]()
	n := NewNode(1)
	r1.PushBack(n)
	r2.Remove(n)
}

func TestRingDrainInto(t *testing.T) {
	src, dst := NewRing[int](), NewRing[int]()
	dst.PushBack(NewNode(0))
	for i := 1; i <= 3; i++ {
		src.PushBack(NewNode(i))
	}
	src.DrainInto(dst)
	if !src.Empty() || dst.Len() != 4 {
		t.Fatalf("src %d dst %d", src.Len(), dst.Len())
	}
	for want := 0; want <= 3; want++ {
		if n := dst.PopFront(); n.Value != want {
			t.Fatalf("order broken at %d: %d", want, n.Value)
		}
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing[int]()
	for i := 0; i < 3; i++ {
		r.PushBack(NewNode(i))
	}
	var got []int
	r.Drain(func(v int) { got = append(got, v) })
	if !r.Empty() || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Drain got %v", got)
	}
}

func TestRingNext(t *testing.T) {
	r := NewRing[int]()
	a, b := NewNode(1), NewNode(2)
	r.PushBack(a)
	r.PushBack(b)
	if r.Next(a) != b {
		t.Fatal("Next(a) != b")
	}
	if r.Next(b) != nil {
		t.Fatal("Next(back) != nil")
	}
}

func TestRingZeroValue(t *testing.T) {
	var r Ring[int]
	r.PushBack(NewNode(7))
	if n := r.PopFront(); n == nil || n.Value != 7 {
		t.Fatal("zero-value ring unusable")
	}
}

// TestRingQuickAgainstSlice models the ring with a plain slice under random
// front/back push/pop sequences.
func TestRingQuickAgainstSlice(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRing[int]()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				r.PushBack(NewNode(next))
				model = append(model, next)
				next++
			case 1:
				r.PushFront(NewNode(next))
				model = append([]int{next}, model...)
				next++
			case 2:
				n := r.PopFront()
				if len(model) == 0 {
					if n != nil {
						return false
					}
				} else {
					if n == nil || n.Value != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				n := r.PopBack()
				if len(model) == 0 {
					if n != nil {
						return false
					}
				} else {
					if n == nil || n.Value != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if r.Len() != len(model) {
				return false
			}
			_ = rng
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[int]()
	nodes := make([]*Node[int], 64)
	for i := range nodes {
		nodes[i] = NewNode(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			r.PushBack(n)
		}
		for range nodes {
			r.PopFront()
		}
	}
}
