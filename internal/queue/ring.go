// Package queue implements the queueing structures of the PAX executive as
// described in Jones (1986): a double circularly-linked list with a queue
// head (used both for the waiting computation queue and for the per-
// description conflict queues), and a priority-classed waiting computation
// queue built on top of it.
//
// The paper: "each internal description of one (or more) computational
// granules included a queue head for a double circularly-linked list of
// computable but conflicting computational granules. Upon completion of the
// described computation, all the queued conflicting computations became
// unconditionally computable and were placed in the waiting computation
// queue. The waiting computation queue was kept in a known order and ...
// such conflicting computations would be placed ahead of the normal
// computations in the queue and, thus, given higher priority."
package queue

// Node is an element of a Ring. A Node belongs to at most one Ring at a
// time; inserting an attached node panics (it indicates executive-logic
// corruption, which must not be masked).
type Node[T any] struct {
	prev, next *Node[T]
	ring       *Ring[T]
	Value      T
}

// NewNode returns a detached node carrying v.
func NewNode[T any](v T) *Node[T] { return &Node[T]{Value: v} }

// Attached reports whether the node is currently linked into a ring.
func (n *Node[T]) Attached() bool { return n.ring != nil }

// Ring is a double circularly-linked list with a sentinel head, the queue
// structure of the PAX executive. All operations are O(1) except Len-free
// traversal helpers. The zero Ring must be initialized with Init or via
// NewRing. Ring is not safe for concurrent use.
type Ring[T any] struct {
	head Node[T] // sentinel; head.next = front, head.prev = back
	n    int
}

// NewRing returns an initialized empty ring.
func NewRing[T any]() *Ring[T] {
	r := &Ring[T]{}
	r.Init()
	return r
}

// Init (re)initializes the ring to empty. Any nodes previously attached are
// abandoned (their ring pointers are left stale only if the caller discards
// them; Init is intended for fresh rings).
func (r *Ring[T]) Init() {
	r.head.prev = &r.head
	r.head.next = &r.head
	r.head.ring = r
	r.n = 0
}

func (r *Ring[T]) lazyInit() {
	if r.head.next == nil {
		r.Init()
	}
}

// Len reports the number of nodes in the ring.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring has no nodes.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

func (r *Ring[T]) insert(n, after *Node[T]) {
	if n.ring != nil {
		panic("queue: inserting attached node")
	}
	n.prev = after
	n.next = after.next
	after.next.prev = n
	after.next = n
	n.ring = r
	r.n++
}

// PushFront inserts n at the front of the ring.
func (r *Ring[T]) PushFront(n *Node[T]) {
	r.lazyInit()
	r.insert(n, &r.head)
}

// PushBack inserts n at the back of the ring.
func (r *Ring[T]) PushBack(n *Node[T]) {
	r.lazyInit()
	r.insert(n, r.head.prev)
}

// InsertAfter inserts n immediately after mark, which must be attached to r.
func (r *Ring[T]) InsertAfter(n, mark *Node[T]) {
	if mark.ring != r {
		panic("queue: mark not in this ring")
	}
	r.insert(n, mark)
}

// InsertBefore inserts n immediately before mark, which must be attached to r.
func (r *Ring[T]) InsertBefore(n, mark *Node[T]) {
	if mark.ring != r {
		panic("queue: mark not in this ring")
	}
	r.insert(n, mark.prev)
}

// Remove unlinks n from the ring. It panics if n is not attached to r.
func (r *Ring[T]) Remove(n *Node[T]) {
	if n.ring != r {
		panic("queue: removing node not in this ring")
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev = nil
	n.next = nil
	n.ring = nil
	r.n--
}

// Front returns the first node, or nil when empty.
func (r *Ring[T]) Front() *Node[T] {
	if r.n == 0 {
		return nil
	}
	return r.head.next
}

// Back returns the last node, or nil when empty.
func (r *Ring[T]) Back() *Node[T] {
	if r.n == 0 {
		return nil
	}
	return r.head.prev
}

// PopFront removes and returns the first node, or nil when empty.
func (r *Ring[T]) PopFront() *Node[T] {
	n := r.Front()
	if n != nil {
		r.Remove(n)
	}
	return n
}

// PopBack removes and returns the last node, or nil when empty.
func (r *Ring[T]) PopBack() *Node[T] {
	n := r.Back()
	if n != nil {
		r.Remove(n)
	}
	return n
}

// Next returns the node after n within the ring, or nil at the end.
func (r *Ring[T]) Next(n *Node[T]) *Node[T] {
	if n.ring != r {
		panic("queue: node not in this ring")
	}
	if n.next == &r.head {
		return nil
	}
	return n.next
}

// Each calls f on every node value from front to back. f must not modify
// the ring except through the provided node (removal of the current node
// while iterating is safe because next is captured first).
func (r *Ring[T]) Each(f func(n *Node[T])) {
	r.lazyInit()
	for n := r.head.next; n != &r.head; {
		next := n.next
		f(n)
		n = next
	}
}

// DrainInto removes every node from r (front to back) and appends it to the
// back of dst. This models PAX releasing an entire conflict queue into the
// waiting computation queue upon completion of the described computation.
func (r *Ring[T]) DrainInto(dst *Ring[T]) {
	for {
		n := r.PopFront()
		if n == nil {
			return
		}
		dst.PushBack(n)
	}
}

// Drain removes every node, calling f on each value in front-to-back order.
func (r *Ring[T]) Drain(f func(v T)) {
	for {
		n := r.PopFront()
		if n == nil {
			return
		}
		f(n.Value)
	}
}
