package queue

import (
	"testing"
	"testing/quick"
)

func TestWaitClassOrder(t *testing.T) {
	w := NewWait[string]()
	w.Push(NewNode("n1"), Normal)
	w.Push(NewNode("b1"), Background)
	w.Push(NewNode("r1"), Released)
	w.Push(NewNode("e1"), Elevated)
	w.Push(NewNode("n2"), Normal)

	want := []string{"e1", "r1", "n1", "n2", "b1"}
	for _, expect := range want {
		n, _, ok := w.Pop()
		if !ok || n.Value != expect {
			t.Fatalf("Pop = %v, want %q", n, expect)
		}
	}
	if _, _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty reported ok")
	}
}

func TestWaitPushFront(t *testing.T) {
	w := NewWait[int]()
	w.Push(NewNode(1), Normal)
	w.PushFront(NewNode(0), Normal)
	n, c, _ := w.Pop()
	if n.Value != 0 || c != Normal {
		t.Fatalf("Pop = %d class %v", n.Value, c)
	}
}

func TestWaitPeekRemove(t *testing.T) {
	w := NewWait[int]()
	a := NewNode(1)
	w.Push(a, Released)
	n, c, ok := w.Peek()
	if !ok || n != a || c != Released || w.Len() != 1 {
		t.Fatal("Peek broken")
	}
	w.Remove(a, Released)
	if !w.Empty() {
		t.Fatal("Remove did not empty queue")
	}
}

func TestWaitPromote(t *testing.T) {
	w := NewWait[int]()
	w.Push(NewNode(10), Background)
	w.Push(NewNode(11), Background)
	w.Push(NewNode(5), Normal)
	w.Promote(Background, Normal)
	if w.LenClass(Background) != 0 || w.LenClass(Normal) != 3 {
		t.Fatalf("promote: bg=%d normal=%d", w.LenClass(Background), w.LenClass(Normal))
	}
	// FIFO preserved: 5 was already in Normal, then 10, 11 appended.
	var got []int
	for {
		n, _, ok := w.Pop()
		if !ok {
			break
		}
		got = append(got, n.Value)
	}
	want := []int{5, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

func TestWaitEach(t *testing.T) {
	w := NewWait[int]()
	w.Push(NewNode(2), Normal)
	w.Push(NewNode(1), Elevated)
	var got []int
	var classes []Class
	w.Each(func(n *Node[int], c Class) { got = append(got, n.Value); classes = append(classes, c) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 || classes[0] != Elevated {
		t.Fatalf("Each order %v %v", got, classes)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{Elevated: "elevated", Released: "released", Normal: "normal", Background: "background", Class(9): "Class(9)"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

// TestWaitQuickDispatchOrder: for any push sequence, the pop order is sorted
// by class, FIFO within class.
func TestWaitQuickDispatchOrder(t *testing.T) {
	type entry struct {
		class Class
		seq   int
	}
	f := func(classesRaw []uint8) bool {
		w := NewWait[entry]()
		for i, raw := range classesRaw {
			c := Class(raw % uint8(NumClasses))
			w.Push(NewNode(entry{class: c, seq: i}), c)
		}
		prev := entry{class: 0, seq: -1}
		first := true
		for {
			n, c, ok := w.Pop()
			if !ok {
				break
			}
			e := n.Value
			if e.class != c {
				return false
			}
			if !first {
				if e.class < prev.class {
					return false // class order violated
				}
				if e.class == prev.class && e.seq < prev.seq {
					return false // FIFO violated
				}
			}
			prev, first = e, false
		}
		return w.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaitPushPop(b *testing.B) {
	w := NewWait[int]()
	nodes := make([]*Node[int], 256)
	for i := range nodes {
		nodes[i] = NewNode(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, n := range nodes {
			w.Push(n, Class(j%NumClasses))
		}
		for range nodes {
			w.Pop()
		}
	}
}
