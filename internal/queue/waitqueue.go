package queue

import "fmt"

// Class is the priority class of an entry in the waiting computation queue.
// The queue is "kept in a known order": all entries of a lower-numbered
// class are dispatched before any entry of a higher-numbered class, FIFO
// within a class (except entries pushed to the class front).
type Class uint8

const (
	// Elevated holds current-phase granules whose priority was raised
	// because they enable an identified successor subset (the paper's
	// "placed in the waiting computation queue in such a manner as to
	// elevate their computational priority").
	Elevated Class = iota
	// Released holds computations released from a conflict queue — e.g.
	// successor-phase granules enabled by a completed current-phase
	// description. PAX placed these "ahead of the normal computations".
	Released
	// Normal holds ordinary current-phase work.
	Normal
	// Background holds overlapped successor-phase work that fills in only
	// when nothing above is available — e.g. a universally-mapped successor
	// phase, which PAX placed "behind the current phase description".
	Background
	numClasses
)

// NumClasses is the number of priority classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case Elevated:
		return "elevated"
	case Released:
		return "released"
	case Normal:
		return "normal"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Wait is the PAX waiting computation queue: a fixed set of priority
// classes, each a double circularly-linked ring, dispatched in class order.
// The zero value is ready to use. Not safe for concurrent use.
type Wait[T any] struct {
	classes [numClasses]Ring[T]
	n       int
}

// NewWait returns an empty waiting computation queue.
func NewWait[T any]() *Wait[T] { return &Wait[T]{} }

// Len reports the total number of queued entries.
func (w *Wait[T]) Len() int { return w.n }

// Empty reports whether no entries are queued.
func (w *Wait[T]) Empty() bool { return w.n == 0 }

// LenClass reports the number of entries queued in class c.
func (w *Wait[T]) LenClass(c Class) int { return w.classes[c].Len() }

// Push appends node n to the back of class c.
func (w *Wait[T]) Push(n *Node[T], c Class) {
	w.classes[c].PushBack(n)
	w.n++
}

// PushFront inserts node n at the front of class c. PAX used this to give a
// split-off description remainder back its place at the head of the queue.
func (w *Wait[T]) PushFront(n *Node[T], c Class) {
	w.classes[c].PushFront(n)
	w.n++
}

// Pop removes and returns the highest-priority entry: the front of the
// lowest-numbered non-empty class. ok is false when the queue is empty.
// The entry's class is returned so callers can requeue remainders in place.
func (w *Wait[T]) Pop() (n *Node[T], c Class, ok bool) {
	for ci := Class(0); ci < numClasses; ci++ {
		if node := w.classes[ci].PopFront(); node != nil {
			w.n--
			return node, ci, true
		}
	}
	return nil, 0, false
}

// Peek returns the entry Pop would return, without removing it.
func (w *Wait[T]) Peek() (n *Node[T], c Class, ok bool) {
	for ci := Class(0); ci < numClasses; ci++ {
		if node := w.classes[ci].Front(); node != nil {
			return node, ci, true
		}
	}
	return nil, 0, false
}

// Remove unlinks n from class c. The caller must pass the class the node
// currently occupies.
func (w *Wait[T]) Remove(n *Node[T], c Class) {
	w.classes[c].Remove(n)
	w.n--
}

// Promote moves every entry of class from to the back of class to,
// preserving FIFO order. The scheduler uses this when an overlapped
// successor phase becomes the current phase: its Background entries become
// Normal work.
func (w *Wait[T]) Promote(from, to Class) {
	w.classes[from].DrainInto(&w.classes[to])
}

// Each calls f for every queued entry in dispatch order, with its class.
func (w *Wait[T]) Each(f func(n *Node[T], c Class)) {
	for ci := Class(0); ci < numClasses; ci++ {
		c := ci
		w.classes[ci].Each(func(n *Node[T]) { f(n, c) })
	}
}
