package paxlang

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/workload"
)

// PhaseImpl binds a DEFINEd phase name to Go-side behaviour. All fields are
// optional: a nil Work is a pure scheduling phase, a nil Cost falls back to
// the COST expression (or unit cost), and SerialBefore augments the SERIAL
// cost declared in the source.
type PhaseImpl struct {
	Work         core.WorkFn
	Cost         core.CostFn
	SerialBefore func()
}

// Registry resolves phase implementations and indirect-mapping functions
// for a source file.
type Registry struct {
	// Impls maps phase names to implementations.
	Impls map[string]PhaseImpl
	// IndirectSpec supplies Forward/Requires functions for FORWARD,
	// REVERSE and SEAM mapping options between the named phases. When
	// nil, deterministic pseudo-random information selection maps are
	// generated (the paper's IRAND() setup), seeded by Seed.
	IndirectSpec func(kind enable.Kind, pred, succ string, nPred, nSucc int) (*enable.Spec, error)
	// Seed drives the default generated maps.
	Seed uint64
}

// Options bounds interpretation.
type Options struct {
	// MaxSteps limits interpreter steps (default 1 << 20).
	MaxSteps int
	// MaxDispatches limits the executed phase count (default 1 << 16).
	MaxDispatches int
}

// Dispatch records one executed DISPATCH for diagnostics.
type Dispatch struct {
	Phase    string
	Instance string
	Pos      Pos
	// Mapping is the enablement kind applied from this phase to the NEXT
	// dispatched phase (Null for the last dispatch).
	Mapping enable.Kind
	// Verified reports whether the mapping came from a successor-naming
	// clause the executive could check (the paper's interlock) rather
	// than an unverified inline option.
	Verified bool
}

// Result is the outcome of interpretation: a runnable linear program plus
// the dispatch log.
type Result struct {
	Program    *core.Program
	Dispatches []Dispatch
}

// Interpret executes the control program, resolving branches and the
// enablement clauses into a linear core.Program. It enforces the paper's
// interlock: a successor-naming ENABLE clause whose named phases do not
// include the actually-dispatched next phase is an error.
func Interpret(f *File, reg *Registry, opt Options) (*Result, error) {
	if err := Check(f); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = &Registry{}
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 1 << 20
	}
	if opt.MaxDispatches <= 0 {
		opt.MaxDispatches = 1 << 16
	}

	in := &interp{
		file: f,
		reg:  reg,
		opt:  opt,
		vars: map[string]int64{},
		defs: map[string]*phaseDef{},
		lbl:  map[string]int{},
	}
	for i, st := range f.Stmts {
		if l, ok := st.(*LabelStmt); ok {
			in.lbl[l.Name] = i
		}
	}
	if err := in.run(); err != nil {
		return nil, err
	}
	return in.finish()
}

// phaseDef is an executed DEFINE PHASE.
type phaseDef struct {
	name     string
	granules int
	cost     core.Cost // 0 = unit
	lines    int
	serial   core.Cost
	enables  []EnableItem
	uses     int
}

// pendingEnable carries the enablement declaration of the previous dispatch
// until the next dispatch identifies the successor.
type pendingEnable struct {
	clause  *EnableClause // nil: fall back to define-time list
	defList []EnableItem
	pos     Pos
	from    string
}

type interp struct {
	file *File
	reg  *Registry
	opt  Options

	vars map[string]int64
	defs map[string]*phaseDef
	lbl  map[string]int

	phases     []*core.Phase
	defOf      []*phaseDef // aligned with phases
	dispatches []Dispatch
	pending    *pendingEnable
}

func (in *interp) run() error {
	pc := 0
	steps := 0
	for pc < len(in.file.Stmts) {
		steps++
		if steps > in.opt.MaxSteps {
			return errf(in.file.Stmts[pc].NodePos(), "interpreter exceeded %d steps (infinite loop?)", in.opt.MaxSteps)
		}
		switch s := in.file.Stmts[pc].(type) {
		case *LabelStmt:
			pc++
		case *SetStmt:
			v, err := in.eval(s.Value)
			if err != nil {
				return err
			}
			in.vars[s.Var] = v
			pc++
		case *GotoStmt:
			pc = in.lbl[s.Target]
		case *IfStmt:
			ok, err := in.cond(s.Cond)
			if err != nil {
				return err
			}
			if ok {
				pc = in.lbl[s.Target]
			} else {
				pc++
			}
		case *DefineStmt:
			if err := in.define(s); err != nil {
				return err
			}
			pc++
		case *DispatchStmt:
			if err := in.dispatch(s); err != nil {
				return err
			}
			pc++
		default:
			return errf(s.NodePos(), "internal: unknown statement %T", s)
		}
	}
	return nil
}

func (in *interp) define(s *DefineStmt) error {
	if _, ok := in.defs[s.Name]; ok {
		return errf(s.NodePos(), "phase %q already defined", s.Name)
	}
	g, err := in.eval(s.Granules)
	if err != nil {
		return err
	}
	if g < 0 {
		return errf(s.NodePos(), "phase %q granule count %d is negative", s.Name, g)
	}
	d := &phaseDef{name: s.Name, granules: int(g), lines: s.Lines, enables: s.Enables}
	if s.Cost != nil {
		c, err := in.eval(s.Cost)
		if err != nil {
			return err
		}
		if c < 1 {
			return errf(s.NodePos(), "phase %q cost %d must be positive", s.Name, c)
		}
		d.cost = core.Cost(c)
	}
	if s.Serial != nil {
		c, err := in.eval(s.Serial)
		if err != nil {
			return err
		}
		if c < 0 {
			return errf(s.NodePos(), "phase %q serial cost %d is negative", s.Name, c)
		}
		d.serial = core.Cost(c)
	}
	in.defs[s.Name] = d
	return nil
}

func (in *interp) dispatch(s *DispatchStmt) error {
	if len(in.phases) >= in.opt.MaxDispatches {
		return errf(s.NodePos(), "program exceeds %d dispatches", in.opt.MaxDispatches)
	}
	def, ok := in.defs[s.Phase]
	if !ok {
		return errf(s.NodePos(), "DISPATCH of phase %q before its DEFINE", s.Phase)
	}

	// Resolve the mapping declared by the PREVIOUS dispatch now that the
	// successor's identity is known.
	if in.pending != nil {
		kind, verified, err := in.resolvePending(s)
		if err != nil {
			return err
		}
		if err := in.wirePair(kind, def, s.NodePos()); err != nil {
			return err
		}
		in.dispatches[len(in.dispatches)-1].Mapping = kind
		in.dispatches[len(in.dispatches)-1].Verified = verified
	}

	instance := def.name
	if def.uses > 0 {
		instance = fmt.Sprintf("%s#%d", def.name, def.uses)
	}
	def.uses++

	impl := in.reg.Impls[def.name]
	ph := &core.Phase{
		Name:         instance,
		Granules:     def.granules,
		Lines:        def.lines,
		Work:         impl.Work,
		SerialBefore: impl.SerialBefore,
		SerialCost:   def.serial,
	}
	switch {
	case impl.Cost != nil:
		ph.Cost = impl.Cost
	case def.cost > 0:
		ph.Cost = workload.FixedCost(def.cost)
	}
	in.phases = append(in.phases, ph)
	in.defOf = append(in.defOf, def)
	in.dispatches = append(in.dispatches, Dispatch{
		Phase: def.name, Instance: instance, Pos: s.NodePos(), Mapping: enable.Null,
	})
	in.pending = &pendingEnable{
		clause:  s.Clause,
		defList: def.enables,
		pos:     s.NodePos(),
		from:    def.name,
	}
	return nil
}

// resolvePending determines the mapping kind between the previous dispatch
// and the one now being executed, enforcing the successor interlock.
func (in *interp) resolvePending(next *DispatchStmt) (enable.Kind, bool, error) {
	p := in.pending
	in.pending = nil
	if p.clause != nil {
		switch p.clause.Mode {
		case ClauseInline:
			// "Simple and explicit; however, it leaves the door wide
			// open to user mistakes" — accepted without verification.
			return p.clause.Mapping, false, nil
		case ClauseList, ClauseBranchIndependent:
			for _, it := range p.clause.Items {
				if it.Phase == next.Phase {
					return it.Mapping, true, nil
				}
			}
			return 0, false, errf(next.NodePos(),
				"interlock: phase %q is not a declared successor of %q (declared: %s)",
				next.Phase, p.from, enableNames(p.clause.Items))
		case ClauseBranchDependent:
			// The branch depends on the phase's results; its successor
			// cannot be overlapped.
			return enable.Null, true, nil
		}
	}
	// Fall back to the define-time ENABLE list.
	for _, it := range p.defList {
		if it.Phase == next.Phase {
			return it.Mapping, true, nil
		}
	}
	return enable.Null, false, nil
}

func enableNames(items []EnableItem) string {
	s := ""
	for i, it := range items {
		if i > 0 {
			s += ", "
		}
		s += it.Phase
	}
	return s
}

// wirePair installs the enablement spec on the previously dispatched phase.
func (in *interp) wirePair(kind enable.Kind, succ *phaseDef, pos Pos) error {
	prev := in.phases[len(in.phases)-1]
	prevDef := in.defOf[len(in.defOf)-1]
	if kind == enable.Null {
		prev.Enable = nil
		return nil
	}
	if succ.serial > 0 || in.reg.Impls[succ.name].SerialBefore != nil {
		return errf(pos,
			"phase %q declares a serial action; the mapping from %q must be NULL, not %v",
			succ.name, prevDef.name, kind)
	}
	switch kind {
	case enable.Universal:
		prev.Enable = enable.NewUniversal()
	case enable.Identity:
		prev.Enable = enable.NewIdentity()
	default:
		spec, err := in.indirectSpec(kind, prevDef, succ)
		if err != nil {
			return errf(pos, "building %v mapping %q -> %q: %v", kind, prevDef.name, succ.name, err)
		}
		prev.Enable = spec
	}
	return nil
}

func (in *interp) indirectSpec(kind enable.Kind, pred, succ *phaseDef) (*enable.Spec, error) {
	if in.reg.IndirectSpec != nil {
		return in.reg.IndirectSpec(kind, pred.name, succ.name, pred.granules, succ.granules)
	}
	seed := in.reg.Seed ^ uint64(len(in.phases))*0x9e3779b97f4a7c15
	switch kind {
	case enable.ForwardIndirect:
		return enable.NewForwardIMAP(workload.RandomIMap(pred.granules, max(succ.granules, 1), seed)), nil
	case enable.ReverseIndirect:
		const fan = 2
		return enable.NewReverseIMAP(workload.RandomIMap(succ.granules*fan, max(pred.granules, 1), seed), fan), nil
	case enable.Seam:
		n := pred.granules
		return enable.NewSeam(func(r granule.ID) []granule.ID {
			var reqs []granule.ID
			for _, q := range []granule.ID{r - 1, r, r + 1} {
				if q >= 0 && int(q) < n {
					reqs = append(reqs, q)
				}
			}
			return reqs
		}), nil
	default:
		return nil, fmt.Errorf("unsupported mapping kind %v", kind)
	}
}

func (in *interp) finish() (*Result, error) {
	if len(in.phases) == 0 {
		return nil, fmt.Errorf("pax: program dispatched no phases")
	}
	prog, err := core.NewProgram(in.phases...)
	if err != nil {
		return nil, fmt.Errorf("pax: %w", err)
	}
	return &Result{Program: prog, Dispatches: in.dispatches}, nil
}

func (in *interp) eval(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *VarRef:
		v, ok := in.vars[x.Name]
		if !ok {
			return 0, errf(x.NodePos(), "undefined variable %q", x.Name)
		}
		return v, nil
	case *BinOp:
		l, err := in.eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case PLUS:
			return l + r, nil
		case MINUS:
			return l - r, nil
		case STAR:
			return l * r, nil
		case SLASH:
			if r == 0 {
				return 0, errf(x.NodePos(), "division by zero")
			}
			return l / r, nil
		}
		return 0, errf(x.NodePos(), "internal: bad operator")
	case *ModCall:
		a, err := in.eval(x.A)
		if err != nil {
			return 0, err
		}
		b, err := in.eval(x.B)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return 0, errf(x.NodePos(), "MOD by zero")
		}
		return a % b, nil
	default:
		return 0, errf(e.NodePos(), "internal: unknown expression %T", e)
	}
}

func (in *interp) cond(c *Cond) (bool, error) {
	l, err := in.eval(c.L)
	if err != nil {
		return false, err
	}
	r, err := in.eval(c.R)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case "EQ":
		return l == r, nil
	case "NE":
		return l != r, nil
	case "LT":
		return l < r, nil
	case "GT":
		return l > r, nil
	case "LE":
		return l <= r, nil
	case "GE":
		return l >= r, nil
	}
	return false, errf(c.NodePos(), "internal: bad relop %q", c.Op)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
