package paxlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Error is a positioned source error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("pax:%v: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes source. Comments run from '!' or '#' to end of line; blank
// lines are collapsed. Keywords are case-insensitive (the paper's fragments
// are upper case); identifiers keep their spelling.
func Lex(src string) ([]Token, error) {
	var toks []Token
	lines := strings.Split(src, "\n")
	for li, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "!#"); i >= 0 {
			line = line[:i]
		}
		col := 0
		emitted := false
		for col < len(line) {
			c := line[col]
			pos := Pos{Line: li + 1, Col: col + 1}
			switch {
			case c == ' ' || c == '\t' || c == '\r':
				col++
			case c >= '0' && c <= '9':
				j := col
				for j < len(line) && line[j] >= '0' && line[j] <= '9' {
					j++
				}
				v, err := strconv.ParseInt(line[col:j], 10, 64)
				if err != nil {
					return nil, errf(pos, "bad integer %q", line[col:j])
				}
				toks = append(toks, Token{Kind: INT, Text: line[col:j], Val: v, Pos: pos})
				col = j
				emitted = true
			case isIdentStart(c):
				j := col
				for j < len(line) && isIdentPart(line[j]) {
					j++
				}
				word := line[col:j]
				if k, ok := keywords[strings.ToUpper(word)]; ok {
					toks = append(toks, Token{Kind: k, Text: word, Pos: pos})
				} else {
					toks = append(toks, Token{Kind: IDENT, Text: word, Pos: pos})
				}
				col = j
				emitted = true
			case c == '.':
				// Fortran relational operator .XX.
				if col+3 < len(line) && line[col+3] == '.' {
					op := strings.ToUpper(line[col+1 : col+3])
					switch op {
					case "EQ", "NE", "LT", "GT", "LE", "GE":
						toks = append(toks, Token{Kind: RELOP, Text: op, Pos: pos})
						col += 4
						emitted = true
						continue
					}
				}
				return nil, errf(pos, "unexpected '.' (expected .EQ. .NE. .LT. .GT. .LE. .GE.)")
			default:
				var k Kind
				switch c {
				case '[':
					k = LBRACK
				case ']':
					k = RBRACK
				case '(':
					k = LPAREN
				case ')':
					k = RPAREN
				case '/':
					k = SLASH
				case '=':
					k = EQUALS
				case ',':
					k = COMMA
				case ':':
					k = COLON
				case '+':
					k = PLUS
				case '-':
					k = MINUS
				case '*':
					k = STAR
				default:
					return nil, errf(pos, "unexpected character %q", string(c))
				}
				toks = append(toks, Token{Kind: k, Text: string(c), Pos: pos})
				col++
				emitted = true
			}
		}
		if emitted {
			toks = append(toks, Token{Kind: EOL, Pos: Pos{Line: li + 1, Col: len(line) + 1}})
		}
	}
	toks = append(toks, Token{Kind: EOF, Pos: Pos{Line: len(lines) + 1, Col: 1}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
