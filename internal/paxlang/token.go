// Package paxlang implements the parallel-phase control language the paper
// proposes for PAX: DEFINE PHASE declarations, DISPATCH statements, ENABLE
// clauses with mapping options, branch-independent enablement lookahead,
// and the Fortran-flavoured control flow (SET/IF/GO TO/labels) the paper's
// fragments use. A lexer, parser, semantic checker and interpreter turn a
// .pax source into a runnable core.Program, enforcing the successor
// interlock the paper argues for: "identify the name of the enabled next
// phase so that the executive system (or language processor) can verify
// that, in fact, that phase is following."
package paxlang

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	EOL
	IDENT
	INT
	RELOP // .EQ. .NE. .LT. .GT. .LE. .GE.

	// Keywords.
	DEFINE
	PHASE
	GRANULES
	COST
	LINES
	SERIAL
	ENABLE
	MAPPING
	DISPATCH
	SET
	IF
	THEN
	GO
	TO
	GOTO
	MOD
	BRANCHINDEPENDENT
	BRANCHDEPENDENT

	// Symbols.
	LBRACK // [
	RBRACK // ]
	LPAREN // (
	RPAREN // )
	SLASH  // /
	EQUALS // =
	COMMA  // ,
	COLON  // :
	PLUS   // +
	MINUS  // -
	STAR   // *
)

var kindNames = map[Kind]string{
	EOF: "end of file", EOL: "end of line", IDENT: "identifier", INT: "integer",
	RELOP:  "relational operator",
	DEFINE: "DEFINE", PHASE: "PHASE", GRANULES: "GRANULES", COST: "COST",
	LINES: "LINES", SERIAL: "SERIAL", ENABLE: "ENABLE", MAPPING: "MAPPING",
	DISPATCH: "DISPATCH", SET: "SET", IF: "IF", THEN: "THEN", GO: "GO",
	TO: "TO", GOTO: "GOTO", MOD: "MOD",
	BRANCHINDEPENDENT: "BRANCHINDEPENDENT", BRANCHDEPENDENT: "BRANCHDEPENDENT",
	LBRACK: "[", RBRACK: "]", LPAREN: "(", RPAREN: ")", SLASH: "/",
	EQUALS: "=", COMMA: ",", COLON: ":", PLUS: "+", MINUS: "-", STAR: "*",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"DEFINE": DEFINE, "PHASE": PHASE, "GRANULES": GRANULES, "COST": COST,
	"LINES": LINES, "SERIAL": SERIAL, "ENABLE": ENABLE, "MAPPING": MAPPING,
	"DISPATCH": DISPATCH, "SET": SET, "IF": IF, "THEN": THEN, "GO": GO,
	"TO": TO, "GOTO": GOTO, "MOD": MOD, "IMOD": MOD,
	"BRANCHINDEPENDENT": BRANCHINDEPENDENT, "BRANCHDEPENDENT": BRANCHDEPENDENT,
}

// Pos locates a token in the source.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // for INT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, RELOP:
		return fmt.Sprintf("%v(%s)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
