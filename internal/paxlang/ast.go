package paxlang

import "repro/internal/enable"

// Node is any AST node with a source position.
type Node interface{ NodePos() Pos }

type base struct{ pos Pos }

func (b base) NodePos() Pos { return b.pos }

// Expr is an integer expression.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	base
	Val int64
}

// VarRef references a SET variable.
type VarRef struct {
	base
	Name string
}

// BinOp is a binary arithmetic operation: + - * /.
type BinOp struct {
	base
	Op   Kind // PLUS, MINUS, STAR, SLASH
	L, R Expr
}

// ModCall is MOD(a, b) (the paper writes IMOD).
type ModCall struct {
	base
	A, B Expr
}

func (*IntLit) exprNode()  {}
func (*VarRef) exprNode()  {}
func (*BinOp) exprNode()   {}
func (*ModCall) exprNode() {}

// Cond is a Fortran-style relational condition.
type Cond struct {
	base
	Op   string // EQ NE LT GT LE GE
	L, R Expr
}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// EnableItem is one "phase-name/MAPPING=option" entry.
type EnableItem struct {
	base
	Phase   string
	Mapping enable.Kind
}

// ClauseMode distinguishes the paper's ENABLE clause forms on DISPATCH.
type ClauseMode uint8

const (
	// ClauseInline is "ENABLE/MAPPING=option" — simple and explicit, but
	// with "no interlock between this phase and the next".
	ClauseInline ClauseMode = iota
	// ClauseList is "ENABLE [phase/MAPPING=option ...]" — names the
	// successors so the executive can verify them.
	ClauseList
	// ClauseBranchIndependent is "ENABLE/BRANCHINDEPENDENT [...]": the
	// following conditional branch does not depend on this phase's
	// results, so the executive may preprocess it and overlap whichever
	// named successor is actually dispatched.
	ClauseBranchIndependent
	// ClauseBranchDependent is "ENABLE/BRANCHDEPENDENT": the branch
	// depends on this phase's results; no overlap is possible.
	ClauseBranchDependent
)

func (m ClauseMode) String() string {
	switch m {
	case ClauseInline:
		return "inline"
	case ClauseList:
		return "list"
	case ClauseBranchIndependent:
		return "branch-independent"
	case ClauseBranchDependent:
		return "branch-dependent"
	default:
		return "invalid"
	}
}

// EnableClause is the ENABLE part of a DISPATCH statement.
type EnableClause struct {
	base
	Mode    ClauseMode
	Mapping enable.Kind  // ClauseInline
	Items   []EnableItem // ClauseList, ClauseBranchIndependent
}

// DefineStmt declares a phase to the management system, optionally with
// define-time enablement declarations (the paper's final construct form).
type DefineStmt struct {
	base
	Name     string
	Granules Expr
	Cost     Expr // optional per-granule cost (nil = unit)
	Lines    int  // optional census weight
	Serial   Expr // optional serial-action cost before this phase
	Enables  []EnableItem
}

// DispatchStmt invokes a phase for actual computations.
type DispatchStmt struct {
	base
	Phase  string
	Clause *EnableClause // optional
}

// SetStmt assigns a control variable.
type SetStmt struct {
	base
	Var   string
	Value Expr
}

// IfStmt is "IF (cond) THEN GO TO label".
type IfStmt struct {
	base
	Cond   *Cond
	Target string
}

// GotoStmt is "GO TO label" / "GOTO label".
type GotoStmt struct {
	base
	Target string
}

// LabelStmt is "label:".
type LabelStmt struct {
	base
	Name string
}

func (*DefineStmt) stmtNode()   {}
func (*DispatchStmt) stmtNode() {}
func (*SetStmt) stmtNode()      {}
func (*IfStmt) stmtNode()       {}
func (*GotoStmt) stmtNode()     {}
func (*LabelStmt) stmtNode()    {}

// File is a parsed source file.
type File struct {
	Stmts []Stmt
}
