package paxlang

import (
	"repro/internal/enable"
)

// Parse lexes and parses source into a File.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[p.i+1] }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k Kind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) expect(k Kind) (Token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	return Token{}, errf(p.cur().Pos, "expected %v, found %v", k, p.cur())
}

func (p *parser) skipEOL() {
	for p.cur().Kind == EOL {
		p.next()
	}
}

func (p *parser) endOfStmt() error {
	switch p.cur().Kind {
	case EOL:
		p.next()
		return nil
	case EOF:
		return nil
	default:
		return errf(p.cur().Pos, "unexpected %v at end of statement", p.cur())
	}
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for {
		p.skipEOL()
		if p.cur().Kind == EOF {
			return f, nil
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f.Stmts = append(f.Stmts, st)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case DEFINE:
		return p.defineStmt()
	case DISPATCH:
		return p.dispatchStmt()
	case SET:
		return p.setStmt()
	case IF:
		return p.ifStmt()
	case GO, GOTO:
		return p.gotoStmt()
	case IDENT:
		if p.peek().Kind == COLON {
			lbl := p.next()
			p.next() // colon
			// A label may share a line with the following statement or
			// stand alone.
			return &LabelStmt{base: base{pos: lbl.Pos}, Name: lbl.Text}, nil
		}
		return nil, errf(t.Pos, "unexpected identifier %q (labels need ':', statements start with a keyword)", t.Text)
	default:
		return nil, errf(t.Pos, "unexpected %v at start of statement", t)
	}
}

// defineStmt := DEFINE PHASE ident GRANULES expr [COST expr] [LINES int]
//
//	[SERIAL expr] [ENABLE '[' item+ ']']
//
// The ENABLE list may continue over following lines until ']'.
func (p *parser) defineStmt() (Stmt, error) {
	d := &DefineStmt{base: base{pos: p.cur().Pos}}
	p.next() // DEFINE
	if _, err := p.expect(PHASE); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if _, err := p.expect(GRANULES); err != nil {
		return nil, err
	}
	if d.Granules, err = p.expr(); err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case COST:
			p.next()
			if d.Cost, err = p.expr(); err != nil {
				return nil, err
			}
		case LINES:
			p.next()
			n, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			d.Lines = int(n.Val)
		case SERIAL:
			p.next()
			if d.Serial, err = p.expr(); err != nil {
				return nil, err
			}
		case ENABLE:
			p.next()
			items, err := p.enableList()
			if err != nil {
				return nil, err
			}
			d.Enables = items
		default:
			return d, p.endOfStmt()
		}
	}
}

// enableList := '[' (item EOL*)+ ']' ; item := ident '/' MAPPING '=' ident
func (p *parser) enableList() ([]EnableItem, error) {
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	var items []EnableItem
	for {
		p.skipEOL()
		if _, ok := p.accept(RBRACK); ok {
			if len(items) == 0 {
				return nil, errf(p.cur().Pos, "empty ENABLE list")
			}
			return items, nil
		}
		item, err := p.enableItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
}

func (p *parser) enableItem() (EnableItem, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return EnableItem{}, err
	}
	if _, err := p.expect(SLASH); err != nil {
		return EnableItem{}, err
	}
	if _, err := p.expect(MAPPING); err != nil {
		return EnableItem{}, err
	}
	if _, err := p.expect(EQUALS); err != nil {
		return EnableItem{}, err
	}
	opt, err := p.expect(IDENT)
	if err != nil {
		return EnableItem{}, err
	}
	kind, err := enable.ParseKind(opt.Text)
	if err != nil {
		return EnableItem{}, errf(opt.Pos, "unknown mapping option %q", opt.Text)
	}
	return EnableItem{base: base{pos: name.Pos}, Phase: name.Text, Mapping: kind}, nil
}

// dispatchStmt := DISPATCH ident [ENABLE clause]
func (p *parser) dispatchStmt() (Stmt, error) {
	d := &DispatchStmt{base: base{pos: p.cur().Pos}}
	p.next() // DISPATCH
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d.Phase = name.Text
	// The ENABLE clause may start on the same or the following line (the
	// paper writes it on a continuation line).
	if p.cur().Kind == EOL && p.peek().Kind == ENABLE {
		p.next()
	}
	if _, ok := p.accept(ENABLE); ok {
		cl, err := p.enableClause()
		if err != nil {
			return nil, err
		}
		d.Clause = cl
	}
	return d, p.endOfStmt()
}

func (p *parser) enableClause() (*EnableClause, error) {
	cl := &EnableClause{base: base{pos: p.cur().Pos}}
	switch p.cur().Kind {
	case SLASH:
		p.next()
		switch p.cur().Kind {
		case MAPPING:
			p.next()
			if _, err := p.expect(EQUALS); err != nil {
				return nil, err
			}
			opt, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			kind, err := enable.ParseKind(opt.Text)
			if err != nil {
				return nil, errf(opt.Pos, "unknown mapping option %q", opt.Text)
			}
			cl.Mode = ClauseInline
			cl.Mapping = kind
			return cl, nil
		case BRANCHINDEPENDENT:
			p.next()
			p.skipEOL()
			items, err := p.enableList()
			if err != nil {
				return nil, err
			}
			cl.Mode = ClauseBranchIndependent
			cl.Items = items
			return cl, nil
		case BRANCHDEPENDENT:
			p.next()
			cl.Mode = ClauseBranchDependent
			return cl, nil
		default:
			return nil, errf(p.cur().Pos, "expected MAPPING, BRANCHINDEPENDENT or BRANCHDEPENDENT after ENABLE/")
		}
	case LBRACK:
		items, err := p.enableList()
		if err != nil {
			return nil, err
		}
		cl.Mode = ClauseList
		cl.Items = items
		return cl, nil
	default:
		return nil, errf(p.cur().Pos, "expected '/' or '[' after ENABLE")
	}
}

func (p *parser) setStmt() (Stmt, error) {
	s := &SetStmt{base: base{pos: p.cur().Pos}}
	p.next() // SET
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s.Var = v.Text
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	if s.Value, err = p.expr(); err != nil {
		return nil, err
	}
	return s, p.endOfStmt()
}

// ifStmt := IF '(' expr RELOP expr ')' THEN (GO TO | GOTO) ident
func (p *parser) ifStmt() (Stmt, error) {
	s := &IfStmt{base: base{pos: p.cur().Pos}}
	p.next() // IF
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(RELOP)
	if err != nil {
		return nil, err
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	s.Cond = &Cond{base: base{pos: op.Pos}, Op: op.Text, L: l, R: r}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(THEN); err != nil {
		return nil, err
	}
	// THEN may be followed by a newline before GO TO.
	p.skipEOL()
	if err := p.gotoTail(&s.Target); err != nil {
		return nil, err
	}
	return s, p.endOfStmt()
}

func (p *parser) gotoStmt() (Stmt, error) {
	s := &GotoStmt{base: base{pos: p.cur().Pos}}
	if err := p.gotoTail(&s.Target); err != nil {
		return nil, err
	}
	return s, p.endOfStmt()
}

func (p *parser) gotoTail(target *string) error {
	switch p.cur().Kind {
	case GOTO:
		p.next()
	case GO:
		p.next()
		if _, err := p.expect(TO); err != nil {
			return err
		}
	default:
		return errf(p.cur().Pos, "expected GO TO")
	}
	t, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	*target = t.Text
	return nil
}

// expr := term (('+'|'-') term)*
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

// term := factor (('*'|'/') factor)*
func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == STAR || p.cur().Kind == SLASH {
		op := p.next()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) factor() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		return &IntLit{base: base{pos: t.Pos}, Val: t.Val}, nil
	case IDENT:
		p.next()
		return &VarRef{base: base{pos: t.Pos}, Name: t.Text}, nil
	case MOD:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &ModCall{base: base{pos: t.Pos}, A: a, B: b}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case MINUS:
		p.next()
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &BinOp{base: base{pos: t.Pos}, Op: MINUS,
			L: &IntLit{base: base{pos: t.Pos}}, R: e}, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %v", t)
	}
}
