package paxlang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds random token soup to the full front end; any
// input must produce either a File or a positioned error — never a panic.
func TestParserNeverPanics(t *testing.T) {
	words := []string{
		"DEFINE", "PHASE", "GRANULES", "COST", "LINES", "SERIAL", "ENABLE",
		"MAPPING", "DISPATCH", "SET", "IF", "THEN", "GO", "TO", "GOTO", "MOD",
		"BRANCHINDEPENDENT", "BRANCHDEPENDENT",
		"alpha", "beta", "x", "7", "42", "=", "/", "[", "]", "(", ")", ",",
		":", "+", "-", "*", ".EQ.", ".NE.", "\n", "!", "comment",
	}
	f := func(seed int64, length uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(length); i++ {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", b.String(), r)
			}
		}()
		file, err := Parse(b.String())
		if err == nil && file != nil {
			// Valid parse: Check and Interpret must also not panic.
			if cerr := Check(file); cerr == nil {
				_, _ = Interpret(file, nil, Options{MaxSteps: 1000, MaxDispatches: 100})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerNeverPanics feeds random bytes to the lexer.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("lexer panic on %q: %v", src, r)
			}
		}()
		_, _ = Lex(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpretedProgramsAlwaysValid: whatever a random-but-parseable
// control program produces, the resulting core.Program passes validation
// (Interpret itself calls NewProgram, so success implies validity — this
// pins the dispatch-log/program consistency too).
func TestInterpretedProgramsAlwaysValid(t *testing.T) {
	srcs := []string{
		"DEFINE PHASE a GRANULES 4\nDISPATCH a\n",
		"DEFINE PHASE a GRANULES 4 ENABLE [ a/MAPPING=IDENTITY ]\nDISPATCH a\nDISPATCH a\nDISPATCH a\n",
		"DEFINE PHASE a GRANULES 0\nDEFINE PHASE b GRANULES 9\nDISPATCH a ENABLE/MAPPING=UNIVERSAL\nDISPATCH b\n",
		"DEFINE PHASE a GRANULES 3 COST 7 LINES 12 SERIAL 5\nDISPATCH a\n",
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		res, err := Interpret(f, nil, Options{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(res.Dispatches) != len(res.Program.Phases) {
			t.Fatalf("%q: %d dispatches vs %d phases", src, len(res.Dispatches), len(res.Program.Phases))
		}
		if err := res.Program.Validate(); err != nil {
			t.Fatalf("%q: invalid program: %v", src, err)
		}
	}
}
