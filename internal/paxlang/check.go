package paxlang

import "fmt"

// Check performs static semantic analysis of a parsed file without
// executing it: every GO TO target must be a defined label, labels must be
// unique, DEFINE names must be unique, and every DISPATCH or ENABLE item
// must reference a phase DEFINEd somewhere in the file.
func Check(f *File) error {
	labels := map[string]Pos{}
	defines := map[string]Pos{}
	for _, st := range f.Stmts {
		switch s := st.(type) {
		case *LabelStmt:
			if prev, ok := labels[s.Name]; ok {
				return errf(s.NodePos(), "duplicate label %q (first at %v)", s.Name, prev)
			}
			labels[s.Name] = s.NodePos()
		case *DefineStmt:
			if prev, ok := defines[s.Name]; ok {
				return errf(s.NodePos(), "duplicate DEFINE PHASE %q (first at %v)", s.Name, prev)
			}
			defines[s.Name] = s.NodePos()
		}
	}
	checkRef := func(pos Pos, name, what string) error {
		if _, ok := defines[name]; !ok {
			return errf(pos, "%s references undefined phase %q", what, name)
		}
		return nil
	}
	for _, st := range f.Stmts {
		switch s := st.(type) {
		case *DefineStmt:
			for _, it := range s.Enables {
				if err := checkRef(it.NodePos(), it.Phase, fmt.Sprintf("ENABLE list of %q", s.Name)); err != nil {
					return err
				}
			}
		case *DispatchStmt:
			if err := checkRef(s.NodePos(), s.Phase, "DISPATCH"); err != nil {
				return err
			}
			if s.Clause != nil {
				for _, it := range s.Clause.Items {
					if err := checkRef(it.NodePos(), it.Phase, "ENABLE clause"); err != nil {
						return err
					}
				}
			}
		case *IfStmt:
			if _, ok := labels[s.Target]; !ok {
				return errf(s.NodePos(), "IF targets undefined label %q", s.Target)
			}
		case *GotoStmt:
			if _, ok := labels[s.Target]; !ok {
				return errf(s.NodePos(), "GO TO targets undefined label %q", s.Target)
			}
		}
	}
	return nil
}
