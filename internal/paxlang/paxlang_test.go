package paxlang

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
	"repro/internal/sim"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("DISPATCH alpha ! comment\n  ENABLE/MAPPING=UNIVERSAL\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{DISPATCH, IDENT, EOL, ENABLE, SLASH, MAPPING, EQUALS, IDENT, EOL, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[1].Text != "alpha" || toks[1].Pos.Line != 1 {
		t.Errorf("ident token %v", toks[1])
	}
}

func TestLexRelops(t *testing.T) {
	toks, err := Lex("IF (MOD(LOOPCOUNTER,10).NE.0) THEN GO TO lbl")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == RELOP && tok.Text == "NE" {
			found = true
		}
	}
	if !found {
		t.Fatalf(".NE. not lexed: %v", toks)
	}
	if _, err := Lex("IF (A .XX. B)"); err == nil {
		t.Error("bad relop accepted")
	}
	if _, err := Lex("DISPATCH @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex("dispatch p1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != DISPATCH {
		t.Errorf("lower-case keyword not recognized: %v", toks[0])
	}
}

const paperFragment = `
! The paper's branch-preprocessing construct, spelled with underscores.
DEFINE PHASE stage GRANULES 64
DEFINE PHASE phase_1 GRANULES 64
DEFINE PHASE phase_2 GRANULES 64

SET LOOPCOUNTER = 20

DISPATCH stage
  ENABLE/BRANCHINDEPENDENT
  [ phase_1/MAPPING=IDENTITY
    phase_2/MAPPING=UNIVERSAL ]
IF (MOD(LOOPCOUNTER,10).NE.0) THEN GO TO branch_target
DISPATCH phase_1
GO TO rejoin
branch_target:
DISPATCH phase_2
rejoin:
`

func TestParsePaperFragment(t *testing.T) {
	f, err := Parse(paperFragment)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	var dispatches, defines, labels int
	for _, st := range f.Stmts {
		switch st.(type) {
		case *DispatchStmt:
			dispatches++
		case *DefineStmt:
			defines++
		case *LabelStmt:
			labels++
		}
	}
	if defines != 3 || dispatches != 3 || labels != 2 {
		t.Fatalf("defines=%d dispatches=%d labels=%d", defines, dispatches, labels)
	}
}

func TestInterpretPaperFragmentTakesIdentityArm(t *testing.T) {
	// LOOPCOUNTER=20: MOD(20,10)=0, so .NE.0 is false, fall through to
	// DISPATCH phase_1; the branch-independent clause declares identity
	// for that arm.
	f, err := Parse(paperFragment)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dispatches) != 2 {
		t.Fatalf("dispatches = %+v", res.Dispatches)
	}
	if res.Dispatches[0].Phase != "stage" || res.Dispatches[1].Phase != "phase_1" {
		t.Fatalf("executed path = %+v", res.Dispatches)
	}
	if res.Dispatches[0].Mapping != enable.Identity || !res.Dispatches[0].Verified {
		t.Fatalf("stage mapping = %+v", res.Dispatches[0])
	}
	if res.Program.Phases[0].EnableKind() != enable.Identity {
		t.Fatalf("program mapping = %v", res.Program.Phases[0].EnableKind())
	}
}

func TestInterpretOtherArm(t *testing.T) {
	src := strings.Replace(paperFragment, "SET LOOPCOUNTER = 20", "SET LOOPCOUNTER = 21", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatches[1].Phase != "phase_2" {
		t.Fatalf("executed path = %+v", res.Dispatches)
	}
	if res.Dispatches[0].Mapping != enable.Universal {
		t.Fatalf("stage mapping = %v", res.Dispatches[0].Mapping)
	}
}

func TestInterlockViolation(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 8
DEFINE PHASE b GRANULES 8
DEFINE PHASE c GRANULES 8
DISPATCH a ENABLE [ b/MAPPING=IDENTITY ]
DISPATCH c
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Interpret(f, nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "interlock") {
		t.Fatalf("interlock violation not caught: %v", err)
	}
}

func TestBranchDependentForcesNull(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 8
DEFINE PHASE b GRANULES 8
DISPATCH a ENABLE/BRANCHDEPENDENT
DISPATCH b
`
	f, _ := Parse(src)
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Phases[0].EnableKind() != enable.Null {
		t.Fatal("branch-dependent dispatch should yield null mapping")
	}
	if res.Dispatches[0].Mapping != enable.Null || !res.Dispatches[0].Verified {
		t.Fatalf("dispatch record = %+v", res.Dispatches[0])
	}
}

func TestInlineClauseUnverified(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 8
DEFINE PHASE b GRANULES 8
DISPATCH a ENABLE/MAPPING=UNIVERSAL
DISPATCH b
`
	f, _ := Parse(src)
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatches[0].Mapping != enable.Universal || res.Dispatches[0].Verified {
		t.Fatalf("inline clause record = %+v", res.Dispatches[0])
	}
}

func TestDefineTimeEnableList(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 8 ENABLE [ b/MAPPING=IDENTITY c/MAPPING=UNIVERSAL ]
DEFINE PHASE b GRANULES 8
DEFINE PHASE c GRANULES 8
DISPATCH a
DISPATCH c
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Define-time list: c follows a, so the universal entry applies.
	if res.Program.Phases[0].EnableKind() != enable.Universal {
		t.Fatalf("mapping = %v", res.Program.Phases[0].EnableKind())
	}
	if !res.Dispatches[0].Verified {
		t.Fatal("define-time list should count as verified")
	}
}

func TestLoopUnrollsWithInstanceNames(t *testing.T) {
	src := `
DEFINE PHASE sweep GRANULES 16 ENABLE [ sweep/MAPPING=IDENTITY ]
SET i = 0
top:
DISPATCH sweep
SET i = i + 1
IF (i .LT. 3) THEN GO TO top
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Program.Phases))
	}
	names := []string{"sweep", "sweep#1", "sweep#2"}
	for i, want := range names {
		if res.Program.Phases[i].Name != want {
			t.Fatalf("phase %d name = %q, want %q", i, res.Program.Phases[i].Name, want)
		}
	}
	// Self-enable via define list: identity between consecutive sweeps.
	if res.Program.Phases[0].EnableKind() != enable.Identity {
		t.Fatal("loop mapping not identity")
	}
	// The unrolled program runs.
	if _, err := sim.Run(res.Program,
		core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()},
		sim.Config{Procs: 4, Mgmt: sim.Dedicated}); err != nil {
		t.Fatal(err)
	}
}

func TestIndirectDefaultMaps(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 16
DEFINE PHASE b GRANULES 16
DEFINE PHASE c GRANULES 16
DISPATCH a ENABLE [ b/MAPPING=REVERSE ]
DISPATCH b ENABLE [ c/MAPPING=FORWARD ]
DISPATCH c
`
	f, _ := Parse(src)
	res, err := Interpret(f, &Registry{Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Phases[0].EnableKind() != enable.ReverseIndirect ||
		res.Program.Phases[1].EnableKind() != enable.ForwardIndirect {
		t.Fatalf("kinds = %v %v", res.Program.Phases[0].EnableKind(), res.Program.Phases[1].EnableKind())
	}
	if _, err := sim.Run(res.Program,
		core.Options{Grain: 2, Overlap: true, Elevate: true, Costs: core.DefaultCosts()},
		sim.Config{Procs: 4, Mgmt: sim.Dedicated}); err != nil {
		t.Fatal(err)
	}
}

func TestSeamDefaultMap(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 12
DEFINE PHASE b GRANULES 12
DISPATCH a ENABLE [ b/MAPPING=SEAM ]
DISPATCH b
`
	f, _ := Parse(src)
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Program.Phases[0].Enable
	if spec.Kind != enable.Seam {
		t.Fatalf("kind = %v", spec.Kind)
	}
	reqs := spec.Requires(5)
	if len(reqs) != 3 {
		t.Fatalf("seam requires(5) = %v", reqs)
	}
}

func TestRegistryImplBinding(t *testing.T) {
	sum := 0
	reg := &Registry{
		Impls: map[string]PhaseImpl{
			"work": {Work: func(g granule.ID) { sum += int(g) }},
		},
	}
	src := `
DEFINE PHASE work GRANULES 10 COST 3
DISPATCH work
`
	f, _ := Parse(src)
	res, err := Interpret(f, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Phases[0].Work == nil {
		t.Fatal("work not bound")
	}
	if res.Program.Phases[0].GranuleCost(0) != 3 {
		t.Fatal("COST expression not applied")
	}
}

func TestSerialPhaseRules(t *testing.T) {
	// Serial phase after a declared overlap mapping is rejected.
	src := `
DEFINE PHASE a GRANULES 4
DEFINE PHASE b GRANULES 4 SERIAL 10
DISPATCH a ENABLE [ b/MAPPING=IDENTITY ]
DISPATCH b
`
	f, _ := Parse(src)
	if _, err := Interpret(f, nil, Options{}); err == nil {
		t.Fatal("serial successor with non-null mapping accepted")
	}
	// With a null path it is fine.
	src2 := `
DEFINE PHASE a GRANULES 4
DEFINE PHASE b GRANULES 4 SERIAL 10
DISPATCH a
DISPATCH b
`
	f2, _ := Parse(src2)
	res, err := Interpret(f2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Phases[1].SerialCost != 10 {
		t.Fatal("serial cost lost")
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"goto undefined":     "DEFINE PHASE a GRANULES 1\nGO TO nowhere\n",
		"if undefined":       "DEFINE PHASE a GRANULES 1\nIF (1 .EQ. 1) THEN GO TO nowhere\n",
		"dispatch undefined": "DISPATCH ghost\n",
		"enable undefined":   "DEFINE PHASE a GRANULES 1\nDISPATCH a ENABLE [ ghost/MAPPING=IDENTITY ]\n",
		"duplicate label":    "DEFINE PHASE a GRANULES 1\nx:\nx:\n",
		"duplicate define":   "DEFINE PHASE a GRANULES 1\nDEFINE PHASE a GRANULES 2\n",
		"define-enable ref":  "DEFINE PHASE a GRANULES 1 ENABLE [ ghost/MAPPING=IDENTITY ]\n",
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse error %v", name, err)
		}
		if err := Check(f); err == nil {
			t.Errorf("%s: Check passed, want error", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"DEFINE alpha",                          // missing PHASE
		"DEFINE PHASE p",                        // missing GRANULES
		"DISPATCH p ENABLE",                     // dangling ENABLE
		"DISPATCH p ENABLE/",                    // dangling slash
		"DISPATCH p ENABLE [ ]",                 // empty list
		"DISPATCH p ENABLE [ q/MAPPING=bogus ]", // bad option
		"SET = 4",                               // missing var
		"IF (1 .EQ. 1) GO TO x",                 // missing THEN
		"p q",                                   // stray identifiers
		"DEFINE PHASE p GRANULES (3",            // unbalanced paren
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestInterpErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var": "DEFINE PHASE a GRANULES n\nDISPATCH a\n",
		"negative gran": "DEFINE PHASE a GRANULES 0 - 4\nDISPATCH a\n",
		"div by zero":   "SET x = 1/0\nDEFINE PHASE a GRANULES 1\nDISPATCH a\n",
		"mod by zero":   "SET x = MOD(3,0)\nDEFINE PHASE a GRANULES 1\nDISPATCH a\n",
		"no dispatches": "DEFINE PHASE a GRANULES 4\n",
		"bad cost":      "DEFINE PHASE a GRANULES 4 COST 0\nDISPATCH a\n",
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse error %v", name, err)
		}
		if _, err := Interpret(f, nil, Options{}); err == nil {
			t.Errorf("%s: interpretation passed, want error", name)
		}
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	src := "DEFINE PHASE a GRANULES 1\ntop:\nGO TO top\n"
	f, _ := Parse(src)
	if _, err := Interpret(f, nil, Options{MaxSteps: 100}); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestMaxDispatchGuard(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 1
SET i = 0
top:
DISPATCH a
SET i = i + 1
IF (i .LT. 100) THEN GO TO top
`
	f, _ := Parse(src)
	if _, err := Interpret(f, nil, Options{MaxDispatches: 5}); err == nil {
		t.Fatal("dispatch limit not enforced")
	}
}

func TestExprArithmetic(t *testing.T) {
	src := `
SET n = 2 + 3 * 4
SET m = (2 + 3) * 4
SET k = 0 - 2 + n
DEFINE PHASE a GRANULES n + m - k
DISPATCH a
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// n=14, m=20, k=12 -> granules 22
	if res.Program.Phases[0].Granules != 22 {
		t.Fatalf("granules = %d, want 22", res.Program.Phases[0].Granules)
	}
}

func TestTokenStrings(t *testing.T) {
	if DISPATCH.String() != "DISPATCH" || Kind(200).String() == "" {
		t.Error("Kind.String broken")
	}
	tok := Token{Kind: IDENT, Text: "x"}
	if !strings.Contains(tok.String(), "x") {
		t.Error("Token.String broken")
	}
	if (Pos{Line: 2, Col: 3}).String() != "2:3" {
		t.Error("Pos.String broken")
	}
	for _, m := range []ClauseMode{ClauseInline, ClauseList, ClauseBranchIndependent, ClauseBranchDependent, ClauseMode(9)} {
		if m.String() == "" {
			t.Error("ClauseMode.String broken")
		}
	}
}
