// Package casper is the reproduction's stand-in for CASPER, the Combined
// Aerodynamic and Structural Dynamic Problem Emulating Routines (NASA
// TP-2418) — the parallel Navier-Stokes workload whose phase census the
// paper reports. The original is unavailable, so this package provides real
// numerical workloads with the same scheduling structure:
//
//   - a red/black (checkerboard) successive over-relaxation solver for the
//     potential-field problem, the paper's running example, including the
//     "foreseen" seam mapping between the colour phases;
//   - a multi-phase mini-CFD pipeline exercising every enablement-mapping
//     kind with real arithmetic and a serial reference for bit-identical
//     equivalence checks;
//   - idealized checkerboard phase programs for the paper's 1024x1024 /
//     1000-processor rundown arithmetic (experiment E2).
package casper

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// Grid is an n x n potential grid solved by red/black successive
// over-relaxation with Dirichlet boundaries. Interior points are coloured
// by (i+j) parity; each colour's interior points form one parallel phase,
// granule = one point update ("nominally, the time for four additions and
// a divide").
type Grid struct {
	N     int
	Omega float64
	Phi   []float64

	// colour c tables: points[c][k] is the flattened position i*N+j of
	// granule k; index[pos] is the granule index of pos within its
	// colour's phase (-1 for boundary).
	points [2][]int32
	index  []int32
}

// NewGrid builds an n x n grid (n >= 3) with relaxation factor omega,
// boundary condition phi = boundary(i, j) on the rim and zero inside.
func NewGrid(n int, omega float64, boundary func(i, j int) float64) (*Grid, error) {
	if n < 3 {
		return nil, fmt.Errorf("casper: grid side %d too small", n)
	}
	g := &Grid{N: n, Omega: omega, Phi: make([]float64, n*n), index: make([]int32, n*n)}
	for p := range g.index {
		g.index[p] = -1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				if boundary != nil {
					g.Phi[i*n+j] = boundary(i, j)
				}
				continue
			}
			c := (i + j) % 2
			g.index[i*n+j] = int32(len(g.points[c]))
			g.points[c] = append(g.points[c], int32(i*n+j))
		}
	}
	return g, nil
}

// ColorCount returns the number of interior points of colour c.
func (g *Grid) ColorCount(c int) int { return len(g.points[c]) }

// Position returns the flattened position of granule k of colour c.
func (g *Grid) Position(c int, k granule.ID) int { return int(g.points[c][k]) }

// update applies one SOR update at flattened position p.
func (g *Grid) update(p int) {
	n := g.N
	sum := g.Phi[p-1] + g.Phi[p+1] + g.Phi[p-n] + g.Phi[p+n]
	g.Phi[p] = (1-g.Omega)*g.Phi[p] + g.Omega*0.25*sum
}

// SweepWork returns the work function for the colour-c phase: granule k
// relaxes its point using the four neighbours.
func (g *Grid) SweepWork(c int) core.WorkFn {
	pts := g.points[c]
	return func(k granule.ID) { g.update(int(pts[k])) }
}

// SerialSweep relaxes every colour-c point in index order (the reference
// implementation for equivalence tests).
func (g *Grid) SerialSweep(c int) {
	for _, p := range g.points[c] {
		g.update(int(p))
	}
}

// SeamSpec returns the enablement mapping from the colour-c phase to the
// following colour-(1-c) phase: a point is enabled when the interior
// neighbours it reads (and that read it) have been relaxed. This is the
// paper's checkerboard observation: "if all the odd locations adjacent to a
// particular even location have been updated ... the new value for that
// particular even location ... can be correctly computed", and the
// seam-mapping extension the paper forecasts but defers.
func (g *Grid) SeamSpec(c int) *enable.Spec {
	n := g.N
	next := 1 - c
	nextPts := g.points[next]
	return enable.NewSeam(func(r granule.ID) []granule.ID {
		p := int(nextPts[r])
		var reqs []granule.ID
		for _, q := range [4]int{p - 1, p + 1, p - n, p + n} {
			if idx := g.index[q]; idx >= 0 {
				reqs = append(reqs, granule.ID(idx))
			}
		}
		return reqs
	})
}

// Footprint returns the access footprint of granule k of colour c, for
// mapping verification: the update writes its own point and reads the four
// neighbours (plus itself).
func (g *Grid) Footprint(c int) enable.AccessFn {
	pts := g.points[c]
	n := g.N
	return func(k granule.ID) enable.Footprint {
		p := int(pts[k])
		return enable.Footprint{
			Reads: []enable.Effect{
				{Var: "phi", Idx: p}, {Var: "phi", Idx: p - 1}, {Var: "phi", Idx: p + 1},
				{Var: "phi", Idx: p - n}, {Var: "phi", Idx: p + n},
			},
			Writes: []enable.Effect{{Var: "phi", Idx: p}},
		}
	}
}

// Residual returns the max-norm Laplace residual over interior points.
func (g *Grid) Residual() float64 {
	n := g.N
	var worst float64
	for c := 0; c < 2; c++ {
		for _, p32 := range g.points[c] {
			p := int(p32)
			r := math.Abs(0.25*(g.Phi[p-1]+g.Phi[p+1]+g.Phi[p-n]+g.Phi[p+n]) - g.Phi[p])
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

// SORProgram builds the phase program for `sweeps` red/black iterations on
// the grid. With seam=true, adjacent colour phases carry the seam mapping
// (overlappable); otherwise they carry null mappings (strict barriers).
// The red phase of sweep s+1 is seam-enabled by the black phase of sweep s
// as well: the same neighbour relation applies in both directions.
func (g *Grid) SORProgram(sweeps int, seam bool) (*core.Program, error) {
	if sweeps < 1 {
		return nil, fmt.Errorf("casper: need at least one sweep")
	}
	var phases []*core.Phase
	for s := 0; s < sweeps; s++ {
		for c := 0; c < 2; c++ {
			color := c
			name := fmt.Sprintf("sweep%d-%s", s, []string{"red", "black"}[c])
			ph := &core.Phase{
				Name:     name,
				Granules: g.ColorCount(color),
				Work:     g.SweepWork(color),
			}
			phases = append(phases, ph)
		}
	}
	if seam {
		for i := 0; i < len(phases)-1; i++ {
			c := i % 2
			phases[i].Enable = g.SeamSpec(c)
		}
	}
	return core.NewProgram(phases...)
}

// SolveSerial runs `sweeps` serial red/black sweeps on a fresh grid with
// the same boundary and returns it (reference for equivalence tests).
func SolveSerial(n int, omega float64, boundary func(i, j int) float64, sweeps int) (*Grid, error) {
	g, err := NewGrid(n, omega, boundary)
	if err != nil {
		return nil, err
	}
	for s := 0; s < sweeps; s++ {
		g.SerialSweep(0)
		g.SerialSweep(1)
	}
	return g, nil
}

// HotEdgeBoundary is the canonical test boundary: 1.0 along the top edge,
// 0 elsewhere.
func HotEdgeBoundary(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		if i == 0 {
			return 1.0
		}
		return 0
	}
}
