package casper

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// Pipeline is a six-phase mini-CFD computation that exercises every
// enablement-mapping kind of the paper with real arithmetic:
//
//	power-compression --universal--> interp-matrix   (no shared data)
//	interp-matrix     --identity --> smooth           (s[i] reads m[i])
//	smooth            --reverse  --> residual-gather  (r[j] sums several s)
//	residual-gather   --null     --> scatter          (serial norm decision)
//	scatter           --forward  --> final            (b[fmap[p]] then b[i])
//
// The phase pair power-compression -> interp-matrix mirrors the paper's
// "change over from power of compression computations to interpolator
// matrix generation" universal example; the gather and scatter phases are
// the paper's reverse and forward IMAP fragments with real sums.
type Pipeline struct {
	N    int // size of the point-wise phases
	NR   int // gather phase size = N/2
	Q    []float64
	M    []float64
	S    []float64
	R    []float64
	B    []float64
	Out  []float64
	FMap []granule.ID // permutation: scatter granule p writes B[FMap[p]]

	// Norm is computed by the serial decision action between gather and
	// scatter (the paper's null-mapping cause).
	Norm float64
}

// NewPipeline allocates a pipeline over n points (n >= 4, even).
func NewPipeline(n int) (*Pipeline, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("casper: pipeline needs even n >= 4, got %d", n)
	}
	p := &Pipeline{
		N: n, NR: n / 2,
		Q: make([]float64, n), M: make([]float64, n), S: make([]float64, n),
		R: make([]float64, n/2), B: make([]float64, n), Out: make([]float64, n),
		FMap: make([]granule.ID, n),
	}
	// Deterministic non-identity permutation: multiply by an odd stride
	// coprime with n... simplest robust choice: reverse-with-rotation.
	for i := 0; i < n; i++ {
		p.FMap[i] = granule.ID((n - 1 - i + n/2) % n)
	}
	return p, nil
}

// gatherSources returns the smooth-phase granules summed by gather row j:
// {j, (j+1) mod NR, j+NR}. Row j and row j-1 share a source, so the
// relation is genuinely non-functional (reverse indirect, not forward).
func (p *Pipeline) gatherSources(j granule.ID) []granule.ID {
	return []granule.ID{j, (j + 1) % granule.ID(p.NR), j + granule.ID(p.NR)}
}

// decide is the serial action between gather and scatter: a norm reduction
// and a decision only the (serial) executive can take.
func (p *Pipeline) decide() {
	var norm float64
	for _, v := range p.R {
		norm += math.Abs(v)
	}
	p.Norm = norm
}

// Program builds the runnable phase program with the declared mappings.
func (p *Pipeline) Program() (*core.Program, error) {
	n, nr := p.N, p.NR
	return core.NewProgram(
		&core.Phase{
			Name: "power-compression", Granules: n,
			Work:   func(g granule.ID) { p.Q[g] = math.Sqrt(float64(g)+1.0) * 1.5 },
			Enable: enable.NewUniversal(),
			Lines:  45,
		},
		&core.Phase{
			Name: "interp-matrix", Granules: n,
			Work:   func(g granule.ID) { p.M[g] = 1.0 / (float64(g) + 2.0) },
			Enable: enable.NewIdentity(),
			Lines:  62,
		},
		&core.Phase{
			Name: "smooth", Granules: n,
			Work:   func(g granule.ID) { p.S[g] = p.M[g]*2.0 + float64(g)*0.25 },
			Enable: enable.NewReverse(p.gatherSources),
			Lines:  61,
		},
		&core.Phase{
			Name: "residual-gather", Granules: nr,
			Work: func(g granule.ID) {
				src := p.gatherSources(g)
				p.R[g] = p.S[src[0]] + p.S[src[1]] + p.S[src[2]]
			},
			Lines: 39,
		},
		&core.Phase{
			Name: "scatter", Granules: n,
			SerialBefore: p.decide, SerialCost: core.Cost(nr),
			Work: func(g granule.ID) {
				p.B[p.FMap[g]] = p.R[int(g)%nr] + float64(g)*0.125
			},
			Enable: enable.NewForwardIMAP(p.FMap),
			Lines:  31,
		},
		&core.Phase{
			Name: "final", Granules: n,
			Work:  func(g granule.ID) { p.Out[g] = p.B[g]*2.0 + p.S[g] },
			Lines: 66,
		},
	)
}

// RunSerial executes the whole pipeline sequentially (the reference).
func (p *Pipeline) RunSerial() {
	for g := 0; g < p.N; g++ {
		p.Q[g] = math.Sqrt(float64(g)+1.0) * 1.5
	}
	for g := 0; g < p.N; g++ {
		p.M[g] = 1.0 / (float64(g) + 2.0)
	}
	for g := 0; g < p.N; g++ {
		p.S[g] = p.M[g]*2.0 + float64(g)*0.25
	}
	for j := 0; j < p.NR; j++ {
		src := p.gatherSources(granule.ID(j))
		p.R[j] = p.S[src[0]] + p.S[src[1]] + p.S[src[2]]
	}
	p.decide()
	for g := 0; g < p.N; g++ {
		p.B[p.FMap[g]] = p.R[g%p.NR] + float64(g)*0.125
	}
	for g := 0; g < p.N; g++ {
		p.Out[g] = p.B[g]*2.0 + p.S[g]
	}
}

// Footprints returns the declared access footprints of each phase, aligned
// with Program()'s phases, for mapping verification and classification.
func (p *Pipeline) Footprints() []enable.AccessFn {
	nr := p.NR
	return []enable.AccessFn{
		func(g granule.ID) enable.Footprint {
			return enable.Footprint{Writes: []enable.Effect{{Var: "Q", Idx: int(g)}}}
		},
		func(g granule.ID) enable.Footprint {
			return enable.Footprint{Writes: []enable.Effect{{Var: "M", Idx: int(g)}}}
		},
		func(g granule.ID) enable.Footprint {
			return enable.Footprint{
				Reads:  []enable.Effect{{Var: "M", Idx: int(g)}},
				Writes: []enable.Effect{{Var: "S", Idx: int(g)}},
			}
		},
		func(g granule.ID) enable.Footprint {
			fp := enable.Footprint{Writes: []enable.Effect{{Var: "R", Idx: int(g)}}}
			for _, s := range p.gatherSources(g) {
				fp.Reads = append(fp.Reads, enable.Effect{Var: "S", Idx: int(s)})
			}
			return fp
		},
		func(g granule.ID) enable.Footprint {
			return enable.Footprint{
				Reads:  []enable.Effect{{Var: "R", Idx: int(g) % nr}},
				Writes: []enable.Effect{{Var: "B", Idx: int(p.FMap[g])}},
			}
		},
		func(g granule.ID) enable.Footprint {
			return enable.Footprint{
				Reads:  []enable.Effect{{Var: "B", Idx: int(g)}, {Var: "S", Idx: int(g)}},
				Writes: []enable.Effect{{Var: "Out", Idx: int(g)}},
			}
		},
	}
}
