package casper

import (
	"testing"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/executive"
	"repro/internal/granule"
	"repro/internal/sim"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(2, 1.0, nil); err == nil {
		t.Error("grid side 2 accepted")
	}
	g, err := NewGrid(5, 1.0, HotEdgeBoundary(5))
	if err != nil {
		t.Fatal(err)
	}
	// 3x3 interior = 9 points, colours split 5/4 or 4/5.
	if g.ColorCount(0)+g.ColorCount(1) != 9 {
		t.Fatalf("interior count = %d", g.ColorCount(0)+g.ColorCount(1))
	}
	// Boundary condition applied.
	if g.Phi[0*5+2] != 1.0 || g.Phi[4*5+2] != 0.0 {
		t.Error("boundary not applied")
	}
}

func TestGridPositionIndexRoundTrip(t *testing.T) {
	g, _ := NewGrid(8, 1.0, nil)
	for c := 0; c < 2; c++ {
		for k := 0; k < g.ColorCount(c); k++ {
			p := g.Position(c, granule.ID(k))
			i, j := p/8, p%8
			if i == 0 || j == 0 || i == 7 || j == 7 {
				t.Fatalf("colour %d granule %d is a boundary point (%d,%d)", c, k, i, j)
			}
			if (i+j)%2 != c {
				t.Fatalf("colour %d granule %d has parity %d", c, k, (i+j)%2)
			}
			if g.index[p] != int32(k) {
				t.Fatalf("index inverse broken at %d", p)
			}
		}
	}
}

// TestSeamSpecSound verifies the seam mapping against the declared SOR
// footprints with the paper's PARALLEL predicate.
func TestSeamSpecSound(t *testing.T) {
	g, _ := NewGrid(8, 1.0, HotEdgeBoundary(8))
	for c := 0; c < 2; c++ {
		spec := g.SeamSpec(c)
		err := enable.Verify(spec, g.Footprint(c), g.ColorCount(c), g.Footprint(1-c), g.ColorCount(1-c))
		if err != nil {
			t.Errorf("seam %d->%d unsound: %v", c, 1-c, err)
		}
	}
}

// TestSORParallelMatchesSerial: the overlapped parallel SOR must produce
// bit-identical results to the serial reference.
func TestSORParallelMatchesSerial(t *testing.T) {
	const n, sweeps = 24, 5
	ref, err := SolveSerial(n, 1.2, HotEdgeBoundary(n), sweeps)
	if err != nil {
		t.Fatal(err)
	}
	for _, seam := range []bool{false, true} {
		g, _ := NewGrid(n, 1.2, HotEdgeBoundary(n))
		prog, err := g.SORProgram(sweeps, seam)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := executive.Run(prog,
			core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
			executive.Config{Workers: 6}); err != nil {
			t.Fatal(err)
		}
		for p := range ref.Phi {
			if g.Phi[p] != ref.Phi[p] {
				t.Fatalf("seam=%v: phi[%d] = %v, want %v", seam, p, g.Phi[p], ref.Phi[p])
			}
		}
	}
}

func TestSORConverges(t *testing.T) {
	g, _ := NewGrid(16, 1.5, HotEdgeBoundary(16))
	r0 := g.Residual()
	prog, _ := g.SORProgram(30, true)
	if _, err := executive.Run(prog,
		core.Options{Grain: 16, Overlap: true, Costs: core.DefaultCosts()},
		executive.Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if r := g.Residual(); r >= r0/10 {
		t.Errorf("residual %v did not drop an order of magnitude from %v", r, r0)
	}
}

func TestSORProgramValidation(t *testing.T) {
	g, _ := NewGrid(8, 1.0, nil)
	if _, err := g.SORProgram(0, true); err == nil {
		t.Error("zero sweeps accepted")
	}
}

func TestIdealCheckerboardPaperArithmetic(t *testing.T) {
	ic, err := NewIdealCheckerboard(1024)
	if err != nil {
		t.Fatal(err)
	}
	if g := ic.PhaseGranules(); g != 524288 {
		t.Fatalf("phase granules = %d, want 524288 (paper: 2**20 points, half per phase)", g)
	}
	each, left, idle := ic.Leftover(1000)
	if each != 524 || left != 288 || idle != 712 {
		t.Fatalf("leftover arithmetic = (%d, %d, %d), want (524, 288, 712)", each, left, idle)
	}
	// Perfect division leaves no idle processors.
	if _, left, idle := ic.Leftover(1024); left != 0 || idle != 0 {
		t.Error("perfect division should have no leftover")
	}
	if _, err := NewIdealCheckerboard(7); err == nil {
		t.Error("odd side accepted")
	}
}

func TestIdealSeamSpecBuilds(t *testing.T) {
	ic, _ := NewIdealCheckerboard(8)
	for c := 0; c < 2; c++ {
		spec := ic.SeamSpec(c)
		tab, err := enable.Build(spec, ic.PhaseGranules(), ic.PhaseGranules())
		if err != nil {
			t.Fatalf("colour %d: %v", c, err)
		}
		// Torus: every successor point has exactly 4 requirements, so
		// nothing is ready at start and the map has 4 entries per point.
		if tab.ReadyAtStart().Len() != 0 {
			t.Errorf("colour %d: %d ready at start", c, tab.ReadyAtStart().Len())
		}
		if tab.BuildCost() != int64(4*ic.PhaseGranules()) {
			t.Errorf("colour %d: build cost %d", c, tab.BuildCost())
		}
	}
}

func TestIdealPositionRoundTrip(t *testing.T) {
	ic, _ := NewIdealCheckerboard(8)
	for c := 0; c < 2; c++ {
		for k := granule.ID(0); int(k) < ic.PhaseGranules(); k++ {
			i, j := ic.position(c, k)
			if (i+j)%2 != c {
				t.Fatalf("colour %d granule %d parity broken at (%d,%d)", c, k, i, j)
			}
			if ic.indexOf(c, i, j) != k {
				t.Fatalf("round trip broken for colour %d granule %d", c, k)
			}
		}
	}
}

func TestIdealOverlapReducesRundown(t *testing.T) {
	ic, _ := NewIdealCheckerboard(16) // 128 granules per phase
	barrierProg, _ := ic.Program(2, false)
	seamProg, _ := ic.Program(2, true)
	// 12 processors: 128 = 10*12 + 8, so each barrier phase strands 4
	// processors in its final wave.
	barrier, err := sim.Run(barrierProg,
		core.Options{Grain: 1, Costs: core.FreeCosts()},
		sim.Config{Procs: 12, Mgmt: sim.Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	seam, err := sim.Run(seamProg,
		core.Options{Grain: 1, Overlap: true, Costs: core.FreeCosts()},
		sim.Config{Procs: 12, Mgmt: sim.Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if seam.Makespan >= barrier.Makespan {
		t.Errorf("seam overlap makespan %d >= barrier %d", seam.Makespan, barrier.Makespan)
	}
	if seam.IdleUnits >= barrier.IdleUnits {
		t.Errorf("seam overlap idle %d >= barrier idle %d", seam.IdleUnits, barrier.IdleUnits)
	}
}

func TestPipelineSerialVsParallel(t *testing.T) {
	ref, err := NewPipeline(256)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSerial()

	for _, overlap := range []bool{false, true} {
		p, _ := NewPipeline(256)
		prog, err := p.Program()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := executive.Run(prog,
			core.Options{Grain: 8, Overlap: overlap, Elevate: true, Costs: core.DefaultCosts()},
			executive.Config{Workers: 6}); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Out {
			if p.Out[i] != ref.Out[i] {
				t.Fatalf("overlap=%v: out[%d] = %v, want %v", overlap, i, p.Out[i], ref.Out[i])
			}
		}
		if p.Norm != ref.Norm {
			t.Fatalf("overlap=%v: norm %v != %v", overlap, p.Norm, ref.Norm)
		}
	}
}

// TestPipelineDeclaredMappingsSound verifies every declared adjacent
// mapping against the footprints.
func TestPipelineDeclaredMappingsSound(t *testing.T) {
	p, _ := NewPipeline(64)
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	fps := p.Footprints()
	for i := 0; i < len(prog.Phases)-1; i++ {
		spec := prog.Phases[i].Enable
		err := enable.Verify(spec, fps[i], prog.Phases[i].Granules, fps[i+1], prog.Phases[i+1].Granules)
		if err != nil {
			t.Errorf("pair %d (%s -> %s): %v", i, prog.Phases[i].Name, prog.Phases[i+1].Name, err)
		}
	}
}

// TestPipelineInferredKinds classifies the pipeline's adjacent pairs from
// footprints alone and checks the expected census kinds.
func TestPipelineInferredKinds(t *testing.T) {
	p, _ := NewPipeline(64)
	prog, _ := p.Program()
	fps := p.Footprints()
	want := []enable.Kind{
		enable.Universal,       // power-compression -> interp-matrix
		enable.Identity,        // interp-matrix -> smooth
		enable.ReverseIndirect, // smooth -> residual-gather
		enable.ReverseIndirect, // gather -> scatter (data says reverse; serial action forces null)
		enable.ForwardIndirect, // scatter -> final
	}
	for i := 0; i < len(prog.Phases)-1; i++ {
		kind, _ := enable.Infer(fps[i], prog.Phases[i].Granules, fps[i+1], prog.Phases[i+1].Granules)
		if kind != want[i] {
			t.Errorf("pair %d (%s -> %s): inferred %v, want %v",
				i, prog.Phases[i].Name, prog.Phases[i+1].Name, kind, want[i])
		}
	}
	// The declared program downgrades gather -> scatter to null because a
	// serial decision intervenes (the paper's observed null cause).
	if prog.Phases[3].Enable != nil {
		t.Error("gather phase should declare a null mapping")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(3); err == nil {
		t.Error("odd/small n accepted")
	}
	p, _ := NewPipeline(16)
	// FMap is a permutation.
	seen := make(map[granule.ID]bool)
	for _, v := range p.FMap {
		if seen[v] {
			t.Fatal("FMap not a permutation")
		}
		seen[v] = true
	}
}

func BenchmarkSORSweepExecutive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := NewGrid(128, 1.2, HotEdgeBoundary(128))
		prog, _ := g.SORProgram(2, true)
		if _, err := executive.Run(prog,
			core.Options{Grain: 256, Overlap: true, Costs: core.DefaultCosts()},
			executive.Config{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
