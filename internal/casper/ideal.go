package casper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// IdealCheckerboard reproduces the paper's idealized checkerboard
// arithmetic: an n x n periodic grid has n*n/2 computations per colour
// phase, each of definite unit cost. For n = 1024 this is the paper's
// worked example — 2**20 grid points, 524,288 individual computations per
// phase; on 1000 processors that is 524 computations each with 288 left
// over, leaving 712 processors idle while the final 288 are carried out.
type IdealCheckerboard struct {
	N int
}

// NewIdealCheckerboard validates n (even, >= 2).
func NewIdealCheckerboard(n int) (*IdealCheckerboard, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("casper: ideal checkerboard needs even n >= 2, got %d", n)
	}
	return &IdealCheckerboard{N: n}, nil
}

// PhaseGranules returns the computations per colour phase: n*n/2.
func (ic *IdealCheckerboard) PhaseGranules() int { return ic.N * ic.N / 2 }

// Leftover returns the paper's distribution arithmetic for p processors:
// each processor receives `each` computations and `left` remain; during the
// final wave `idle` processors have nothing to do.
func (ic *IdealCheckerboard) Leftover(p int) (each, left, idle int) {
	g := ic.PhaseGranules()
	each = g / p
	left = g % p
	idle = p - left
	if left == 0 {
		idle = 0
	}
	return each, left, idle
}

// position maps colour c granule k to torus coordinates (i, j).
func (ic *IdealCheckerboard) position(c int, k granule.ID) (i, j int) {
	half := ic.N / 2
	i = int(k) / half
	j = 2*(int(k)%half) + (i+c)%2
	return i, j
}

// indexOf maps torus coordinates to the granule index within colour c.
func (ic *IdealCheckerboard) indexOf(c, i, j int) granule.ID {
	half := ic.N / 2
	return granule.ID(i*half + (j-(i+c)%2)/2)
}

// SeamSpec is the periodic (torus) neighbour mapping from the colour-c
// phase to the colour-(1-c) phase.
func (ic *IdealCheckerboard) SeamSpec(c int) *enable.Spec {
	n := ic.N
	next := 1 - c
	return enable.NewSeam(func(r granule.ID) []granule.ID {
		i, j := ic.position(next, r)
		return []granule.ID{
			ic.indexOf(c, (i+1)%n, j),
			ic.indexOf(c, (i-1+n)%n, j),
			ic.indexOf(c, i, (j+1)%n),
			ic.indexOf(c, i, (j-1+n)%n),
		}
	})
}

// Program builds the ideal phase program for `sweeps` red/black iterations:
// unit-cost granules, no work functions (pure scheduling). With seam=true
// colour phases are seam-mapped; otherwise strict barriers (null).
func (ic *IdealCheckerboard) Program(sweeps int, seam bool) (*core.Program, error) {
	if sweeps < 1 {
		return nil, fmt.Errorf("casper: need at least one sweep")
	}
	var phases []*core.Phase
	for s := 0; s < sweeps; s++ {
		for c := 0; c < 2; c++ {
			phases = append(phases, &core.Phase{
				Name:     fmt.Sprintf("sweep%d-%s", s, []string{"red", "black"}[c]),
				Granules: ic.PhaseGranules(),
			})
		}
	}
	if seam {
		for i := 0; i < len(phases)-1; i++ {
			phases[i].Enable = ic.SeamSpec(i % 2)
		}
	}
	return core.NewProgram(phases...)
}
