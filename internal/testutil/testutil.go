// Package testutil holds the test helpers the cancellation and observer
// suites share across packages (root, internal/executive,
// internal/tenant): a sleeping-chain workload whose mid-run state is
// reachable even on a single-CPU CI host, and the goroutine-leak check
// with retries.
package testutil

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/granule"
)

// SleepChain builds an identity chain of sleeping granules: long enough
// that a mid-run cancel lands while workers are busy and tasks sit in
// every manager's buffers, and sleep-based (not spinning) so the timing
// holds on a single-CPU host.
func SleepChain(tb testing.TB, phases, n int, d time.Duration) *core.Program {
	tb.Helper()
	specs := make([]*core.Phase, phases)
	for p := 0; p < phases; p++ {
		spec := &core.Phase{
			Name:     fmt.Sprintf("p%d", p),
			Granules: n,
			Work:     func(g granule.ID) { time.Sleep(d) },
		}
		if p < phases-1 {
			spec.Enable = enable.NewIdentity()
		}
		specs[p] = spec
	}
	prog, err := core.NewProgram(specs...)
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

// WaitGoroutines retries until the goroutine count falls back to the
// pre-test baseline, failing with a full stack dump if it never does
// within 5s. Retries absorb runtime-internal goroutines (timers, GC)
// winding down.
func WaitGoroutines(tb testing.TB, before int) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			tb.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
