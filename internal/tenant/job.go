package tenant

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
)

// Job is the handle for one submitted program. It is created by
// Pool.Submit and owned by the pool until finished.
type Job struct {
	pool *Pool
	cfg  JobConfig
	idx  int

	prog  *core.Program
	sched *core.Scheduler
	mgr   executive.PoolDriver

	// deficit is the job's deficit-round-robin backfill credit in
	// granules, guarded by pool.mu.
	deficit int64

	compute         atomic.Int64 // nanoseconds of granule work
	tasks           atomic.Int64
	backfillTasks   atomic.Int64 // tasks run by foreign-home workers
	backfillCompute atomic.Int64

	submitted time.Time
	finished  atomic.Bool
	end       time.Time // guarded by pool.mu until done is closed
	err       error     // guarded by pool.mu until done is closed
	done      chan struct{}
}

// Name returns the job's label.
func (j *Job) Name() string { return j.cfg.Name }

// Done returns a channel closed when the job finishes (successfully or
// not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its report. The report
// has the same shape as an executive.Run report: Wall is submit-to-finish,
// Mgmt is the job's own manager-serialized management time, Utilization is
// against the full pool (a job sharing the pool cannot use more). Idle is
// zero — parked time belongs to the pool, not to any one job.
func (j *Job) Wait() (*executive.Report, error) {
	<-j.done
	// An async manager's management goroutine may still be winding down
	// for a moment after the job is retired; join it so the scheduler
	// statistics read below are quiescent.
	if jn, ok := j.mgr.(executive.Joiner); ok {
		jn.Join()
	}
	rep := &executive.Report{
		Manager: j.pool.cfg.Manager,
		Wall:    j.end.Sub(j.submitted),
		Compute: time.Duration(j.compute.Load()),
		Mgmt:    j.mgr.Mgmt(),
		Tasks:   j.tasks.Load(),
		Sched:   j.sched.Stats(),
	}
	if rep.Mgmt > 0 {
		rep.MgmtRatio = float64(rep.Compute) / float64(rep.Mgmt)
	}
	if rep.Wall > 0 {
		rep.Utilization = float64(rep.Compute) / (float64(j.pool.cfg.Workers) * float64(rep.Wall))
	}
	return rep, j.err
}

// BackfillTasks reports how many of the job's tasks were executed by
// workers homed on another job (valid after Wait).
func (j *Job) BackfillTasks() int64 { return j.backfillTasks.Load() }

// BackfillCompute reports the summed execution time of those tasks.
func (j *Job) BackfillCompute() time.Duration {
	return time.Duration(j.backfillCompute.Load())
}
