package tenant

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/telemetry"
)

// Job is the handle for one submitted program. It is created by
// Pool.Submit and owned by the pool until finished.
type Job struct {
	pool *Pool
	cfg  JobConfig
	idx  int

	prog *core.Program
	opt  core.Options // retained so a retry can recompile the scheduler
	// sched and mgrv belong to the job's current ATTEMPT: a retry swaps
	// in a fresh scheduler+manager pair. sched is swapped under pool.mu
	// (read racily only by the stall probe, also under pool.mu); the
	// driver is an atomic so workers and timers read it lock-free.
	sched *core.Scheduler
	mgrv  atomic.Value // executive.PoolDriver

	// deficit is the job's deficit-round-robin backfill credit in
	// granules, guarded by pool.mu.
	deficit int64

	compute         atomic.Int64 // nanoseconds of granule work
	tasks           atomic.Int64
	backfillTasks   atomic.Int64 // tasks run by foreign-home workers
	backfillCompute atomic.Int64

	// attempts counts scheduler instantiations (1 = no retry yet);
	// retriesLeft is guarded by pool.mu; retrying marks the backoff
	// window between a failed attempt and its restart; mgmtPrior
	// accumulates dead attempts' management nanoseconds.
	attempts    atomic.Int32
	retriesLeft int
	retrying    atomic.Bool
	mgmtPrior   atomic.Int64
	// lastTouch is the UnixNano of the job's last dispatch or completion
	// submission — the watchdog's wedge signal.
	lastTouch atomic.Int64
	// deadline is the job's deadline timer (nil without one), stopped
	// when the job finishes. Guarded by pool.mu.
	deadline *time.Timer

	submitted time.Time
	finished  atomic.Bool
	end       time.Time // guarded by pool.mu until done is closed
	err       error     // guarded by pool.mu until done is closed
	done      chan struct{}

	// activatedOnce marks the first activation and queueWaitNS the
	// submit-to-activation wait it measured (for a job retired while
	// still queued, the whole life). Both written under pool.mu before
	// done closes; read after Wait. started mirrors activatedOnce for
	// lock-free progress polling (service SSE snapshots).
	activatedOnce bool
	queueWaitNS   int64
	started       atomic.Bool
}

// driver returns the job's current attempt's manager.
func (j *Job) driver() executive.PoolDriver {
	return j.mgrv.Load().(executive.PoolDriver)
}

// Attempts reports how many times the job's scheduler was instantiated:
// 1 plus the number of retries taken so far.
func (j *Job) Attempts() int { return int(j.attempts.Load()) }

// Name returns the job's label.
func (j *Job) Name() string { return j.cfg.Name }

// Index is the job's pool-assigned index in submit order — the Job
// column of the pool's flight-recorder records, so a caller can carve
// this job's schedule out of a pool trace with Trace.FilterJob.
func (j *Job) Index() int { return j.idx }

// Class returns the job's service class ("" = unclassified).
func (j *Job) Class() string { return j.cfg.Class }

// Started reports whether the job has been activated at least once —
// false while it waits behind admission control. Safe to poll.
func (j *Job) Started() bool { return j.started.Load() }

// Finished reports whether the job has been retired. Safe to poll;
// Done is the blocking form.
func (j *Job) Finished() bool { return j.finished.Load() }

// Tasks reports how many tasks the job has completed so far. Safe to
// poll while the job runs (monotonic, eventually consistent).
func (j *Job) Tasks() int64 { return j.tasks.Load() }

// Done returns a channel closed when the job finishes (successfully or
// not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its report. The report
// has the same shape as an executive.Run report: Wall is submit-to-finish,
// Mgmt is the job's own manager-serialized management time, Utilization is
// against the full pool (a job sharing the pool cannot use more). Idle is
// zero — parked time belongs to the pool, not to any one job.
func (j *Job) Wait() (*executive.Report, error) {
	<-j.done
	// An async manager's management goroutine may still be winding down
	// for a moment after the job is retired; join it so the scheduler
	// statistics read below are quiescent.
	m := j.driver()
	if jn, ok := m.(executive.Joiner); ok {
		jn.Join()
	}
	rep := &executive.Report{
		Manager: j.pool.cfg.Manager,
		Wall:    j.end.Sub(j.submitted),
		Compute: time.Duration(j.compute.Load()),
		Mgmt:    m.Mgmt() + time.Duration(j.mgmtPrior.Load()),
		Tasks:   j.tasks.Load(),
		Sched:   j.sched.Stats(),
	}
	if rep.Mgmt > 0 {
		rep.MgmtRatio = float64(rep.Compute) / float64(rep.Mgmt)
	}
	rep.Utilization, _ = telemetry.Shares(
		int64(rep.Compute), int64(rep.Mgmt), j.pool.cfg.Workers, int64(rep.Wall))
	return rep, j.err
}

// QueueWait reports how long the job waited behind admission control
// between Submit and its first activation — zero when it started
// immediately, its whole lifetime when it was retired before ever
// running. Valid after Wait.
func (j *Job) QueueWait() time.Duration { return time.Duration(j.queueWaitNS) }

// DeadlineMargin reports how much of the job's deadline budget was left
// when it finished (negative when it was retired past the deadline) and
// whether the job had a deadline at all. Valid after Wait.
func (j *Job) DeadlineMargin() (time.Duration, bool) {
	if j.cfg.Deadline <= 0 {
		return 0, false
	}
	return j.cfg.Deadline - j.end.Sub(j.submitted), true
}

// BackfillTasks reports how many of the job's tasks were executed by
// workers homed on another job (valid after Wait).
func (j *Job) BackfillTasks() int64 { return j.backfillTasks.Load() }

// BackfillCompute reports the summed execution time of those tasks.
func (j *Job) BackfillCompute() time.Duration {
	return time.Duration(j.backfillCompute.Load())
}
