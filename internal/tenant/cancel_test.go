package tenant

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/testutil"
)

// buildSleepChain builds the shared sleeping identity chain (see
// testutil.SleepChain).
func buildSleepChain(t *testing.T, phases, n int, d time.Duration) *core.Program {
	t.Helper()
	return testutil.SleepChain(t, phases, n, d)
}

// TestPoolAbortCancels is the pool-level cancellation check, run under
// every manager kind the pool can drive: aborting a pool with a
// ctx.Err()-wrapped error fails every active job with that error
// promptly, Close returns it, and teardown leaks no goroutines.
func TestPoolAbortCancels(t *testing.T) {
	for _, kind := range executive.ManagerKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			pool, err := NewPool(Config{Workers: 4, Manager: kind})
			if err != nil {
				t.Fatal(err)
			}
			var handles []*Job
			for i := 0; i < 2; i++ {
				j, err := pool.Submit(buildSleepChain(t, 3, 128, time.Millisecond),
					core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
					JobConfig{Name: fmt.Sprintf("job%d", i)})
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, j)
			}
			time.Sleep(15 * time.Millisecond) // let both jobs get going

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			pool.Abort(fmt.Errorf("tenant: pool canceled: %w", ctx.Err()))

			waitDone := make(chan struct{})
			go func() {
				defer close(waitDone)
				for _, j := range handles {
					if _, err := j.Wait(); !errors.Is(err, context.Canceled) {
						t.Errorf("job %s err = %v, want wrapped context.Canceled", j.Name(), err)
					}
				}
			}()
			select {
			case <-waitDone:
			case <-time.After(10 * time.Second):
				buf := make([]byte, 1<<20)
				t.Fatalf("aborted jobs did not finish promptly\n%s", buf[:runtime.Stack(buf, true)])
			}

			if _, err := pool.Close(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Close err = %v, want wrapped context.Canceled", err)
			}
			testutil.WaitGoroutines(t, before)
		})
	}
}

// TestPoolAbortSparesFinishedJobs: a job that completed before the abort
// keeps its nil error and its report.
func TestPoolAbortSparesFinishedJobs(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, Manager: executive.ShardedManager})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := pool.Submit(buildSleepChain(t, 1, 8, 0),
		core.Options{Grain: 1, Costs: core.DefaultCosts()}, JobConfig{Name: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quick.Wait(); err != nil {
		t.Fatalf("quick job failed before abort: %v", err)
	}
	slow, err := pool.Submit(buildSleepChain(t, 2, 256, time.Millisecond),
		core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{Name: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	pool.Abort(fmt.Errorf("canceled: %w", sentinel))
	if _, err := slow.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("slow job err = %v, want wrapped sentinel", err)
	}
	// The finished job's result is untouched.
	if rep, err := quick.Wait(); err != nil || rep.Tasks == 0 {
		t.Errorf("finished job corrupted by abort: rep=%v err=%v", rep, err)
	}
	if _, err := pool.Close(); !errors.Is(err, sentinel) {
		t.Errorf("Close err = %v, want wrapped sentinel", err)
	}
}

// TestPoolAbortSparesCompletedUnretiredJobs: a job whose state machine
// has completed but which no worker sweep has retired yet must keep its
// results through an Abort — once mgr.Done() is true, Abort may never
// poison the job with the abort error.
func TestPoolAbortSparesCompletedUnretiredJobs(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, Manager: executive.ShardedManager})
	if err != nil {
		t.Fatal(err)
	}
	j, err := pool.Submit(buildSleepChain(t, 1, 4, 0),
		core.Options{Grain: 1, Costs: core.DefaultCosts()}, JobConfig{Name: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	// Spin until the state machine reports done — the job may or may not
	// have been retired by a worker sweep at this point; Abort must treat
	// both states as "finished".
	deadline := time.Now().Add(5 * time.Second)
	for !j.driver().Done() {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		runtime.Gosched()
	}
	pool.Abort(errors.New("boom"))
	if _, err := j.Wait(); err != nil {
		t.Fatalf("completed job poisoned by abort: %v", err)
	}
	if _, err := pool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPoolObserver checks the pool sampler: snapshots arrive while jobs
// run, counters are monotonic, and Close emits a Final snapshot carrying
// the report totals.
func TestPoolObserver(t *testing.T) {
	var mu sync.Mutex
	var snaps []Snapshot
	pool, err := NewPool(Config{
		Workers: 4, Manager: executive.ShardedManager,
		Observer: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
		ObservePeriod: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		j, err := pool.Submit(buildSleepChain(t, 2, 64, time.Millisecond),
			core.Options{Grain: 1, Overlap: true, Costs: core.DefaultCosts()},
			JobConfig{Name: fmt.Sprintf("job%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Done()
	}
	rep, err := pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Close stays idempotent with an observer configured: the second
	// Close must neither panic nor emit a second Final snapshot.
	if _, err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	mu.Lock()
	got := append([]Snapshot(nil), snaps...)
	mu.Unlock()
	for i, s := range got[:len(got)-1] {
		if s.Final {
			t.Fatalf("snapshot %d of %d is Final; only the last may be", i, len(got))
		}
	}
	if len(got) == 0 {
		t.Fatal("no snapshots")
	}
	last := got[len(got)-1]
	if !last.Final {
		t.Fatal("last snapshot not Final")
	}
	if last.Tasks != rep.Tasks || last.Jobs != rep.Jobs || last.ActiveJobs != 0 {
		t.Errorf("final snapshot tasks=%d jobs=%d active=%d, report tasks=%d jobs=%d",
			last.Tasks, last.Jobs, last.ActiveJobs, rep.Tasks, rep.Jobs)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Tasks < got[i-1].Tasks {
			t.Errorf("snapshot %d task count went backwards", i)
		}
	}
}
