package tenant

import (
	"sort"

	"repro/internal/core"
	"repro/internal/executive"
)

// This file is the cross-job dispatch policy. Two decisions live here:
//
//   - home assignment (rebalanceLocked): workers are divided among the
//     active jobs in proportion to their weights, largest remainders
//     settled by priority then submit order. A worker serves its home job
//     exclusively while anything there is dispatchable, so a job's
//     critical path is driven by a stable worker set and its makespan
//     stays close to running alone.
//   - backfill order (backfillPlan): a worker whose home job is in
//     rundown offers its idle capacity to the other jobs — higher
//     priority first, then larger deficit-round-robin credit, submit
//     order as the final tie-break. Backfill draws down the serving
//     job's credit by the task's granule count; credit replenishes by
//     weight when every candidate is exhausted.

// homeCache is a worker-local snapshot of the home assignment, refreshed
// only when the pool's epoch changes, so the hot path (home job has work)
// costs one atomic load instead of a pool-lock acquisition per task.
type homeCache struct {
	epoch uint64
	home  *Job
	valid bool
}

// home returns worker w's current home job (nil when no job is active).
func (p *Pool) home(w int, c *homeCache) *Job {
	e := p.epoch.Load()
	if c.valid && c.epoch == e {
		return c.home
	}
	p.mu.Lock()
	c.home = p.homes[w]
	c.epoch = p.epoch.Load()
	c.valid = true
	p.mu.Unlock()
	return c.home
}

// sweep makes one pass over the dispatch policy for worker w: home job
// first, then the backfill candidates in policy order. ok=false means
// nothing was dispatchable anywhere at sweep time. The returned driver
// is the one the task was taken from — the worker completes to it, even
// if a retry swaps the job's current driver in the meantime.
func (p *Pool) sweep(w int, c *homeCache) (j *Job, m executive.PoolDriver, t core.Task, backfill, ok bool) {
	home := p.home(w, c)
	if home != nil {
		hm := home.driver()
		if t, ok := hm.TryNext(w); ok {
			p.gen.Add(1)
			return home, hm, t, false, true
		}
		p.checkFinished(home)
	}
	for _, cand := range p.backfillPlan(home) {
		cm := cand.driver()
		if t, ok := cm.TryNext(w); ok {
			p.mu.Lock()
			cand.deficit -= int64(t.Run.Len())
			p.mu.Unlock()
			p.gen.Add(1)
			return cand, cm, t, true, true
		}
		p.checkFinished(cand)
	}
	return nil, nil, core.Task{}, false, false
}

// backfillPlan snapshots the backfill candidates for a worker homed on
// home, ordered by the dispatch policy. Replenishes every active job's
// deficit-round-robin credit when the candidates are collectively
// exhausted.
func (p *Pool) backfillPlan(home *Job) []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	cands := make([]*Job, 0, len(p.active))
	credit := false
	for _, j := range p.active {
		if j == home {
			continue
		}
		cands = append(cands, j)
		if j.deficit > 0 {
			credit = true
		}
	}
	if len(cands) == 0 {
		return nil
	}
	if !credit {
		for _, j := range p.active {
			j.deficit += int64(j.cfg.Weight) * drrQuantum
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].cfg.Priority != cands[b].cfg.Priority {
			return cands[a].cfg.Priority > cands[b].cfg.Priority
		}
		if cands[a].deficit != cands[b].deficit {
			return cands[a].deficit > cands[b].deficit
		}
		return cands[a].idx < cands[b].idx
	})
	return cands
}

// rebalanceLocked reassigns worker homes over the active jobs by weighted
// largest-remainder: every job gets floor(W * weight / totalWeight) home
// workers, leftovers go to the highest (priority, remainder, submit
// order). With more jobs than workers the overflow jobs hold no home
// workers and progress through backfill only. Caller holds p.mu.
func (p *Pool) rebalanceLocked() {
	defer p.epoch.Add(1)
	n := len(p.active)
	if n == 0 {
		for i := range p.homes {
			p.homes[i] = nil
		}
		return
	}
	total := 0
	for _, j := range p.active {
		total += j.cfg.Weight
	}
	w := p.cfg.Workers
	type share struct {
		j    *Job
		n    int
		rem  int
		prio int
	}
	shares := make([]share, n)
	assigned := 0
	for i, j := range p.active {
		exact := w * j.cfg.Weight
		shares[i] = share{j: j, n: exact / total, rem: exact % total, prio: j.cfg.Priority}
		assigned += shares[i].n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := shares[order[a]], shares[order[b]]
		if sa.prio != sb.prio {
			return sa.prio > sb.prio
		}
		return sa.rem > sb.rem
	})
	for i := 0; assigned < w; i = (i + 1) % n {
		shares[order[i]].n++
		assigned++
	}
	slot := 0
	for _, s := range shares {
		for k := 0; k < s.n; k++ {
			p.homes[slot] = s.j
			slot++
		}
	}
}
