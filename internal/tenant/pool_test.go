package tenant

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/executive"
	"repro/internal/granule"
)

// buildCopyChain builds the three-phase identity copy chain used across
// the executive tests, with its own backing arrays.
func buildCopyChain(t testing.TB, n int) (*core.Program, []int64, []int64, []int64) {
	t.Helper()
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	prog, err := core.NewProgram(
		&core.Phase{
			Name: "fill", Granules: n,
			Work:   func(g granule.ID) { a[g] = int64(g) * 3 },
			Enable: enable.NewIdentity(),
		},
		&core.Phase{
			Name: "copy", Granules: n,
			Work:   func(g granule.ID) { b[g] = a[g] + 1 },
			Enable: enable.NewIdentity(),
		},
		&core.Phase{
			Name: "mix", Granules: n,
			Work: func(g granule.ID) { c[g] = b[g] ^ a[g] },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog, a, b, c
}

func checkCopyChain(t testing.TB, a, b, c []int64) {
	t.Helper()
	for g := range a {
		wantA := int64(g) * 3
		wantB := wantA + 1
		if a[g] != wantA || b[g] != wantB || c[g] != wantB^wantA {
			t.Fatalf("granule %d: a=%d b=%d c=%d", g, a[g], b[g], c[g])
		}
	}
}

// runSingleJobPool runs prog as the only job of a fresh pool and returns
// its report plus the pool report.
func runSingleJobPool(t *testing.T, prog *core.Program, opt core.Options, cfg Config) (*executive.Report, *Report) {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := p.Submit(prog, opt, JobConfig{Name: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	poolRep, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	return rep, poolRep
}

// TestPoolConformance proves a single-job pool is report-equivalent to
// executive.Run under every manager. With one worker the scheduling
// decision sequence is deterministic, so the state-machine statistics and
// task counts must match Execute exactly; with several workers the
// decision interleaving is timing-dependent, so equivalence is the
// structural part: identical results, every granule exactly once, and a
// complete report. The async manager skips the exact part even at one
// worker — its management goroutine's refill boundaries race the worker's
// pulls, so the decision sequence is inherently timing-dependent.
func TestPoolConformance(t *testing.T) {
	const n = 2048
	opt := func() core.Options {
		return core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}
	}
	for _, kind := range executive.ManagerKinds() {
		if kind != executive.AsyncManager {
			// One worker: exact equivalence.
			prog, a1, b1, c1 := buildCopyChain(t, n)
			execRep, err := executive.Run(prog, opt(), executive.Config{
				Workers: 1, Manager: kind, DequeCap: 8, Batch: 4,
			})
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			checkCopyChain(t, a1, b1, c1)

			prog2, a2, b2, c2 := buildCopyChain(t, n)
			poolRep, _ := runSingleJobPool(t, prog2, opt(), Config{
				Workers: 1, Manager: kind, DequeCap: 8, Batch: 4,
			})
			checkCopyChain(t, a2, b2, c2)

			if poolRep.Manager != execRep.Manager {
				t.Errorf("%v: manager %v != %v", kind, poolRep.Manager, execRep.Manager)
			}
			if poolRep.Tasks != execRep.Tasks {
				t.Errorf("%v: pool ran %d tasks, Execute ran %d", kind, poolRep.Tasks, execRep.Tasks)
			}
			if poolRep.Sched != execRep.Sched {
				t.Errorf("%v: scheduler stats diverge:\npool:    %+v\nexecute: %+v",
					kind, poolRep.Sched, execRep.Sched)
			}
		}

		// Eight workers: structural equivalence.
		prog3, a3, b3, c3 := buildCopyChain(t, n)
		rep8, pr8 := runSingleJobPool(t, prog3, opt(), Config{
			Workers: 8, Manager: kind, DequeCap: 8, Batch: 4,
		})
		checkCopyChain(t, a3, b3, c3)
		if rep8.Tasks == 0 || rep8.Compute <= 0 || rep8.Wall <= 0 {
			t.Errorf("%v/8 workers: degenerate report %v", kind, rep8)
		}
		if rep8.Sched.Completions == 0 {
			t.Errorf("%v/8 workers: no completions recorded", kind)
		}
		if pr8.BackfillTasks != 0 {
			t.Errorf("%v/8 workers: single-job pool recorded %d backfill tasks", kind, pr8.BackfillTasks)
		}
		if pr8.Jobs != 1 || pr8.Tasks != rep8.Tasks {
			t.Errorf("%v/8 workers: pool report %+v inconsistent with job report", kind, pr8)
		}
	}
}

// TestPoolTwoJobsRace is the -race workout the acceptance criteria call
// for: >= 2 concurrent jobs on a shared pool under the sharded manager
// with small deques and batches (constant stealing, flushing, and
// cross-job dispatch), verifying both jobs' results.
func TestPoolTwoJobsRace(t *testing.T) {
	const n = 2048
	for _, cfg := range []Config{
		{Workers: 8, Manager: executive.ShardedManager, DequeCap: 4, Batch: 2},
		// The async arm runs one management goroutine per job beside the
		// 8 shared workers, with tiny buffers forcing constant refills,
		// MPSC drains, and pool-level notify wakeups.
		{Workers: 8, Manager: executive.AsyncManager, ReadyCap: 4, LowWater: 1, Batch: 2},
	} {
		p, err := NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		progA, aA, bA, cA := buildCopyChain(t, n)
		progB, aB, bB, cB := buildCopyChain(t, n)
		jobA, err := p.Submit(progA, core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
			JobConfig{Name: "A"})
		if err != nil {
			t.Fatal(err)
		}
		jobB, err := p.Submit(progB, core.Options{Grain: 4, Overlap: true, Costs: core.DefaultCosts()},
			JobConfig{Name: "B", Priority: 1})
		if err != nil {
			t.Fatal(err)
		}
		repA, errA := jobA.Wait()
		repB, errB := jobB.Wait()
		if errA != nil || errB != nil {
			t.Fatalf("%v: job errors: A=%v B=%v", cfg.Manager, errA, errB)
		}
		checkCopyChain(t, aA, bA, cA)
		checkCopyChain(t, aB, bB, cB)
		if repA.Tasks == 0 || repB.Tasks == 0 {
			t.Fatalf("%v: degenerate reports: A=%v B=%v", cfg.Manager, repA, repB)
		}
		rep, err := p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Jobs != 2 || rep.Tasks != repA.Tasks+repB.Tasks {
			t.Errorf("%v: pool report %+v inconsistent with job reports", cfg.Manager, rep)
		}
	}
}

// TestPoolSerialTwoJobs runs the same two-job workout under the serial
// manager.
func TestPoolSerialTwoJobs(t *testing.T) {
	const n = 1024
	p, err := NewPool(Config{Workers: 4, Manager: executive.SerialManager})
	if err != nil {
		t.Fatal(err)
	}
	progA, aA, bA, cA := buildCopyChain(t, n)
	progB, aB, bB, cB := buildCopyChain(t, n)
	jobA, _ := p.Submit(progA, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{})
	jobB, _ := p.Submit(progB, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{})
	if _, err := jobA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := jobB.Wait(); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, aA, bA, cA)
	checkCopyChain(t, aB, bB, cB)
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolBackfillDuringRundown pins the tentpole behaviour: a job whose
// tail tasks block its home workers leaves spare capacity, and the pool
// routes that capacity to the other job as backfill. The blocker job's
// work sleeps (releasing the CPU — the host may have a single core), so
// its home workers hit real rundown windows while the filler job still
// has dispatchable tasks.
func TestPoolBackfillDuringRundown(t *testing.T) {
	runBackfillRundown(t, Config{Workers: 4, Manager: executive.ShardedManager, DequeCap: 2, Batch: 1})
}

// TestPoolBackfillAsync runs the same rundown-backfill scenario with
// per-job async managers: the tentpole requirement that tenant backfill
// works unchanged over the PoolDriver surface, with job progress arriving
// through the Notifier callback instead of worker-applied completions.
func TestPoolBackfillAsync(t *testing.T) {
	runBackfillRundown(t, Config{Workers: 4, Manager: executive.AsyncManager, ReadyCap: 2, LowWater: 1, Batch: 1})
}

func runBackfillRundown(t *testing.T, cfg Config) {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// blocker: its first phase holds one granule hostage until the filler
	// job is half done (gate channel), so the blocker's other home worker
	// faces a guaranteed rundown window — its own job has nothing
	// dispatchable while the filler still holds hundreds of tasks. Work
	// blocks instead of spinning: the host may have a single core.
	gate := make(chan struct{})
	var blockerRan atomic.Int64
	blockerProg, err := core.NewProgram(
		&core.Phase{
			Name: "hostage", Granules: 2,
			Work: func(g granule.ID) {
				if g == 0 {
					<-gate
				} else {
					time.Sleep(100 * time.Microsecond)
				}
				blockerRan.Add(1)
			},
		},
		&core.Phase{
			Name: "tail", Granules: 2,
			Work: func(granule.ID) {
				time.Sleep(100 * time.Microsecond)
				blockerRan.Add(1)
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	const fillerN = 512
	fillerDone := make([]atomic.Bool, 2*fillerN)
	fillerPhase := func(name string, base int, en *enable.Spec) *core.Phase {
		return &core.Phase{
			Name: name, Granules: fillerN,
			Work: func(g granule.ID) {
				time.Sleep(20 * time.Microsecond)
				fillerDone[base+int(g)].Store(true)
				if base == 0 && g == fillerN/2 {
					close(gate)
				}
			},
			Enable: en,
		}
	}
	fillerProg, err := core.NewProgram(
		fillerPhase("f1", 0, enable.NewIdentity()), fillerPhase("f2", fillerN, nil),
	)
	if err != nil {
		t.Fatal(err)
	}

	blocker, err := p.Submit(blockerProg, core.Options{Grain: 1, Costs: core.DefaultCosts()},
		JobConfig{Name: "blocker"})
	if err != nil {
		t.Fatal(err)
	}
	filler, err := p.Submit(fillerProg, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()},
		JobConfig{Name: "filler"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := filler.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range fillerDone {
		if !fillerDone[i].Load() {
			t.Fatalf("filler granule %d never ran", i)
		}
	}
	if blockerRan.Load() != 4 {
		t.Fatalf("blocker ran %d granules, want 4", blockerRan.Load())
	}
	rep, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if filler.BackfillTasks() == 0 {
		t.Errorf("filler received no backfill despite blocker's sleeping home workers: %v", rep)
	}
	if rep.BackfillTasks != filler.BackfillTasks()+blocker.BackfillTasks() {
		t.Errorf("pool backfill %d != job backfill %d+%d",
			rep.BackfillTasks, filler.BackfillTasks(), blocker.BackfillTasks())
	}
}

// TestPoolPanicIsolation: a work panic fails its own job and leaves the
// other job (and the pool) intact.
func TestPoolPanicIsolation(t *testing.T) {
	const n = 1024
	p, err := NewPool(Config{Workers: 8, Manager: executive.ShardedManager, DequeCap: 4, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	poison, err := core.NewProgram(
		&core.Phase{
			Name: "poison", Granules: n,
			Work: func(g granule.ID) {
				if g == n/2 {
					panic("tenant poison")
				}
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	good, a, b, c := buildCopyChain(t, n)

	bad, _ := p.Submit(poison, core.Options{Grain: 8, Costs: core.DefaultCosts()}, JobConfig{Name: "bad"})
	okJob, _ := p.Submit(good, core.Options{Grain: 8, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{Name: "good"})

	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned job error = %v, want work panic", err)
	}
	if _, err := okJob.Wait(); err != nil {
		t.Fatalf("good job failed alongside the poisoned one: %v", err)
	}
	checkCopyChain(t, a, b, c)
	if _, err := p.Close(); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("Close error = %v, want the poisoned job's failure", err)
	}
}

// TestPoolDynamicSubmit submits a second job while the first is already
// running and expects both to complete.
func TestPoolDynamicSubmit(t *testing.T) {
	const n = 4096
	p, err := NewPool(Config{Workers: 4, Manager: executive.ShardedManager, DequeCap: 4, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	progA, aA, bA, cA := buildCopyChain(t, n)
	jobA, err := p.Submit(progA, core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progB, aB, bB, cB := buildCopyChain(t, n)
	jobB, err := p.Submit(progB, core.Options{Grain: 2, Overlap: true, Costs: core.DefaultCosts()}, JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jobA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := jobB.Wait(); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, aA, bA, cA)
	checkCopyChain(t, aB, bB, cB)
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSubmitAfterClose: Submit on a closed pool must fail.
func TestPoolSubmitAfterClose(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	prog, _, _, _ := buildCopyChain(t, 16)
	if _, err := p.Submit(prog, core.Options{}, JobConfig{}); err == nil {
		t.Fatal("Submit on a closed pool succeeded")
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewPool(Config{Workers: 0}); err == nil {
		t.Error("zero-worker pool accepted")
	}
	if _, err := NewPool(Config{Workers: 2, Manager: executive.ManagerKind(250)}); err == nil {
		t.Error("unknown manager kind accepted")
	}
}

// stallDriver is a PoolDriver that never yields work and never finishes:
// the shape of a wedged job, unreachable through the real state machine's
// liveness guarantees. The pool must fail the job, not deadlock.
type stallDriver struct{ err error }

func (d *stallDriver) Start()                        {}
func (d *stallDriver) Next(int) (core.Task, bool)    { return core.Task{}, false }
func (d *stallDriver) TryNext(int) (core.Task, bool) { return core.Task{}, false }
func (d *stallDriver) Complete(int, core.Task) bool  { return true }
func (d *stallDriver) Flush(int) bool                { return false }
func (d *stallDriver) Abort(err error)               { d.err = err }
func (d *stallDriver) Err() error                    { return d.err }
func (d *stallDriver) Mgmt() time.Duration           { return 0 }
func (d *stallDriver) Idle() time.Duration           { return 0 }
func (d *stallDriver) Done() bool                    { return false }
func (d *stallDriver) InFlight() int                 { return 0 }

// TestPoolStallDetector injects a wedged job directly (the public Submit
// path cannot build one) and expects the pool's termination detector to
// fail it once every worker parks.
func TestPoolStallDetector(t *testing.T) {
	p, err := NewPool(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	prog, _, _, _ := buildCopyChain(t, 16)
	sched, err := core.New(prog, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		pool: p, cfg: JobConfig{Name: "wedged", Weight: 1},
		prog: prog, sched: sched,
		done: make(chan struct{}), submitted: time.Now(),
	}
	j.mgrv.Store(executive.PoolDriver(&stallDriver{}))
	j.attempts.Store(1)
	p.mu.Lock()
	p.jobs = append(p.jobs, j)
	p.active = append(p.active, j)
	p.rebalanceLocked()
	p.mu.Unlock()
	p.progress()

	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stalled job not detected within 10s")
	}
	if _, err := j.Wait(); err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("wedged job error = %v, want stall", err)
	}
	rep, err := p.Close()
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("Close error = %v, want stall", err)
	}
	if rep.Stalled != 1 {
		t.Errorf("report counts %d stalled jobs, want 1", rep.Stalled)
	}
}
