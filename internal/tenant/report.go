package tenant

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Report aggregates a pool's lifetime measurements (NewPool to Close).
// Per-job measurements come from Job.Wait.
type Report struct {
	// Workers is the pool's worker count.
	Workers int `json:"workers"`
	// Jobs is the number of jobs submitted over the pool's lifetime.
	Jobs int `json:"jobs"`
	// Stalled is the number of jobs failed by the pool stall detector.
	Stalled int `json:"stalled,omitempty"`
	// Wall is the pool's lifetime.
	Wall time.Duration `json:"wall_ns"`
	// Compute is the summed granule execution time across all jobs.
	Compute time.Duration `json:"compute_ns"`
	// Mgmt is the summed manager-serialized management time across jobs.
	Mgmt time.Duration `json:"mgmt_ns"`
	// Idle is the summed parked worker time.
	Idle time.Duration `json:"idle_ns"`
	// Tasks counts executed tasks across all jobs.
	Tasks int64 `json:"tasks"`
	// BackfillTasks counts tasks executed by a worker homed on another
	// job — the cross-tenancy work that filled rundowns.
	BackfillTasks int64 `json:"backfill_tasks"`
	// BackfillCompute is the summed execution time of those tasks.
	BackfillCompute time.Duration `json:"backfill_compute_ns"`
	// BackfillShare is BackfillCompute / Compute (0 when Compute is 0).
	BackfillShare float64 `json:"backfill_share"`
	// MaxBackfillTask is the largest backfill task observed, in granules —
	// the measured enforcement of Config.PreemptBound (0 when no task was
	// backfilled).
	MaxBackfillTask int64 `json:"max_backfill_task"`
	// Utilization is Compute / (Workers * Wall).
	Utilization float64 `json:"utilization"`
	// Faults is the number of injected faults that fired (0 without a
	// fault campaign).
	Faults int64 `json:"faults,omitempty"`
	// Retries counts job attempt restarts across the pool's lifetime.
	Retries int64 `json:"retries,omitempty"`
}

func (r *Report) String() string {
	return fmt.Sprintf("workers=%d jobs=%d wall=%v compute=%v mgmt=%v idle=%v tasks=%d backfill=%d (%.1f%%) util=%.3f",
		r.Workers, r.Jobs, r.Wall, r.Compute, r.Mgmt, r.Idle, r.Tasks,
		r.BackfillTasks, r.BackfillShare*100, r.Utilization)
}

// report builds the pool report. Called after the workers have joined.
func (p *Pool) report() *Report {
	r := &Report{
		Workers:         p.cfg.Workers,
		Jobs:            len(p.jobs),
		Stalled:         p.stalled,
		Wall:            p.end.Sub(p.start),
		Idle:            time.Duration(p.idleNS.Load()),
		BackfillTasks:   p.backfillTasks.Load(),
		BackfillCompute: time.Duration(p.backfillCompute.Load()),
		MaxBackfillTask: p.maxBackfillTask.Load(),
		Faults:          p.plan.Injected(),
		Retries:         p.retries.Load(),
	}
	for _, j := range p.jobs {
		r.Compute += time.Duration(j.compute.Load())
		r.Mgmt += j.driver().Mgmt() + time.Duration(j.mgmtPrior.Load())
		r.Tasks += j.tasks.Load()
	}
	if r.Compute > 0 {
		r.BackfillShare = float64(r.BackfillCompute) / float64(r.Compute)
	}
	r.Utilization, _ = telemetry.Shares(
		int64(r.Compute), int64(r.Mgmt), r.Workers, int64(r.Wall))
	return r
}
