package tenant

import (
	"time"

	"repro/internal/executive"
	"repro/internal/telemetry"
)

// This file is the pool's observability surface: a pool built with
// Config.Observer is sampled by a dedicated goroutine at
// Config.ObservePeriod for as long as the pool lives, and Close emits
// one Final snapshot built from the pool report. Sampling only reads
// counters the pool and its jobs already maintain, so observation does
// not perturb dispatch.

// Snapshot is one observation of a live pool. All values are cumulative
// since NewPool. The json tags pin the service daemon's pool-status and
// SSE wire form.
type Snapshot struct {
	// Elapsed is the wall-clock time since the pool started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Jobs is the number of jobs submitted so far; ActiveJobs how many
	// are still incomplete; Queued how many wait behind admission
	// control.
	Jobs       int `json:"jobs"`
	ActiveJobs int `json:"active_jobs"`
	Queued     int `json:"queued"`
	// Tasks counts executed tasks across all jobs; BackfillTasks the
	// subset run by workers homed on another job; MaxBackfillTask the
	// largest backfill grain any worker has held (granules).
	Tasks           int64 `json:"tasks"`
	BackfillTasks   int64 `json:"backfill_tasks"`
	MaxBackfillTask int64 `json:"max_backfill_task"`
	// Compute, Mgmt and Idle are the summed execution, management, and
	// pool-parked durations so far.
	Compute time.Duration `json:"compute_ns"`
	Mgmt    time.Duration `json:"mgmt_ns"`
	Idle    time.Duration `json:"idle_ns"`
	// Utilization is Compute / (Workers * Elapsed) so far; OverheadShare
	// the same ratio for Mgmt.
	Utilization   float64 `json:"utilization"`
	OverheadShare float64 `json:"overhead_share"`
	// Final marks the closing snapshot Close emits after the workers
	// have joined.
	Final bool `json:"final"`
}

// snapshot builds a live observation of the pool.
func (p *Pool) snapshot() Snapshot {
	p.mu.Lock()
	jobs := append([]*Job(nil), p.jobs...)
	active := len(p.active)
	queued := len(p.waitq)
	p.mu.Unlock()
	sn := Snapshot{
		Elapsed:         time.Since(p.start),
		Jobs:            len(jobs),
		ActiveJobs:      active,
		Queued:          queued,
		BackfillTasks:   p.backfillTasks.Load(),
		MaxBackfillTask: p.maxBackfillTask.Load(),
		Idle:            time.Duration(p.idleNS.Load()),
	}
	for _, j := range jobs {
		sn.Tasks += j.tasks.Load()
		sn.Compute += time.Duration(j.compute.Load())
		sn.Mgmt += j.driver().Mgmt() + time.Duration(j.mgmtPrior.Load())
	}
	sn.Utilization, sn.OverheadShare = telemetry.Shares(
		int64(sn.Compute), int64(sn.Mgmt), p.cfg.Workers, int64(sn.Elapsed))
	// Each sample also mirrors the management total into the metric set,
	// so a Prometheus scrape between samples sees fresh time shares.
	p.noteMgmt(int64(sn.Mgmt))
	return sn
}

// noteMgmt mirrors the pool's summed per-job management time into the
// metric set as a counter delta. Management accrues inside the per-job
// managers (which know nothing of the pool's set), so the pool syncs the
// total at its observation points: every sampler tick and Close. The
// sampler goroutine and Close may race; metMu serializes the seen mark.
func (p *Pool) noteMgmt(total int64) {
	if p.met == nil {
		return
	}
	p.metMu.Lock()
	if d := total - p.mgmtSeen; d > 0 {
		p.met.MgmtTime.Add(0, d)
		p.mgmtSeen = total
	}
	p.metMu.Unlock()
}

// startObserver spawns the sampling goroutine (the executive's shared
// Sampler lifecycle). Caller ensures cfg.Observer is non-nil.
func (p *Pool) startObserver() {
	p.sampler = executive.StartSampler(p.cfg.ObservePeriod, func() {
		p.cfg.Observer(p.snapshot())
	})
}

// stopObserver joins the sampling goroutine and emits the Final
// snapshot built from the finished report. Called by Close after the
// workers have joined; safe when no observer was configured, and
// idempotent so a second Close stays as harmless as it was before
// observers existed (only the first Close emits the Final snapshot).
func (p *Pool) stopObserver(r *Report) {
	if p.sampler == nil {
		return
	}
	p.sampler.Stop()
	if !p.obsFinal.CompareAndSwap(false, true) {
		return
	}
	_, overhead := telemetry.Shares(int64(r.Compute), int64(r.Mgmt), r.Workers, int64(r.Wall))
	p.cfg.Observer(Snapshot{
		Elapsed:         r.Wall,
		Jobs:            r.Jobs,
		ActiveJobs:      0,
		Tasks:           r.Tasks,
		BackfillTasks:   r.BackfillTasks,
		MaxBackfillTask: r.MaxBackfillTask,
		Compute:         r.Compute,
		Mgmt:            r.Mgmt,
		Idle:            r.Idle,
		Utilization:     r.Utilization,
		OverheadShare:   overhead,
		Final:           true,
	})
}
