package tenant

// Class-aware admission: the pool exposes enough of its measured load —
// admission backlog, backfill grain sizes — for a caller-supplied
// predicate to decide whether a newly submitted job's service class can
// be honored, without the pool itself learning any class semantics. The
// service layer builds its latency-class slowdown projection on top of
// this view plus the telemetry histograms.

import (
	"fmt"

	"repro/internal/fault"
)

// AdmitFunc is a caller-supplied admission predicate, consulted by
// Submit under the pool lock with a consistent load view. Returning a
// non-nil error rejects the job; Submit wraps it with the job name.
type AdmitFunc func(jc JobConfig, v AdmissionView) error

// AdmissionView is the pool-load snapshot handed to Config.Admit. All
// values are observed atomically under the pool lock at Submit time.
type AdmissionView struct {
	// Workers is the pool's worker count.
	Workers int
	// Active and Queued are the current active-set and admission-queue
	// sizes (the submitted job counted in neither yet).
	Active int
	Queued int
	// MaxBackfillTask is the largest backfill task (in granules) any
	// worker has held so far — the pool's measured non-preemptible
	// foreign-grain bound (see Config.PreemptBound).
	MaxBackfillTask int64
	// BackfillTasks counts backfill dispatches so far.
	BackfillTasks int64
}

// admissionViewLocked builds the load view for Config.Admit. Caller
// holds p.mu.
func (p *Pool) admissionViewLocked() AdmissionView {
	return AdmissionView{
		Workers:         p.cfg.Workers,
		Active:          len(p.active),
		Queued:          len(p.waitq),
		MaxBackfillTask: p.maxBackfillTask.Load(),
		BackfillTasks:   p.backfillTasks.Load(),
	}
}

// classOutcome selects which per-class counter classInc bumps.
type classOutcome int

const (
	classSubmitted classOutcome = iota
	classRejected
)

// classInc records a per-class admission outcome in the metric set.
// Unclassified jobs ("") cost nothing; classified ones register their
// counters on first use so the fixed rundown_* taxonomy (and the golden
// dumps pinned on it) is untouched when no classes are in play.
func (p *Pool) classInc(class string, o classOutcome) {
	if p.met == nil || class == "" {
		return
	}
	c := p.met.Class(class)
	switch o {
	case classSubmitted:
		c.Submitted.Inc(0)
	case classRejected:
		c.Rejected.Inc(0)
	}
}

// Sample returns a live Snapshot of the pool — the same observation a
// configured Observer receives, on demand. Safe to call concurrently
// with everything, including after Close (Final stays false; the
// closing snapshot belongs to the Observer path).
func (p *Pool) Sample() Snapshot { return p.snapshot() }

// InjectFaults appends rules to the live fault plan of a pool built
// with Config.DynamicFaults (or Config.Faults): the staging hook that
// lets a service daemon arm a campaign scoped to a just-submitted job.
// Rules take effect for dispatches after the call returns.
func (p *Pool) InjectFaults(rules []fault.Rule) error {
	if p.plan == nil {
		return fmt.Errorf("tenant: pool built without DynamicFaults or Faults: no live plan to extend")
	}
	p.plan.Extend(rules)
	return nil
}

// Abort fails this one job with err — the single-job counterpart of
// Pool.Abort, and the service daemon's POST /v1/jobs/{id}/abort. A job
// still queued behind admission control or backing off between attempts
// retires directly; a running job is aborted through its manager, which
// refuses if the state machine already completed (the job keeps its
// results and Wait returns nil). A finished job is left untouched.
func (j *Job) Abort(err error) { j.pool.killJob(j, err) }
